#!/bin/sh
# Fails if any root-package steady-state hot-path benchmark reports a
# nonzero allocs/op. The BenchmarkHotPath* targets each run one full
# publish->drain lap per op against pre-warmed runtimes, so any allocation
# is a regression on the enqueue/dequeue hot paths (bench_alloc_test.go).
# The set covers both consumer topologies: the single-consumer drains and
# the parallel consumer-group drain (BenchmarkHotPathGroupDrain, four
# persistent workers), so neither side of the egress split may regress,
# plus the fault-free lap of the resilient egress wrapper
# (BenchmarkHotPathEgressTx): retry machinery on the path, never firing,
# the approximate scheduler backends behind the sharded runtime
# (BenchmarkHotPathApproxGrad / BenchmarkHotPathApproxRIFO), and the
# sharded hierarchical-QoS backend's three-tag charge cycle
# (BenchmarkHotPathHierSched).
#
# On failure, the //eiffel:hotpath inventory (cmd/eiffel-vet -hotpaths)
# is printed for the packages each failing lap drives. eiffel-vet's
# hotpath analyzer statically proves those functions free of
# allocation-inducing constructs, so a nonzero allocs/op pins the
# regression to one of two places: an //eiffel:allow'd amortized site
# that stopped amortizing (a scratch buffer re-growing every lap), or a
# function on the lap that is missing its annotation entirely.
# After the allocation gate, the bench-trajectory gate regenerates every
# JSON-emitting experiment in quick mode and diffs the payloads against
# the committed bench/baseline/ snapshots with cmd/bench-gate: a Mpps
# collapse beyond tolerance or any whole-allocs/op increase fails the run.
set -eu
cd "$(dirname "$0")/.."
out="$(go test -run '^$' -bench 'BenchmarkHotPath' -benchtime 100x -benchmem .)"
printf '%s\n' "$out"
failed="$(printf '%s\n' "$out" | awk '
	/^BenchmarkHotPath/ {
		allocs = $(NF-1)
		if (allocs + 0 != 0) {
			name = $1
			sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
			print name
		}
	}
')"
if [ -n "$failed" ]; then
	echo "FAIL: nonzero allocs/op on a hot path:" >&2
	inventory="$(go run ./cmd/eiffel-vet -hotpaths ./...)"
	for bench in $failed; do
		# Map each benchmark to the import paths its lap drives; the
		# substrate packages (bucket, ffsq) sit under every lap.
		case "$bench" in
		BenchmarkHotPathShapedEnqueueBatched)
			pkgs="internal/shardq internal/bucket internal/ffsq" ;;
		BenchmarkHotPathApproxGrad | BenchmarkHotPathApproxRIFO)
			pkgs="internal/shardq internal/gradq internal/bucket internal/ffsq" ;;
		BenchmarkHotPathEnqueue* | BenchmarkHotPathGroupDrain)
			pkgs="internal/shardq internal/bucket internal/ffsq" ;;
		BenchmarkHotPathPolicyBatched | BenchmarkHotPathChurnAdmit)
			pkgs="internal/qdisc internal/pifo internal/pkt internal/shardq internal/bucket internal/ffsq" ;;
		BenchmarkHotPathHierSched)
			pkgs="internal/qdisc internal/hclock internal/pkt internal/shardq internal/bucket internal/ffsq" ;;
		BenchmarkHotPathEgressTx)
			pkgs="internal/qdisc internal/stats internal/pkt internal/shardq internal/bucket internal/ffsq" ;;
		*)
			pkgs="internal" ;;
		esac
		echo "" >&2
		echo "$bench: //eiffel:hotpath functions on this lap:" >&2
		for p in $pkgs; do
			printf '%s\n' "$inventory" | grep "^eiffel/$p " >&2 || true
		done
	done
	exit 1
fi

# --- bench-trajectory regression gate -----------------------------------
# Regenerate quick-mode payloads for every experiment with a committed
# baseline and diff them. Experiment ids are derived from the baseline
# filenames so adding a BENCH_<id>.json under bench/baseline/ enrolls the
# experiment automatically. The baseline is already conservative (per-row
# worst of 5 runs; scripts/refresh_bench_baseline.sh), but one retry
# absorbs the rare run where the whole sweep lands on a contended core:
# a real collapse reproduces on both attempts.
freshdir="$(mktemp -d)"
trap 'rm -rf "$freshdir"' EXIT
for attempt in 1 2; do
	for f in bench/baseline/BENCH_*.json; do
		id="$(basename "$f" .json | sed 's/^BENCH_//')"
		echo "bench-gate: regenerating $id (quick mode, attempt $attempt)"
		go run ./cmd/eiffel-bench -experiment "$id" -quick -json "$freshdir" >/dev/null
	done
	if go run ./cmd/bench-gate -baseline bench/baseline -fresh "$freshdir"; then
		exit 0
	fi
	[ "$attempt" = 1 ] && echo "bench-gate: retrying once to rule out scheduler noise" >&2
done
exit 1
