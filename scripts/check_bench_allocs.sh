#!/bin/sh
# Fails if any root-package steady-state hot-path benchmark reports a
# nonzero allocs/op. The BenchmarkHotPath* targets each run one full
# publish->drain lap per op against pre-warmed runtimes, so any allocation
# is a regression on the enqueue/dequeue hot paths (bench_alloc_test.go).
# The set covers both consumer topologies: the single-consumer drains and
# the parallel consumer-group drain (BenchmarkHotPathGroupDrain, four
# persistent workers), so neither side of the egress split may regress.
set -eu
cd "$(dirname "$0")/.."
out="$(go test -run '^$' -bench 'BenchmarkHotPath' -benchtime 100x -benchmem .)"
printf '%s\n' "$out"
printf '%s\n' "$out" | awk '
	/^BenchmarkHotPath/ {
		allocs = $(NF-1)
		if (allocs + 0 != 0) {
			bad = 1
			print "FAIL: nonzero allocs/op on a hot path: " $0 > "/dev/stderr"
		}
	}
	END { exit bad }
'
