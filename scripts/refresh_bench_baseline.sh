#!/bin/sh
# Refreshes bench/baseline/ — the committed quick-mode payloads the
# bench-trajectory gate (scripts/check_bench_allocs.sh, cmd/bench-gate)
# diffs fresh runs against.
#
# Quick-mode throughput on a shared machine jitters by several x per row,
# so a single lucky run makes a flappy baseline. This script runs every
# JSON-emitting experiment RUNS times and merges the payloads
# conservatively (per-row minimum mpps, maximum allocs/op) with
# bench-gate -write-baseline: the committed floor is each row's slowest
# observed run, so the gate stays quiet under scheduler noise and only a
# genuine collapse trips it.
#
# Run this after a deliberate perf-affecting change, review the diff, and
# commit the result together with the change that motivated it.
set -eu
cd "$(dirname "$0")/.."

RUNS="${RUNS:-5}"
experiments="approx chaos churn contention hiersched policysched shapedsched"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
dirs=""
i=1
while [ "$i" -le "$RUNS" ]; do
	d="$workdir/run$i"
	mkdir -p "$d"
	for id in $experiments; do
		echo "refresh: run $i/$RUNS: $id"
		go run ./cmd/eiffel-bench -experiment "$id" -quick -json "$d" >/dev/null
	done
	dirs="$dirs,$d"
	i=$((i + 1))
done
go run ./cmd/bench-gate -write-baseline "${dirs#,}" -out bench/baseline
