module eiffel

go 1.24
