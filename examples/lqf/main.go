// LQF demonstrates the paper's Figure 6: Longest Queue First needs both of
// Eiffel's new PIFO primitives — per-flow ranking (an arrival re-ranks the
// whole flow) and on-dequeue ranking (a departure re-ranks it again). The
// example shows service always going to the currently longest flow, then
// replays the same program through the sharded multi-producer runtime and
// prints a locked-vs-sharded throughput line.
package main

import (
	"fmt"

	"eiffel"
	"eiffel/internal/qdisc"
)

func main() {
	tree := eiffel.NewTree(eiffel.TreeOptions{
		RootRanker: eiffel.WFQ{},
		RootQueue:  eiffel.QueueConfig{NumBuckets: 1 << 10, Granularity: 1},
	})
	leaf := tree.NewFlowLeaf(nil, eiffel.LQF{}, eiffel.ClassOptions{
		Name:  "lqf",
		Queue: eiffel.QueueConfig{NumBuckets: 1 << 21, Granularity: 1},
	})

	pool := eiffel.NewPool(64)
	enqueue := func(flow uint64, n int) {
		for i := 0; i < n; i++ {
			p := pool.Get()
			p.Flow = flow
			p.Size = 100
			tree.Enqueue(leaf, p, 0)
		}
	}

	enqueue(1, 2) // flow 1: 2 packets
	enqueue(2, 5) // flow 2: 5 packets  <- longest, served first
	enqueue(3, 3) // flow 3: 3 packets

	fmt.Println("LQF service order (flow: remaining-after-serve):")
	remaining := map[uint64]int{1: 2, 2: 5, 3: 3}
	for {
		p := tree.Dequeue(0)
		if p == nil {
			break
		}
		remaining[p.Flow]--
		fmt.Printf("  served flow %d (now %d/%d/%d)\n",
			p.Flow, remaining[1], remaining[2], remaining[3])
		pool.Put(p)
	}

	shardedThroughput()
}

// shardedThroughput replays the canonical LQF program as a policy qdisc:
// once on a single pifo.Tree behind the kernel-style global lock, once
// shard-confined on the multi-producer runtime (eiffel.PolicySharded),
// with 8 concurrent producers feeding each.
func shardedThroughput() {
	spec := qdisc.PolicySpecLQF
	packets := qdisc.PolicyPackets(8, 20000, 256)

	tree, err := eiffel.NewPolicyTree(spec, "")
	if err != nil {
		panic(err)
	}
	lockedMpps := qdisc.BestOfReplays(qdisc.NewLocked(tree), packets, 3, qdisc.ContentionOptions{})

	sharded, err := eiffel.NewPolicySharded(eiffel.PolicyShardedOptions{Policy: spec, Shards: 8})
	if err != nil {
		panic(err)
	}
	shardedMpps := qdisc.BestOfReplays(sharded, packets, 3, qdisc.ContentionOptions{})

	fmt.Println()
	fmt.Printf("LQF throughput, 8 producers: locked tree %.2f Mpps, sharded %.2f Mpps (%.2fx)\n",
		lockedMpps, shardedMpps, shardedMpps/lockedMpps)
}
