// Quickstart: build an Eiffel scheduler with a paced root and an EDF leaf,
// push a burst of deadline-tagged packets, and watch them come out in
// deadline order at the paced rate.
package main

import (
	"fmt"

	"eiffel"
)

func main() {
	const mbps = 100_000_000 // pace the aggregate to 100 Mbit/s

	tree := eiffel.NewTree(eiffel.TreeOptions{
		RootRanker:        eiffel.WFQ{},
		RootRateBps:       mbps,
		RootQueue:         eiffel.QueueConfig{NumBuckets: 1 << 12, Granularity: 1},
		ShaperBuckets:     1 << 14,
		ShaperGranularity: 1 << 12,
	})
	leaf := tree.NewPacketLeaf(nil, eiffel.EDF{}, eiffel.ClassOptions{
		Name:  "edf",
		Queue: eiffel.QueueConfig{NumBuckets: 1 << 12, Granularity: 1000},
	})

	pool := eiffel.NewPool(64)
	deadlines := []int64{900_000, 100_000, 500_000, 300_000, 700_000}
	for _, d := range deadlines {
		p := pool.Get()
		p.Size = 1250 // 10k bits -> 100 us per packet at 100 Mbit/s
		p.Deadline = d
		tree.Enqueue(leaf, p, 0)
	}

	fmt.Println("deadline-ordered, paced release:")
	now := int64(0)
	for tree.Len() > 0 {
		p := tree.Dequeue(now)
		if p == nil {
			next, ok := tree.NextEvent()
			if !ok {
				break
			}
			if next <= now {
				next = now + 1000
			}
			now = next
			continue
		}
		fmt.Printf("  t=%6dus  deadline=%6dus  size=%dB\n", now/1000, p.Deadline/1000, p.Size)
		pool.Put(p)
	}
}
