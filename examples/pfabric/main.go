// PFabric reproduces the network-wide experiment (Figure 19) at laptop
// scale: a leaf-spine fabric running the web-search workload, comparing
// DCTCP against pFabric with exact and approximate switch priority queues.
// The question the paper asks: does approximate prioritization at every
// switch hurt network-wide flow completion times? (Answer: no.) It then
// runs the pFabric host qdisc itself — the Figure 14 extended-PIFO
// program — through the sharded multi-producer runtime and prints a
// locked-vs-sharded throughput line, the single-machine analogue of the
// same approximation-tolerance argument.
package main

import (
	"flag"
	"fmt"

	"eiffel"
	"eiffel/internal/netsim"
	"eiffel/internal/qdisc"
)

func main() {
	hosts := flag.Int("hosts", 32, "fabric size (multiple of 16)")
	flows := flag.Int("flows", 400, "flows per load point")
	flag.Parse()

	systems := []struct {
		name string
		tr   netsim.Transport
		q    netsim.QueueKind
	}{
		{"DCTCP", netsim.TransportDCTCP, netsim.QueueFIFOECN},
		{"pFabric", netsim.TransportPFabric, netsim.QueuePFabric},
		{"pFabric-Approx", netsim.TransportPFabric, netsim.QueuePFabricApprox},
	}

	fmt.Printf("normalized FCT, (0,100KB] flows, %d hosts, %d flows/point\n\n", *hosts, *flows)
	fmt.Printf("%-6s %-16s %-16s %-16s\n", "load", "DCTCP", "pFabric", "pFabric-Approx")
	for _, load := range []float64{0.2, 0.5, 0.8} {
		fmt.Printf("%-6.1f", load)
		for _, sys := range systems {
			r := netsim.RunExperiment(netsim.ExperimentConfig{
				Hosts:        *hosts,
				HostsPerLeaf: 16,
				Spines:       2,
				Load:         load,
				Transport:    sys.tr,
				Queue:        sys.q,
				Flows:        *flows,
				Seed:         42,
			})
			fmt.Printf(" %-16.2f", r.AvgSmall)
		}
		fmt.Println()
	}

	shardedThroughput()
}

// shardedThroughput replays the canonical pFabric flow policy (Figure 14)
// as a host qdisc: once on a single pifo.Tree behind the kernel-style
// global lock, once shard-confined on the multi-producer runtime, 8
// producers each.
func shardedThroughput() {
	spec := qdisc.PolicySpecPFabric
	packets := qdisc.PolicyPackets(8, 20000, 256)

	tree, err := eiffel.NewPolicyTree(spec, "")
	if err != nil {
		panic(err)
	}
	lockedMpps := qdisc.BestOfReplays(qdisc.NewLocked(tree), packets, 3, qdisc.ContentionOptions{})

	sharded, err := eiffel.NewPolicySharded(eiffel.PolicyShardedOptions{Policy: spec, Shards: 8})
	if err != nil {
		panic(err)
	}
	shardedMpps := qdisc.BestOfReplays(sharded, packets, 3, qdisc.ContentionOptions{})

	fmt.Println()
	fmt.Printf("pFabric host qdisc, 8 producers: locked tree %.2f Mpps, sharded %.2f Mpps (%.2fx)\n",
		lockedMpps, shardedMpps, shardedMpps/lockedMpps)
}
