// Pacing reproduces Use Case 1 (§5.1.1) at laptop scale: many rate-limited
// flows shaped by three qdiscs — FQ/pacing (RB-tree), Carousel (timing
// wheel + periodic timer), and Eiffel (cFFS + exact timer) — and reports
// the CPU cores each burns per second of traffic, the Figure 9 metric.
package main

import (
	"flag"
	"fmt"

	"eiffel/internal/qdisc"
	"eiffel/internal/stats"
)

func main() {
	flows := flag.Int("flows", 500, "concurrent paced flows")
	gbps := flag.Float64("gbps", 0.6, "aggregate rate")
	secs := flag.Int("seconds", 3, "simulated seconds")
	flag.Parse()

	cfg := qdisc.HostConfig{
		Flows:        *flows,
		AggregateBps: uint64(*gbps * 1e9),
		SimSeconds:   *secs,
	}
	fmt.Printf("shaping %d flows at %.1f Gbps for %ds (virtual) per qdisc\n\n",
		cfg.Flows, *gbps, cfg.SimSeconds)

	fmt.Printf("%-10s %-14s %-14s %-12s %-10s\n", "qdisc", "median cores", "p95 cores", "timer fires", "on-time")
	for _, q := range []qdisc.Qdisc{
		qdisc.NewFQ(),
		qdisc.NewCarousel(20000, 2e9, 0),
		qdisc.NewEiffel(20000, 2e9, 0),
	} {
		r := qdisc.RunHost(q, cfg)
		fmt.Printf("%-10s %-14.4f %-14.4f %-12d %-10.3f\n",
			r.Qdisc,
			stats.Percentile(r.CoresSamples, 50),
			stats.Percentile(r.CoresSamples, 95),
			r.TimerFires,
			r.OnTimeFrac)
	}
}
