// HClock reproduces Use Case 2 (§5.1.2) at laptop scale: hierarchical QoS
// scheduling (reservations, limits, proportional shares) in a one-core
// busy-polling BESS-style pipeline, with the scheduler's priority queues
// swapped between binary heaps (the original hClock) and Eiffel's cFFS.
package main

import (
	"flag"
	"fmt"
	"time"

	"eiffel/internal/bess"
	"eiffel/internal/hclock"
	"eiffel/internal/pkt"
)

func run(flows int, backend hclock.Backend, dur time.Duration) float64 {
	s := hclock.New(hclock.Config{Backend: backend})
	perFlow := uint64(20_000_000_000) / uint64(flows) // 2x oversubscribed
	for i := 1; i <= flows; i++ {
		s.AddFlow(uint64(i), 0, perFlow, 1)
	}
	mod := &bess.HClockModule{S: s}
	pool := pkt.NewPool(flows*4 + 4096)
	src := bess.NewSource(pool, mod, flows, 1500)
	pl := bess.Pipeline{Source: src, Sched: mod, Sink: bess.NewSink(pool)}
	return pl.RunFor(dur).Mbps()
}

func main() {
	dur := flag.Duration("dur", 200*time.Millisecond, "measurement window per point")
	flag.Parse()

	fmt.Println("max aggregate rate on one core (Mbps), Figure 12 shape:")
	fmt.Printf("%-8s %-14s %-14s %-8s\n", "flows", "Eiffel", "hClock(heap)", "ratio")
	for _, flows := range []int{10, 100, 1000, 5000} {
		e := run(flows, hclock.BackendEiffel, *dur)
		h := run(flows, hclock.BackendHeap, *dur)
		fmt.Printf("%-8d %-14.0f %-14.0f %-8.1fx\n", flows, e, h, e/h)
	}
}
