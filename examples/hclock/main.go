// HClock reproduces Use Case 2 (§5.1.2) at laptop scale: hierarchical QoS
// scheduling (reservations, limits, proportional shares) in a one-core
// busy-polling BESS-style pipeline, with the scheduler's priority queues
// swapped between binary heaps (the original hClock) and Eiffel's cFFS —
// then replays the same tenant tree through the sharded multi-producer
// runtime and prints a locked-vs-sharded throughput line.
package main

import (
	"flag"
	"fmt"
	"time"

	"eiffel"
	"eiffel/internal/bess"
	"eiffel/internal/hclock"
	"eiffel/internal/pkt"
	"eiffel/internal/qdisc"
)

func run(flows int, backend hclock.Backend, dur time.Duration) float64 {
	s := hclock.New(hclock.Config{Backend: backend})
	perFlow := uint64(20_000_000_000) / uint64(flows) // 2x oversubscribed
	for i := 1; i <= flows; i++ {
		s.AddFlow(uint64(i), 0, perFlow, 1)
	}
	mod := &bess.HClockModule{S: s}
	pool := pkt.NewPool(flows*4 + 4096)
	src := bess.NewSource(pool, mod, flows, 1500)
	pl := bess.Pipeline{Source: src, Sched: mod, Sink: bess.NewSink(pool)}
	return pl.RunFor(dur).Mbps()
}

func main() {
	dur := flag.Duration("dur", 200*time.Millisecond, "measurement window per point")
	flag.Parse()

	fmt.Println("max aggregate rate on one core (Mbps), Figure 12 shape:")
	fmt.Printf("%-8s %-14s %-14s %-8s\n", "flows", "Eiffel", "hClock(heap)", "ratio")
	for _, flows := range []int{10, 100, 1000, 5000} {
		e := run(flows, hclock.BackendEiffel, *dur)
		h := run(flows, hclock.BackendHeap, *dur)
		fmt.Printf("%-8d %-14.0f %-14.0f %-8.1fx\n", flows, e, h, e/h)
	}

	shardedThroughput()
}

// shardedThroughput replays a four-tenant hClock tree — a 2 Gbps
// reservation holder and three weighted classes — once as a single
// whole-tree engine behind the kernel-style global lock and once
// shard-confined on the multi-producer runtime (eiffel.HierSharded, one
// engine per shard with rates renormalized by the shard count), with 8
// concurrent producers feeding each. (No rate cap here: the contention
// replay runs at a pinned clock, which would park a capped tenant
// forever; the busy-polling pipeline above is the limit showcase.)
func shardedThroughput() {
	spec := eiffel.HierSpec{
		Tenants: []eiffel.HierTenant{
			{Weight: 3},
			{Weight: 1},
			{ResBps: 2e9, Weight: 1},
			{Weight: 2},
		},
	}
	// One packet set per producer over disjoint flow ranges (concurrent
	// producers cannot race a flow's internal order), flows spread across
	// all four tenants via the Class annotation.
	const producers, perProducer, flowsPer = 8, 20000, 256
	packets := make([][]*pkt.Packet, producers)
	for w := range packets {
		pool := pkt.NewPool(perProducer)
		set := make([]*pkt.Packet, perProducer)
		for i := range set {
			p := pool.Get()
			f := i % flowsPer
			p.Flow = uint64(w*flowsPer + f)
			p.Size = 1500
			p.Class = int32(f % len(spec.Tenants))
			set[i] = p
		}
		packets[w] = set
	}

	tree, err := eiffel.NewHierTree(spec)
	if err != nil {
		panic(err)
	}
	lockedMpps := qdisc.BestOfReplays(eiffel.NewLocked(tree), packets, 3, qdisc.ContentionOptions{})

	sharded, err := eiffel.NewHierSharded(eiffel.HierShardedOptions{Spec: spec, Shards: 8})
	if err != nil {
		panic(err)
	}
	shardedMpps := qdisc.BestOfReplays(sharded, packets, 3, qdisc.ContentionOptions{})

	fmt.Println()
	fmt.Printf("hClock tree throughput, 8 producers: locked tree %.2f Mpps, sharded %.2f Mpps (%.2fx)\n",
		lockedMpps, shardedMpps, shardedMpps/lockedMpps)
}
