package eiffel_test

import (
	"strconv"
	"strings"
	"testing"

	"eiffel/internal/exp"
)

// Each benchmark regenerates one of the paper's tables or figures in quick
// mode via the experiment harness; running the full-scale versions is
// cmd/eiffel-bench's job. Heavy experiments take >1s per run, so b.N stays
// at 1 and the benchmark wall time IS the experiment runtime; the headline
// figure value is attached as a custom metric where meaningful.

func runExp(b *testing.B, id string) *exp.Result {
	b.Helper()
	var res *exp.Result
	for i := 0; i < b.N; i++ {
		res = exp.Registry[id](exp.Options{Quick: true, Seed: 1})
	}
	return res
}

func metric(b *testing.B, res *exp.Result, table, row, col int, name string) {
	b.Helper()
	if table >= len(res.Tables) || row >= len(res.Tables[table].Rows) {
		return
	}
	if v, err := strconv.ParseFloat(res.Tables[table].Rows[row][col], 64); err == nil {
		b.ReportMetric(v, name)
	}
}

// BenchmarkTable1Capabilities prints the system feature matrix (Table 1).
func BenchmarkTable1Capabilities(b *testing.B) { runExp(b, "table1") }

// BenchmarkFig09KernelShaping regenerates Figure 9: cores used for
// networking under FQ, Carousel, and Eiffel.
func BenchmarkFig09KernelShaping(b *testing.B) {
	res := runExp(b, "fig9")
	metric(b, res, 0, 2, 2, "eiffel-median-cores")
	metric(b, res, 0, 0, 2, "fq-median-cores")
}

// BenchmarkFig10TimerSplit regenerates Figure 10: system vs softirq split.
func BenchmarkFig10TimerSplit(b *testing.B) {
	res := runExp(b, "fig10")
	metric(b, res, 0, 0, 3, "carousel-timer-fires")
	metric(b, res, 0, 1, 3, "eiffel-timer-fires")
}

// BenchmarkFig12HClock regenerates Figure 12: max aggregate rate vs flows.
func BenchmarkFig12HClock(b *testing.B) {
	res := runExp(b, "fig12")
	last := len(res.Tables[0].Rows) - 1
	metric(b, res, 0, last, 1, "eiffel-mbps-most-flows")
	metric(b, res, 0, last, 2, "hclock-mbps-most-flows")
}

// BenchmarkFig13Batching regenerates Figure 13: batching x packet size.
func BenchmarkFig13Batching(b *testing.B) { runExp(b, "fig13") }

// BenchmarkFig15PFabric regenerates Figure 15: pFabric rate vs flows.
func BenchmarkFig15PFabric(b *testing.B) {
	res := runExp(b, "fig15")
	last := len(res.Tables[0].Rows) - 1
	metric(b, res, 0, last, 1, "cffs-mbps")
	metric(b, res, 0, last, 2, "binheap-mbps")
}

// BenchmarkFig16PacketsPerBucket regenerates Figure 16.
func BenchmarkFig16PacketsPerBucket(b *testing.B) {
	res := runExp(b, "fig16")
	metric(b, res, 1, 0, 1, "approx-mpps-1ppb-10k")
	metric(b, res, 1, 0, 2, "cffs-mpps-1ppb-10k")
	metric(b, res, 1, 0, 3, "bh-mpps-1ppb-10k")
}

// BenchmarkFig17Occupancy regenerates Figure 17.
func BenchmarkFig17Occupancy(b *testing.B) { runExp(b, "fig17") }

// BenchmarkFig18ApproxError regenerates Figure 18.
func BenchmarkFig18ApproxError(b *testing.B) {
	res := runExp(b, "fig18")
	metric(b, res, 0, 0, 1, "avg-err-at-0.70-5k")
}

// BenchmarkFig19NetworkWide regenerates Figure 19 (quick fabric).
func BenchmarkFig19NetworkWide(b *testing.B) {
	res := runExp(b, "fig19")
	last := len(res.Tables[0].Rows) - 1
	metric(b, res, 0, last, 1, "dctcp-avg-small-fct")
	metric(b, res, 0, last, 3, "pfabric-avg-small-fct")
}

// BenchmarkFig20Choose regenerates the Figure 20 decision table.
func BenchmarkFig20Choose(b *testing.B) { runExp(b, "fig20") }

// BenchmarkContention runs the locked-vs-sharded qdisc scaling experiment
// (8 producers, one consumer; see internal/exp/contention.go). The
// reported metric is the batched direct-due sharded runtime's throughput
// gain over the kernel-style global-lock deployment.
func BenchmarkContention(b *testing.B) {
	res := runExp(b, "contention")
	rows := res.Tables[0].Rows
	last := rows[len(rows)-1] // the batched direct-due sharded configuration
	if v, err := strconv.ParseFloat(strings.TrimSuffix(last[4], "x"), 64); err == nil {
		b.ReportMetric(v, "sharded-vs-lock")
	}
}

// BenchmarkEgress runs the parallel-egress scaling experiment (8
// producers vs G consumer-group drain workers, G ∈ {1,2,4}; see
// internal/exp/egress.go). The reported metrics are the G=4 row's
// aggregate throughput gain over the single-consumer G=1 baseline (≥1.5×
// on a multi-core runner; ~1× is the honest answer on single-vCPU CI,
// where the workers serialize) and its per-flow order violations under
// parallel egress, which must be zero and are also asserted by
// TestMultiShardedGroupFidelity and TestEgressQuick.
func BenchmarkEgress(b *testing.B) {
	res := runExp(b, "egress")
	rows := res.Tables[0].Rows
	last := rows[len(rows)-1] // the G=4 row
	ratio, err := strconv.ParseFloat(strings.TrimSuffix(last[3], "x"), 64)
	if err != nil {
		b.Fatalf("egress ratio column %q not numeric: %v", last[3], err)
	}
	b.ReportMetric(ratio, "g4-vs-g1")
	viol, err := strconv.ParseFloat(last[5], 64)
	if err != nil {
		b.Fatalf("egress violations column %q not numeric: %v", last[5], err)
	}
	b.ReportMetric(viol, "flow-order-violations")
}

// BenchmarkShapedSched runs the decoupled shaping + priority scheduling
// scaling experiment (8 producers, per-packet (SendAt, Rank); see
// internal/exp/shapedsched.go). The reported metrics are the ShapedSharded
// runtime's throughput gain over the kernel-style Locked pifo.Tree
// baseline (the ≥2× acceptance figure, measured on the batched-admission
// row) and its priority inversions beyond scheduler bucket granularity
// (which must be zero, and is also asserted by
// TestShapedShardedPriorityFidelity{,Batched} and TestShapedSchedQuick).
func BenchmarkShapedSched(b *testing.B) {
	res := runExp(b, "shapedsched")
	rows := res.Tables[0].Rows
	last := rows[len(rows)-1] // the batched shaped-sharded row
	ratio, err := strconv.ParseFloat(strings.TrimSuffix(last[4], "x"), 64)
	if err != nil {
		b.Fatalf("shapedsched ratio column %q not numeric: %v", last[4], err)
	}
	b.ReportMetric(ratio, "shaped-vs-locked-tree")
	inv, err := strconv.ParseFloat(last[5], 64)
	if err != nil {
		b.Fatalf("shapedsched inversions column %q not numeric: %v", last[5], err)
	}
	b.ReportMetric(inv, "priority-inversions")
}

// BenchmarkPolicySched runs the programmable-policy scaling experiment
// (8 producers replaying pFabric, LQF, and hierarchical WFQ programs
// through shard-confined extended-PIFO trees; see
// internal/exp/policysched.go). The reported metrics are the batched
// PolicySharded row's throughput gain over the kernel-style locked
// pifo.Tree baseline on the pFabric program (the ≥2× acceptance figure)
// and its flow-order violations, which must be zero and are also asserted
// by TestPolicyShardedFlowOrderMatchesLockedTree and TestPolicySchedQuick.
func BenchmarkPolicySched(b *testing.B) {
	res := runExp(b, "policysched")
	rows := res.Tables[0].Rows
	// Row 2 is pfabric / policy-shards (batched); see the entries order in
	// internal/exp/policysched.go.
	last := rows[2]
	ratio, err := strconv.ParseFloat(strings.TrimSuffix(last[4], "x"), 64)
	if err != nil {
		b.Fatalf("policysched ratio column %q not numeric: %v", last[4], err)
	}
	b.ReportMetric(ratio, "policy-vs-locked-tree")
	mis, err := strconv.ParseFloat(last[5], 64)
	if err != nil {
		b.Fatalf("policysched misorders column %q not numeric: %v", last[5], err)
	}
	b.ReportMetric(mis, "flow-misorders")
}

// BenchmarkApprox runs the approximate-scheduler-backend experiment in
// quick mode (internal/exp/approx.go): the gradient and RIFO-style
// fixed-window backends against the exact vecSched baseline, single-
// threaded and through ShapedSharded, with rank-inversion accounting
// against the exact oracle replay. The experiment flags any row whose
// measured inversion magnitude escapes its analytic bound (the invariant
// TestGradSchedInversionBound and TestRIFOSchedInversionBound prove over
// random distributions); that note fails this benchmark. The reported
// metrics are the RIFO row's throughput gain over exact vecSched on the
// cache-hostile large geometry (the ≥1.3× acceptance figure) and its
// measured max inversion magnitude there.
func BenchmarkApprox(b *testing.B) {
	res := runExp(b, "approx")
	for _, n := range res.Notes {
		if strings.Contains(n, "APPROX BOUND EXCEEDED") {
			b.Fatal(n)
		}
	}
	rows := res.Tables[0].Rows
	last := rows[len(rows)-1] // large geometry, rifo-64
	ratio, err := strconv.ParseFloat(strings.TrimSuffix(last[4], "x"), 64)
	if err != nil {
		b.Fatalf("approx ratio column %q not numeric: %v", last[4], err)
	}
	b.ReportMetric(ratio, "rifo-vs-exact-large")
	mag, err := strconv.ParseFloat(last[6], 64)
	if err != nil {
		b.Fatalf("approx max-mag column %q not numeric: %v", last[6], err)
	}
	b.ReportMetric(mag, "rifo-max-inversion")
}

// BenchmarkHierSched runs the hierarchical-QoS scaling experiment
// (8 producers replaying a two-tenant 3:1 weighted tree through
// shard-confined hClock engines vs the locked whole-tree baseline; see
// internal/exp/hiersched.go). The reported metrics are the batched
// hier-shards row's throughput vs the locked tree on the Eiffel backend,
// its flow-order violations (must be zero: flow-hash sharding keeps each
// flow's backlog on one engine), its reservation violations under paced
// overload (must be zero: a due reservation pulls its shard's merge rank
// to 0), and the cross-shard share error against the ideal 0.75 split.
func BenchmarkHierSched(b *testing.B) {
	res := runExp(b, "hiersched")
	rows := res.Tables[0].Rows
	// Row 2 is Eiffel / hier-shards (batched); see the entries order in
	// internal/exp/hiersched.go.
	last := rows[2]
	ratio, err := strconv.ParseFloat(strings.TrimSuffix(last[4], "x"), 64)
	if err != nil {
		b.Fatalf("hiersched ratio column %q not numeric: %v", last[4], err)
	}
	b.ReportMetric(ratio, "hier-vs-locked-tree")
	mis, err := strconv.ParseFloat(last[5], 64)
	if err != nil {
		b.Fatalf("hiersched misorders column %q not numeric: %v", last[5], err)
	}
	b.ReportMetric(mis, "flow-misorders")
	viol, err := strconv.ParseFloat(last[6], 64)
	if err != nil {
		b.Fatalf("hiersched res-viol column %q not numeric: %v", last[6], err)
	}
	b.ReportMetric(viol, "reservation-violations")
	shareErr, err := strconv.ParseFloat(last[7], 64)
	if err != nil {
		b.Fatalf("hiersched share-err column %q not numeric: %v", last[7], err)
	}
	b.ReportMetric(shareErr, "share-error")
}

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationHierVsFlat compares hierarchical vs flat FFS indexes.
func BenchmarkAblationHierVsFlat(b *testing.B) { runExp(b, "ablation-hier-vs-flat") }

// BenchmarkAblationRedistribution ablates cFFS overflow redistribution.
func BenchmarkAblationRedistribution(b *testing.B) { runExp(b, "ablation-redistribute") }

// BenchmarkAblationAlpha sweeps the approximate queue's alpha.
func BenchmarkAblationAlpha(b *testing.B) { runExp(b, "ablation-alpha") }

// BenchmarkAblationBackends contrasts every queue backend on one workload.
func BenchmarkAblationBackends(b *testing.B) { runExp(b, "ablation-backends") }

// BenchmarkAblationShaperBackend swaps the Eiffel qdisc's shaper backend.
func BenchmarkAblationShaperBackend(b *testing.B) { runExp(b, "ablation-shaper") }

// BenchmarkChurn runs the millions-of-flows survival experiment in quick
// mode (internal/exp/churn.go): short-lived Zipf flow churn through the
// pFabric policy shards with idle-flow eviction and a drop-tail shard
// bound. The reported metrics are the verified evicting row's throughput
// and drop percentage; order exactness, exact accounting, and the heap
// ceiling are asserted by the experiment itself and by TestChurn* in
// internal/qdisc.
func BenchmarkChurn(b *testing.B) {
	res := runExp(b, "churn")
	metric(b, res, 0, 1, 2, "evict-mpps")
	metric(b, res, 0, 1, 3, "drop-pct")
}

// BenchmarkChaos runs the egress fault-injection suite in quick mode
// (internal/exp/chaos.go): supervised Serve workers draining into
// seed-driven fault.Sink TX queues, one misbehavior profile per row.
// The experiment itself asserts exactly-once egress (zero lost, zero
// duplicated), exact per-reason drop attribution, and a bounded
// graceful-drain recovery time; any violation surfaces as a note that
// fails this benchmark. The reported metrics are the deadline row's
// drop count (must be > 0 — the profile exists to force that reason)
// and its recovery time.
func BenchmarkChaos(b *testing.B) {
	res := runExp(b, "chaos")
	for _, n := range res.Notes {
		if strings.Contains(n, "CHAOS VIOLATION") {
			b.Fatal(n)
		}
	}
	metric(b, res, 0, 6, 3, "deadline-drops")
	metric(b, res, 0, 6, 12, "deadline-recovery-ms")
}
