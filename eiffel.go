// Package eiffel is a from-scratch Go implementation of "Eiffel: Efficient
// and Flexible Software Packet Scheduling" (Saeed et al., NSDI 2019): O(1)
// bucketed integer priority queues built on Find-First-Set (the circular
// hierarchical FFS queue, cFFS) and on algebraic curvature estimates (the
// exact and approximate gradient queues), plus an extended PIFO programming
// model with per-flow ranking, on-dequeue re-ranking, and decoupled
// arbitrary shaping through a single time-indexed shaper.
//
// # Quick start
//
//	pool := eiffel.NewPool(1024)
//	tree := eiffel.NewTree(eiffel.TreeOptions{
//		RootRanker: eiffel.WFQ{},
//		RootQueue:  eiffel.QueueConfig{NumBuckets: 1 << 14, Granularity: 1},
//	})
//	leaf := tree.NewPacketLeaf(nil, eiffel.EDF{}, eiffel.ClassOptions{Name: "edf"})
//
//	p := pool.Get()
//	p.Deadline = 1000
//	tree.Enqueue(leaf, p, now)
//	out := tree.Dequeue(now)
//
// # Picking a queue
//
// Choose implements the paper's Figure 20 decision tree:
//
//	kind := eiffel.Choose(eiffel.Characteristics{
//		MovingRange:    true,
//		PriorityLevels: 20000,
//	}) // -> KindCFFS
//	q := eiffel.NewQueue(kind, eiffel.QueueConfig{NumBuckets: 1 << 14})
//
// Lower-level building blocks (the standalone queues, the hClock scheduler,
// the kernel-style qdiscs, the mini-BESS pipeline, and the datacenter
// simulator used to reproduce the paper's figures) live under internal/;
// this package re-exports the stable, user-facing surface.
package eiffel

import (
	"eiffel/internal/bucket"
	"eiffel/internal/ffsq"
	"eiffel/internal/hclock"
	"eiffel/internal/pifo"
	"eiffel/internal/pkt"
	"eiffel/internal/policy"
	"eiffel/internal/qdisc"
	"eiffel/internal/queue"
	"eiffel/internal/shardq"
	"eiffel/internal/stats"
)

// Core re-exported types. Node is the intrusive queue handle; embed or own
// one per schedulable item and point Data back at the item.
type (
	// Node is the intrusive handle stored in every queue backend.
	Node = bucket.Node
	// PQ is the common min-priority-queue contract.
	PQ = queue.PQ
	// QueueKind names a queue backend.
	QueueKind = queue.Kind
	// QueueConfig sizes a queue backend.
	QueueConfig = queue.Config
	// Characteristics feeds the Figure 20 decision tree.
	Characteristics = queue.Characteristics

	// Packet is the schedulable unit.
	Packet = pkt.Packet
	// Pool recycles packets for allocation-free hot paths.
	Pool = pkt.Pool

	// Tree is the extended-PIFO hierarchical scheduler.
	Tree = pifo.Tree
	// Class is one node of a scheduler tree.
	Class = pifo.Class
	// Flow is the per-flow ranking unit inside flow leaves.
	Flow = pifo.Flow
	// TreeOptions configures a scheduler tree.
	TreeOptions = pifo.TreeOptions
	// ClassOptions configures a class.
	ClassOptions = pifo.ClassOptions
	// ChildRanker ranks child classes (scheduling transactions).
	ChildRanker = pifo.ChildRanker
	// PacketRanker ranks packets at leaves.
	PacketRanker = pifo.PacketRanker
	// FlowPolicy is the per-flow ranking + on-dequeue ranking primitive.
	FlowPolicy = pifo.FlowPolicy
)

// Queue backend kinds (see QueueKind.String for table names).
const (
	// KindCFFS is the circular hierarchical FFS queue — the default.
	KindCFFS = queue.KindCFFS
	// KindFFS is a fixed-range hierarchical FFS queue.
	KindFFS = queue.KindFFS
	// KindFFSFlat is the flat sequential-scan FFS queue.
	KindFFSFlat = queue.KindFFSFlat
	// KindApprox is the approximate gradient queue.
	KindApprox = queue.KindApprox
	// KindCApprox is the circular approximate gradient queue.
	KindCApprox = queue.KindCApprox
	// KindBH is the bucketed queue with a binary-heap index.
	KindBH = queue.KindBH
	// KindBinaryHeap is a comparison-based binary heap.
	KindBinaryHeap = queue.KindBinaryHeap
	// KindPairingHeap is a comparison-based pairing heap.
	KindPairingHeap = queue.KindPairingHeap
	// KindRBTree is a comparison-based red-black tree.
	KindRBTree = queue.KindRBTree
)

// Scheduling transactions and policies.
type (
	// WFQ is weighted fair queueing over child classes.
	WFQ = policy.WFQ
	// StrictChild ranks child classes by static priority.
	StrictChild = policy.StrictChild
	// RRChild round-robins child classes.
	RRChild = policy.RRChild
	// EDF ranks packets by deadline.
	EDF = policy.EDF
	// StrictPacket ranks packets by class annotation.
	StrictPacket = policy.StrictPacket
	// FIFO ranks packets by arrival.
	FIFO = policy.FIFO
	// LSTF ranks packets by slack (least slack time first).
	LSTF = policy.LSTF
	// RankAnnotation ranks packets by their Rank field.
	RankAnnotation = policy.RankAnnotation
	// LQF is Longest Queue First (Figure 6).
	LQF = policy.LQF
	// SQF is Shortest Queue First.
	SQF = policy.SQF
	// PFabric is shortest-remaining-first per-flow ranking (Figure 14).
	PFabric = policy.PFabric
	// FlowFIFO serves flows in arrival order.
	FlowFIFO = policy.FlowFIFO
)

// NewQueue constructs a priority-queue backend.
func NewQueue(k QueueKind, cfg QueueConfig) PQ { return queue.New(k, cfg) }

// NewTree constructs a hierarchical scheduler.
func NewTree(opt TreeOptions) *Tree { return pifo.NewTree(opt) }

// NewPool constructs a packet pool.
func NewPool(capacity int) *Pool { return pkt.NewPool(capacity) }

// Choose implements the Figure 20 decision tree for selecting a queue
// backend from scheduling-policy characteristics.
func Choose(c Characteristics) QueueKind { return queue.Choose(c) }

// ChooseThreshold is the priority-level count below which the backend
// choice is immaterial (§5.2).
const ChooseThreshold = queue.ChooseThreshold

// Compile builds a scheduler tree from a textual policy description — the
// role the PIFO reference implementation fills with DOT translation (§4).
// See pifo.Compile for the grammar. Transactions resolve to the policies
// in this package (wfq/strict/rr, edf/fifo/strict/lstf/rank,
// pfabric/lqf/sqf/fifo).
func Compile(spec string) (*Tree, map[string]*Class, error) {
	return pifo.Compile(spec, policy.Registry{})
}

// Log-scale queue: the non-uniform bucket granularity prototype (§5.2
// future work) — fine buckets near the window start, geometrically coarser
// far out.
type (
	// LogQueue is a bucketed min-queue with log-scale granularity.
	LogQueue = ffsq.LogQueue
	// LogOptions sizes a LogQueue.
	LogOptions = ffsq.LogOptions
)

// NewLogQueue constructs a log-scale bucketed min-queue.
func NewLogQueue(opt LogOptions) *LogQueue { return ffsq.NewLogQueue(opt) }

// Sharded multi-producer runtime: N shards, each owning its own bucketed
// queue behind a lock-free MPSC ring, replacing the kernel's global qdisc
// lock (§4) with flow-hashed partitioning and batched drains. Enqueue is
// safe from any number of goroutines; the consuming side partitions into
// consumer GROUPS (ShardedOptions.NumGroups, default 1 — the single-
// consumer deployment), each drained by its own worker goroutine through
// GroupDequeueBatch with per-flow order identical to the single-consumer
// runtime. Len is lock-free and may transiently overcount by up to one
// in-flight batch while producers and the consumer run concurrently; it
// is exact at quiescence. See ARCHITECTURE.md for the design.
//
// The enqueue side batches too: a per-goroutine Producer handle stages
// elements per shard and publishes each shard's run as ONE multi-slot
// ring claim (one CAS for the whole run), and EnqueueBatch does the same
// for one-shot callers. Both are allocation-free in steady state — see
// ExampleShardedQueue_producer.
type (
	// ShardedQueue is the sharded multi-producer priority-queue runtime.
	ShardedQueue = shardq.Q
	// ShardedOptions sizes a ShardedQueue.
	ShardedOptions = shardq.Options
	// ShardedStats is a snapshot of a ShardedQueue's counters.
	ShardedStats = shardq.Snapshot
	// Producer is a per-goroutine batched enqueue handle for a
	// ShardedQueue (NewProducer). Staged elements publish on Flush.
	Producer = shardq.Producer
	// ShapedProducer is the Producer analogue for a ShapedShardedQueue.
	ShapedProducer = shardq.ShapedProducer
)

// NewShardedQueue constructs a sharded multi-producer runtime.
func NewShardedQueue(opt ShardedOptions) *ShardedQueue { return shardq.New(opt) }

// Shaped-and-scheduled sharded runtime: the multi-producer form of the
// paper's decoupled shaping (§3.2.2, Figure 8). Every element carries two
// keys — a release time and a priority — through the packet's paired
// TimerNode/SchedNode handles; producers publish lock-free, and the single
// consumer migrates due elements from per-shard time-indexed shapers into
// per-shard priority-indexed schedulers before draining the schedulers in
// merged cross-shard priority order.
type (
	// ShapedShardedQueue is the shaped+scheduled sharded runtime.
	ShapedShardedQueue = shardq.Shaped
	// ShapedShardedQueueOptions sizes a ShapedShardedQueue.
	ShapedShardedQueueOptions = shardq.ShapedOptions
	// PairFunc maps a published shaper handle to its scheduler twin.
	PairFunc = shardq.PairFunc

	// ShapedSharded is the qdisc-shaped surface over the runtime: packets
	// gate on SendAt and release in Rank order.
	ShapedSharded = qdisc.ShapedSharded
	// ShapedShardedOptions sizes a ShapedSharded qdisc.
	ShapedShardedOptions = qdisc.ShapedShardedOptions
)

// Parallel egress: the sharded runtimes partitioned into consumer groups,
// each drained by a dedicated worker into its own egress sink — the
// multi-queue-NIC topology. Flow-hash confinement pins every flow to one
// shard, hence one group, so per-flow dequeue order is identical to the
// single-consumer qdiscs with zero new hot-path synchronization; only the
// interleaving across groups (across TX queues) is relaxed.
type (
	// MultiSharded is Sharded drained by one worker per consumer group.
	MultiSharded = qdisc.MultiSharded
	// MultiShardedOptions sizes a MultiSharded qdisc.
	MultiShardedOptions = qdisc.MultiShardedOptions
	// MultiShaped is ShapedSharded drained by one worker per consumer
	// group, each migrating and draining on its own clock.
	MultiShaped = qdisc.MultiShaped
	// MultiShapedOptions sizes a MultiShaped qdisc.
	MultiShapedOptions = qdisc.MultiShapedOptions
	// EgressSink models one egress transmit queue (a NIC TX ring); each
	// group worker owns one.
	EgressSink = qdisc.EgressSink
	// CountingSink is the trivial EgressSink: an atomic packet counter.
	CountingSink = qdisc.CountingSink
)

// NewMultiSharded constructs a parallel-egress sharded qdisc.
func NewMultiSharded(opt MultiShardedOptions) *MultiSharded {
	return qdisc.NewMultiSharded(opt)
}

// NewMultiShaped constructs a parallel-egress shaped+scheduled qdisc.
func NewMultiShaped(opt MultiShapedOptions) *MultiShaped {
	return qdisc.NewMultiShaped(opt)
}

// Programmable policies on the sharded runtime: every shard of a
// ShardedQueue can own any Scheduler backend (Options.Backend), and
// PolicySharded uses that hook to run a compiled extended-PIFO program —
// pFabric, LQF, hierarchical WFQ, anything the Compile grammar expresses —
// shard-confined behind the lock-free multi-producer admission path.
// Flow-hash sharding keeps each flow's backlog on one shard, so per-flow
// ranking and on-dequeue transactions stay exact (flow-local dequeue order
// is identical to one global locked Tree), while cross-shard order merges
// approximately by each shard's head rank.
type (
	// Scheduler is the per-shard queue backend contract of the sharded
	// runtime (EnqueueBatch/DequeueBatch/Min).
	Scheduler = shardq.Scheduler
	// PolicySharded runs a compiled policy program on the sharded runtime.
	PolicySharded = qdisc.PolicySharded
	// PolicyShardedOptions configures a PolicySharded qdisc.
	PolicyShardedOptions = qdisc.PolicyShardedOptions
	// PolicyTree is the single-tree baseline for the same program.
	PolicyTree = qdisc.PolicyTree
)

// Canonical policy programs in the Compile grammar — the same definitions
// the experiments and examples replay, so external callers can run the
// paper's showcases without re-typing the program text.
const (
	// PolicySpecPFabric is shortest-remaining-first per-flow ranking.
	PolicySpecPFabric = qdisc.PolicySpecPFabric
	// PolicySpecLQF is Longest Queue First.
	PolicySpecLQF = qdisc.PolicySpecLQF
	// PolicySpecHWFQ is a two-class 3:1 weighted hierarchy.
	PolicySpecHWFQ = qdisc.PolicySpecHWFQ
)

// NewPolicySharded compiles a policy program (one private Tree per shard)
// onto the sharded multi-producer runtime.
func NewPolicySharded(opt PolicyShardedOptions) (*PolicySharded, error) {
	return qdisc.NewPolicySharded(opt)
}

// NewPolicyTree compiles the same program into a single-tree qdisc — the
// locked baseline PolicySharded is measured against.
func NewPolicyTree(spec, leaf string) (*PolicyTree, error) {
	return qdisc.NewPolicyTree(spec, leaf)
}

// Hierarchical QoS (hClock) on the sharded runtime: a HierSpec describes a
// tenant tree — reservations (minimum rates), limits (rate caps), and
// proportional-share weights, with a FIFO or ranked in-tenant order — and
// NewHierSharded compiles it once per shard, renormalizing every tenant's
// rates by the shard count so the tree still aggregates to its configured
// rates. Flow-hash sharding keeps each tenant's per-flow backlog
// shard-confined (per-flow order is exact), the cross-shard merge runs on
// quantized share virtual time, and a shard holding a due reservation
// preempts every share tag — hClock's two-phase preference lifted across
// shards.
type (
	// HierSpec is the tenant table plus engine sizing for a hierarchical
	// QoS qdisc.
	HierSpec = shardq.HierSpec
	// HierTenant is one traffic class of a HierSpec: reservation, limit,
	// weight, and in-tenant policy.
	HierTenant = shardq.HierTenant
	// HierSharded runs one hClock engine per shard of the multi-producer
	// runtime.
	HierSharded = qdisc.HierSharded
	// HierShardedOptions configures a HierSharded qdisc.
	HierShardedOptions = qdisc.HierShardedOptions
	// HierTree is the single-engine whole-tree baseline for the same
	// spec; wrap it in NewLocked for the kernel-style deployment.
	HierTree = qdisc.HierTree
	// Locked serializes a Qdisc behind one mutex — the kernel's global
	// qdisc lock, the baseline deployment sharded qdiscs are measured
	// against.
	Locked = qdisc.Locked
	// HClockBackend selects the tag-index implementation of a HierSpec
	// (Eiffel FFS queues, binary heaps, approximate gradient queues).
	HClockBackend = hclock.Backend
)

// Tag-index backends for HierSpec.Backend.
const (
	// HClockEiffel indexes tags with circular hierarchical FFS queues —
	// the paper's O(1) configuration.
	HClockEiffel = hclock.BackendEiffel
	// HClockHeap indexes tags with binary min-heaps — the original
	// hClock baseline.
	HClockHeap = hclock.BackendHeap
	// HClockApprox indexes tags with approximate gradient queues.
	HClockApprox = hclock.BackendApprox
)

// NewHierSharded compiles the spec once per shard (rates renormalized by
// the shard count) onto the sharded multi-producer runtime.
func NewHierSharded(opt HierShardedOptions) (*HierSharded, error) {
	return qdisc.NewHierSharded(opt)
}

// NewHierTree compiles the spec into one whole-tree engine — the locked
// baseline HierSharded is measured against (wrap in NewLocked).
func NewHierTree(spec HierSpec) (*HierTree, error) {
	return qdisc.NewHierTree(spec)
}

// NewLocked wraps any Qdisc behind one mutex (the kernel-style global
// qdisc lock deployment).
func NewLocked(q Qdisc) *Locked { return qdisc.NewLocked(q) }

// NewShapedShardedQueue constructs a shaped+scheduled sharded runtime.
func NewShapedShardedQueue(opt ShapedShardedQueueOptions) *ShapedShardedQueue {
	return shardq.NewShaped(opt)
}

// NewShapedSharded constructs a shaped+scheduled sharded qdisc over
// pkt.Packet's TimerNode/SchedNode pair.
func NewShapedSharded(opt ShapedShardedOptions) *ShapedSharded {
	return qdisc.NewShapedSharded(opt)
}

// Approximate scheduler backends: the per-shard Scheduler slot accepts
// cheaper-than-exact priority indexes that trade bounded rank inversion
// for indexing cost — the paper's §3.1.2 gradient queue as a drop-in
// backend, and a RIFO-style fixed-rank-window at the extreme-cheap end.
// Select one per ShapedSharded via ShapedShardedOptions.SchedBackend, or
// construct directly for a ShapedShardedQueue's SchedBackend hook. Each
// backend's worst-case inversion magnitude is analytic (the *Bound
// functions); ReplayInversions measures the realised count and magnitude
// against an exact oracle replay.
type (
	// SchedBackendKind selects a ShapedSharded's per-shard scheduler
	// backend family.
	SchedBackendKind = qdisc.SchedBackendKind
	// GradSchedOptions configures a gradient scheduler backend.
	GradSchedOptions = shardq.GradSchedOptions
	// InversionStats aggregates rank-inversion measurements from a
	// ReplayInversions run.
	InversionStats = qdisc.InversionStats
	// Qdisc is the kernel queuing-discipline contract the replay
	// harnesses drive.
	Qdisc = qdisc.Qdisc
	// ContentionOptions tunes how a contention replay drives a qdisc.
	ContentionOptions = qdisc.ContentionOptions
)

// ReplayInversions pushes a contention workload through q and measures the
// realised rank-inversion count and magnitude of the drain sequence
// against an exact oracle replay; compare InversionStats.MaxMagnitude with
// the backend's analytic *Bound.
func ReplayInversions(q Qdisc, packets [][]*Packet, opt ContentionOptions) InversionStats {
	return qdisc.ReplayInversions(q, packets, opt)
}

// ShapedPackets builds the shaped contention workload ReplayInversions
// replays: per-producer packet sets with release times spread over the
// shaping horizon and ranks uniform over rankSpan.
func ShapedPackets(producers, perProducer int, rankSpan uint64) [][]*Packet {
	return qdisc.ShapedPackets(producers, perProducer, rankSpan)
}

// Scheduler backend kinds for ShapedShardedOptions.SchedBackend.
const (
	// SchedVec is the exact vectorized hierarchical-FFS backend (default).
	SchedVec = qdisc.SchedVec
	// SchedGrad is the gradient curvature-estimate backend (approximate).
	SchedGrad = qdisc.SchedGrad
	// SchedGradExact is the Theorem-1 exact gradient hierarchy.
	SchedGradExact = qdisc.SchedGradExact
	// SchedRIFO is the fixed-rank-window backend (approximate).
	SchedRIFO = qdisc.SchedRIFO
)

// NewVecSched constructs the exact vectorized Scheduler backend —
// the default the approximate family is measured against.
func NewVecSched(cfg QueueConfig) Scheduler { return shardq.NewVecSched(cfg) }

// NewGradSched constructs a gradient-indexed Scheduler backend.
func NewGradSched(cfg QueueConfig, opt GradSchedOptions) Scheduler {
	return shardq.NewGradSched(cfg, opt)
}

// NewRIFOSched constructs a fixed-rank-window Scheduler backend with the
// given number of window slots (0 selects the default, 64).
func NewRIFOSched(cfg QueueConfig, slots int) Scheduler {
	return shardq.NewRIFOSched(cfg, slots)
}

// VecSchedBound returns NewVecSched's worst-case rank-inversion magnitude
// over cfg: bucket quantization only.
func VecSchedBound(cfg QueueConfig) uint64 { return shardq.VecSchedBound(cfg) }

// GradSchedBound returns NewGradSched's analytic worst-case rank-inversion
// magnitude over cfg.
func GradSchedBound(cfg QueueConfig, opt GradSchedOptions) uint64 {
	return shardq.GradSchedBound(cfg, opt)
}

// RIFOSchedBound returns NewRIFOSched's analytic worst-case rank-inversion
// magnitude over cfg: one window slot's width minus one.
func RIFOSchedBound(cfg QueueConfig, slots int) uint64 {
	return shardq.RIFOSchedBound(cfg, slots)
}

// Flow lifecycle under open-world churn: bounded admission (per-shard
// occupancy caps with per-packet pushback instead of the legacy unbounded
// spill) and idle-flow eviction on the direct policy path, the pair that
// keeps a qdisc's memory proportional to its LIVE flow window while
// millions of short-lived flows come and go — the regime the paper
// indicts kernel FQ's flow garbage collection for (§5.1).
type (
	// AdmitPolicy selects what a qdisc does with packets its shard bound
	// refuses: drop-tail (count and discard) or backpressure (hand back).
	AdmitPolicy = qdisc.AdmitPolicy
	// AdmitQdisc is the bounded-admission qdisc surface implemented by
	// Sharded, ShapedSharded, and PolicySharded.
	AdmitQdisc = qdisc.AdmitQdisc
	// Admit is the runtime-level outcome of one bounded flush.
	Admit = shardq.Admit
	// PushReason classifies why bounded admission refused elements.
	PushReason = shardq.PushReason
	// FlowEvicter is the idle-flow eviction surface of a qdisc
	// (PolicySharded on the direct ranked-service path).
	FlowEvicter = qdisc.FlowEvicter
	// ChurnOptions tunes a ReplayChurn run.
	ChurnOptions = qdisc.ChurnOptions
	// ChurnResult is what a churn replay observed.
	ChurnResult = qdisc.ChurnResult
)

// Admission policies and refusal reasons.
const (
	// AdmitDropTail discards refused packets, counting them aggregate and
	// per-tenant.
	AdmitDropTail = qdisc.AdmitDropTail
	// AdmitBackpressure hands refused packets back to the caller uncounted.
	AdmitBackpressure = qdisc.AdmitBackpressure
	// PushNone reports nothing refused.
	PushNone = shardq.PushNone
	// PushShardFull reports refusals from a shard at its occupancy bound.
	PushShardFull = shardq.PushShardFull
	// PushClosed reports refusals from a closed (draining) runtime.
	PushClosed = shardq.PushClosed
)

// Fault-tolerant egress and graceful lifecycle: sinks that can refuse
// work (FallibleSink) are driven with bounded retries, capped
// exponential backoff, and a per-packet deadline (RetryPolicy), with
// every disposal accounted by reason; the parallel-egress fronts close
// through a running → draining → closed state machine whose quiescence
// obeys admitted == tx'd + dropped + released exactly; and Serve worker
// fleets are supervised — panic recovery with a bounded restart budget,
// a stall watchdog, and per-group health. See ARCHITECTURE.md ("Egress
// fault tolerance and lifecycle") and internal/fault for the chaos
// harness that asserts the exactly-once contract under injected faults.
type (
	// FallibleSink is an egress transmit queue that can refuse work:
	// TryTx accepts a prefix of the batch and says why it stopped.
	FallibleSink = qdisc.FallibleSink
	// RetryPolicy bounds how hard egress fights a refusing sink.
	RetryPolicy = qdisc.RetryPolicy
	// DropReason classifies why resilient egress dropped a packet.
	DropReason = qdisc.DropReason
	// ResilientSink adapts a FallibleSink to the infallible EgressSink
	// contract by retrying under a RetryPolicy.
	ResilientSink = qdisc.ResilientSink
	// ServeOptions tunes a supervised Serve fleet and the lifecycle
	// drain.
	ServeOptions = qdisc.ServeOptions
	// Server is a running supervised egress fleet (ServeWith).
	Server = qdisc.Server
	// GroupHealth is one consumer group's supervision snapshot.
	GroupHealth = qdisc.GroupHealth
	// DrainReport is the conservation accounting a Drain/CloseForce
	// returns at quiescence.
	DrainReport = qdisc.DrainReport
	// LifecycleState is a front's position in the close protocol.
	LifecycleState = qdisc.LifecycleState
	// EgressStats aggregates resilient-egress disposal accounting.
	EgressStats = stats.Egress
	// EgressStatsSnapshot is a point-in-time copy of an EgressStats.
	EgressStatsSnapshot = stats.EgressSnapshot
)

// Drop reasons and lifecycle states.
const (
	// DropDeadline: the packet's retry deadline expired.
	DropDeadline = qdisc.DropDeadline
	// DropRetryBudget: the packet's retry budget was exhausted.
	DropRetryBudget = qdisc.DropRetryBudget
	// DropSinkFailed: the group's sink exhausted its panic budget.
	DropSinkFailed = qdisc.DropSinkFailed
	// StateRunning: admission open.
	StateRunning = qdisc.StateRunning
	// StateDraining: Close called; refusable admission refuses.
	StateDraining = qdisc.StateDraining
	// StateClosed: exact quiescence reached.
	StateClosed = qdisc.StateClosed
)

// NewResilientSink wraps a FallibleSink with retry/backoff/deadline
// handling; onDrop (optional) observes every packet given up on.
func NewResilientSink(sink FallibleSink, pol RetryPolicy, onDrop func(*Packet, DropReason)) *ResilientSink {
	return qdisc.NewResilientSink(sink, pol, onDrop)
}

// ReplayChurn drives a bounded-admission qdisc with open-world short-lived
// flow churn and reports throughput, drop accounting, per-flow order
// verdicts, and heap behavior; see qdisc.ReplayChurn.
func ReplayChurn(q AdmitQdisc, opt ChurnOptions) ChurnResult {
	return qdisc.ReplayChurn(q, opt)
}
