package eiffel_test

import (
	"fmt"

	"eiffel"
)

// ExampleCompile builds a two-leaf weighted-fair hierarchy from the
// textual policy grammar (the role DOT translation plays for the PIFO
// reference implementation, §4) and drains a small burst through it.
func ExampleCompile() {
	tree, classes, err := eiffel.Compile(`
		root ranker=wfq buckets=1024
		leaf edf  parent=root ranker=edf  weight=1 buckets=1024
		leaf fifo parent=root ranker=fifo weight=1 buckets=1024
	`)
	if err != nil {
		panic(err)
	}

	pool := eiffel.NewPool(8)
	for _, deadline := range []int64{300, 100, 200} {
		p := pool.Get()
		p.Size = 100
		p.Deadline = deadline
		tree.Enqueue(classes["edf"], p, 0)
	}

	for tree.Len() > 0 {
		p := tree.Dequeue(0)
		fmt.Println(p.Deadline)
	}
	// Output:
	// 100
	// 200
	// 300
}

// ExampleChoose walks the paper's Figure 20 decision tree for two of its
// running examples: Carousel-style rate limiting (moving range, skewed
// occupancy) and 802.1Q strict priorities (fixed range, few levels).
func ExampleChoose() {
	rateLimiting := eiffel.Choose(eiffel.Characteristics{
		MovingRange:    true,
		PriorityLevels: 20000,
	})
	strictPriority := eiffel.Choose(eiffel.Characteristics{
		PriorityLevels: 8,
	})
	fmt.Println(rateLimiting)
	fmt.Println(strictPriority)
	// Output:
	// cFFS
	// BinHeap
}

// ExampleNewShapedSharded shows the decoupled shaping + priority
// scheduling qdisc (Figure 8 on the sharded multi-producer runtime): a
// packet never leaves before its SendAt, and among eligible packets
// release order follows Rank — even when the earliest-due packet has the
// worst priority.
func ExampleNewShapedSharded() {
	q := eiffel.NewShapedSharded(eiffel.ShapedShardedOptions{
		Shards:    4,
		HorizonNs: 2000, // tiny horizon: 1 ns shaping buckets
		RankSpan:  1 << 11,
	})
	pool := eiffel.NewPool(4)
	for _, pkt := range []struct{ sendAt, rank int64 }{
		{100, 30}, // due first, worst priority
		{200, 10},
		{300, 20},
	} {
		p := pool.Get()
		p.Flow = uint64(pkt.rank)
		p.SendAt = pkt.sendAt
		p.Rank = uint64(pkt.rank)
		q.Enqueue(p, 0)
	}
	fmt.Println(q.Dequeue(50) == nil) // nothing due yet
	if p := q.Dequeue(150); p != nil {
		fmt.Println(p.Rank) // only the rank-30 packet is eligible
	}
	for {
		p := q.Dequeue(350) // both remaining are eligible: priority order
		if p == nil {
			break
		}
		fmt.Println(p.Rank)
	}
	// Output:
	// true
	// 30
	// 10
	// 20
}

// ExampleNewLogQueue shows the log-scale bucket granularity prototype
// (§5.2 future work): near-base ranks get exact 1-unit buckets while a
// rank far beyond the linear region shares a geometrically wider bucket,
// so one queue spans a huge range with relative precision.
func ExampleNewLogQueue() {
	q := eiffel.NewLogQueue(eiffel.LogOptions{
		Granularity:  1,
		MantissaBits: 6,
	})
	fmt.Println(q.BucketWidth(10))      // linear region: exact
	fmt.Println(q.BucketWidth(1 << 20)) // far out: ~3% relative precision
	// Output:
	// 1
	// 32768
}

// ExampleShardedQueue_producer shows the batched enqueue pipeline: a
// per-goroutine Producer stages elements per shard and publishes each
// shard's run as one multi-slot ring claim — one CAS for the whole run
// instead of one per element. Staged elements are invisible until Flush;
// after it, the consumer's batched drain merges shards in rank order
// exactly as with per-element Enqueue.
func ExampleShardedQueue_producer() {
	q := eiffel.NewShardedQueue(eiffel.ShardedOptions{NumShards: 4})
	prod := q.NewProducer(64) // one handle per producer goroutine

	nodes := make([]eiffel.Node, 6)
	for i := range nodes {
		flow, rank := uint64(i%3), uint64((i*37)%100)
		prod.Enqueue(flow, &nodes[i], rank)
	}
	fmt.Println(q.Len()) // still staged: nothing published yet

	prod.Flush()
	fmt.Println(q.Len())

	out := make([]*eiffel.Node, 8)
	n := q.DequeueBatch(^uint64(0), out)
	for i, nd := range out[:n] {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Print(nd.Rank())
	}
	fmt.Println()

	st := q.Stats()
	fmt.Println(st.BulkClaimed, "elements over", st.BulkClaims, "claims")
	// Output:
	// 0
	// 6
	// 0 11 37 48 74 85
	// 6 elements over 2 claims
}

// ExampleNewPolicySharded runs the paper's Longest-Queue-First program
// (Figure 6 — per-flow ranking plus on-dequeue re-ranking) on the sharded
// multi-producer runtime: each shard owns a private compiled tree, and the
// longest flow is always served first. One shard keeps the output
// deterministic for the example; real deployments shard by flow hash.
func ExampleNewPolicySharded() {
	q, err := eiffel.NewPolicySharded(eiffel.PolicyShardedOptions{
		Policy: `
			root ranker=strict
			leaf lqf parent=root kind=flow policy=lqf buckets=4096 gran=1
		`,
		Shards: 1,
	})
	if err != nil {
		panic(err)
	}

	pool := eiffel.NewPool(16)
	enqueue := func(flow uint64, n int) {
		for i := 0; i < n; i++ {
			p := pool.Get()
			p.Flow = flow
			p.Size = 100
			q.Enqueue(p, 0)
		}
	}
	enqueue(1, 1)
	enqueue(2, 3) // longest: served until flow 3 ties
	enqueue(3, 2)

	for {
		p := q.Dequeue(0)
		if p == nil {
			break
		}
		fmt.Print(p.Flow, " ")
	}
	fmt.Println()
	// Output:
	// 2 3 2 1 3 2
}
