package eiffel_test

import (
	"testing"

	"eiffel"
)

// TestEnqueueHotPathAllocationFree is the tentpole's allocation assertion
// outside the bench runner: a steady-state publish→drain lap through the
// batched producer pipeline — packet pool, staged batch admission,
// multi-slot ring claims, merged drain, pool recycling — must allocate
// NOTHING, and the packet pool must stay flat (no pool misses).
func TestEnqueueHotPathAllocationFree(t *testing.T) {
	const burst = 512
	q := eiffel.NewShapedSharded(eiffel.ShapedShardedOptions{
		Shards: 4, HorizonNs: 1 << 20, RankSpan: 1 << 20,
	})
	pool := eiffel.NewPool(burst)
	ps := make([]*eiffel.Packet, burst)
	out := make([]*eiffel.Packet, 128)
	now := int64(1 << 19)

	lap := func() {
		for i := range ps {
			p := pool.Get()
			p.Flow = uint64(i)
			p.SendAt = int64(i % (1 << 18))
			p.Rank = uint64((i * 131) % (1 << 20))
			ps[i] = p
		}
		q.EnqueueBatch(ps, now)
		drained := 0
		for drained < burst {
			k := q.DequeueBatch(1<<20, out)
			if k == 0 {
				t.Fatalf("drain stalled at %d of %d", drained, burst)
			}
			for _, p := range out[:k] {
				pool.Put(p)
			}
			drained += k
		}
	}

	lap() // warm internal buffers (staging, scratch, vector buckets)
	lap()
	base := pool.Allocs()
	if avg := testing.AllocsPerRun(50, lap); avg != 0 {
		t.Fatalf("steady-state lap allocates %.1f objects, want 0", avg)
	}
	if got := pool.Allocs(); got != base {
		t.Fatalf("packet pool grew from %d to %d allocations in steady state", base, got)
	}
}
