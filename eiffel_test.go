package eiffel_test

import (
	"testing"

	"eiffel"
)

func TestFacadeQuickstart(t *testing.T) {
	pool := eiffel.NewPool(16)
	tree := eiffel.NewTree(eiffel.TreeOptions{
		RootRanker: eiffel.WFQ{},
		RootQueue:  eiffel.QueueConfig{NumBuckets: 1 << 10, Granularity: 1},
	})
	leaf := tree.NewPacketLeaf(nil, eiffel.EDF{}, eiffel.ClassOptions{
		Name:  "edf",
		Queue: eiffel.QueueConfig{NumBuckets: 1 << 10, Granularity: 1},
	})
	for _, d := range []int64{300, 100, 200} {
		p := pool.Get()
		p.Size = 100
		p.Deadline = d
		tree.Enqueue(leaf, p, 0)
	}
	var got []int64
	for {
		p := tree.Dequeue(0)
		if p == nil {
			break
		}
		got = append(got, p.Deadline)
	}
	want := []int64{100, 200, 300}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EDF order %v", got)
		}
	}
}

func TestFacadeQueueRoundTrip(t *testing.T) {
	for _, k := range []eiffel.QueueKind{eiffel.KindCFFS, eiffel.KindApprox, eiffel.KindBH, eiffel.KindBinaryHeap} {
		q := eiffel.NewQueue(k, eiffel.QueueConfig{NumBuckets: 256, Granularity: 1})
		var n eiffel.Node
		q.Enqueue(&n, 42)
		if q.Len() != 1 {
			t.Fatalf("%v: Len", k)
		}
		if got := q.DequeueMin(); got != &n {
			t.Fatalf("%v: wrong node", k)
		}
	}
}

func TestFacadeChoose(t *testing.T) {
	k := eiffel.Choose(eiffel.Characteristics{MovingRange: true, PriorityLevels: 20000})
	if k != eiffel.KindCFFS {
		t.Fatalf("Choose = %v, want cFFS", k)
	}
}

func TestFacadeCompile(t *testing.T) {
	tree, classes, err := eiffel.Compile(`
		root ranker=wfq rate=1G buckets=1024
		leaf web parent=root kind=flow policy=pfabric buckets=8192 gran=64
		leaf rt  parent=root ranker=edf weight=4 buckets=1024
	`)
	if err != nil {
		t.Fatal(err)
	}
	if tree == nil || classes["web"] == nil || classes["rt"] == nil {
		t.Fatal("compiled classes missing")
	}
	pool := eiffel.NewPool(4)
	p := pool.Get()
	p.Size = 100
	p.Deadline = 5
	tree.Enqueue(classes["rt"], p, 0)
	if got := tree.Dequeue(0); got == nil {
		t.Fatal("compiled tree lost a packet")
	}
}

func TestFacadeLogQueue(t *testing.T) {
	q := eiffel.NewLogQueue(eiffel.LogOptions{Granularity: 1})
	var a, b eiffel.Node
	q.Enqueue(&a, 1<<30)
	q.Enqueue(&b, 7)
	if got := q.DequeueMin(); got != &b {
		t.Fatal("log queue min wrong")
	}
}
