package bucket

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPushPopFIFO(t *testing.T) {
	a := NewArray(4)
	n1, n2, n3 := &Node{Data: 1}, &Node{Data: 2}, &Node{Data: 3}
	if !a.Push(2, n1, 20) {
		t.Fatal("first push should report became-nonempty")
	}
	if a.Push(2, n2, 21) {
		t.Fatal("second push should not report became-nonempty")
	}
	a.Push(2, n3, 22)
	if got := a.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := a.BucketLen(2); got != 3 {
		t.Fatalf("BucketLen(2) = %d, want 3", got)
	}
	for i, want := range []int{1, 2, 3} {
		n, empty := a.PopFront(2)
		if n == nil || n.Data.(int) != want {
			t.Fatalf("pop %d: got %v, want %d", i, n, want)
		}
		if empty != (i == 2) {
			t.Fatalf("pop %d: becameEmpty = %v", i, empty)
		}
	}
	if n, _ := a.PopFront(2); n != nil {
		t.Fatal("pop from empty bucket should return nil")
	}
}

func TestRankRecorded(t *testing.T) {
	a := NewArray(2)
	n := &Node{}
	a.Push(1, n, 77)
	if n.Rank() != 77 {
		t.Fatalf("Rank = %d, want 77", n.Rank())
	}
	if n.BucketIndex() != 1 {
		t.Fatalf("BucketIndex = %d, want 1", n.BucketIndex())
	}
	if !n.Queued() || !n.InArray(a) {
		t.Fatal("node should report queued in a")
	}
	a.Remove(n)
	if n.Queued() || n.BucketIndex() != -1 {
		t.Fatal("detached node should report not queued")
	}
}

func TestRemoveMiddle(t *testing.T) {
	a := NewArray(1)
	nodes := make([]*Node, 5)
	for i := range nodes {
		nodes[i] = &Node{Data: i}
		a.Push(0, nodes[i], uint64(i))
	}
	if empty := a.Remove(nodes[2]); empty {
		t.Fatal("removing middle should not empty bucket")
	}
	a.Remove(nodes[0]) // head
	a.Remove(nodes[4]) // tail
	var got []int
	for {
		n, _ := a.PopFront(0)
		if n == nil {
			break
		}
		got = append(got, n.Data.(int))
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("remaining = %v, want [1 3]", got)
	}
	if a.Len() != 0 {
		t.Fatalf("Len = %d, want 0", a.Len())
	}
}

func TestFront(t *testing.T) {
	a := NewArray(2)
	if a.Front(0) != nil {
		t.Fatal("Front of empty bucket should be nil")
	}
	n := &Node{Data: "x"}
	a.Push(0, n, 1)
	if a.Front(0) != n {
		t.Fatal("Front should return pushed node without removing")
	}
	if a.Len() != 1 {
		t.Fatal("Front must not remove")
	}
}

func TestDoublePushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double push")
		}
	}()
	a := NewArray(1)
	n := &Node{}
	a.Push(0, n, 0)
	a.Push(0, n, 0)
}

func TestRemoveForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on removing foreign node")
		}
	}()
	a, b := NewArray(1), NewArray(1)
	n := &Node{}
	a.Push(0, n, 0)
	b.Remove(n)
}

func TestNewArrayRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n<=0")
		}
	}()
	NewArray(0)
}

// TestQuickFIFOPerBucket drives random push/pop/remove sequences against a
// model (per-bucket Go slices) and checks exact agreement.
func TestQuickFIFOPerBucket(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nb = 8
		a := NewArray(nb)
		model := make([][]*Node, nb)
		live := []*Node{}
		for op := 0; op < 500; op++ {
			switch r := rng.Intn(10); {
			case r < 5: // push
				b := rng.Intn(nb)
				n := &Node{Data: op}
				a.Push(b, n, uint64(op))
				model[b] = append(model[b], n)
				live = append(live, n)
			case r < 8: // pop front of random bucket
				b := rng.Intn(nb)
				n, _ := a.PopFront(b)
				if len(model[b]) == 0 {
					if n != nil {
						return false
					}
					continue
				}
				want := model[b][0]
				model[b] = model[b][1:]
				if n != want {
					return false
				}
				live = removeNode(live, n)
			default: // remove arbitrary live node
				if len(live) == 0 {
					continue
				}
				n := live[rng.Intn(len(live))]
				b := n.BucketIndex()
				a.Remove(n)
				model[b] = removeNode(model[b], n)
				live = removeNode(live, n)
			}
			total := 0
			for b := range model {
				total += len(model[b])
				if a.BucketLen(b) != len(model[b]) {
					return false
				}
				if a.BucketEmpty(b) != (len(model[b]) == 0) {
					return false
				}
			}
			if a.Len() != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func removeNode(s []*Node, n *Node) []*Node {
	for i, x := range s {
		if x == n {
			return append(append([]*Node{}, s[:i]...), s[i+1:]...)
		}
	}
	return s
}
