// Package bucket provides the shared substrate for bucketed integer priority
// queues: an intrusive node and a fixed array of FIFO buckets supporting O(1)
// push, pop-front and removal of arbitrary elements.
//
// Every queue in this repository (cFFS, gradient, BH, timing wheel, and the
// comparison-based baselines) moves the same Node type around, so schedulers
// can switch backends without re-allocating per-element state. A Node is
// meant to be embedded in (or owned 1:1 by) the queued item — a packet or a
// flow — with Data pointing back at the item, mirroring the intrusive
// list_head style the kernel qdiscs in the paper rely on.
package bucket

// Node is the intrusive handle for one queued element. The zero value is a
// detached node. A node may be in at most one bucket Array (or one
// comparison-based queue) at a time.
type Node struct {
	next, prev *Node
	owner      *Array
	rank       uint64
	bucket     int32

	// Pos is scratch space for comparison-based backends (heap index).
	// Bucketed queues ignore it.
	Pos int32

	// Data points back at the element that owns this node. It is set once
	// by the owner and never touched by queues.
	Data any
}

// Rank returns the rank recorded when the node was last enqueued. Bucketed
// queues keep the true (un-quantized) rank here so circular queues can
// re-distribute overflowed elements correctly.
//
//eiffel:hotpath
func (n *Node) Rank() uint64 { return n.rank }

// SetRank records r on a detached node. Queues overwrite it on enqueue; it
// exists so comparison-based backends can share the same handle.
//
//eiffel:hotpath
func (n *Node) SetRank(r uint64) { n.rank = r }

// Queued reports whether the node currently sits in a bucket Array.
//
//eiffel:hotpath
func (n *Node) Queued() bool { return n.owner != nil }

// InArray reports whether the node currently sits in a.
//
//eiffel:hotpath
func (n *Node) InArray(a *Array) bool { return n.owner == a }

// BucketIndex returns the bucket the node sits in, or -1 if detached.
//
//eiffel:hotpath
func (n *Node) BucketIndex() int {
	if n.owner == nil {
		return -1
	}
	return int(n.bucket)
}

type list struct {
	head, tail *Node
}

// Array is a fixed-size array of FIFO buckets. It maintains element counts
// but no occupancy index; the owning queue layers its own index (bitmap,
// hierarchy, curvature, or heap) on top, driven by the became-empty /
// became-nonempty results of each mutation.
type Array struct {
	buckets []list
	lens    []int32
	count   int
}

// NewArray returns an Array with n empty buckets. n must be positive.
func NewArray(n int) *Array {
	if n <= 0 {
		panic("bucket: NewArray needs a positive bucket count")
	}
	return &Array{
		buckets: make([]list, n),
		lens:    make([]int32, n),
	}
}

// NumBuckets returns the number of buckets.
func (a *Array) NumBuckets() int { return len(a.buckets) }

// Len returns the total number of queued nodes.
func (a *Array) Len() int { return a.count }

// BucketLen returns the number of nodes in bucket i.
func (a *Array) BucketLen(i int) int { return int(a.lens[i]) }

// BucketEmpty reports whether bucket i holds no nodes.
//
//eiffel:hotpath
func (a *Array) BucketEmpty(i int) bool { return a.buckets[i].head == nil }

// Push appends n to the FIFO tail of bucket i recording rank, and reports
// whether the bucket transitioned from empty to non-empty. n must be
// detached.
//
//eiffel:hotpath
func (a *Array) Push(i int, n *Node, rank uint64) (becameNonEmpty bool) {
	if n.owner != nil {
		panic("bucket: Push of a node that is already queued")
	}
	n.owner = a
	n.bucket = int32(i)
	n.rank = rank
	l := &a.buckets[i]
	n.prev = l.tail
	n.next = nil
	if l.tail != nil {
		l.tail.next = n
	} else {
		l.head = n
	}
	l.tail = n
	a.lens[i]++
	a.count++
	return n.prev == nil
}

// Front returns the FIFO head of bucket i without removing it, or nil.
//
//eiffel:hotpath
func (a *Array) Front(i int) *Node { return a.buckets[i].head }

// PopFront removes and returns the FIFO head of bucket i, reporting whether
// the bucket became empty. It returns (nil, false) on an empty bucket.
//
//eiffel:hotpath
func (a *Array) PopFront(i int) (n *Node, becameEmpty bool) {
	l := &a.buckets[i]
	n = l.head
	if n == nil {
		return nil, false
	}
	becameEmpty = a.unlink(n)
	return n, becameEmpty
}

// DrainBucket detaches every node of bucket i at once, writing them to out
// in FIFO order, and returns how many it wrote. When the bucket holds more
// nodes than out has room for it drains nothing and returns (0, false) —
// callers fall back to per-node PopFront. The bulk path walks the list
// once and settles the bucket's count bookkeeping in O(1) instead of
// per-node, which is what makes whole-bucket batch dequeues cheap.
//
//eiffel:hotpath
func (a *Array) DrainBucket(i int, out []*Node) (n int, ok bool) {
	cnt := int(a.lens[i])
	if cnt == 0 || cnt > len(out) {
		return 0, false
	}
	l := &a.buckets[i]
	k := 0
	for nd := l.head; nd != nil; {
		next := nd.next
		nd.next, nd.prev, nd.owner = nil, nil, nil
		nd.bucket = -1
		out[k] = nd
		k++
		nd = next
	}
	l.head, l.tail = nil, nil
	a.lens[i] = 0
	a.count -= cnt
	return cnt, true
}

// Remove detaches n from whatever bucket it is in, reporting whether that
// bucket became empty. n must currently be in this array.
//
//eiffel:hotpath
func (a *Array) Remove(n *Node) (becameEmpty bool) {
	if n.owner != a {
		panic("bucket: Remove of a node that is not in this array")
	}
	return a.unlink(n)
}

//eiffel:hotpath
func (a *Array) unlink(n *Node) (becameEmpty bool) {
	l := &a.buckets[n.bucket]
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	becameEmpty = l.head == nil
	a.lens[n.bucket]--
	a.count--
	n.next, n.prev, n.owner = nil, nil, nil
	n.bucket = -1
	return becameEmpty
}

// Circular queues rotate by swapping *Array pointers (their halves are held
// by pointer), so rotation is O(1) and node owner pointers stay valid; no
// content-level swap is provided.
