package pifo_test

import (
	"strings"
	"testing"

	"eiffel/internal/pifo"
	"eiffel/internal/pkt"
	"eiffel/internal/policy"
)

func compile(t *testing.T, spec string) (*pifo.Tree, map[string]*pifo.Class) {
	t.Helper()
	tree, classes, err := pifo.Compile(spec, policy.Registry{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return tree, classes
}

func TestCompileFigure7Policy(t *testing.T) {
	// The paper's Figure 7 hierarchy, as a policy description.
	tree, classes := compile(t, `
		# aggregate paced at 100M
		root ranker=wfq rate=100M buckets=4096
		class mid parent=root ranker=wfq weight=7 rate=10M buckets=4096
		leaf limited parent=mid ranker=fifo weight=9 rate=7M buckets=4096
		leaf open    parent=mid ranker=fifo weight=1 buckets=4096
	`)
	for _, name := range []string{"root", "mid", "limited", "open"} {
		if classes[name] == nil {
			t.Fatalf("class %q missing", name)
		}
	}
	pool := pkt.NewPool(64)
	p := pool.Get()
	p.Size = 100
	tree.Enqueue(classes["limited"], p, 0)
	if tree.Len() != 1 {
		t.Fatal("enqueue through compiled tree failed")
	}
}

func TestCompileFlowLeafPolicy(t *testing.T) {
	tree, classes := compile(t, `
		root ranker=wfq buckets=1024
		leaf pf parent=root kind=flow policy=pfabric buckets=16384 gran=64
	`)
	pool := pkt.NewPool(8)
	for _, r := range []uint64{5000, 100} {
		p := pool.Get()
		p.Flow = r // distinct flows
		p.Rank = r
		p.Size = 100
		tree.Enqueue(classes["pf"], p, 0)
	}
	got := tree.Dequeue(0)
	if got == nil || got.Rank != 100 {
		t.Fatalf("pFabric compiled leaf: got %v", got)
	}
}

func TestCompileTimeGatedLeaf(t *testing.T) {
	tree, classes := compile(t, `
		root ranker=wfq buckets=1024 shaperbuckets=4096 shapergran=1000
		leaf paced parent=root kind=timegated buckets=4096 gran=1000
	`)
	pool := pkt.NewPool(8)
	p := pool.Get()
	p.Size = 100
	p.SendAt = 50_000
	tree.Enqueue(classes["paced"], p, 0)
	if tree.Dequeue(0) != nil {
		t.Fatal("time gate ignored")
	}
	if tree.Dequeue(60_000) == nil {
		t.Fatal("packet not released after gate")
	}
}

func TestCompileQueueBackendSelection(t *testing.T) {
	_, classes := compile(t, `
		root ranker=wfq buckets=1024
		leaf h parent=root ranker=edf queue=heap
		leaf a parent=root ranker=edf queue=approx buckets=2048
	`)
	if classes["h"] == nil || classes["a"] == nil {
		t.Fatal("classes missing")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"", "no root"},
		{"leaf x parent=root", "before root"},
		{"root ranker=wfq\nroot ranker=wfq", "duplicate root"},
		{"root ranker=bogus", "unknown child ranker"},
		{"root ranker=wfq\nleaf x parent=nope", "unknown parent"},
		{"root ranker=wfq\nleaf x parent=root kind=flow policy=bogus", "unknown flow policy"},
		{"root ranker=wfq\nleaf x parent=root kind=bogus", "unknown leaf kind"},
		{"root ranker=wfq\nclass x parent=root ranker=wfq\nclass x parent=root ranker=wfq", "duplicate class"},
		{"root ranker=wfq rate=12q", "bad rate"},
		{"frobnicate", "unknown keyword"},
		{"root ranker=wfq\nleaf parent=root", "needs a name"},
	}
	for _, c := range cases {
		_, _, err := pifo.Compile(c.spec, policy.Registry{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("spec %q: err = %v, want substring %q", c.spec, err, c.want)
		}
	}
}

func TestCompileRateSuffixes(t *testing.T) {
	tree, _ := compile(t, "root ranker=wfq rate=2G buckets=1024")
	if tree == nil {
		t.Fatal("nil tree")
	}
	_, _, err := pifo.Compile("root ranker=wfq rate=500k", policy.Registry{})
	if err != nil {
		t.Fatalf("k suffix: %v", err)
	}
}
