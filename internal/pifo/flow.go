package pifo

import (
	"eiffel/internal/bucket"
	"eiffel/internal/pkt"
)

// Flow is the per-flow scheduling unit of the paper's per-flow ranking
// primitive: a FIFO of packets ranked as one entity. A single PIFO block
// orders flows rather than packets (§3.2.1); the scheduler guarantees that
// packets of one flow are never reordered relative to each other.
type Flow struct {
	// Node is the flow's handle in the leaf's priority queue.
	Node bucket.Node
	// ID is the flow identifier packets carry in pkt.Packet.Flow.
	ID uint64
	// Bytes is the total queued payload.
	Bytes int64
	// Rank is policy-maintained state (e.g. pFabric's running minimum).
	Rank uint64
	// U0 and U1 are extra policy scratch registers.
	U0, U1 uint64

	ring []*pkt.Packet
	head int
	n    int

	// rring replaces ring on the direct ranked-service path (see
	// direct.go): each slot pairs the packet pointer with its cached rank
	// annotation, so dequeue-side transactions read the next packet's
	// rank from the slot they are touching anyway instead of chasing the
	// packet pointer into cold memory. A flow is driven either ranked or
	// plain for its whole life, never both.
	rring []rankedSlot
}

// rankedSlot pairs a queued packet with its cached rank annotation so the
// ranked ring serves both with one line touch.
type rankedSlot struct {
	p    *pkt.Packet
	rank uint64
}

// Len returns the number of queued packets.
//
//eiffel:hotpath
func (f *Flow) Len() int { return f.n }

// Front returns the head packet without removing it, or nil.
//
//eiffel:hotpath
func (f *Flow) Front() *pkt.Packet {
	if f.n == 0 {
		return nil
	}
	return f.ring[f.head]
}

//eiffel:hotpath
func (f *Flow) push(p *pkt.Packet) {
	if f.n == len(f.ring) {
		//eiffel:allow(hotpath) amortized ring doubling; capacity is retained across the flow's life
		f.grow()
	}
	f.ring[(f.head+f.n)%len(f.ring)] = p
	f.n++
	f.Bytes += int64(p.Size)
}

//eiffel:hotpath
func (f *Flow) pop() *pkt.Packet {
	if f.n == 0 {
		return nil
	}
	p := f.ring[f.head]
	f.ring[f.head] = nil
	f.head = (f.head + 1) % len(f.ring)
	f.n--
	f.Bytes -= int64(p.Size)
	return p
}

func (f *Flow) grow() {
	size := len(f.ring) * 2
	if size == 0 {
		size = 8
	}
	ring := make([]*pkt.Packet, size)
	for i := 0; i < f.n; i++ {
		ring[i] = f.ring[(f.head+i)%len(f.ring)]
	}
	f.ring = ring
	f.head = 0
}

// pushRanked is push for the direct ranked-service path: the packet's
// rank annotation is cached beside the pointer. Bytes is NOT maintained
// here — reading p.Size would be the exact cold-packet load the ranked
// path exists to avoid, and no packet-free policy consumes Bytes.
//
//eiffel:hotpath
func (f *Flow) pushRanked(p *pkt.Packet, rank uint64) {
	if f.n == len(f.rring) {
		//eiffel:allow(hotpath) amortized ring doubling; capacity is retained across the flow's life
		f.growRanked()
	}
	f.rring[(f.head+f.n)%len(f.rring)] = rankedSlot{p: p, rank: rank}
	f.n++
}

// popRanked removes the head packet and returns it with its cached rank.
// It performs no load through the packet pointer (see pushRanked).
//
//eiffel:hotpath
func (f *Flow) popRanked() (*pkt.Packet, uint64) {
	s := f.rring[f.head]
	f.rring[f.head].p = nil
	f.head = (f.head + 1) % len(f.rring)
	f.n--
	return s.p, s.rank
}

// frontRank returns the head packet's cached rank; only valid when
// f.Len() > 0 on a ranked-driven flow.
//
//eiffel:hotpath
func (f *Flow) frontRank() uint64 { return f.rring[f.head].rank }

func (f *Flow) growRanked() {
	size := len(f.rring) * 2
	if size == 0 {
		size = 8
	}
	rring := make([]rankedSlot, size)
	for i := 0; i < f.n; i++ {
		rring[i] = f.rring[(f.head+i)%len(f.rring)]
	}
	f.rring = rring
	f.head = 0
}

// flow returns the Flow for id, creating (or recycling) one as needed.
// Flow state does not persist across idle periods: once a flow drains it is
// recycled and a later packet with the same ID starts fresh.
//
//eiffel:hotpath
func (c *Class) flow(id uint64) *Flow {
	if f, ok := c.flows[id]; ok {
		return f
	}
	var f *Flow
	if n := len(c.flowFree); n > 0 {
		f = c.flowFree[n-1]
		c.flowFree = c.flowFree[:n-1]
	} else {
		//eiffel:allow(hotpath) first sight of a flow; drained flows recycle through flowFree
		f = &Flow{}
		f.Node.Data = f
	}
	f.ID = id
	c.flows[id] = f
	return f
}

//eiffel:hotpath
func (c *Class) releaseFlow(f *Flow) {
	delete(c.flows, f.ID)
	f.ID, f.Bytes, f.Rank, f.U0, f.U1 = 0, 0, 0, 0, 0
	c.flowFree = append(c.flowFree, f)
}

// NumFlows returns the number of live flows in a flow leaf.
func (c *Class) NumFlows() int { return len(c.flows) }
