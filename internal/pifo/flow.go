package pifo

import (
	"eiffel/internal/bucket"
	"eiffel/internal/pkt"
)

// Flow is the per-flow scheduling unit of the paper's per-flow ranking
// primitive: a FIFO of packets ranked as one entity. A single PIFO block
// orders flows rather than packets (§3.2.1); the scheduler guarantees that
// packets of one flow are never reordered relative to each other.
type Flow struct {
	// Node is the flow's handle in the leaf's priority queue.
	Node bucket.Node
	// ID is the flow identifier packets carry in pkt.Packet.Flow.
	ID uint64
	// Bytes is the total queued payload.
	Bytes int64
	// Rank is policy-maintained state (e.g. pFabric's running minimum).
	Rank uint64
	// U0 and U1 are extra policy scratch registers.
	U0, U1 uint64

	ring []*pkt.Packet
	head int
	n    int
}

// Len returns the number of queued packets.
func (f *Flow) Len() int { return f.n }

// Front returns the head packet without removing it, or nil.
func (f *Flow) Front() *pkt.Packet {
	if f.n == 0 {
		return nil
	}
	return f.ring[f.head]
}

func (f *Flow) push(p *pkt.Packet) {
	if f.n == len(f.ring) {
		f.grow()
	}
	f.ring[(f.head+f.n)%len(f.ring)] = p
	f.n++
	f.Bytes += int64(p.Size)
}

func (f *Flow) pop() *pkt.Packet {
	if f.n == 0 {
		return nil
	}
	p := f.ring[f.head]
	f.ring[f.head] = nil
	f.head = (f.head + 1) % len(f.ring)
	f.n--
	f.Bytes -= int64(p.Size)
	return p
}

func (f *Flow) grow() {
	size := len(f.ring) * 2
	if size == 0 {
		size = 8
	}
	ring := make([]*pkt.Packet, size)
	for i := 0; i < f.n; i++ {
		ring[i] = f.ring[(f.head+i)%len(f.ring)]
	}
	f.ring = ring
	f.head = 0
}

// flow returns the Flow for id, creating (or recycling) one as needed.
// Flow state does not persist across idle periods: once a flow drains it is
// recycled and a later packet with the same ID starts fresh.
func (c *Class) flow(id uint64) *Flow {
	if f, ok := c.flows[id]; ok {
		return f
	}
	var f *Flow
	if n := len(c.flowFree); n > 0 {
		f = c.flowFree[n-1]
		c.flowFree = c.flowFree[:n-1]
	} else {
		f = &Flow{}
		f.Node.Data = f
	}
	f.ID = id
	c.flows[id] = f
	return f
}

func (c *Class) releaseFlow(f *Flow) {
	delete(c.flows, f.ID)
	f.ID, f.Bytes, f.Rank, f.U0, f.U1 = 0, 0, 0, 0, 0
	c.flowFree = append(c.flowFree, f)
}

// NumFlows returns the number of live flows in a flow leaf.
func (c *Class) NumFlows() int { return len(c.flows) }
