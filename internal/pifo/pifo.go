// Package pifo implements Eiffel's extended PIFO scheduler programming
// model (§3.2): scheduling transactions arranged in a class tree, plus the
// paper's two new primitives — per-flow ranking with packet FIFOs inside
// flows, and on-dequeue re-ranking — and its decoupled arbitrary shaping: a
// single time-indexed shaper queue serves every rate limit and pacing
// requirement in the hierarchy (§3.2.2, Figures 7 and 8).
//
// A Tree is driven with explicit timestamps (now, in ns) so it runs
// identically under a virtual clock (deterministic tests, simulators) and a
// wall clock (the BESS-style pipeline):
//
//	tree.Enqueue(leaf, p, now)
//	p := tree.Dequeue(now)      // nil if nothing eligible yet
//	t, ok := tree.NextEvent()   // arm a timer for the next shaper release
package pifo

import (
	"fmt"

	"eiffel/internal/bucket"
	"eiffel/internal/ffsq"
	"eiffel/internal/pkt"
	"eiffel/internal/queue"
)

// ChildRanker is a scheduling transaction for an internal class: it ranks a
// child class at (re)insertion into the class's priority queue. p is the
// packet just dequeued through the child, or nil when the child is being
// activated by a fresh arrival.
type ChildRanker interface {
	Rank(c *Class, p *pkt.Packet, now int64) uint64
}

// PacketRanker is a scheduling transaction for a packet leaf: it ranks an
// arriving packet.
type PacketRanker interface {
	Rank(p *pkt.Packet, now int64) uint64
}

// FlowPolicy is the paper's per-flow ranking primitive with on-dequeue
// re-ranking (§3.2.1, Figures 6 and 14). OnEnqueue runs for every arriving
// packet and returns the flow's new rank — changing it reorders the whole
// flow, not just the packet. OnDequeue runs after a packet leaves the flow
// FIFO and returns the rank under which the (still backlogged) flow is
// re-inserted.
type FlowPolicy interface {
	OnEnqueue(f *Flow, p *pkt.Packet, now int64) uint64
	OnDequeue(f *Flow, p *pkt.Packet, now int64) uint64
}

type classKind uint8

const (
	internalClass classKind = iota
	packetLeaf
	flowLeaf
)

// Class is one node of the scheduling hierarchy.
type Class struct {
	// Name identifies the class in diagnostics.
	Name string
	// Weight is read by fair-sharing rankers of the parent.
	Weight uint64
	// Priority is read by strict-priority rankers of the parent.
	Priority uint64

	parent *Class
	tree   *Tree
	kind   classKind

	node       bucket.Node // handle in parent's queue
	shaperNode bucket.Node // handle in the tree's shaper

	pq       queue.PQ
	ranker   ChildRanker  // internal classes
	pktRank  PacketRanker // packet leaves
	flowPol  FlowPolicy   // flow leaves
	timeGate bool         // packet leaf ranked by release timestamps

	flows    map[uint64]*Flow
	flowFree []*Flow

	// vtime is the virtual time of this class's queue, advanced to the
	// rank of each child served; fair-share rankers read and extend it.
	vtime uint64
	// finish is the fair-queueing finish tag rankers maintain for this
	// class within its parent's virtual time domain.
	finish uint64

	// rateBps is the class's shaping rate in bits/s (0 = unlimited).
	rateBps  uint64
	burstNs  int64 // how far nextFree may lag behind now (catch-up credit)
	nextFree int64 // ns when the next transmission is permitted
	waiting  bool  // parked in the shaper, out of the parent's queue
	resuming bool  // re-activation after a shaper park, not fresh demand

	backlog int // packets in this subtree

	directCache      *directState // direct ranked-service plumbing (direct.go)
	directEvictAfter uint32       // idle epochs before a direct flow is reclaimable (0 = retain forever)
}

// Backlog returns the number of packets queued under this class.
//
//eiffel:hotpath
func (c *Class) Backlog() int { return c.backlog }

// IsLeaf reports whether the class is a leaf (packet, flow, or time-gated)
// rather than an internal class.
func (c *Class) IsLeaf() bool { return c.kind != internalClass }

// Limited reports whether the class carries a shaping rate limit.
func (c *Class) Limited() bool { return c.rateBps > 0 }

// HeadRank returns the (bucket-quantized) rank of the next entry in this
// class's own priority queue — the best child for an internal class, the
// best flow for a flow leaf, the best packet for a packet leaf — or
// ok=false when the queue is empty. Shard-confined policy backends use it
// as the merge key the cross-shard drain compares (shardq.Scheduler.Min).
//
//eiffel:hotpath
func (c *Class) HeadRank() (uint64, bool) { return c.pq.PeekMin() }

// Parent returns the parent class (nil for the root).
func (c *Class) Parent() *Class { return c.parent }

// VTime returns the class's virtual time: the rank at which its most
// recent child was served. Fair-share rankers use it as the activation
// baseline.
func (c *Class) VTime() uint64 { return c.vtime }

// Finish returns the fair-queueing finish tag maintained by rankers.
func (c *Class) Finish() uint64 { return c.finish }

// SetFinish stores the fair-queueing finish tag.
func (c *Class) SetFinish(v uint64) { c.finish = v }

// Resuming reports whether the class is being re-activated after a shaper
// park rather than becoming backlogged afresh. Fair-share rankers use this
// to preserve the class's virtual-time position across rate-limit gaps —
// without it, a limited class would re-join at the current virtual time
// after every release and lose its weighted share (the problem hClock's
// separate tags solve; here one bit suffices).
func (c *Class) Resuming() bool { return c.resuming }

// Tree is a complete Eiffel scheduler instance.
type Tree struct {
	root    *Class
	shaper  *ffsq.CFFS
	classes []*Class
	path    []*Class // scratch: classes visited by the last pull
}

// TreeOptions configures a scheduler tree.
type TreeOptions struct {
	// RootRanker orders the root's children (default: WFQ-style virtual
	// time is NOT assumed — callers must supply one for internal roots).
	RootRanker ChildRanker
	// RootRateBps paces the aggregate output (Figure 7's root pacing).
	RootRateBps uint64
	// RootQueue sizes the root's priority queue.
	RootQueue queue.Config
	// RootQueueKind picks the root's backend (default cFFS).
	RootQueueKind queue.Kind
	// ShaperBuckets and ShaperGranularity size the single shared shaper
	// (defaults: 1<<16 buckets of 65536 ns — a ~4s horizon at ~65 us
	// resolution on each side of the window).
	ShaperBuckets     int
	ShaperGranularity uint64
}

// NewTree returns a scheduler whose root is an internal class ordered by
// opt.RootRanker.
func NewTree(opt TreeOptions) *Tree {
	if opt.RootRanker == nil {
		panic("pifo: NewTree needs a RootRanker")
	}
	if opt.ShaperBuckets == 0 {
		opt.ShaperBuckets = 1 << 16
	}
	if opt.ShaperGranularity == 0 {
		opt.ShaperGranularity = 1 << 16
	}
	t := &Tree{
		shaper: ffsq.NewCFFS(ffsq.CFFSOptions{
			NumBuckets:  opt.ShaperBuckets,
			Granularity: opt.ShaperGranularity,
		}),
	}
	t.root = t.newClass("root", nil, internalClass, opt.RootQueueKind, opt.RootQueue)
	t.root.ranker = opt.RootRanker
	t.root.rateBps = opt.RootRateBps
	if t.root.rateBps > 0 {
		t.root.burstNs = int64(uint64(64<<10) * 8 * 1e9 / t.root.rateBps)
	}
	return t
}

// Root returns the root class.
func (t *Tree) Root() *Class { return t.root }

// Classes returns every class in declaration order, root first — the
// stable order compiled programs rely on to map packet annotations onto
// leaves (Compile's classes map loses it).
func (t *Tree) Classes() []*Class {
	out := make([]*Class, len(t.classes))
	copy(out, t.classes)
	return out
}

// Len returns the total number of queued packets.
//
//eiffel:hotpath
func (t *Tree) Len() int { return t.root.backlog }

func (t *Tree) newClass(name string, parent *Class, kind classKind, qk queue.Kind, qc queue.Config) *Class {
	c := &Class{
		Name:   name,
		parent: parent,
		tree:   t,
		kind:   kind,
		Weight: 1,
	}
	c.node.Data = c
	c.shaperNode.Data = c
	if kind != flowLeaf {
		c.pq = queue.New(qk, qc)
	} else {
		c.pq = queue.New(qk, qc)
		c.flows = make(map[uint64]*Flow)
	}
	t.classes = append(t.classes, c)
	return c
}

// ClassOptions configures a child class.
type ClassOptions struct {
	// Name identifies the class in diagnostics.
	Name string
	// Weight is read by fair-sharing rankers of the parent (default 1).
	Weight uint64
	// Priority is read by strict-priority rankers of the parent.
	Priority uint64
	// RateBps attaches a shaping rate limit to this class (0 = none). Any
	// class — leaf or internal — may be limited (§3.2.2).
	RateBps uint64
	// BurstBytes bounds the catch-up credit of a limited class (default
	// 64 KiB): when parent gates delay a class beyond its own rate, the
	// charging timestamp may lag behind now by up to this many bytes'
	// worth of time, so the class still converges to its configured rate
	// instead of losing the gaps. Long-run rate never exceeds RateBps —
	// the timestamp chain advances by size/rate per packet regardless.
	BurstBytes uint64
	// Queue sizes the class's priority queue.
	Queue queue.Config
	// QueueKind picks the backend (default cFFS).
	QueueKind queue.Kind
}

func (t *Tree) addChild(parent *Class, kind classKind, opt ClassOptions) *Class {
	if parent == nil {
		parent = t.root
	}
	if parent.kind != internalClass {
		panic(fmt.Sprintf("pifo: class %q is a leaf and cannot have children", parent.Name))
	}
	c := t.newClass(opt.Name, parent, kind, opt.QueueKind, opt.Queue)
	if opt.Weight > 0 {
		c.Weight = opt.Weight
	}
	c.Priority = opt.Priority
	c.rateBps = opt.RateBps
	if c.rateBps > 0 {
		burst := opt.BurstBytes
		if burst == 0 {
			burst = 64 << 10
		}
		c.burstNs = int64(burst * 8 * 1e9 / c.rateBps)
	}
	return c
}

// NewInternal adds an internal class whose children are ordered by ranker.
func (t *Tree) NewInternal(parent *Class, ranker ChildRanker, opt ClassOptions) *Class {
	if ranker == nil {
		panic("pifo: NewInternal needs a ranker")
	}
	c := t.addChild(parent, internalClass, opt)
	c.ranker = ranker
	return c
}

// NewPacketLeaf adds a leaf that ranks individual packets with ranker.
func (t *Tree) NewPacketLeaf(parent *Class, ranker PacketRanker, opt ClassOptions) *Class {
	if ranker == nil {
		panic("pifo: NewPacketLeaf needs a ranker")
	}
	c := t.addChild(parent, packetLeaf, opt)
	c.pktRank = ranker
	return c
}

// NewTimeGatedLeaf adds a packet leaf ordered and gated by absolute release
// timestamps (p.SendAt): packets never leave before their timestamp. This
// is the Carousel-style per-packet shaping primitive, driven by the tree's
// single shaper.
func (t *Tree) NewTimeGatedLeaf(parent *Class, opt ClassOptions) *Class {
	c := t.addChild(parent, packetLeaf, opt)
	c.pktRank = sendAtRanker{}
	c.timeGate = true
	return c
}

type sendAtRanker struct{}

func (sendAtRanker) Rank(p *pkt.Packet, _ int64) uint64 { return uint64(p.SendAt) }

// NewFlowLeaf adds a per-flow ranking leaf (the paper's first new
// primitive): packets join per-flow FIFOs and the policy ranks flows.
func (t *Tree) NewFlowLeaf(parent *Class, policy FlowPolicy, opt ClassOptions) *Class {
	if policy == nil {
		panic("pifo: NewFlowLeaf needs a policy")
	}
	c := t.addChild(parent, flowLeaf, opt)
	c.flowPol = policy
	return c
}

// Enqueue inserts p at the given leaf class using the supplied clock.
//
//eiffel:hotpath
func (t *Tree) Enqueue(leaf *Class, p *pkt.Packet, now int64) {
	switch leaf.kind {
	case packetLeaf:
		leaf.pq.Enqueue(&p.SchedNode, leaf.pktRank.Rank(p, now))
	case flowLeaf:
		f := leaf.flow(p.Flow)
		f.push(p)
		r := leaf.flowPol.OnEnqueue(f, p, now)
		if f.Node.Queued() {
			if r != f.Node.Rank() {
				// Per-flow ranking: a new arrival re-ranks every queued
				// packet of the flow by moving the flow itself — O(1) in
				// bucketed queues.
				leaf.pq.Remove(&f.Node)
				leaf.pq.Enqueue(&f.Node, r)
			}
		} else {
			leaf.pq.Enqueue(&f.Node, r)
		}
	default:
		//eiffel:allow(hotpath) misuse panic: formatting runs only on the way down
		panic(fmt.Sprintf("pifo: Enqueue into internal class %q", leaf.Name))
	}
	for c := leaf; c != nil; c = c.parent {
		c.backlog++
	}
	if leaf.timeGate {
		if head, ok := leaf.pq.PeekMin(); ok && int64(head) > now {
			t.suspend(leaf, int64(head), now)
			return
		}
	}
	if !leaf.waiting {
		t.activate(leaf, now)
	}
}

// activate inserts c (and, transitively, newly non-empty ancestors) into
// the parent queues, parking any class whose rate gate is still closed.
//
//eiffel:hotpath
func (t *Tree) activate(c *Class, now int64) {
	for c.parent != nil {
		if c.waiting || c.node.Queued() || !c.hasDemand() {
			return
		}
		if c.rateBps > 0 && c.nextFree > now {
			t.suspend(c, c.nextFree, now)
			return
		}
		c.parent.pq.Enqueue(&c.node, c.parent.ranker.Rank(c, nil, now))
		c = c.parent
	}
}

// deactivate removes c from its parent's queue, cascading upward through
// ancestors whose queues empty out.
//
//eiffel:hotpath
func (t *Tree) deactivate(c *Class) {
	for c.parent != nil && c.node.Queued() {
		parent := c.parent
		parent.pq.Remove(&c.node)
		if parent.pq.Len() > 0 {
			return
		}
		c = parent
	}
}

//eiffel:hotpath
func (c *Class) hasDemand() bool { return c.pq.Len() > 0 }

// suspend parks c in the shaper until the given time, removing it from the
// scheduling hierarchy. One shaper serves the entire tree (§3.2.2). The
// release is quantized up to the next shaper bucket strictly after now:
// entries in already-elapsed buckets would re-fire in the same
// processShaper pass and spin. Shaping precision is therefore exactly the
// shaper granularity, the paper's stated contract for bucketed shaping.
//
//eiffel:hotpath
func (t *Tree) suspend(c *Class, until, now int64) {
	g := int64(t.shaper.Granularity())
	if until/g <= now/g {
		until = (now/g + 1) * g
	}
	c.waiting = true
	t.deactivate(c)
	if c.shaperNode.Queued() {
		if c.shaperNode.Rank() <= uint64(until) {
			return // an earlier release is already pending; it re-checks
		}
		t.shaper.Remove(&c.shaperNode)
	}
	t.shaper.Enqueue(&c.shaperNode, uint64(until))
}

// processShaper releases every class whose shaper timestamp has arrived.
//
//eiffel:hotpath
func (t *Tree) processShaper(now int64) {
	for {
		r, ok := t.shaper.PeekMin()
		if !ok || int64(r) > now {
			return
		}
		n := t.shaper.DequeueMin()
		c := n.Data.(*Class)
		c.waiting = false
		// Re-validate remaining gates before re-admitting the class.
		if c.rateBps > 0 && c.nextFree > now {
			t.suspend(c, c.nextFree, now)
			continue
		}
		if c.timeGate {
			if head, ok := c.pq.PeekMin(); ok && int64(head) > now {
				t.suspend(c, int64(head), now)
				continue
			}
		}
		c.resuming = true
		t.activate(c, now)
		c.resuming = false
	}
}

// Dequeue returns the next transmittable packet, or nil if none is
// eligible at the given time (use NextEvent to arm a timer).
//
//eiffel:hotpath
func (t *Tree) Dequeue(now int64) *pkt.Packet {
	t.processShaper(now)
	if t.root.waiting || t.root.backlog == 0 {
		return nil
	}
	t.path = t.path[:0]
	p := t.pull(t.root, now)
	if p == nil {
		return nil
	}
	t.afterDequeue(p, now)
	return p
}

// pull extracts the next packet from c's subtree, recording visited classes
// and re-inserting children that remain backlogged.
//
//eiffel:hotpath
func (t *Tree) pull(c *Class, now int64) *pkt.Packet {
	t.path = append(t.path, c)
	switch c.kind {
	case packetLeaf:
		n := c.pq.DequeueMin()
		if n == nil {
			return nil
		}
		return pkt.FromSchedNode(n)
	case flowLeaf:
		n := c.pq.DequeueMin()
		if n == nil {
			return nil
		}
		f := n.Data.(*Flow)
		p := f.pop()
		// On-dequeue ranking: the paper's second new primitive.
		r := c.flowPol.OnDequeue(f, p, now)
		if f.Len() > 0 {
			c.pq.Enqueue(&f.Node, r)
		} else {
			c.releaseFlow(f)
		}
		return p
	default:
		n := c.pq.DequeueMin()
		if n == nil {
			return nil
		}
		if r := n.Rank(); r > c.vtime {
			c.vtime = r
		}
		child := n.Data.(*Class)
		p := t.pull(child, now)
		if p != nil && child.hasDemand() {
			c.pq.Enqueue(&child.node, c.ranker.Rank(child, p, now))
		}
		return p
	}
}

// afterDequeue walks the pull path: decrements backlogs, charges rate
// limits (token-less timestamp shaping, as Carousel showed beats token
// buckets), and re-parks time-gated leaves whose next head is in the
// future.
//
//eiffel:hotpath
func (t *Tree) afterDequeue(p *pkt.Packet, now int64) {
	for _, c := range t.path {
		c.backlog--
		if c.rateBps > 0 {
			start := c.nextFree
			if floor := now - c.burstNs; start < floor {
				start = floor
			}
			c.nextFree = start + int64(uint64(p.Size)*8*1e9/c.rateBps)
			if c.nextFree > now {
				// Park even when idle: the root's pacing gate must hold
				// against packets that arrive during the gap, and the
				// release is a cheap no-op if the class stays empty.
				t.suspend(c, c.nextFree, now)
			}
		}
		if c.timeGate && c.backlog > 0 && !c.waiting {
			if head, ok := c.pq.PeekMin(); ok && int64(head) > now {
				t.suspend(c, int64(head), now)
			}
		}
	}
}

// NextEvent returns the earliest pending shaper release, quantized to the
// shaper granularity. ok is false when no release is pending. This is the
// SoonestDeadline() operation the kernel deployment uses to arm its timer
// exactly (§4).
//
//eiffel:hotpath
func (t *Tree) NextEvent() (int64, bool) {
	r, ok := t.shaper.PeekMin()
	return int64(r), ok
}
