package pifo_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eiffel/internal/pifo"
	"eiffel/internal/pkt"
	"eiffel/internal/policy"
	"eiffel/internal/queue"
)

// buildEDFTree builds the same single-leaf EDF scheduler over a given
// queue backend.
func buildEDFTree(kind queue.Kind) (*pifo.Tree, *pifo.Class) {
	tr := pifo.NewTree(pifo.TreeOptions{
		RootRanker: policy.WFQ{},
		RootQueue:  queue.Config{NumBuckets: 1 << 10, Granularity: 1},
	})
	leaf := tr.NewPacketLeaf(nil, policy.EDF{}, pifo.ClassOptions{
		Name:      "edf",
		QueueKind: kind,
		Queue:     queue.Config{NumBuckets: 1 << 12, Granularity: 1},
	})
	return tr, leaf
}

// TestQuickBackendEquivalence drives an identical random workload through
// cFFS-, BH-, and binary-heap-backed schedulers: at granularity 1 every
// exact backend must release packets in the identical deadline order
// (FIFO within equal deadlines for the bucketed kinds; the heap may
// reorder ties, so ties are excluded by construction).
func TestQuickBackendEquivalence(t *testing.T) {
	kinds := []queue.Kind{queue.KindCFFS, queue.KindBH, queue.KindBinaryHeap, queue.KindRBTree}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 300
		// Distinct deadlines (shuffled permutation) to exclude ties.
		deadlines := rng.Perm(4000)[:n]

		var orders [][]int64
		for _, k := range kinds {
			tr, leaf := buildEDFTree(k)
			pool := pkt.NewPool(n)
			queued := 0
			var order []int64
			di := 0
			for len(order) < n {
				if di < n && (queued == 0 || rng.Intn(2) == 0) {
					p := pool.Get()
					p.Size = 100
					p.Deadline = int64(deadlines[di])
					di++
					queued++
					tr.Enqueue(leaf, p, 0)
				} else {
					p := tr.Dequeue(0)
					if p == nil {
						return false
					}
					queued--
					order = append(order, p.Deadline)
				}
			}
			orders = append(orders, order)
			// Consume identical random decisions for every backend.
			rng = rand.New(rand.NewSource(seed))
			rng.Perm(4000)
		}
		for i := 1; i < len(orders); i++ {
			for j := range orders[0] {
				if orders[i][j] != orders[0][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestShaperBackendEquivalence: the same paced workload through a cFFS
// shaper and an approximate shaper must release the same packets with
// bucket-level timing agreement.
func TestShaperBackendEquivalence(t *testing.T) {
	release := func(kind queue.Kind) []int64 {
		tr := pifo.NewTree(pifo.TreeOptions{
			RootRanker:        policy.WFQ{},
			RootQueue:         queue.Config{NumBuckets: 1 << 10, Granularity: 1},
			ShaperBuckets:     1 << 12,
			ShaperGranularity: 1000,
		})
		leaf := tr.NewTimeGatedLeaf(nil, pifo.ClassOptions{
			Name:      "paced",
			QueueKind: kind,
			Queue:     queue.Config{NumBuckets: 1 << 12, Granularity: 1000},
		})
		pool := pkt.NewPool(64)
		for i := 1; i <= 20; i++ {
			p := pool.Get()
			p.Size = 100
			p.SendAt = int64(i) * 7_000
			tr.Enqueue(leaf, p, 0)
		}
		var times []int64
		for now := int64(0); now < 300_000 && len(times) < 20; now += 500 {
			for {
				p := tr.Dequeue(now)
				if p == nil {
					break
				}
				times = append(times, now)
			}
		}
		return times
	}
	exact := release(queue.KindCFFS)
	approx := release(queue.KindCApprox)
	if len(exact) != 20 || len(approx) != 20 {
		t.Fatalf("released %d / %d of 20", len(exact), len(approx))
	}
	for i := range exact {
		d := exact[i] - approx[i]
		if d < -2000 || d > 2000 {
			t.Fatalf("release %d diverged: %d vs %d", i, exact[i], approx[i])
		}
	}
}
