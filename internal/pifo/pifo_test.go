package pifo_test

import (
	"testing"

	"eiffel/internal/pifo"
	"eiffel/internal/pkt"
	"eiffel/internal/policy"
	"eiffel/internal/queue"
)

func mkPacket(pool *pkt.Pool, flow uint64, size uint32) *pkt.Packet {
	p := pool.Get()
	p.Flow = flow
	p.Size = size
	return p
}

func smallQueue() queue.Config { return queue.Config{NumBuckets: 1 << 12, Granularity: 1} }

func newTestTree() *pifo.Tree {
	return pifo.NewTree(pifo.TreeOptions{
		RootRanker:        policy.WFQ{},
		RootQueue:         smallQueue(),
		ShaperBuckets:     1 << 12,
		ShaperGranularity: 1 << 10,
	})
}

func TestPacketLeafEDF(t *testing.T) {
	tr := newTestTree()
	leaf := tr.NewPacketLeaf(nil, policy.EDF{}, pifo.ClassOptions{Name: "edf", Queue: smallQueue()})
	pool := pkt.NewPool(16)
	deadlines := []int64{500, 100, 300}
	for _, d := range deadlines {
		p := mkPacket(pool, 1, 100)
		p.Deadline = d
		tr.Enqueue(leaf, p, 0)
	}
	want := []int64{100, 300, 500}
	for i, w := range want {
		p := tr.Dequeue(0)
		if p == nil || p.Deadline != w {
			t.Fatalf("dequeue %d: got %v, want deadline %d", i, p, w)
		}
	}
	if tr.Dequeue(0) != nil {
		t.Fatal("tree should be empty")
	}
}

func TestFlowLeafPerFlowFIFOPreserved(t *testing.T) {
	tr := newTestTree()
	leaf := tr.NewFlowLeaf(nil, policy.PFabric{}, pifo.ClassOptions{Name: "pf", Queue: smallQueue()})
	pool := pkt.NewPool(16)
	// Flow 1 has remaining size 3000 (rank), flow 2 has 500: flow 2 wins,
	// but each flow's packets must come out in arrival order.
	for i, r := range []uint64{3000, 2500, 2000} {
		p := mkPacket(pool, 1, 500)
		p.Rank = r
		p.Deadline = int64(i)
		tr.Enqueue(leaf, p, 0)
	}
	for _, r := range []uint64{500, 250} {
		p := mkPacket(pool, 2, 250)
		p.Rank = r
		tr.Enqueue(leaf, p, 0)
	}
	var flows []uint64
	var ranks []uint64
	for {
		p := tr.Dequeue(0)
		if p == nil {
			break
		}
		flows = append(flows, p.Flow)
		ranks = append(ranks, p.Rank)
	}
	wantFlows := []uint64{2, 2, 1, 1, 1}
	wantRanks := []uint64{500, 250, 3000, 2500, 2000}
	for i := range wantFlows {
		if flows[i] != wantFlows[i] || ranks[i] != wantRanks[i] {
			t.Fatalf("order flows=%v ranks=%v", flows, ranks)
		}
	}
}

func TestLQFOnEnqueueReordersWholeFlow(t *testing.T) {
	tr := newTestTree()
	leaf := tr.NewFlowLeaf(nil, policy.LQF{}, pifo.ClassOptions{Name: "lqf", Queue: smallQueue()})
	pool := pkt.NewPool(16)
	// Flow 1: 1 packet. Flow 2: 3 packets. LQF serves flow 2 first.
	tr.Enqueue(leaf, mkPacket(pool, 1, 100), 0)
	for i := 0; i < 3; i++ {
		tr.Enqueue(leaf, mkPacket(pool, 2, 100), 0)
	}
	// First dequeue: flow 2 (len 3). After one dequeue flow 2 has len 2,
	// still longer than flow 1.
	got := []uint64{}
	for {
		p := tr.Dequeue(0)
		if p == nil {
			break
		}
		got = append(got, p.Flow)
	}
	// LQF with on-dequeue re-ranking alternates once the lengths equal:
	// 2 (3->2), 2 (2->1), then flows tie at len 1: FIFO within bucket
	// means flow 1 (inserted into the tie bucket earlier... flow ranks are
	// re-ranked on dequeue so exact tie order depends on move order). The
	// key property: the first two dequeues must be flow 2.
	if got[0] != 2 || got[1] != 2 {
		t.Fatalf("LQF should serve the longest flow first: %v", got)
	}
	if len(got) != 4 {
		t.Fatalf("drained %d, want 4", len(got))
	}
}

func TestWFQSharesRoughlyProportional(t *testing.T) {
	tr := newTestTree()
	a := tr.NewPacketLeaf(nil, &policy.FIFO{}, pifo.ClassOptions{Name: "a", Weight: 3, Queue: smallQueue()})
	b := tr.NewPacketLeaf(nil, &policy.FIFO{}, pifo.ClassOptions{Name: "b", Weight: 1, Queue: smallQueue()})
	pool := pkt.NewPool(512)
	for i := 0; i < 200; i++ {
		tr.Enqueue(a, mkPacket(pool, 1, 1000), 0)
		tr.Enqueue(b, mkPacket(pool, 2, 1000), 0)
	}
	counts := map[uint64]int{}
	for i := 0; i < 100; i++ {
		p := tr.Dequeue(0)
		if p == nil {
			t.Fatal("unexpected empty dequeue")
		}
		counts[p.Flow]++
	}
	// Weight 3:1 should yield ~75:25 out of 100.
	if counts[1] < 65 || counts[1] > 85 {
		t.Fatalf("weighted share off: %v", counts)
	}
}

func TestStrictPriorityBetweenClasses(t *testing.T) {
	tr := pifo.NewTree(pifo.TreeOptions{
		RootRanker: policy.StrictChild{},
		RootQueue:  queue.Config{NumBuckets: 16, Granularity: 1},
	})
	hi := tr.NewPacketLeaf(nil, &policy.FIFO{}, pifo.ClassOptions{Name: "hi", Priority: 0, Queue: smallQueue()})
	lo := tr.NewPacketLeaf(nil, &policy.FIFO{}, pifo.ClassOptions{Name: "lo", Priority: 1, Queue: smallQueue()})
	pool := pkt.NewPool(16)
	tr.Enqueue(lo, mkPacket(pool, 2, 100), 0)
	tr.Enqueue(lo, mkPacket(pool, 2, 100), 0)
	tr.Enqueue(hi, mkPacket(pool, 1, 100), 0)
	if p := tr.Dequeue(0); p.Flow != 1 {
		t.Fatal("high priority class must be served first")
	}
	// New high-priority arrival preempts remaining low-priority backlog.
	tr.Enqueue(hi, mkPacket(pool, 1, 100), 0)
	if p := tr.Dequeue(0); p.Flow != 1 {
		t.Fatal("fresh high-priority arrival must preempt")
	}
	if p := tr.Dequeue(0); p.Flow != 2 {
		t.Fatal("low priority should drain last")
	}
}

// TestFigure7TwoLimits reproduces the paper's Figure 7/8 walk-through: a
// leaf limited to 7 Mbps inside a node limited to 10 Mbps under a paced
// root. The leaf's egress must respect the tightest (7 Mbps) limit; a
// sibling leaf under the same 10 Mbps node must be able to use the
// remainder but the node total must hold at 10 Mbps.
func TestFigure7TwoLimits(t *testing.T) {
	const (
		mbps7   = 7_000_000
		mbps10  = 10_000_000
		mbps100 = 100_000_000 // root pacing, loose
		pktSize = 1250        // 10_000 bits
	)
	tr := pifo.NewTree(pifo.TreeOptions{
		RootRanker:        policy.WFQ{},
		RootRateBps:       mbps100,
		RootQueue:         smallQueue(),
		ShaperBuckets:     1 << 14,
		ShaperGranularity: 1 << 12, // ~4 us buckets
	})
	// The limited leaf's WFQ share (9/10 of 10 Mbps = 9 Mbps) exceeds its
	// own 7 Mbps limit, so the leaf must cap at 7 while its sibling picks
	// up the residual 3 — exercising both gates plus work conservation.
	mid := tr.NewInternal(nil, policy.WFQ{}, pifo.ClassOptions{Name: "mid", RateBps: mbps10, Queue: smallQueue()})
	limited := tr.NewPacketLeaf(mid, &policy.FIFO{}, pifo.ClassOptions{Name: "leaf7", RateBps: mbps7, Weight: 9, Queue: smallQueue()})
	open := tr.NewPacketLeaf(mid, &policy.FIFO{}, pifo.ClassOptions{Name: "open", Weight: 1, Queue: smallQueue()})

	pool := pkt.NewPool(4096)
	for i := 0; i < 1000; i++ {
		tr.Enqueue(limited, mkPacket(pool, 1, pktSize), 0)
		tr.Enqueue(open, mkPacket(pool, 2, pktSize), 0)
	}

	bits := map[uint64]int64{}
	now := int64(0)
	const horizon = int64(1e9) // 1 simulated second
	for now < horizon {
		p := tr.Dequeue(now)
		if p == nil {
			next, ok := tr.NextEvent()
			if !ok {
				break
			}
			if next <= now {
				next = now + 1000
			}
			now = next
			continue
		}
		bits[p.Flow] += int64(p.Size) * 8
	}

	total := float64(bits[1]+bits[2]) / 1e9 * 1e9 // bits per second over 1s
	rate1 := float64(bits[1])
	rateTotal := float64(bits[1] + bits[2])
	_ = total
	// Leaf 1 must be near (and never above ~5% over) 7 Mbps.
	if rate1 > mbps7*1.05 {
		t.Fatalf("limited leaf exceeded 7 Mbps: %.2f Mbps", rate1/1e6)
	}
	if rate1 < mbps7*0.80 {
		t.Fatalf("limited leaf starved: %.2f Mbps", rate1/1e6)
	}
	// Node total must be near (and never above ~5% over) 10 Mbps.
	if rateTotal > mbps10*1.05 {
		t.Fatalf("mid node exceeded 10 Mbps: %.2f Mbps", rateTotal/1e6)
	}
	if rateTotal < mbps10*0.80 {
		t.Fatalf("mid node starved: %.2f Mbps", rateTotal/1e6)
	}
}

func TestTimeGatedLeafPacing(t *testing.T) {
	tr := pifo.NewTree(pifo.TreeOptions{
		RootRanker:        policy.WFQ{},
		RootQueue:         smallQueue(),
		ShaperBuckets:     1 << 12,
		ShaperGranularity: 1000, // 1 us buckets
	})
	leaf := tr.NewTimeGatedLeaf(nil, pifo.ClassOptions{Name: "paced", Queue: queue.Config{NumBuckets: 1 << 12, Granularity: 1000}})
	pool := pkt.NewPool(16)
	// Release times 10us apart.
	for i := 1; i <= 5; i++ {
		p := mkPacket(pool, 1, 1500)
		p.SendAt = int64(i) * 10_000
		tr.Enqueue(leaf, p, 0)
	}
	if p := tr.Dequeue(0); p != nil {
		t.Fatal("nothing should release at t=0")
	}
	next, ok := tr.NextEvent()
	if !ok || next > 10_000 {
		t.Fatalf("NextEvent = (%d,%v), want <= 10000", next, ok)
	}
	released := 0
	for now := int64(0); now <= 60_000; now += 1000 {
		for {
			p := tr.Dequeue(now)
			if p == nil {
				break
			}
			if p.SendAt > now {
				t.Fatalf("packet released %d ns early", p.SendAt-now)
			}
			released++
		}
	}
	if released != 5 {
		t.Fatalf("released %d, want 5", released)
	}
}

func TestDequeueEmptyAndIdleRobustness(t *testing.T) {
	tr := newTestTree()
	leaf := tr.NewPacketLeaf(nil, &policy.FIFO{}, pifo.ClassOptions{Name: "x", Queue: smallQueue()})
	if tr.Dequeue(0) != nil {
		t.Fatal("empty tree must dequeue nil")
	}
	pool := pkt.NewPool(4)
	tr.Enqueue(leaf, mkPacket(pool, 1, 100), 100)
	if p := tr.Dequeue(100); p == nil {
		t.Fatal("packet lost")
	}
	if tr.Dequeue(100) != nil {
		t.Fatal("double dequeue")
	}
	// Long idle gap then a new arrival: shaper window must follow.
	tr.Enqueue(leaf, mkPacket(pool, 1, 100), 1e12)
	if p := tr.Dequeue(1e12); p == nil {
		t.Fatal("packet after idle gap lost")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
}

func TestBacklogAccounting(t *testing.T) {
	tr := newTestTree()
	mid := tr.NewInternal(nil, policy.WFQ{}, pifo.ClassOptions{Name: "mid", Queue: smallQueue()})
	leaf := tr.NewPacketLeaf(mid, &policy.FIFO{}, pifo.ClassOptions{Name: "leaf", Queue: smallQueue()})
	pool := pkt.NewPool(16)
	for i := 0; i < 5; i++ {
		tr.Enqueue(leaf, mkPacket(pool, 1, 100), 0)
	}
	if leaf.Backlog() != 5 || mid.Backlog() != 5 || tr.Len() != 5 {
		t.Fatal("backlog accounting wrong after enqueue")
	}
	tr.Dequeue(0)
	tr.Dequeue(0)
	if leaf.Backlog() != 3 || mid.Backlog() != 3 || tr.Len() != 3 {
		t.Fatal("backlog accounting wrong after dequeue")
	}
}
