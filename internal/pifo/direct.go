package pifo

import (
	"eiffel/internal/ffsq"
	"eiffel/internal/pkt"
)

// This file is the shard-confined direct service path: when a policy
// program is a single unshaped flow leaf, the class hierarchy above the
// leaf adds no scheduling decisions — the root always serves its only
// child — so a shard-private backend can drive the leaf itself and skip
// the per-packet hierarchy walk (root queue churn, activation checks,
// backlog propagation, shaper peeks). Combined with packet-free
// transactions (RankFlowPolicy), keys carried by the caller, and ranks
// cached in the flow ring, the scheduler core never loads packet memory
// at all: the enqueue keys arrive pre-resolved (the sharded runtime's
// producers read them while the packet is cache-hot and ship them over
// the publication ring), and the dequeue-side front rank comes from the
// flow's own ring slot. Those two cold-packet loads are the largest
// per-packet costs of the tree-driven path — pFabric's on-dequeue
// transaction chases the front packet's pointer into memory last touched
// at enqueue.
//
// Semantics relative to Tree-driven service: per-flow order is identical
// (FIFO within a flow, transactions run in the same places with the same
// inputs). Two documented divergences, both invisible to flow-local
// order:
//
//   - A flow whose re-rank lands in the bucket it already occupies keeps
//     its bucket position, where the tree's remove-and-reinsert would
//     rotate it to the bucket tail. Buckets are FIFO either way, so this
//     only permutes service among flows whose ranks tie at bucket
//     granularity.
//   - Drained flows are retained (never released): policy state is NOT
//     zeroed between a flow's backlogged periods. Every packet-free
//     policy must therefore treat a flow whose Len just became 1 as
//     freshly started — the convention the paper's policies already
//     follow (pFabric: "previous rank is stale").

// RankFlowPolicy is the packet-free form of FlowPolicy: transactions that
// depend only on flow state and the packet's rank annotation, so the
// scheduler core never dereferences a packet. The paper's flow policies
// are all of this form — pFabric reads p.Rank, LQF/SQF read f.Len, FIFO
// reads neither — and implement both interfaces with identical math.
type RankFlowPolicy interface {
	// OnEnqueueRank is OnEnqueue with the arriving packet's rank
	// annotation in place of the packet.
	OnEnqueueRank(f *Flow, rank uint64, now int64) uint64
	// OnDequeueRank is OnDequeue after the head packet (whose annotation
	// was rank) left the flow; frontRank is the new head's annotation,
	// valid only when f.Len() > 0.
	OnDequeueRank(f *Flow, rank, frontRank uint64, now int64) uint64
}

// DirectRanked reports whether this class supports direct ranked service:
// a flow leaf whose policy is packet-free (RankFlowPolicy) and whose
// queue is the default cFFS (the direct path uses its peek-front and
// granularity surfaces). The caller must also ensure no class on the
// leaf's path is rate-limited — shaping needs the tree's shaper, which
// direct service bypasses.
func (c *Class) DirectRanked() bool {
	if c.kind != flowLeaf {
		return false
	}
	if _, ok := c.flowPol.(RankFlowPolicy); !ok {
		return false
	}
	_, ok := c.pq.(*ffsq.CFFS)
	return ok
}

// directState is the cached plumbing of a direct-driven leaf: the
// concrete queue (no interface dispatch on the hot path) and an
// open-addressed flow table. Flows are retained once created — no
// deletions keeps linear probing trivial and recycles ring capacity —
// so the table is sized by distinct flow ids seen, not live flows.
type directState struct {
	pol   RankFlowPolicy
	pq    *ffsq.CFFS
	gran  uint64
	tab   []flowSlot
	shift uint // Fibonacci-hash shift for the current table size
	n     int  // occupied slots
}

// flowSlot keeps the key beside the pointer so a probe compares ids
// without dereferencing the flow.
type flowSlot struct {
	id uint64
	f  *Flow
}

// fibMult deliberately differs from the sharded runtime's flow-hash
// multiplier (0x9E3779B97F4A7C15): shards select flows by the TOP bits of
// that product, so a shard's whole flow population shares them — reusing
// the same mix here would cluster every flow into one region of the table
// and degrade linear probing to long chains.
const fibMult = 0xD6E8FEB86659FD93

func (c *Class) direct() *directState {
	if c.directCache == nil {
		cffs := c.pq.(*ffsq.CFFS)
		c.directCache = &directState{
			pol:   c.flowPol.(RankFlowPolicy),
			pq:    cffs,
			gran:  cffs.Granularity(),
			tab:   make([]flowSlot, 1<<8),
			shift: 64 - 8,
		}
	}
	return c.directCache
}

// flow returns the retained Flow for id, creating it on first sight.
func (d *directState) flow(id uint64) *Flow {
	mask := uint64(len(d.tab) - 1)
	for i := (id * fibMult) >> d.shift; ; i = (i + 1) & mask {
		s := &d.tab[i]
		if s.f == nil {
			if d.n >= len(d.tab)/2 {
				d.grow()
				return d.flow(id)
			}
			f := &Flow{ID: id}
			f.Node.Data = f
			*s = flowSlot{id: id, f: f}
			d.n++
			return f
		}
		if s.id == id {
			return s.f
		}
	}
}

func (d *directState) grow() {
	old := d.tab
	d.tab = make([]flowSlot, 2*len(old))
	d.shift--
	mask := uint64(len(d.tab) - 1)
	for _, s := range old {
		if s.f == nil {
			continue
		}
		i := (s.id * fibMult) >> d.shift
		for d.tab[i].f != nil {
			i = (i + 1) & mask
		}
		d.tab[i] = s
	}
}

// DirectEnqueue inserts p at this leaf under the caller-resolved keys
// (flow id and rank annotation), running the packet-free enqueue
// transaction. The packet pointer is stored, never dereferenced. A leaf
// driven directly must be driven directly for its whole life — never
// mixed with Tree.Enqueue/Dequeue on the same tree — and DirectRanked
// must hold.
func (c *Class) DirectEnqueue(p *pkt.Packet, flow, rank uint64, now int64) {
	d := c.direct()
	f := d.flow(flow)
	f.pushRanked(p, rank)
	r := d.pol.OnEnqueueRank(f, rank, now)
	if f.Node.Queued() {
		if r/d.gran != f.Node.Rank()/d.gran {
			// Re-rank moves the flow to another bucket. Same-bucket
			// re-ranks keep the flow's position (see the file comment).
			d.pq.Remove(&f.Node)
			d.pq.Enqueue(&f.Node, r)
		}
	} else {
		d.pq.Enqueue(&f.Node, r)
	}
	c.backlog++
}

// DirectDequeue serves the next packet under direct ranked service, or
// nil when the leaf is empty. The head flow is peeked, not popped: when
// the on-dequeue transaction leaves the flow in its current bucket — the
// common case for pFabric (the running minimum rarely moves buckets) and
// for coarse-grained LQF — the flow stays in place and the queue is not
// touched at all.
func (c *Class) DirectDequeue(now int64) *pkt.Packet {
	d := c.direct()
	n := d.pq.FrontMin()
	if n == nil {
		return nil
	}
	f := n.Data.(*Flow)
	p, rank := f.popRanked()
	var front uint64
	if f.n > 0 {
		front = f.frontRank()
	}
	r := d.pol.OnDequeueRank(f, rank, front, now)
	if f.n == 0 {
		d.pq.Remove(&f.Node) // flow object retained; see the file comment
	} else if r/d.gran != f.Node.Rank()/d.gran {
		d.pq.Remove(&f.Node)
		d.pq.Enqueue(&f.Node, r)
	}
	c.backlog--
	return p
}
