package pifo

import (
	"math/bits"

	"eiffel/internal/ffsq"
	"eiffel/internal/pkt"
)

// This file is the shard-confined direct service path: when a policy
// program is a single unshaped flow leaf, the class hierarchy above the
// leaf adds no scheduling decisions — the root always serves its only
// child — so a shard-private backend can drive the leaf itself and skip
// the per-packet hierarchy walk (root queue churn, activation checks,
// backlog propagation, shaper peeks). Combined with packet-free
// transactions (RankFlowPolicy), keys carried by the caller, and ranks
// cached in the flow ring, the scheduler core never loads packet memory
// at all: the enqueue keys arrive pre-resolved (the sharded runtime's
// producers read them while the packet is cache-hot and ship them over
// the publication ring), and the dequeue-side front rank comes from the
// flow's own ring slot. Those two cold-packet loads are the largest
// per-packet costs of the tree-driven path — pFabric's on-dequeue
// transaction chases the front packet's pointer into memory last touched
// at enqueue.
//
// Semantics relative to Tree-driven service: per-flow order is identical
// (FIFO within a flow, transactions run in the same places with the same
// inputs). Two documented divergences, both invisible to flow-local
// order:
//
//   - A flow whose re-rank lands in the bucket it already occupies keeps
//     its bucket position, where the tree's remove-and-reinsert would
//     rotate it to the bucket tail. Buckets are FIFO either way, so this
//     only permutes service among flows whose ranks tie at bucket
//     granularity.
//   - Drained flows are retained (never released): policy state is NOT
//     zeroed between a flow's backlogged periods. Every packet-free
//     policy must therefore treat a flow whose Len just became 1 as
//     freshly started — the convention the paper's policies already
//     follow (pFabric: "previous rank is stale").

// RankFlowPolicy is the packet-free form of FlowPolicy: transactions that
// depend only on flow state and the packet's rank annotation, so the
// scheduler core never dereferences a packet. The paper's flow policies
// are all of this form — pFabric reads p.Rank, LQF/SQF read f.Len, FIFO
// reads neither — and implement both interfaces with identical math.
type RankFlowPolicy interface {
	// OnEnqueueRank is OnEnqueue with the arriving packet's rank
	// annotation in place of the packet.
	OnEnqueueRank(f *Flow, rank uint64, now int64) uint64
	// OnDequeueRank is OnDequeue after the head packet (whose annotation
	// was rank) left the flow; frontRank is the new head's annotation,
	// valid only when f.Len() > 0.
	OnDequeueRank(f *Flow, rank, frontRank uint64, now int64) uint64
}

// DirectRanked reports whether this class supports direct ranked service:
// a flow leaf whose policy is packet-free (RankFlowPolicy) and whose
// queue is the default cFFS (the direct path uses its peek-front and
// granularity surfaces). The caller must also ensure no class on the
// leaf's path is rate-limited — shaping needs the tree's shaper, which
// direct service bypasses.
func (c *Class) DirectRanked() bool {
	if c.kind != flowLeaf {
		return false
	}
	if _, ok := c.flowPol.(RankFlowPolicy); !ok {
		return false
	}
	_, ok := c.pq.(*ffsq.CFFS)
	return ok
}

// directState is the cached plumbing of a direct-driven leaf: the
// concrete queue (no interface dispatch on the hot path) and an
// open-addressed flow table. By default flows are retained once created —
// no deletions keeps linear probing trivial and recycles ring capacity —
// so the table is sized by distinct flow ids seen, not live flows. That
// is exactly the unbounded per-flow state the paper indicts kernel FQ
// for, so a leaf can arm idle-flow eviction (SetDirectEviction): slots
// are stamped with the epoch of their last enqueue, the owner advances
// the epoch clock on its own cadence (DirectAdvanceEpoch), and stale
// idle slots are reclaimed lazily — in place on the probe path when an
// insert walks past one (the slot stays occupied, so probe chains never
// break and no tombstones are needed), and in bulk at grow time, when
// stale slots are dropped instead of rehashed. A flow with queued
// packets, or queued in the leaf's priority queue, is never evicted.
type directState struct {
	pol   RankFlowPolicy
	pq    *ffsq.CFFS
	gran  uint64
	tab   []flowSlot
	shift uint // Fibonacci-hash shift for the current table size
	n     int  // occupied slots

	// Eviction state: epoch is the current clock, evictAfter the idle age
	// (in epochs) at which a drained flow becomes reclaimable (0 disables
	// eviction), live the number of backlogged flows, evicted the number
	// of reclaimed slots. All driven under the owner's synchronization
	// (the shard lock, for the sharded policy qdisc).
	epoch      uint32
	evictAfter uint32
	live       int
	evicted    uint64
}

// flowSlot keeps the key beside the pointer so a probe compares ids
// without dereferencing the flow, and the epoch stamp of the flow's last
// enqueue beside both so an eviction check touches no extra line.
type flowSlot struct {
	id    uint64
	f     *Flow
	epoch uint32
}

// fibMult deliberately differs from the sharded runtime's flow-hash
// multiplier (0x9E3779B97F4A7C15): shards select flows by the TOP bits of
// that product, so a shard's whole flow population shares them — reusing
// the same mix here would cluster every flow into one region of the table
// and degrade linear probing to long chains.
const fibMult = 0xD6E8FEB86659FD93

//eiffel:hotpath
func (c *Class) direct() *directState {
	if c.directCache == nil {
		cffs := c.pq.(*ffsq.CFFS)
		//eiffel:allow(hotpath) one-time lazy init; every later call returns the cache
		c.directCache = &directState{
			pol:  c.flowPol.(RankFlowPolicy),
			pq:   cffs,
			gran: cffs.Granularity(),
			//eiffel:allow(hotpath) one-time lazy init; every later call returns the cache
			tab:        make([]flowSlot, 1<<8),
			shift:      64 - 8,
			evictAfter: c.directEvictAfter,
		}
	}
	return c.directCache
}

// SetDirectEviction arms idle-flow eviction on the direct service path:
// a drained flow whose slot has not seen an enqueue for evictAfter epoch
// advances becomes reclaimable. evictAfter <= 0 keeps the retain-forever
// default. Call it before the leaf serves traffic.
func (c *Class) SetDirectEviction(evictAfter int) {
	if evictAfter < 0 {
		evictAfter = 0
	}
	c.directEvictAfter = uint32(evictAfter)
	if c.directCache != nil {
		c.directCache.evictAfter = uint32(evictAfter)
	}
}

// DirectAdvanceEpoch advances the direct leaf's eviction epoch clock. The
// owner calls it on whatever cadence defines "idle" — every N packets,
// every timer tick — under the same synchronization as the Direct calls.
func (c *Class) DirectAdvanceEpoch() { c.direct().epoch++ }

// DirectFlowStats reports the direct leaf's flow-table occupancy: live is
// the number of backlogged flows, retained the number of occupied slots
// (live flows plus idle ones not yet reclaimed), evicted the number of
// slots reclaimed so far.
func (c *Class) DirectFlowStats() (live, retained int, evicted uint64) {
	d := c.direct()
	return d.live, d.n, d.evicted
}

// evictable reports whether a slot may be reclaimed: its flow holds no
// packets, sits in no queue, and has not seen an enqueue for evictAfter
// epochs. Callers check d.evictAfter > 0 first.
//
//eiffel:hotpath
func (d *directState) evictable(s *flowSlot) bool {
	return s.f.n == 0 && !s.f.Node.Queued() && d.epoch-s.epoch >= d.evictAfter
}

// flow returns the retained Flow for id, creating it on first sight. With
// eviction armed, the probe remembers the first reclaimable slot it walks
// past; if id is absent, that slot's flow is recycled in place — the new
// id lies on every probe chain that passed through the slot, and the slot
// stays occupied, so other chains are undisturbed.
//
//eiffel:hotpath
func (d *directState) flow(id uint64) *Flow {
	mask := uint64(len(d.tab) - 1)
	reuse := -1
	for i := (id * fibMult) >> d.shift; ; i = (i + 1) & mask {
		s := &d.tab[i]
		if s.f == nil {
			if reuse >= 0 {
				return d.reuseSlot(reuse, id)
			}
			if d.n >= len(d.tab)/2 {
				//eiffel:allow(hotpath) amortized table rebuild: O(1) per insert (see grow)
				d.grow()
				return d.flow(id)
			}
			//eiffel:allow(hotpath) first sight of a flow id; slots recycle via eviction
			f := &Flow{ID: id}
			f.Node.Data = f
			*s = flowSlot{id: id, f: f, epoch: d.epoch}
			d.n++
			return f
		}
		if s.id == id {
			s.epoch = d.epoch
			return s.f
		}
		if reuse < 0 && d.evictAfter > 0 && d.evictable(s) {
			reuse = int(i)
		}
	}
}

// reuseSlot recycles an idle slot's flow for a new id: policy state is
// zeroed exactly as the map path's releaseFlow does, the packet ring keeps
// its capacity, and the slot is re-stamped. Per-flow semantics match a
// fresh flow — every packet-free policy already treats a flow whose Len
// just became 1 as freshly started (see the file comment).
//
//eiffel:hotpath
func (d *directState) reuseSlot(i int, id uint64) *Flow {
	s := &d.tab[i]
	f := s.f
	f.ID, f.Bytes, f.Rank, f.U0, f.U1 = id, 0, 0, 0, 0
	s.id, s.epoch = id, d.epoch
	d.evicted++
	return f
}

// grow rebuilds the table when an insert finds it half full. Stale idle
// slots are dropped instead of rehashed (bulk reclamation), and the new
// capacity is sized by the SURVIVING set, not the slot count that forced
// the rebuild: under churn most slots are reclaimable by the time the
// table fills, and doubling regardless would ratchet the table upward
// forever — each doubling buying room for twice as many dead flows
// before the next rebuild. Rebuilding in place (or shrinking) instead
// keeps retained state proportional to the recently-active flow window
// no matter how many flows have ever existed.
func (d *directState) grow() {
	old := d.tab
	keep := 0
	for i := range old {
		s := &old[i]
		if s.f != nil && !(d.evictAfter > 0 && d.evictable(s)) {
			keep++
		}
	}
	// Invariant: post-rebuild load is in (1/8, 1/4] (down to the 256-slot
	// floor), so the next rebuild is at least cap/4 inserts away and the
	// rebuild cost amortizes to O(1) per insert.
	newCap := len(old)
	if keep > newCap/4 {
		newCap *= 2
	}
	for newCap > 256 && keep <= newCap/8 {
		newCap /= 2
	}
	d.tab = make([]flowSlot, newCap)
	d.shift = uint(64 - bits.TrailingZeros(uint(newCap)))
	mask := uint64(newCap - 1)
	n := 0
	for _, s := range old {
		if s.f == nil {
			continue
		}
		if d.evictAfter > 0 && d.evictable(&s) {
			d.evicted++
			continue
		}
		i := (s.id * fibMult) >> d.shift
		for d.tab[i].f != nil {
			i = (i + 1) & mask
		}
		d.tab[i] = s
		n++
	}
	d.n = n
}

// DirectEnqueue inserts p at this leaf under the caller-resolved keys
// (flow id and rank annotation), running the packet-free enqueue
// transaction. The packet pointer is stored, never dereferenced. A leaf
// driven directly must be driven directly for its whole life — never
// mixed with Tree.Enqueue/Dequeue on the same tree — and DirectRanked
// must hold.
//
//eiffel:hotpath
func (c *Class) DirectEnqueue(p *pkt.Packet, flow, rank uint64, now int64) {
	d := c.direct()
	f := d.flow(flow)
	f.pushRanked(p, rank)
	if f.n == 1 {
		d.live++
	}
	r := d.pol.OnEnqueueRank(f, rank, now)
	if f.Node.Queued() {
		if r/d.gran != f.Node.Rank()/d.gran {
			// Re-rank moves the flow to another bucket. Same-bucket
			// re-ranks keep the flow's position (see the file comment).
			d.pq.Remove(&f.Node)
			d.pq.Enqueue(&f.Node, r)
		}
	} else {
		d.pq.Enqueue(&f.Node, r)
	}
	c.backlog++
}

// DirectDequeue serves the next packet under direct ranked service, or
// nil when the leaf is empty. The head flow is peeked, not popped: when
// the on-dequeue transaction leaves the flow in its current bucket — the
// common case for pFabric (the running minimum rarely moves buckets) and
// for coarse-grained LQF — the flow stays in place and the queue is not
// touched at all.
//
//eiffel:hotpath
func (c *Class) DirectDequeue(now int64) *pkt.Packet {
	d := c.direct()
	n := d.pq.FrontMin()
	if n == nil {
		return nil
	}
	f := n.Data.(*Flow)
	p, rank := f.popRanked()
	var front uint64
	if f.n > 0 {
		front = f.frontRank()
	}
	r := d.pol.OnDequeueRank(f, rank, front, now)
	if f.n == 0 {
		d.pq.Remove(&f.Node) // flow object retained until evicted; see the file comment
		d.live--
	} else if r/d.gran != f.Node.Rank()/d.gran {
		d.pq.Remove(&f.Node)
		d.pq.Enqueue(&f.Node, r)
	}
	c.backlog--
	return p
}
