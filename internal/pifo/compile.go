package pifo

import (
	"fmt"
	"strconv"
	"strings"

	"eiffel/internal/queue"
)

// Compile builds a scheduler tree from a textual policy description — the
// role the PIFO reference implementation fills with DOT-to-C++ translation
// (§4 "Policy Creation"). The grammar is line-oriented; '#' starts a
// comment:
//
//	root   ranker=<wfq|strict|rr> [rate=<R>] [shaperbuckets=N] [shapergran=NS]
//	class  <name> parent=<name> ranker=<wfq|strict|rr> [weight=N] [priority=N] [rate=<R>]
//	leaf   <name> parent=<name> kind=packet ranker=<edf|strict|fifo|rank> [opts]
//	leaf   <name> parent=<name> kind=flow policy=<pfabric|lqf|sqf|fifo> [opts]
//	leaf   <name> parent=<name> kind=timegated [opts]
//
// Common opts: weight=N priority=N rate=<R> buckets=N gran=N queue=<cffs|approx|heap|bh>.
// Rates accept k/M/G suffixes (bits per second).
//
// Rankers and flow policies are resolved through the registry the caller
// passes (the policy package registers the paper's transactions); Compile
// itself stays free of upward dependencies.
func Compile(spec string, reg CompileRegistry) (*Tree, map[string]*Class, error) {
	var tree *Tree
	classes := map[string]*Class{}

	lines := strings.Split(spec, "\n")
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		kw := fields[0]
		args, name, err := parseArgs(kw, fields[1:])
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %v", ln+1, err)
		}

		switch kw {
		case "root":
			if tree != nil {
				return nil, nil, fmt.Errorf("line %d: duplicate root", ln+1)
			}
			ranker, err := reg.ChildRanker(args["ranker"])
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			rate, err := parseRate(args["rate"])
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			sb, err := parseUintArg(args, "shaperbuckets", 0)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			sg, err := parseUintArg(args, "shapergran", 0)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			tree = NewTree(TreeOptions{
				RootRanker:        ranker,
				RootRateBps:       rate,
				RootQueue:         queueConfigFrom(args),
				ShaperBuckets:     int(sb),
				ShaperGranularity: sg,
			})
			classes["root"] = tree.Root()

		case "class", "leaf":
			if tree == nil {
				return nil, nil, fmt.Errorf("line %d: %s before root", ln+1, kw)
			}
			if name == "" {
				return nil, nil, fmt.Errorf("line %d: %s needs a name", ln+1, kw)
			}
			if _, dup := classes[name]; dup {
				return nil, nil, fmt.Errorf("line %d: duplicate class %q", ln+1, name)
			}
			parent, ok := classes[args["parent"]]
			if !ok {
				return nil, nil, fmt.Errorf("line %d: unknown parent %q", ln+1, args["parent"])
			}
			opt, err := classOptionsFrom(name, args)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			var c *Class
			if kw == "class" {
				ranker, err := reg.ChildRanker(args["ranker"])
				if err != nil {
					return nil, nil, fmt.Errorf("line %d: %v", ln+1, err)
				}
				c = tree.NewInternal(parent, ranker, opt)
			} else {
				switch args["kind"] {
				case "packet", "":
					ranker, err := reg.PacketRanker(args["ranker"])
					if err != nil {
						return nil, nil, fmt.Errorf("line %d: %v", ln+1, err)
					}
					c = tree.NewPacketLeaf(parent, ranker, opt)
				case "flow":
					pol, err := reg.FlowPolicy(args["policy"])
					if err != nil {
						return nil, nil, fmt.Errorf("line %d: %v", ln+1, err)
					}
					c = tree.NewFlowLeaf(parent, pol, opt)
				case "timegated":
					c = tree.NewTimeGatedLeaf(parent, opt)
				default:
					return nil, nil, fmt.Errorf("line %d: unknown leaf kind %q", ln+1, args["kind"])
				}
			}
			classes[name] = c

		default:
			return nil, nil, fmt.Errorf("line %d: unknown keyword %q", ln+1, kw)
		}
	}
	if tree == nil {
		return nil, nil, fmt.Errorf("policy has no root")
	}
	return tree, classes, nil
}

// CompileRegistry resolves transaction names to implementations.
type CompileRegistry interface {
	// ChildRanker returns the ranker for name ("" selects the default).
	ChildRanker(name string) (ChildRanker, error)
	// PacketRanker returns the packet ranker for name.
	PacketRanker(name string) (PacketRanker, error)
	// FlowPolicy returns the flow policy for name.
	FlowPolicy(name string) (FlowPolicy, error)
}

func parseArgs(kw string, fields []string) (map[string]string, string, error) {
	args := map[string]string{}
	name := ""
	for _, f := range fields {
		eq := strings.IndexByte(f, '=')
		if eq < 0 {
			if name != "" {
				return nil, "", fmt.Errorf("unexpected token %q", f)
			}
			name = f
			continue
		}
		args[f[:eq]] = f[eq+1:]
	}
	return args, name, nil
}

func parseRate(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	mult := uint64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1e3, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1e6, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1e9, s[:len(s)-1]
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad rate %q", s)
	}
	return v * mult, nil
}

func parseUintArg(args map[string]string, key string, def uint64) (uint64, error) {
	s, ok := args[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", key, s)
	}
	return v, nil
}

func queueConfigFrom(args map[string]string) (qc queue.Config) {
	// Omitted sizes fall back to the registry defaults.
	if b, err := parseUintArg(args, "buckets", 0); err == nil {
		qc.NumBuckets = int(b)
	}
	if g, err := parseUintArg(args, "gran", 0); err == nil {
		qc.Granularity = g
	}
	return qc
}

func classOptionsFrom(name string, args map[string]string) (ClassOptions, error) {
	opt := ClassOptions{Name: name, Queue: queueConfigFrom(args)}
	var err error
	if opt.Weight, err = parseUintArg(args, "weight", 0); err != nil {
		return opt, err
	}
	if opt.Priority, err = parseUintArg(args, "priority", 0); err != nil {
		return opt, err
	}
	if opt.RateBps, err = parseRate(args["rate"]); err != nil {
		return opt, err
	}
	switch args["queue"] {
	case "", "cffs":
		opt.QueueKind = queue.KindCFFS
	case "approx":
		opt.QueueKind = queue.KindCApprox
	case "heap":
		opt.QueueKind = queue.KindBinaryHeap
	case "bh":
		opt.QueueKind = queue.KindBH
	default:
		return opt, fmt.Errorf("unknown queue backend %q", args["queue"])
	}
	return opt, nil
}
