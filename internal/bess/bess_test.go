package bess

import (
	"testing"

	"eiffel/internal/hclock"
	"eiffel/internal/pifo"
	"eiffel/internal/pkt"
	"eiffel/internal/policy"
	"eiffel/internal/queue"
)

func hclockSched(flows int, perFlowBps uint64, backend hclock.Backend) *HClockModule {
	s := hclock.New(hclock.Config{Backend: backend})
	for i := 1; i <= flows; i++ {
		s.AddFlow(uint64(i), 0, perFlowBps, 1)
	}
	return &HClockModule{S: s}
}

func TestPipelineDeliversEverything(t *testing.T) {
	pool := pkt.NewPool(4096)
	sched := hclockSched(16, 0, hclock.BackendEiffel)
	src := NewSource(pool, sched, 16, 1500)
	pl := Pipeline{Source: src, Sched: sched, Sink: NewSink(pool)}
	res := pl.RunVirtual(1000, 1000)
	if res.Packets == 0 {
		t.Fatal("nothing delivered")
	}
	if res.Bytes != res.Packets*1500 {
		t.Fatalf("byte accounting: %d bytes for %d packets", res.Bytes, res.Packets)
	}
	if sched.Backlog() > 16*32 {
		t.Fatalf("backlog exceeds per-flow caps: %d", sched.Backlog())
	}
}

func TestPerFlowCapRespected(t *testing.T) {
	pool := pkt.NewPool(4096)
	// Tiny per-flow limit parks flows, so the source must stop at the cap.
	sched := hclockSched(4, 1000, hclock.BackendEiffel)
	src := NewSource(pool, sched, 4, 1500)
	pl := Pipeline{Source: src, Sched: sched, Sink: NewSink(pool)}
	pl.RunVirtual(500, 1000)
	for id := uint64(1); id <= 4; id++ {
		if got := sched.FlowBacklog(id); got > 32 {
			t.Fatalf("flow %d backlog %d exceeds cap 32", id, got)
		}
	}
}

func TestBatchingMode(t *testing.T) {
	pool := pkt.NewPool(4096)
	sched := hclockSched(8, 0, hclock.BackendEiffel)
	src := NewSource(pool, sched, 8, 1500)
	src.BatchPerFlow = true
	pl := Pipeline{Source: src, Sched: sched, Sink: NewSink(pool)}
	res := pl.RunVirtual(200, 1000)
	if res.Packets == 0 {
		t.Fatal("batched mode delivered nothing")
	}
}

func TestTCModuleRoundRobinAndLimits(t *testing.T) {
	pool := pkt.NewPool(1024)
	tc := NewTCModule(4, 0)
	for id := uint64(1); id <= 4; id++ {
		tc.SetLimit(id, 8_000_000) // 1500B every 1.5ms
	}
	src := NewSource(pool, tc, 4, 1500)
	pl := Pipeline{Source: src, Sched: tc, Sink: NewSink(pool)}
	res := pl.RunVirtual(2000, 100_000) // 200 ms of virtual time
	// 4 flows x 8 Mbps x 0.2s = 800 KB total.
	wantBytes := float64(4 * 8_000_000 / 8 * 0.2)
	if f := float64(res.Bytes); f < wantBytes*0.8 || f > wantBytes*1.2 {
		t.Fatalf("tc delivered %v bytes, want ~%v", f, wantBytes)
	}
}

func TestTreeModulePFabric(t *testing.T) {
	pool := pkt.NewPool(4096)
	tr := pifo.NewTree(pifo.TreeOptions{
		RootRanker: policy.WFQ{},
		RootQueue:  queue.Config{NumBuckets: 1 << 12, Granularity: 1},
	})
	leaf := tr.NewFlowLeaf(nil, policy.PFabric{}, pifo.ClassOptions{
		Name:  "pfabric",
		Queue: queue.Config{NumBuckets: 1 << 14, Granularity: 1 << 6},
	})
	mod := NewTreeModule(tr, leaf)
	src := NewSource(pool, mod, 32, 1500)
	pl := Pipeline{Source: src, Sched: mod, Sink: NewSink(pool)}
	res := pl.RunVirtual(500, 1000)
	if res.Packets == 0 {
		t.Fatal("pFabric tree module delivered nothing")
	}
	if mod.Backlog() != tr.Len() {
		t.Fatalf("backlog mismatch: %d vs %d", mod.Backlog(), tr.Len())
	}
}

func TestWallClockRunProducesThroughput(t *testing.T) {
	pool := pkt.NewPool(8192)
	sched := hclockSched(64, 0, hclock.BackendEiffel)
	src := NewSource(pool, sched, 64, 1500)
	pl := Pipeline{Source: src, Sched: sched, Sink: NewSink(pool)}
	res := pl.RunFor(20_000_000) // 20ms
	if res.Mpps() <= 0 {
		t.Fatal("no wall-clock throughput")
	}
	t.Logf("one-core hClock(Eiffel) 64 flows: %.1f Mbps / %.2f Mpps", res.Mbps(), res.Mpps())
}

func TestPoolSteadyStateNoAllocs(t *testing.T) {
	pool := pkt.NewPool(8192)
	sched := hclockSched(16, 0, hclock.BackendEiffel)
	src := NewSource(pool, sched, 16, 1500)
	pl := Pipeline{Source: src, Sched: sched, Sink: NewSink(pool)}
	pl.RunVirtual(100, 1000)
	before := pool.Allocs()
	pl.RunVirtual(2000, 1000)
	if after := pool.Allocs(); after != before {
		t.Fatalf("steady state allocated %d new packets", after-before)
	}
}
