package bess

import (
	"eiffel/internal/hclock"
	"eiffel/internal/pifo"
	"eiffel/internal/pkt"
)

// HClockModule adapts an hclock.Scheduler to the pipeline.
type HClockModule struct {
	S *hclock.Scheduler
}

// Enqueue implements Sched.
func (m *HClockModule) Enqueue(p *pkt.Packet, now int64) { m.S.Enqueue(p, now) }

// Dequeue implements Sched.
func (m *HClockModule) Dequeue(now int64) *pkt.Packet { return m.S.Dequeue(now) }

// FlowBacklog implements Sched.
func (m *HClockModule) FlowBacklog(id uint64) int {
	if f := m.S.Flow(id); f != nil {
		return f.Len()
	}
	return 0
}

// Backlog implements Sched.
func (m *HClockModule) Backlog() int { return m.S.Len() }

// TreeModule adapts a pifo.Tree with a single leaf to the pipeline (used
// by the pFabric use case, Figure 15).
type TreeModule struct {
	T    *pifo.Tree
	Leaf *pifo.Class

	flowLen map[uint64]int
}

// NewTreeModule wraps tree with leaf as the sole entry point.
func NewTreeModule(t *pifo.Tree, leaf *pifo.Class) *TreeModule {
	return &TreeModule{T: t, Leaf: leaf, flowLen: make(map[uint64]int)}
}

// Enqueue implements Sched.
func (m *TreeModule) Enqueue(p *pkt.Packet, now int64) {
	m.flowLen[p.Flow]++
	m.T.Enqueue(m.Leaf, p, now)
}

// Dequeue implements Sched.
func (m *TreeModule) Dequeue(now int64) *pkt.Packet {
	p := m.T.Dequeue(now)
	if p != nil {
		m.flowLen[p.Flow]--
		if m.flowLen[p.Flow] == 0 {
			delete(m.flowLen, p.Flow)
		}
	}
	return p
}

// FlowBacklog implements Sched.
func (m *TreeModule) FlowBacklog(id uint64) int { return m.flowLen[id] }

// Backlog implements Sched.
func (m *TreeModule) Backlog() int { return m.T.Len() }

// TCModule emulates replicating hClock behaviour with BESS's native
// traffic-control mechanism, which "requires instantiating a module
// corresponding to every flow" (§5.1.2): one pseudo-module per flow with
// its own FIFO and rate state, scanned round-robin by the task scheduler.
// The per-emission cost grows with the number of flow modules scanned,
// which is what makes this baseline collapse at high flow counts.
type TCModule struct {
	flows   []tcFlow
	cursor  int
	backlog int
}

type tcFlow struct {
	ring     []*pkt.Packet
	head, n  int
	limitBps uint64
	nextFree int64
}

// NewTCModule builds per-flow modules 1..flows, each rate-limited to
// perFlowBps (0 = unlimited).
func NewTCModule(flows int, perFlowBps uint64) *TCModule {
	return &TCModule{flows: make([]tcFlow, flows), cursor: 0}
}

// SetLimit assigns a per-flow rate limit.
func (m *TCModule) SetLimit(id uint64, bps uint64) { m.flows[id-1].limitBps = bps }

// Enqueue implements Sched.
func (m *TCModule) Enqueue(p *pkt.Packet, now int64) {
	f := &m.flows[p.Flow-1]
	if f.n == len(f.ring) {
		size := len(f.ring) * 2
		if size == 0 {
			size = 8
		}
		ring := make([]*pkt.Packet, size)
		for i := 0; i < f.n; i++ {
			ring[i] = f.ring[(f.head+i)%len(f.ring)]
		}
		f.ring, f.head = ring, 0
	}
	f.ring[(f.head+f.n)%len(f.ring)] = p
	f.n++
	m.backlog++
}

// Dequeue implements Sched: scan flow modules round-robin for an eligible
// one — O(#flows) when most are rate-parked or empty.
func (m *TCModule) Dequeue(now int64) *pkt.Packet {
	if m.backlog == 0 {
		return nil
	}
	for scan := 0; scan < len(m.flows); scan++ {
		f := &m.flows[m.cursor]
		m.cursor = (m.cursor + 1) % len(m.flows)
		if f.n == 0 {
			continue
		}
		if f.limitBps > 0 && f.nextFree > now {
			continue
		}
		p := f.ring[f.head]
		f.ring[f.head] = nil
		f.head = (f.head + 1) % len(f.ring)
		f.n--
		m.backlog--
		if f.limitBps > 0 {
			start := f.nextFree
			if start < now {
				start = now
			}
			f.nextFree = start + int64(uint64(p.Size)*8*1e9/f.limitBps)
		}
		return p
	}
	return nil
}

// FlowBacklog implements Sched.
func (m *TCModule) FlowBacklog(id uint64) int { return m.flows[id-1].n }

// Backlog implements Sched.
func (m *TCModule) Backlog() int { return m.backlog }
