// Package bess is a miniature of the Berkeley Extensible Software Switch
// (BESS/SoftNIC) — the userspace substrate of §4 and §5.1.2/§5.1.3: network
// processing elements form a pipeline of modules, packets move in batches
// of 32, and a busy-polling loop on one core drives the tasks. The NIC is
// replaced by a counting sink; throughput in Mbps is pps x packet size,
// exactly the metric Figures 12, 13, and 15 report.
package bess

import (
	"time"

	"eiffel/internal/pkt"
)

// BatchSize is the packets-per-batch unit of the pipeline (BESS default).
const BatchSize = 32

// Sched is a scheduler module: the pipeline pushes packets in and pulls
// ranked packets out.
type Sched interface {
	// Enqueue admits one packet.
	Enqueue(p *pkt.Packet, now int64)
	// Dequeue emits the next packet, or nil.
	Dequeue(now int64) *pkt.Packet
	// FlowBacklog reports queued packets for a flow, used by sources to
	// respect the per-flow cap (§4: 32 packets per flow).
	FlowBacklog(id uint64) int
	// Backlog reports total queued packets.
	Backlog() int
}

// Source generates traffic round-robin across flows (the "simple packet
// generator + round robin annotator" of §5.1.2).
type Source struct {
	// Flows is the number of traffic classes.
	Flows int
	// PacketSize in bytes (60 or 1500 in Figure 13).
	PacketSize uint32
	// PerFlowCap bounds queued packets per flow (default 32).
	PerFlowCap int
	// BatchPerFlow enables per-flow batching in units of BatchBytes
	// payload (Figure 13's "batching" mode).
	BatchPerFlow bool
	// BatchBytes is the per-flow batch size (default 10 KB, the
	// fairness-safe threshold §4 adopts from hClock).
	BatchBytes int
	// Rank, when set, annotates each packet's Rank field (e.g. the
	// flow's remaining size for pFabric workloads).
	Rank func(flow uint64) uint64

	pool   *pkt.Pool
	sched  Sched
	cursor int
	sent   uint64
}

// NewSource returns a source feeding sched from pool.
func NewSource(pool *pkt.Pool, sched Sched, flows int, size uint32) *Source {
	return &Source{
		Flows:      flows,
		PacketSize: size,
		PerFlowCap: 32,
		BatchBytes: 10 * 1000,
		pool:       pool,
		sched:      sched,
	}
}

// Run generates up to one batch of packets, returning how many were
// emitted.
func (s *Source) Run(now int64) int {
	emitted := 0
	// Bound the scan: when most flows sit at their cap (e.g. the
	// scheduler is rate-gated), an unbounded walk over every flow per
	// run would dominate the measurement instead of the scheduler.
	maxScan := s.Flows
	if lim := 4 * BatchSize; maxScan > lim {
		maxScan = lim
	}
	if s.BatchPerFlow {
		// Fill one flow with BatchBytes worth of packets. A batch is
		// admitted whenever the flow's queue is empty (the batch arrives
		// as one unit), so batches larger than the steady-state cap —
		// 10 KB of 60 B packets — still flow.
		per := s.BatchBytes / int(s.PacketSize)
		if per < 1 {
			per = 1
		}
		for scan := 0; scan < maxScan && emitted == 0; scan++ {
			id := uint64(s.cursor%s.Flows) + 1
			s.cursor++
			// Refill when less than one batch remains queued, keeping
			// up to ~2 batches in flight per flow.
			if s.sched.FlowBacklog(id) >= per {
				continue
			}
			for i := 0; i < per; i++ {
				s.emit(id, now)
				emitted++
			}
		}
		return emitted
	}
	// One packet per flow, round-robin, one batch per run.
	for scan := 0; scan < maxScan && emitted < BatchSize; scan++ {
		id := uint64(s.cursor%s.Flows) + 1
		s.cursor++
		if s.sched.FlowBacklog(id) >= s.PerFlowCap {
			continue
		}
		s.emit(id, now)
		emitted++
	}
	return emitted
}

func (s *Source) emit(flow uint64, now int64) {
	p := s.pool.Get()
	p.Flow = flow
	p.Size = s.PacketSize
	p.Class = int32(flow % 8)
	p.Arrival = now
	if s.Rank != nil {
		p.Rank = s.Rank(flow)
	}
	s.sent++
	s.sched.Enqueue(p, now)
}

// Sink counts and recycles transmitted packets.
type Sink struct {
	pool    *pkt.Pool
	Packets uint64
	Bytes   uint64
}

// NewSink returns a sink recycling into pool.
func NewSink(pool *pkt.Pool) *Sink { return &Sink{pool: pool} }

// Consume absorbs one packet.
func (k *Sink) Consume(p *pkt.Packet) {
	k.Packets++
	k.Bytes += uint64(p.Size)
	k.pool.Put(p)
}

// Pipeline busy-polls a source and a scheduler on the calling goroutine
// (one core), draining into a sink.
type Pipeline struct {
	Source *Source
	Sched  Sched
	Sink   *Sink
}

// Result summarizes a pipeline run.
type Result struct {
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
	// Packets and Bytes were delivered to the sink.
	Packets uint64
	Bytes   uint64
}

// Mbps returns the delivered rate in megabits per second.
func (r Result) Mbps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / r.Elapsed.Seconds() / 1e6
}

// Mpps returns the delivered rate in million packets per second.
func (r Result) Mpps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Packets) / r.Elapsed.Seconds() / 1e6
}

// RunFor busy-polls for roughly d of wall-clock time and reports delivered
// throughput. The loop alternates source and scheduler work exactly like a
// one-core BESS task scheduler with two tasks.
func (pl *Pipeline) RunFor(d time.Duration) Result {
	start := time.Now()
	deadline := start.Add(d)
	var out Result
	for {
		wall := time.Now()
		if !wall.Before(deadline) {
			break
		}
		now := wall.Sub(start).Nanoseconds()
		pl.Source.Run(now)
		for i := 0; i < BatchSize; i++ {
			p := pl.Sched.Dequeue(now)
			if p == nil {
				break
			}
			pl.Sink.Consume(p)
		}
	}
	out.Elapsed = time.Since(start)
	out.Packets = pl.Sink.Packets
	out.Bytes = pl.Sink.Bytes
	return out
}

// RunVirtual drives the pipeline on a deterministic virtual clock for
// tests: iters rounds, stepNs apart.
func (pl *Pipeline) RunVirtual(iters int, stepNs int64) Result {
	var out Result
	now := int64(0)
	for i := 0; i < iters; i++ {
		pl.Source.Run(now)
		for j := 0; j < BatchSize; j++ {
			p := pl.Sched.Dequeue(now)
			if p == nil {
				break
			}
			pl.Sink.Consume(p)
		}
		now += stepNs
	}
	out.Elapsed = time.Duration(now)
	out.Packets = pl.Sink.Packets
	out.Bytes = pl.Sink.Bytes
	return out
}
