package hotpath_test

import (
	"testing"

	"eiffel/internal/analysis/analysistest"
	"eiffel/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, ".", hotpath.Analyzer, "a")
}
