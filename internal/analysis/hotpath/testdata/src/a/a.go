// Package a is the hotpath golden fixture: allocating constructs, the
// module-local call-graph closure, and the closure-argument exemption, in
// both conforming and violating forms.
package a

// drain sums a batch without allocating.
//
//eiffel:hotpath
func drain(buf []int) int {
	total := 0
	for _, v := range buf {
		total += v
	}
	return total
}

// serve hands each element to fn without retaining it.
//
//eiffel:hotpath
func serve(buf []int, fn func(int)) {
	for _, v := range buf {
		fn(v)
	}
}

// pump uses the closure-argument idiom legally: the literal is a direct
// argument to a module-local hotpath callee.
//
//eiffel:hotpath
func pump(buf []int, out *int) {
	serve(buf, func(v int) {
		*out += v
	})
}

type sink struct{ buf []int }

// keep appends to receiver-owned scratch: amortized reuse, not flagged.
//
//eiffel:hotpath
func (s *sink) keep(v int) {
	s.buf = append(s.buf, v)
}

// refill is the amortized slow path, suppressed with a rationale.
//
//eiffel:hotpath
func (s *sink) refill(n int) {
	//eiffel:allow(hotpath) amortized: runs once per capacity doubling
	s.buf = make([]int, 0, n)
}

func slowHelper() {}

//eiffel:hotpath
func badCall() {
	slowHelper() // want `calls slowHelper, which is not annotated`
}

//eiffel:hotpath
func badMake() []int {
	return make([]int, 8) // want `make allocates in hotpath function badMake`
}

//eiffel:hotpath
func badAppend() int {
	var scratch []int
	scratch = append(scratch, 1) // want `append to function-local slice scratch`
	return len(scratch)
}

//eiffel:hotpath
func badClosure() func() {
	return func() {} // want `closure in hotpath function badClosure`
}

//eiffel:hotpath
func badDefer() {
	defer drain(nil) // want `defer in hotpath function badDefer`
}

//eiffel:hotpath
func badBox(v int) any {
	return any(v) // want `conversion of int to interface`
}

//eiffel:hotpath
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//eiffel:hotpath
func badSliceLit() []int {
	return []int{1, 2} // want `slice literal allocates`
}
