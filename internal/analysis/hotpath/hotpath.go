// Package hotpath turns the runtime allocation gate
// (scripts/check_bench_allocs.sh, BenchmarkHotPath* at 0 allocs/op) into a
// compile-time check with precise positions: a function annotated
// `//eiffel:hotpath` must be free of allocation-inducing constructs, and
// every static call it makes into this module must target another hotpath
// function — so the annotation provably covers the whole static call
// graph under each benchmark's entry points.
//
// Reported constructs:
//
//   - function literals, except when passed directly as an argument to a
//     module-local hotpath function (the mergeRuns serve-callback idiom:
//     the callee is itself under the gate and does not retain its
//     argument, so the closure does not escape);
//   - make/new, map and slice composite literals, and &composite
//     (pointer-to-literal) expressions;
//   - append whose destination is a slice declared in the function body —
//     growth of a fresh slice is a per-op allocation; append to reused
//     scratch (a field or parameter) is amortized and allowed;
//   - conversions of non-pointer concrete values to interface types,
//     whether spelled as conversions or implied by call arguments
//     (pointers and interface-to-interface are free in the gc ABI);
//   - string concatenation with non-constant operands and string<->[]byte
//     conversions;
//   - go and defer statements;
//   - calls into the denylisted formatting packages (fmt, errors, log);
//   - static calls to module-local functions not annotated hotpath.
//
// Dynamic dispatch — interface methods and func values (the Scheduler
// backends, PairFunc) — is invisible to the static pass; the runtime gate
// still measures those paths, which is why both gates exist and cross-
// reference each other. Genuine amortized slow paths (table growth, pool
// refill) are suppressed at the call site with
// `//eiffel:allow(hotpath) <rationale>`, keeping each exception visible.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"eiffel/internal/analysis"
)

// Analyzer is the hotpath pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "//eiffel:hotpath functions must avoid allocation-inducing constructs and may only call other hotpath functions within the module",
	Run:  run,
}

// denied packages: their call surfaces allocate by design.
var deniedPkgs = map[string]bool{"fmt": true, "errors": true, "log": true}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			fa := pass.Annot.Funcs[obj]
			if fa == nil || !fa.Hotpath {
				continue
			}
			(&checker{pass: pass, fn: fn}).check()
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl

	locals map[types.Object]bool // slice vars declared in this body
}

func (c *checker) check() {
	c.locals = make(map[types.Object]bool)
	// Collect body-local variable declarations first (:= and var), so the
	// append rule can tell fresh slices from reused scratch.
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.Info.Defs[id]; obj != nil {
				if _, isVar := obj.(*types.Var); isVar {
					c.locals[obj] = true
				}
			}
		}
		return true
	})
	c.walk(c.fn.Body)
}

func (c *checker) walk(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "go statement in hotpath function %s", c.fn.Name.Name)
		case *ast.DeferStmt:
			c.pass.Reportf(n.Pos(), "defer in hotpath function %s", c.fn.Name.Name)
		case *ast.FuncLit:
			// Checked at the enclosing CallExpr when passed to a hotpath
			// callee; reaching one here means it was NOT such an argument.
			c.pass.Reportf(n.Pos(), "closure in hotpath function %s may escape and allocate", c.fn.Name.Name)
			return false
		case *ast.CompositeLit:
			c.compositeLit(n, false)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.compositeLit(cl, true)
					// Children were handled; still descend for nested exprs.
				}
			}
		case *ast.BinaryExpr:
			c.binary(n)
		case *ast.CallExpr:
			if c.call(n) {
				return false
			}
		}
		return true
	})
}

func (c *checker) compositeLit(n *ast.CompositeLit, addressed bool) {
	tv, ok := c.pass.Info.Types[n]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		c.pass.Reportf(n.Pos(), "map literal allocates in hotpath function %s", c.fn.Name.Name)
	case *types.Slice:
		c.pass.Reportf(n.Pos(), "slice literal allocates in hotpath function %s", c.fn.Name.Name)
	default:
		if addressed {
			c.pass.Reportf(n.Pos(), "&composite literal may heap-allocate in hotpath function %s", c.fn.Name.Name)
		}
	}
}

func (c *checker) binary(n *ast.BinaryExpr) {
	if n.Op != token.ADD {
		return
	}
	tv, ok := c.pass.Info.Types[n]
	if !ok {
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return
	}
	if tv.Value != nil {
		return // constant-folded
	}
	c.pass.Reportf(n.Pos(), "string concatenation allocates in hotpath function %s", c.fn.Name.Name)
}

// call checks one call expression; returns true if the walk should skip
// the call's children (closure arguments already handled).
func (c *checker) call(call *ast.CallExpr) bool {
	// Type conversions.
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		c.conversion(call, tv.Type)
		for _, arg := range call.Args {
			c.walk(arg)
		}
		return true
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := c.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			c.builtin(id.Name, call) // walks the arguments itself
			return true
		}
	}
	fn := analysis.StaticCallee(c.pass.Info, call)
	if fn == nil {
		// Dynamic dispatch: func value or interface method. Exempt (see
		// package doc); still check the arguments below via the walk.
		return false
	}
	c.boxedArgs(call, fn)
	pkg := fn.Pkg()
	switch {
	case pkg == nil:
		// error.Error etc.: nothing to check.
	case deniedPkgs[pkg.Path()]:
		c.pass.Reportf(call.Pos(), "call to %s.%s allocates (denylisted package) in hotpath function %s",
			pkg.Name(), fn.Name(), c.fn.Name.Name)
	case c.isModuleLocal(pkg):
		callee := c.annotFor(fn)
		if callee == nil || !callee.Hotpath {
			c.pass.Reportf(call.Pos(), "hotpath function %s calls %s, which is not annotated //eiffel:hotpath",
				c.fn.Name.Name, analysis.FuncDisplayName(fn))
		} else {
			// Closure arguments to a hotpath callee are allowed (the
			// serve-callback idiom) but their bodies are still checked.
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					c.walk(lit.Body)
				}
			}
			c.walkArgsSkippingFuncLits(call)
			return true
		}
	}
	return false
}

// walkArgsSkippingFuncLits re-walks non-literal arguments of a call whose
// closure arguments were already handled.
func (c *checker) walkArgsSkippingFuncLits(call *ast.CallExpr) {
	c.walk(call.Fun)
	for _, arg := range call.Args {
		if _, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			continue
		}
		c.walk(arg)
	}
}

func (c *checker) conversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	argT := c.pass.Info.Types[call.Args[0]].Type
	if argT == nil {
		return
	}
	if types.IsInterface(target.Underlying()) && !types.IsInterface(argT.Underlying()) && !pointerShaped(argT) {
		c.pass.Reportf(call.Pos(), "conversion of %s to interface %s allocates in hotpath function %s",
			argT, target, c.fn.Name.Name)
		return
	}
	// string <-> []byte/[]rune copies allocate.
	if isString(target) && isByteOrRuneSlice(argT) || isString(argT) && isByteOrRuneSlice(target) {
		c.pass.Reportf(call.Pos(), "string/slice conversion allocates in hotpath function %s", c.fn.Name.Name)
	}
}

func (c *checker) builtin(name string, call *ast.CallExpr) {
	switch name {
	case "make", "new":
		c.pass.Reportf(call.Pos(), "%s allocates in hotpath function %s", name, c.fn.Name.Name)
	case "append":
		if len(call.Args) == 0 {
			return
		}
		dst := ast.Unparen(call.Args[0])
		id, ok := dst.(*ast.Ident)
		if !ok {
			return // field or indexed scratch: reused storage, amortized
		}
		obj := c.pass.Info.Uses[id]
		if obj == nil || !c.locals[obj] {
			return // parameter or package-level: caller-owned storage
		}
		c.pass.Reportf(call.Pos(), "append to function-local slice %s allocates per call in hotpath function %s",
			id.Name, c.fn.Name.Name)
	}
	for _, arg := range call.Args {
		c.walk(arg)
	}
}

// boxedArgs flags non-pointer concrete arguments passed to interface
// parameters (implicit conversions the gc ABI must heap-box).
func (c *checker) boxedArgs(call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := c.pass.Info.Types[arg].Type
		if at == nil || types.IsInterface(at.Underlying()) || pointerShaped(at) {
			continue
		}
		if tv := c.pass.Info.Types[arg]; tv.Value != nil {
			continue // constants may be statically boxed
		}
		c.pass.Reportf(arg.Pos(), "argument boxes %s into interface %s in hotpath function %s",
			at, pt, c.fn.Name.Name)
	}
}

func (c *checker) isModuleLocal(pkg *types.Package) bool {
	if pkg == c.pass.Pkg {
		return true
	}
	return c.pass.DepAnnot != nil && c.pass.DepAnnot(pkg.Path()) != nil
}

func (c *checker) annotFor(fn *types.Func) *analysis.FuncAnnot {
	if fa := c.pass.Annot.Funcs[fn]; fa != nil {
		return fa
	}
	if fn.Pkg() != nil && c.pass.DepAnnot != nil {
		if dep := c.pass.DepAnnot(fn.Pkg().Path()); dep != nil {
			return dep.Funcs[fn]
		}
	}
	return nil
}

func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}
