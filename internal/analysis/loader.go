package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader typechecks module-local packages from source (so the analyzers
// see syntax, comments, and annotations) and resolves standard-library
// imports through the compiler's export data. No network, no external
// tooling: everything the suite needs ships with the Go toolchain.
type Loader struct {
	Fset *token.FileSet
	// ModuleRoot is the directory holding go.mod; ModulePath its module
	// line. Empty ModulePath means a rootless load (analysistest fixtures),
	// where only stdlib imports resolve.
	ModuleRoot string
	ModulePath string

	std  types.Importer
	pkgs map[string]*Package // keyed by import path
}

// NewLoader returns a loader rooted at the module containing dir (the
// nearest enclosing go.mod). dir may be any directory inside the module.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	l := newBareLoader()
	l.ModuleRoot, l.ModulePath = root, module
	return l, nil
}

// NewFixtureLoader returns a rootless loader for self-contained test
// fixture packages: only standard-library imports resolve.
func NewFixtureLoader() *Loader { return newBareLoader() }

func newBareLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		std:  importer.ForCompiler(fset, "gc", nil),
		pkgs: make(map[string]*Package),
	}
}

// Package returns an already-loaded package by import path, or nil.
func (l *Loader) Package(path string) *Package { return l.pkgs[path] }

// Annotations returns the annotation index of a loaded package, or nil —
// the DepAnnot hook RunAnalyzers threads into passes.
func (l *Loader) Annotations(path string) *Annotations {
	if p := l.pkgs[path]; p != nil {
		return p.Annot
	}
	return nil
}

// Load resolves each pattern — an import path inside the module, a
// ./relative directory, or either form suffixed /... — and returns the
// matched packages in a stable order, loading (and typechecking) anything
// not yet cached, dependencies included.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var paths []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec, pat = true, strings.TrimSuffix(pat, "/...")
		}
		if pat == "." || pat == "./" {
			pat = ""
		}
		pat = strings.TrimPrefix(pat, "./")
		if strings.HasPrefix(pat, l.ModulePath) {
			pat = strings.TrimPrefix(strings.TrimPrefix(pat, l.ModulePath), "/")
		}
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(pat))
		if !rec {
			ip := l.ModulePath
			if pat != "" {
				ip += "/" + pat
			}
			add(ip)
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if !hasGoFiles(path) {
				return nil
			}
			rel, err := filepath.Rel(l.ModuleRoot, path)
			if err != nil {
				return err
			}
			ip := l.ModulePath
			if rel != "." {
				ip += "/" + filepath.ToSlash(rel)
			}
			add(ip)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(paths)
	var out []*Package
	for _, ip := range paths {
		pkg, err := l.load(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// load typechecks the module-local package at importPath, memoized.
func (l *Loader) load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	return l.LoadDir(dir, importPath)
}

// LoadDir typechecks the single package in dir under the given import
// path. Test files are excluded: annotations govern shipped code, and the
// race/bench gates already cover the test surface.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", importPath, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) { return l.importPkg(path) }),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", importPath, err)
	}
	p := &Package{
		Path:  importPath,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Annot: ExtractAnnotations(l.Fset, files, info),
	}
	l.pkgs[importPath] = p
	return p, nil
}

// importPkg resolves one import: unsafe specially, module-local paths from
// source (recursively, so their annotations are indexed too), everything
// else through the compiler's export data.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.ModulePath != "" && (path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
