package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		in   string
		verb string
		args []string
		ok   bool
	}{
		{"//eiffel:hotpath", "hotpath", nil, true},
		{"//eiffel:locked(mu)", "locked", []string{"mu"}, true},
		{"//eiffel:publishedBy(push, pushN)", "publishedBy", []string{"push", "pushN"}, true},
		{"//eiffel:allow(lockcheck) snapshot read is tolerated", "allow", []string{"lockcheck"}, true},
		{"//eiffel:hotpath trailing prose is ignored", "hotpath", nil, true},
		{"// ordinary comment", "", nil, false},
		{"//eiffel:locked(unclosed", "", nil, false},
	}
	for _, c := range cases {
		verb, args, ok := parseDirective(c.in)
		if verb != c.verb || ok != c.ok || !reflect.DeepEqual(args, c.args) {
			t.Errorf("parseDirective(%q) = %q, %v, %v; want %q, %v, %v",
				c.in, verb, args, ok, c.verb, c.args, c.ok)
		}
	}
}

func TestAllowedMatchesSameAndPreviousLine(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //eiffel:allow(lockcheck) same-line suppression
	//eiffel:allow(hotpath) next-line suppression
	_ = 2
	_ = 3
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	a := ExtractAnnotations(fset, []*ast.File{file}, &types.Info{})
	body := file.Decls[0].(*ast.FuncDecl).Body.List
	stmt1, stmt2, stmt3 := body[0].Pos(), body[1].Pos(), body[2].Pos()

	if !a.Allowed(fset, stmt1, "lockcheck") {
		t.Error("same-line allow(lockcheck) not honored")
	}
	if a.Allowed(fset, stmt1, "hotpath") {
		t.Error("allow(lockcheck) must not suppress hotpath")
	}
	if !a.Allowed(fset, stmt2, "hotpath") {
		t.Error("previous-line allow(hotpath) not honored")
	}
	if a.Allowed(fset, stmt3, "hotpath") {
		t.Error("allow must not leak past the following line")
	}
}
