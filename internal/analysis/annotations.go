package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The machine-readable annotation language. Annotations are ordinary
// comments of the form `//eiffel:<verb>` or `//eiffel:<verb>(<args>)`,
// attached to the declaration they govern:
//
//	//eiffel:locked(mu)       (func)  callers must hold <recv>.mu — or, when
//	                                  mu is not a field of the receiver, the
//	                                  abstract lock named mu (see acquires)
//	//eiffel:acquires(shard)  (func)  the function acquires the abstract
//	                                  lock for the duration of any function-
//	                                  literal argument it is passed (the
//	                                  WithShardLocked callback pattern)
//	//eiffel:hotpath          (func)  the body must be free of allocation-
//	                                  inducing constructs, and every static
//	                                  module-local callee must be hotpath too
//	//eiffel:guarded(mu)      (field) every access to the field must hold
//	                                  the sibling mutex field mu
//	//eiffel:atomic           (field) the field may only be touched through
//	                                  sync/atomic calls (plain loads/stores
//	                                  are reported even if the package also
//	                                  contains atomic accesses)
//	//eiffel:publishedBy(f,g) (field) stores through the field (slot memory)
//	                                  are legal only inside functions f, g
//
// Suppression: `//eiffel:allow(<analyzer>[,<analyzer>...])  <rationale>`
// on the offending line, or on the line immediately above it, drops that
// analyzer's findings there. Every allow site is a documented exception —
// the rationale is part of the comment on purpose.

// FuncAnnot is the parsed annotation set of one function declaration.
type FuncAnnot struct {
	// Locked lists lock names the function requires held on entry. A name
	// that resolves to a mutex-typed field of the receiver's struct is a
	// receiver-field lock; anything else is an abstract lock name.
	Locked []string
	// Acquires lists abstract locks the function holds around calls of its
	// function-literal arguments.
	Acquires []string
	// Hotpath marks the function as part of the zero-allocation call graph.
	Hotpath bool

	// Decl is the annotated declaration.
	Decl *ast.FuncDecl
}

// FieldAnnot is the parsed annotation set of one struct field.
type FieldAnnot struct {
	// Guarded names the sibling mutex field that must be held.
	Guarded string
	// Atomic requires all access to go through sync/atomic.
	Atomic bool
	// PublishedBy lists the only functions allowed to store through the
	// field's memory.
	PublishedBy []string
}

type allowSite struct {
	file      string
	line      int
	analyzers []string
}

// Annotations is one package's extracted annotation index.
type Annotations struct {
	Funcs  map[*types.Func]*FuncAnnot
	Fields map[*types.Var]*FieldAnnot

	allows []allowSite
}

// Allowed reports whether an `//eiffel:allow` comment suppresses the
// named analyzer at pos (same line or the line immediately above).
func (a *Annotations) Allowed(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	if len(a.allows) == 0 || !pos.IsValid() {
		return false
	}
	p := fset.Position(pos)
	for _, s := range a.allows {
		if s.file != p.Filename || (s.line != p.Line && s.line != p.Line-1) {
			continue
		}
		for _, name := range s.analyzers {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// parseDirective splits one comment line into an eiffel directive verb and
// its argument list; ok is false for ordinary comments.
func parseDirective(text string) (verb string, args []string, ok bool) {
	text = strings.TrimPrefix(text, "//")
	if !strings.HasPrefix(text, "eiffel:") {
		return "", nil, false
	}
	text = strings.TrimPrefix(text, "eiffel:")
	if i := strings.IndexByte(text, '('); i >= 0 {
		j := strings.IndexByte(text[i:], ')')
		if j < 0 {
			return "", nil, false
		}
		verb = text[:i]
		for _, arg := range strings.Split(text[i+1:i+j], ",") {
			if arg = strings.TrimSpace(arg); arg != "" {
				args = append(args, arg)
			}
		}
		return verb, args, true
	}
	// Bare verb: strip any trailing prose.
	if i := strings.IndexAny(text, " \t"); i >= 0 {
		text = text[:i]
	}
	return text, nil, true
}

func funcAnnotFromDoc(doc *ast.CommentGroup, decl *ast.FuncDecl) *FuncAnnot {
	if doc == nil {
		return nil
	}
	var fa *FuncAnnot
	for _, c := range doc.List {
		verb, args, ok := parseDirective(c.Text)
		if !ok {
			continue
		}
		if fa == nil {
			fa = &FuncAnnot{Decl: decl}
		}
		switch verb {
		case "locked":
			fa.Locked = append(fa.Locked, args...)
		case "acquires":
			fa.Acquires = append(fa.Acquires, args...)
		case "hotpath":
			fa.Hotpath = true
		}
	}
	if fa != nil && len(fa.Locked) == 0 && len(fa.Acquires) == 0 && !fa.Hotpath {
		return nil
	}
	return fa
}

func fieldAnnotFromComments(groups ...*ast.CommentGroup) *FieldAnnot {
	var fa *FieldAnnot
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			verb, args, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			if fa == nil {
				fa = &FieldAnnot{}
			}
			switch verb {
			case "guarded":
				if len(args) == 1 {
					fa.Guarded = args[0]
				}
			case "atomic":
				fa.Atomic = true
			case "publishedBy":
				fa.PublishedBy = append(fa.PublishedBy, args...)
			}
		}
	}
	if fa != nil && fa.Guarded == "" && !fa.Atomic && len(fa.PublishedBy) == 0 {
		return nil
	}
	return fa
}

// ExtractAnnotations builds the annotation index for one typechecked
// package: function annotations from declaration doc comments, field
// annotations from field doc or trailing comments, and every allow site in
// any comment group.
func ExtractAnnotations(fset *token.FileSet, files []*ast.File, info *types.Info) *Annotations {
	a := &Annotations{
		Funcs:  make(map[*types.Func]*FuncAnnot),
		Fields: make(map[*types.Var]*FieldAnnot),
	}
	for _, f := range files {
		// Allow sites come from the raw comment stream so they work on any
		// line, not just documented declarations.
		for _, g := range f.Comments {
			for _, c := range g.List {
				verb, args, ok := parseDirective(c.Text)
				if !ok || verb != "allow" || len(args) == 0 {
					continue
				}
				p := fset.Position(c.Pos())
				a.allows = append(a.allows, allowSite{file: p.Filename, line: p.Line, analyzers: args})
			}
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fa := funcAnnotFromDoc(fn.Doc, fn)
			if fa == nil {
				continue
			}
			if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
				a.Funcs[obj] = fa
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				fa := fieldAnnotFromComments(field.Doc, field.Comment)
				if fa == nil {
					continue
				}
				for _, name := range field.Names {
					if obj, ok := info.Defs[name].(*types.Var); ok {
						a.Fields[obj] = fa
					}
				}
			}
			return true
		})
	}
	return a
}
