// Package analysis is a self-contained, stdlib-only reimplementation of
// the golang.org/x/tools/go/analysis surface this repository needs: typed
// packages in, positioned diagnostics out. It exists because the runtime's
// concurrency and hot-path contracts — release-store publication, atomic
// clock fields, zero-allocation drain paths, locked backend access — lived
// only in doc comments and after-the-fact regression tests; the analyzers
// built on this package (lockcheck, atomicfield, hotpath, publication)
// turn those comments into machine-checked annotations enforced by
// cmd/eiffel-vet on every PR.
//
// The deliberate differences from x/tools are small: passes receive a
// whole-module annotation index instead of serialized facts (the module is
// tiny enough to load source-first), and suppression is explicit — a
// `//eiffel:allow(<analyzer>)` comment on or immediately above a line
// disables that analyzer there, so every intentional exception to a rule
// is visible and greppable at the exception site.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one invariant checker: a name (used in diagnostics and in
// //eiffel:allow suppressions), a doc string, and a Run function applied
// to one package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run reports the package's violations through pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, positioned at the offending syntax.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Package is one loaded, typechecked package plus everything the
// analyzers need: syntax with comments, type info, and the extracted
// annotation index.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Annot *Annotations
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Annot is the package's own annotation index.
	Annot *Annotations
	// DepAnnot returns the annotation index of another module-local
	// package loaded in the same run (nil for stdlib or unloaded paths).
	// This is how cross-package contracts propagate: a hotpath function in
	// internal/qdisc may call an annotated hotpath function in
	// internal/shardq, and lockcheck resolves //eiffel:acquires wrappers
	// across the same boundary.
	DepAnnot func(path string) *Annotations

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// annotFor resolves fn's annotation wherever its package was loaded: the
// current package's index first, then the cross-package index.
func (p *Pass) annotFor(fn *types.Func) *FuncAnnot {
	if fn == nil {
		return nil
	}
	if a := p.Annot.Funcs[fn]; a != nil {
		return a
	}
	if fn.Pkg() == nil || p.DepAnnot == nil {
		return nil
	}
	if dep := p.DepAnnot(fn.Pkg().Path()); dep != nil {
		return dep.Funcs[fn]
	}
	return nil
}

// RunAnalyzers applies each analyzer to pkg and returns the surviving
// diagnostics — findings on lines carrying (or immediately following) an
// `//eiffel:allow(<analyzer>)` comment are dropped — sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, depAnnot func(path string) *Annotations) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Annot:    pkg.Annot,
			DepAnnot: depAnnot,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !pkg.Annot.Allowed(pkg.Fset, d.Pos, d.Analyzer) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pos != kept[j].Pos {
			return kept[i].Pos < kept[j].Pos
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}
