// Package analysistest runs an analyzer over a golden fixture package and
// compares its diagnostics against `// want` comments in the fixture
// source — the same convention as golang.org/x/tools/go/analysis/analysistest,
// reimplemented over this repository's stdlib-only framework.
//
// A fixture line that should be reported carries a trailing comment
//
//	x.count++ // want `plain write of atomic-managed field`
//
// where the backquoted (or double-quoted) text is a regular expression
// matched against the diagnostic message. Several expectations may share a
// line (`// want "re1" "re2"`). Lines with no want comment must produce no
// diagnostic; the test fails on both unexpected and missing findings, with
// positions.
//
// Fixtures live under <analyzer>/testdata/src/<pkg>/ and are loaded with a
// rootless fixture loader: only standard-library imports resolve, which
// keeps every fixture self-contained.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"eiffel/internal/analysis"
)

// Run loads testdata/src/<pkg> relative to dir and checks analyzer a's
// diagnostics against the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	loader := analysis.NewFixtureLoader()
	fixdir := filepath.Join(dir, "testdata", "src", pkg)
	p, err := loader.LoadDir(fixdir, pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixdir, err)
	}
	diags, err := analysis.RunAnalyzers(p, []*analysis.Analyzer{a}, loader.Annotations)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
	}
	check(t, p.Fset, p.Files, diags)
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

// wantRE pulls the quoted regexps out of a want comment: backquoted or
// double-quoted strings after the word "want".
var wantRE = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(text, -1) {
					pat := q[1 : len(q)-1]
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, text: pat})
				}
			}
		}
	}

	var errs []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.met || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.met, matched = true, true
				break
			}
		}
		if !matched {
			errs = append(errs, fmt.Sprintf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message))
		}
	}
	for _, w := range wants {
		if !w.met {
			errs = append(errs, fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.text))
		}
	}
	sort.Strings(errs)
	for _, e := range errs {
		t.Error(e)
	}
}
