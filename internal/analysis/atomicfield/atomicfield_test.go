package atomicfield_test

import (
	"testing"

	"eiffel/internal/analysis/analysistest"
	"eiffel/internal/analysis/atomicfield"
)

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, ".", atomicfield.Analyzer, "a")
}
