// Package atomicfield enforces the runtime's atomic-field contract: a
// struct field that is managed through sync/atomic calls anywhere in the
// package — or explicitly annotated `//eiffel:atomic` — must never be read
// or written with plain loads or stores. Mixing the two is exactly the
// PR-4 treeSched clock race: the consumer advanced a plain int64 clock
// while producers read it on the ring-full fallback path, and only a
// review under -race caught it. This analyzer catches the pattern at
// compile time, with the position of the plain access.
//
// Fields of the atomic.Int64/Uint64/... wrapper types are safe by
// construction (no plain access is expressible) and are not tracked.
//
// The analyzer additionally checks 64-bit alignment for the fields it
// tracks: a uint64/int64 field passed to sync/atomic must be 64-bit
// aligned on 32-bit platforms, so its offset within its struct is computed
// under GOARCH=386 layout and flagged when misaligned (move the field
// first, pad it to an 8-byte boundary, or switch to atomic.Uint64, whose
// alignment the runtime guarantees).
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"eiffel/internal/analysis"
)

// Analyzer is the atomicfield pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "fields managed via sync/atomic (or annotated //eiffel:atomic) must not be accessed with plain loads/stores, and must be 64-bit aligned on 32-bit layouts",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: find every field whose address is taken into a sync/atomic
	// call, remembering the sanctioned &x.f operand nodes, plus every
	// field annotated //eiffel:atomic.
	atomicFields := make(map[*types.Var]token.Pos) // field -> first atomic-use pos (annotation: NoPos)
	sanctioned := make(map[*ast.SelectorExpr]bool) // selector nodes inside &x.f atomic-call args
	wide := make(map[*types.Var]bool)              // fields used with 64-bit atomic ops

	for f, fa := range pass.Annot.Fields {
		if fa.Atomic {
			atomicFields[f] = token.NoPos
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.StaticCallee(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				fv := analysis.FieldOf(pass.Info, sel)
				if fv == nil {
					continue
				}
				if _, seen := atomicFields[fv]; !seen {
					atomicFields[fv] = sel.Pos()
				}
				sanctioned[sel] = true
				if sz := basicSize(fv.Type()); sz == 8 {
					wide[fv] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other selector touching one of those fields is a plain
	// access. Distinguish writes (assignment LHS, ++/--, address-taken for
	// non-atomic use) from reads for the message.
	for _, file := range pass.Files {
		writes := collectWrites(file)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fv := analysis.FieldOf(pass.Info, sel)
			if fv == nil {
				return true
			}
			if _, tracked := atomicFields[fv]; !tracked || sanctioned[sel] {
				return true
			}
			kind := "read"
			if writes[sel] {
				kind = "write"
			}
			pass.Reportf(sel.Pos(),
				"plain %s of atomic-managed field %s (all access must go through sync/atomic; this is the treeSched-clock race class)",
				kind, fv.Name())
			return true
		})
	}

	// Pass 3: 32-bit alignment of 64-bit atomic fields, under 386 layout.
	sizes386 := types.SizesFor("gc", "386")
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[st]
			if !ok {
				return true
			}
			stt, ok := tv.Type.(*types.Struct)
			if !ok {
				return true
			}
			fields := make([]*types.Var, stt.NumFields())
			for i := range fields {
				fields[i] = stt.Field(i)
			}
			offsets := sizes386.Offsetsof(fields)
			for i, fv := range fields {
				if _, tracked := atomicFields[fv]; !tracked {
					continue
				}
				if !wide[fv] && basicSize(fv.Type()) != 8 {
					continue
				}
				if offsets[i]%8 != 0 {
					pass.Reportf(fv.Pos(),
						"64-bit atomic field %s is at offset %d under 32-bit layout (not 8-aligned): move it first, pad it, or use atomic.%s",
						fv.Name(), offsets[i], wrapperFor(fv.Type()))
				}
			}
			return true
		})
	}
	return nil
}

// collectWrites marks selector nodes used as assignment targets or ++/--.
func collectWrites(file *ast.File) map[*ast.SelectorExpr]bool {
	writes := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			writes[sel] = true
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X) // address escaping to non-atomic use
			}
		}
		return true
	})
	return writes
}

// basicSize returns the size in bytes of a basic integer type, or 0.
func basicSize(t types.Type) int64 {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0
	}
	switch b.Kind() {
	case types.Int64, types.Uint64:
		return 8
	case types.Int32, types.Uint32:
		return 4
	}
	return 0
}

func wrapperFor(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.Int64 {
		return "Int64"
	}
	return "Uint64"
}
