// Package a is the atomicfield golden fixture. The clock struct below is
// the PR-4 treeSched clock race reduced to its skeleton: one goroutine
// advanced a plain int64 field the package elsewhere manages with
// sync/atomic, and only a -race run against the ring-full fallback path
// caught it. The analyzer flags the plain accesses at compile time.
package a

import "sync/atomic"

type clock struct {
	now int64
}

func (c *clock) advance() {
	atomic.AddInt64(&c.now, 1)
}

func (c *clock) goodRead() int64 {
	return atomic.LoadInt64(&c.now)
}

func (c *clock) badRead() int64 {
	return c.now // want `plain read of atomic-managed field now`
}

func (c *clock) badWrite() {
	c.now = 0 // want `plain write of atomic-managed field now`
}

func (c *clock) allowedReset() {
	//eiffel:allow(atomicfield) pre-publication: the clock has no readers yet
	c.now = 0
}

type annotated struct {
	//eiffel:atomic
	flag uint32
}

func set(a *annotated) {
	atomic.StoreUint32(&a.flag, 1)
}

func bump(a *annotated) {
	a.flag++ // want `plain write of atomic-managed field flag`
}

type misaligned struct {
	b     byte
	ticks int64 // want `64-bit atomic field ticks is at offset 4 under 32-bit layout`
}

func tick(m *misaligned) {
	atomic.AddInt64(&m.ticks, 1)
}

type aligned struct {
	ticks int64
	b     byte
}

func tickAligned(m *aligned) {
	atomic.AddInt64(&m.ticks, 1)
}
