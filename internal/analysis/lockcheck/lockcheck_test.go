package lockcheck_test

import (
	"testing"

	"eiffel/internal/analysis/analysistest"
	"eiffel/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, ".", lockcheck.Analyzer, "a")
}
