// Package a is the lockcheck golden fixture: locked callees, guarded
// fields, deferred unlocks, conditional acquisition, and the acquires
// callback pattern, in both conforming and violating forms.
package a

import "sync"

type q struct {
	mu sync.Mutex
	// pending is drained by flushLocked.
	//eiffel:guarded(mu)
	pending []int
}

// flushLocked drains pending.
//
//eiffel:locked(mu)
func (s *q) flushLocked() {
	s.pending = s.pending[:0]
}

// withLocked runs fn under mu, holding the abstract state lock.
//
//eiffel:acquires(state)
func (s *q) withLocked(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn()
}

// advance mutates backend state owned by the state lock.
//
//eiffel:locked(state)
func advance() {}

func (s *q) good() {
	s.mu.Lock()
	s.flushLocked()
	s.pending = append(s.pending, 1)
	s.mu.Unlock()
}

func (s *q) goodDefer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
}

func (s *q) goodCallback() {
	s.withLocked(func() {
		advance()
	})
}

func (s *q) bad() {
	s.flushLocked() // want `call to a\.q\.flushLocked without holding s\.mu`
}

func (s *q) badAfterUnlock() {
	s.mu.Lock()
	s.flushLocked()
	s.mu.Unlock()
	s.pending = nil // want `access to s\.pending without holding s\.mu`
}

func (s *q) badConditional(c bool) {
	if c {
		s.mu.Lock()
	}
	s.flushLocked() // want `call to a\.q\.flushLocked without holding s\.mu`
	if c {
		s.mu.Unlock()
	}
}

func (s *q) goodEarlyReturn(c bool) {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
		return
	}
	s.flushLocked()
	s.mu.Unlock()
}

func (s *q) badMaybeUnlocked(c bool) {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
	}
	s.flushLocked() // want `call to a\.q\.flushLocked without holding s\.mu`
	if !c {
		s.mu.Unlock()
	}
}

func badAbstract() {
	advance() // want `call to advance without holding the state lock`
}

func (s *q) allowedPeek() int {
	//eiffel:allow(lockcheck) snapshot read: callers tolerate a stale length
	return len(s.pending)
}
