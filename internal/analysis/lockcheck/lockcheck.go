// Package lockcheck enforces the runtime's mutex contracts: functions
// annotated `//eiffel:locked(<mutex>)` may only be reached from call sites
// that provably hold that mutex, and struct fields annotated
// `//eiffel:guarded(<mutex>)` must never mix locked and unlocked access.
//
// Lock evidence is lexical, per function body, in source order:
//
//   - an executed `<expr>.Lock()` on a sync.Mutex/RWMutex adds the lock
//     key ExprKey(<expr>) to the held set until a matching `.Unlock()`
//     (a deferred Unlock holds to the end of the body);
//   - a function annotated locked(mu), where mu is a mutex field of its
//     receiver, starts with `<recv>.mu` held — that is its contract;
//   - a function-literal argument to a call of a function annotated
//     `//eiffel:acquires(L)` runs with the abstract lock L held (the
//     shardq.Q.WithShardLocked callback family);
//   - locks acquired inside a conditional are not held after it; locks
//     released inside a conditional are treated as released after it
//     (conservative both ways), except in branches that cannot fall
//     through — `if full { mu.Unlock(); return }` keeps the lock held on
//     the fall-through path.
//
// The model trades flow precision for zero configuration: two textually
// identical expressions in one body are assumed to alias, and calls
// through interfaces or function values are not checked (the race detector
// job covers dynamic dispatch). It is exactly strong enough to machine-
// check the WithShardLocked/flushLocked family this repository relies on.
package lockcheck

import (
	"go/ast"
	"go/types"

	"eiffel/internal/analysis"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "calls to //eiffel:locked functions and accesses to //eiffel:guarded fields must hold the named mutex",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			held := make(map[string]bool)
			c.seedFromAnnotation(fn, held)
			c.block(fn.Body.List, held)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
}

// seedFromAnnotation marks the function's own locked() contract as held on
// entry: receiver-field locks as "<recv>.<mu>", everything else abstract.
func (c *checker) seedFromAnnotation(fn *ast.FuncDecl, held map[string]bool) {
	obj, ok := c.pass.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	fa := c.pass.Annot.Funcs[obj]
	if fa == nil {
		return
	}
	recvName := ""
	if fn.Recv != nil && len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
		recvName = fn.Recv.List[0].Names[0].Name
	}
	st := analysis.RecvStruct(obj)
	for _, lock := range fa.Locked {
		if f := analysis.StructFieldNamed(st, lock); f != nil && recvName != "" {
			held[recvName+"."+lock] = true
		} else {
			held["#"+lock] = true
		}
	}
}

// block walks stmts in order, updating held and checking each expression.
// It returns the set of lock keys the statements released (Unlocked) so
// callers can propagate releases out of nested blocks.
func (c *checker) block(stmts []ast.Stmt, held map[string]bool) map[string]bool {
	released := make(map[string]bool)
	for _, s := range stmts {
		for k := range c.stmt(s, held) {
			released[k] = true
			delete(held, k)
		}
	}
	return released
}

// nested runs a conditionally-executed block on a copy of held: locks it
// acquires do not survive it, locks it releases are released after it.
func (c *checker) nested(stmts []ast.Stmt, held map[string]bool) map[string]bool {
	inner := make(map[string]bool, len(held))
	for k := range held {
		inner[k] = true
	}
	return c.block(stmts, inner)
}

// stmt processes one statement, mutating held for straight-line lock
// operations and returning lock keys released inside it (directly or in
// any nested block).
func (c *checker) stmt(s ast.Stmt, held map[string]bool) map[string]bool {
	released := make(map[string]bool)
	switch s := s.(type) {
	case nil:
		return released
	case *ast.ExprStmt:
		if key, op := c.lockOp(s.X); key != "" {
			c.exprs(s.X, held) // check the receiver expr itself first
			if op == "Lock" || op == "RLock" {
				held[key] = true
			} else {
				released[key] = true
			}
			return released
		}
		c.exprs(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock releases at function end: the lock stays held
		// for the remainder of the body. Any other deferred call is
		// checked under the current held set (approximate, conservative
		// for the Lock-then-defer-Unlock idiom this repo uses).
		if key, op := c.lockOp(s.Call); key != "" && (op == "Unlock" || op == "RUnlock") {
			return released
		}
		c.exprs(s.Call, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.exprs(e, held)
		}
		for _, e := range s.Lhs {
			c.exprs(e, held)
		}
	case *ast.GoStmt:
		// The goroutine runs on its own schedule: no inherited locks.
		c.exprs(s.Call, make(map[string]bool))
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.exprs(e, held)
		}
	case *ast.IfStmt:
		c.stmt(s.Init, held)
		c.exprs(s.Cond, held)
		rel := c.nested(s.Body.List, held)
		// A branch that cannot fall through (return/break/panic) does not
		// leak its releases to the code after the conditional — that is the
		// `if full { mu.Unlock(); return }` early-exit idiom.
		if !terminates(s.Body.List) {
			for k := range rel {
				released[k] = true
			}
		}
		if s.Else != nil {
			rel := c.nested([]ast.Stmt{s.Else}, held)
			if !terminates([]ast.Stmt{s.Else}) {
				for k := range rel {
					released[k] = true
				}
			}
		}
	case *ast.ForStmt:
		c.stmt(s.Init, held)
		if s.Cond != nil {
			c.exprs(s.Cond, held)
		}
		body := s.Body.List
		if s.Post != nil {
			body = append(body[:len(body):len(body)], s.Post)
		}
		for k := range c.nested(body, held) {
			released[k] = true
		}
	case *ast.RangeStmt:
		c.exprs(s.X, held)
		for k := range c.nested(s.Body.List, held) {
			released[k] = true
		}
	case *ast.BlockStmt:
		for k := range c.block(s.List, held) {
			released[k] = true
		}
	case *ast.SwitchStmt:
		c.stmt(s.Init, held)
		if s.Tag != nil {
			c.exprs(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					c.exprs(e, held)
				}
				rel := c.nested(cl.Body, held)
				if !terminates(cl.Body) {
					for k := range rel {
						released[k] = true
					}
				}
			}
		}
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, held)
		c.stmt(s.Assign, held)
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for k := range c.nested(cl.Body, held) {
					released[k] = true
				}
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				c.stmt(cl.Comm, held)
				for k := range c.nested(cl.Body, held) {
					released[k] = true
				}
			}
		}
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, held)
	case *ast.IncDecStmt:
		c.exprs(s.X, held)
	case *ast.SendStmt:
		c.exprs(s.Chan, held)
		c.exprs(s.Value, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.exprs(e, held)
					}
				}
			}
		}
	}
	return released
}

// terminates reports whether control cannot fall off the end of stmts:
// the last statement is a return, a break/continue/goto, or a panic call.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(last.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

// lockOp recognizes `<expr>.Lock/Unlock/RLock/RUnlock()` on a mutex and
// returns the lock key and operation name.
func (c *checker) lockOp(e ast.Expr) (key, op string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	if tv, ok := c.pass.Info.Types[sel.X]; !ok || !analysis.IsMutexType(tv.Type) {
		return "", ""
	}
	if key = analysis.ExprKey(sel.X); key == "" {
		return "", ""
	}
	return key, sel.Sel.Name
}

// exprs checks every call and guarded-field access inside e under held.
func (c *checker) exprs(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Function literals run under the locks their eventual caller
			// holds. Two cases are modeled: a literal passed directly to an
			// //eiffel:acquires(L) function runs with L held plus the
			// current lexical set (the callback is invoked synchronously
			// under the wrapper's lock); any other literal inherits only
			// the current set (it may run later, but a lock held here and
			// still required there is the common same-goroutine case —
			// escapes are the race job's problem).
			inner := make(map[string]bool, len(held))
			for k := range held {
				inner[k] = true
			}
			if names := c.acquiredBy(e, n); len(names) > 0 {
				for _, l := range names {
					inner["#"+l] = true
				}
			}
			c.block(n.Body.List, inner)
			return false
		case *ast.CallExpr:
			c.checkCall(n, held)
		case *ast.SelectorExpr:
			c.checkFieldAccess(n, held)
		}
		return true
	})
}

// acquiredBy returns the abstract locks held around lit if lit is a direct
// argument of a call (within e) to an //eiffel:acquires function.
func (c *checker) acquiredBy(root ast.Expr, lit *ast.FuncLit) []string {
	var acquired []string
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if ast.Unparen(arg) != lit {
				continue
			}
			fn := analysis.StaticCallee(c.pass.Info, call)
			if fn == nil {
				continue
			}
			if fa := c.annotFor(fn); fa != nil {
				acquired = append(acquired, fa.Acquires...)
			}
		}
		return true
	})
	return acquired
}

func (c *checker) annotFor(fn *types.Func) *analysis.FuncAnnot {
	if fa := c.pass.Annot.Funcs[fn]; fa != nil {
		return fa
	}
	if fn.Pkg() != nil && c.pass.DepAnnot != nil {
		if dep := c.pass.DepAnnot(fn.Pkg().Path()); dep != nil {
			return dep.Funcs[fn]
		}
	}
	return nil
}

// checkCall verifies a call against its callee's locked() contract.
func (c *checker) checkCall(call *ast.CallExpr, held map[string]bool) {
	fn := analysis.StaticCallee(c.pass.Info, call)
	if fn == nil {
		return
	}
	fa := c.annotFor(fn)
	if fa == nil || len(fa.Locked) == 0 {
		return
	}
	st := analysis.RecvStruct(fn)
	for _, lock := range fa.Locked {
		if analysis.StructFieldNamed(st, lock) != nil {
			// Receiver-field lock: the call must spell the receiver, and
			// <that expr>.<lock> must be held.
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			base := analysis.ExprKey(sel.X)
			if base == "" {
				c.pass.Reportf(call.Pos(),
					"call to %s requires %s.%s held, but the receiver expression is not trackable",
					analysis.FuncDisplayName(fn), "<recv>", lock)
				continue
			}
			if !held[base+"."+lock] {
				c.pass.Reportf(call.Pos(),
					"call to %s without holding %s.%s",
					analysis.FuncDisplayName(fn), base, lock)
			}
		} else if !held["#"+lock] {
			c.pass.Reportf(call.Pos(),
				"call to %s without holding the %s lock (annotate the caller //eiffel:locked(%s) or call it under an //eiffel:acquires(%s) wrapper)",
				analysis.FuncDisplayName(fn), lock, lock, lock)
		}
	}
}

// checkFieldAccess verifies a guarded-field selector against held.
func (c *checker) checkFieldAccess(sel *ast.SelectorExpr, held map[string]bool) {
	f := analysis.FieldOf(c.pass.Info, sel)
	if f == nil {
		return
	}
	fa := c.fieldAnnot(f)
	if fa == nil || fa.Guarded == "" {
		return
	}
	base := analysis.ExprKey(sel.X)
	if base == "" {
		c.pass.Reportf(sel.Pos(),
			"access to guarded field %s through an untrackable expression (requires .%s held)",
			f.Name(), fa.Guarded)
		return
	}
	if !held[base+"."+fa.Guarded] {
		c.pass.Reportf(sel.Pos(),
			"access to %s.%s without holding %s.%s",
			base, f.Name(), base, fa.Guarded)
	}
}

func (c *checker) fieldAnnot(f *types.Var) *analysis.FieldAnnot {
	if fa := c.pass.Annot.Fields[f]; fa != nil {
		return fa
	}
	if f.Pkg() != nil && c.pass.DepAnnot != nil {
		if dep := c.pass.DepAnnot(f.Pkg().Path()); dep != nil {
			return dep.Fields[f]
		}
	}
	return nil
}
