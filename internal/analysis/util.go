package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// StaticCallee resolves the *types.Func a call statically dispatches to,
// or nil for dynamic calls: function values, interface methods, builtins,
// and type conversions. Interface-method calls are deliberately nil — the
// static analyzers cannot see through dynamic dispatch, and each analyzer
// documents how its runtime gate covers that blind spot.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil
		}
	}
	return fn
}

// FieldOf resolves the struct-field object a selector expression reads or
// writes, or nil when the selector is not a field access.
func FieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	// Qualified references (pkg.Var) have no Selection entry.
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// ExprKey renders an expression as a canonical lock-identity string:
// identifiers, field selections, and index expressions print structurally
// ("s.mu", "q.shards[i].mu"); anything else returns "" (not trackable).
// Two textually identical keys in one function body are assumed to alias —
// the lexical approximation lockcheck's doc describes.
func ExprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := ExprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.IndexExpr:
		base := ExprKey(e.X)
		if base == "" {
			return ""
		}
		idx := ExprKey(e.Index)
		if idx == "" {
			idx = "?"
		}
		return base + "[" + idx + "]"
	case *ast.StarExpr:
		return ExprKey(e.X)
	case *ast.UnaryExpr:
		return ExprKey(e.X)
	}
	return ""
}

// IsMutexType reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func IsMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// RecvStruct returns the struct type underlying fn's receiver (through one
// pointer), or nil for plain functions and non-struct receivers.
func RecvStruct(fn *types.Func) *types.Struct {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	return st
}

// StructFieldNamed returns st's field with the given name, or nil.
func StructFieldNamed(st *types.Struct, name string) *types.Var {
	if st == nil {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return st.Field(i)
		}
	}
	return nil
}

// FuncDisplayName renders fn as "(recv).name" or "name" for diagnostics.
func FuncDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		name := t.String()
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		return name + "." + fn.Name()
	}
	return fn.Name()
}

// IsModuleLocal reports whether pkg belongs to the module being analyzed
// (the module path itself or any package below it).
func IsModuleLocal(pkg *types.Package, modulePath string) bool {
	if pkg == nil || modulePath == "" {
		return false
	}
	return pkg.Path() == modulePath || strings.HasPrefix(pkg.Path(), modulePath+"/")
}
