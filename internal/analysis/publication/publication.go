// Package publication enforces the ring-buffer publication protocol: a
// field annotated `//eiffel:publishedBy(f, g)` names slot memory whose
// plain stores are only correct inside the listed publish helpers, where
// the subsequent atomic sequence-number store orders them for consumers
// (release-store publication). A plain store to that memory anywhere else
// is unordered with respect to the seq protocol and is exactly the class
// of bug -race only catches when a consumer happens to observe the torn
// window.
//
// The analyzer tracks stores through the annotated field directly
// (r.entries[i].n = v, including via an enclosing struct: q.ring.entries…)
// and through one level of aliasing — `e := &r.entries[pos&mask]` followed
// by stores through e, the idiom the publish helpers actually use. Deeper
// alias chains are out of scope; keep publish helpers simple enough that
// one level suffices.
//
// Reads are not restricted: consumers read slot memory after an acquire
// load of seq, and the pop/peek paths do so from many functions.
package publication

import (
	"go/ast"
	"go/token"
	"go/types"

	"eiffel/internal/analysis"
)

// Analyzer is the publication pass.
var Analyzer = &analysis.Analyzer{
	Name: "publication",
	Doc:  "plain stores to //eiffel:publishedBy slot memory must stay inside the named publish helpers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Collect the published fields declared in this package.
	published := make(map[*types.Var][]string)
	for f, fa := range pass.Annot.Fields {
		if len(fa.PublishedBy) > 0 {
			published[f] = fa.PublishedBy
		}
	}
	if len(published) == 0 {
		return nil
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			(&checker{pass: pass, fn: fn, published: published}).check()
		}
	}
	return nil
}

type checker struct {
	pass      *analysis.Pass
	fn        *ast.FuncDecl
	published map[*types.Var][]string

	// aliases maps local variables bound to &<published-field>[...] (or an
	// element pointer into it) to the published field they alias.
	aliases map[types.Object]*types.Var
}

func (c *checker) check() {
	c.aliases = make(map[types.Object]*types.Var)
	// First pass: record one-level aliases e := &r.entries[i].
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			fv := c.elementPointerOf(rhs)
			if fv == nil {
				continue
			}
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			if obj := c.pass.Info.Defs[id]; obj != nil {
				c.aliases[obj] = fv
			} else if obj := c.pass.Info.Uses[id]; obj != nil {
				c.aliases[obj] = fv
			}
		}
		return true
	})

	// Second pass: find plain stores into published memory.
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.checkStore(lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			c.checkStore(n.X, n.Pos())
		}
		return true
	})
}

// elementPointerOf reports the published field fv when e has the shape
// &<path>.fv[...]... (an address into the field's backing memory), else nil.
func (c *checker) elementPointerOf(e ast.Expr) *types.Var {
	un, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	return c.publishedBase(un.X)
}

// publishedBase walks an lvalue expression down its base chain and returns
// the published field it stores into, or nil. It resolves one level of
// aliasing through variables recorded in c.aliases.
func (c *checker) publishedBase(e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if fv := analysis.FieldOf(c.pass.Info, x); fv != nil {
				if _, ok := c.published[fv]; ok {
					return fv
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if obj := c.pass.Info.Uses[x]; obj != nil {
				if fv, ok := c.aliases[obj]; ok {
					return fv
				}
			}
			return nil
		default:
			return nil
		}
	}
}

func (c *checker) checkStore(lhs ast.Expr, pos token.Pos) {
	// A bare identifier store (e = ...) rebinds the alias, it does not
	// write slot memory; publishedBase is only consulted for compound
	// lvalues and explicit dereferences.
	switch ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return
	}
	fv := c.publishedBase(lhs)
	if fv == nil {
		return
	}
	if c.inPublisher(fv) {
		return
	}
	c.pass.Reportf(pos,
		"plain store to published slot memory %s outside its publish helpers (%s): unordered with the seq release-store",
		fv.Name(), joinNames(c.published[fv]))
}

// inPublisher reports whether the enclosing function is one of the
// publish helpers named by the field's annotation.
func (c *checker) inPublisher(fv *types.Var) bool {
	for _, name := range c.published[fv] {
		if c.fn.Name.Name == name {
			return true
		}
	}
	return false
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
