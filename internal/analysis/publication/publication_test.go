package publication_test

import (
	"testing"

	"eiffel/internal/analysis/analysistest"
	"eiffel/internal/analysis/publication"
)

func TestPublication(t *testing.T) {
	analysistest.Run(t, ".", publication.Analyzer, "a")
}
