// Package a is the publication golden fixture: a miniature seq-published
// ring whose slot memory may only be stored to inside its publish helpers.
package a

import "sync/atomic"

type entry struct {
	seq uint64
	val uint64
}

type ring struct {
	mask uint64
	// entries is slot memory: plain stores are ordered for consumers by
	// the atomic seq store at the end of the publish helpers only.
	//eiffel:publishedBy(push, pushN)
	entries []entry
}

// push publishes one value.
func (r *ring) push(pos, v uint64) {
	e := &r.entries[pos&r.mask]
	e.val = v
	atomic.StoreUint64(&e.seq, pos+1)
}

// pushN publishes a run of values under one claim.
func (r *ring) pushN(pos uint64, vs []uint64) {
	for i, v := range vs {
		e := &r.entries[(pos+uint64(i))&r.mask]
		e.val = v
		e.seq = pos + uint64(i) + 1
	}
}

func (r *ring) read(pos uint64) uint64 {
	return r.entries[pos&r.mask].val
}

func (r *ring) steal(pos, v uint64) {
	r.entries[pos&r.mask].val = v // want `plain store to published slot memory entries`
}

func (r *ring) stealAliased(pos, v uint64) {
	e := &r.entries[pos&r.mask]
	e.val = v // want `plain store to published slot memory entries`
}

func (r *ring) allowedRecycle(pos uint64) {
	//eiffel:allow(publication) recycle path: slot already consumed, no reader can hold it
	r.entries[pos&r.mask].val = 0
}
