package exp

import (
	"runtime"

	"eiffel/internal/pkt"
	"eiffel/internal/qdisc"
)

// measuredReplay replays packets through q reps times on ONE instance —
// the steady-state methodology of the contention experiments (warm rings
// and buckets after the first lap; the max filters scheduler/GC hiccups) —
// and returns the best Mpps together with the steady-state allocation
// rate: the Mallocs delta per packet over the replays AFTER the first.
// The first replay grows every internal buffer to its steady-state
// capacity, so the figure reports the amortized hot-path rate the alloc
// benchmarks gate, not construction cost. reps must be at least 2 for the
// allocation figure to be meaningful.
func measuredReplay(q qdisc.Qdisc, packets [][]*pkt.Packet, reps int, opt qdisc.ContentionOptions) (mpps, allocsPerOp float64) {
	var ms0, ms1 runtime.MemStats
	var ops uint64
	for rep := 0; rep < reps; rep++ {
		if rep == 1 {
			runtime.ReadMemStats(&ms0)
		}
		r := qdisc.ReplayContentionOpts(q, packets, opt)
		if rep > 0 {
			ops += uint64(r.Packets)
		}
		if m := r.Mpps(); m > mpps {
			mpps = m
		}
	}
	if ops > 0 {
		runtime.ReadMemStats(&ms1)
		allocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(ops)
	}
	return mpps, allocsPerOp
}

// amortization returns the producer-side claim amortization factor of a
// runtime snapshot: how many enqueues each tail CAS carried. 0 when the
// batched path never ran.
func amortization(bulkClaimed, bulkClaims uint64) float64 {
	if bulkClaims == 0 {
		return 0
	}
	return float64(bulkClaimed) / float64(bulkClaims)
}
