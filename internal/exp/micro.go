package exp

import (
	"fmt"
	"math/rand"
	"time"

	"eiffel/internal/bucket"
	"eiffel/internal/ffsq"
	"eiffel/internal/gradq"
	"eiffel/internal/queue"
	"eiffel/internal/stats"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// microKinds are the three §5.2 contenders.
var microKinds = []queue.Kind{queue.KindApprox, queue.KindCFFS, queue.KindBH}

// Figure16 regenerates "effect of number of packets per bucket on queue
// performance" for 5k and 10k buckets: Mpps for Approx, cFFS, BH at 1..8
// packets per bucket.
func Figure16(o Options) *Result {
	res := &Result{ID: "fig16"}
	budget := o.budget()
	for _, buckets := range []int{5000, 10000} {
		t := &stats.Table{
			Title:   fmt.Sprintf("Figure 16 — rate (Mpps) vs packets/bucket, %dk buckets", buckets/1000),
			Headers: []string{"pkts/bucket", "Approx", "cFFS", "BH"},
		}
		for _, ppb := range []int{1, 2, 4, 8} {
			row := []string{fmt.Sprintf("%d", ppb)}
			for _, k := range microKinds {
				mpps := drainRate(mkKind(k, buckets), ppb*buckets, uniformFill(buckets), budget)
				row = append(row, fmt.Sprintf("%.2f", mpps))
			}
			t.AddRow(row...)
		}
		res.Tables = append(res.Tables, t)
	}
	return res
}

// Figure17 regenerates "effect of queue occupancy on performance": Mpps at
// occupancy fractions 0.7..0.99 for 5k and 10k buckets.
func Figure17(o Options) *Result {
	res := &Result{ID: "fig17"}
	budget := o.budget()
	for _, buckets := range []int{5000, 10000} {
		t := &stats.Table{
			Title:   fmt.Sprintf("Figure 17 — rate (Mpps) vs occupancy, %dk buckets", buckets/1000),
			Headers: []string{"occupancy", "BH", "Approx", "cFFS"},
		}
		for _, frac := range []float64{0.7, 0.8, 0.9, 0.99} {
			occupied := int(frac * float64(buckets))
			fill := fractionFill(buckets, frac, o.Seed+int64(buckets))
			row := []string{fmt.Sprintf("%.2f", frac)}
			for _, k := range []queue.Kind{queue.KindBH, queue.KindApprox, queue.KindCFFS} {
				mpps := drainRate(mkKind(k, buckets), occupied, fill, budget)
				row = append(row, fmt.Sprintf("%.2f", mpps))
			}
			t.AddRow(row...)
		}
		res.Tables = append(res.Tables, t)
	}
	return res
}

// Figure18 regenerates "effect of empty buckets on the error of fetching
// the minimum element": average selection error of the instrumented
// approximate queue vs occupancy.
func Figure18(o Options) *Result {
	res := &Result{ID: "fig18"}
	t := &stats.Table{
		Title:   "Figure 18 — approximate queue selection error vs occupancy",
		Headers: []string{"occupancy", "avgErr(5k)", "maxErr(5k)", "avgErr(10k)", "maxErr(10k)"},
	}
	rounds := 20
	if o.Quick {
		rounds = 5
	}
	for _, frac := range []float64{0.7, 0.8, 0.9, 0.99} {
		row := []string{fmt.Sprintf("%.2f", frac)}
		for _, buckets := range []int{5000, 10000} {
			q := gradq.NewApprox(gradq.ApproxOptions{
				NumBuckets:  buckets,
				Granularity: 1,
				Instrument:  true,
			})
			occupied := int(frac * float64(buckets))
			fill := fractionFill(buckets, frac, o.Seed+int64(buckets))
			nodes := make([]*bucket.Node, occupied)
			for i := range nodes {
				nodes[i] = &bucket.Node{}
			}
			for r := 0; r < rounds; r++ {
				for i, n := range nodes {
					q.Enqueue(n, fill(i))
				}
				for q.DequeueMin() != nil {
				}
			}
			s := q.Stats()
			row = append(row, fmt.Sprintf("%.2f", s.AvgSelectionError),
				fmt.Sprintf("%d", s.MaxSelectionError))
		}
		t.AddRow(row...)
	}
	res.Tables = append(res.Tables, t)
	return res
}

// AblationHierVsFlat compares the hierarchical FFS index against the flat
// sequential-word scan across bucket counts — the §3.1.1 motivation for
// the hierarchy.
func AblationHierVsFlat(o Options) *Result {
	res := &Result{ID: "ablation-hier-vs-flat"}
	t := &stats.Table{
		Title:   "Ablation — hierarchical vs flat FFS index (Mpps, sparse occupancy)",
		Headers: []string{"buckets", "FFS-hier", "FFS-flat"},
	}
	budget := o.budget()
	for _, buckets := range []int{1 << 10, 1 << 14, 1 << 17} {
		// Sparse occupancy maximizes the flat scan's word-walking cost.
		occupied := buckets / 64
		if occupied < 1 {
			occupied = 1
		}
		fill := fractionFill(buckets, float64(occupied)/float64(buckets), o.Seed)
		h := drainRate(mkKind(queue.KindFFS, buckets), occupied, fill, budget)
		f := drainRate(mkKind(queue.KindFFSFlat, buckets), occupied, fill, budget)
		t.AddRow(fmt.Sprintf("%d", buckets), fmt.Sprintf("%.2f", h), fmt.Sprintf("%.2f", f))
	}
	res.Tables = append(res.Tables, t)
	return res
}

// AblationRedistribution measures the cFFS overflow-redistribution choice:
// ordering fidelity and throughput with and without it under ranks that
// frequently exceed the window.
func AblationRedistribution(o Options) *Result {
	res := &Result{ID: "ablation-redistribute"}
	t := &stats.Table{
		Title:   "Ablation — cFFS overflow redistribution (far-jumping ranks)",
		Headers: []string{"variant", "Mpps", "out-of-order frac"},
	}
	budget := o.budget()
	for _, redis := range []bool{true, false} {
		mk := func() microQueue {
			return ffsq.NewCFFS(ffsq.CFFSOptions{
				NumBuckets:     256,
				Granularity:    1,
				NoRedistribute: !redis,
			})
		}
		// Ranks spanning 8x the window force constant overflow.
		rng := newRng(o.Seed)
		ranks := func(i int) uint64 { return uint64(rng.Intn(8 * 512)) }
		mpps := drainRate(mk, 4096, ranks, budget)

		// Ordering fidelity on a fixed batch.
		q := mk()
		nodes := make([]*bucket.Node, 4096)
		rng2 := newRng(o.Seed)
		for i := range nodes {
			nodes[i] = &bucket.Node{}
			q.Enqueue(nodes[i], uint64(rng2.Intn(8*512)))
		}
		inversions, total := 0, 0
		last := uint64(0)
		for {
			n := q.DequeueMin()
			if n == nil {
				break
			}
			if n.Rank() < last {
				inversions++
			}
			last = n.Rank()
			total++
		}
		name := "with redistribution"
		if !redis {
			name = "without (paper base)"
		}
		t.AddRow(name, fmt.Sprintf("%.2f", mpps), fmt.Sprintf("%.4f", float64(inversions)/float64(total)))
	}
	res.Tables = append(res.Tables, t)
	return res
}

// AblationAlpha sweeps the approximate queue's alpha: estimate cost vs
// selection error (the accuracy/efficiency dial of §3.1.2).
func AblationAlpha(o Options) *Result {
	res := &Result{ID: "ablation-alpha"}
	t := &stats.Table{
		Title:   "Ablation — approximate queue alpha sweep (10k buckets, 0.9 occupancy)",
		Headers: []string{"alpha", "Mpps", "avg sel err", "search steps/lookup"},
	}
	const buckets = 10000
	budget := o.budget()
	fill := fractionFill(buckets, 0.9, o.Seed)
	occupied := int(0.9 * buckets)
	for _, alpha := range []float64{12, 16, 24, 48} {
		mk := func() microQueue {
			return gradq.NewApprox(gradq.ApproxOptions{NumBuckets: buckets, Granularity: 1, Alpha: alpha})
		}
		mpps := drainRate(mk, occupied, fill, budget)

		q := gradq.NewApprox(gradq.ApproxOptions{NumBuckets: buckets, Granularity: 1, Alpha: alpha, Instrument: true})
		nodes := make([]*bucket.Node, occupied)
		for i := range nodes {
			nodes[i] = &bucket.Node{}
			q.Enqueue(nodes[i], fill(i))
		}
		for q.DequeueMin() != nil {
		}
		s := q.Stats()
		t.AddRow(fmt.Sprintf("%.0f", alpha), fmt.Sprintf("%.2f", mpps),
			fmt.Sprintf("%.2f", s.AvgSelectionError),
			fmt.Sprintf("%.2f", float64(s.SearchSteps)/float64(s.Lookups)))
	}
	res.Tables = append(res.Tables, t)
	return res
}

// AblationComparisonQueues contrasts every backend on one uniform
// workload, grounding the "bucketed queues are ~6x faster" §5.2 aside.
func AblationComparisonQueues(o Options) *Result {
	res := &Result{ID: "ablation-backends"}
	t := &stats.Table{
		Title:   "Ablation — all queue backends, 10k buckets, 2 pkts/bucket (Mpps)",
		Headers: []string{"backend", "Mpps"},
	}
	budget := o.budget()
	const buckets = 10000
	kinds := []queue.Kind{
		queue.KindCFFS, queue.KindFFS, queue.KindApprox, queue.KindCApprox,
		queue.KindBH, queue.KindBinaryHeap, queue.KindPairingHeap, queue.KindRBTree,
	}
	for _, k := range kinds {
		mpps := drainRate(mkKind(k, buckets), 2*buckets, uniformFill(buckets), budget)
		t.AddRow(k.String(), fmt.Sprintf("%.2f", mpps))
	}
	res.Tables = append(res.Tables, t)
	return res
}

var _ = time.Second
