package exp

import (
	"fmt"
	"math"
	"runtime"

	"eiffel/internal/hclock"
	"eiffel/internal/pkt"
	"eiffel/internal/qdisc"
	"eiffel/internal/shardq"
	"eiffel/internal/stats"
)

// HierSched is the hierarchical-QoS scaling experiment: the same hClock
// tenant tree running once as a single locked whole-tree engine (the
// kernel-style deployment) and once shard-confined on the multi-producer
// runtime (qdisc.HierSharded, one engine per shard with per-shard rate
// renormalization). The sweep crosses tag-index backends with
// deployments; each row reports contention throughput (8 producers vs
// one consumer), flow-local order violations after a concurrent replay
// (must be zero — in-tenant order is position-independent per flow, so
// sharding cannot reorder a flow), reservation violations under a paced
// overload (a due reservation starved past a bounded service window),
// the cross-shard share error against the ideal 0.75 weighted split, and
// the steady-state allocation rate.
func HierSched(o Options) *Result {
	res := &Result{ID: "hiersched"}
	const producers = 8
	const flowsPer = 256
	perProducer := 20000
	if o.Quick {
		perProducer = 4000
		res.Notes = append(res.Notes, "quick mode: 4000 packets per producer instead of 20000")
	}
	const producerBatch = 256

	// The measured tree: two weighted tenants at 3:1 (PolicyPackets
	// alternates Class 0/1, so the workload splits across exactly these
	// two), matching the policysched gold-share methodology — ideal
	// Class-0 share 0.750 after serving half the backlog.
	shareSpec := shardq.HierSpec{
		Tenants: []shardq.HierTenant{{Weight: 3}, {Weight: 1}},
	}

	type entry struct {
		backend hclock.Backend
		name    string
		sharded bool
		groups  int
		opt     qdisc.ContentionOptions
	}
	entries := []entry{
		// Full deployment sweep on the Eiffel FFS backend…
		{hclock.BackendEiffel, "tree+lock", false, 1, qdisc.ContentionOptions{}},
		{hclock.BackendEiffel, "hier-shards", true, 1, qdisc.ContentionOptions{}},
		{hclock.BackendEiffel, "hier-shards (batched)", true, 1, qdisc.ContentionOptions{ProducerBatch: producerBatch}},
		{hclock.BackendEiffel, "hier-shards (2 groups)", true, 2, qdisc.ContentionOptions{ProducerBatch: producerBatch}},
		// …and locked-vs-sharded for the alternative tag indexes.
		{hclock.BackendHeap, "tree+lock", false, 1, qdisc.ContentionOptions{}},
		{hclock.BackendHeap, "hier-shards", true, 1, qdisc.ContentionOptions{}},
		{hclock.BackendApprox, "tree+lock", false, 1, qdisc.ContentionOptions{}},
		{hclock.BackendApprox, "hier-shards", true, 1, qdisc.ContentionOptions{}},
	}

	mk := func(spec shardq.HierSpec, e entry) qdisc.Qdisc {
		spec.Backend = e.backend
		if e.sharded {
			q, err := qdisc.NewHierSharded(qdisc.HierShardedOptions{
				Spec: spec, Shards: 8, Groups: e.groups, RingBits: 15,
			})
			if err != nil {
				panic("exp: " + err.Error())
			}
			return q
		}
		q, err := qdisc.NewHierTree(spec)
		if err != nil {
			panic("exp: " + err.Error())
		}
		return qdisc.NewLocked(q)
	}

	t := &stats.Table{
		Title:   "Hierarchical QoS — 8 producers through shard-confined hClock trees",
		Headers: []string{"backend", "qdisc", "packets", "Mpps", "vs lock", "misorders", "res-viol", "share-err", "allocs/op"},
	}
	payload := &HierSchedJSON{
		Experiment: "hiersched", Quick: o.Quick, GoMaxProcs: runtime.GOMAXPROCS(0),
		Producers: producers, PerProducer: perProducer, FlowsPerProducer: flowsPer,
		ProducerBatch: producerBatch, Shards: 8,
	}
	// One workload shared by every pass (packets come back detached), as
	// in policysched.
	packets := qdisc.PolicyPackets(producers, perProducer, flowsPer)
	lockedMpps := map[hclock.Backend]float64{}
	for _, e := range entries {
		q := mk(shareSpec, e)
		mpps, allocs := measuredReplay(q, packets, 3, e.opt)
		if !e.sharded {
			lockedMpps[e.backend] = mpps
		}

		// Fidelity pass on a fresh instance: per-flow order must survive
		// concurrency, batching, and the cross-shard merge.
		fq := mk(shareSpec, e)
		released, misorders := qdisc.ReplayFlowFidelity(fq, packets, e.opt)
		if released != producers*perProducer {
			res.Notes = append(res.Notes,
				fmt.Sprintf("%s/%s: fidelity drain released %d of %d",
					e.backend, e.name, released, producers*perProducer))
		}

		shareErr := math.Abs(measureHierShare(mk(shareSpec, e), packets) - 0.75)
		resViol := measureReservationViolations(func(spec shardq.HierSpec) qdisc.Qdisc {
			return mk(spec, e)
		})

		t.AddRow(e.backend.String(), e.name,
			fmt.Sprintf("%d", producers*perProducer),
			fmt.Sprintf("%.2f", mpps),
			fmt.Sprintf("%.2fx", mpps/lockedMpps[e.backend]),
			fmt.Sprintf("%d", misorders),
			fmt.Sprintf("%d", resViol),
			fmt.Sprintf("%.3f", shareErr),
			fmt.Sprintf("%.3f", allocs))
		payload.Rows = append(payload.Rows, HierSchedRowJSON{
			Backend:     e.backend.String(),
			Qdisc:       e.name,
			Groups:      e.groups,
			Batched:     e.opt.ProducerBatch > 1,
			Packets:     producers * perProducer,
			Mpps:        mpps,
			VsLock:      mpps / lockedMpps[e.backend],
			AllocsPerOp: allocs,
			Misorders:   misorders,
			ResViol:     resViol,
			ShareErr:    shareErr,
		})
	}
	res.Tables = append(res.Tables, t)
	res.JSON = payload
	if runtime.GOMAXPROCS(0) == 1 {
		res.Notes = append(res.Notes,
			"GOMAXPROCS=1: the 8 producers serialize with the consumer, so the sharded rows cannot express parallel admission and the vs-lock column measures per-packet overhead only; the >=2x scaling target needs multiple cores")
	}
	res.Notes = append(res.Notes,
		"misorders: packets released out of their flow's enqueue order (flow-local exactness requires 0)",
		"res-viol: due reservations starved past a 256-packet service window under paced overload (must be 0)",
		"share-err: |Class-0 share - 0.750| after serving half the backlog (cross-shard fairness error, bound 0.10)")
	return res
}

// HierSchedJSON is the hiersched experiment's machine-readable payload
// (cmd/eiffel-bench -json writes it to BENCH_hiersched.json).
type HierSchedJSON struct {
	Experiment       string             `json:"experiment"`
	Quick            bool               `json:"quick"`
	GoMaxProcs       int                `json:"gomaxprocs"`
	Producers        int                `json:"producers"`
	PerProducer      int                `json:"per_producer"`
	FlowsPerProducer int                `json:"flows_per_producer"`
	ProducerBatch    int                `json:"producer_batch"`
	Shards           int                `json:"shards"`
	Rows             []HierSchedRowJSON `json:"rows"`
}

// HierSchedRowJSON is one backend × deployment observed outcome.
type HierSchedRowJSON struct {
	Backend     string  `json:"backend"`
	Qdisc       string  `json:"qdisc"`
	Groups      int     `json:"groups"`
	Batched     bool    `json:"batched"`
	Packets     int     `json:"packets"`
	Mpps        float64 `json:"mpps"`
	VsLock      float64 `json:"vs_lock"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Misorders   int     `json:"misorders"`
	ResViol     int     `json:"reservation_violations"`
	ShareErr    float64 `json:"share_error"`
}

// groupedQdisc is the multi-worker drain surface of the sharded fronts.
type groupedQdisc interface {
	NumGroups() int
	GroupDequeueBatch(g int, now int64, out []*pkt.Packet) int
}

// hierDrain returns a serve function for the deployment's intended drain
// topology: single-group (and locked) qdiscs serve through Dequeue;
// multi-group qdiscs serve through per-group workers, emulated on one
// thread by alternating small GroupDequeueBatch pulls. (The raw
// single-consumer surface drains group 0 to exhaustion before group 1 —
// a drain order, not a schedule — so measuring fairness through it would
// report each group's composition instead of the weighted service.)
func hierDrain(q qdisc.Qdisc) func(now int64) *pkt.Packet {
	g, ok := q.(groupedQdisc)
	if !ok || g.NumGroups() == 1 {
		return func(now int64) *pkt.Packet { return q.Dequeue(now) }
	}
	n := g.NumGroups()
	buf := make([]*pkt.Packet, 8)
	have, next, cur := 0, 0, 0
	return func(now int64) *pkt.Packet {
		for tries := 0; next >= have && tries < n; tries++ {
			cur = (cur + 1) % n
			next = 0
			have = g.GroupDequeueBatch(cur, now, buf)
		}
		if next >= have {
			return nil
		}
		p := buf[next]
		next++
		return p
	}
}

// measureHierShare is measureGoldShare through the deployment's drain
// topology: the Class-0 share of service after serving half a two-tenant
// backlog (both classes stay backlogged throughout the measured half).
func measureHierShare(q qdisc.Qdisc, packets [][]*pkt.Packet) float64 {
	total := 0
	for _, set := range packets {
		for _, p := range set {
			q.Enqueue(p, 0)
		}
		total += len(set)
	}
	serve := hierDrain(q)
	gold, served := 0, 0
	for served < total/2 {
		p := serve(int64(2e9))
		if p == nil {
			break
		}
		if p.Class == 0 {
			gold++
		}
		served++
	}
	for serve(int64(2e9)) != nil {
	}
	if served == 0 {
		return 0
	}
	return float64(gold) / float64(served)
}

// measureReservationViolations builds the overload tree — two weight-16
// tenants against a 20% and a 10% reservation holder — saturates every
// tenant, and drains at a paced 1 Gbps through the deployment's drain
// topology. It returns how many times a reservation tenant's
// inter-service gap exceeded the 256-packet window (the
// bounded-starvation contract the cross-shard merge must preserve: a due
// reservation pulls its shard's merge rank to 0, and a reservation-due
// crossing forces a head re-peek).
func measureReservationViolations(mk func(shardq.HierSpec) qdisc.Qdisc) int {
	spec := shardq.HierSpec{
		Tenants: []shardq.HierTenant{
			{Weight: 16},
			{Weight: 16},
			{ResBps: 200e6, Weight: 1},
			{ResBps: 100e6, Weight: 1},
		},
	}
	q := mk(spec)
	const flows, per = 64, 250
	pool := pkt.NewPool(flows * per)
	for i := 0; i < flows*per; i++ {
		p := pool.Get()
		f := uint64(i % flows)
		p.Flow = f
		p.Size = 1500
		p.Class = int32(f % 4)
		q.Enqueue(p, 0)
	}
	const total = flows * per
	serve := hierDrain(q)
	lastServed := map[int]int{2: 0, 3: 0}
	violations := 0
	now := int64(0)
	for i := 0; i < total; i++ {
		p := serve(now)
		if p == nil {
			// A paced drain of a work-conserving tree never stalls; count
			// it as a violation and bail rather than spin.
			return violations + 1
		}
		if tn := int(p.Class); tn >= 2 {
			if i-lastServed[tn] > 256 {
				violations++
			}
			lastServed[tn] = i
		}
		now += 12_000 // 1500B at 1 Gbps
	}
	return violations
}
