package exp

import (
	"fmt"
	"time"

	"eiffel/internal/bess"
	"eiffel/internal/hclock"
	"eiffel/internal/pifo"
	"eiffel/internal/pkt"
	"eiffel/internal/policy"
	"eiffel/internal/qdisc"
	"eiffel/internal/queue"
	"eiffel/internal/stats"
)

// Figure9 regenerates the kernel shaping CDF: cores used for networking
// under FQ/pacing, Carousel, and Eiffel. The paper ran 20k flows at
// 24 Gbps for 100 s on EC2; by default this runner scales to 2k flows at
// 2.4 Gbps (same per-flow pacing rate, so identical per-packet work) and
// reports median cores alongside CDF quartiles.
func Figure9(o Options) *Result {
	res := &Result{ID: "fig9"}
	cfg := qdisc.HostConfig{Flows: 2000, AggregateBps: 2_400_000_000, SimSeconds: 5}
	if o.Quick {
		cfg = qdisc.HostConfig{Flows: 400, AggregateBps: 480_000_000, SimSeconds: 2}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("scaled from the paper's 20k flows / 24 Gbps to %d flows / %.1f Gbps (identical per-flow pacing rate)",
			cfg.Flows, float64(cfg.AggregateBps)/1e9))

	t := &stats.Table{
		Title:   "Figure 9 — cores used for networking (CDF quartiles over per-second samples)",
		Headers: []string{"qdisc", "p25", "median", "p75", "p95", "on-time", "pkts"},
	}
	type row struct {
		q qdisc.Qdisc
	}
	qs := []qdisc.Qdisc{
		qdisc.NewFQ(),
		qdisc.NewCarousel(20000, 2e9, 0),
		qdisc.NewEiffel(20000, 2e9, 0),
	}
	var medians []float64
	for _, q := range qs {
		r := qdisc.RunHost(q, cfg)
		med := stats.Percentile(r.CoresSamples, 50)
		medians = append(medians, med)
		t.AddRow(r.Qdisc,
			fmt.Sprintf("%.4f", stats.Percentile(r.CoresSamples, 25)),
			fmt.Sprintf("%.4f", med),
			fmt.Sprintf("%.4f", stats.Percentile(r.CoresSamples, 75)),
			fmt.Sprintf("%.4f", stats.Percentile(r.CoresSamples, 95)),
			fmt.Sprintf("%.3f", r.OnTimeFrac),
			fmt.Sprintf("%d", r.Packets))
	}
	if medians[2] > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"median cores ratio vs Eiffel: FQ %.1fx, Carousel %.1fx (paper: ~14x and ~3x)",
			medians[0]/medians[2], medians[1]/medians[2]))
	}
	res.Tables = append(res.Tables, t)
	return res
}

// Figure10 regenerates the CPU breakdown: system (enqueue-path) vs softirq
// (timer/dequeue-path) cores for Carousel vs Eiffel.
func Figure10(o Options) *Result {
	res := &Result{ID: "fig10"}
	cfg := qdisc.HostConfig{Flows: 2000, AggregateBps: 2_400_000_000, SimSeconds: 5}
	if o.Quick {
		cfg = qdisc.HostConfig{Flows: 400, AggregateBps: 480_000_000, SimSeconds: 2}
	}
	t := &stats.Table{
		Title:   "Figure 10 — CPU split (median cores): system vs softirq/timers",
		Headers: []string{"qdisc", "system", "softirq", "timer fires"},
	}
	for _, q := range []qdisc.Qdisc{
		qdisc.NewCarousel(20000, 2e9, 0),
		qdisc.NewEiffel(20000, 2e9, 0),
	} {
		r := qdisc.RunHost(q, cfg)
		t.AddRow(r.Qdisc,
			fmt.Sprintf("%.4f", stats.Percentile(r.SysSamples, 50)),
			fmt.Sprintf("%.4f", stats.Percentile(r.IRQSamples, 50)),
			fmt.Sprintf("%d", r.TimerFires))
	}
	res.Tables = append(res.Tables, t)
	return res
}

// buildHClockPipeline wires a one-core pipeline for Figure 12/13 points.
func buildHClockPipeline(flows int, pktSize uint32, perFlowBps, aggBps uint64, backend hclock.Backend, batch bool) *bess.Pipeline {
	s := hclock.New(hclock.Config{Backend: backend, AggregateLimitBps: aggBps})
	for i := 1; i <= flows; i++ {
		s.AddFlow(uint64(i), 0, perFlowBps, 1)
	}
	mod := &bess.HClockModule{S: s}
	poolSize := flows*4 + 4096
	if batch {
		// Batch mode keeps up to two 10 KB batches per flow in flight.
		per := 10_000 / int(pktSize)
		if per < 1 {
			per = 1
		}
		poolSize = flows*2*per + 4096
	}
	pool := pkt.NewPool(poolSize)
	src := bess.NewSource(pool, mod, flows, pktSize)
	src.BatchPerFlow = batch
	return &bess.Pipeline{Source: src, Sched: mod, Sink: bess.NewSink(pool)}
}

func buildTCPipeline(flows int, pktSize uint32, perFlowBps, aggBps uint64) *bess.Pipeline {
	// BESS tc has no aggregate-limit primitive: NetIOC-style caps are
	// emulated by dividing the aggregate across the per-flow modules.
	if aggBps > 0 {
		if capped := aggBps / uint64(flows); capped < perFlowBps {
			perFlowBps = capped
		}
	}
	tc := bess.NewTCModule(flows, perFlowBps)
	for i := 1; i <= flows; i++ {
		tc.SetLimit(uint64(i), perFlowBps)
	}
	pool := pkt.NewPool(flows*4 + 4096)
	src := bess.NewSource(pool, tc, flows, pktSize)
	return &bess.Pipeline{Source: src, Sched: tc, Sink: bess.NewSink(pool)}
}

// Figure12 regenerates "maximum supported aggregate rate vs number of
// flows" for Eiffel-hClock, heap-hClock, and BESS tc, at line rate (10G,
// no aggregate limit) and with a 5 Gbps aggregate limit, on one core.
func Figure12(o Options) *Result {
	res := &Result{ID: "fig12"}
	dur := 400 * time.Millisecond
	flowCounts := []int{10, 100, 1000, 10000}
	if o.Quick {
		dur = 60 * time.Millisecond
		flowCounts = []int{10, 100, 1000}
	}
	for _, agg := range []uint64{0, 5_000_000_000} {
		title := "Figure 12 (top) — max aggregate rate (Mbps), no aggregate limit"
		if agg > 0 {
			title = "Figure 12 (bottom) — rate (Mbps) under a 5 Gbps aggregate limit"
		}
		t := &stats.Table{
			Title:   title,
			Headers: []string{"flows", "Eiffel", "hClock", "BESS tc"},
		}
		for _, n := range flowCounts {
			// Per-flow limits oversubscribe the aggregate 2x so the
			// scheduler, not the workload, is the bottleneck.
			perFlow := uint64(20_000_000_000) / uint64(n)
			row := []string{fmt.Sprintf("%d", n)}
			for _, backend := range []hclock.Backend{hclock.BackendEiffel, hclock.BackendHeap} {
				pl := buildHClockPipeline(n, 1500, perFlow, agg, backend, false)
				row = append(row, fmt.Sprintf("%.0f", pl.RunFor(dur).Mbps()))
			}
			pl := buildTCPipeline(n, 1500, perFlow, agg)
			row = append(row, fmt.Sprintf("%.0f", pl.RunFor(dur).Mbps()))
			t.AddRow(row...)
		}
		res.Tables = append(res.Tables, t)
	}
	return res
}

// Figure13 regenerates the batching x packet-size grid at 5k flows.
func Figure13(o Options) *Result {
	res := &Result{ID: "fig13"}
	flows := 5000
	dur := 400 * time.Millisecond
	if o.Quick {
		flows = 1000
		dur = 60 * time.Millisecond
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Figure 13 — batching x packet size, %d flows (Mbps)", flows),
		Headers: []string{"mode", "size", "hClock", "Eiffel"},
	}
	for _, batch := range []bool{false, true} {
		for _, size := range []uint32{60, 1500} {
			mode := "no batching"
			if batch {
				mode = "batching"
			}
			row := []string{mode, fmt.Sprintf("%dB", size)}
			for _, backend := range []hclock.Backend{hclock.BackendHeap, hclock.BackendEiffel} {
				pl := buildHClockPipeline(flows, size, 0, 0, backend, batch)
				row = append(row, fmt.Sprintf("%.0f", pl.RunFor(dur).Mbps()))
			}
			t.AddRow(row...)
		}
	}
	res.Tables = append(res.Tables, t)
	return res
}

// buildPFabricPipeline wires the Figure 15 pipeline: a per-flow-ranking
// leaf under the extended PIFO model, with the queue backend swapped
// between cFFS and a binary heap.
func buildPFabricPipeline(flows int, kind queue.Kind) *bess.Pipeline {
	tr := pifo.NewTree(pifo.TreeOptions{
		RootRanker: policy.WFQ{},
		RootQueue:  queue.Config{NumBuckets: 1 << 10, Granularity: 1},
	})
	leaf := tr.NewFlowLeaf(nil, policy.PFabric{}, pifo.ClassOptions{
		Name:      "pfabric",
		QueueKind: kind,
		Queue:     queue.Config{NumBuckets: 1 << 15, Granularity: 1 << 6},
	})
	mod := bess.NewTreeModule(tr, leaf)
	pool := pkt.NewPool(flows*2 + 8192)
	src := bess.NewSource(pool, mod, flows, 1500)
	src.PerFlowCap = 4 // many flows: keep total backlog bounded
	// pFabric ranks: each flow cycles through a remaining-size countdown,
	// giving realistic shortest-remaining-first dynamics (and giving the
	// binary heap real rank diversity to sort).
	remaining := make([]uint64, flows+1)
	src.Rank = func(flow uint64) uint64 {
		r := remaining[flow]
		if r < 1500 {
			r = uint64(4+(flow*2654435761)%64) * 1500 // 4..67 packets
		}
		remaining[flow] = r - 1500
		return r
	}
	return &bess.Pipeline{Source: src, Sched: mod, Sink: bess.NewSink(pool)}
}

// Figure15 regenerates pFabric throughput vs number of flows for cFFS vs
// binary heap.
func Figure15(o Options) *Result {
	res := &Result{ID: "fig15"}
	flowCounts := []int{100, 1000, 10000, 100000, 1000000}
	dur := 400 * time.Millisecond
	if o.Quick {
		flowCounts = []int{100, 1000, 10000}
		dur = 60 * time.Millisecond
	}
	t := &stats.Table{
		Title:   "Figure 15 — pFabric rate (Mbps) vs flows: Eiffel cFFS vs binary heap",
		Headers: []string{"flows", "pFabric-Eiffel", "pFabric-BinHeap"},
	}
	for _, n := range flowCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, k := range []queue.Kind{queue.KindCFFS, queue.KindBinaryHeap} {
			pl := buildPFabricPipeline(n, k)
			row = append(row, fmt.Sprintf("%.0f", pl.RunFor(dur).Mbps()))
		}
		t.AddRow(row...)
	}
	res.Tables = append(res.Tables, t)
	return res
}

// AblationShaperBackend swaps the Eiffel qdisc's shaper structure:
// cFFS vs circular approximate gradient queue vs timing wheel (Carousel).
func AblationShaperBackend(o Options) *Result {
	res := &Result{ID: "ablation-shaper"}
	cfg := qdisc.HostConfig{Flows: 1000, AggregateBps: 1_200_000_000, SimSeconds: 3}
	if o.Quick {
		cfg = qdisc.HostConfig{Flows: 200, AggregateBps: 240_000_000, SimSeconds: 1}
	}
	t := &stats.Table{
		Title:   "Ablation — shaper backend (median cores, timer fires)",
		Headers: []string{"backend", "median cores", "timer fires", "on-time"},
	}
	for _, q := range []qdisc.Qdisc{
		qdisc.NewEiffel(20000, 2e9, 0),
		qdisc.NewEiffelApprox(20000, 2e9, 0),
		qdisc.NewCarousel(20000, 2e9, 0),
	} {
		r := qdisc.RunHost(q, cfg)
		t.AddRow(r.Qdisc,
			fmt.Sprintf("%.4f", stats.Percentile(r.CoresSamples, 50)),
			fmt.Sprintf("%d", r.TimerFires),
			fmt.Sprintf("%.3f", r.OnTimeFrac))
	}
	res.Tables = append(res.Tables, t)
	return res
}
