package exp

import (
	"fmt"
	"runtime"

	"eiffel/internal/qdisc"
	"eiffel/internal/stats"
)

// ShapedSched is the decoupled shaping + priority scheduling scaling
// experiment (the multi-producer form of Figure 8, not a paper figure):
// every packet carries both a release time spread over the 2 s horizon and
// an uncorrelated priority, and the qdisc must honor both — never release
// early, and release eligible packets in priority order. The baseline is
// the kernel-style deployment (a pifo.Tree behind the decoupled shaper,
// all behind one global lock); the contender is qdisc.ShapedSharded. Each
// row reports contention throughput (8 producers vs one consumer) and the
// priority-order fidelity of a post-publication drain — inversions beyond
// scheduler-bucket granularity must be zero for both.
func ShapedSched(o Options) *Result {
	res := &Result{ID: "shapedsched"}
	const producers = 8
	const rankSpan = uint64(1) << 20
	perProducer := 20000
	if o.Quick {
		perProducer = 4000
		res.Notes = append(res.Notes, "quick mode: 4000 packets per producer instead of 20000")
	}

	geometry := qdisc.ShapedShardedOptions{
		Shards:        8,
		ShaperBuckets: 2500,
		HorizonNs:     2e9,
		SchedBuckets:  256,
		RankSpan:      rankSpan,
		RingBits:      15,
	}
	// The tree baseline gets the aggregate queue capacity of the 8 shards
	// (8×2500 shaper buckets, 8×256 scheduler buckets), so the comparison
	// measures the runtime, not the queue geometry.
	treeGeometry := geometry
	treeGeometry.ShaperBuckets = geometry.Shards * geometry.ShaperBuckets
	treeGeometry.SchedBuckets = geometry.Shards * geometry.SchedBuckets

	// producerBatch is the run length the batched row admits per
	// EnqueueBatch call — the harness's producer-batch-size knob.
	const producerBatch = 256

	entries := []struct {
		name string
		mk   func() qdisc.Qdisc
		opt  qdisc.ContentionOptions
	}{
		{"Eiffel tree+lock", func() qdisc.Qdisc { return qdisc.NewLocked(qdisc.NewShapedTree(treeGeometry)) }, qdisc.ContentionOptions{}},
		{"Eiffel+shaped-shards", func() qdisc.Qdisc { return qdisc.NewShapedSharded(geometry) }, qdisc.ContentionOptions{}},
		{"Eiffel+shaped-shards (batched)", func() qdisc.Qdisc { return qdisc.NewShapedSharded(geometry) },
			qdisc.ContentionOptions{ProducerBatch: producerBatch}},
	}

	gran := rankSpan / (2 * uint64(geometry.SchedBuckets))
	t := &stats.Table{
		Title:   "Shaped+scheduled — 8 producers, per-packet (SendAt, Rank) through a decoupled qdisc",
		Headers: []string{"qdisc", "producers", "packets", "Mpps", "vs lock", "inversions", "allocs/op", "counters"},
	}
	payload := &ShapedSchedJSON{
		Experiment: "shapedsched", Quick: o.Quick, GoMaxProcs: runtime.GOMAXPROCS(0),
		Producers: producers, PerProducer: perProducer, ProducerBatch: producerBatch,
		RankSpan: rankSpan, GranRank: gran,
	}
	// One workload, replayed by every pass: packets come back detached, and
	// sharing the set keeps allocation (and GC scan of dead sets) out of
	// the timed regions — the ContentionPackets contract.
	packets := qdisc.ShapedPackets(producers, perProducer, rankSpan)
	var lockedMpps float64
	for _, e := range entries {
		// Best of three replays on ONE instance: a qdisc is empty after a
		// full replay, so reuse measures the steady state (warm rings and
		// buckets, no per-rep construction garbage feeding the GC), and
		// the max filters scheduler/GC hiccups that would otherwise
		// dominate a single run on small machines. Both rows get the same
		// treatment, so the ratio stays honest.
		q := e.mk()
		mpps, allocs := measuredReplay(q, packets, 3, e.opt)
		if lockedMpps == 0 {
			lockedMpps = mpps
		}

		// Fidelity pass on a fresh instance: publish everything first, then
		// drain, so the output order is fully priority-determined — through
		// the same admission path as the throughput pass, because batching
		// must not cost a single inversion.
		fq := e.mk()
		released, inversions := qdisc.ReplayPriorityFidelityOpts(fq, packets, gran, e.opt)
		if released != producers*perProducer {
			res.Notes = append(res.Notes,
				fmt.Sprintf("%s: fidelity drain released %d of %d", e.name, released, producers*perProducer))
		}

		counters := "-"
		var amort float64
		if s, ok := fq.(*qdisc.ShapedSharded); ok {
			counters = s.Stats().String()
			tsnap := q.(*qdisc.ShapedSharded).Stats()
			amort = amortization(tsnap.BulkClaimed, tsnap.BulkClaims)
		}
		t.AddRow(e.name,
			fmt.Sprintf("%d", producers),
			fmt.Sprintf("%d", producers*perProducer),
			fmt.Sprintf("%.2f", mpps),
			fmt.Sprintf("%.2fx", mpps/lockedMpps),
			fmt.Sprintf("%d", inversions),
			fmt.Sprintf("%.3f", allocs),
			counters)
		payload.Rows = append(payload.Rows, ShapedSchedRowJSON{
			Qdisc:        e.name,
			Batched:      e.opt.ProducerBatch > 1,
			Packets:      producers * perProducer,
			Mpps:         mpps,
			VsLock:       mpps / lockedMpps,
			AllocsPerOp:  allocs,
			Amortization: amort,
			Inversions:   inversions,
		})
	}
	res.Tables = append(res.Tables, t)
	res.JSON = payload
	res.Notes = append(res.Notes,
		"release times spread over the 2 s horizon, priorities uniform over 2^20; consumer drains at now = horizon",
		fmt.Sprintf("inversions counted beyond the scheduler bucket granularity (%d rank units)", gran))
	return res
}

// ShapedSchedJSON is the shapedsched experiment's machine-readable payload
// (cmd/eiffel-bench -json writes it to BENCH_shapedsched.json).
type ShapedSchedJSON struct {
	Experiment    string               `json:"experiment"`
	Quick         bool                 `json:"quick"`
	GoMaxProcs    int                  `json:"gomaxprocs"`
	Producers     int                  `json:"producers"`
	PerProducer   int                  `json:"per_producer"`
	ProducerBatch int                  `json:"producer_batch"`
	RankSpan      uint64               `json:"rank_span"`
	GranRank      uint64               `json:"gran_rank"`
	Rows          []ShapedSchedRowJSON `json:"rows"`
}

// ShapedSchedRowJSON is one shapedsched configuration's observed outcome.
type ShapedSchedRowJSON struct {
	Qdisc        string  `json:"qdisc"`
	Batched      bool    `json:"batched"`
	Packets      int     `json:"packets"`
	Mpps         float64 `json:"mpps"`
	VsLock       float64 `json:"vs_lock"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	Amortization float64 `json:"claim_amortization"`
	Inversions   int     `json:"inversions"`
}
