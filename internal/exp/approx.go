package exp

import (
	"fmt"
	"runtime"
	"time"

	"eiffel/internal/bucket"
	"eiffel/internal/qdisc"
	"eiffel/internal/queue"
	"eiffel/internal/shardq"
	"eiffel/internal/stats"
)

// Approx is the throughput-versus-inversion experiment for the sharded
// runtime's scheduler backends: the exact FFS vector store (vecSched, the
// baseline every ratio is against), the gradient curvature index in both
// its Theorem-1 exact and approximate forms, and the RIFO-style
// fixed-rank-window. Approximation is treated as a first-class measured
// quantity, not a disclaimer: every row reports the realised
// rank-inversion count and magnitude of a full drain against the exact
// oracle replay (running-max accounting, qdisc.InversionStats) next to
// the backend's ANALYTIC worst-case bound, and the experiment flags any
// row whose measurement escapes its bound — the same invariant the
// property tests assert.
//
// Two sweeps:
//
//   - backend: single-threaded fill+drain laps against raw
//     shardq.Scheduler instances, small (cache-resident) and large
//     (cache-hostile) bucket geometries. This isolates the index cost the
//     backends actually differ by; the large geometry is where the
//     fixed-window backend's cache residency pays.
//   - sharded: 8 concurrent producers through qdisc.ShapedSharded with
//     each backend selected via ShapedShardedOptions.SchedBackend — the
//     deployment surface — with claim-amortization and allocation
//     accounting beside the throughput and inversion columns.
func Approx(o Options) *Result {
	res := &Result{ID: "approx"}
	payload := &ApproxJSON{
		Experiment: "approx", Quick: o.Quick, GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	approxBackendSweep(o, res, payload)
	approxShardedSweep(o, res, payload)

	res.JSON = payload
	res.Notes = append(res.Notes,
		"inversions: packets drained below the running-max rank of the drain sequence (exact oracle replay); magnitudes in rank units",
		"bound: analytic worst-case inversion magnitude (VecSchedBound/GradSchedBound/RIFOSchedBound) — a measured max-mag above it is flagged APPROX BOUND EXCEEDED and fails BenchmarkApprox")
	return res
}

// approxBackend is one backend under measurement.
type approxBackend struct {
	name  string
	mk    func(cfg queue.Config) shardq.Scheduler
	bound func(cfg queue.Config) uint64
}

// approxBackends lists the family in table order; vec first, so it seeds
// the vs-exact baseline.
func approxBackends() []approxBackend {
	return []approxBackend{
		{"vec (exact)", shardq.NewVecSched, shardq.VecSchedBound},
		{"grad-exact",
			func(cfg queue.Config) shardq.Scheduler {
				return shardq.NewGradSched(cfg, shardq.GradSchedOptions{Exact: true})
			},
			func(cfg queue.Config) uint64 {
				return shardq.GradSchedBound(cfg, shardq.GradSchedOptions{Exact: true})
			}},
		{"grad",
			func(cfg queue.Config) shardq.Scheduler {
				return shardq.NewGradSched(cfg, shardq.GradSchedOptions{})
			},
			func(cfg queue.Config) uint64 {
				return shardq.GradSchedBound(cfg, shardq.GradSchedOptions{})
			}},
		{"rifo-64",
			func(cfg queue.Config) shardq.Scheduler { return shardq.NewRIFOSched(cfg, 64) },
			func(cfg queue.Config) uint64 { return shardq.RIFOSchedBound(cfg, 64) }},
	}
}

// approxBackendSweep runs the single-threaded fill+drain laps.
func approxBackendSweep(o Options, res *Result, payload *ApproxJSON) {
	elems := 1 << 17
	if o.Quick {
		elems = 1 << 14
		res.Notes = append(res.Notes, "quick mode: 2^14 elements per lap instead of 2^17")
	}
	geometries := []struct {
		name string
		cfg  queue.Config
	}{
		// Small: every backend's working set is cache-resident; the rows
		// isolate pure index arithmetic.
		{"small", queue.Config{NumBuckets: 256, Granularity: 2048}},
		// Large: 2*32768 bucket headers dwarf L2, so the exact backends
		// pay a cache miss per bucket touch while the fixed window stays
		// resident — the geometry the approximate family exists for.
		{"large", queue.Config{NumBuckets: 1 << 15, Granularity: 32}},
	}

	t := &stats.Table{
		Title: "Approximate backends — single-threaded fill+drain laps, uniform random ranks",
		Headers: []string{"geometry", "backend", "elems", "Mpps", "vs exact",
			"inv", "max-mag", "avg-mag", "bound", "allocs/op"},
	}
	nodes := make([]*bucket.Node, elems)
	for i := range nodes {
		nodes[i] = &bucket.Node{}
	}
	ranks := make([]uint64, elems)
	out := make([]*bucket.Node, 1024)
	budget := o.budget()

	for _, geo := range geometries {
		span := 2 * uint64(geo.cfg.NumBuckets) * geo.cfg.Granularity
		rng := newRng(o.Seed)
		for i := range ranks {
			ranks[i] = uint64(rng.Int63n(int64(span)))
		}
		var exactMpps float64
		for _, b := range approxBackends() {
			q := b.mk(geo.cfg)
			bound := b.bound(geo.cfg)

			// Warming lap doubles as the inversion measurement: accounting
			// happens outside the timed region, and the drain order is
			// deterministic per backend, so it is the same order the timed
			// laps replay.
			var st qdisc.InversionStats
			var runMax uint64
			q.EnqueueBatch(nodes, ranks)
			for {
				k := q.DequeueBatch(^uint64(0), out)
				if k == 0 {
					break
				}
				for _, n := range out[:k] {
					st.Note(&runMax, n.Rank())
				}
			}
			if st.Released != elems {
				res.Notes = append(res.Notes, fmt.Sprintf(
					"%s/%s: drain released %d of %d", geo.name, b.name, st.Released, elems))
			}
			if st.MaxMagnitude > bound {
				res.Notes = append(res.Notes, fmt.Sprintf(
					"%s/%s: APPROX BOUND EXCEEDED measured %d > bound %d",
					geo.name, b.name, st.MaxMagnitude, bound))
			}

			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			var timed time.Duration
			var ops int
			for timed < budget {
				t0 := time.Now()
				q.EnqueueBatch(nodes, ranks)
				for q.DequeueBatch(^uint64(0), out) > 0 {
				}
				timed += time.Since(t0)
				ops += elems
			}
			runtime.ReadMemStats(&ms1)
			mpps := float64(ops) / timed.Seconds() / 1e6
			allocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(ops)
			if exactMpps == 0 {
				exactMpps = mpps
			}

			t.AddRow(geo.name, b.name,
				fmt.Sprintf("%d", elems),
				fmt.Sprintf("%.2f", mpps),
				fmt.Sprintf("%.2fx", mpps/exactMpps),
				fmt.Sprintf("%d", st.Inversions),
				fmt.Sprintf("%d", st.MaxMagnitude),
				fmt.Sprintf("%.1f", st.AvgMagnitude()),
				fmt.Sprintf("%d", bound),
				fmt.Sprintf("%.3f", allocs))
			payload.Backend = append(payload.Backend, ApproxBackendRowJSON{
				Geometry:     geo.name,
				Backend:      b.name,
				Buckets:      2 * geo.cfg.NumBuckets,
				GranRank:     geo.cfg.Granularity,
				Elems:        elems,
				Mpps:         mpps,
				VsExact:      mpps / exactMpps,
				AllocsPerOp:  allocs,
				Released:     st.Released,
				Inversions:   st.Inversions,
				MaxMagnitude: st.MaxMagnitude,
				AvgMagnitude: st.AvgMagnitude(),
				BoundRank:    bound,
			})
		}
	}
	res.Tables = append(res.Tables, t)
}

// approxShardedSweep runs the 8-producer ShapedSharded sweep across the
// SchedBackend kinds.
func approxShardedSweep(o Options, res *Result, payload *ApproxJSON) {
	const producers = 8
	const rankSpan = uint64(1) << 20
	const producerBatch = 256
	perProducer := 20000
	if o.Quick {
		perProducer = 4000
	}
	geometry := qdisc.ShapedShardedOptions{
		Shards:        8,
		ShaperBuckets: 2500,
		HorizonNs:     2e9,
		SchedBuckets:  256,
		RankSpan:      rankSpan,
		RingBits:      15,
	}
	kinds := []qdisc.SchedBackendKind{
		qdisc.SchedVec, qdisc.SchedGradExact, qdisc.SchedGrad, qdisc.SchedRIFO,
	}

	t := &stats.Table{
		Title: "Approximate backends — 8 producers through ShapedSharded, batched admission",
		Headers: []string{"backend", "packets", "Mpps", "vs exact", "inv",
			"max-mag", "avg-mag", "bound", "allocs/op", "claims-amort"},
	}
	packets := qdisc.ShapedPackets(producers, perProducer, rankSpan)
	opt := qdisc.ContentionOptions{ProducerBatch: producerBatch}
	var exactMpps float64
	for _, kind := range kinds {
		cfg := geometry
		cfg.SchedBackend = kind
		bound := cfg.SchedInversionBound()

		q := qdisc.NewShapedSharded(cfg)
		mpps, allocs := measuredReplay(q, packets, 3, opt)
		if exactMpps == 0 {
			exactMpps = mpps
		}
		snap := q.Stats()

		// Inversion pass on a fresh instance, through the same batched
		// admission path: approximation must not grow under concurrency.
		st := qdisc.ReplayInversions(qdisc.NewShapedSharded(cfg), packets, opt)
		if st.Released != producers*perProducer {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"sharded/%s: drain released %d of %d", kind, st.Released, producers*perProducer))
		}
		if st.MaxMagnitude > bound {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"sharded/%s: APPROX BOUND EXCEEDED measured %d > bound %d",
				kind, st.MaxMagnitude, bound))
		}

		t.AddRow(kind.String(),
			fmt.Sprintf("%d", producers*perProducer),
			fmt.Sprintf("%.2f", mpps),
			fmt.Sprintf("%.2fx", mpps/exactMpps),
			fmt.Sprintf("%d", st.Inversions),
			fmt.Sprintf("%d", st.MaxMagnitude),
			fmt.Sprintf("%.1f", st.AvgMagnitude()),
			fmt.Sprintf("%d", bound),
			fmt.Sprintf("%.3f", allocs),
			fmt.Sprintf("%.1f", amortization(snap.BulkClaimed, snap.BulkClaims)))
		payload.Sharded = append(payload.Sharded, ApproxShardedRowJSON{
			Backend:      kind.String(),
			Packets:      producers * perProducer,
			Mpps:         mpps,
			VsExact:      mpps / exactMpps,
			AllocsPerOp:  allocs,
			Amortization: amortization(snap.BulkClaimed, snap.BulkClaims),
			Released:     st.Released,
			Inversions:   st.Inversions,
			MaxMagnitude: st.MaxMagnitude,
			AvgMagnitude: st.AvgMagnitude(),
			BoundRank:    bound,
		})
	}
	res.Tables = append(res.Tables, t)
}

// ApproxJSON is the approx experiment's machine-readable payload
// (cmd/eiffel-bench -json writes it to BENCH_approx.json).
type ApproxJSON struct {
	Experiment string                 `json:"experiment"`
	Quick      bool                   `json:"quick"`
	GoMaxProcs int                    `json:"gomaxprocs"`
	Backend    []ApproxBackendRowJSON `json:"backend_rows"`
	Sharded    []ApproxShardedRowJSON `json:"sharded_rows"`
}

// ApproxBackendRowJSON is one single-threaded backend measurement.
type ApproxBackendRowJSON struct {
	Geometry     string  `json:"geometry"`
	Backend      string  `json:"backend"`
	Buckets      int     `json:"buckets"`
	GranRank     uint64  `json:"gran_rank"`
	Elems        int     `json:"elems"`
	Mpps         float64 `json:"mpps"`
	VsExact      float64 `json:"vs_exact"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	Released     int     `json:"released"`
	Inversions   int     `json:"inversions"`
	MaxMagnitude uint64  `json:"max_magnitude"`
	AvgMagnitude float64 `json:"avg_magnitude"`
	BoundRank    uint64  `json:"bound_rank"`
}

// ApproxShardedRowJSON is one concurrent ShapedSharded measurement.
type ApproxShardedRowJSON struct {
	Backend      string  `json:"backend"`
	Packets      int     `json:"packets"`
	Mpps         float64 `json:"mpps"`
	VsExact      float64 `json:"vs_exact"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	Amortization float64 `json:"claim_amortization"`
	Released     int     `json:"released"`
	Inversions   int     `json:"inversions"`
	MaxMagnitude uint64  `json:"max_magnitude"`
	AvgMagnitude float64 `json:"avg_magnitude"`
	BoundRank    uint64  `json:"bound_rank"`
}
