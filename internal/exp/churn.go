package exp

import (
	"fmt"
	"runtime"

	"eiffel/internal/qdisc"
	"eiffel/internal/stats"
)

// Churn is the millions-of-flows survival experiment: the open-world
// regime the paper indicts kernel FQ's flow garbage collection for
// (§5.1 — throughput collapses past ~40k flows as the GC walks ever
// more dead flow state). The workload is short-lived Zipf fan-out
// traffic (workload.ChurnGen) through the pFabric direct-service
// policy qdisc, and the contrast is the flow-lifecycle layer itself:
//
//   - retain-all: the legacy configuration — no shard bound, no idle
//     flow eviction. The retained-flow table grows with CUMULATIVE
//     flows, so its heap scales with how long the qdisc has lived.
//   - evict+bound: idle-flow eviction (epoch-stamped slots, reclaimed
//     lazily on probe) plus a per-shard occupancy bound with drop-tail
//     admission. Heap tracks the LIVE flow window — flat no matter how
//     many flows have ever existed — which the harness asserts with a
//     hard ceiling over the pre-replay baseline.
//
// Verified rows run the exact per-flow oracle: zero misorders and zero
// lost packets among admitted traffic, with offered == admitted +
// dropped exact (cross-checked against the qdisc's own Admission
// block). The perf row turns the oracle off and measures pure Mpps.
func Churn(o Options) *Result {
	res := &Result{ID: "churn"}

	const (
		streams    = 4
		liveFlows  = 1024
		maxPkts    = 8
		zipfS      = 1.2
		shards     = 8
		shardBound = 384 // tight enough to exercise drop-tail against DrainTo backlog
		evictAfter = 2
		epochEvery = 4
		ceiling    = 64 << 20 // heap may exceed baseline by at most 64 MiB
	)
	verifyFlows := uint64(1_200_000) // acceptance: >=1M cumulative flows, zero misorders
	retainFlows := uint64(300_000)   // retain-all demonstrator (heap grows with this)
	perfFlows := uint64(1_000_000)
	if o.Quick {
		verifyFlows, retainFlows, perfFlows = 80_000, 40_000, 120_000
		res.Notes = append(res.Notes,
			"quick mode: 80k/40k/120k cumulative flows instead of 1.2M/300k/1M")
	}

	mk := func(bound, evict int) *qdisc.PolicySharded {
		q, err := qdisc.NewPolicySharded(qdisc.PolicyShardedOptions{
			Policy:     qdisc.PolicySpecPFabric,
			Shards:     shards,
			ShardBound: bound,
			Admit:      qdisc.AdmitDropTail,
			Tenants:    streams,
			EvictAfter: evict,
		})
		if err != nil {
			panic("exp: " + err.Error())
		}
		return q
	}
	rows := []struct {
		mode   string
		bound  int
		evict  int
		flows  uint64
		verify bool
	}{
		{"retain-all (legacy)", 0, 0, retainFlows, true},
		{"evict+bound drop-tail", shardBound, evictAfter, verifyFlows, true},
		{"evict+bound (perf)", shardBound, evictAfter, perfFlows, false},
	}

	t := &stats.Table{
		Title: "Flow churn — short-lived Zipf flows through pFabric policy shards",
		Headers: []string{"mode", "flows", "Mpps", "drop%", "misord", "lost",
			"live", "retained", "evicted", "peak-heap-MiB", "len-end"},
	}
	payload := &ChurnJSON{
		Experiment: "churn", Quick: o.Quick, GoMaxProcs: runtime.GOMAXPROCS(0),
		Streams: streams, LiveFlows: liveFlows, MaxFlowPkts: maxPkts,
		ZipfS: zipfS, Shards: shards, ShardBound: shardBound,
		EvictAfter: evictAfter, EpochEvery: epochEvery, HeapCeiling: ceiling,
	}
	for _, row := range rows {
		q := mk(row.bound, row.evict)
		opt := qdisc.ChurnOptions{
			Streams:     streams,
			LiveFlows:   liveFlows,
			MaxFlowPkts: maxPkts,
			ZipfS:       zipfS,
			Flows:       row.flows,
			EpochEvery:  epochEvery,
			Seed:        o.Seed,
			VerifyOrder: row.verify,
		}
		if row.evict > 0 {
			opt.HeapCeiling = ceiling // retain-all is EXPECTED to grow; only assert the evicting rows
		}
		r := qdisc.ReplayChurn(q, opt)

		// Exact-accounting cross-check: harness counts vs the qdisc's own
		// admission block, and conservation end to end.
		adm := q.Admission()
		if r.Offered != r.Admitted+r.Dropped ||
			adm.Offered() != r.Offered || adm.Admitted() != r.Admitted || adm.Dropped() != r.Dropped {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"%s: ACCOUNTING MISMATCH harness %d=%d+%d vs qdisc %d=%d+%d",
				row.mode, r.Offered, r.Admitted, r.Dropped,
				adm.Offered(), adm.Admitted(), adm.Dropped()))
		}
		if r.Released != r.Admitted || r.LenEnd != 0 {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"%s: DRAIN MISMATCH released %d of %d admitted, len-end %d",
				row.mode, r.Released, r.Admitted, r.LenEnd))
		}
		if r.CeilingExceeded {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"%s: HEAP CEILING EXCEEDED peak %d base %d ceiling %d",
				row.mode, r.PeakHeap, r.BaseHeap, uint64(ceiling)))
		}

		misord, lost := "-", "-"
		if row.verify {
			misord, lost = fmt.Sprintf("%d", r.Misorders), fmt.Sprintf("%d", r.Lost)
		}
		t.AddRow(row.mode,
			fmt.Sprintf("%d", r.CumulativeFlows),
			fmt.Sprintf("%.2f", r.Mpps()),
			fmt.Sprintf("%.2f", 100*r.DropRatio()),
			misord, lost,
			fmt.Sprintf("%d", r.LiveEnd),
			fmt.Sprintf("%d", r.RetainedEnd),
			fmt.Sprintf("%d", r.Evicted),
			fmt.Sprintf("%.1f", float64(r.PeakHeap-r.BaseHeap)/(1<<20)),
			fmt.Sprintf("%d", r.LenEnd))
		payload.Rows = append(payload.Rows, ChurnRowJSON{
			Mode:            row.mode,
			CumulativeFlows: r.CumulativeFlows,
			Offered:         r.Offered,
			Admitted:        r.Admitted,
			Dropped:         r.Dropped,
			DropRatio:       r.DropRatio(),
			Mpps:            r.Mpps(),
			Misorders:       r.Misorders,
			Lost:            r.Lost,
			LiveEnd:         r.LiveEnd,
			RetainedEnd:     r.RetainedEnd,
			Evicted:         r.Evicted,
			BaseHeapBytes:   r.BaseHeap,
			PeakHeapBytes:   r.PeakHeap,
			CeilingExceeded: r.CeilingExceeded,
			LenEnd:          r.LenEnd,
			Verified:        row.verify,
		})
	}
	res.Tables = append(res.Tables, t)
	res.JSON = payload
	res.Notes = append(res.Notes,
		"misord/lost: per-flow sequence violations / admitted-but-never-released packets among ADMITTED traffic (must be 0)",
		"retained: flow objects held in shard flow tables at quiescence — the retain-all row grows with cumulative flows, the evicting rows track the live window",
		"peak-heap-MiB: max sampled HeapAlloc minus pre-replay baseline; evicting rows assert it under the 64 MiB ceiling")
	return res
}

// ChurnJSON is the churn experiment's machine-readable payload
// (cmd/eiffel-bench -json writes it to BENCH_churn.json): the fixed
// parameters and one row per configuration.
type ChurnJSON struct {
	Experiment  string         `json:"experiment"`
	Quick       bool           `json:"quick"`
	GoMaxProcs  int            `json:"gomaxprocs"`
	Streams     int            `json:"streams"`
	LiveFlows   int            `json:"live_flows_per_stream"`
	MaxFlowPkts int            `json:"max_flow_pkts"`
	ZipfS       float64        `json:"zipf_s"`
	Shards      int            `json:"shards"`
	ShardBound  int            `json:"shard_bound"`
	EvictAfter  int            `json:"evict_after"`
	EpochEvery  int            `json:"epoch_every"`
	HeapCeiling uint64         `json:"heap_ceiling_bytes"`
	Rows        []ChurnRowJSON `json:"rows"`
}

// ChurnRowJSON is one churn configuration's observed outcome.
type ChurnRowJSON struct {
	Mode            string  `json:"mode"`
	CumulativeFlows uint64  `json:"cumulative_flows"`
	Offered         uint64  `json:"offered"`
	Admitted        uint64  `json:"admitted"`
	Dropped         uint64  `json:"dropped"`
	DropRatio       float64 `json:"drop_ratio"`
	Mpps            float64 `json:"mpps"`
	Misorders       uint64  `json:"misorders"`
	Lost            uint64  `json:"lost"`
	LiveEnd         int     `json:"live_end"`
	RetainedEnd     int     `json:"retained_end"`
	Evicted         uint64  `json:"evicted"`
	BaseHeapBytes   uint64  `json:"base_heap_bytes"`
	PeakHeapBytes   uint64  `json:"peak_heap_bytes"`
	CeilingExceeded bool    `json:"ceiling_exceeded"`
	LenEnd          int     `json:"len_end"`
	Verified        bool    `json:"verified"`
}
