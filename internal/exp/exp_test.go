package exp

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// runQuick runs a registered experiment in quick mode and sanity-checks
// its output structure.
func runQuick(t *testing.T, id string) *Result {
	t.Helper()
	r, ok := Registry[id]
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	res := r(Options{Quick: true, Seed: 1})
	if res.ID != id {
		t.Fatalf("result id %q, want %q", res.ID, id)
	}
	if len(res.Tables) == 0 {
		t.Fatal("no tables produced")
	}
	for _, tab := range res.Tables {
		if len(tab.Rows) == 0 {
			t.Fatalf("table %q has no rows", tab.Title)
		}
	}
	return res
}

func cell(t *testing.T, res *Result, table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(res.Tables[table].Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d,%d) = %q not numeric", table, row, col, res.Tables[table].Rows[row][col])
	}
	return v
}

func TestTable1(t *testing.T) {
	res := runQuick(t, "table1")
	out := res.String()
	for _, want := range []string{"Eiffel", "Carousel", "PIFO", "hClock", "O(1)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 1 missing %q", want)
		}
	}
}

func TestFigure16Shape(t *testing.T) {
	res := runQuick(t, "fig16")
	// Every queue must be in the Mpps range (sanity: > 0.5 Mpps).
	for ti := range res.Tables {
		for ri := range res.Tables[ti].Rows {
			for ci := 1; ci <= 3; ci++ {
				if v := cell(t, res, ti, ri, ci); v <= 0.5 {
					t.Fatalf("table %d row %d col %d: %.2f Mpps implausibly low", ti, ri, ci, v)
				}
			}
		}
	}
	// The headline: bucketed FFS/approx queues beat BH at fine granularity
	// (1 pkt/bucket row, 10k buckets table).
	cffs := cell(t, res, 1, 0, 2)
	bh := cell(t, res, 1, 0, 3)
	if cffs < bh {
		t.Logf("warning: cFFS (%.2f) did not beat BH (%.2f) at 1 pkt/bucket", cffs, bh)
	}
}

func TestFigure17Shape(t *testing.T) {
	res := runQuick(t, "fig17")
	// Approximate queue throughput should not degrade with higher
	// occupancy (more occupancy = fewer estimate misses).
	lo := cell(t, res, 0, 0, 2)
	hi := cell(t, res, 0, len(res.Tables[0].Rows)-1, 2)
	if hi < lo*0.5 {
		t.Fatalf("approx rate fell with occupancy: %.2f -> %.2f", lo, hi)
	}
}

func TestFigure18ErrorDecreasesWithOccupancy(t *testing.T) {
	res := runQuick(t, "fig18")
	rows := res.Tables[0].Rows
	first := cell(t, res, 0, 0, 1)          // avg err at 0.70
	last := cell(t, res, 0, len(rows)-1, 1) // avg err at 0.99
	if last > first+0.5 && first > 0.01 {
		t.Fatalf("selection error should shrink as occupancy rises: %.2f -> %.2f", first, last)
	}
}

func TestFigure20Choices(t *testing.T) {
	res := runQuick(t, "fig20")
	rows := res.Tables[0].Rows
	want := []string{"BinHeap", "FFS", "cFFS", "cApprox"}
	for i, w := range want {
		if got := rows[i][4]; got != w {
			t.Fatalf("row %d choice = %q, want %q", i, got, w)
		}
	}
}

func TestFigure9And10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res9 := runQuick(t, "fig9")
	// Eiffel's median cores must not exceed FQ's: the core claim.
	fq := cell(t, res9, 0, 0, 2)
	eiffel := cell(t, res9, 0, 2, 2)
	if eiffel > fq {
		t.Fatalf("Eiffel median cores (%.4f) exceed FQ (%.4f)", eiffel, fq)
	}
	res10 := runQuick(t, "fig10")
	_ = res10
}

func TestFigure12Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := runQuick(t, "fig12")
	// At the largest flow count, Eiffel must beat BESS tc.
	rows := res.Tables[0].Rows
	last := len(rows) - 1
	eiffel := cell(t, res, 0, last, 1)
	tc := cell(t, res, 0, last, 3)
	if eiffel < tc {
		t.Fatalf("Eiffel (%.0f Mbps) should beat BESS tc (%.0f) at %s flows", eiffel, tc, rows[last][0])
	}
}

func TestFigure15Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := runQuick(t, "fig15")
	rows := res.Tables[0].Rows
	last := len(rows) - 1
	eiffel := cell(t, res, 0, last, 1)
	heap := cell(t, res, 0, last, 2)
	if eiffel <= 0 || heap <= 0 {
		t.Fatalf("zero rates: %v", rows[last])
	}
}

func TestFigure19Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := runQuick(t, "fig19")
	// pFabric must beat DCTCP on small-flow FCT at the highest load, and
	// the approximate variant must track the exact one.
	rows := res.Tables[0].Rows // avg small panel
	last := len(rows) - 1
	dctcp := cell(t, res, 0, last, 1)
	approx := cell(t, res, 0, last, 2)
	exact := cell(t, res, 0, last, 3)
	if exact > dctcp {
		t.Logf("warning: pFabric small-flow FCT (%.2f) not below DCTCP (%.2f) at top load", exact, dctcp)
	}
	if approx > exact*2 {
		t.Fatalf("approx pFabric diverged: %.2f vs exact %.2f", approx, exact)
	}
}

func TestAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	for _, id := range []string{"ablation-hier-vs-flat", "ablation-redistribute", "ablation-alpha", "ablation-backends", "ablation-shaper"} {
		runQuick(t, id)
	}
}

func TestEgressQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := runQuick(t, "egress")
	rows := res.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("want 3 rows (G=1, G=2, G=4), got %d", len(rows))
	}
	// The hard acceptance half: parallel egress must not cost a single
	// per-flow order violation, and no flow may ever be released by a
	// group other than its own.
	for _, row := range rows {
		if row[5] != "0" {
			t.Fatalf("G=%s: %s per-flow order violations, want 0", row[0], row[5])
		}
		if row[6] != "0" {
			t.Fatalf("G=%s: %s flow-group violations, want 0", row[0], row[6])
		}
	}
	// Throughput sanity (the ≥1.5× G=4 acceptance figure needs a
	// multi-core runner and is tracked by BenchmarkEgress; this container
	// may be single-vCPU, where workers serialize): every row must still
	// move packets at a plausible rate. The floor is deliberately low —
	// race-instrumented runs are an order of magnitude slower than bare
	// ones, and this guard is for wedged drains, not performance.
	for ri := range rows {
		if v := cell(t, res, 0, ri, 2); v < 0.05 {
			t.Fatalf("G=%s: %.2f Mpps implausibly low", rows[ri][0], v)
		}
	}
}

func TestShapedSchedQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := runQuick(t, "shapedsched")
	rows := res.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("want 3 rows (locked tree, shaped shards, shaped shards batched), got %d", len(rows))
	}
	// The hard acceptance half: ZERO priority inversions beyond scheduler
	// bucket granularity — for the baseline, the per-element sharded
	// runtime, and the batched admission path alike.
	for _, row := range rows {
		if row[5] != "0" {
			t.Fatalf("%s: %s priority inversions beyond bucket granularity, want 0", row[0], row[5])
		}
	}
	// Throughput sanity (the ≥2× acceptance figure is tracked by
	// BenchmarkShapedSched; machine-dependent, so not asserted here): the
	// sharded runtime must at least not lose to the global lock.
	locked := cell(t, res, 0, 0, 3)
	for row := 1; row < 3; row++ {
		sharded := cell(t, res, 0, row, 3)
		if sharded < locked*0.8 {
			t.Fatalf("%s (%.2f Mpps) fell below the locked tree baseline (%.2f Mpps)",
				rows[row][0], sharded, locked)
		}
	}
}

func TestPolicySchedQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := runQuick(t, "policysched")
	rows := res.Tables[0].Rows
	if len(rows) != 10 {
		t.Fatalf("want 10 rows (3 policies x locked/sharded/batched + the hwfq hier-shards re-expression), got %d", len(rows))
	}
	for _, row := range rows {
		// Flow-local exactness is the hard half of the acceptance: zero
		// packets out of their flow's enqueue order, on every policy,
		// through every admission path.
		if row[5] != "0" {
			t.Fatalf("%s/%s: %s flow-order violations, want 0", row[0], row[1], row[5])
		}
		// Hierarchical WFQ: the weight-3 class's share of the served half
		// must track 3:1 — near-exact on the locked tree, bounded error
		// across shard-local virtual-time domains.
		if row[6] != "-" {
			share, err := strconv.ParseFloat(row[6], 64)
			if err != nil {
				t.Fatalf("gold-share %q not numeric: %v", row[6], err)
			}
			bound := 0.05
			if row[1] != "tree+lock" {
				bound = 0.10
			}
			if diff := share - 0.75; diff > bound || diff < -bound {
				t.Fatalf("%s/%s: gold share %.3f strays more than %.2f from 0.75",
					row[0], row[1], share, bound)
			}
		}
	}
	// Throughput sanity (the ≥2× acceptance figure is tracked by
	// BenchmarkPolicySched; machine-dependent, so not asserted here): on
	// the direct-mode policies (pfabric, lqf — single flow leaf, served
	// packet-free) the sharded runtime must at least not lose to the
	// global lock. The hierarchical WFQ rows run the full per-shard tree
	// through one consumer and are reported, not asserted: their value is
	// the bounded cross-shard fairness, not throughput.
	//
	// The bound is loose (0.7×, where full runs measure 2×+) and a
	// failing measurement retries once on a fresh run: quick mode replays
	// a small workload on whatever CPU the runner spares — on a 1-CPU box
	// `go test ./...` overlaps other packages' compilation with this
	// test's timed replays — so one reading can be ruined by transient
	// CPU theft. A real regression to locked-or-worse throughput fails
	// both runs.
	throughputOK := func(res *Result) (string, bool) {
		for p := 0; p < 2; p++ {
			locked := cell(t, res, 0, 3*p, 3)
			for row := 3*p + 1; row < 3*p+3; row++ {
				sharded := cell(t, res, 0, row, 3)
				if sharded < locked*0.7 {
					r := res.Tables[0].Rows[row]
					return fmt.Sprintf("%s/%s (%.2f Mpps) fell below the locked tree baseline (%.2f Mpps)",
						r[0], r[1], sharded, locked), false
				}
			}
		}
		return "", true
	}
	if msg, ok := throughputOK(res); !ok {
		t.Logf("retrying after a suspect measurement: %s", msg)
		if msg, ok := throughputOK(runQuick(t, "policysched")); !ok {
			t.Fatal(msg)
		}
	}
}

func TestHierSchedQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := runQuick(t, "hiersched")
	rows := res.Tables[0].Rows
	if len(rows) != 8 {
		t.Fatalf("want 8 rows (backend x deployment sweep), got %d", len(rows))
	}
	for _, row := range rows {
		// The three correctness columns are the acceptance invariants of
		// the sharded hierarchical path, on every backend and deployment:
		// flow-local exactness (flow-hash sharding keeps a flow's backlog
		// on one engine), bounded reservation starvation (a due
		// reservation pulls its shard's merge rank to 0 and a
		// reservation-due crossing forces a head re-peek), and the
		// cross-shard share error bound.
		if row[5] != "0" {
			t.Fatalf("%s/%s: %s flow-order violations, want 0", row[0], row[1], row[5])
		}
		if row[6] != "0" {
			t.Fatalf("%s/%s: %s reservation violations, want 0", row[0], row[1], row[6])
		}
		shareErr, err := strconv.ParseFloat(row[7], 64)
		if err != nil {
			t.Fatalf("share-err %q not numeric: %v", row[7], err)
		}
		if shareErr > 0.10 {
			t.Fatalf("%s/%s: share error %.3f exceeds the 0.10 bound", row[0], row[1], shareErr)
		}
	}
}

func TestRegistryNamesStable(t *testing.T) {
	names := Names()
	if len(names) != len(Registry) {
		t.Fatal("Names() incomplete")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names() not sorted")
		}
	}
}
