package exp

import (
	"fmt"

	"eiffel/internal/netsim"
	"eiffel/internal/stats"
)

// Figure19 regenerates the network-wide pFabric simulation: normalized FCT
// vs load for DCTCP, pFabric (exact queues), and pFabric-Approx, in the
// paper's three panels (avg small, p99 small, avg large). The paper ran a
// 144-host leaf-spine in ns2; quick mode scales the fabric and flow count
// down while keeping topology shape and workload distribution.
func Figure19(o Options) *Result {
	res := &Result{ID: "fig19"}
	hosts, hpl, spines, flows := 144, 16, 9, 5000
	loads := []float64{0.1, 0.2, 0.4, 0.6, 0.8}
	if o.Quick {
		hosts, hpl, spines, flows = 32, 16, 2, 400
		loads = []float64{0.2, 0.5, 0.8}
		res.Notes = append(res.Notes, "quick mode: 32-host fabric, 400 flows per point (paper: 144 hosts)")
	}
	systems := []struct {
		tr netsim.Transport
		q  netsim.QueueKind
	}{
		{netsim.TransportDCTCP, netsim.QueueFIFOECN},
		{netsim.TransportPFabric, netsim.QueuePFabricApprox},
		{netsim.TransportPFabric, netsim.QueuePFabric},
	}
	panels := []struct {
		title string
		pick  func(r netsim.ExperimentResult) float64
	}{
		{"avg normalized FCT, (0,100KB]", func(r netsim.ExperimentResult) float64 { return r.AvgSmall }},
		{"p99 normalized FCT, (0,100KB]", func(r netsim.ExperimentResult) float64 { return r.P99Small }},
		{"avg normalized FCT, (10MB,inf)", func(r netsim.ExperimentResult) float64 { return r.AvgLarge }},
	}

	// Run each (system, load) once; fill all three panels from it.
	results := make([][]netsim.ExperimentResult, len(systems))
	for i, sys := range systems {
		for _, load := range loads {
			r := netsim.RunExperiment(netsim.ExperimentConfig{
				Hosts:        hosts,
				HostsPerLeaf: hpl,
				Spines:       spines,
				Load:         load,
				Transport:    sys.tr,
				Queue:        sys.q,
				Flows:        flows,
				Seed:         o.Seed + int64(load*100),
			})
			results[i] = append(results[i], r)
		}
	}
	for _, panel := range panels {
		t := &stats.Table{
			Title:   "Figure 19 — " + panel.title,
			Headers: []string{"load", "DCTCP", "pFabric-Approx", "pFabric"},
		}
		for li, load := range loads {
			row := []string{fmt.Sprintf("%.1f", load)}
			for si := range systems {
				row = append(row, fmt.Sprintf("%.2f", panel.pick(results[si][li])))
			}
			t.AddRow(row...)
		}
		res.Tables = append(res.Tables, t)
	}
	comp := &stats.Table{
		Title:   "Figure 19 — run diagnostics",
		Headers: []string{"system", "load", "completed", "drops", "retransmits"},
	}
	for si, sys := range systems {
		for li, load := range loads {
			r := results[si][li]
			comp.AddRow(fmt.Sprintf("%v/%v", sys.tr, sys.q), fmt.Sprintf("%.1f", load),
				fmt.Sprintf("%d", r.Completed), fmt.Sprintf("%d", r.Drops), fmt.Sprintf("%d", r.Retransmits))
		}
	}
	res.Tables = append(res.Tables, comp)
	return res
}
