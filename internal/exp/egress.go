package exp

import (
	"fmt"
	"runtime"
	"strings"

	"eiffel/internal/qdisc"
	"eiffel/internal/stats"
)

// Egress is the parallel-egress scaling experiment (not a paper figure):
// it sweeps the consumer-group count G ∈ {1, 2, 4} over the same
// 8-producer contention workload the contention experiment replays, but
// drained by one worker PER GROUP into per-group egress sinks — the
// multi-queue-NIC topology (each TX queue owns a drain core) that PRs 1–4
// left on the table while they scaled the producer side. G=1 is the
// single-consumer baseline; the headline column is each row's aggregate
// throughput against it. Every row also replays the group-fidelity pass:
// per-flow dequeue order must survive parallel egress EXACTLY (flow-hash
// confinement pins a flow to one shard, hence one group, hence one
// worker), so the flow-order and flow-group violation columns must be
// zero everywhere.
func Egress(o Options) *Result {
	res := &Result{ID: "egress"}
	const producers = 8
	perProducer := 20000
	if o.Quick {
		perProducer = 4000
		res.Notes = append(res.Notes, "quick mode: 4000 packets per producer instead of 20000")
	}
	flowsPer := perProducer / 10 // 10-packet flows: multi-packet, so per-flow order is a real claim

	// producerBatch is the run length every row admits per EnqueueBatch
	// call: the egress sweep isolates the CONSUMER side, so all rows get
	// the batched admission path PR 3 made the fast default.
	const producerBatch = 256

	mk := func(groups int) *qdisc.MultiSharded {
		return qdisc.NewMultiSharded(qdisc.MultiShardedOptions{
			ShardedOptions: qdisc.ShardedOptions{
				Shards: 8, Buckets: 2500, HorizonNs: 2e9, RingBits: 15,
			},
			Groups: groups,
		})
	}
	opt := qdisc.ContentionOptions{ProducerBatch: producerBatch}
	packets := qdisc.EgressPackets(producers, perProducer, flowsPer)
	total := producers * perProducer

	t := &stats.Table{
		Title:   "Egress — 8 producers vs G parallel consumer-group workers",
		Headers: []string{"groups", "packets", "Mpps", "vs G=1", "per-group Mpps", "flow-order viol", "flow-group viol", "counters"},
	}
	var baseMpps float64
	for _, G := range []int{1, 2, 4} {
		// Best of three replays on ONE instance, the repo's steady-state
		// methodology (see BestOfReplays): the front is empty after a full
		// replay, so reuse measures warm rings and buckets, and the max
		// filters scheduler/GC hiccups on small machines.
		m := mk(G)
		var best qdisc.EgressResult
		for rep := 0; rep < 3; rep++ {
			if r := qdisc.ReplayEgress(m, packets, opt); r.Mpps() > best.Mpps() {
				best = r
			}
		}
		mpps := best.Mpps()
		if baseMpps == 0 {
			baseMpps = mpps
		}
		perGroup := make([]string, len(best.PerGroup))
		for g, n := range best.PerGroup {
			perGroup[g] = fmt.Sprintf("%.2f", float64(n)/best.Elapsed.Seconds()/1e6)
		}

		// Fidelity pass on a fresh instance: publish everything first, then
		// drain with G concurrent workers, so per-flow order and the
		// flow→group partition are asserted through the same admission path
		// as the throughput pass.
		fm := mk(G)
		released, orderViol, groupViol := qdisc.ReplayEgressFidelity(fm, packets, opt)
		if released != total {
			res.Notes = append(res.Notes,
				fmt.Sprintf("G=%d: fidelity drain released %d of %d", G, released, total))
		}

		t.AddRow(fmt.Sprintf("%d", G),
			fmt.Sprintf("%d", best.Packets),
			fmt.Sprintf("%.2f", mpps),
			fmt.Sprintf("%.2fx", mpps/baseMpps),
			strings.Join(perGroup, "/"),
			fmt.Sprintf("%d", orderViol),
			fmt.Sprintf("%d", groupViol),
			m.Stats().String())
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		fmt.Sprintf("release times spread over the 2 s horizon, %d-packet flows; workers drain at now = horizon", perProducer/flowsPer),
		fmt.Sprintf("batched admission in runs of %d via EnqueueBatch on every row", producerBatch),
		fmt.Sprintf("GOMAXPROCS=%d NumCPU=%d — group speedups need cores for the workers; single-core runs report the honest serialization overhead",
			runtime.GOMAXPROCS(0), runtime.NumCPU()))
	return res
}
