package exp

import (
	"fmt"
	"runtime"

	"eiffel/internal/pkt"
	"eiffel/internal/qdisc"
	"eiffel/internal/shardq"
	"eiffel/internal/stats"
)

// PolicySched is the programmable-policy scaling experiment: the same
// extended-PIFO programs running once on a single locked pifo.Tree (the
// kernel-style deployment) and once shard-confined on the multi-producer
// runtime (qdisc.PolicySharded). Each row reports contention throughput
// (8 producers vs one consumer), flow-local order violations after a
// concurrent replay (must be zero — per-flow ranking is exact under
// sharding), and, for the hierarchical WFQ program, the weight-3 class's
// service share when half the backlog is served (ideal 0.75; the sharded
// figure measures the cross-shard fairness error).
func PolicySched(o Options) *Result {
	res := &Result{ID: "policysched"}
	const producers = 8
	const flowsPer = 256
	perProducer := 20000
	if o.Quick {
		perProducer = 4000
		res.Notes = append(res.Notes, "quick mode: 4000 packets per producer instead of 20000")
	}
	const producerBatch = 256

	// The paper's three flexibility showcases (canonical program text in
	// qdisc, shared with the examples and the equivalence tests).
	policies := []struct {
		name string
		spec string
	}{
		{"pfabric", qdisc.PolicySpecPFabric},
		{"lqf", qdisc.PolicySpecLQF},
		{"hwfq", qdisc.PolicySpecHWFQ},
	}
	type entry struct {
		name    string
		sharded bool
		hier    bool
		opt     qdisc.ContentionOptions
	}
	entries := []entry{
		{"tree+lock", false, false, qdisc.ContentionOptions{}},
		{"policy-shards", true, false, qdisc.ContentionOptions{}},
		{"policy-shards (batched)", true, false, qdisc.ContentionOptions{ProducerBatch: producerBatch}},
	}
	// The hwfq program is the one PolicySpec whose whole ordering decision
	// lives in the shared tree (every dequeue re-ranks the wfq root), so
	// its sharded rows historically trailed the locked tree. The same
	// hierarchy expressed as an hClock tenant tree runs shard-confined on
	// the hierarchical backend; the extra row is the after to the locked
	// row's honest before.
	hierEntry := entry{"hier-shards (batched)", true, true, qdisc.ContentionOptions{ProducerBatch: producerBatch}}
	hwfqHierSpec := shardq.HierSpec{
		Tenants: []shardq.HierTenant{{Weight: 3}, {Weight: 1}},
	}

	t := &stats.Table{
		Title:   "Programmable policies — 8 producers through shard-confined extended-PIFO trees",
		Headers: []string{"policy", "qdisc", "packets", "Mpps", "vs lock", "misorders", "gold-share", "allocs/op", "counters"},
	}
	payload := &PolicySchedJSON{
		Experiment: "policysched", Quick: o.Quick, GoMaxProcs: runtime.GOMAXPROCS(0),
		Producers: producers, PerProducer: perProducer, FlowsPerProducer: flowsPer,
		ProducerBatch: producerBatch,
	}
	for _, pol := range policies {
		mk := func(e entry) qdisc.Qdisc {
			if e.hier {
				q, err := qdisc.NewHierSharded(qdisc.HierShardedOptions{
					Spec: hwfqHierSpec, Shards: 8, RingBits: 15,
				})
				if err != nil {
					panic("exp: " + err.Error())
				}
				return q
			}
			if e.sharded {
				q, err := qdisc.NewPolicySharded(qdisc.PolicyShardedOptions{
					Policy: pol.spec, Shards: 8, RingBits: 15,
				})
				if err != nil {
					panic("exp: " + err.Error())
				}
				return q
			}
			q, err := qdisc.NewPolicyTree(pol.spec, "")
			if err != nil {
				panic("exp: " + err.Error())
			}
			return qdisc.NewLocked(q)
		}
		// One workload per policy, shared by every pass (packets come back
		// detached) so allocation stays out of the timed regions.
		packets := qdisc.PolicyPackets(producers, perProducer, flowsPer)
		polEntries := entries
		if pol.name == "hwfq" {
			polEntries = append(polEntries[:len(polEntries):len(polEntries)], hierEntry)
		}
		var lockedMpps float64
		for _, e := range polEntries {
			q := mk(e)
			mpps, allocs := measuredReplay(q, packets, 3, e.opt)
			if lockedMpps == 0 {
				lockedMpps = mpps
			}

			// Fidelity pass on a fresh instance, through the same admission
			// path: per-flow order must survive concurrency and batching.
			fq := mk(e)
			released, misorders := qdisc.ReplayFlowFidelity(fq, packets, e.opt)
			if released != producers*perProducer {
				res.Notes = append(res.Notes,
					fmt.Sprintf("%s/%s: fidelity drain released %d of %d",
						pol.name, e.name, released, producers*perProducer))
			}

			goldShare := "-"
			goldShareVal := 0.0
			if pol.name == "hwfq" {
				goldShareVal = measureGoldShare(mk(e), packets)
				goldShare = fmt.Sprintf("%.3f", goldShareVal)
			}
			// Counters come from the TIMED instance, so the amortization
			// figures beside a Mpps value describe that same run.
			counters := "-"
			var amort float64
			switch s := q.(type) {
			case *qdisc.PolicySharded:
				snap := s.Stats()
				counters = snap.String()
				amort = amortization(snap.BulkClaimed, snap.BulkClaims)
			case *qdisc.HierSharded:
				snap := s.Stats()
				counters = snap.String()
				amort = amortization(snap.BulkClaimed, snap.BulkClaims)
			}
			t.AddRow(pol.name, e.name,
				fmt.Sprintf("%d", producers*perProducer),
				fmt.Sprintf("%.2f", mpps),
				fmt.Sprintf("%.2fx", mpps/lockedMpps),
				fmt.Sprintf("%d", misorders),
				goldShare,
				fmt.Sprintf("%.3f", allocs),
				counters)
			payload.Rows = append(payload.Rows, PolicySchedRowJSON{
				Policy:       pol.name,
				Qdisc:        e.name,
				Batched:      e.opt.ProducerBatch > 1,
				Packets:      producers * perProducer,
				Mpps:         mpps,
				VsLock:       mpps / lockedMpps,
				AllocsPerOp:  allocs,
				Amortization: amort,
				Misorders:    misorders,
				GoldShare:    goldShareVal,
			})
		}
	}
	res.Tables = append(res.Tables, t)
	res.JSON = payload
	res.Notes = append(res.Notes,
		"misorders: packets released out of their flow's enqueue order (flow-local exactness requires 0)",
		"gold-share: weight-3 class share after serving half the backlog (ideal 0.750)")
	return res
}

// PolicySchedJSON is the policysched experiment's machine-readable payload
// (cmd/eiffel-bench -json writes it to BENCH_policysched.json).
type PolicySchedJSON struct {
	Experiment       string               `json:"experiment"`
	Quick            bool                 `json:"quick"`
	GoMaxProcs       int                  `json:"gomaxprocs"`
	Producers        int                  `json:"producers"`
	PerProducer      int                  `json:"per_producer"`
	FlowsPerProducer int                  `json:"flows_per_producer"`
	ProducerBatch    int                  `json:"producer_batch"`
	Rows             []PolicySchedRowJSON `json:"rows"`
}

// PolicySchedRowJSON is one policy × deployment observed outcome.
type PolicySchedRowJSON struct {
	Policy       string  `json:"policy"`
	Qdisc        string  `json:"qdisc"`
	Batched      bool    `json:"batched"`
	Packets      int     `json:"packets"`
	Mpps         float64 `json:"mpps"`
	VsLock       float64 `json:"vs_lock"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	Amortization float64 `json:"claim_amortization"`
	Misorders    int     `json:"misorders"`
	GoldShare    float64 `json:"gold_share"`
}

// measureGoldShare enqueues every set sequentially, serves half the
// backlog, and returns the Class-0 share of service (both classes stay
// backlogged throughout the measured half); the remainder is drained so
// the packets detach for reuse.
func measureGoldShare(q qdisc.Qdisc, packets [][]*pkt.Packet) float64 {
	total := 0
	for _, set := range packets {
		for _, p := range set {
			q.Enqueue(p, 0)
		}
		total += len(set)
	}
	gold, served := 0, 0
	for served < total/2 {
		p := q.Dequeue(int64(2e9))
		if p == nil {
			break
		}
		if p.Class == 0 {
			gold++
		}
		served++
	}
	for q.Dequeue(int64(2e9)) != nil {
	}
	if served == 0 {
		return 0
	}
	return float64(gold) / float64(served)
}
