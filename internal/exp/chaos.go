package exp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eiffel/internal/fault"
	"eiffel/internal/qdisc"
	"eiffel/internal/stats"
)

// Chaos is the fault-injection acceptance for the resilient egress
// path: the same concurrent-producer workload the egress experiment
// replays, but drained by supervised Serve workers into seed-driven
// fault.Sink TX queues that misbehave on a schedule — transient
// errors, partial accepts, slowdowns, stalls, and outright panics —
// one misbehavior profile per row. The claims under test are the
// PR's robustness invariants, asserted per row:
//
//   - exactly-once: no packet is lost (the conservation identity
//     admitted == tx'd + dropped + released holds exactly at
//     quiescence, and the sinks' unique-accept ledger equals tx'd) and
//     no packet is duplicated (ledger dups == 0), through retries,
//     partial accepts, and panic recovery alike;
//   - exact drop attribution: every given-up packet lands in exactly
//     one counted reason — deadline, retry budget, or failed sink;
//   - bounded recovery: Stop's graceful drain reaches quiescence
//     within a hard wall-clock bound even on the nastiest profile.
//
// Rows that inject no drop-producing faults must tx everything;
// the deadline and retry-budget rows exist to force their respective
// drop reasons and prove the attribution is exact, not approximate.
func Chaos(o Options) *Result {
	res := &Result{ID: "chaos"}

	const (
		producers = 4
		groups    = 2
		// recoveryBound is the hard wall-clock ceiling on Stop's graceful
		// drain — the "bounded recovery time" assertion.
		recoveryBound = 5 * time.Second
	)
	perProducer := 20000
	if o.Quick {
		perProducer = 4000
		res.Notes = append(res.Notes, "quick mode: 4000 packets per producer instead of 20000")
	}
	flowsPer := perProducer / 10
	total := uint64(producers * perProducer)

	// Per-row fault profile plus the retry policy tuned to exhibit that
	// row's failure mode. Zero-valued policy fields take the qdisc
	// defaults (8 attempts, 10µs base / 1ms cap backoff, no deadline).
	rows := []struct {
		prof      fault.Profile
		retry     qdisc.RetryPolicy
		restarts  int // ServeOptions.MaxRestarts (0 = default)
		stallWin  time.Duration
		wantDrops bool // row is EXPECTED to drop (deadline / retry budget)
	}{
		{prof: fault.Profile{Name: "clean"}},
		{prof: fault.Profile{Name: "transient", Seed: 1, ErrRate: 0.30},
			retry: qdisc.RetryPolicy{BaseBackoff: time.Microsecond, MaxBackoff: 64 * time.Microsecond, MaxAttempts: -1}},
		{prof: fault.Profile{Name: "partial", Seed: 2, PartialRate: 0.60},
			retry: qdisc.RetryPolicy{BaseBackoff: time.Microsecond, MaxBackoff: 64 * time.Microsecond, MaxAttempts: -1}},
		{prof: fault.Profile{Name: "slow", Seed: 3, SlowRate: 0.30, SlowFor: 100 * time.Microsecond}},
		{prof: fault.Profile{Name: "stall", Seed: 4, StallRate: 0.004, StallFor: 25 * time.Millisecond},
			stallWin: 5 * time.Millisecond},
		{prof: fault.Profile{Name: "retry-budget", Seed: 5, ErrRate: 0.70},
			retry:     qdisc.RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Microsecond, MaxBackoff: 16 * time.Microsecond},
			wantDrops: true},
		{prof: fault.Profile{Name: "deadline", Seed: 6, ErrRate: 0.85},
			retry: qdisc.RetryPolicy{MaxAttempts: -1, Deadline: 150 * time.Microsecond,
				BaseBackoff: time.Microsecond, MaxBackoff: 16 * time.Microsecond},
			wantDrops: true},
		{prof: fault.Profile{Name: "panic", Seed: 7, PanicRate: 0.01},
			restarts: -1}, // unlimited recovery: panics must never translate into loss
	}

	t := &stats.Table{
		Title: fmt.Sprintf("Chaos — %d producers vs %d supervised workers over fault-injecting sinks", producers, groups),
		Headers: []string{"profile", "admitted", "txd", "drop-dl", "drop-budget", "drop-failed",
			"retries", "dups", "lost", "restarts", "stalled", "conserved", "recovery-ms"},
	}
	payload := &ChaosJSON{
		Experiment: "chaos", Quick: o.Quick, GoMaxProcs: runtime.GOMAXPROCS(0),
		Producers: producers, Groups: groups, PerProducer: perProducer,
		FlowsPerProducer: flowsPer, RecoveryBoundMs: recoveryBound.Milliseconds(),
	}

	for _, row := range rows {
		packets := qdisc.EgressPackets(producers, perProducer, flowsPer)
		// Pool IDs are per-producer sequences; the sinks' exactly-once
		// ledger needs globally unique IDs, so re-stamp them.
		for w, set := range packets {
			for i, p := range set {
				p.ID = uint64(w*perProducer+i) + 1
			}
		}
		m := qdisc.NewMultiSharded(qdisc.MultiShardedOptions{
			ShardedOptions: qdisc.ShardedOptions{
				Shards: 8, Buckets: 2500, HorizonNs: 2e9, RingBits: 15,
			},
			Groups: groups,
		})

		sinks := make([]qdisc.EgressSink, groups)
		fsinks := make([]*fault.Sink, groups)
		for g := range sinks {
			fs := fault.NewSink(fault.Profile{
				Name: row.prof.Name, Seed: row.prof.Seed + uint64(g)*0x9E37,
				PanicRate: row.prof.PanicRate, StallRate: row.prof.StallRate,
				ErrRate: row.prof.ErrRate, PartialRate: row.prof.PartialRate,
				SlowRate: row.prof.SlowRate, StallFor: row.prof.StallFor, SlowFor: row.prof.SlowFor,
			})
			fsinks[g], sinks[g] = fs, fs
		}

		srv := m.ServeWith(func() int64 { return int64(2e9) }, sinks, qdisc.ServeOptions{
			Retry:       row.retry,
			MaxRestarts: row.restarts,
			StallWindow: row.stallWin,
		})

		// Producers push concurrently with the workers through the
		// refusable admission path, each counting its own successes so the
		// front's admitted counter is cross-checked, not trusted.
		var offered, admitted atomic.Uint64
		var wg sync.WaitGroup
		for w := range packets {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for _, p := range packets[w] {
					offered.Add(1)
					if m.TryEnqueue(p, 0) {
						admitted.Add(1)
					}
				}
			}(w)
		}

		// Health poller: watch for watchdog stall flags while traffic and
		// faults are live (the flag self-clears when the group moves again,
		// so it must be sampled, not read at the end).
		var stalledSeen atomic.Uint64
		pollDone := make(chan struct{})
		var pollWG sync.WaitGroup
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			for {
				select {
				case <-pollDone:
					return
				default:
				}
				for _, h := range srv.Health() {
					if h.Stalled {
						stalledSeen.Add(1)
					}
				}
				time.Sleep(time.Millisecond)
			}
		}()

		wg.Wait()
		rep := srv.Stop()
		close(pollDone)
		pollWG.Wait()

		// Workers are joined: the sinks' ledgers are safe to read.
		var unique, dups, restarts uint64
		for _, fs := range fsinks {
			unique += fs.Unique()
			dups += fs.Dups()
		}
		for _, h := range srv.Health() {
			restarts += h.Restarts
		}
		eg := m.Egress().Snapshot()
		lost := rep.Admitted - rep.Txd - rep.Dropped - rep.Released

		// The row's invariants. Violations are recorded as notes (and in the
		// JSON payload) so the bench run itself surfaces them.
		fail := func(format string, args ...any) {
			res.Notes = append(res.Notes,
				fmt.Sprintf("%s: CHAOS VIOLATION ", row.prof.Name)+fmt.Sprintf(format, args...))
		}
		if offered.Load() != total || admitted.Load() != rep.Admitted || rep.Admitted != m.Admitted() {
			fail("admission ledger: offered %d (want %d), producers admitted %d, front admitted %d",
				offered.Load(), total, admitted.Load(), rep.Admitted)
		}
		if !rep.Conserved() || lost != 0 {
			fail("conservation: %s", rep)
		}
		if unique != rep.Txd || dups != 0 {
			fail("sink ledger: unique %d vs txd %d, dups %d", unique, rep.Txd, dups)
		}
		if eg.Dropped() != rep.Dropped ||
			eg.DeadlineDrops+eg.RetryDrops+eg.FailedDrops != rep.Dropped {
			fail("drop attribution: %d+%d+%d reasons vs %d dropped",
				eg.DeadlineDrops, eg.RetryDrops, eg.FailedDrops, rep.Dropped)
		}
		if row.wantDrops && rep.Dropped == 0 {
			fail("expected the profile to force drops, saw none")
		}
		if !row.wantDrops && rep.Dropped != 0 {
			fail("profile must not drop, dropped %d", rep.Dropped)
		}
		if rep.Elapsed > recoveryBound {
			fail("recovery: drain took %s (bound %s)", rep.Elapsed, recoveryBound)
		}
		if m.State() != qdisc.StateClosed {
			fail("state: %s after Stop", m.State())
		}

		t.AddRow(row.prof.Name,
			fmt.Sprintf("%d", rep.Admitted),
			fmt.Sprintf("%d", rep.Txd),
			fmt.Sprintf("%d", eg.DeadlineDrops),
			fmt.Sprintf("%d", eg.RetryDrops),
			fmt.Sprintf("%d", eg.FailedDrops),
			fmt.Sprintf("%d", eg.Retries),
			fmt.Sprintf("%d", dups),
			fmt.Sprintf("%d", lost),
			fmt.Sprintf("%d", restarts),
			fmt.Sprintf("%d", stalledSeen.Load()),
			fmt.Sprintf("%v", rep.Conserved()),
			fmt.Sprintf("%.2f", float64(rep.Elapsed.Microseconds())/1000))
		var cs fault.Counts
		for _, fs := range fsinks {
			c := fs.Counts()
			cs.Calls += c.Calls
			cs.Panics += c.Panics
			cs.Stalls += c.Stalls
			cs.Errors += c.Errors
			cs.Partials += c.Partials
			cs.Slows += c.Slows
		}
		payload.Rows = append(payload.Rows, ChaosRowJSON{
			Profile:       row.prof.Name,
			Admitted:      rep.Admitted,
			Txd:           rep.Txd,
			DeadlineDrops: eg.DeadlineDrops,
			RetryDrops:    eg.RetryDrops,
			FailedDrops:   eg.FailedDrops,
			Retries:       eg.Retries,
			BackoffNs:     eg.BackoffNs,
			Dups:          dups,
			Lost:          lost,
			Restarts:      restarts,
			StalledSeen:   stalledSeen.Load(),
			Conserved:     rep.Conserved(),
			RecoveryMs:    float64(rep.Elapsed.Microseconds()) / 1000,
			SinkCalls:     cs.Calls,
			SinkPanics:    cs.Panics,
			SinkStalls:    cs.Stalls,
			SinkErrors:    cs.Errors,
			SinkPartials:  cs.Partials,
			SinkSlows:     cs.Slows,
		})
	}
	res.Tables = append(res.Tables, t)
	res.JSON = payload
	res.Notes = append(res.Notes,
		"drop-dl/drop-budget/drop-failed: per-reason give-ups (deadline exceeded / retry budget exhausted / sink panic budget exhausted); their sum is cross-checked against total dropped",
		"dups/lost: sink-ledger duplicate accepts and admitted-but-never-disposed packets — must be 0 on every row",
		"recovery-ms: Stop's graceful drain wall time, asserted under the 5 s bound",
		"stalled: watchdog stall flags sampled while faults were live (expected >0 only on the stall row, and only when the sampler catches the window)")
	return res
}

// ChaosJSON is the chaos experiment's machine-readable payload
// (cmd/eiffel-bench -json writes it to BENCH_chaos.json).
type ChaosJSON struct {
	Experiment       string         `json:"experiment"`
	Quick            bool           `json:"quick"`
	GoMaxProcs       int            `json:"gomaxprocs"`
	Producers        int            `json:"producers"`
	Groups           int            `json:"groups"`
	PerProducer      int            `json:"per_producer"`
	FlowsPerProducer int            `json:"flows_per_producer"`
	RecoveryBoundMs  int64          `json:"recovery_bound_ms"`
	Rows             []ChaosRowJSON `json:"rows"`
}

// ChaosRowJSON is one fault profile's observed outcome.
type ChaosRowJSON struct {
	Profile       string  `json:"profile"`
	Admitted      uint64  `json:"admitted"`
	Txd           uint64  `json:"txd"`
	DeadlineDrops uint64  `json:"deadline_drops"`
	RetryDrops    uint64  `json:"retry_drops"`
	FailedDrops   uint64  `json:"failed_drops"`
	Retries       uint64  `json:"retries"`
	BackoffNs     uint64  `json:"backoff_ns"`
	Dups          uint64  `json:"dups"`
	Lost          uint64  `json:"lost"`
	Restarts      uint64  `json:"restarts"`
	StalledSeen   uint64  `json:"stalled_seen"`
	Conserved     bool    `json:"conserved"`
	RecoveryMs    float64 `json:"recovery_ms"`
	SinkCalls     uint64  `json:"sink_calls"`
	SinkPanics    uint64  `json:"sink_panics"`
	SinkStalls    uint64  `json:"sink_stalls"`
	SinkErrors    uint64  `json:"sink_errors"`
	SinkPartials  uint64  `json:"sink_partials"`
	SinkSlows     uint64  `json:"sink_slows"`
}
