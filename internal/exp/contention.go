package exp

import (
	"fmt"

	"eiffel/internal/qdisc"
	"eiffel/internal/stats"
)

// Contention is the repo's locked-vs-sharded scaling experiment (not a
// paper figure): it replays the §4 many-senders scenario — 8 producer
// goroutines behind one qdisc — against the kernel-style global-lock
// deployment and against the sharded multi-producer runtime, in both its
// exact-merge and DirectDue configurations. The headline column is the
// sharded/locked throughput ratio; the counters column shows how the
// traffic actually moved (ring fast path vs fallback, average drain batch).
func Contention(o Options) *Result {
	res := &Result{ID: "contention"}
	const producers = 8
	perProducer := 20000
	if o.Quick {
		perProducer = 4000
		res.Notes = append(res.Notes, "quick mode: 4000 packets per producer instead of 20000")
	}

	// producerBatch is the run length batched rows admit per EnqueueBatch
	// call — the harness's producer-batch-size knob.
	const producerBatch = 256

	exact := func() qdisc.Qdisc {
		return qdisc.NewSharded(qdisc.ShardedOptions{
			Shards: 8, Buckets: 2500, HorizonNs: 2e9, RingBits: 15,
		})
	}
	directDue := func() qdisc.Qdisc {
		return qdisc.NewSharded(qdisc.ShardedOptions{
			Shards: 8, Buckets: 2500, HorizonNs: 2e9, RingBits: 15, DirectDue: true,
		})
	}
	entries := []struct {
		name string
		mk   func() qdisc.Qdisc
		opt  qdisc.ContentionOptions
	}{
		{"Eiffel+lock", func() qdisc.Qdisc { return qdisc.NewLocked(qdisc.NewEiffel(20000, 2e9, 0)) }, qdisc.ContentionOptions{}},
		{"Eiffel+shards (exact)", exact, qdisc.ContentionOptions{}},
		{"Eiffel+shards (exact, batched)", exact, qdisc.ContentionOptions{ProducerBatch: producerBatch}},
		{"Eiffel+shards (direct-due)", directDue, qdisc.ContentionOptions{}},
		{"Eiffel+shards (direct-due, batched)", directDue, qdisc.ContentionOptions{ProducerBatch: producerBatch}},
	}

	t := &stats.Table{
		Title:   "Contention — 8 producers vs one consumer through a shaping qdisc",
		Headers: []string{"qdisc", "producers", "packets", "Mpps", "vs lock", "counters"},
	}
	packets := qdisc.ContentionPackets(producers, perProducer)
	var lockedMpps float64
	for _, e := range entries {
		q := e.mk()
		r := qdisc.ReplayContentionOpts(q, packets, e.opt)
		mpps := r.Mpps()
		if lockedMpps == 0 {
			lockedMpps = mpps
		}
		counters := "-"
		if s, ok := q.(*qdisc.Sharded); ok {
			counters = s.Stats().String()
		}
		t.AddRow(e.name,
			fmt.Sprintf("%d", producers),
			fmt.Sprintf("%d", r.Packets),
			fmt.Sprintf("%.2f", mpps),
			fmt.Sprintf("%.2fx", mpps/lockedMpps),
			counters)
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"release times spread over the 2 s horizon; consumer drains at now = horizon",
		fmt.Sprintf("batched rows admit packets in runs of %d via EnqueueBatch (staging + multi-slot ring claims)", producerBatch))
	return res
}
