package exp

import (
	"fmt"
	"runtime"

	"eiffel/internal/qdisc"
	"eiffel/internal/stats"
)

// Contention is the repo's locked-vs-sharded scaling experiment (not a
// paper figure): it replays the §4 many-senders scenario — 8 producer
// goroutines behind one qdisc — against the kernel-style global-lock
// deployment and against the sharded multi-producer runtime, in both its
// exact-merge and DirectDue configurations. The headline column is the
// sharded/locked throughput ratio; the counters column shows how the
// traffic actually moved (ring fast path vs fallback, average drain batch).
func Contention(o Options) *Result {
	res := &Result{ID: "contention"}
	const producers = 8
	perProducer := 20000
	if o.Quick {
		perProducer = 4000
		res.Notes = append(res.Notes, "quick mode: 4000 packets per producer instead of 20000")
	}

	// producerBatch is the run length batched rows admit per EnqueueBatch
	// call — the harness's producer-batch-size knob.
	const producerBatch = 256

	exact := func() qdisc.Qdisc {
		return qdisc.NewSharded(qdisc.ShardedOptions{
			Shards: 8, Buckets: 2500, HorizonNs: 2e9, RingBits: 15,
		})
	}
	directDue := func() qdisc.Qdisc {
		return qdisc.NewSharded(qdisc.ShardedOptions{
			Shards: 8, Buckets: 2500, HorizonNs: 2e9, RingBits: 15, DirectDue: true,
		})
	}
	entries := []struct {
		name string
		mk   func() qdisc.Qdisc
		opt  qdisc.ContentionOptions
	}{
		{"Eiffel+lock", func() qdisc.Qdisc { return qdisc.NewLocked(qdisc.NewEiffel(20000, 2e9, 0)) }, qdisc.ContentionOptions{}},
		{"Eiffel+shards (exact)", exact, qdisc.ContentionOptions{}},
		{"Eiffel+shards (exact, batched)", exact, qdisc.ContentionOptions{ProducerBatch: producerBatch}},
		{"Eiffel+shards (direct-due)", directDue, qdisc.ContentionOptions{}},
		{"Eiffel+shards (direct-due, batched)", directDue, qdisc.ContentionOptions{ProducerBatch: producerBatch}},
	}

	t := &stats.Table{
		Title:   "Contention — 8 producers vs one consumer through a shaping qdisc",
		Headers: []string{"qdisc", "producers", "packets", "Mpps", "vs lock", "allocs/op", "counters"},
	}
	payload := &ContentionJSON{
		Experiment: "contention", Quick: o.Quick, GoMaxProcs: runtime.GOMAXPROCS(0),
		Producers: producers, PerProducer: perProducer, ProducerBatch: producerBatch,
	}
	packets := qdisc.ContentionPackets(producers, perProducer)
	var lockedMpps float64
	for _, e := range entries {
		q := e.mk()
		mpps, allocs := measuredReplay(q, packets, 3, e.opt)
		if lockedMpps == 0 {
			lockedMpps = mpps
		}
		counters := "-"
		var amort float64
		if s, ok := q.(*qdisc.Sharded); ok {
			snap := s.Stats()
			counters = snap.String()
			amort = amortization(snap.BulkClaimed, snap.BulkClaims)
		}
		t.AddRow(e.name,
			fmt.Sprintf("%d", producers),
			fmt.Sprintf("%d", producers*perProducer),
			fmt.Sprintf("%.2f", mpps),
			fmt.Sprintf("%.2fx", mpps/lockedMpps),
			fmt.Sprintf("%.3f", allocs),
			counters)
		payload.Rows = append(payload.Rows, ContentionRowJSON{
			Qdisc:        e.name,
			Batched:      e.opt.ProducerBatch > 1,
			Packets:      producers * perProducer,
			Mpps:         mpps,
			VsLock:       mpps / lockedMpps,
			AllocsPerOp:  allocs,
			Amortization: amort,
		})
	}
	res.Tables = append(res.Tables, t)
	res.JSON = payload
	res.Notes = append(res.Notes,
		"release times spread over the 2 s horizon; consumer drains at now = horizon",
		fmt.Sprintf("batched rows admit packets in runs of %d via EnqueueBatch (staging + multi-slot ring claims)", producerBatch),
		"Mpps: best of 3 replays on one instance; allocs/op: Mallocs delta per packet over the post-warmup replays")
	return res
}

// ContentionJSON is the contention experiment's machine-readable payload
// (cmd/eiffel-bench -json writes it to BENCH_contention.json).
type ContentionJSON struct {
	Experiment    string              `json:"experiment"`
	Quick         bool                `json:"quick"`
	GoMaxProcs    int                 `json:"gomaxprocs"`
	Producers     int                 `json:"producers"`
	PerProducer   int                 `json:"per_producer"`
	ProducerBatch int                 `json:"producer_batch"`
	Rows          []ContentionRowJSON `json:"rows"`
}

// ContentionRowJSON is one contention configuration's observed outcome.
type ContentionRowJSON struct {
	Qdisc        string  `json:"qdisc"`
	Batched      bool    `json:"batched"`
	Packets      int     `json:"packets"`
	Mpps         float64 `json:"mpps"`
	VsLock       float64 `json:"vs_lock"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	Amortization float64 `json:"claim_amortization"`
}
