// Package exp is the experiment harness: one runner per table and figure
// of the paper's evaluation (§5), each regenerating the corresponding rows
// or series on this machine's substrates. cmd/eiffel-bench drives the
// runners; the repo-root benchmarks wrap them in testing.B targets.
package exp

import (
	"fmt"
	"time"

	"eiffel/internal/bucket"
	"eiffel/internal/queue"
	"eiffel/internal/stats"
	"eiffel/internal/workload"
)

// Options scales experiments. Quick shrinks workloads to seconds-scale
// runs (CI; benches); full mode approaches paper-scale parameters.
type Options struct {
	// Quick selects reduced parameters.
	Quick bool
	// Seed drives workload randomness.
	Seed int64
}

func (o Options) budget() time.Duration {
	if o.Quick {
		return 20 * time.Millisecond
	}
	return 200 * time.Millisecond
}

// Result is one experiment's rendered output plus its raw series.
type Result struct {
	// ID is the experiment identifier ("fig16" etc.).
	ID string
	// Tables holds the rendered output.
	Tables []*stats.Table
	// Notes records scaling substitutions applied.
	Notes []string
	// JSON, when non-nil, is the experiment's machine-readable payload:
	// cmd/eiffel-bench -json writes it to BENCH_<ID>.json, the per-PR
	// perf-trajectory artifact the ROADMAP asks for.
	JSON any
}

// String renders all tables.
func (r *Result) String() string {
	s := fmt.Sprintf("=== %s ===\n", r.ID)
	for _, t := range r.Tables {
		s += t.String() + "\n"
	}
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// microQueue is the minimal surface the fill/drain microbenchmarks need.
type microQueue interface {
	Enqueue(n *bucket.Node, rank uint64)
	DequeueMin() *bucket.Node
	Len() int
}

// drainRate fills a queue from ranks() and drains it fully, repeatedly,
// until the time budget elapses; it returns million packets/second over
// the timed drains (the §5.2 methodology: "the queue is initially filled
// ...; then packets are dequeued").
func drainRate(mk func() microQueue, total int, ranks func(i int) uint64, budget time.Duration) float64 {
	q := mk()
	nodes := make([]*bucket.Node, total)
	for i := range nodes {
		nodes[i] = &bucket.Node{}
	}
	var timed time.Duration
	var ops int
	for timed < budget {
		for i, n := range nodes {
			q.Enqueue(n, ranks(i))
		}
		t0 := time.Now()
		for q.DequeueMin() != nil {
		}
		timed += time.Since(t0)
		ops += total
	}
	return float64(ops) / timed.Seconds() / 1e6
}

// mkKind adapts the queue registry to microQueue.
func mkKind(k queue.Kind, buckets int) func() microQueue {
	return func() microQueue {
		return queue.New(k, queue.Config{NumBuckets: buckets, Granularity: 1})
	}
}

// uniformFill spreads cnt packets as evenly as possible over buckets
// (ppb packets per bucket when cnt = ppb*buckets).
func uniformFill(buckets int) func(i int) uint64 {
	return func(i int) uint64 { return uint64(i % buckets) }
}

// fractionFill occupies only the first frac of a shuffled bucket set with
// one packet each.
func fractionFill(buckets int, frac float64, seed int64) func(i int) uint64 {
	perm := permutedBuckets(buckets, seed)
	occupied := int(frac * float64(buckets))
	if occupied < 1 {
		occupied = 1
	}
	return func(i int) uint64 { return uint64(perm[i%occupied]) }
}

func permutedBuckets(buckets int, seed int64) []int {
	rng := newRng(seed)
	perm := rng.Perm(buckets)
	return perm
}

var _ = workload.RankUniform // workload is used by other files in this package
