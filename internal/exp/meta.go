package exp

import (
	"fmt"
	"sort"

	"eiffel/internal/queue"
	"eiffel/internal/stats"
)

// Table1 prints the paper's system-comparison matrix for the
// implementations in this repository. The rows are asserted by capability
// tests in exp_test.go, so the table reflects what the code actually does
// rather than what a comment claims.
func Table1(Options) *Result {
	res := &Result{ID: "table1"}
	t := &stats.Table{
		Title: "Table 1 — scheduling systems implemented in this repository",
		Headers: []string{
			"System", "Efficiency", "Unit", "WorkConserving", "Shaping", "Programmable",
		},
	}
	t.AddRow("FQ/pacing qdisc", "O(log n)", "Flows", "No", "Yes", "No")
	t.AddRow("hClock (heap)", "O(log n)", "Flows", "Yes", "Yes", "No")
	t.AddRow("Carousel (wheel)", "O(1)", "Packets", "No", "Yes", "No")
	t.AddRow("PIFO model", "O(1)", "Packets", "Yes", "Yes", "On enq")
	t.AddRow("Eiffel", "O(1)", "Packets & Flows", "Yes", "Yes", "On enq/deq")
	res.Tables = append(res.Tables, t)
	return res
}

// Figure20 exercises the decision-tree guide on the paper's own examples
// and prints the recommendation each receives.
func Figure20(Options) *Result {
	res := &Result{ID: "fig20"}
	t := &stats.Table{
		Title:   "Figure 20 — queue choice for representative policies",
		Headers: []string{"policy", "moving range", "levels", "uniform", "choose"},
	}
	cases := []struct {
		name string
		c    queue.Characteristics
	}{
		{"802.1Q strict priority (8 levels)", queue.Characteristics{PriorityLevels: 8}},
		{"pFabric remaining size", queue.Characteristics{PriorityLevels: 100000}},
		{"per-flow rate limiting (Carousel)", queue.Characteristics{MovingRange: true, PriorityLevels: 20000}},
		{"LSTF / hClock tags", queue.Characteristics{MovingRange: true, PriorityLevels: 20000, UniformOccupancy: true}},
	}
	for _, c := range cases {
		t.AddRow(c.name,
			fmt.Sprintf("%v", c.c.MovingRange),
			fmt.Sprintf("%d", c.c.PriorityLevels),
			fmt.Sprintf("%v", c.c.UniformOccupancy),
			queue.Choose(c.c).String())
	}
	res.Tables = append(res.Tables, t)
	return res
}

// Runner is a named experiment entry point.
type Runner func(Options) *Result

// Registry maps experiment ids to runners.
var Registry = map[string]Runner{
	"table1":                Table1,
	"fig9":                  Figure9,
	"fig10":                 Figure10,
	"fig12":                 Figure12,
	"fig13":                 Figure13,
	"fig15":                 Figure15,
	"fig16":                 Figure16,
	"fig17":                 Figure17,
	"fig18":                 Figure18,
	"fig19":                 Figure19,
	"fig20":                 Figure20,
	"ablation-hier-vs-flat": AblationHierVsFlat,
	"ablation-redistribute": AblationRedistribution,
	"ablation-alpha":        AblationAlpha,
	"ablation-backends":     AblationComparisonQueues,
	"ablation-shaper":       AblationShaperBackend,
	"approx":                Approx,
	"chaos":                 Chaos,
	"churn":                 Churn,
	"contention":            Contention,
	"egress":                Egress,
	"shapedsched":           ShapedSched,
	"policysched":           PolicySched,
	"hiersched":             HierSched,
}

// Names returns registry keys in stable order.
func Names() []string {
	names := make([]string, 0, len(Registry))
	for k := range Registry {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
