package shardq

import (
	"math/rand"
	"strings"
	"testing"

	"eiffel/internal/bucket"
	"eiffel/internal/queue"
)

func newExactQ(shards int, ringBits uint) *Q {
	return New(Options{
		NumShards: shards,
		RingBits:  ringBits,
		Queue:     queue.Config{NumBuckets: 1 << 12, Granularity: 1},
	})
}

func TestProducerStagesUntilFlush(t *testing.T) {
	q := newExactQ(4, 10)
	p := q.NewProducer(16)
	nodes := make([]bucket.Node, 10)
	for i := range nodes {
		p.Enqueue(uint64(i), &nodes[i], uint64(i))
	}
	if got := p.Staged(); got != 10 {
		t.Fatalf("Staged = %d, want 10", got)
	}
	if got := q.Len(); got != 0 {
		t.Fatalf("Len = %d before Flush, want 0 (staged elements are unpublished)", got)
	}
	p.Flush()
	if got := p.Staged(); got != 0 {
		t.Fatalf("Staged = %d after Flush, want 0", got)
	}
	if got := q.Len(); got != 10 {
		t.Fatalf("Len = %d after Flush, want 10", got)
	}
	st := q.Stats()
	if st.BulkClaims == 0 || st.BulkClaimed != 10 {
		t.Fatalf("bulk counters = %d claims / %d claimed, want >0 / 10", st.BulkClaims, st.BulkClaimed)
	}
	out := make([]*bucket.Node, 16)
	if got := q.DequeueBatch(^uint64(0), out); got != 10 {
		t.Fatalf("DequeueBatch = %d, want 10", got)
	}
}

// TestProducerAutoFlushAtCapacity checks that a shard's staging buffer
// publishes itself when it fills, without an explicit Flush.
func TestProducerAutoFlushAtCapacity(t *testing.T) {
	q := newExactQ(1, 10) // one shard: every element stages on the same buffer
	p := q.NewProducer(8)
	nodes := make([]bucket.Node, 8)
	for i := range nodes {
		p.Enqueue(0, &nodes[i], uint64(i))
	}
	if got := p.Staged(); got != 0 {
		t.Fatalf("Staged = %d after filling the buffer, want 0 (auto-flush)", got)
	}
	if got := q.Len(); got != 8 {
		t.Fatalf("Len = %d after auto-flush, want 8", got)
	}
}

// TestProducerRingFullFallback forces staged runs through the locked
// fallback: a ring much smaller than the staged batch must spill the
// remainder straight into the bucketed queue, losing nothing and keeping
// per-shard FIFO order.
func TestProducerRingFullFallback(t *testing.T) {
	q := newExactQ(1, 2) // 4-slot ring
	p := q.NewProducer(64)
	const n = 40
	nodes := make([]bucket.Node, n)
	for i := range nodes {
		nodes[i].Data = i
		p.Enqueue(0, &nodes[i], 7) // same rank: drain order is pure FIFO
	}
	p.Flush()
	if got := q.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	st := q.Stats()
	if st.RingFull == 0 {
		t.Fatalf("RingFull = 0, want >0 (ring has 4 slots, %d staged)", n)
	}
	out := make([]*bucket.Node, n)
	if got := q.DequeueBatch(^uint64(0), out); got != n {
		t.Fatalf("DequeueBatch = %d, want %d", got, n)
	}
	for i, nd := range out {
		if nd.Data.(int) != i {
			t.Fatalf("position %d: element %d — fallback broke FIFO order", i, nd.Data.(int))
		}
	}
}

func TestSnapshotStringBulkCounters(t *testing.T) {
	s := Snapshot{RingPushes: 10, BulkClaims: 2, BulkClaimed: 9}
	if got := s.String(); !strings.Contains(got, "bulk-claims=2") || !strings.Contains(got, "avg-claim=4.5") {
		t.Fatalf("String() = %q, want bulk-claims=2 and avg-claim=4.5", got)
	}
	if got := (Snapshot{RingPushes: 3}).String(); strings.Contains(got, "bulk") {
		t.Fatalf("String() = %q: bulk counters rendered despite no bulk claims", got)
	}
}

// drainAll drains q completely in exact mode, returning the elements'
// Data annotations in release order.
func drainAll(q *Q, chunk int) []int {
	out := make([]*bucket.Node, chunk)
	var got []int
	for {
		k := q.DequeueBatch(^uint64(0), out)
		if k == 0 {
			return got
		}
		for _, n := range out[:k] {
			got = append(got, n.Data.(int))
		}
	}
}

// TestBatchVsPerElementEquivalence is the batching correctness property:
// the SAME randomized (flow, rank) workload admitted per element, through
// a staging Producer (random flush points), and through EnqueueBatch
// (random run lengths) must produce byte-identical exact-mode DequeueBatch
// sequences — batching is a transport optimization, never a reordering.
func TestBatchVsPerElementEquivalence(t *testing.T) {
	seeds := []int64{1, 7, 42}
	size := 2000
	if !testing.Short() {
		seeds = append(seeds, 1001, 90210)
		size = 20000
	}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		flows := make([]uint64, size)
		ranks := make([]uint64, size)
		for i := range flows {
			flows[i] = uint64(rng.Intn(97))
			ranks[i] = uint64(rng.Intn(1 << 11))
		}
		mkNodes := func() []bucket.Node {
			nodes := make([]bucket.Node, size)
			for i := range nodes {
				nodes[i].Data = i
			}
			return nodes
		}

		// Per-element reference.
		ref := newExactQ(4, 8)
		refNodes := mkNodes()
		for i := range refNodes {
			ref.Enqueue(flows[i], &refNodes[i], ranks[i])
		}
		want := drainAll(ref, 37)
		if len(want) != size {
			t.Fatalf("seed %d: reference drained %d of %d", seed, len(want), size)
		}

		// Staging Producer with random flush points and a small ring, so
		// partial claims and fallbacks interleave with clean bulk claims.
		pq := newExactQ(4, 8)
		pqNodes := mkNodes()
		prod := pq.NewProducer(1 + rng.Intn(100))
		for i := range pqNodes {
			prod.Enqueue(flows[i], &pqNodes[i], ranks[i])
			if rng.Intn(200) == 0 {
				prod.Flush()
			}
		}
		prod.Flush()
		if got := drainAll(pq, 37); !equalInts(got, want) {
			t.Fatalf("seed %d: Producer admission reordered the drain", seed)
		}

		// EnqueueBatch in random run lengths.
		bq := newExactQ(4, 8)
		bqNodes := mkNodes()
		ns := make([]*Node, size)
		for i := range bqNodes {
			ns[i] = &bqNodes[i]
		}
		for i := 0; i < size; {
			j := i + 1 + rng.Intn(500)
			if j > size {
				j = size
			}
			bq.EnqueueBatch(flows[i:j], ns[i:j], ranks[i:j])
			i = j
		}
		if got := drainAll(bq, 37); !equalInts(got, want) {
			t.Fatalf("seed %d: EnqueueBatch admission reordered the drain", seed)
		}
	}
}

// TestShapedBatchVsPerElementEquivalence is the shaped variant: random
// (flow, sendAt, rank) workloads admitted per element and through a
// ShapedProducer must release identically across a rising now sweep —
// batching must disturb neither the release gating nor the priority
// merge. Rings are sized to absorb the whole burst (asserted below):
// a ring-full fallback detours elements through the shaper, whose
// sendAt-bucket order legitimately re-orders equal-rank arrivals relative
// to the ring path — identically possible under per-element admission,
// but dependent on WHERE the fallback strikes, so exact sequence equality
// is only defined on the fallback-free path.
func TestShapedBatchVsPerElementEquivalence(t *testing.T) {
	seeds := []int64{3, 19}
	size := 2000
	if !testing.Short() {
		seeds = append(seeds, 4242)
		size = 20000
	}
	const horizon = 1 << 12
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		flows := make([]uint64, size)
		sendAts := make([]uint64, size)
		ranks := make([]uint64, size)
		for i := range flows {
			flows[i] = uint64(rng.Intn(97))
			sendAts[i] = uint64(rng.Intn(horizon))
			ranks[i] = uint64(rng.Intn(1 << 11))
		}
		mkElems := func() []*elem {
			es := make([]*elem, size)
			for i := range es {
				es[i] = newElem(sendAts[i], ranks[i])
				es[i].timer.Data = es[i] // already set, but keep explicit
			}
			return es
		}
		drain := func(q *Shaped) []*elem {
			out := make([]*bucket.Node, 53)
			var got []*elem
			// Rising now sweep: partial eligibility at every step, full
			// drain at the horizon.
			for _, now := range []uint64{horizon / 7, horizon / 3, horizon / 2, horizon} {
				for {
					k := q.DequeueBatch(now, ^uint64(0), out)
					if k == 0 {
						break
					}
					for _, n := range out[:k] {
						got = append(got, n.Data.(*elem))
					}
				}
			}
			return got
		}

		ref := newShapedQ(4, 14)
		refEs := mkElems()
		for i, e := range refEs {
			ref.Enqueue(flows[i], &e.timer, sendAts[i], ranks[i])
		}
		want := drain(ref)
		if len(want) != size {
			t.Fatalf("seed %d: reference drained %d of %d", seed, len(want), size)
		}

		pq := newShapedQ(4, 14)
		pqEs := mkElems()
		prod := pq.NewProducer(1 + rng.Intn(100))
		for i, e := range pqEs {
			prod.Enqueue(flows[i], &e.timer, sendAts[i], ranks[i])
			if rng.Intn(200) == 0 {
				prod.Flush()
			}
		}
		prod.Flush()
		if st := pq.Stats(); st.RingFull != 0 {
			t.Fatalf("seed %d: %d ring-full fallbacks — ring must absorb the burst for exact equivalence", seed, st.RingFull)
		}
		got := drain(pq)
		if len(got) != size {
			t.Fatalf("seed %d: batched drained %d of %d", seed, len(got), size)
		}
		refIdx := make(map[*elem]int, size)
		for i, e := range refEs {
			refIdx[e] = i
		}
		gotIdx := make(map[*elem]int, size)
		for i, e := range pqEs {
			gotIdx[e] = i
		}
		for i := range want {
			if refIdx[want[i]] != gotIdx[got[i]] {
				t.Fatalf("seed %d: position %d diverged (want workload index %d, got %d)",
					seed, i, refIdx[want[i]], gotIdx[got[i]])
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
