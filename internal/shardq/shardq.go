package shardq

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"eiffel/internal/bucket"
	"eiffel/internal/queue"
	"eiffel/internal/stats"
)

// flushChunk is how many ring elements a locked flush moves per backend
// call: big enough to amortize the interface dispatch away, small enough
// to stay cache-resident.
const flushChunk = 256

// Node is the intrusive handle the runtime moves around — the same
// bucket.Node every queue in this repository shares, so callers can point
// an existing packet or flow handle at a sharded runtime unchanged.
type Node = bucket.Node

// Options sizes a sharded runtime.
type Options struct {
	// NumShards is the shard count, rounded up to a power of two
	// (default 8). Each shard owns an independent queue backend.
	NumShards int
	// RingBits sizes each shard's MPSC ring at 1<<RingBits slots
	// (default 10, i.e. 1024).
	RingBits uint
	// Kind selects the per-shard queue backend (default KindCFFS — the
	// Eiffel configuration).
	Kind queue.Kind
	// Queue sizes each shard's backend; see queue.Config.
	Queue queue.Config
	// NumGroups partitions the shards into independent consumer groups,
	// rounded up to a power of two and clamped to NumShards (default 1).
	// Group g owns the contiguous shard range [g*NumShards/NumGroups,
	// (g+1)*NumShards/NumGroups); each group's drain surface
	// (GroupDequeueBatch, GroupMinRank, GroupFlush) may be driven by its
	// own goroutine concurrently with every other group's — the parallel-
	// egress topology, one drain worker per NIC TX queue. Flow-hash
	// confinement means no flow ever spans shards, hence never spans
	// groups, so per-flow dequeue order is exactly the single-consumer
	// order; only the cross-group interleaving is relaxed.
	NumGroups int
	// Backend, when non-nil, supplies shard i's Scheduler backend directly
	// and overrides Kind/Queue. This is the programmable-policy hook: the
	// factory runs once per shard at construction, so each shard owns a
	// private backend instance (e.g. an extended-PIFO tree plus its policy
	// program) and the flow-hash sharding keeps every flow's backlog
	// confined to that instance.
	Backend func(shard int) Scheduler
	// ShardBound caps each shard's published occupancy (ring plus
	// bucketed queue) for the bounded-admission paths (TryEnqueue,
	// Producer.FlushAdmit): elements that would push a shard past the
	// bound are refused and reported back instead of spilling into the
	// locked fallback queue. 0 (the default) keeps the legacy unbounded
	// spill behavior. See admit.go for the exactness contract.
	ShardBound int
	// DirectDue coalesces every already-due element (rank <= the drain
	// bound) into one virtual FIFO bucket: the consumer delivers such
	// elements straight off the rings, skipping the bucketed queue
	// entirely. This is the limiting case of the paper's bucket
	// quantization — elements within one bucket already release in FIFO
	// rather than rank order, and DirectDue treats the whole overdue
	// range as that bucket. Elements ahead of the bound are still shaped
	// exactly. Trades release order among late elements for a large cut
	// in per-element work.
	DirectDue bool
}

func (o Options) withDefaults() Options {
	if o.NumShards <= 0 {
		o.NumShards = 8
	}
	if o.NumShards&(o.NumShards-1) != 0 {
		o.NumShards = 1 << bits.Len(uint(o.NumShards))
	}
	if o.RingBits == 0 {
		o.RingBits = 10
	}
	if o.NumGroups <= 0 {
		o.NumGroups = 1
	}
	if o.NumGroups&(o.NumGroups-1) != 0 {
		o.NumGroups = 1 << bits.Len(uint(o.NumGroups))
	}
	if o.NumGroups > o.NumShards {
		o.NumGroups = o.NumShards
	}
	return o
}

// shard is one partition: a lock-free publication ring in front of a
// mutex-protected Scheduler backend. The mutex is uncontended in steady
// state — producers only take it when their ring fills, and the consumer
// amortizes it over whole batches.
type shard struct {
	ring *ring
	mu   sync.Mutex
	q    Scheduler
	qa   AuxScheduler // q, if it consumes the ring's aux word

	// qlen mirrors q.Len() so Len readers need no lock: updated under mu
	// (fallback path) or by the consumer, amortized per batch.
	qlen atomic.Int64

	// fallbackGen counts producer-side fallback flushes (bumped under
	// mu). The consumer caches each shard's head rank between batches and
	// only re-peeks when this generation moves or its ring is non-empty.
	fallbackGen atomic.Uint32

	// flushNs/flushRanks/flushAux stage ring pops so a locked flush hands
	// the backend whole runs through one EnqueueBatch call instead of one
	// interface dispatch per element. Guarded by mu. Like the ring, the
	// staging retains its last run of node pointers until overwritten —
	// bounded, and the nodes live on in the bucketed queue anyway.
	//
	//eiffel:guarded(mu)
	flushNs []*bucket.Node
	//eiffel:guarded(mu)
	flushRanks []uint64
	//eiffel:guarded(mu)
	flushAux []uint64 // staged only for AuxScheduler backends

	_ [64]byte // one shard's lock traffic must not false-share the next's
}

// flushLocked drains the ring into the bucketed queue in staged runs.
// Aux-aware backends receive the full (rank, aux) payload. Callers hold
// mu.
//
//eiffel:locked(mu)
//eiffel:hotpath
func (s *shard) flushLocked() (drained int) {
	for {
		k := 0
		if s.qa != nil {
			for k < len(s.flushNs) {
				n, rank, aux, ok := s.ring.pop()
				if !ok {
					break
				}
				s.flushNs[k], s.flushRanks[k], s.flushAux[k] = n, rank, aux
				k++
			}
		} else {
			for k < len(s.flushNs) {
				n, rank, _, ok := s.ring.pop()
				if !ok {
					break
				}
				s.flushNs[k], s.flushRanks[k] = n, rank
				k++
			}
		}
		if k == 0 {
			break
		}
		s.enqueueRunLocked(k)
		drained += k
		if k < len(s.flushNs) {
			break
		}
	}
	if drained > 0 {
		s.qlen.Add(int64(drained))
		s.ring.publish()
	}
	return drained
}

// enqueueRunLocked hands the first k staged elements to the backend in
// one call. Callers hold mu.
//
//eiffel:locked(mu)
//eiffel:hotpath
func (s *shard) enqueueRunLocked(k int) {
	if s.qa != nil {
		s.qa.EnqueueBatchAux(s.flushNs[:k], s.flushRanks[:k], s.flushAux[:k])
		return
	}
	s.q.EnqueueBatch(s.flushNs[:k], s.flushRanks[:k])
}

// enqueuePubsLocked moves a staged run that never made it into the ring
// (a Producer's ring-full fallback) into the backend, converting through
// the flush scratch so the backend still sees whole runs. Callers hold mu
// and settle qlen themselves.
//
//eiffel:locked(mu)
//eiffel:hotpath
func (s *shard) enqueuePubsLocked(pubs []pub) {
	for len(pubs) > 0 {
		k := len(s.flushNs)
		if k > len(pubs) {
			k = len(pubs)
		}
		for j := 0; j < k; j++ {
			s.flushNs[j], s.flushRanks[j] = pubs[j].n, pubs[j].rank
			if s.qa != nil {
				s.flushAux[j] = pubs[j].aux
			}
		}
		s.enqueueRunLocked(k)
		pubs = pubs[k:]
	}
}

// Snapshot is a point-in-time copy of the runtime's operational counters.
type Snapshot struct {
	// RingPushes counts enqueues that took the lock-free fast path
	// (slots claimed, whether one at a time or in bulk).
	RingPushes uint64
	// RingFull counts enqueues that found their ring full and flushed it
	// into the bucketed queue themselves, under the shard lock.
	RingFull uint64
	// BulkClaims counts pushN calls that claimed at least one slot — the
	// number of tail CASes the batched producer path performed.
	BulkClaims uint64
	// BulkClaimed counts slots claimed through pushN. BulkClaimed /
	// BulkClaims is the producer-side amortization factor: how many
	// enqueues each CAS carried.
	BulkClaimed uint64
	// Flushes counts ring drains that moved at least one element into a
	// bucketed queue (producer fallback and consumer side).
	Flushes uint64
	// Flushed counts elements moved from rings into bucketed queues.
	Flushed uint64
	// Direct counts elements delivered straight from rings to the
	// consumer by DirectDue, never touching a bucketed queue.
	Direct uint64
	// Migrated counts elements moved shaper→scheduler by the shaped
	// runtime when their release time arrived (zero for plain runtimes).
	Migrated uint64
	// Batches counts DequeueBatch calls that returned at least one node.
	Batches uint64
	// Batched counts nodes returned by DequeueBatch.
	Batched uint64
	// Rejected counts elements refused by the bounded-admission paths
	// (zero unless Options.ShardBound is set).
	Rejected uint64
}

// String renders the counters compactly for experiment tables.
func (s Snapshot) String() string {
	avg := 0.0
	if s.Batches > 0 {
		avg = float64(s.Batched) / float64(s.Batches)
	}
	out := fmt.Sprintf("pushes=%d ringfull=%d flushes=%d flushed=%d direct=%d batches=%d avg-batch=%.1f",
		s.RingPushes, s.RingFull, s.Flushes, s.Flushed, s.Direct, s.Batches, avg)
	if s.BulkClaims > 0 {
		out += fmt.Sprintf(" bulk-claims=%d avg-claim=%.1f",
			s.BulkClaims, float64(s.BulkClaimed)/float64(s.BulkClaims))
	}
	if s.Migrated > 0 {
		out += fmt.Sprintf(" migrated=%d", s.Migrated)
	}
	if s.Rejected > 0 {
		out += fmt.Sprintf(" rejected=%d", s.Rejected)
	}
	return out
}

// Q is the sharded multi-producer runtime. Enqueue is safe from any number
// of goroutines concurrently. The consuming side is partitioned into
// consumer groups (Options.NumGroups, default 1): each group owns a
// disjoint contiguous slice of the shards, and each group's drain surface
// (GroupDequeueBatch, GroupMinRank, GroupFlush) must be driven by a single
// goroutine at a time — one drain worker per group, exactly like one NIC
// TX queue's softirq. Distinct groups may be driven concurrently with no
// synchronization between their workers beyond the per-shard state they
// never share. The group-less surface (DequeueBatch, DequeueMin, MinRank,
// Flush) serves every group from the calling goroutine and requires
// exclusive access to ALL of them — the single-consumer deployment,
// unchanged (and with the default single group, byte-for-byte the same
// drain behavior as before groups existed).
type Q struct {
	shards    []shard
	shardBits uint
	directDue bool

	// bound is Options.ShardBound (0 = unbounded); rejected counts
	// refusals runtime-wide. Both are dead weight unless a bound is set.
	bound    int64
	rejected stats.Counter

	// closed quiesces the refusable admission paths (see Close): once set,
	// TryEnqueue and FlushAdmit refuse everything with PushClosed.
	closed atomic.Bool

	// admitting counts refusable admissions in flight between their closed
	// check and their publication (or refusal). A closing drain waits for
	// it to reach zero (AdmitIdle) before trusting Len: a producer that
	// passed the closed check pre-Close may publish arbitrarily late, and
	// a drain that exited on Len()==0 alone would strand that packet in a
	// closed front.
	admitting atomic.Int64

	// groups holds each consumer group's private drain state; groupShift
	// maps a shard index to its owning group (shard >> groupShift).
	groups     []groupState
	groupShift uint

	// prodPool recycles staging Producers for the one-shot EnqueueBatch
	// surface, so batch admission stays allocation-free in steady state
	// without a per-goroutine handle.
	prodPool sync.Pool

	// Consumer-side and amortized batch counters; the per-element
	// producer fast path is kept free of bookkeeping atomics (pushes are
	// derived from the ring cursors), and the batched path bumps the bulk
	// counters once per claim, not per element.
	ringFull    stats.Counter
	flushes     stats.Counter
	flushed     stats.Counter
	direct      stats.Counter
	batches     stats.Counter
	batched     stats.Counter
	bulkClaims  stats.Counter
	bulkClaimed stats.Counter
}

type headState struct {
	rank  uint64
	ok    bool
	gen   uint32
	valid bool
}

// groupState is one consumer group's private drain state: the cached head
// ranks for the shards it owns and the DirectDue rotation cursor. Each
// group is driven by (at most) one worker goroutine, and workers for
// distinct groups run concurrently, so the struct is padded to keep one
// worker's cache traffic off its neighbors' lines.
type groupState struct {
	lo, hi int         // the half-open shard index range this group owns
	heads  []headState // heads[i-lo] caches shard i's head rank
	rr     int         // DirectDue rotation cursor, relative to lo

	_ [64]byte
}

// mergeRuns is the cross-shard priority merge both runtimes share: it
// repeatedly serves a run from the shard whose cached head rank is the
// minimum, bounded by the runner-up shard's head (up to there no other
// shard can hold a smaller element) and by maxRank, until out fills or
// nothing at or below maxRank remains. The best shard and the runner-up
// bound come out of ONE pass over the heads, tracking the minimum and
// second-minimum together. serve pops from shard i up to limit, writes
// into out, returns how many it popped, and MUST refresh heads[i] before
// returning — the loop's progress argument: a run that pops nothing still
// raises the shard's cached head past limit.
//
//eiffel:hotpath
func mergeRuns(heads []headState, maxRank uint64, out []*bucket.Node,
	serve func(i int, limit uint64, out []*bucket.Node) int) int {
	total := 0
	for total < len(out) {
		best, second := -1, ^uint64(0)
		for i := range heads {
			if !heads[i].ok {
				continue
			}
			if best < 0 || heads[i].rank < heads[best].rank {
				if best >= 0 {
					second = heads[best].rank // displaced minimum becomes runner-up
				}
				best = i
			} else if heads[i].rank < second {
				second = heads[i].rank
			}
		}
		if best < 0 || heads[best].rank > maxRank {
			break
		}
		limit := maxRank
		if second < limit {
			limit = second
		}
		total += serve(best, limit, out[total:])
	}
	return total
}

// New returns a sharded runtime whose shards each own a backend built from
// opt.Kind and opt.Queue.
func New(opt Options) *Q {
	opt = opt.withDefaults()
	q := &Q{
		shards:    make([]shard, opt.NumShards),
		shardBits: uint(bits.TrailingZeros(uint(opt.NumShards))),
		directDue: opt.DirectDue,
		bound:     int64(opt.ShardBound),
	}
	per := opt.NumShards / opt.NumGroups
	q.groupShift = uint(bits.TrailingZeros(uint(per)))
	q.groups = make([]groupState, opt.NumGroups)
	for g := range q.groups {
		q.groups[g] = groupState{lo: g * per, hi: (g + 1) * per, heads: make([]headState, per)}
	}
	for i := range q.shards {
		q.shards[i].ring = newRing(opt.RingBits)
		if opt.Backend != nil {
			q.shards[i].q = opt.Backend(i)
			q.shards[i].qa, _ = q.shards[i].q.(AuxScheduler)
		} else {
			q.shards[i].q = wrapPQ(queue.New(opt.Kind, opt.Queue))
		}
		//eiffel:allow(lockcheck) construction: the shard is not shared until New returns
		q.shards[i].flushNs = make([]*bucket.Node, flushChunk)
		//eiffel:allow(lockcheck) construction: the shard is not shared until New returns
		q.shards[i].flushRanks = make([]uint64, flushChunk)
		if q.shards[i].qa != nil {
			//eiffel:allow(lockcheck) construction: the shard is not shared until New returns
			q.shards[i].flushAux = make([]uint64, flushChunk)
		}
	}
	q.prodPool.New = func() any { return q.NewProducer(0) }
	return q
}

// NumShards returns the shard count.
func (q *Q) NumShards() int { return len(q.shards) }

// NumGroups returns the consumer-group count.
func (q *Q) NumGroups() int { return len(q.groups) }

// GroupShards returns the half-open shard index range consumer group g
// owns. Groups partition the shards contiguously and evenly.
//
//eiffel:hotpath
func (q *Q) GroupShards(g int) (lo, hi int) { return q.groups[g].lo, q.groups[g].hi }

// GroupFor returns the consumer group that drains flow's shard. Flows
// never span shards, so a flow's packets are only ever drained by this
// one group's worker.
func (q *Q) GroupFor(flow uint64) int { return q.ShardFor(flow) >> q.groupShift }

// WithShardLocked runs fn on shard i's backend under that shard's lock —
// the synchronization context every backend method normally runs in.
// Backend owners (the policy qdisc) use it to touch backend state outside
// the runtime's own locked paths (clock propagation, timer peeks), which
// would otherwise race a producer's ring-full fallback flush into the
// same backend. fn must not call back into q.
//
//eiffel:acquires(shard)
func (q *Q) WithShardLocked(i int, fn func(Scheduler)) {
	s := &q.shards[i]
	s.mu.Lock()
	fn(s.q)
	s.mu.Unlock()
}

// Len returns the number of queued elements (published but not yet
// dequeued). Safe from any goroutine; while producers and the consumer
// are running it may transiently overcount by up to one in-flight batch,
// and it is exact whenever the runtime is quiescent.
//
//eiffel:hotpath
func (q *Q) Len() int {
	var n int64
	for i := range q.shards {
		s := &q.shards[i]
		n += s.ring.occupancy() + s.qlen.Load()
	}
	return int(n)
}

// GroupLen is Len restricted to consumer group g's shards: elements
// published into the group but not yet dequeued, wherever they sit (ring
// or bucketed queue). Safe from any goroutine, same transient-overcount
// contract as Len; the stall watchdog reads it as the group's backlog.
//
//eiffel:hotpath
func (q *Q) GroupLen(g int) int {
	gr := &q.groups[g]
	var n int64
	for i := gr.lo; i < gr.hi; i++ {
		s := &q.shards[i]
		n += s.ring.occupancy() + s.qlen.Load()
	}
	return int(n)
}

// Stats returns a snapshot of the operational counters.
func (q *Q) Stats() Snapshot {
	var pushes uint64
	for i := range q.shards {
		pushes += q.shards[i].ring.pushes()
	}
	return Snapshot{
		RingPushes:  pushes,
		RingFull:    q.ringFull.Load(),
		BulkClaims:  q.bulkClaims.Load(),
		BulkClaimed: q.bulkClaimed.Load(),
		Flushes:     q.flushes.Load(),
		Flushed:     q.flushed.Load(),
		Direct:      q.direct.Load(),
		Batches:     q.batches.Load(),
		Batched:     q.batched.Load(),
		Rejected:    q.rejected.Load(),
	}
}

// ShardFor returns the shard index flow hashes to.
//
//eiffel:hotpath
func (q *Q) ShardFor(flow uint64) int {
	// Fibonacci hashing spreads clustered flow ids (sequential allocation
	// is the common case) uniformly over the shard bits.
	return int((flow * 0x9E3779B97F4A7C15) >> (64 - q.shardBits))
}

// Enqueue publishes n with the given rank on flow's shard. The fast path
// is one lock-free ring push and no other shared-memory writes. When the
// shard's ring is full the producer drains it into the bucketed queue
// itself — backpressure that keeps the ring bounded without dropping or
// blocking.
//
//eiffel:hotpath
func (q *Q) Enqueue(flow uint64, n *bucket.Node, rank uint64) {
	q.EnqueueAux(flow, n, rank, 0)
}

// EnqueueAux is Enqueue carrying the ring's second payload word: aux is
// delivered to AuxScheduler backends (and dropped by plain ones). This is
// the producer half of the packet-free policy pipeline — the producer
// resolves both keys while the element is cache-hot and the consumer
// never has to.
//
//eiffel:hotpath
func (q *Q) EnqueueAux(flow uint64, n *bucket.Node, rank, aux uint64) {
	q.enqueueShard(&q.shards[q.ShardFor(flow)], n, rank, aux)
}

// enqueueShard is the shard-resolved body of EnqueueAux, shared with the
// bounded TryEnqueue path so the bound check does not hash twice.
//
//eiffel:hotpath
func (q *Q) enqueueShard(s *shard, n *bucket.Node, rank, aux uint64) {
	if s.ring.push(n, rank, aux) {
		return
	}
	s.mu.Lock()
	drained := s.flushLocked()
	if s.qa != nil {
		s.qa.EnqueueAux(n, rank, aux)
	} else {
		s.q.Enqueue(n, rank)
	}
	s.qlen.Add(1)
	s.fallbackGen.Add(1) // tell the consumer its cached head is stale
	s.mu.Unlock()
	q.ringFull.Inc()
	if drained > 0 {
		q.flushes.Inc()
		q.flushed.Add(uint64(drained))
	}
}

// EnqueueBatch publishes ns[i] with ranks[i] on flows[i]'s shard, for every
// i, through a pooled staging Producer: elements are grouped per shard and
// each group lands as one multi-slot ring claim (a single CAS) instead of
// len(ns) independent pushes. Safe from any number of goroutines
// concurrently, and allocation-free in steady state. Everything is
// published by the time it returns — the post-condition matches a loop of
// Enqueue calls. Producers with a batch stream of their own should hold a
// NewProducer handle instead and flush on their own schedule.
//
//eiffel:hotpath
func (q *Q) EnqueueBatch(flows []uint64, ns []*Node, ranks []uint64) {
	p := q.prodPool.Get().(*Producer)
	for i, n := range ns {
		p.Enqueue(flows[i], n, ranks[i])
	}
	p.Flush()
	q.prodPool.Put(p)
}

// refreshHead re-peeks shard i's head rank into h (the owning group's
// cache slot) if anything could have changed since the cached value: a
// non-empty ring, a producer fallback flush, or an invalidation by the
// consumer's own pops. Group-worker-side.
//
//eiffel:hotpath
func (q *Q) refreshHead(h *headState, i int) {
	s := &q.shards[i]
	if h.valid && s.ring.empty() && h.gen == s.fallbackGen.Load() {
		return
	}
	s.mu.Lock()
	drained := s.flushLocked()
	h.rank, h.ok = s.q.Min()
	h.gen = s.fallbackGen.Load() // exact: fallbacks also hold mu
	s.mu.Unlock()
	h.valid = true
	if drained > 0 {
		q.flushes.Inc()
		q.flushed.Add(uint64(drained))
	}
}

// drainRingDirect pops shard i's ring, delivering elements already at or
// below maxRank straight to out (the DirectDue virtual bucket) and
// spilling not-yet-due elements into the bucketed queue. It stops as soon
// as out is full — due elements beyond the batch stay in the ring for the
// next batch rather than taking the slow path. Group-worker-side (h is
// the owning group's cache slot for shard i); returns how many elements
// it wrote to out.
//
//eiffel:hotpath
func (q *Q) drainRingDirect(h *headState, i int, maxRank uint64, out []*bucket.Node) int {
	s := &q.shards[i]
	if s.ring.empty() {
		return 0
	}
	s.mu.Lock()
	wrote, spilled := 0, 0
	for wrote < len(out) {
		n, rank, aux, ok := s.ring.pop()
		if !ok {
			break
		}
		if rank <= maxRank {
			out[wrote] = n
			wrote++
		} else if s.qa != nil {
			s.qa.EnqueueAux(n, rank, aux)
			spilled++
		} else {
			s.q.Enqueue(n, rank)
			spilled++
		}
	}
	// qlen is credited before the ring consumption is published, as in
	// flushLocked, so concurrent Len readers only ever overcount.
	if spilled > 0 {
		s.qlen.Add(int64(spilled))
	}
	if wrote+spilled > 0 {
		s.ring.publish()
	}
	s.mu.Unlock()
	if spilled > 0 {
		// Spilled elements may sit ahead of the cached queue head.
		h.valid = false
		q.flushes.Inc()
		q.flushed.Add(uint64(spilled))
	}
	if wrote > 0 {
		q.direct.Add(uint64(wrote))
	}
	return wrote
}

// GroupFlush drains every ring in group g into its bucketed queue and
// refreshes the group's cached head ranks. Group-worker-side: safe
// concurrently with other groups' workers.
//
//eiffel:hotpath
func (q *Q) GroupFlush(g int) {
	gr := &q.groups[g]
	for i := gr.lo; i < gr.hi; i++ {
		gr.heads[i-gr.lo].valid = false
		q.refreshHead(&gr.heads[i-gr.lo], i)
	}
}

// Flush drains every shard's ring into its bucketed queue and refreshes
// every group's cached head ranks. Single-consumer surface: requires
// exclusive access to every group.
//
//eiffel:hotpath
func (q *Q) Flush() {
	for g := range q.groups {
		q.GroupFlush(g)
	}
}

// GroupMinRank flushes group g's pending rings and returns the minimum
// bucket-quantized head rank across the group's shards, or ok=false if
// nothing is queued in its bucketed queues. Group-worker-side; this is
// the group's aggregate NextTimer (the soonest deadline any of its shards
// holds).
//
//eiffel:hotpath
func (q *Q) GroupMinRank(g int) (uint64, bool) {
	gr := &q.groups[g]
	min, ok := uint64(0), false
	for i := gr.lo; i < gr.hi; i++ {
		h := &gr.heads[i-gr.lo]
		q.refreshHead(h, i)
		if h.ok && (!ok || h.rank < min) {
			min, ok = h.rank, true
		}
	}
	return min, ok
}

// MinRank flushes any pending rings and returns the minimum
// bucket-quantized head rank across every shard, or ok=false if nothing
// is queued in the bucketed queues. Single-consumer surface.
//
//eiffel:hotpath
func (q *Q) MinRank() (uint64, bool) {
	min, ok := uint64(0), false
	for g := range q.groups {
		if r, rok := q.GroupMinRank(g); rok && (!ok || r < min) {
			min, ok = r, true
		}
	}
	return min, ok
}

// GroupDequeueBatch pops up to len(out) elements whose bucket-quantized
// rank is <= maxRank from consumer group g's shards and returns how many
// it wrote. In the default (exact) mode it flushes the group's rings
// first, then repeatedly serves a run from the group shard with the
// minimum head rank — the run ends when that shard's head climbs past the
// runner-up shard's head, so the merged sequence preserves the group's
// priority order to bucket granularity. In DirectDue mode, due elements
// coming off the group's rings are delivered first, in ring order (see
// Options.DirectDue); the bucketed queues are then merged exactly as in
// the default mode.
//
// Group-worker-side: distinct groups may call this concurrently. Because
// a flow's shard belongs to exactly one group, the per-flow dequeue order
// each worker observes is identical to the single-consumer runtime's;
// only the interleaving ACROSS groups is scheduling-dependent.
//
//eiffel:hotpath
func (q *Q) GroupDequeueBatch(g int, maxRank uint64, out []*bucket.Node) int {
	if len(out) == 0 {
		return 0
	}
	gr := &q.groups[g]
	total := 0
	if q.directDue {
		// Cap the direct fill below the full batch whenever a bucketed
		// queue holds backlog: under sustained ring pressure every batch
		// would otherwise fill from the rings alone and elements spilled
		// into the queues (producer ring-full fallbacks, earlier not-yet-
		// due spills) would starve indefinitely behind arbitrarily newer
		// ring traffic. Reserving a quarter of each batch bounds their
		// wait at a few batches.
		limit := len(out)
		if reserve := len(out) / 4; reserve > 0 {
			for i := gr.lo; i < gr.hi; i++ {
				if q.shards[i].qlen.Load() > 0 {
					limit = len(out) - reserve
					break
				}
			}
		}
		// Rotate the starting shard so no producer's shard gets standing
		// priority when every batch fills before the scan completes.
		n := gr.hi - gr.lo
		for k := 0; k < n && total < limit; k++ {
			rel := (gr.rr + k) & (n - 1)
			total += q.drainRingDirect(&gr.heads[rel], gr.lo+rel, maxRank, out[total:limit])
		}
		gr.rr = (gr.rr + 1) & (n - 1)
		if total == len(out) {
			q.batches.Inc()
			q.batched.Add(uint64(total))
			return total
		}
	}
	for i := gr.lo; i < gr.hi; i++ {
		q.refreshHead(&gr.heads[i-gr.lo], i)
	}
	total += mergeRuns(gr.heads, maxRank, out[total:], func(best int, limit uint64, out []*bucket.Node) int {
		s := &q.shards[gr.lo+best]
		s.mu.Lock()
		popped := s.q.DequeueBatch(limit, out)
		s.qlen.Add(int64(-popped))
		r, ok := s.q.Min()
		gr.heads[best].rank, gr.heads[best].ok = r, ok
		s.mu.Unlock()
		return popped
	})
	if total > 0 {
		q.batches.Inc()
		q.batched.Add(uint64(total))
	}
	return total
}

// DequeueBatch pops up to len(out) elements whose bucket-quantized rank is
// <= maxRank and returns how many it wrote, serving every consumer group
// from the calling goroutine (group by group, each group merged exactly as
// GroupDequeueBatch merges). With the default single group this IS the
// global cross-shard priority merge; with more groups the cross-group
// concatenation relaxes global order to group granularity, exactly as
// parallel group workers would. Single-consumer surface: requires
// exclusive access to every group.
//
//eiffel:hotpath
func (q *Q) DequeueBatch(maxRank uint64, out []*bucket.Node) int {
	total := 0
	for g := range q.groups {
		total += q.GroupDequeueBatch(g, maxRank, out[total:])
		if total == len(out) {
			break
		}
	}
	return total
}

// DequeueMin pops the single globally minimum element (to bucket
// granularity), or nil if nothing is queued after a flush. With multiple
// consumer groups it first compares every group's flushed head rank and
// serves the winning group — the one place the group-less surface still
// pays for a true global answer. Single-consumer surface; batch callers
// should prefer DequeueBatch, which amortizes the shard scan. In
// DirectDue mode (single group) the returned element is the ring-order
// head of the due set, not necessarily the global minimum (see
// Options.DirectDue); with multiple groups the min scan has already
// flushed the rings, so the bucketed-queue head wins.
func (q *Q) DequeueMin() *bucket.Node {
	g := 0
	if len(q.groups) > 1 {
		bestRank, ok := uint64(0), false
		for gi := range q.groups {
			if r, rok := q.GroupMinRank(gi); rok && (!ok || r < bestRank) {
				g, bestRank, ok = gi, r, true
			}
		}
		if !ok {
			return nil
		}
	}
	var one [1]*bucket.Node
	if q.GroupDequeueBatch(g, ^uint64(0), one[:]) == 0 {
		return nil
	}
	return one[0]
}
