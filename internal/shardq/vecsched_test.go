package shardq

import (
	"testing"

	"eiffel/internal/bucket"
	"eiffel/internal/queue"
)

func TestVecSchedOrderingAndFIFO(t *testing.T) {
	v := newVecSched(queue.Config{NumBuckets: 8, Granularity: 10}) // span [0,160)
	n1, n2, n3, n4 := &bucket.Node{}, &bucket.Node{}, &bucket.Node{}, &bucket.Node{}
	v.Enqueue(n1, 55)
	v.Enqueue(n2, 12)
	v.Enqueue(n3, 57) // same bucket as n1: FIFO after it
	v.Enqueue(n4, 140)
	if r, ok := v.PeekMin(); !ok || r != 10 {
		t.Fatalf("PeekMin = (%d,%v), want quantized 10", r, ok)
	}
	want := []*bucket.Node{n2, n1, n3, n4}
	for i, w := range want {
		if got := v.DequeueMin(); got != w {
			t.Fatalf("position %d: got %v, want %v (rank %d)", i, got, w, w.Rank())
		}
	}
	if v.Len() != 0 {
		t.Fatalf("Len = %d after drain", v.Len())
	}
	if _, ok := v.PeekMin(); ok {
		t.Fatal("PeekMin ok on empty store")
	}
}

func TestVecSchedClampsOutOfRange(t *testing.T) {
	v := newVecSched(queue.Config{NumBuckets: 4, Granularity: 10, Start: 100}) // span [100,180)
	lo, hi, mid := &bucket.Node{}, &bucket.Node{}, &bucket.Node{}
	v.Enqueue(hi, 5000) // beyond: clamps to last bucket
	v.Enqueue(mid, 150)
	v.Enqueue(lo, 3) // behind: clamps to first bucket
	if got := v.DequeueMin(); got != lo {
		t.Fatalf("first = rank %d, want the low clamp", got.Rank())
	}
	if got := v.DequeueMin(); got != mid {
		t.Fatalf("second = rank %d, want 150", got.Rank())
	}
	if got := v.DequeueMin(); got != hi {
		t.Fatalf("third = rank %d, want the high clamp", got.Rank())
	}
}

// TestVecSchedPartialBatchReleasesSlots checks partial bucket pops advance
// the consumed prefix, keep FIFO, and nil consumed slots so the store
// never pins released elements.
func TestVecSchedPartialBatchReleasesSlots(t *testing.T) {
	v := newVecSched(queue.Config{NumBuckets: 4, Granularity: 10})
	var nodes [6]*bucket.Node
	for i := range nodes {
		nodes[i] = &bucket.Node{}
		v.Enqueue(nodes[i], 15) // all in one bucket
	}
	out := make([]*bucket.Node, 2)
	for round := 0; round < 3; round++ {
		if k := v.DequeueBatch(^uint64(0), out); k != 2 {
			t.Fatalf("round %d: DequeueBatch = %d, want 2", round, k)
		}
		for j, n := range out[:2] {
			if n != nodes[round*2+j] {
				t.Fatalf("round %d pos %d: FIFO violated", round, j)
			}
		}
	}
	if v.Len() != 0 {
		t.Fatalf("Len = %d after drain", v.Len())
	}
	// The bucket's retained capacity must hold no stale element pointers.
	for i, b := range v.buckets {
		for j := 0; j < cap(b); j++ {
			if b[:cap(b)][j] != nil {
				t.Fatalf("bucket %d slot %d still pins a released element", i, j)
			}
		}
	}
}

// TestVecSchedSteadyStateDoesNotGrow is the regression test for unbounded
// bucket growth: a hot bucket with a standing backlog drained in partial
// batches used to advance its consumed prefix forever without compacting,
// growing the backing array monotonically under constant occupancy.
func TestVecSchedSteadyStateDoesNotGrow(t *testing.T) {
	v := newVecSched(queue.Config{NumBuckets: 4, Granularity: 10})
	const backlog = 100
	for i := 0; i < backlog; i++ {
		v.Enqueue(&bucket.Node{}, 15)
	}
	out := make([]*bucket.Node, 8)
	for i := 0; i < 10000; i++ {
		if k := v.DequeueBatch(^uint64(0), out); k != len(out) {
			t.Fatalf("iter %d: popped %d", i, k)
		}
		for j := 0; j < len(out); j++ {
			v.Enqueue(&bucket.Node{}, 15)
		}
	}
	if v.Len() != backlog {
		t.Fatalf("Len = %d, want steady %d", v.Len(), backlog)
	}
	if c := cap(v.buckets[1]); c > 8*backlog {
		t.Fatalf("bucket capacity grew to %d with a constant backlog of %d", c, backlog)
	}
}

func TestVecSchedRemovePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Remove did not panic")
		}
	}()
	newVecSched(queue.Config{NumBuckets: 4, Granularity: 1}).Remove(&bucket.Node{})
}

// TestVecSchedEnqueueBatch checks the batched enqueue hook: same ordering
// semantics (ascending bucket, FIFO within bucket, clamped edges) as the
// equivalent sequence of Enqueue calls.
func TestVecSchedEnqueueBatch(t *testing.T) {
	v := newVecSched(queue.Config{NumBuckets: 8, Granularity: 4})
	ranks := []uint64{17, 3, 17, 200, 0, 63, 5}
	ns := make([]*bucket.Node, len(ranks))
	for i := range ranks {
		ns[i] = &bucket.Node{Data: i}
	}
	v.EnqueueBatch(ns, ranks)
	if v.Len() != len(ranks) {
		t.Fatalf("Len = %d, want %d", v.Len(), len(ranks))
	}
	out := make([]*bucket.Node, len(ranks))
	if got := v.DequeueBatch(^uint64(0), out); got != len(ranks) {
		t.Fatalf("DequeueBatch = %d, want %d", got, len(ranks))
	}
	// 16 buckets of width 4 cover ranks [0,64): bucket 0 serves [3,0] in
	// arrival order, then 5 (bucket 1), the two 17s (bucket 4) FIFO, and
	// the last bucket holds 200 (clamped high) before 63 — FIFO again,
	// since 200 arrived first.
	want := []uint64{3, 0, 5, 17, 17, 200, 63}
	for i, n := range out {
		if n.Rank() != want[i] {
			t.Fatalf("position %d: rank %d, want %d", i, n.Rank(), want[i])
		}
	}
	// granShift fast path must agree with the divide fallback.
	if v.granShift != 2 {
		t.Fatalf("granShift = %d for granularity 4, want 2", v.granShift)
	}
	odd := newVecSched(queue.Config{NumBuckets: 8, Granularity: 3})
	if odd.granShift != -1 {
		t.Fatalf("granShift = %d for granularity 3, want -1 (divide path)", odd.granShift)
	}
	odd.Enqueue(&bucket.Node{}, 7)
	if r, ok := odd.PeekMin(); !ok || r != 6 {
		t.Fatalf("PeekMin = (%d,%v), want (6,true): 7/3 quantizes to bucket 2", r, ok)
	}
}
