package shardq

import (
	"math/bits"

	"eiffel/internal/bucket"
	"eiffel/internal/gradq"
	"eiffel/internal/queue"
)

// gradSched is the gradient-indexed scheduler backend: vecSched's slice-
// bucket store (same slot math, same FIFO-within-bucket drain, same
// consumed-prefix compaction) with the hierarchical FFS occupancy index
// replaced by a gradq curvature index. Enqueue-side index maintenance is
// two compensated float accumulations instead of a multi-level bitmap
// walk, and the min lookup is a single algebraic estimate plus a bounded
// probe instead of a hierarchy descent — the §3.1.2 trade: near-exact
// ordering at a fraction of the indexing cost.
//
// Ordering contract: this backend is APPROXIMATE. Elements still leave
// FIFO within a bucket, but the bucket served next may sit up to
// probeDown+probeUp buckets above the true minimum (the rigorous
// containment window of the estimate — see gradq.GradWeights.Window), so
// a drain sequence may contain rank inversions of magnitude at most
// GradSchedBound. The runtime's merge machinery does not depend on global
// order, only on the progress rule — a DequeueBatch that returns 0 leaves
// Min above the bound, which holds here because Min and DequeueBatch share
// one deterministic selection — so the backend is a drop-in wherever that
// fidelity trade is acceptable.
//
// With Exact set the curvature index is replaced by gradq's Theorem-1
// hierarchy (the zero-width gradient degeneracy): selection is exact and
// the pop sequence is byte-for-byte the vecSched order, at a higher
// lookup cost (one integer division per level, versus TZCNT).
type gradSched struct {
	buckets [][]*bucket.Node
	heads   []int // per-bucket consumed prefix (partial batch pops)

	// Exactly one of grad/exact is non-nil. Both index PHYSICAL bucket
	// p = nb-1-i (the gradient estimate finds the maximum, so logical
	// minimum = physical maximum, as in gradq.Approx).
	grad  *gradq.Grad
	exact *gradq.ExactIndex

	probeDown int // rigorous window below the estimate (approx mode)
	probeUp   int // rigorous window above the estimate (approx mode)

	gran      uint64
	granShift int8   // log2(gran) when gran is a power of two, else -1
	base      uint64 // bucket number of buckets[0]
	count     int
}

// GradSchedOptions configures a gradient scheduler backend.
type GradSchedOptions struct {
	// Alpha is the weight-decay parameter (see gradq.ApproxOptions.Alpha);
	// zero selects the gradq default.
	Alpha float64
	// Exact selects the Theorem-1 exact index instead of the curvature
	// estimate: identical pop order to vecSched, no inversions beyond
	// bucket quantization.
	Exact bool
}

// NewGradSched returns a gradient-indexed Scheduler over cfg's rank range
// (the vecSched convention: 2*cfg.NumBuckets buckets of cfg.Granularity
// from cfg.Start).
func NewGradSched(cfg queue.Config, opt GradSchedOptions) Scheduler {
	nb, gran, shift, base := vecGeometry(cfg)
	g := &gradSched{
		buckets:   make([][]*bucket.Node, nb),
		heads:     make([]int, nb),
		gran:      gran,
		granShift: shift,
		base:      base,
	}
	if opt.Exact {
		g.exact = gradq.NewExactIndex(nb)
	} else {
		w := gradq.NewGradWeights(nb, opt.Alpha)
		g.grad = gradq.NewGrad(w, func(p int) bool {
			i := len(g.buckets) - 1 - p
			return g.heads[i] < len(g.buckets[i])
		})
		g.probeDown, g.probeUp = w.Window()
	}
	return g
}

// GradSchedBound returns the analytic worst-case rank-inversion magnitude
// of a NewGradSched backend over cfg, in rank units, for ranks within the
// configured span (clamped edge buckets excepted, as for vecSched). An
// element is only ever served while its bucket is within the estimate's
// containment window of the true minimum bucket, so a later-served element
// can precede it by at most (probeDown+probeUp+1) buckets of rank:
//
//	magnitude <= (down+up+1)*gran - 1
//
// capped at the trivial span bound nb*gran - 1 (two in-range ranks cannot
// differ by more). In exact mode selection is exact and only bucket
// quantization remains.
func GradSchedBound(cfg queue.Config, opt GradSchedOptions) uint64 {
	nb, gran, _, _ := vecGeometry(cfg)
	if opt.Exact {
		return gran - 1
	}
	down, up := gradq.NewGradWeights(nb, opt.Alpha).Window()
	bound := uint64(down+up+1)*gran - 1
	if span := uint64(nb)*gran - 1; bound > span {
		bound = span
	}
	return bound
}

// vecGeometry resolves a queue.Config into the fixed-range store geometry
// shared by vecSched, gradSched, and rifoSched: bucket count (2*NumBuckets,
// the cFFS half convention), granularity, its shift when a power of two,
// and the base bucket number.
func vecGeometry(cfg queue.Config) (nb int, gran uint64, granShift int8, base uint64) {
	nb = 2 * cfg.NumBuckets
	if nb <= 0 {
		nb = 1 << 12
	}
	gran = cfg.Granularity
	if gran == 0 {
		gran = 1
	}
	granShift = int8(-1)
	if gran&(gran-1) == 0 {
		granShift = int8(bits.TrailingZeros64(gran))
	}
	return nb, gran, granShift, cfg.Start / gran
}

func (g *gradSched) Len() int { return g.count }

// slot clamps rank's bucket into the fixed range, exactly as vecSched.
//
//eiffel:hotpath
func (g *gradSched) slot(rank uint64) int {
	var b uint64
	if g.granShift >= 0 {
		b = rank >> uint(g.granShift)
	} else {
		b = rank / g.gran
	}
	if b < g.base {
		return 0
	}
	if off := b - g.base; off < uint64(len(g.buckets)) {
		return int(off)
	}
	return len(g.buckets) - 1
}

//eiffel:hotpath
func (g *gradSched) Enqueue(n *bucket.Node, rank uint64) {
	n.SetRank(rank)
	i := g.slot(rank)
	if len(g.buckets[i]) == g.heads[i] {
		if g.exact != nil {
			g.exact.Set(len(g.buckets) - 1 - i)
		} else {
			g.grad.Mark(len(g.buckets) - 1 - i)
		}
	}
	//eiffel:allow(hotpath) amortized: bucket backing arrays are retained across drains
	g.buckets[i] = append(g.buckets[i], n)
	g.count++
}

// EnqueueBatch inserts ns[i] with ranks[i] for every i, equivalent to that
// sequence of Enqueue calls.
//
//eiffel:hotpath
func (g *gradSched) EnqueueBatch(ns []*bucket.Node, ranks []uint64) {
	for i, n := range ns {
		g.Enqueue(n, ranks[i])
	}
}

// occupiedPhys reports whether physical bucket p holds elements.
//
//eiffel:hotpath
func (g *gradSched) occupiedPhys(p int) bool {
	i := len(g.buckets) - 1 - p
	return g.heads[i] < len(g.buckets[i])
}

// findMaxPhys locates the served physical bucket: the curvature estimate,
// then a bounded probe over its rigorous containment window — downward
// first (the common case: the true maximum sits at or just below the
// estimate), then the window above, taking the LARGEST occupied bucket
// there (if nothing at or below the estimate is occupied, the true
// maximum provably lies in the window above, so that scan is exact). The
// queue must be non-empty.
//
//eiffel:hotpath
func (g *gradSched) findMaxPhys() int {
	nb := len(g.buckets)
	est := g.grad.Estimate()
	if g.occupiedPhys(est) {
		return est
	}
	lo := est - g.probeDown
	if lo < 0 {
		lo = 0
	}
	for p := est - 1; p >= lo; p-- {
		if g.occupiedPhys(p) {
			return p
		}
	}
	hi := est + g.probeUp
	if hi > nb-1 {
		hi = nb - 1
	}
	for p := hi; p > est; p-- {
		if g.occupiedPhys(p) {
			return p
		}
	}
	// Unreachable unless the coefficients are corrupted beyond the window
	// pads; fall back to an exact scan so correctness never rests on
	// floating point.
	for p := nb - 1; p >= 0; p-- {
		if g.occupiedPhys(p) {
			return p
		}
	}
	return -1
}

// minBucket returns the logical bucket the backend serves next. The queue
// must be non-empty.
//
//eiffel:hotpath
func (g *gradSched) minBucket() int {
	if g.exact != nil {
		return len(g.buckets) - 1 - g.exact.Max()
	}
	return len(g.buckets) - 1 - g.findMaxPhys()
}

// Min returns the quantized rank of the bucket the backend would serve
// next — the same deterministic selection DequeueBatch uses, so a
// DequeueBatch that returns 0 always leaves Min above its bound (the
// mergeRuns progress rule).
//
//eiffel:hotpath
func (g *gradSched) Min() (uint64, bool) {
	if g.count == 0 {
		return 0, false
	}
	return (g.base + uint64(g.minBucket())) * g.gran, true
}

// DequeueBatch pops up to len(out) elements whose bucket-quantized rank is
// at most maxRank, FIFO within a bucket. In approximate mode successive
// buckets may be served out of order within the GradSchedBound window.
//
//eiffel:hotpath
func (g *gradSched) DequeueBatch(maxRank uint64, out []*bucket.Node) int {
	total := 0
	for total < len(out) && g.count > 0 {
		i := g.minBucket()
		if (g.base+uint64(i))*g.gran > maxRank {
			break
		}
		pend := g.buckets[i][g.heads[i]:]
		k := copy(out[total:], pend)
		clear(pend[:k]) // consumed slots must not pin released elements
		total += k
		g.count -= k
		if k == len(pend) {
			g.buckets[i] = g.buckets[i][:0]
			g.heads[i] = 0
			if g.exact != nil {
				g.exact.Clear(len(g.buckets) - 1 - i)
			} else {
				g.grad.Unmark(len(g.buckets) - 1 - i)
			}
		} else if g.heads[i] += k; g.heads[i] > len(g.buckets[i])/2 {
			// Compact once the consumed prefix dominates (see vecSched).
			n := copy(g.buckets[i], g.buckets[i][g.heads[i]:])
			clear(g.buckets[i][n:])
			g.buckets[i] = g.buckets[i][:n]
			g.heads[i] = 0
		}
	}
	return total
}
