package shardq

import (
	"runtime"
	"sync"
	"testing"

	"eiffel/internal/bucket"
)

func TestRingFIFO(t *testing.T) {
	r := newRing(3) // 8 slots
	nodes := make([]bucket.Node, 8)
	for i := range nodes {
		if !r.push(&nodes[i], uint64(i)*10, uint64(i)*100) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if r.push(&bucket.Node{}, 99, 0) {
		t.Fatal("push succeeded on a full ring")
	}
	for i := range nodes {
		n, rank, aux, ok := r.pop()
		if !ok || n != &nodes[i] || rank != uint64(i)*10 || aux != uint64(i)*100 {
			t.Fatalf("pop %d = (%p, %d, %d, %v), want (%p, %d, %d, true)",
				i, n, rank, aux, ok, &nodes[i], i*10, i*100)
		}
	}
	if _, _, _, ok := r.pop(); ok {
		t.Fatal("pop succeeded on an empty ring")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := newRing(2) // 4 slots
	var nodes [64]bucket.Node
	for lap := 0; lap < 16; lap++ {
		for i := 0; i < 4; i++ {
			if !r.push(&nodes[lap*4+i], uint64(lap*4+i), 0) {
				t.Fatalf("lap %d push %d failed", lap, i)
			}
		}
		for i := 0; i < 4; i++ {
			n, rank, _, ok := r.pop()
			if !ok || rank != uint64(lap*4+i) || n != &nodes[lap*4+i] {
				t.Fatalf("lap %d pop %d = (%p, %d, %v)", lap, i, n, rank, ok)
			}
		}
	}
}

// TestRingConcurrentProducers hammers one ring from many producers while a
// single consumer drains, checking that nothing is lost or duplicated.
func TestRingConcurrentProducers(t *testing.T) {
	const producers = 8
	const perProducer = 4096
	r := newRing(6) // 64 slots: small, so the full path is exercised

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				n := &bucket.Node{}
				rank := uint64(w)<<32 | uint64(i)
				for !r.push(n, rank, 0) {
					runtime.Gosched()
				}
			}
		}(w)
	}

	seen := make(map[uint64]bool, producers*perProducer)
	nextPerProducer := make([]uint64, producers)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	producersDone := false
	for len(seen) < producers*perProducer {
		_, rank, _, ok := r.pop()
		if !ok {
			if producersDone {
				// Every push completed before this empty pop: nothing can
				// still be in flight, so elements were lost.
				t.Fatalf("producers done, ring empty, but only %d of %d consumed",
					len(seen), producers*perProducer)
			}
			select {
			case <-done:
				producersDone = true
			default:
			}
			runtime.Gosched()
			continue
		}
		if seen[rank] {
			t.Fatalf("duplicate element %x", rank)
		}
		seen[rank] = true
		// Per-producer FIFO: ranks from one producer must arrive in order.
		w, i := rank>>32, rank&0xffffffff
		if i != nextPerProducer[w] {
			t.Fatalf("producer %d out of order: got %d, want %d", w, i, nextPerProducer[w])
		}
		nextPerProducer[w]++
	}
	wg.Wait()
}
