package shardq

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"eiffel/internal/bucket"
)

func TestRingFIFO(t *testing.T) {
	r := newRing(3) // 8 slots
	nodes := make([]bucket.Node, 8)
	for i := range nodes {
		if !r.push(&nodes[i], uint64(i)*10, uint64(i)*100) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if r.push(&bucket.Node{}, 99, 0) {
		t.Fatal("push succeeded on a full ring")
	}
	for i := range nodes {
		n, rank, aux, ok := r.pop()
		if !ok || n != &nodes[i] || rank != uint64(i)*10 || aux != uint64(i)*100 {
			t.Fatalf("pop %d = (%p, %d, %d, %v), want (%p, %d, %d, true)",
				i, n, rank, aux, ok, &nodes[i], i*10, i*100)
		}
	}
	if _, _, _, ok := r.pop(); ok {
		t.Fatal("pop succeeded on an empty ring")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := newRing(2) // 4 slots
	var nodes [64]bucket.Node
	for lap := 0; lap < 16; lap++ {
		for i := 0; i < 4; i++ {
			if !r.push(&nodes[lap*4+i], uint64(lap*4+i), 0) {
				t.Fatalf("lap %d push %d failed", lap, i)
			}
		}
		for i := 0; i < 4; i++ {
			n, rank, _, ok := r.pop()
			if !ok || rank != uint64(lap*4+i) || n != &nodes[lap*4+i] {
				t.Fatalf("lap %d pop %d = (%p, %d, %v)", lap, i, n, rank, ok)
			}
		}
		// Slots are recycled by the published cursor, not per pop: without
		// this the next lap's pushes would find the ring still full.
		r.publish()
	}
}

// TestRingPushNClaims covers the multi-slot claim: full batches, partial
// claims near the full mark, and zero claims on a full ring.
func TestRingPushNClaims(t *testing.T) {
	r := newRing(3) // 8 slots
	nodes := make([]bucket.Node, 12)
	pubs := make([]pub, 12)
	for i := range nodes {
		pubs[i] = pub{n: &nodes[i], rank: uint64(i) * 10, aux: uint64(i) * 100}
	}

	if got := r.pushN(pubs[:5]); got != 5 {
		t.Fatalf("pushN on empty ring claimed %d of 5", got)
	}
	// 3 slots left: a 12-element batch must claim exactly the remainder.
	if got := r.pushN(pubs[5:]); got != 3 {
		t.Fatalf("pushN near-full claimed %d, want partial claim of 3", got)
	}
	if got := r.pushN(pubs[8:]); got != 0 {
		t.Fatalf("pushN on full ring claimed %d, want 0", got)
	}
	for i := 0; i < 8; i++ {
		n, rank, aux, ok := r.pop()
		if !ok || n != pubs[i].n || rank != pubs[i].rank || aux != pubs[i].aux {
			t.Fatalf("pop %d = (%p, %d, %d, %v), want (%p, %d, %d, true)",
				i, n, rank, aux, ok, pubs[i].n, pubs[i].rank, pubs[i].aux)
		}
	}
	r.publish()

	// After publishing, the freed slots are claimable again.
	if got := r.pushN(pubs[8:]); got != 4 {
		t.Fatalf("pushN after publish claimed %d of 4", got)
	}
	for i := 8; i < 12; i++ {
		if n, _, _, ok := r.pop(); !ok || n != pubs[i].n {
			t.Fatalf("pop %d after refill = (%p, %v)", i, n, ok)
		}
	}
	r.publish()
	if !r.empty() {
		t.Fatal("ring not empty after full drain + publish")
	}
}

// TestRingPushNStaleConsumedGuard pins the full guard against the
// stale-cursor interleaving: a producer that loaded consumed, then lost
// the CPU while the consumer published and other producers refilled the
// whole ring, resumes seeing tail - consumed > size. Without the guard
// the free-slot subtraction underflows and the claim overwrites
// unconsumed slots; with it, pushN reports full exactly as push does.
// The test reproduces the stale VIEW directly by winding the published
// cursor back under a quiesced ring.
func TestRingPushNStaleConsumedGuard(t *testing.T) {
	r := newRing(2) // 4 slots
	nodes := make([]bucket.Node, 8)
	pubs := make([]pub, 8)
	for i := range nodes {
		pubs[i] = pub{n: &nodes[i], rank: uint64(i)}
	}
	if got := r.pushN(pubs[:4]); got != 4 {
		t.Fatalf("first lap claimed %d of 4", got)
	}
	for i := 0; i < 4; i++ {
		r.pop()
	}
	r.publish()
	if got := r.pushN(pubs[4:8]); got != 4 {
		t.Fatalf("second lap claimed %d of 4", got)
	}
	// tail=8, consumed=4. Wind the published cursor back to what the
	// stalled producer read: pos - cons = 6 > size.
	r.consumed.Store(2)
	if got := r.pushN(pubs[:2]); got != 0 {
		t.Fatalf("pushN with a stale consumed view claimed %d slots, want 0 (full)", got)
	}
	if r.push(&bucket.Node{}, 99, 0) {
		t.Fatal("push with a stale consumed view must also report full")
	}
	r.consumed.Store(4)
	// The ring's second lap must be intact.
	for i := 4; i < 8; i++ {
		n, rank, _, ok := r.pop()
		if !ok || n != pubs[i].n || rank != pubs[i].rank {
			t.Fatalf("pop %d after stale-view probe = (%p, %d, %v), want (%p, %d, true)",
				i, n, rank, ok, pubs[i].n, pubs[i].rank)
		}
	}
}

// TestRingPushNWraparoundProperty is the randomized wraparound property
// test for the multi-slot claim contract, pinning the audit of pushN's
// partial-claim behavior when a claim wraps the ring near-full against a
// LAGGING consumed cursor. The free-slot count is computed from a
// consumed value loaded BEFORE the tail, so a stale view only ever
// undercounts and a partial claim of k slots can never overlap a slot the
// consumer has not both popped AND published; the first slot's release
// store publishes the interior plain stores before the consumer can poll
// past it. To make the claims constantly wrap near the full mark, the
// ring is tiny, producers push random-length runs, and the consumer pops
// random amounts but republishes its cursor only every few drains — so
// producers measure fullness against a cursor that lags the true head by
// several pops, exactly the window the audited hole would live in. The
// property: nothing lost, nothing duplicated, per-producer FIFO intact.
func TestRingPushNWraparoundProperty(t *testing.T) {
	const producers = 4
	const perProducer = 8192
	r := newRing(3) // 8 slots: every few claims wrap the array

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			pubs := make([]pub, 11) // > ring size: claims are usually partial
			for i := 0; i < perProducer; {
				k := 1 + rng.Intn(len(pubs))
				if i+k > perProducer {
					k = perProducer - i
				}
				for j := 0; j < k; j++ {
					pubs[j] = pub{n: &bucket.Node{}, rank: uint64(w)<<32 | uint64(i+j)}
				}
				done := 0
				for done < k {
					pushed := r.pushN(pubs[done:k])
					if pushed == 0 {
						runtime.Gosched()
						continue
					}
					done += pushed
				}
				i += k
			}
		}(w)
	}

	rng := rand.New(rand.NewSource(424242))
	seen := make(map[uint64]bool, producers*perProducer)
	nextPerProducer := make([]uint64, producers)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	producersDone := false
	for len(seen) < producers*perProducer {
		// Pop a random run, then lag the publication: only every third
		// drain (on average) frees the consumed slots for the next lap.
		popped := 0
		for burst := 1 + rng.Intn(8); popped < burst; popped++ {
			_, rank, _, ok := r.pop()
			if !ok {
				break
			}
			if seen[rank] {
				t.Fatalf("duplicate element %x", rank)
			}
			seen[rank] = true
			w, i := rank>>32, rank&0xffffffff
			if i != nextPerProducer[w] {
				t.Fatalf("producer %d out of order: got %d, want %d", w, i, nextPerProducer[w])
			}
			nextPerProducer[w]++
		}
		if rng.Intn(3) == 0 || popped == 0 {
			r.publish()
		}
		if popped == 0 {
			if producersDone {
				t.Fatalf("producers done, ring empty, but only %d of %d consumed",
					len(seen), producers*perProducer)
			}
			select {
			case <-done:
				producersDone = true
			default:
			}
			runtime.Gosched()
		}
	}
	r.publish()
	wg.Wait()
	if !r.empty() {
		t.Fatal("ring not empty after all elements consumed and published")
	}
}

// TestRingConcurrentProducers hammers one ring from many producers while a
// single consumer drains, checking that nothing is lost or duplicated.
// Producers mix single pushes and multi-slot claims so the two publication
// protocols interleave on one ring.
func TestRingConcurrentProducers(t *testing.T) {
	const producers = 8
	const perProducer = 4096
	r := newRing(6) // 64 slots: small, so the full path is exercised

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				// Batched producer: runs of up to 7 via pushN, retrying
				// the unclaimed suffix until everything lands.
				const run = 7
				pubs := make([]pub, run)
				for i := 0; i < perProducer; i += run {
					k := run
					if i+k > perProducer {
						k = perProducer - i
					}
					for j := 0; j < k; j++ {
						pubs[j] = pub{n: &bucket.Node{}, rank: uint64(w)<<32 | uint64(i+j)}
					}
					done := 0
					for done < k {
						pushed := r.pushN(pubs[done:k])
						if pushed == 0 {
							runtime.Gosched()
							continue
						}
						done += pushed
					}
				}
				return
			}
			for i := 0; i < perProducer; i++ {
				n := &bucket.Node{}
				rank := uint64(w)<<32 | uint64(i)
				for !r.push(n, rank, 0) {
					runtime.Gosched()
				}
			}
		}(w)
	}

	seen := make(map[uint64]bool, producers*perProducer)
	nextPerProducer := make([]uint64, producers)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	producersDone := false
	for len(seen) < producers*perProducer {
		_, rank, _, ok := r.pop()
		if !ok {
			r.publish() // free everything consumed so far
			if producersDone {
				// Every push completed before this empty pop: nothing can
				// still be in flight, so elements were lost.
				t.Fatalf("producers done, ring empty, but only %d of %d consumed",
					len(seen), producers*perProducer)
			}
			select {
			case <-done:
				producersDone = true
			default:
			}
			runtime.Gosched()
			continue
		}
		if seen[rank] {
			t.Fatalf("duplicate element %x", rank)
		}
		seen[rank] = true
		// Per-producer FIFO: ranks from one producer must arrive in order.
		w, i := rank>>32, rank&0xffffffff
		if i != nextPerProducer[w] {
			t.Fatalf("producer %d out of order: got %d, want %d", w, i, nextPerProducer[w])
		}
		nextPerProducer[w]++
	}
	r.publish()
	wg.Wait()
}
