// Package shardq is the multi-producer sharded scheduling runtime: it
// scales the single-lock qdisc deployment of §4 (the kernel serializes
// every sender behind one global qdisc lock) by partitioning flows over N
// shards, each owning its own Eiffel bucketed queue. Producers hash a flow
// to a shard and publish through a bounded lock-free MPSC ring; the
// consumer drains rings into the bucketed queues and dequeues in batches
// across shards, always serving the shard whose head has the minimum
// priority, so the merged output order tracks the global priority order at
// batch granularity while enqueue stays contention-free in the common
// case.
package shardq

import (
	"sync/atomic"

	"eiffel/internal/bucket"
)

// ringEntry is one publication slot. seq is the Vyukov sequence number:
// equal to the slot position when free, position+1 once the payload is
// visible, and advanced by the ring size again when consumed. The payload
// is a (node, rank, aux) triple: plain rank-ordered runtimes leave aux
// zero, while the shaped runtime publishes (node, sendAt, rank) so one
// ring push carries both scheduling dimensions.
type ringEntry struct {
	seq  atomic.Uint64
	n    *bucket.Node
	rank uint64
	aux  uint64
}

// ring is a bounded lock-free multi-producer single-consumer queue of
// (node, rank, aux) triples — the Vyukov bounded MPMC algorithm restricted to one
// consumer, so the consumer side needs no atomics on its cursor. A full
// ring reports failure instead of blocking; the caller (shard enqueue)
// falls back to flushing under the shard lock, which doubles as
// backpressure toward the bucketed queue.
type ring struct {
	mask    uint64
	entries []ringEntry

	_    [64]byte // keep the producer cursor off the entries' cache lines
	tail atomic.Uint64

	_    [64]byte // and off the consumer cursor's line
	head uint64   // consumer-owned

	// consumed is the consumer's published copy of head, stored after
	// each drain so Len readers can compute ring occupancy (tail -
	// consumed) without locks. It lags head by at most one batch.
	consumed atomic.Uint64
}

// newRing returns a ring with 1<<bits slots.
func newRing(bits uint) *ring {
	size := uint64(1) << bits
	r := &ring{mask: size - 1, entries: make([]ringEntry, size)}
	for i := range r.entries {
		r.entries[i].seq.Store(uint64(i))
	}
	return r
}

// push publishes (n, rank, aux) from any goroutine. It reports false when
// the ring is full; the payload is then NOT queued.
func (r *ring) push(n *bucket.Node, rank, aux uint64) bool {
	for {
		pos := r.tail.Load()
		e := &r.entries[pos&r.mask]
		switch seq := e.seq.Load(); {
		case seq == pos:
			if r.tail.CompareAndSwap(pos, pos+1) {
				e.n, e.rank, e.aux = n, rank, aux
				e.seq.Store(pos + 1)
				return true
			}
		case seq < pos:
			// The slot still holds an unconsumed element a full lap
			// behind: the ring is full.
			return false
		default:
			// Another producer claimed pos; reload and retry.
		}
	}
}

// empty reports whether every claimed slot has been consumed. It compares
// the producers' cursor against the published consumed cursor — not the
// raw head, which a producer's ring-full fallback may be advancing under
// the shard lock while a lock-free caller reads. The two cursors agree
// whenever no drain is in progress, which is the only time the lock-free
// fast paths call this. A false result may include a slot that is claimed
// but not yet published.
func (r *ring) empty() bool { return r.tail.Load() == r.consumed.Load() }

// publish makes the consumer's progress visible to Len readers. Consumer-
// only; called once per drain, not per element.
func (r *ring) publish() { r.consumed.Store(r.head) }

// occupancy returns how many claimed slots are not yet known-consumed.
// Safe from any goroutine; transiently overcounts by up to one drain.
func (r *ring) occupancy() int64 { return int64(r.tail.Load() - r.consumed.Load()) }

// pushes returns how many elements were ever claimed into the ring. Safe
// from any goroutine.
func (r *ring) pushes() uint64 { return r.tail.Load() }

// pop removes the oldest published element. Consumer-only. ok=false means
// the ring is empty or the oldest slot is claimed but not yet published
// (the producer was preempted mid-publish); either way there is nothing
// consumable right now.
func (r *ring) pop() (n *bucket.Node, rank, aux uint64, ok bool) {
	e := &r.entries[r.head&r.mask]
	if e.seq.Load() != r.head+1 {
		return nil, 0, 0, false
	}
	n, rank, aux = e.n, e.rank, e.aux
	// The stale e.n pointer is left in place: the slot is dead until the
	// next producer lap overwrites it, so clearing it would only add a
	// store to the hot path. The ring therefore retains up to one lap of
	// consumed nodes, which its owners keep alive anyway.
	e.seq.Store(r.head + r.mask + 1)
	r.head++
	return n, rank, aux, true
}
