// Package shardq is the multi-producer sharded scheduling runtime: it
// scales the single-lock qdisc deployment of §4 (the kernel serializes
// every sender behind one global qdisc lock) by partitioning flows over N
// shards, each owning its own Eiffel bucketed queue. Producers hash a flow
// to a shard and publish through a bounded lock-free MPSC ring; the
// consumer drains rings into the bucketed queues and dequeues in batches
// across shards, always serving the shard whose head has the minimum
// priority, so the merged output order tracks the global priority order at
// batch granularity while enqueue stays contention-free in the common
// case.
package shardq

import (
	"sync/atomic"

	"eiffel/internal/bucket"
)

// ringEntry is one publication slot. seq is the publication sequence
// number: position+1 once the slot's payload is visible to the consumer,
// anything else (zero initially, a previous lap's value afterwards) while
// it is not. It is read with atomic loads; writes are atomic for the slot
// that publishes a claim and plain for the interior slots of a multi-slot
// claim, which the consumer provably cannot reach until the claim's first
// slot publishes (see pushN). The payload is a (node, rank, aux) triple:
// plain rank-ordered runtimes leave aux zero, while the shaped runtime
// publishes (node, sendAt, rank) so one ring push carries both scheduling
// dimensions.
type ringEntry struct {
	seq  uint64
	n    *bucket.Node
	rank uint64
	aux  uint64
}

// ring is a bounded lock-free multi-producer single-consumer queue of
// (node, rank, aux) triples. Producers claim slots by CAS on the tail —
// one slot (push) or a contiguous run of slots (pushN) per CAS — and
// publish each slot by writing its sequence number after the payload.
// Slots are freed for the next lap by the consumer republishing its
// cursor (publish), not per element, so the consumer's pop needs no
// atomic read-modify-write at all. A full ring reports failure instead of
// blocking; the caller (shard enqueue) falls back to flushing under the
// shard lock, which doubles as backpressure toward the bucketed queue.
type ring struct {
	mask uint64
	// entries is slot memory under the seq release-store protocol: plain
	// stores are only ordered for the consumer inside the publish helpers.
	//eiffel:publishedBy(push, pushN)
	entries []ringEntry

	_    [64]byte // keep the producer cursor off the entries' cache lines
	tail atomic.Uint64

	_    [64]byte // and off the consumer cursor's line
	head uint64   // consumer-owned

	// consumed is the consumer's published copy of head, stored after
	// each drain. It is what producers measure fullness against and what
	// Len readers compute ring occupancy (tail - consumed) from, so every
	// pop MUST be followed by a publish once the drain completes: slots
	// are not reusable until the consumption is published. It lags head
	// by at most one drain.
	consumed atomic.Uint64
}

// newRing returns a ring with 1<<bits slots. The zero sequence numbers
// mean "never published": position p publishes as p+1, which is never 0.
func newRing(bits uint) *ring {
	size := uint64(1) << bits
	return &ring{mask: size - 1, entries: make([]ringEntry, size)}
}

// push publishes (n, rank, aux) from any goroutine. It reports false when
// the ring is full; the payload is then NOT queued. Fullness is measured
// against the published consumed cursor, so a drain in progress does not
// free slots until it publishes — conservative, never unsafe.
//
// consumed is loaded BEFORE the tail so that cons <= pos: the consumed
// cursor only grows, and it can never pass a tail that was read after it.
//
//eiffel:hotpath
func (r *ring) push(n *bucket.Node, rank, aux uint64) bool {
	for {
		cons := r.consumed.Load()
		pos := r.tail.Load()
		if pos-cons > r.mask {
			return false
		}
		if r.tail.CompareAndSwap(pos, pos+1) {
			e := &r.entries[pos&r.mask]
			e.n, e.rank, e.aux = n, rank, aux
			atomic.StoreUint64(&e.seq, pos+1)
			return true
		}
	}
}

// pub is one staged publication: the payload triple a producer wants to
// place in a ring slot. Interleaved (rather than parallel arrays) so the
// staging buffers and the slot-filling loop walk one sequential stream.
type pub struct {
	n    *bucket.Node
	rank uint64 // the rank, or the release time for the shaped runtime
	aux  uint64 // zero, or the priority for the shaped runtime
}

// pushN publishes up to len(pubs) elements with a SINGLE CAS on the tail,
// claiming a contiguous run of slots. It returns how many leading elements
// of pubs it published — fewer than len(pubs) when the ring is near-full
// (partial claim), zero when it is full. This is the producer-side
// batching primitive: k elements cost one CAS and one atomic store instead
// of k of each.
//
// Publication protocol: the interior slots of the claim ([pos+1, pos+k))
// write their payloads AND sequence numbers with plain stores; only the
// first slot's sequence number is stored atomically (release), last. The
// consumer pops strictly in position order and polls only the slot at its
// head, so it cannot observe any interior slot before it has consumed the
// first — and its acquiring load of the first slot's seq makes every
// earlier plain store of the claim visible. Slot reuse across laps is
// ordered by the consumed cursor: a producer only claims a slot after
// loading a consumed value proving the previous lap's element was popped
// and published, which orders the consumer's reads before the producer's
// overwrites.
//
//eiffel:hotpath
func (r *ring) pushN(pubs []pub) int {
	want := uint64(len(pubs))
	if want == 0 {
		return 0
	}
	for {
		cons := r.consumed.Load()
		pos := r.tail.Load()
		if pos-cons > r.mask {
			// Full — or a stale view of it: the consumer may have
			// published and other producers refilled between the two
			// loads, in which case pos-cons can exceed the ring size and
			// the free-slot subtraction below would underflow into a
			// claim over unconsumed slots. Report full either way, as
			// push does; the caller's locked fallback is always safe.
			return 0
		}
		k := r.mask + 1 - (pos - cons) // free slots (cons <= pos: see push)
		if k > want {
			k = want
		}
		if !r.tail.CompareAndSwap(pos, pos+k) {
			continue
		}
		for i := uint64(1); i < k; i++ {
			e := &r.entries[(pos+i)&r.mask]
			e.n, e.rank, e.aux = pubs[i].n, pubs[i].rank, pubs[i].aux
			//eiffel:allow(atomicfield) interior slots of a claim: unreachable until the first slot's atomic seq store publishes the run
			e.seq = pos + i + 1
		}
		e := &r.entries[pos&r.mask]
		e.n, e.rank, e.aux = pubs[0].n, pubs[0].rank, pubs[0].aux
		atomic.StoreUint64(&e.seq, pos+1)
		return int(k)
	}
}

// empty reports whether every claimed slot has been consumed. It compares
// the producers' cursor against the published consumed cursor — not the
// raw head, which a producer's ring-full fallback may be advancing under
// the shard lock while a lock-free caller reads. The two cursors agree
// whenever no drain is in progress, which is the only time the lock-free
// fast paths call this. A false result may include a slot that is claimed
// but not yet published.
//
//eiffel:hotpath
func (r *ring) empty() bool { return r.tail.Load() == r.consumed.Load() }

// publish makes the consumer's progress visible to Len readers and frees
// the consumed slots for the producers' next lap. Consumer-only; called
// once per drain, not per element — and REQUIRED after any sequence of
// pops, or the slots stay unusable and producers eventually see a
// permanently full ring.
//
//eiffel:hotpath
func (r *ring) publish() { r.consumed.Store(r.head) }

// occupancy returns how many claimed slots are not yet known-consumed.
// Safe from any goroutine; transiently overcounts by up to one drain.
//
// consumed is loaded BEFORE the tail, mirroring push: both cursors only
// grow, so a consumed value read first can never exceed a tail value read
// second and the difference is never negative. Loading tail first let a
// concurrent drain-publish-refill between the two loads push consumed past
// the stale tail, wrapping the subtraction into a negative occupancy that
// Len briefly reported as a negative queue length.
//
//eiffel:hotpath
func (r *ring) occupancy() int64 {
	cons := r.consumed.Load()
	return int64(r.tail.Load() - cons)
}

// pushes returns how many elements were ever claimed into the ring. Safe
// from any goroutine.
//
//eiffel:hotpath
func (r *ring) pushes() uint64 { return r.tail.Load() }

// pop removes the oldest published element. Consumer-only. ok=false means
// the ring is empty or the oldest slot is claimed but not yet published
// (the producer was preempted mid-publish); either way there is nothing
// consumable right now. pop itself performs no atomic read-modify-write:
// slots are recycled wholesale by publish.
//
//eiffel:hotpath
func (r *ring) pop() (n *bucket.Node, rank, aux uint64, ok bool) {
	e := &r.entries[r.head&r.mask]
	if atomic.LoadUint64(&e.seq) != r.head+1 {
		return nil, 0, 0, false
	}
	n, rank, aux = e.n, e.rank, e.aux
	// The stale e.n pointer is left in place: the slot is dead until the
	// next producer lap overwrites it, so clearing it would only add a
	// store to the hot path. The ring therefore retains up to one lap of
	// consumed nodes, which its owners keep alive anyway.
	r.head++
	return n, rank, aux, true
}
