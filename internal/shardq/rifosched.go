package shardq

import (
	"math/bits"

	"eiffel/internal/bucket"
	"eiffel/internal/queue"
)

// rifoSched is the extreme-cheap point of the approximate backend family:
// a RIFO-style fixed-rank-window scheduler. The configured rank span is
// mapped onto a small fixed window of W slots (ranks outside the span
// clamp into the edge slots, as in vecSched), so rank→slot is one shift,
// occupancy is a handful of 64-bit words scanned with TZCNT, and the
// whole structure — slot headers, occupancy bitmap, and the hot slices —
// stays cache-resident no matter how wide the rank domain is. Elements
// are FIFO within a slot; across slots order is exact at slot
// granularity. The ordering fidelity trade is therefore pure
// quantization: rank inversions are bounded by one slot's width
// (RIFOSchedBound), with no estimate error term.
type rifoSched struct {
	slots [][]*bucket.Node
	heads []int    // per-slot consumed prefix (partial batch pops)
	words []uint64 // occupancy bitmap, one bit per slot

	shift uint   // rank >> shift = global slot number
	base  uint64 // global slot number of slots[0]
	count int
}

// defaultRIFOSlots is the default window width: one cache line of
// occupancy bitmap (64 slots in one word) and a slot set small enough to
// keep every header in L1.
const defaultRIFOSlots = 64

// NewRIFOSched returns a fixed-window Scheduler covering cfg's rank span
// (2*cfg.NumBuckets*cfg.Granularity from cfg.Start, the vecSched
// convention) with the given number of window slots, rounded up to a
// power of two (0 selects 64). The slot width is the span divided by the
// window, rounded up to a power of two so rank→slot is a single shift.
func NewRIFOSched(cfg queue.Config, slots int) Scheduler {
	w, shift, base := rifoGeometry(cfg, slots)
	return &rifoSched{
		slots: make([][]*bucket.Node, w),
		heads: make([]int, w),
		words: make([]uint64, (w+63)/64),
		shift: shift,
		base:  base,
	}
}

// RIFOSchedBound returns the analytic worst-case rank-inversion magnitude
// of a NewRIFOSched backend over cfg, in rank units, for ranks within the
// configured span (clamped edge slots excepted): one slot's width minus
// one — slots are served in exact ascending order and elements are FIFO
// within a slot, so only intra-slot quantization can invert.
func RIFOSchedBound(cfg queue.Config, slots int) uint64 {
	_, shift, _ := rifoGeometry(cfg, slots)
	return (uint64(1) << shift) - 1
}

// rifoGeometry resolves the window width (power of two), the rank→slot
// shift, and the base slot number for cfg's span.
func rifoGeometry(cfg queue.Config, slots int) (w int, shift uint, base uint64) {
	nb, gran, _, _ := vecGeometry(cfg)
	if slots <= 0 {
		slots = defaultRIFOSlots
	}
	w = 1
	for w < slots {
		w <<= 1
	}
	span := uint64(nb) * gran
	slotGran := (span + uint64(w) - 1) / uint64(w)
	if slotGran == 0 {
		slotGran = 1
	}
	shift = uint(bits.Len64(slotGran - 1)) // round up to a power of two
	return w, shift, cfg.Start >> shift
}

func (r *rifoSched) Len() int { return r.count }

// slot clamps rank's slot into the fixed window.
//
//eiffel:hotpath
func (r *rifoSched) slot(rank uint64) int {
	b := rank >> r.shift
	if b < r.base {
		return 0
	}
	if off := b - r.base; off < uint64(len(r.slots)) {
		return int(off)
	}
	return len(r.slots) - 1
}

//eiffel:hotpath
func (r *rifoSched) Enqueue(n *bucket.Node, rank uint64) {
	n.SetRank(rank)
	i := r.slot(rank)
	if len(r.slots[i]) == r.heads[i] {
		r.words[i>>6] |= 1 << (uint(i) & 63)
	}
	//eiffel:allow(hotpath) amortized: slot backing arrays are retained across drains
	r.slots[i] = append(r.slots[i], n)
	r.count++
}

// EnqueueBatch inserts ns[i] with ranks[i] for every i, equivalent to that
// sequence of Enqueue calls.
//
//eiffel:hotpath
func (r *rifoSched) EnqueueBatch(ns []*bucket.Node, ranks []uint64) {
	for i, n := range ns {
		r.Enqueue(n, ranks[i])
	}
}

// minSlot returns the lowest occupied slot, or -1: a sequential word scan
// (at most len(words) iterations — the window is sized so this is one or
// a few cache-resident words) and one TZCNT.
//
//eiffel:hotpath
func (r *rifoSched) minSlot() int {
	for w, word := range r.words {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// Min returns the slot-quantized minimum rank, or ok=false when empty.
//
//eiffel:hotpath
func (r *rifoSched) Min() (uint64, bool) {
	if r.count == 0 {
		return 0, false
	}
	return (r.base + uint64(r.minSlot())) << r.shift, true
}

// DequeueBatch pops up to len(out) elements whose slot-quantized rank is
// at most maxRank, ascending by slot, FIFO within a slot.
//
//eiffel:hotpath
func (r *rifoSched) DequeueBatch(maxRank uint64, out []*bucket.Node) int {
	total := 0
	for total < len(out) && r.count > 0 {
		i := r.minSlot()
		if (r.base+uint64(i))<<r.shift > maxRank {
			break
		}
		pend := r.slots[i][r.heads[i]:]
		k := copy(out[total:], pend)
		clear(pend[:k]) // consumed slots must not pin released elements
		total += k
		r.count -= k
		if k == len(pend) {
			r.slots[i] = r.slots[i][:0]
			r.heads[i] = 0
			r.words[i>>6] &^= 1 << (uint(i) & 63)
		} else if r.heads[i] += k; r.heads[i] > len(r.slots[i])/2 {
			// Compact once the consumed prefix dominates (see vecSched).
			n := copy(r.slots[i], r.slots[i][r.heads[i]:])
			clear(r.slots[i][n:])
			r.slots[i] = r.slots[i][:n]
			r.heads[i] = 0
		}
	}
	return total
}
