package shardq

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eiffel/internal/bucket"
	"eiffel/internal/queue"
)

func newGroupedQ(shards, groups int) *Q {
	return New(Options{
		NumShards: shards,
		NumGroups: groups,
		RingBits:  6,
		Kind:      queue.KindCFFS,
		Queue:     queue.Config{NumBuckets: 1 << 12, Granularity: 1},
	})
}

func TestGroupDefaultsAndRounding(t *testing.T) {
	if got := New(Options{NumShards: 8}).NumGroups(); got != 1 {
		t.Fatalf("default NumGroups = %d, want 1", got)
	}
	if got := New(Options{NumShards: 8, NumGroups: 3}).NumGroups(); got != 4 {
		t.Fatalf("NumGroups(3) rounded to %d, want 4", got)
	}
	if got := New(Options{NumShards: 8, NumGroups: 64}).NumGroups(); got != 8 {
		t.Fatalf("NumGroups(64) with 8 shards = %d, want clamp to 8", got)
	}
	q := New(Options{NumShards: 8, NumGroups: 4})
	seen := make(map[int]bool)
	for g := 0; g < q.NumGroups(); g++ {
		lo, hi := q.GroupShards(g)
		if hi-lo != 2 {
			t.Fatalf("group %d owns [%d,%d), want 2 shards", g, lo, hi)
		}
		for i := lo; i < hi; i++ {
			if seen[i] {
				t.Fatalf("shard %d owned by two groups", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 8 {
		t.Fatalf("groups cover %d shards, want all 8", len(seen))
	}
	for flow := uint64(0); flow < 4096; flow++ {
		g := q.GroupFor(flow)
		lo, hi := q.GroupShards(g)
		if s := q.ShardFor(flow); s < lo || s >= hi {
			t.Fatalf("flow %d: shard %d outside GroupFor's range [%d,%d)", flow, s, lo, hi)
		}
	}
}

// TestGroupPartitionInvariant is the randomized group-partition property
// test: many flows publish concurrently, four group workers drain
// concurrently, and every element must come out of exactly the group its
// flow hashes to — the invariant that makes parallel egress order-safe
// with zero cross-worker synchronization.
func TestGroupPartitionInvariant(t *testing.T) {
	const (
		producers = 4
		perProd   = 3000
		flows     = 257 // co-prime with everything in sight
	)
	q := newGroupedQ(8, 4)
	flowOf := make(map[*bucket.Node]uint64)
	var mu sync.Mutex // guards flowOf during the publish phase

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 99))
			local := make(map[*bucket.Node]uint64, perProd)
			for i := 0; i < perProd; i++ {
				n := &bucket.Node{}
				flow := uint64(w*flows + rng.Intn(flows))
				local[n] = flow
				q.Enqueue(flow, n, uint64(rng.Intn(1<<11)))
			}
			mu.Lock()
			for n, f := range local {
				flowOf[n] = f
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	G := q.NumGroups()
	drained := make([][]*bucket.Node, G)
	var cwg sync.WaitGroup
	for g := 0; g < G; g++ {
		cwg.Add(1)
		go func(g int) {
			defer cwg.Done()
			out := make([]*bucket.Node, 97)
			for {
				k := q.GroupDequeueBatch(g, ^uint64(0), out)
				if k == 0 {
					return // quiescent publish: empty pop == group drained
				}
				drained[g] = append(drained[g], out[:k]...)
			}
		}(g)
	}
	cwg.Wait()

	total := 0
	for g := range drained {
		for _, n := range drained[g] {
			flow, ok := flowOf[n]
			if !ok {
				t.Fatalf("group %d drained an unknown node", g)
			}
			if want := q.GroupFor(flow); want != g {
				t.Fatalf("flow %d drained by group %d, owned by group %d", flow, g, want)
			}
			total++
		}
	}
	if total != producers*perProd {
		t.Fatalf("drained %d, want %d", total, producers*perProd)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after full drain", q.Len())
	}
}

// TestGroupDrainMatchesSingleConsumerPerFlow publishes one identical
// element stream into a single-group runtime and a four-group runtime,
// then drains the first with one consumer and the second with four
// concurrent group workers: every flow's dequeue order must be IDENTICAL.
// This is the ordering half of the parallel-egress contract — groups
// relax only the interleaving across flows that hash to different groups.
func TestGroupDrainMatchesSingleConsumerPerFlow(t *testing.T) {
	const n = 12000
	const flows = 173
	rng := rand.New(rand.NewSource(5))
	type ev struct {
		flow, rank uint64
	}
	evs := make([]ev, n)
	for i := range evs {
		evs[i] = ev{flow: uint64(rng.Intn(flows)), rank: uint64(rng.Intn(1 << 11))}
	}

	perFlow := func(q *Q, groups int) map[uint64][]int {
		ids := make(map[*bucket.Node]int, n)
		for i, e := range evs {
			nd := &bucket.Node{}
			ids[nd] = i
			q.Enqueue(e.flow, nd, e.rank)
		}
		seq := make(map[uint64][]int)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for g := 0; g < groups; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				out := make([]*bucket.Node, 64)
				local := make(map[uint64][]int)
				for {
					k := q.GroupDequeueBatch(g, ^uint64(0), out)
					if k == 0 {
						break
					}
					for _, nd := range out[:k] {
						f := evs[ids[nd]].flow
						local[f] = append(local[f], ids[nd])
					}
				}
				mu.Lock()
				for f, s := range local {
					if len(seq[f]) > 0 {
						mu.Unlock()
						panic("flow drained by two groups")
					}
					seq[f] = s
				}
				mu.Unlock()
			}(g)
		}
		wg.Wait()
		return seq
	}

	single := perFlow(newGroupedQ(8, 1), 1)
	grouped := perFlow(newGroupedQ(8, 4), 4)
	if len(single) != len(grouped) {
		t.Fatalf("flow sets differ: %d vs %d", len(single), len(grouped))
	}
	for f, want := range single {
		got := grouped[f]
		if len(got) != len(want) {
			t.Fatalf("flow %d: %d elements under groups, %d under single consumer", f, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("flow %d position %d: element %d under groups, %d under single consumer",
					f, i, got[i], want[i])
			}
		}
	}
}

// TestDequeueMinAcrossGroups pins the group-less DequeueMin contract on a
// multi-group runtime: the global minimum must come out first even when a
// LATER group holds it — a naive first-non-empty-group pop would return
// group 0's head instead.
func TestDequeueMinAcrossGroups(t *testing.T) {
	q := newGroupedQ(8, 4)
	flowIn := func(g int) uint64 {
		for f := uint64(0); ; f++ {
			if q.GroupFor(f) == g {
				return f
			}
		}
	}
	q.Enqueue(flowIn(0), &bucket.Node{}, 100)
	q.Enqueue(flowIn(q.NumGroups()-1), &bucket.Node{}, 5)
	q.Enqueue(flowIn(1), &bucket.Node{}, 50)
	for i, want := range []uint64{5, 50, 100} {
		n := q.DequeueMin()
		if n == nil || n.Rank() != want {
			t.Fatalf("DequeueMin %d = %v, want rank %d", i, n, want)
		}
	}
	if q.DequeueMin() != nil {
		t.Fatal("DequeueMin non-nil on an empty runtime")
	}

	sq := NewShaped(ShapedOptions{
		NumShards: 8,
		NumGroups: 4,
		RingBits:  6,
		Shaper:    queue.Config{NumBuckets: 1 << 12, Granularity: 1},
		Sched:     queue.Config{NumBuckets: 1 << 12, Granularity: 1},
		Pair:      pairElem,
	})
	a := newElem(10, 100)
	b := newElem(10, 5)
	sq.Enqueue(flowIn(0), &a.timer, a.sendAt, a.rank) // same hash → same group layout
	sq.Enqueue(flowIn(3), &b.timer, b.sendAt, b.rank)
	if n := sq.DequeueMin(20); n != &b.sched {
		t.Fatalf("shaped DequeueMin returned %v, want the rank-5 element from the last group", n)
	}
	if n := sq.DequeueMin(20); n != &a.sched {
		t.Fatalf("shaped DequeueMin second pop returned %v, want the rank-100 element", n)
	}
	if sq.DequeueMin(20) != nil {
		t.Fatal("shaped DequeueMin non-nil on an empty runtime")
	}
}

// TestLenNeverNegativeDuringChurn is the qlen/occupancy regression test:
// producers squeezed through a tiny ring hammer the fallback-flush path
// while a consumer drains and a reader samples Len the whole time. Len
// must never go negative (the ring occupancy subtraction once loaded the
// cursors in an order that let a racing drain-publish-refill wrap it
// negative) and must return exactly to zero at quiescence — the mirror
// may transiently over-count, but never under-count or stick.
func TestLenNeverNegativeDuringChurn(t *testing.T) {
	const producers = 2
	const perProd = 30000
	q := New(Options{
		NumShards: 2,
		RingBits:  2, // 4 slots: constant fallback + drain races
		Kind:      queue.KindCFFS,
		Queue:     queue.Config{NumBuckets: 1 << 10, Granularity: 1},
	})

	var stopRead atomic.Bool
	var negative atomic.Int64
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for !stopRead.Load() {
			if l := q.Len(); l < 0 {
				negative.Store(int64(l))
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				q.Enqueue(uint64(w*perProd+i), &bucket.Node{}, uint64(i&1023))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	out := make([]*bucket.Node, 128)
	consumed := 0
	producersDone := false
	deadline := time.Now().Add(20 * time.Second)
	for consumed < producers*perProd {
		k := q.DequeueBatch(^uint64(0), out)
		consumed += k
		if k > 0 {
			continue
		}
		if producersDone {
			t.Fatalf("consumed %d of %d with producers done", consumed, producers*perProd)
		}
		if time.Now().After(deadline) {
			t.Fatal("churn run wedged")
		}
		select {
		case <-done:
			producersDone = true
		default:
		}
		runtime.Gosched()
	}
	stopRead.Store(true)
	rwg.Wait()
	if n := negative.Load(); n != 0 {
		t.Fatalf("Len went negative during churn: %d", n)
	}
	if l := q.Len(); l != 0 {
		t.Fatalf("Len = %d at quiescence, want exactly 0", l)
	}
}

// TestShapedGroupPartitionAndOrder is the shaped runtime's group test:
// elements with release times and priorities publish across two groups,
// each group's worker migrates and drains on its own clock, and the
// output must keep (a) the flow→group partition, (b) release gating
// (nothing before its sendAt bucket), and (c) priority order within each
// group's drain.
func TestShapedGroupPartitionAndOrder(t *testing.T) {
	const n = 6000
	q := NewShaped(ShapedOptions{
		NumShards: 4,
		NumGroups: 2,
		RingBits:  6,
		Shaper:    queue.Config{NumBuckets: 1 << 12, Granularity: 1},
		Sched:     queue.Config{NumBuckets: 1 << 12, Granularity: 1},
		Pair:      pairElem,
	})
	rng := rand.New(rand.NewSource(11))
	elems := make(map[*bucket.Node]*elem, n) // keyed by SCHED handle (drains return it)
	flowOfSched := make(map[*bucket.Node]uint64, n)
	for i := 0; i < n; i++ {
		e := newElem(uint64(rng.Intn(1<<10)), uint64(rng.Intn(1<<11)))
		flow := uint64(rng.Intn(211))
		elems[&e.sched] = e
		flowOfSched[&e.sched] = flow
		q.Enqueue(flow, &e.timer, e.sendAt, e.rank)
	}

	now := uint64(1 << 10) // everything due
	var wg sync.WaitGroup
	drained := make([][]*bucket.Node, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]*bucket.Node, 128)
			for {
				k := q.GroupDequeueBatch(g, now, ^uint64(0), out)
				if k == 0 {
					return
				}
				drained[g] = append(drained[g], out[:k]...)
			}
		}(g)
	}
	wg.Wait()

	total := 0
	for g := range drained {
		last := uint64(0)
		for i, nd := range drained[g] {
			e, ok := elems[nd]
			if !ok {
				t.Fatalf("group %d drained an unknown handle", g)
			}
			if want := q.GroupFor(flowOfSched[nd]); want != g {
				t.Fatalf("flow %d drained by group %d, owned by group %d", flowOfSched[nd], g, want)
			}
			if i > 0 && e.rank < last {
				t.Fatalf("group %d: priority inversion %d after %d", g, e.rank, last)
			}
			last = e.rank
			total++
		}
	}
	if total != n {
		t.Fatalf("drained %d, want %d", total, n)
	}
	if q.Len() != 0 || q.SchedLen() != 0 {
		t.Fatalf("Len=%d SchedLen=%d after full drain", q.Len(), q.SchedLen())
	}
}
