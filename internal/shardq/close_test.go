package shardq

import (
	"testing"

	"eiffel/internal/bucket"
	"eiffel/internal/queue"
)

// TestCloseRefusesAdmission pins the quiesce contract on the plain
// runtime: after Close every refusable path refuses with PushClosed —
// TryEnqueue regardless of occupancy (even with no bound configured),
// and FlushAdmit reporting the whole staged batch rejected with the
// closed reason, which dominates shard-full.
func TestCloseRefusesAdmission(t *testing.T) {
	q := newBoundedQ(2, 10, 0) // unbounded: only Close can refuse
	var nodes [8]bucket.Node
	if !q.TryEnqueue(0, &nodes[0], 0) {
		t.Fatal("TryEnqueue refused while open and unbounded")
	}
	if q.Closed() {
		t.Fatal("Closed before Close")
	}
	q.Close()
	q.Close() // idempotent
	if !q.Closed() {
		t.Fatal("Closed false after Close")
	}
	if q.TryEnqueue(0, &nodes[1], 0) {
		t.Fatal("TryEnqueue admitted after Close")
	}
	if q.TryEnqueueAux(1, &nodes[2], 0, 7) {
		t.Fatal("TryEnqueueAux admitted after Close")
	}

	p := q.NewProducer(0)
	for i := 3; i < 6; i++ {
		p.Enqueue(uint64(i), &nodes[i], 0)
	}
	res := p.FlushAdmit()
	if res.Admitted != 0 || len(res.Rejected) != 3 || res.Reason != PushClosed {
		t.Fatalf("post-close FlushAdmit: admitted %d rejected %d reason %v, want 0/3/closed",
			res.Admitted, len(res.Rejected), res.Reason)
	}
	if got := q.Stats().Rejected; got != 5 {
		t.Fatalf("Snapshot.Rejected = %d, want 5", got)
	}

	// The packet admitted before Close still drains: Close quiesces
	// admission, never the consumer side.
	out := make([]*bucket.Node, 4)
	if got := q.DequeueBatch(^uint64(0), out); got != 1 {
		t.Fatalf("post-close drain popped %d, want the 1 pre-close element", got)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

// TestCloseDominatesShardFull pins the reason precedence: a flush cycle
// that saw both refusal causes reports PushClosed, the terminal one.
func TestCloseDominatesShardFull(t *testing.T) {
	const bound = 2
	q := newBoundedQ(1, 10, bound)
	p := q.NewProducer(0)
	var nodes [8]bucket.Node
	// Stage past the bound, flush: shard-full refusals.
	for i := 0; i < 4; i++ {
		p.Enqueue(0, &nodes[i], uint64(i))
	}
	if res := p.FlushAdmit(); res.Reason != PushShardFull {
		t.Fatalf("pre-close reason = %v, want shard-full", res.Reason)
	}
	// Refuse once at the bound, then close before the flush completes the
	// cycle: the cycle's verdict must be closed.
	p.Enqueue(0, &nodes[4], 0)
	q.Close()
	if res := p.FlushAdmit(); res.Reason != PushClosed || len(res.Rejected) != 1 {
		t.Fatalf("post-close cycle: rejected %d reason %v, want 1/closed", len(res.Rejected), res.Reason)
	}
}

// TestShapedCloseRefusesAdmission runs the same quiesce contract on the
// shaped runtime.
func TestShapedCloseRefusesAdmission(t *testing.T) {
	q := NewShaped(ShapedOptions{
		NumShards: 1,
		RingBits:  10,
		Shaper:    queue.Config{NumBuckets: 1 << 12, Granularity: 1},
		Sched:     queue.Config{NumBuckets: 1 << 12, Granularity: 1},
		Pair:      pairElem,
	})
	e0, e1, e2 := newElem(0, 0), newElem(0, 1), newElem(0, 2)
	if !q.TryEnqueue(0, &e0.timer, 0, 0) {
		t.Fatal("shaped TryEnqueue refused while open")
	}
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed false after Close")
	}
	if q.TryEnqueue(0, &e1.timer, 0, 1) {
		t.Fatal("shaped TryEnqueue admitted after Close")
	}
	p := q.NewProducer(0)
	p.Enqueue(0, &e2.timer, 0, 2)
	if res := p.FlushAdmit(); res.Admitted != 0 || len(res.Rejected) != 1 || res.Reason != PushClosed {
		t.Fatalf("shaped post-close FlushAdmit: admitted %d rejected %d reason %v, want 0/1/closed",
			res.Admitted, len(res.Rejected), res.Reason)
	}
	if got := q.Stats().Rejected; got != 2 {
		t.Fatalf("shaped Snapshot.Rejected = %d, want 2", got)
	}
}
