package shardq

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"eiffel/internal/bucket"
	"eiffel/internal/queue"
	"eiffel/internal/stats"
)

// PairFunc maps the node a producer published (the element's handle in the
// time-indexed shaper) to the element's second handle, used by the
// priority-indexed scheduler. The two handles must belong to the same
// element and the scheduler handle must be detached while the element sits
// in the shaper — exactly the contract pkt.Packet's TimerNode/SchedNode
// pair is built for (Figure 8's decoupling).
type PairFunc func(*bucket.Node) *bucket.Node

// ShapedOptions sizes a shaped-and-scheduled sharded runtime.
type ShapedOptions struct {
	// NumShards is the shard count, rounded up to a power of two
	// (default 8).
	NumShards int
	// RingBits sizes each shard's MPSC ring at 1<<RingBits slots
	// (default 10).
	RingBits uint
	// Shaper sizes each shard's time-indexed cFFS (ranks are release
	// timestamps; granularity is the shaping precision).
	Shaper queue.Config
	// Sched sizes each shard's priority-indexed scheduler (ranks are
	// scheduling priorities; granularity is the priority resolution). The
	// config spans 2*NumBuckets*Granularity of rank space from Start, the
	// cFFS convention.
	Sched queue.Config
	// NumGroups partitions the shards into independent consumer groups
	// (default 1), exactly as Options.NumGroups does for the plain
	// runtime: each group's drain surface may be driven by its own worker
	// goroutine, and flows never span groups.
	NumGroups int
	// ShardBound caps each shard's published occupancy for the bounded-
	// admission paths (TryEnqueue, ShapedProducer.FlushAdmit); 0 keeps
	// the legacy unbounded spill. See Options.ShardBound and admit.go.
	ShardBound int
	// SchedMoving selects a circular cFFS for the scheduler side, for
	// priority domains that move forward without bound (virtual finish
	// times). The default is a fixed-range FFS-indexed vector-bucket store
	// with identical ordering semantics over the configured span (ranks
	// outside it clamp to the edge buckets) and a cheaper hot path: slice
	// appends and sequential whole-bucket copies instead of intrusive
	// list links and pointer chases.
	SchedMoving bool
	// SchedBackend overrides the scheduler-side backend, called once per
	// shard — the shaped twin of Options.Backend. This is how the
	// approximate family (NewGradSched, NewRIFOSched) drops in: the
	// factory's Scheduler replaces the SchedMoving selection above, which
	// applies when SchedBackend is nil. Approximate backends relax global
	// priority order within their documented inversion bound; the merge
	// machinery only needs the Scheduler progress rule, which every
	// backend honors.
	SchedBackend func(shard int) Scheduler
	// Pair maps a shaper handle to its scheduler twin. Required.
	Pair PairFunc
}

func (o ShapedOptions) withDefaults() ShapedOptions {
	base := Options{NumShards: o.NumShards, RingBits: o.RingBits, NumGroups: o.NumGroups}.withDefaults()
	o.NumShards, o.RingBits, o.NumGroups = base.NumShards, base.RingBits, base.NumGroups
	return o
}

// shapedShard is one partition of the shaped runtime: the same lock-free
// publication ring as the plain runtime, in front of TWO mutex-protected
// Scheduler backends — a shaper keyed by release time and a scheduler
// keyed by priority. Producers only ever feed the shaper side; the
// consumer migrates due elements shaper→scheduler and drains the
// scheduler.
type shapedShard struct {
	ring *ring
	mu   sync.Mutex

	shaper Scheduler
	sched  Scheduler

	// Flush staging (guarded by mu): ring pops partition into a
	// scheduler-bound run and a shaper-bound run, and each run lands as
	// one backend EnqueueBatch call instead of one interface dispatch per
	// element. Retains its last run of node pointers until overwritten,
	// like the ring — bounded, and the nodes are live in the queues.
	//
	//eiffel:guarded(mu)
	dueNs []*bucket.Node // scheduler-bound (already due)
	//eiffel:guarded(mu)
	dueRanks []uint64
	//eiffel:guarded(mu)
	parkNs []*bucket.Node // shaper-bound (still shaped)
	//eiffel:guarded(mu)
	parkSendAts []uint64

	// qlen mirrors shaper.Len()+sched.Len() so Len readers need no lock;
	// migration moves elements between the two without changing it.
	qlen atomic.Int64

	// fallbackGen counts producer-side fallback flushes, as in shard.
	fallbackGen atomic.Uint32

	_ [64]byte // keep one shard's lock traffic off the next's cache lines
}

// enqueuePubsLocked parks a staged run that never made it into the ring (a
// ShapedProducer's ring-full fallback) in the shaper, stashing each
// element's priority on its paired handle and converting through the flush
// scratch so the backend still sees whole runs. Callers hold mu and settle
// qlen themselves.
//
//eiffel:locked(mu)
//eiffel:hotpath
func (s *shapedShard) enqueuePubsLocked(pair PairFunc, pubs []pub) {
	for len(pubs) > 0 {
		k := len(s.parkNs)
		if k > len(pubs) {
			k = len(pubs)
		}
		for j := 0; j < k; j++ {
			pair(pubs[j].n).SetRank(pubs[j].aux)
			s.parkNs[j], s.parkSendAts[j] = pubs[j].n, pubs[j].rank
		}
		s.shaper.EnqueueBatch(s.parkNs[:k], s.parkSendAts[:k])
		pubs = pubs[k:]
	}
}

// flushLocked drains the ring into the shaper in staged runs, stashing
// each element's priority on its scheduler handle for the later migration.
// Producer-side fallback path: producers know no drain bound and must
// never touch the scheduler (the consumer's merge caches scheduler heads).
// Callers hold mu.
//
//eiffel:locked(mu)
//eiffel:hotpath
func (s *shapedShard) flushLocked(pair PairFunc) (drained int) {
	for {
		k := 0
		for k < len(s.parkNs) {
			n, sendAt, rank, ok := s.ring.pop()
			if !ok {
				break
			}
			pair(n).SetRank(rank)
			s.parkNs[k], s.parkSendAts[k] = n, sendAt
			k++
		}
		if k == 0 {
			break
		}
		s.shaper.EnqueueBatch(s.parkNs[:k], s.parkSendAts[:k])
		drained += k
		if k < len(s.parkNs) {
			break
		}
	}
	if drained > 0 {
		s.qlen.Add(int64(drained))
		s.ring.publish()
	}
	return drained
}

// flushDueLocked is the consumer's flush: elements already due at the
// drain bound skip the shaper entirely and land straight in the scheduler
// — they would migrate in this same pass anyway, so the detour through the
// time-indexed queue is pure wasted work (the shaped analogue of the plain
// runtime's DirectDue, except nothing is reordered: the scheduler still
// merges by priority). The due path converts to the PAIRED scheduler
// handle immediately (for the qdisc pairing this is pure pointer
// arithmetic), so every element the scheduler ever holds — and therefore
// every node a drain returns — is its scheduler handle; consumers convert
// back without consulting the node's memory. Elements that actually wait
// in the shaper stash their priority on the paired handle for the later
// migration. Not-yet-due elements park in the shaper as usual. Each
// destination receives whole staged runs, FIFO order within each
// preserved. Callers hold mu; consumer-side only.
//
//eiffel:locked(mu)
//eiffel:hotpath
func (s *shapedShard) flushDueLocked(pair PairFunc, due uint64) (drained, direct int) {
	for {
		dd, pp := 0, 0
		for dd < len(s.dueNs) && pp < len(s.parkNs) {
			n, sendAt, rank, ok := s.ring.pop()
			if !ok {
				break
			}
			if sendAt <= due {
				s.dueNs[dd], s.dueRanks[dd] = pair(n), rank
				dd++
			} else {
				pair(n).SetRank(rank)
				s.parkNs[pp], s.parkSendAts[pp] = n, sendAt
				pp++
			}
		}
		if dd == 0 && pp == 0 {
			break
		}
		if dd > 0 {
			s.sched.EnqueueBatch(s.dueNs[:dd], s.dueRanks[:dd])
			direct += dd
		}
		if pp > 0 {
			s.shaper.EnqueueBatch(s.parkNs[:pp], s.parkSendAts[:pp])
		}
		drained += dd + pp
		if dd < len(s.dueNs) && pp < len(s.parkNs) {
			break
		}
	}
	if drained > 0 {
		s.qlen.Add(int64(drained))
		s.ring.publish()
	}
	return drained, direct
}

// Shaped is the shaped-and-scheduled sharded runtime: the multi-producer
// scaling of the paper's decoupled shaping (§3.2.2, Figure 8). Each
// element carries two keys — a release time (sendAt) and a priority
// (rank). Producers publish (node, sendAt, rank) triples over lock-free
// rings; the consumer first migrates elements whose release time has
// arrived from the per-shard shapers into the per-shard schedulers, then
// drains the schedulers in merged cross-shard priority order. An element
// is therefore never released before its release bucket, and among
// released elements global priority order holds to scheduler-bucket
// granularity — the combination hardware PIFOs cannot express.
//
// Concurrency contract matches Q: Enqueue from any number of goroutines;
// each consumer group's drain surface (GroupDequeueBatch, GroupNextRelease,
// GroupFlush) from one goroutine per group, distinct groups concurrently;
// the group-less surface (DequeueBatch, DequeueMin, NextRelease, Flush)
// requires exclusive access to every group. Each group worker passes its
// own clock value — groups migrate and drain on independent clocks, and
// because flows never span groups, per-flow shaping and priority order
// stay exactly the single-consumer order regardless of clock skew between
// workers.
type Shaped struct {
	shards    []shapedShard
	shardBits uint
	pair      PairFunc

	// bound is ShapedOptions.ShardBound (0 = unbounded); rejected counts
	// bounded-admission refusals.
	bound    int64
	rejected stats.Counter

	// closed quiesces the refusable admission paths (see Close).
	closed atomic.Bool

	// admitting counts refusable admissions in flight between their closed
	// check and their publication; see Q.admitting.
	admitting atomic.Int64

	// groups holds each consumer group's private drain state (cached
	// heads, migration scratch); groupShift maps shard→group.
	groups     []shapedGroup
	groupShift uint

	// prodPool recycles staging ShapedProducers for the one-shot
	// EnqueueBatch surface (see Q.prodPool).
	prodPool sync.Pool

	ringFull    stats.Counter
	flushes     stats.Counter
	flushed     stats.Counter
	migrated    stats.Counter
	batches     stats.Counter
	batched     stats.Counter
	bulkClaims  stats.Counter
	bulkClaimed stats.Counter
}

// shapedGroup is one consumer group's private drain state for the shaped
// runtime: cached shaper/scheduler heads for its shards, the group's own
// migration scratch (group workers migrate concurrently, so the scratch
// cannot be shared), and the group's count of scheduler-resident
// elements. Padded like groupState.
type shapedGroup struct {
	lo, hi int

	// shaperHeads caches each owned shard's soonest release time;
	// schedHeads caches each owned shard's minimum priority. Both indexed
	// by shard-lo.
	shaperHeads []headState
	schedHeads  []headState

	migScratch []*bucket.Node // migration conversion space
	migNs      []*bucket.Node // paired-handle staging for batched migration
	migRanks   []uint64

	// schedN counts this group's elements currently sitting in scheduler
	// queues (migrated but not yet drained), readable from any goroutine.
	schedN atomic.Int64

	_ [64]byte
}

// NewShaped returns a shaped-and-scheduled runtime whose shards each own a
// shaper and a scheduler built from opt.
func NewShaped(opt ShapedOptions) *Shaped {
	if opt.Pair == nil {
		panic("shardq: NewShaped needs a Pair function")
	}
	opt = opt.withDefaults()
	q := &Shaped{
		shards:    make([]shapedShard, opt.NumShards),
		shardBits: uint(bits.TrailingZeros(uint(opt.NumShards))),
		pair:      opt.Pair,
		bound:     int64(opt.ShardBound),
	}
	per := opt.NumShards / opt.NumGroups
	q.groupShift = uint(bits.TrailingZeros(uint(per)))
	q.groups = make([]shapedGroup, opt.NumGroups)
	for g := range q.groups {
		q.groups[g] = shapedGroup{
			lo: g * per, hi: (g + 1) * per,
			shaperHeads: make([]headState, per),
			schedHeads:  make([]headState, per),
			migScratch:  make([]*bucket.Node, flushChunk),
			migNs:       make([]*bucket.Node, flushChunk),
			migRanks:    make([]uint64, flushChunk),
		}
	}
	for i := range q.shards {
		s := &q.shards[i]
		s.ring = newRing(opt.RingBits)
		s.shaper = wrapPQ(queue.New(queue.KindCFFS, opt.Shaper))
		if opt.SchedBackend != nil {
			s.sched = opt.SchedBackend(i)
		} else if opt.SchedMoving {
			s.sched = wrapPQ(queue.New(queue.KindCFFS, opt.Sched))
		} else {
			s.sched = newVecSched(opt.Sched)
		}
		//eiffel:allow(lockcheck) construction: the shard is not shared until NewShaped returns
		s.dueNs = make([]*bucket.Node, flushChunk)
		//eiffel:allow(lockcheck) construction: the shard is not shared until NewShaped returns
		s.dueRanks = make([]uint64, flushChunk)
		//eiffel:allow(lockcheck) construction: the shard is not shared until NewShaped returns
		s.parkNs = make([]*bucket.Node, flushChunk)
		//eiffel:allow(lockcheck) construction: the shard is not shared until NewShaped returns
		s.parkSendAts = make([]uint64, flushChunk)
	}
	q.prodPool.New = func() any { return q.NewProducer(0) }
	return q
}

// NumShards returns the shard count.
func (q *Shaped) NumShards() int { return len(q.shards) }

// NumGroups returns the consumer-group count.
func (q *Shaped) NumGroups() int { return len(q.groups) }

// GroupShards returns the half-open shard index range consumer group g
// owns.
func (q *Shaped) GroupShards(g int) (lo, hi int) { return q.groups[g].lo, q.groups[g].hi }

// GroupFor returns the consumer group that drains flow's shard.
func (q *Shaped) GroupFor(flow uint64) int { return q.ShardFor(flow) >> q.groupShift }

// Len returns the number of queued elements (published but not yet
// dequeued), wherever they sit: ring, shaper, or scheduler. Safe from any
// goroutine; while producers and the consumer run it may transiently
// overcount by up to one in-flight batch, and it is exact at quiescence.
func (q *Shaped) Len() int {
	var n int64
	for i := range q.shards {
		s := &q.shards[i]
		n += s.ring.occupancy() + s.qlen.Load()
	}
	return int(n)
}

// SchedLen returns how many elements have migrated into scheduler queues
// but not yet been drained — i.e. elements that are release-eligible right
// now. Safe from any goroutine, same transient-overcount caveat as Len.
func (q *Shaped) SchedLen() int {
	var n int64
	for g := range q.groups {
		n += q.groups[g].schedN.Load()
	}
	return int(n)
}

// GroupSchedLen is SchedLen restricted to consumer group g's shards. Safe
// from any goroutine.
func (q *Shaped) GroupSchedLen(g int) int { return int(q.groups[g].schedN.Load()) }

// GroupLen is Len restricted to consumer group g's shards: elements
// published into the group but not yet dequeued, wherever they sit —
// ring, shaper, or scheduler. Safe from any goroutine, same transient-
// overcount contract as Len.
//
//eiffel:hotpath
func (q *Shaped) GroupLen(g int) int {
	gr := &q.groups[g]
	var n int64
	for i := gr.lo; i < gr.hi; i++ {
		s := &q.shards[i]
		n += s.ring.occupancy() + s.qlen.Load()
	}
	return int(n)
}

// Stats returns a snapshot of the operational counters.
func (q *Shaped) Stats() Snapshot {
	var pushes uint64
	for i := range q.shards {
		pushes += q.shards[i].ring.pushes()
	}
	return Snapshot{
		RingPushes:  pushes,
		RingFull:    q.ringFull.Load(),
		BulkClaims:  q.bulkClaims.Load(),
		BulkClaimed: q.bulkClaimed.Load(),
		Flushes:     q.flushes.Load(),
		Flushed:     q.flushed.Load(),
		Migrated:    q.migrated.Load(),
		Batches:     q.batches.Load(),
		Batched:     q.batched.Load(),
		Rejected:    q.rejected.Load(),
	}
}

// ShardFor returns the shard index flow hashes to (same Fibonacci hash as
// the plain runtime, so a flow lands on the same shard under either).
//
//eiffel:hotpath
func (q *Shaped) ShardFor(flow uint64) int {
	return int((flow * 0x9E3779B97F4A7C15) >> (64 - q.shardBits))
}

// Enqueue publishes n (the element's shaper handle) with the given release
// time and priority on flow's shard. The fast path is one lock-free ring
// push; a full ring falls back to flushing under the shard lock, exactly
// as in Q.Enqueue.
//
//eiffel:hotpath
func (q *Shaped) Enqueue(flow uint64, n *bucket.Node, sendAt, rank uint64) {
	q.enqueueShard(&q.shards[q.ShardFor(flow)], n, sendAt, rank)
}

// enqueueShard is the shard-resolved body of Enqueue, shared with the
// bounded TryEnqueue path.
//
//eiffel:hotpath
func (q *Shaped) enqueueShard(s *shapedShard, n *bucket.Node, sendAt, rank uint64) {
	if s.ring.push(n, sendAt, rank) {
		return
	}
	s.mu.Lock()
	drained := s.flushLocked(q.pair)
	q.pair(n).SetRank(rank)
	s.shaper.Enqueue(n, sendAt)
	s.qlen.Add(1)
	s.fallbackGen.Add(1)
	s.mu.Unlock()
	q.ringFull.Inc()
	if drained > 0 {
		q.flushes.Inc()
		q.flushed.Add(uint64(drained))
	}
}

// EnqueueBatch publishes ns[i] (each element's shaper handle) with release
// time sendAts[i] and priority ranks[i] on flows[i]'s shard, grouping
// elements per shard so each group lands as one multi-slot ring claim.
// Safe from any number of goroutines concurrently and allocation-free in
// steady state; everything is published by the time it returns. Producers
// with a batch stream of their own should hold a NewProducer handle.
//
//eiffel:hotpath
func (q *Shaped) EnqueueBatch(flows []uint64, ns []*Node, sendAts, ranks []uint64) {
	p := q.prodPool.Get().(*ShapedProducer)
	for i, n := range ns {
		p.Enqueue(flows[i], n, sendAts[i], ranks[i])
	}
	p.Flush()
	q.prodPool.Put(p)
}

// migrate flushes shard i's ring and moves every element whose release
// time is at or below now from the shaper into the scheduler, refreshing
// both cached heads in gr (shard i's owning group). Group-worker-side.
// The whole move runs under one lock acquisition and uses whole-bucket
// batch pops on the shaper side.
//
//eiffel:hotpath
func (q *Shaped) migrate(gr *shapedGroup, i int, now uint64) {
	s := &q.shards[i]
	sh, sc := &gr.shaperHeads[i-gr.lo], &gr.schedHeads[i-gr.lo]
	// Idle fast path: nothing new in the ring, no fallback since the last
	// look, and the cached shaper head is not yet due — the shard cannot
	// contribute anything, so skip the lock entirely.
	if sh.valid && sc.valid && s.ring.empty() && sh.gen == s.fallbackGen.Load() &&
		(!sh.ok || sh.rank > now) {
		return
	}
	s.mu.Lock()
	drained, moved := s.flushDueLocked(q.pair, now)
	for {
		k := s.shaper.DequeueBatch(now, gr.migScratch)
		if k == 0 {
			break
		}
		// Convert to the paired scheduler handles and hand the whole run
		// over in one backend call.
		for j := 0; j < k; j++ {
			sn := q.pair(gr.migScratch[j])
			gr.migNs[j], gr.migRanks[j] = sn, sn.Rank()
			gr.migScratch[j] = nil // do not pin migrated elements against GC
		}
		s.sched.EnqueueBatch(gr.migNs[:k], gr.migRanks[:k])
		moved += k
	}
	sh.rank, sh.ok = s.shaper.Min()
	sh.gen = s.fallbackGen.Load()
	sh.valid = true
	sc.rank, sc.ok = s.sched.Min()
	sc.valid = true
	s.mu.Unlock()
	if moved > 0 {
		gr.schedN.Add(int64(moved))
		q.migrated.Add(uint64(moved))
	}
	if drained > 0 {
		q.flushes.Inc()
		q.flushed.Add(uint64(drained))
	}
}

// GroupFlush drains every ring in group g into its shaper and migrates
// everything due at now, refreshing the group's cached heads.
// Group-worker-side.
//
//eiffel:hotpath
func (q *Shaped) GroupFlush(g int, now uint64) {
	gr := &q.groups[g]
	for i := gr.lo; i < gr.hi; i++ {
		q.migrate(gr, i, now)
	}
}

// Flush drains every shard's ring into its shaper and migrates everything
// due at now, refreshing every group's cached heads. Single-consumer
// surface.
//
//eiffel:hotpath
func (q *Shaped) Flush(now uint64) {
	for g := range q.groups {
		q.GroupFlush(g, now)
	}
}

// GroupNextRelease flushes group g's pending rings and returns the
// minimum bucket-quantized release time across the group's shapers, or
// ok=false if none of them holds an element waiting on time. Elements
// already migrated into scheduler queues are release-eligible immediately
// and are NOT covered here — check GroupSchedLen first (the migration
// pass this call runs may itself have made elements eligible NOW).
// Group-worker-side; this is the group's SoonestDeadline for arming its
// worker's timer.
//
//eiffel:hotpath
func (q *Shaped) GroupNextRelease(g int, now uint64) (uint64, bool) {
	gr := &q.groups[g]
	min, ok := uint64(0), false
	for i := gr.lo; i < gr.hi; i++ {
		q.migrate(gr, i, now)
		if h := &gr.shaperHeads[i-gr.lo]; h.ok && (!ok || h.rank < min) {
			min, ok = h.rank, true
		}
	}
	return min, ok
}

// NextRelease flushes pending rings and returns the minimum
// bucket-quantized release time across every shard's shaper, or ok=false
// if no element is waiting on time. Elements already migrated into
// scheduler queues are release-eligible immediately and are NOT covered
// here — check SchedLen first. Single-consumer surface; this is the
// aggregate SoonestDeadline for arming the host timer.
//
//eiffel:hotpath
func (q *Shaped) NextRelease(now uint64) (uint64, bool) {
	min, ok := uint64(0), false
	for g := range q.groups {
		if r, rok := q.GroupNextRelease(g, now); rok && (!ok || r < min) {
			min, ok = r, true
		}
	}
	return min, ok
}

// GroupDequeueBatch migrates every element due at now shaper→scheduler
// within consumer group g, then pops up to len(out) elements whose
// bucket-quantized priority is at most maxRank from the group's
// schedulers, merged across the group's shards exactly as
// Q.GroupDequeueBatch merges (minimum-head runs bounded by the runner-up
// head). It returns how many nodes it wrote to out; a returned node is
// always the element's PAIRED scheduler handle (see DequeueBatch).
//
// Group-worker-side: distinct groups may call this concurrently, each
// with its own clock value. Flows never span groups, so per-flow release
// gating and priority order are exactly the single-consumer order.
//
//eiffel:hotpath
func (q *Shaped) GroupDequeueBatch(g int, now, maxRank uint64, out []*bucket.Node) int {
	if len(out) == 0 {
		return 0
	}
	gr := &q.groups[g]
	for i := gr.lo; i < gr.hi; i++ {
		q.migrate(gr, i, now)
	}

	// Producers cannot disturb the merge — they only ever publish into
	// shapers, and this batch's migration pass is done — so the cached
	// scheduler heads are exact for the whole drain.
	total := mergeRuns(gr.schedHeads, maxRank, out, func(best int, limit uint64, out []*bucket.Node) int {
		s := &q.shards[gr.lo+best]
		s.mu.Lock()
		popped := s.sched.DequeueBatch(limit, out)
		s.qlen.Add(int64(-popped))
		r, ok := s.sched.Min()
		gr.schedHeads[best].rank, gr.schedHeads[best].ok = r, ok
		s.mu.Unlock()
		return popped
	})
	if total > 0 {
		gr.schedN.Add(int64(-total))
		q.batches.Inc()
		q.batched.Add(uint64(total))
	}
	return total
}

// DequeueBatch migrates every element due at now shaper→scheduler, then
// pops up to len(out) elements whose bucket-quantized priority is at most
// maxRank from the schedulers, serving every consumer group from the
// calling goroutine. With the default single group the merge spans all
// shards in global priority order exactly as before groups existed; with
// more groups the cross-group concatenation relaxes global order to group
// granularity. A returned node is always the element's PAIRED scheduler
// handle (elements reach a scheduler only through Pair — at migration, or
// directly when flushed already due); recover the element through Data,
// which both handles share, or by the handle's owner offset when the
// pairing is an embedded field. Single-consumer surface.
//
//eiffel:hotpath
func (q *Shaped) DequeueBatch(now, maxRank uint64, out []*bucket.Node) int {
	total := 0
	for g := range q.groups {
		total += q.GroupDequeueBatch(g, now, maxRank, out[total:])
		if total == len(out) {
			break
		}
	}
	return total
}

// DequeueMin migrates due elements and pops the single highest-priority
// release-eligible element (its scheduler handle), or nil if nothing is
// eligible at now. With multiple consumer groups it migrates every group
// first and serves the group whose scheduler head has the minimum
// priority, so the answer stays global. Single-consumer surface; batch
// callers should prefer DequeueBatch.
func (q *Shaped) DequeueMin(now uint64) *bucket.Node {
	g := 0
	if len(q.groups) > 1 {
		bestRank, ok := uint64(0), false
		for gi := range q.groups {
			gr := &q.groups[gi]
			for i := gr.lo; i < gr.hi; i++ {
				q.migrate(gr, i, now)
			}
			for i := range gr.schedHeads {
				if h := &gr.schedHeads[i]; h.ok && (!ok || h.rank < bestRank) {
					g, bestRank, ok = gi, h.rank, true
				}
			}
		}
		if !ok {
			return nil
		}
	}
	var one [1]*bucket.Node
	if q.GroupDequeueBatch(g, now, ^uint64(0), one[:]) == 0 {
		return nil
	}
	return one[0]
}
