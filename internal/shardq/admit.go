package shardq

// This file is the bounded-admission surface of both runtimes. The default
// overload behavior of the sharded pipeline is to ADMIT EVERYTHING: a full
// ring spills into the bucketed queue under the shard lock, and the
// backend grows without bound. That is the right default for a closed
// replay, and exactly the wrong one for open-world traffic — the paper's
// indictment of kernel FQ is precisely that unbounded per-flow state
// (and the GC that tries to claw it back) falls over past a few tens of
// thousands of flows. Options.ShardBound arms the alternative: each
// shard's published occupancy (ring + bucketed queue) is capped, and the
// admission paths report refused elements back to the caller instead of
// spilling, so the layer above can choose drop-tail or backpressure.
//
// The bound is enforced against the shard's published occupancy and is
// exact for a single admitting goroutine; concurrent admitters can
// overshoot by their in-flight claims (each checks the bound before
// claiming, without reserving), which is the usual drop-tail tolerance —
// the cap bounds state to within one in-flight batch per producer, and
// accounting (admitted + refused == offered) is exact regardless.

// PushReason classifies why bounded admission refused elements.
type PushReason uint8

const (
	// PushNone: nothing was refused.
	PushNone PushReason = iota
	// PushShardFull: the element's shard was at its occupancy bound.
	PushShardFull
	// PushClosed: the runtime was closed (Close); admission is quiesced
	// for the drain and nothing is accepted regardless of occupancy.
	PushClosed
)

// String renders the reason for logs and tables.
func (r PushReason) String() string {
	switch r {
	case PushShardFull:
		return "shard-full"
	case PushClosed:
		return "closed"
	}
	return "none"
}

// Admit is the outcome of one bounded-admission flush: how many staged
// elements were published and, in refusal order, the ones that were not.
// Rejected aliases the producer's reusable refusal buffer — it stays
// valid until the next flush (explicit or automatic) on the same handle,
// so callers must consume or copy it before reusing the producer.
type Admit struct {
	// Admitted counts elements published since the last FlushAdmit.
	Admitted int
	// Rejected holds the refused elements in refusal order: grouped by the
	// shard that refused them (flush order), oldest first within a shard —
	// NOT the caller's offer order.
	Rejected []*Node
	// Reason classifies the refusals (PushNone when Rejected is empty).
	Reason PushReason
}

// admitState is the per-producer refusal bookkeeping shared by Producer
// and ShapedProducer. The rej buffer is reused across flush cycles: it is
// reset lazily on the first refusal after a FlushAdmit handed it out, so
// the returned Admit stays readable until the handle is used again.
type admitState struct {
	adm      int
	rej      []*Node
	reason   PushReason
	rejTaken bool
}

//eiffel:hotpath
func (a *admitState) refuse(pubs []pub, reason PushReason) {
	if a.rejTaken {
		a.rej = a.rej[:0]
		a.reason = PushNone
		a.rejTaken = false
	}
	// PushClosed dominates: a cycle that saw both a full shard and a
	// closed runtime reports closed — the terminal condition the producer
	// must react to (a full shard might drain; a closed runtime will not
	// reopen).
	if a.reason != PushClosed {
		a.reason = reason
	}
	for i := range pubs {
		a.rej = append(a.rej, pubs[i].n)
	}
}

//eiffel:hotpath
func (a *admitState) take() Admit {
	res := Admit{Admitted: a.adm}
	// A cycle with no refusals leaves rej untouched since the last take —
	// still holding the PREVIOUS cycle's refusals. Hand out the buffer only
	// when this cycle's refuse() actually rebuilt it.
	if !a.rejTaken && len(a.rej) > 0 {
		res.Rejected = a.rej
		res.Reason = a.reason
	}
	a.adm = 0
	a.rejTaken = true
	return res
}

// TryEnqueue is Enqueue under the configured shard bound: it publishes n
// unless flow's shard is at its occupancy cap — or the runtime is closed
// (see Close) — and reports whether the element was admitted. With no
// bound configured and the runtime open it never refuses.
//
//eiffel:hotpath
func (q *Q) TryEnqueue(flow uint64, n *Node, rank uint64) bool {
	return q.TryEnqueueAux(flow, n, rank, 0)
}

// TryEnqueueAux is TryEnqueue carrying the ring's second payload word.
//
//eiffel:hotpath
func (q *Q) TryEnqueueAux(flow uint64, n *Node, rank, aux uint64) bool {
	// The admitting increment must precede the closed load (both are
	// sequentially consistent): either this producer observes Close, or
	// the closing drain observes the in-flight admission and waits for
	// the publication (AdmitIdle) — never neither.
	q.admitting.Add(1)
	if q.closed.Load() {
		q.admitting.Add(-1)
		q.rejected.Inc()
		return false
	}
	s := &q.shards[q.ShardFor(flow)]
	if q.bound > 0 && s.qlen.Load()+s.ring.occupancy() >= q.bound {
		q.admitting.Add(-1)
		q.rejected.Inc()
		return false
	}
	q.enqueueShard(s, n, rank, aux)
	q.admitting.Add(-1)
	return true
}

// TryEnqueue is Shaped.Enqueue under the configured shard bound; see
// Q.TryEnqueue.
//
//eiffel:hotpath
func (q *Shaped) TryEnqueue(flow uint64, n *Node, sendAt, rank uint64) bool {
	q.admitting.Add(1) // before the closed load; see Q.TryEnqueueAux
	if q.closed.Load() {
		q.admitting.Add(-1)
		q.rejected.Inc()
		return false
	}
	s := &q.shards[q.ShardFor(flow)]
	if q.bound > 0 && s.qlen.Load()+s.ring.occupancy() >= q.bound {
		q.admitting.Add(-1)
		q.rejected.Inc()
		return false
	}
	q.enqueueShard(s, n, sendAt, rank)
	q.admitting.Add(-1)
	return true
}

// Bound returns the per-shard occupancy bound (0 = unbounded).
func (q *Q) Bound() int { return int(q.bound) }

// Bound returns the per-shard occupancy bound (0 = unbounded).
func (q *Shaped) Bound() int { return int(q.bound) }

// Close quiesces admission: every subsequent refusable enqueue
// (TryEnqueue, TryEnqueueAux, Producer.FlushAdmit) refuses with
// PushClosed, so producers driving those paths drain to a stop and the
// consumer side can run the backlog down to exact quiescence. Close does
// NOT gate the infallible paths (Enqueue, EnqueueBatch, Flush) — they
// have no refusal channel; callers that keep using them after Close are
// outside the lifecycle contract and own the consequences. Idempotent;
// safe from any goroutine. A producer that raced Close may still publish
// the claim it had already passed the closed check for — drains absorb
// that window by re-passing until AdmitIdle reports the stragglers done.
func (q *Q) Close() { q.closed.Store(true) }

// Closed reports whether Close has been called.
//
//eiffel:hotpath
func (q *Q) Closed() bool { return q.closed.Load() }

// AdmitIdle reports that no refusable admission is in flight between its
// closed check and its publication. After Close, once AdmitIdle returns
// true no straggler can still publish (new attempts refuse), so a drain
// that THEN sees an empty runtime has reached true quiescence — checking
// in the other order readmits the race this exists to close.
func (q *Q) AdmitIdle() bool { return q.admitting.Load() == 0 }

// Close quiesces admission for the shaped runtime; see Q.Close.
func (q *Shaped) Close() { q.closed.Store(true) }

// Closed reports whether Close has been called.
//
//eiffel:hotpath
func (q *Shaped) Closed() bool { return q.closed.Load() }

// AdmitIdle reports no in-flight refusable admission; see Q.AdmitIdle.
func (q *Shaped) AdmitIdle() bool { return q.admitting.Load() == 0 }
