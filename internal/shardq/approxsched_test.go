package shardq

import (
	"fmt"
	"math/rand"
	"testing"

	"eiffel/internal/bucket"
	"eiffel/internal/queue"
)

// TestGradSchedExactMatchesVecSched is the zero-width-gradient degeneracy
// property: gradSched in Exact mode (Theorem-1 index over the same slice-
// bucket store) must reproduce vecSched's pop sequence byte for byte —
// same counts, same nodes, same order — across random interleaved
// EnqueueBatch/DequeueBatch sequences, including partial pops, maxRank
// cutoffs, and edge-clamped ranks.
func TestGradSchedExactMatchesVecSched(t *testing.T) {
	geometries := []queue.Config{
		{NumBuckets: 8, Granularity: 10},
		{NumBuckets: 64, Granularity: 1},
		{NumBuckets: 256, Granularity: 2048, Start: 1 << 16},
	}
	for gi, cfg := range geometries {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("geo%d/seed%d", gi, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				vec := NewVecSched(cfg)
				grad := NewGradSched(cfg, GradSchedOptions{Exact: true})

				const n = 1 << 12
				vnodes := make([]*bucket.Node, n)
				gnodes := make([]*bucket.Node, n)
				idx := make(map[*bucket.Node]int, 2*n)
				for i := range vnodes {
					vnodes[i], gnodes[i] = &bucket.Node{}, &bucket.Node{}
					idx[vnodes[i]] = i
					idx[gnodes[i]] = i
				}
				free := make([]int, n)
				for i := range free {
					free[i] = i
				}

				span := 2 * uint64(cfg.NumBuckets) * cfg.Granularity
				vout := make([]*bucket.Node, 64)
				gout := make([]*bucket.Node, 64)
				vb := make([]*bucket.Node, 64)
				gb := make([]*bucket.Node, 64)
				ranks := make([]uint64, 64)
				for op := 0; op < 4000; op++ {
					if k := rng.Intn(64) + 1; rng.Intn(2) == 0 && k <= len(free) {
						for j := 0; j < k; j++ {
							i := free[len(free)-1]
							free = free[:len(free)-1]
							// Overshoot the span by half on both sides so edge
							// clamping is on the tested path.
							r := uint64(rng.Int63n(int64(2 * span)))
							if r > span/2 {
								r -= span / 2
							}
							ranks[j] = cfg.Start + r
							vb[j], gb[j] = vnodes[i], gnodes[i]
						}
						vec.EnqueueBatch(vb[:k], ranks[:k])
						grad.EnqueueBatch(gb[:k], ranks[:k])
					} else {
						maxRank := ^uint64(0)
						if rng.Intn(4) > 0 {
							maxRank = cfg.Start + uint64(rng.Int63n(int64(span+span/4)))
						}
						k := rng.Intn(64) + 1
						vk := vec.DequeueBatch(maxRank, vout[:k])
						gk := grad.DequeueBatch(maxRank, gout[:k])
						if vk != gk {
							t.Fatalf("op %d: DequeueBatch(max=%d) popped %d vs %d", op, maxRank, vk, gk)
						}
						for j := 0; j < vk; j++ {
							if idx[vout[j]] != idx[gout[j]] {
								t.Fatalf("op %d pos %d: vec popped node %d, grad-exact popped node %d",
									op, j, idx[vout[j]], idx[gout[j]])
							}
							free = append(free, idx[vout[j]])
						}
					}
					vm, vok := vec.Min()
					gm, gok := grad.Min()
					if vok != gok || (vok && vm != gm) {
						t.Fatalf("op %d: Min = (%d,%v) vs (%d,%v)", op, vm, vok, gm, gok)
					}
					if vec.Len() != grad.Len() {
						t.Fatalf("op %d: Len = %d vs %d", op, vec.Len(), grad.Len())
					}
				}
			})
		}
	}
}

// rankDist is one random rank distribution over a configured span.
type rankDist struct {
	name string
	gen  func(rng *rand.Rand, span uint64, round int) uint64
}

// rankDists are the distributions the inversion-bound properties sweep:
// the bound must hold for ANY rank pattern, so the sweep includes the
// dense/uniform case the estimator is calibrated for, sparse and skewed
// occupancy where the curvature estimate degrades worst, a shifting
// cluster (moving-range style), and heavy duplicates.
var rankDists = []rankDist{
	{"uniform", func(rng *rand.Rand, span uint64, _ int) uint64 {
		return uint64(rng.Int63n(int64(span)))
	}},
	{"dense-low", func(rng *rand.Rand, span uint64, _ int) uint64 {
		if rng.Intn(16) == 0 {
			return span - 1 - uint64(rng.Int63n(int64(span/8+1)))
		}
		return uint64(rng.Int63n(int64(span/8 + 1)))
	}},
	{"bimodal", func(rng *rand.Rand, span uint64, _ int) uint64 {
		r := uint64(rng.Int63n(int64(span/16 + 1)))
		if rng.Intn(2) == 0 {
			return r
		}
		return span - 1 - r
	}},
	{"cluster", func(rng *rand.Rand, span uint64, round int) uint64 {
		width := span/32 + 1
		base := (uint64(round) * span / 7) % (span - width)
		return base + uint64(rng.Int63n(int64(width)))
	}},
	{"duplicates", func(rng *rand.Rand, span uint64, _ int) uint64 {
		return (uint64(rng.Intn(5)) * span / 5) % span
	}},
}

// drainInversionMax enqueues ranks, drains fully, and returns the largest
// rank-inversion magnitude of the drain sequence against the exact oracle
// (running-max accounting: every element is eligible, so exact order is
// nondecreasing rank).
func drainInversionMax(t *testing.T, s Scheduler, nodes []*bucket.Node, ranks []uint64, out []*bucket.Node) uint64 {
	t.Helper()
	s.EnqueueBatch(nodes, ranks)
	if s.Len() != len(nodes) {
		t.Fatalf("Len = %d after enqueueing %d", s.Len(), len(nodes))
	}
	var runMax, maxMag uint64
	popped := 0
	for {
		k := s.DequeueBatch(^uint64(0), out)
		if k == 0 {
			break
		}
		for _, n := range out[:k] {
			r := n.Rank()
			if popped > 0 && r < runMax {
				if mag := runMax - r; mag > maxMag {
					maxMag = mag
				}
			} else {
				runMax = r
			}
			popped++
		}
	}
	if popped != len(nodes) || s.Len() != 0 {
		t.Fatalf("drain popped %d of %d, Len = %d", popped, len(nodes), s.Len())
	}
	return maxMag
}

// TestGradSchedInversionBound is the analytic-containment property for the
// approximate gradient backend: across random rank distributions, seeds,
// geometries, and alphas, the measured inversion magnitude of a full
// drain never exceeds GradSchedBound — the rigorous window of the
// curvature estimate (gradq.GradWeights.Window) times the bucket width.
func TestGradSchedInversionBound(t *testing.T) {
	configs := []struct {
		cfg queue.Config
		opt GradSchedOptions
	}{
		{queue.Config{NumBuckets: 64, Granularity: 8}, GradSchedOptions{}},
		{queue.Config{NumBuckets: 256, Granularity: 2048}, GradSchedOptions{}},
		{queue.Config{NumBuckets: 256, Granularity: 2048}, GradSchedOptions{Alpha: 4}},
		{queue.Config{NumBuckets: 1024, Granularity: 1, Start: 1 << 20}, GradSchedOptions{Alpha: 8}},
		{queue.Config{NumBuckets: 64, Granularity: 8}, GradSchedOptions{Exact: true}},
	}
	for ci, c := range configs {
		bound := GradSchedBound(c.cfg, c.opt)
		span := 2 * uint64(c.cfg.NumBuckets) * c.cfg.Granularity
		for _, dist := range rankDists {
			for seed := int64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("cfg%d/%s/seed%d", ci, dist.name, seed), func(t *testing.T) {
					rng := rand.New(rand.NewSource(seed))
					s := NewGradSched(c.cfg, c.opt)
					nodes := make([]*bucket.Node, 1<<11)
					for i := range nodes {
						nodes[i] = &bucket.Node{}
					}
					ranks := make([]uint64, len(nodes))
					out := make([]*bucket.Node, 128)
					for round := 0; round < 8; round++ {
						for i := range ranks {
							ranks[i] = c.cfg.Start + dist.gen(rng, span, round)
						}
						if got := drainInversionMax(t, s, nodes, ranks, out); got > bound {
							t.Fatalf("round %d: inversion magnitude %d exceeds analytic bound %d", round, got, bound)
						}
					}
				})
			}
		}
	}
}

// TestRIFOSchedInversionBound is the same property for the fixed-window
// backend: inversions are pure slot quantization, so the measured
// magnitude must stay under one slot's width (RIFOSchedBound) for every
// distribution and window size.
func TestRIFOSchedInversionBound(t *testing.T) {
	configs := []struct {
		cfg   queue.Config
		slots int
	}{
		{queue.Config{NumBuckets: 256, Granularity: 2048}, 0},
		{queue.Config{NumBuckets: 256, Granularity: 2048}, 16},
		{queue.Config{NumBuckets: 64, Granularity: 8}, 256},
		{queue.Config{NumBuckets: 1024, Granularity: 1, Start: 1 << 20}, 64},
	}
	for ci, c := range configs {
		bound := RIFOSchedBound(c.cfg, c.slots)
		span := 2 * uint64(c.cfg.NumBuckets) * c.cfg.Granularity
		for _, dist := range rankDists {
			for seed := int64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("cfg%d/%s/seed%d", ci, dist.name, seed), func(t *testing.T) {
					rng := rand.New(rand.NewSource(seed))
					s := NewRIFOSched(c.cfg, c.slots)
					nodes := make([]*bucket.Node, 1<<11)
					for i := range nodes {
						nodes[i] = &bucket.Node{}
					}
					ranks := make([]uint64, len(nodes))
					out := make([]*bucket.Node, 128)
					for round := 0; round < 8; round++ {
						for i := range ranks {
							ranks[i] = c.cfg.Start + dist.gen(rng, span, round)
						}
						if got := drainInversionMax(t, s, nodes, ranks, out); got > bound {
							t.Fatalf("round %d: inversion magnitude %d exceeds analytic bound %d", round, got, bound)
						}
					}
				})
			}
		}
	}
}

// TestApproxSchedProgressRule pins the contract mergeRuns depends on: a
// DequeueBatch that returns 0 must leave the backend empty or with Min
// above the maxRank it was called with — for both approximate backends,
// whose Min is quantized and shares DequeueBatch's selection.
func TestApproxSchedProgressRule(t *testing.T) {
	cfg := queue.Config{NumBuckets: 256, Granularity: 2048}
	backends := map[string]Scheduler{
		"grad":       NewGradSched(cfg, GradSchedOptions{}),
		"grad-exact": NewGradSched(cfg, GradSchedOptions{Exact: true}),
		"rifo":       NewRIFOSched(cfg, 64),
	}
	span := 2 * uint64(cfg.NumBuckets) * cfg.Granularity
	for name, s := range backends {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			nodes := make([]*bucket.Node, 512)
			ranks := make([]uint64, len(nodes))
			for i := range nodes {
				nodes[i] = &bucket.Node{}
				ranks[i] = uint64(rng.Int63n(int64(span)))
			}
			s.EnqueueBatch(nodes, ranks)
			out := make([]*bucket.Node, 64)
			for s.Len() > 0 {
				maxRank := uint64(rng.Int63n(int64(span)))
				if s.DequeueBatch(maxRank, out) == 0 {
					m, ok := s.Min()
					if !ok {
						t.Fatal("Min empty with elements queued")
					}
					if m <= maxRank {
						t.Fatalf("DequeueBatch(max=%d) returned 0 but Min=%d <= maxRank", maxRank, m)
					}
				}
			}
		})
	}
}
