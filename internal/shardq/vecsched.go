package shardq

import (
	"eiffel/internal/bucket"
	"eiffel/internal/ffsq"
	"eiffel/internal/queue"
)

// vecSched is the Shaped runtime's scheduler-side bucket store: a
// fixed-range bucketed min-queue whose buckets are slices instead of
// intrusive lists, indexed by the same hierarchical FFS bitmap as the
// cFFS. Ordering semantics are identical to a bucketed queue — ascending
// bucket order, FIFO within a bucket — but both halves of the hot path
// get cheaper: Enqueue appends to a slice without touching the previous
// tail element's cache line, and DequeueBatch hands whole buckets over
// with a sequential copy instead of a pointer chase through scattered
// nodes. The trade is generality: the rank range is fixed (ranks beyond
// it clamp into the edge buckets, preserving order only to that clamp)
// and there is no Remove — exactly the operations the scheduler side of
// the migration pipeline never needs, since priorities span a fixed
// configured range and elements only ever enter (migrate) and leave
// (merged drain) in bulk.
//
// Nodes held here are not marked queued (no bucket.Array owner), so the
// usual double-insert panics do not fire for scheduler-held elements; the
// runtime's single-consumer discipline already guarantees an element is
// in at most one structure.
type vecSched struct {
	buckets   [][]*bucket.Node
	heads     []int // per-bucket consumed prefix (partial batch pops)
	idx       *ffsq.Hier
	gran      uint64
	granShift int8   // log2(gran) when gran is a power of two, else -1
	base      uint64 // bucket number of buckets[0]
	count     int
}

func newVecSched(cfg queue.Config) *vecSched {
	// queue.Config counts buckets per HALF (the cFFS convention: a config
	// covers 2*NumBuckets*Granularity of rank space); allocate the same
	// span so a Sched config means the same range under either store.
	// Rank→bucket is one 64-bit division per enqueue — a measurable slice
	// of the migration hot path. Power-of-two granularities (the common
	// configuration: rank spans and bucket counts are both powers of two)
	// take a shift instead (vecGeometry resolves both).
	nb, gran, shift, base := vecGeometry(cfg)
	return &vecSched{
		buckets:   make([][]*bucket.Node, nb),
		heads:     make([]int, nb),
		idx:       ffsq.NewHier(nb),
		gran:      gran,
		granShift: shift,
		base:      base,
	}
}

// NewVecSched returns the exact FFS-indexed vector-bucket Scheduler over
// cfg's rank range — the shaped runtime's default backend, exported so
// backend factories (ShapedOptions.SchedBackend, the qdisc layer's
// backend selection) can name the baseline explicitly.
func NewVecSched(cfg queue.Config) Scheduler { return newVecSched(cfg) }

// VecSchedBound returns vecSched's worst-case rank-inversion magnitude in
// rank units for ranks within the configured span: bucket quantization
// only (FIFO within a bucket of gran ranks).
func VecSchedBound(cfg queue.Config) uint64 {
	_, gran, _, _ := vecGeometry(cfg)
	return gran - 1
}

func (v *vecSched) Len() int { return v.count }

// slot clamps rank's bucket into the fixed range.
func (v *vecSched) slot(rank uint64) int {
	var b uint64
	if v.granShift >= 0 {
		b = rank >> uint(v.granShift)
	} else {
		b = rank / v.gran
	}
	if b < v.base {
		return 0
	}
	if off := b - v.base; off < uint64(len(v.buckets)) {
		return int(off)
	}
	return len(v.buckets) - 1
}

func (v *vecSched) Enqueue(n *bucket.Node, rank uint64) {
	n.SetRank(rank)
	i := v.slot(rank)
	if len(v.buckets[i]) == v.heads[i] {
		v.idx.Set(i)
	}
	v.buckets[i] = append(v.buckets[i], n)
	v.count++
}

// EnqueueBatch inserts ns[i] with ranks[i] for every i: the batched form
// the migration and due-flush paths use so a whole run costs one call.
// Equivalent to that sequence of Enqueue calls (same clamping, same
// per-bucket FIFO order).
func (v *vecSched) EnqueueBatch(ns []*bucket.Node, ranks []uint64) {
	for i, n := range ns {
		v.Enqueue(n, ranks[i])
	}
}

func (v *vecSched) PeekMin() (uint64, bool) {
	if v.count == 0 {
		return 0, false
	}
	return (v.base + uint64(v.idx.Min())) * v.gran, true
}

// Min is PeekMin under the Scheduler backend contract.
func (v *vecSched) Min() (uint64, bool) { return v.PeekMin() }

// DequeueBatch pops up to len(out) elements whose bucket-quantized rank is
// at most maxRank, ascending by bucket, FIFO within a bucket.
func (v *vecSched) DequeueBatch(maxRank uint64, out []*bucket.Node) int {
	total := 0
	for total < len(out) && v.count > 0 {
		i := v.idx.Min()
		if (v.base+uint64(i))*v.gran > maxRank {
			break
		}
		pend := v.buckets[i][v.heads[i]:]
		k := copy(out[total:], pend)
		clear(pend[:k]) // consumed slots must not pin released elements
		total += k
		v.count -= k
		if k == len(pend) {
			v.buckets[i] = v.buckets[i][:0]
			v.heads[i] = 0
			v.idx.Clear(i)
		} else if v.heads[i] += k; v.heads[i] > len(v.buckets[i])/2 {
			// Compact once the consumed prefix dominates: without this, a
			// bucket with a standing backlog drained in partial batches
			// grows its backing array without bound (every append lands
			// past a prefix that is never reclaimed). Amortized O(1): each
			// element moves at most once per halving.
			n := copy(v.buckets[i], v.buckets[i][v.heads[i]:])
			clear(v.buckets[i][n:])
			v.buckets[i] = v.buckets[i][:n]
			v.heads[i] = 0
		}
	}
	return total
}

// DequeueMin pops the single minimum element, or nil.
func (v *vecSched) DequeueMin() *bucket.Node {
	var one [1]*bucket.Node
	if v.DequeueBatch(^uint64(0), one[:]) == 0 {
		return nil
	}
	return one[0]
}

// Remove is not supported: scheduler-side elements only leave through the
// merged drain.
func (v *vecSched) Remove(*bucket.Node) {
	panic("shardq: vecSched does not support Remove")
}
