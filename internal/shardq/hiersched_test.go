package shardq

import (
	"testing"

	"eiffel/internal/bucket"
	"eiffel/internal/hclock"
	"eiffel/internal/pkt"
)

func hierPkts(pool *pkt.Pool, n int, flow uint64, size uint32) []*pkt.Packet {
	ps := make([]*pkt.Packet, n)
	for i := range ps {
		p := pool.Get()
		p.Flow = flow
		p.Size = size
		ps[i] = p
	}
	return ps
}

func TestHierSpecValidate(t *testing.T) {
	if _, err := NewHierSched(HierSpec{}); err == nil {
		t.Fatal("empty tenant table accepted")
	}
	if _, err := NewHierSched(HierSpec{Tenants: []HierTenant{{Policy: "lifo"}}}); err == nil {
		t.Fatal("unknown in-tenant policy accepted")
	}
	if _, err := NewHierSched(HierSpec{Tenants: []HierTenant{{ResBps: 2e9, LimitBps: 1e9}}}); err == nil {
		t.Fatal("reservation above limit accepted")
	}
	if _, err := NewHierSched(HierSpec{Tenants: []HierTenant{{Weight: 1}, {Policy: "rank"}}}); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestHierSchedFifoOrder: a fifo tenant releases in exact arrival order.
func TestHierSchedFifoOrder(t *testing.T) {
	b, err := NewHierSched(HierSpec{Tenants: []HierTenant{{Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	pool := pkt.NewPool(64)
	ps := hierPkts(pool, 40, 7, 1500)
	for i, p := range ps {
		p.ID = uint64(i)
		b.EnqueueAux(&p.SchedNode, 0, 0)
	}
	out := make([]*bucket.Node, 16)
	seen := 0
	for b.Len() > 0 {
		k := b.DequeueBatch(^uint64(0), out)
		if k == 0 {
			t.Fatal("drain stalled with backlog")
		}
		for _, n := range out[:k] {
			if got := pkt.FromSchedNode(n).ID; got != uint64(seen) {
				t.Fatalf("released ID %d at position %d", got, seen)
			}
			seen++
		}
	}
	if seen != len(ps) {
		t.Fatalf("released %d of %d", seen, len(ps))
	}
}

// TestHierSchedRankOrder: a rank tenant releases in ascending ring-rank
// order (FIFO within a bucket).
func TestHierSchedRankOrder(t *testing.T) {
	b, err := NewHierSched(HierSpec{Tenants: []HierTenant{{Weight: 1, Policy: "rank", Buckets: 1024, RankGran: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	pool := pkt.NewPool(64)
	ps := hierPkts(pool, 32, 3, 1500)
	for i, p := range ps {
		b.EnqueueAux(&p.SchedNode, uint64((31-i)%8)*10, 0)
	}
	out := make([]*bucket.Node, 64)
	k := b.DequeueBatch(^uint64(0), out)
	if k != len(ps) {
		t.Fatalf("drained %d of %d", k, len(ps))
	}
	last := uint64(0)
	// Recover the publish ranks by position: ranks were (31-i)%8*10.
	ranks := make(map[*bucket.Node]uint64, len(ps))
	for i, p := range ps {
		ranks[&p.SchedNode] = uint64((31-i)%8) * 10
	}
	for i, n := range out[:k] {
		r := ranks[n]
		if r < last {
			t.Fatalf("rank inversion at %d: %d after %d", i, r, last)
		}
		last = r
	}
}

// TestHierSchedWeightShares: two fifo tenants at weight 3:1 split service
// ~3:1 while both stay backlogged.
func TestHierSchedWeightShares(t *testing.T) {
	b, err := NewHierSched(HierSpec{Tenants: []HierTenant{{Weight: 3}, {Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	pool := pkt.NewPool(4096)
	for i := 0; i < 1024; i++ {
		p := pool.Get()
		p.Flow, p.Size = 1, 1500
		b.EnqueueAux(&p.SchedNode, 0, 0)
		p = pool.Get()
		p.Flow, p.Size = 2, 1500
		b.EnqueueAux(&p.SchedNode, 0, 1)
	}
	out := make([]*bucket.Node, 1)
	gold := 0
	for i := 0; i < 1024; i++ {
		if b.DequeueBatch(^uint64(0), out) != 1 {
			t.Fatal("drain stalled")
		}
		if pkt.FromSchedNode(out[0]).Flow == 1 {
			gold++
		}
	}
	share := float64(gold) / 1024
	if share < 0.68 || share > 0.82 {
		t.Fatalf("weight-3 tenant share %.3f, want ~0.75", share)
	}
}

// TestHierSchedReservationRank: a due reservation pulls the merge rank to
// 0 ahead of every share tag, and serving it clears the preference.
func TestHierSchedReservationRank(t *testing.T) {
	b, err := NewHierSched(HierSpec{Tenants: []HierTenant{
		{Weight: 8},
		{ResBps: 1e9, Weight: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	pool := pkt.NewPool(64)
	b.SetNow(1_000_000)
	p0 := hierPkts(pool, 4, 1, 1500)
	p1 := hierPkts(pool, 4, 2, 1500)
	for _, p := range p0 {
		b.EnqueueAux(&p.SchedNode, 0, 0)
	}
	for _, p := range p1 {
		b.EnqueueAux(&p.SchedNode, 0, 1)
	}
	if r, ok := b.Min(); !ok || r != 0 {
		t.Fatalf("Min = (%d,%v) with a due reservation, want (0,true)", r, ok)
	}
	out := make([]*bucket.Node, 1)
	if b.DequeueBatch(^uint64(0), out) != 1 || pkt.FromSchedNode(out[0]).Flow != 2 {
		t.Fatal("due reservation not served first")
	}
}

// TestHierSchedStallAndWake: the progress contract under limit parking —
// a backend whose only tenant is over its cap reports Min empty after a
// refused drain, then serves again once SetNow reaches the release.
func TestHierSchedStallAndWake(t *testing.T) {
	b, err := NewHierSched(HierSpec{Tenants: []HierTenant{
		{LimitBps: 100e6, Weight: 1}, // 1500B costs 120us of limit clock
	}})
	if err != nil {
		t.Fatal(err)
	}
	pool := pkt.NewPool(64)
	for _, p := range hierPkts(pool, 4, 1, 1500) {
		b.EnqueueAux(&p.SchedNode, 0, 0)
	}
	out := make([]*bucket.Node, 8)
	if b.DequeueBatch(^uint64(0), out) != 1 {
		t.Fatal("first packet not served at now=0")
	}
	// The tenant is parked until ~120us: the next drain must pop nothing
	// AND leave Min empty (mergeRuns' progress contract).
	if k := b.DequeueBatch(^uint64(0), out); k != 0 {
		t.Fatalf("over-limit drain popped %d", k)
	}
	if _, ok := b.Min(); ok {
		t.Fatal("Min reported a rank while every tenant is parked")
	}
	if !b.Stalled() {
		t.Fatal("stall flag not raised")
	}
	ev, ok := b.NextEvent()
	if !ok {
		t.Fatal("NextEvent empty with a parked tenant")
	}
	b.SetNow(ev + 2048)
	if b.Stalled() {
		t.Fatal("SetNow did not clear the stall")
	}
	if b.DequeueBatch(^uint64(0), out) != 1 {
		t.Fatal("migrated tenant not served after the clock advanced")
	}
}

// TestHierSchedRuntime: the backend behind the full sharded runtime —
// per-flow FIFO order survives the ring, the flush staging, and the
// cross-shard merge.
func TestHierSchedRuntime(t *testing.T) {
	var backends []*HierSched
	spec := HierSpec{
		Tenants: []HierTenant{{Weight: 3}, {Weight: 1}},
		RateDiv: 4,
	}
	q := New(Options{
		NumShards: 4,
		Backend: func(int) Scheduler {
			b, err := NewHierSched(spec)
			if err != nil {
				t.Fatal(err)
			}
			backends = append(backends, b)
			return b
		},
	})
	defer q.Close()
	const flows, per = 32, 64
	pool := pkt.NewPool(flows * per)
	for i := 0; i < per; i++ {
		for f := 0; f < flows; f++ {
			p := pool.Get()
			p.Flow = uint64(f)
			p.Size = 1500
			p.ID = uint64(i)
			q.EnqueueAux(p.Flow, &p.SchedNode, 0, uint64(f%2))
		}
	}
	out := make([]*bucket.Node, 128)
	next := make([]uint64, flows)
	got := 0
	for q.Len() > 0 {
		k := q.DequeueBatch(^uint64(0), out)
		if k == 0 {
			t.Fatal("merged drain stalled with backlog")
		}
		for _, n := range out[:k] {
			p := pkt.FromSchedNode(n)
			if p.ID != next[p.Flow] {
				t.Fatalf("flow %d released ID %d, want %d", p.Flow, p.ID, next[p.Flow])
			}
			next[p.Flow]++
			got++
		}
	}
	if got != flows*per {
		t.Fatalf("released %d of %d", got, flows*per)
	}
	if len(backends) != 4 {
		t.Fatalf("factory built %d backends, want 4", len(backends))
	}
}

// TestHierSchedAllocFree: the publish->drain lap allocates nothing once
// the rings and tenant FIFOs reach steady state.
func TestHierSchedAllocFree(t *testing.T) {
	b, err := NewHierSched(HierSpec{
		Backend: hclock.BackendEiffel,
		Tenants: []HierTenant{{Weight: 3}, {Weight: 1}, {Policy: "rank"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pool := pkt.NewPool(512)
	ps := make([]*pkt.Packet, 256)
	for i := range ps {
		p := pool.Get()
		p.Flow = uint64(i % 8)
		p.Size = 1500
		ps[i] = p
	}
	out := make([]*bucket.Node, 64)
	lap := func() {
		for i, p := range ps {
			b.EnqueueAux(&p.SchedNode, uint64(i%1024), uint64(i%3))
		}
		for b.Len() > 0 {
			if b.DequeueBatch(^uint64(0), out) == 0 {
				t.Fatal("drain stalled")
			}
		}
	}
	lap() // warm tenant FIFOs and the rank queue
	if allocs := testing.AllocsPerRun(50, lap); allocs != 0 {
		t.Fatalf("steady-state lap allocates %.1f/op", allocs)
	}
}
