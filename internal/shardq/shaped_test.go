package shardq

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"eiffel/internal/bucket"
	"eiffel/internal/queue"
)

// elem is a two-handle test element, the shape pkt.Packet has: one node
// for the time-indexed shaper, one for the priority-indexed scheduler.
type elem struct {
	timer, sched bucket.Node
	sendAt, rank uint64
}

func newElem(sendAt, rank uint64) *elem {
	e := &elem{sendAt: sendAt, rank: rank}
	e.timer.Data = e
	e.sched.Data = e
	return e
}

func pairElem(n *bucket.Node) *bucket.Node { return &n.Data.(*elem).sched }

func newShapedQ(shards int, ringBits uint) *Shaped {
	return NewShaped(ShapedOptions{
		NumShards: shards,
		RingBits:  ringBits,
		Shaper:    queue.Config{NumBuckets: 1 << 12, Granularity: 1},
		Sched:     queue.Config{NumBuckets: 1 << 12, Granularity: 1},
		Pair:      pairElem,
	})
}

func TestShapedNeedsPair(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewShaped without Pair did not panic")
		}
	}()
	NewShaped(ShapedOptions{})
}

// TestShapedGatesOnSendAt checks the decoupling contract: an element never
// comes out before its release time, and once eligible it comes out by
// priority, not by release time.
func TestShapedGatesOnSendAt(t *testing.T) {
	q := newShapedQ(4, 6)
	// Three elements: released at t=100 with LOW priority, at t=200 with
	// HIGH priority (smaller rank), at t=300 in between.
	a := newElem(100, 30)
	b := newElem(200, 10)
	c := newElem(300, 20)
	q.Enqueue(1, &a.timer, a.sendAt, a.rank)
	q.Enqueue(2, &b.timer, b.sendAt, b.rank)
	q.Enqueue(3, &c.timer, c.sendAt, c.rank)
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}

	if n := q.DequeueMin(50); n != nil {
		t.Fatalf("DequeueMin(50) released rank %d before any sendAt", n.Rank())
	}
	if r, ok := q.NextRelease(50); !ok || r != 100 {
		t.Fatalf("NextRelease(50) = (%d,%v), want (100,true)", r, ok)
	}

	// At t=150 only a is eligible, despite its low priority.
	if n := q.DequeueMin(150); n == nil || n.Data.(*elem) != a {
		t.Fatalf("DequeueMin(150) = %v, want element a", n)
	}
	// At t=350 both b and c are eligible: priority order, b (rank 10) first.
	if n := q.DequeueMin(350); n == nil || n.Data.(*elem) != b {
		t.Fatal("DequeueMin(350) should serve the highest-priority eligible element")
	}
	if n := q.DequeueMin(350); n == nil || n.Data.(*elem) != c {
		t.Fatal("DequeueMin(350) should then serve c")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
	if st := q.Stats(); st.Migrated != 3 {
		t.Fatalf("Migrated = %d, want 3", st.Migrated)
	}
}

// TestShapedMergedPriorityOrder fills many shards single-threaded with
// everything already due and checks the merged drain is globally sorted by
// priority — under both scheduler stores (the default fixed-range vector
// buckets and the SchedMoving cFFS).
func TestShapedMergedPriorityOrder(t *testing.T) {
	for _, moving := range []bool{false, true} {
		t.Run(map[bool]string{false: "vec", true: "cffs"}[moving], func(t *testing.T) {
			testShapedMergedPriorityOrder(t, moving)
		})
	}
}

func testShapedMergedPriorityOrder(t *testing.T, moving bool) {
	q := NewShaped(ShapedOptions{
		NumShards:   4,
		RingBits:    6,
		Shaper:      queue.Config{NumBuckets: 1 << 12, Granularity: 1},
		Sched:       queue.Config{NumBuckets: 1 << 12, Granularity: 1},
		SchedMoving: moving,
		Pair:        pairElem,
	})
	rng := rand.New(rand.NewSource(11))
	const n = 5000
	for i := 0; i < n; i++ {
		e := newElem(uint64(rng.Intn(1000)), uint64(rng.Intn(1<<11)))
		q.Enqueue(uint64(i), &e.timer, e.sendAt, e.rank)
	}
	out := make([]*bucket.Node, 64)
	var last uint64
	got := 0
	for {
		k := q.DequeueBatch(1000, ^uint64(0), out)
		if k == 0 {
			break
		}
		for _, nd := range out[:k] {
			e := nd.Data.(*elem)
			if nd != &e.sched && nd != &e.timer {
				t.Fatal("DequeueBatch must return one of the element's handles")
			}
			if got > 0 && e.rank < last {
				t.Fatalf("position %d: rank %d after %d (priority inversion)", got, e.rank, last)
			}
			last = e.rank
			got++
		}
	}
	if got != n {
		t.Fatalf("drained %d, want %d", got, n)
	}
	if q.Len() != 0 || q.SchedLen() != 0 {
		t.Fatalf("Len=%d SchedLen=%d after drain", q.Len(), q.SchedLen())
	}
}

// TestShapedMaxRankBound checks the priority bound of DequeueBatch:
// eligible elements beyond maxRank stay queued in the schedulers.
func TestShapedMaxRankBound(t *testing.T) {
	q := newShapedQ(2, 6)
	for i := 0; i < 100; i++ {
		e := newElem(0, uint64(i))
		q.Enqueue(uint64(i), &e.timer, e.sendAt, e.rank)
	}
	out := make([]*bucket.Node, 200)
	if k := q.DequeueBatch(10, 49, out); k != 50 {
		t.Fatalf("DequeueBatch(maxRank=49) = %d, want 50", k)
	}
	if q.SchedLen() != 50 {
		t.Fatalf("SchedLen = %d, want 50 still scheduled", q.SchedLen())
	}
	if k := q.DequeueBatch(10, ^uint64(0), out); k != 50 {
		t.Fatalf("second DequeueBatch = %d, want 50", k)
	}
}

// TestShapedRingFullFallback forces the producer fallback with a tiny ring
// and no consumer: priorities stashed on the scheduler handles must
// survive the detour through the shard lock.
func TestShapedRingFullFallback(t *testing.T) {
	q := NewShaped(ShapedOptions{
		NumShards: 1,
		RingBits:  2, // 4 slots
		Shaper:    queue.Config{NumBuckets: 1 << 10, Granularity: 1},
		Sched:     queue.Config{NumBuckets: 1 << 10, Granularity: 1},
		Pair:      pairElem,
	})
	const n = 100
	for i := 0; i < n; i++ {
		e := newElem(uint64(i), uint64(n-1-i)) // inverted priority
		q.Enqueue(0, &e.timer, e.sendAt, e.rank)
	}
	if st := q.Stats(); st.RingFull == 0 {
		t.Fatalf("expected ring-full fallbacks, stats: %v", st)
	}
	out := make([]*bucket.Node, n)
	if k := q.DequeueBatch(uint64(n), ^uint64(0), out); k != n {
		t.Fatalf("drained %d, want %d", k, n)
	}
	for i, nd := range out {
		if e := nd.Data.(*elem); e.rank != uint64(i) {
			t.Fatalf("position %d: rank %d (fallback lost the stashed priority)", i, e.rank)
		}
	}
}

// TestShapedConcurrentProducersDrain: 8 producers publish two-key
// elements, one consumer migrates and drains, nothing lost.
func TestShapedConcurrentProducersDrain(t *testing.T) {
	const producers = 8
	const perProducer = 4000
	q := newShapedQ(8, 6)

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perProducer; i++ {
				e := newElem(uint64(rng.Intn(1<<11)), uint64(rng.Intn(1<<11)))
				q.Enqueue(uint64(w*perProducer+i), &e.timer, e.sendAt, e.rank)
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	out := make([]*bucket.Node, 256)
	consumed := 0
	producersDone := false
	for consumed < producers*perProducer {
		k := q.DequeueBatch(1<<11, ^uint64(0), out)
		consumed += k
		if k > 0 {
			continue
		}
		if producersDone {
			t.Fatalf("consumed %d of %d with producers done", consumed, producers*perProducer)
		}
		select {
		case <-done:
			producersDone = true
		default:
		}
		runtime.Gosched()
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
	st := q.Stats()
	if st.Migrated != producers*perProducer {
		t.Fatalf("Migrated = %d, want %d", st.Migrated, producers*perProducer)
	}
	if st.Batched != producers*perProducer {
		t.Fatalf("Batched = %d, want %d", st.Batched, producers*perProducer)
	}
}
