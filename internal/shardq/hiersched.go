package shardq

import (
	"fmt"
	"sync/atomic"

	"eiffel/internal/bucket"
	"eiffel/internal/hclock"
	"eiffel/internal/pkt"
	"eiffel/internal/queue"
)

// This file is the hierarchical QoS backend for the sharded runtime: one
// hclock.Hier engine per shard, compiled from a HierSpec the way the
// policy backend compiles its program per shard. Flow-hash sharding
// confines a flow's whole backlog to one shard, so the engine's tag state
// (reservation/limit/share clocks) is shard-private and lock-free behind
// the shard's MPSC ring; per-tenant rates renormalize by the shard count
// (hclock.Config.RateDiv) so a tenant whose flows spread across every
// shard still aggregates to its configured reservation and limit.
//
// The ring payload is (rank, aux) = (in-tenant key, tenant id): the
// producer resolves the tenant once, while the packet is cache-hot, and
// the consumer routes by the aux word without loading packet memory on
// the enqueue side. The cross-shard merge rank is the engine's share
// virtual time — every shard's tenants advance their share tags at
// size/weight, so comparing MinShare across shards approximates the
// global weighted order at tag-bucket granularity (the same shard-local
// approximation the policy backend's wfq root accepts) — except that a
// shard holding a DUE RESERVATION reports rank 0, which makes the merge
// serve reservations ahead of every share tag, exactly hClock's two-phase
// preference lifted across shards.

// HierTenant describes one tenant (traffic class) of a HierSpec.
type HierTenant struct {
	// ResBps is the reserved minimum rate in bits/s (0 = none). The
	// constructor renormalizes per shard via the spec's RateDiv.
	ResBps uint64
	// LimitBps is the rate cap in bits/s (0 = unlimited), renormalized
	// like ResBps.
	LimitBps uint64
	// Weight is the proportional share weight (>= 1; 0 means 1).
	Weight uint64
	// Policy selects the in-tenant order: "fifo" (or empty — the faithful
	// hClock leaf, packets serve in arrival order) or "rank" (packets
	// serve in ascending ring-rank order, FIFO within a rank bucket — the
	// Eiffel-extended leaf).
	Policy string
	// Buckets sizes the rank-policy in-tenant queue (default 4096);
	// ignored for fifo tenants.
	Buckets int
	// RankGran is the rank-policy bucket width (default 64); ignored for
	// fifo tenants.
	RankGran uint64
}

// HierSpec compiles into one hierarchical engine per shard.
type HierSpec struct {
	// Tenants is the tenant table; the enqueue aux word indexes it
	// (modulo its length). Required.
	Tenants []HierTenant
	// Backend picks the tag-index implementation (Eiffel FFS queues,
	// binary heaps, approximate gradient queues).
	Backend hclock.Backend
	// TagGranularityNs / Buckets size the tag queues; see hclock.Config.
	TagGranularityNs uint64
	Buckets          int
	// ShareGranularity is the share-tag index bucket width; see
	// hclock.Config. 0 here means ShareScale*512 (512 weighted bytes —
	// sub-packet share precision with ~one bucket step per served
	// packet), NOT the flow scheduler's time-domain default: the tenant
	// trees this backend compiles have few, heavy tenants whose share
	// tags stride ~100M units per packet, and a time-domain bucket width
	// makes every bucketed-index operation walk hundreds of buckets.
	ShareGranularity uint64
	// RateDiv renormalizes every tenant's ResBps/LimitBps per engine —
	// the sharded front sets it to the shard count. 0 or 1 = none.
	RateDiv uint64
	// MergeShift coarsens the cross-shard merge rank: Min reports the
	// shard's minimum share tag right-shifted by this many bits, and
	// DequeueBatch honors its rank bound in the same shifted domain.
	// Share tags advance by size*2^16/weight per packet (~100M units per
	// 1500B at weight 1), so an unshifted merge re-ranks the shard after
	// EVERY pop and the cross-shard merge degenerates to runs of one
	// packet per head refresh. The default (30) keeps a shard's merge
	// rank stable for roughly 10-30 packets, trading a bounded per-shard
	// service skew (2^MergeShift/2^16 weighted bytes, ~11 packets at
	// weight 1) for long merge runs. 0 means the default; use
	// MergeShiftNone for an exact (per-packet) merge.
	MergeShift uint8
}

// MergeShiftNone disables merge-rank coarsening: the merge compares raw
// quantized share tags (exact cross-shard weighted order, short runs).
const MergeShiftNone uint8 = 0xff

// defaultMergeShift is the MergeShift applied when the spec leaves it 0.
const defaultMergeShift = 30

// Validate reports why the spec cannot compile, or nil.
func (sp HierSpec) Validate() error {
	if len(sp.Tenants) == 0 {
		return fmt.Errorf("shardq: hier spec needs at least one tenant")
	}
	for i, tn := range sp.Tenants {
		switch tn.Policy {
		case "", "fifo", "rank":
		default:
			return fmt.Errorf("shardq: tenant %d: unknown in-tenant policy %q", i, tn.Policy)
		}
		if tn.LimitBps > 0 && tn.ResBps > tn.LimitBps {
			return fmt.Errorf("shardq: tenant %d: reservation %d exceeds limit %d", i, tn.ResBps, tn.LimitBps)
		}
	}
	return nil
}

// hierTenant is one tenant's shard-local state: the engine tags plus the
// in-tenant packet queue (a FIFO ring, or an FFS-indexed rank queue).
type hierTenant struct {
	t    hclock.Tenant
	rank Scheduler // non-nil: "rank" policy in-tenant queue

	fifo []*bucket.Node
	head int
	n    int // queued elements, both policies
}

//eiffel:hotpath
func (ht *hierTenant) push(n *bucket.Node, rank uint64) {
	ht.n++
	if ht.rank != nil {
		ht.rank.Enqueue(n, rank)
		return
	}
	if ht.n > len(ht.fifo) {
		size := len(ht.fifo) * 2
		if size == 0 {
			size = 8
		}
		//eiffel:allow(hotpath) amortized FIFO ring growth, doubling to the tenant's high-water backlog
		ring := make([]*bucket.Node, size)
		for i := 0; i < ht.n-1; i++ {
			ring[i] = ht.fifo[(ht.head+i)%len(ht.fifo)]
		}
		ht.fifo, ht.head = ring, 0
	}
	ht.fifo[(ht.head+ht.n-1)%len(ht.fifo)] = n
}

//eiffel:hotpath
func (ht *hierTenant) pop(one *[1]*bucket.Node) *bucket.Node {
	ht.n--
	if ht.rank != nil {
		if ht.rank.DequeueBatch(^uint64(0), one[:]) == 0 {
			return nil
		}
		return one[0]
	}
	n := ht.fifo[ht.head]
	ht.fifo[ht.head] = nil
	ht.head = (ht.head + 1) % len(ht.fifo)
	return n
}

// HierSched is one shard's hierarchical QoS backend; see the file
// comment. It implements Scheduler, AuxScheduler, and ClockedScheduler.
// All methods run under the shard lock except SetNow (atomics only, per
// the ClockedScheduler contract).
type HierSched struct {
	h       *hclock.Hier
	tenants []hierTenant
	backlog int

	// now is the consumer-set clock for eligibility decisions. Atomic
	// because the owner advances it (SetNow) while a producer whose ring
	// filled may be enqueueing under the shard lock.
	now atomic.Int64

	// stalled marks a backend with backlog but nothing eligible at the
	// current clock (every active tenant parked over its limit): Min then
	// reports empty so the cross-shard merge's progress contract holds.
	// Cleared by SetNow or any enqueue; atomic for the same
	// consumer-vs-fallback concurrency as now.
	stalled atomic.Bool

	one [1]*bucket.Node // rank-policy single-pop scratch

	mergeShift uint // share-tag >> mergeShift is the merge-rank domain

	// timed is whether any tenant carries a reservation or limit; a pure
	// weighted-share tree skips the per-pop migrate/reservation checks.
	timed bool

	// resDue publishes the earliest ready reservation clock (0 = none)
	// for the owner's clock propagation: when the consumer clock crosses
	// it, the owner must force a head re-peek (the shard's cached merge
	// rank was computed before the reservation came due). Written under
	// the shard lock, read lock-free by advanceGroupClock.
	resDue atomic.Int64
}

// NewHierSched compiles spec into one shard engine.
func NewHierSched(spec HierSpec) (*HierSched, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	shareGran := spec.ShareGranularity
	if shareGran == 0 {
		shareGran = hclock.ShareScale * 512
	}
	b := &HierSched{
		h: hclock.NewHier(hclock.Config{
			Backend:          spec.Backend,
			TagGranularityNs: spec.TagGranularityNs,
			Buckets:          spec.Buckets,
			ShareGranularity: shareGran,
			RateDiv:          spec.RateDiv,
		}),
		tenants: make([]hierTenant, len(spec.Tenants)),
	}
	switch spec.MergeShift {
	case 0:
		b.mergeShift = defaultMergeShift
	case MergeShiftNone:
		b.mergeShift = 0
	default:
		b.mergeShift = uint(spec.MergeShift)
	}
	for i := range spec.Tenants {
		tn := &spec.Tenants[i]
		ht := &b.tenants[i]
		b.timed = b.timed || tn.ResBps > 0 || tn.LimitBps > 0
		b.h.Init(&ht.t, tn.ResBps, tn.LimitBps, tn.Weight)
		ht.t.Self = ht
		if tn.Policy == "rank" {
			buckets, gran := tn.Buckets, tn.RankGran
			if buckets <= 0 {
				buckets = 4096
			}
			if gran == 0 {
				gran = 64
			}
			ht.rank = NewVecSched(queue.Config{NumBuckets: buckets, Granularity: gran})
		}
	}
	return b, nil
}

// NumTenants returns the tenant-table size.
func (b *HierSched) NumTenants() int { return len(b.tenants) }

// TenantLen returns tenant i's queued-element count on this shard.
// Callers hold the shard lock (WithShardLocked).
//
//eiffel:locked(shard)
func (b *HierSched) TenantLen(i int) int { return b.tenants[i].n }

//eiffel:hotpath
func (b *HierSched) enq(n *bucket.Node, rank, tenant uint64) {
	ht := &b.tenants[int(tenant)%len(b.tenants)]
	ht.push(n, rank)
	b.backlog++
	if !ht.t.Active() {
		b.h.Activate(&ht.t, b.now.Load())
		if ht.t.ResBps > 0 {
			b.noteResDue()
		}
	}
	b.stalled.Store(false)
}

// noteResDue publishes the earliest ready reservation clock for the
// owner's clock propagation. Runs under the shard lock like every other
// mutating method.
//
//eiffel:hotpath
func (b *HierSched) noteResDue() {
	if r, ok := b.h.NextReservation(); ok {
		b.resDue.Store(int64(r))
	} else {
		b.resDue.Store(0)
	}
}

// ResDue returns the published earliest ready reservation clock (0 =
// none): when the owner's consumer clock crosses it, the owner must
// force a head re-peek (GroupFlush) — the shard's cached merge rank
// predates the reservation coming due. Lock-free read.
//
//eiffel:hotpath
func (b *HierSched) ResDue() int64 { return b.resDue.Load() }

// Enqueue implements Scheduler: the keyless surface loads the packet to
// resolve its tenant (Class annotation) — the slow-but-correct form of
// the aux path, used by spill paths that lost the aux word.
//
//eiffel:hotpath
func (b *HierSched) Enqueue(n *bucket.Node, rank uint64) {
	b.enq(n, rank, uint64(uint32(pkt.FromSchedNode(n).Class)))
}

// EnqueueBatch implements Scheduler.
//
//eiffel:hotpath
func (b *HierSched) EnqueueBatch(ns []*bucket.Node, ranks []uint64) {
	for i, n := range ns {
		b.Enqueue(n, ranks[i])
	}
}

// EnqueueAux implements AuxScheduler: aux carries the producer-resolved
// tenant id, rank the in-tenant key — the enqueue side never loads the
// packet.
//
//eiffel:hotpath
func (b *HierSched) EnqueueAux(n *bucket.Node, rank, aux uint64) {
	b.enq(n, rank, aux)
}

// EnqueueBatchAux implements AuxScheduler.
//
//eiffel:hotpath
func (b *HierSched) EnqueueBatchAux(ns []*bucket.Node, ranks, auxes []uint64) {
	for i, n := range ns {
		b.enq(n, ranks[i], auxes[i])
	}
}

// DequeueBatch implements Scheduler: serve the engine's two-phase
// preference while the merge rank stays within maxRank. A due reservation
// serves regardless of the bound (its merge rank is 0 — see Min); the
// share phase stops at the bound. Each pop charges the served tenant's
// tags, so the head is re-read every iteration.
//
//eiffel:hotpath
func (b *HierSched) DequeueBatch(maxRank uint64, out []*bucket.Node) int {
	popped := 0
	now := b.now.Load()
	if b.timed {
		// now is constant for the whole call, so one migration suffices:
		// nothing parked can release mid-call, and a Requeue that parks a
		// tenant parks it beyond now by construction.
		b.h.Migrate(now)
	}
	for popped < len(out) && b.backlog > 0 {
		if !b.timed || !b.h.DueReservation(now) {
			r, ok := b.h.MinShare()
			if !ok {
				// Backlogged but every active tenant is parked over its
				// limit: report empty from Min until the clock moves —
				// mergeRuns' progress argument.
				b.stalled.Store(true)
				break
			}
			if r>>b.mergeShift > maxRank {
				break
			}
		}
		t, ok := b.h.Pick(now)
		if !ok {
			b.stalled.Store(true)
			break
		}
		ht := t.Self.(*hierTenant)
		n := ht.pop(&b.one)
		b.backlog--
		b.h.Charge(t, uint64(pkt.FromSchedNode(n).Size), now)
		if ht.n > 0 {
			b.h.Requeue(t, now)
		} else {
			b.h.Idle(t)
		}
		out[popped] = n
		popped++
	}
	if b.timed {
		b.noteResDue()
	}
	return popped
}

// Min implements Scheduler: 0 when a reservation clock is due (the merge
// must serve this shard before any share tag), else the smallest ready
// share tag, else empty — setting the stall flag when backlog exists but
// nothing is eligible, so the owner knows to re-peek after SetNow.
// Callers hold the shard lock (the runtime's head refresh), so migrating
// parked tenants here is safe.
//
//eiffel:hotpath
func (b *HierSched) Min() (uint64, bool) {
	if b.stalled.Load() {
		return 0, false
	}
	if b.timed {
		now := b.now.Load()
		b.h.Migrate(now)
		b.noteResDue()
		if b.h.DueReservation(now) {
			return 0, true
		}
	}
	if r, ok := b.h.MinShare(); ok {
		return r >> b.mergeShift, true
	}
	if b.backlog > 0 {
		b.stalled.Store(true)
	}
	return 0, false
}

// Len implements Scheduler.
//
//eiffel:hotpath
func (b *HierSched) Len() int { return b.backlog }

// SetNow implements ClockedScheduler: advance the eligibility clock,
// waking a stalled engine. Safe without the shard lock (atomics).
//
//eiffel:hotpath
func (b *HierSched) SetNow(now int64) {
	if now != b.now.Load() {
		b.now.Store(now)
		b.stalled.Store(false)
	}
}

// Stalled reports whether the backend declared itself unservable at the
// current clock; the owner checks it before advancing the clock to know
// whether a head re-peek (GroupFlush) is needed.
//
//eiffel:hotpath
func (b *HierSched) Stalled() bool { return b.stalled.Load() }

// NextEvent implements ClockedScheduler: the earliest limit-clock release
// at the current clock. Callers hold the shard lock.
//
//eiffel:locked(shard)
func (b *HierSched) NextEvent() (int64, bool) {
	return b.h.NextEvent(b.now.Load())
}
