package shardq

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"

	"eiffel/internal/bucket"
	"eiffel/internal/queue"
)

func newTestQ(shards int) *Q {
	return New(Options{
		NumShards: shards,
		RingBits:  6,
		Kind:      queue.KindCFFS,
		Queue:     queue.Config{NumBuckets: 1 << 12, Granularity: 1},
	})
}

func TestShardRounding(t *testing.T) {
	if got := New(Options{NumShards: 5}).NumShards(); got != 8 {
		t.Fatalf("NumShards(5) rounded to %d, want 8", got)
	}
	if got := New(Options{}).NumShards(); got != 8 {
		t.Fatalf("default NumShards = %d, want 8", got)
	}
	if got := New(Options{NumShards: 4}).NumShards(); got != 4 {
		t.Fatalf("NumShards(4) = %d, want 4", got)
	}
}

func TestShardForSpreads(t *testing.T) {
	q := newTestQ(8)
	var hits [8]int
	for flow := uint64(0); flow < 8000; flow++ {
		hits[q.ShardFor(flow)]++
	}
	for i, h := range hits {
		if h < 500 || h > 1500 {
			t.Fatalf("shard %d got %d of 8000 sequential flows; want near 1000", i, h)
		}
	}
}

// TestDrainOrder checks that a single-threaded fill/drain comes out in
// global ascending rank order even though ranks are striped over shards.
func TestDrainOrder(t *testing.T) {
	q := newTestQ(4)
	rng := rand.New(rand.NewSource(7))
	const n = 5000
	ranks := make([]uint64, n)
	for i := range ranks {
		ranks[i] = uint64(rng.Intn(1 << 11))
		q.Enqueue(uint64(i), &bucket.Node{}, ranks[i])
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })

	out := make([]*bucket.Node, 64)
	var got []uint64
	for {
		k := q.DequeueBatch(^uint64(0), out)
		if k == 0 {
			break
		}
		for _, n := range out[:k] {
			got = append(got, n.Rank())
		}
	}
	if len(got) != n {
		t.Fatalf("drained %d, want %d", len(got), n)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
	for i := range got {
		if got[i] != ranks[i] {
			t.Fatalf("position %d: rank %d, want %d (global order violated)", i, got[i], ranks[i])
		}
	}
}

func TestDequeueBatchRespectsMaxRank(t *testing.T) {
	q := newTestQ(4)
	for i := 0; i < 100; i++ {
		q.Enqueue(uint64(i), &bucket.Node{}, uint64(i))
	}
	out := make([]*bucket.Node, 200)
	k := q.DequeueBatch(49, out)
	if k != 50 {
		t.Fatalf("DequeueBatch(maxRank=49) = %d, want 50", k)
	}
	for _, n := range out[:k] {
		if n.Rank() > 49 {
			t.Fatalf("released rank %d beyond maxRank 49", n.Rank())
		}
	}
	if q.Len() != 50 {
		t.Fatalf("Len = %d, want 50", q.Len())
	}
}

func TestMinRankAggregates(t *testing.T) {
	q := newTestQ(4)
	if _, ok := q.MinRank(); ok {
		t.Fatal("MinRank ok on empty runtime")
	}
	q.Enqueue(1, &bucket.Node{}, 300)
	q.Enqueue(2, &bucket.Node{}, 100)
	q.Enqueue(3, &bucket.Node{}, 200)
	if r, ok := q.MinRank(); !ok || r != 100 {
		t.Fatalf("MinRank = (%d, %v), want (100, true)", r, ok)
	}
	if n := q.DequeueMin(); n == nil || n.Rank() != 100 {
		t.Fatalf("DequeueMin rank = %v", n)
	}
	if r, ok := q.MinRank(); !ok || r != 200 {
		t.Fatalf("MinRank after pop = (%d, %v), want (200, true)", r, ok)
	}
}

// TestRingFullFallback forces the producer-side flush path with a tiny
// ring and no consumer.
func TestRingFullFallback(t *testing.T) {
	q := New(Options{
		NumShards: 1,
		RingBits:  2, // 4 slots
		Kind:      queue.KindCFFS,
		Queue:     queue.Config{NumBuckets: 1 << 10, Granularity: 1},
	})
	const n = 100
	for i := 0; i < n; i++ {
		q.Enqueue(0, &bucket.Node{}, uint64(i))
	}
	st := q.Stats()
	if st.RingFull == 0 {
		t.Fatalf("expected ring-full fallbacks, stats: %v", st)
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	out := make([]*bucket.Node, n)
	if k := q.DequeueBatch(^uint64(0), out); k != n {
		t.Fatalf("drained %d, want %d", k, n)
	}
	for i, nd := range out {
		if nd.Rank() != uint64(i) {
			t.Fatalf("position %d: rank %d", i, nd.Rank())
		}
	}
}

// TestConcurrentProducersDrain is the sharded counterpart of the qdisc
// regression test: many producers, one consumer, nothing lost.
func TestConcurrentProducersDrain(t *testing.T) {
	const producers = 8
	const perProducer = 4000
	q := newTestQ(8)

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(uint64(w*perProducer+i), &bucket.Node{}, uint64(i))
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	out := make([]*bucket.Node, 256)
	consumed := 0
	producersDone := false
	for consumed < producers*perProducer {
		k := q.DequeueBatch(^uint64(0), out)
		consumed += k
		if k > 0 {
			continue
		}
		if producersDone {
			// All publications completed before this empty drain, and
			// DequeueBatch flushes every ring — nothing can be in flight.
			t.Fatalf("consumed %d of %d with producers done", consumed, producers*perProducer)
		}
		select {
		case <-done:
			producersDone = true
		default:
		}
		runtime.Gosched()
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
	st := q.Stats()
	if st.Batched != producers*perProducer {
		t.Fatalf("Batched = %d, want %d", st.Batched, producers*perProducer)
	}
	if st.RingPushes+st.RingFull != producers*perProducer {
		t.Fatalf("pushes %d + ringfull %d != %d", st.RingPushes, st.RingFull, producers*perProducer)
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{RingPushes: 10, Batches: 2, Batched: 8}
	if got := s.String(); got == "" {
		t.Fatal("empty snapshot string")
	}
}
