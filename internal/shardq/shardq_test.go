package shardq

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"eiffel/internal/bucket"
	"eiffel/internal/queue"
)

func newTestQ(shards int) *Q {
	return New(Options{
		NumShards: shards,
		RingBits:  6,
		Kind:      queue.KindCFFS,
		Queue:     queue.Config{NumBuckets: 1 << 12, Granularity: 1},
	})
}

func TestShardRounding(t *testing.T) {
	if got := New(Options{NumShards: 5}).NumShards(); got != 8 {
		t.Fatalf("NumShards(5) rounded to %d, want 8", got)
	}
	if got := New(Options{}).NumShards(); got != 8 {
		t.Fatalf("default NumShards = %d, want 8", got)
	}
	if got := New(Options{NumShards: 4}).NumShards(); got != 4 {
		t.Fatalf("NumShards(4) = %d, want 4", got)
	}
}

func TestShardForSpreads(t *testing.T) {
	q := newTestQ(8)
	var hits [8]int
	for flow := uint64(0); flow < 8000; flow++ {
		hits[q.ShardFor(flow)]++
	}
	for i, h := range hits {
		if h < 500 || h > 1500 {
			t.Fatalf("shard %d got %d of 8000 sequential flows; want near 1000", i, h)
		}
	}
}

// TestDrainOrder checks that a single-threaded fill/drain comes out in
// global ascending rank order even though ranks are striped over shards.
func TestDrainOrder(t *testing.T) {
	q := newTestQ(4)
	rng := rand.New(rand.NewSource(7))
	const n = 5000
	ranks := make([]uint64, n)
	for i := range ranks {
		ranks[i] = uint64(rng.Intn(1 << 11))
		q.Enqueue(uint64(i), &bucket.Node{}, ranks[i])
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })

	out := make([]*bucket.Node, 64)
	var got []uint64
	for {
		k := q.DequeueBatch(^uint64(0), out)
		if k == 0 {
			break
		}
		for _, n := range out[:k] {
			got = append(got, n.Rank())
		}
	}
	if len(got) != n {
		t.Fatalf("drained %d, want %d", len(got), n)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
	for i := range got {
		if got[i] != ranks[i] {
			t.Fatalf("position %d: rank %d, want %d (global order violated)", i, got[i], ranks[i])
		}
	}
}

func TestDequeueBatchRespectsMaxRank(t *testing.T) {
	q := newTestQ(4)
	for i := 0; i < 100; i++ {
		q.Enqueue(uint64(i), &bucket.Node{}, uint64(i))
	}
	out := make([]*bucket.Node, 200)
	k := q.DequeueBatch(49, out)
	if k != 50 {
		t.Fatalf("DequeueBatch(maxRank=49) = %d, want 50", k)
	}
	for _, n := range out[:k] {
		if n.Rank() > 49 {
			t.Fatalf("released rank %d beyond maxRank 49", n.Rank())
		}
	}
	if q.Len() != 50 {
		t.Fatalf("Len = %d, want 50", q.Len())
	}
}

func TestMinRankAggregates(t *testing.T) {
	q := newTestQ(4)
	if _, ok := q.MinRank(); ok {
		t.Fatal("MinRank ok on empty runtime")
	}
	q.Enqueue(1, &bucket.Node{}, 300)
	q.Enqueue(2, &bucket.Node{}, 100)
	q.Enqueue(3, &bucket.Node{}, 200)
	if r, ok := q.MinRank(); !ok || r != 100 {
		t.Fatalf("MinRank = (%d, %v), want (100, true)", r, ok)
	}
	if n := q.DequeueMin(); n == nil || n.Rank() != 100 {
		t.Fatalf("DequeueMin rank = %v", n)
	}
	if r, ok := q.MinRank(); !ok || r != 200 {
		t.Fatalf("MinRank after pop = (%d, %v), want (200, true)", r, ok)
	}
}

// TestRingFullFallback forces the producer-side flush path with a tiny
// ring and no consumer.
func TestRingFullFallback(t *testing.T) {
	q := New(Options{
		NumShards: 1,
		RingBits:  2, // 4 slots
		Kind:      queue.KindCFFS,
		Queue:     queue.Config{NumBuckets: 1 << 10, Granularity: 1},
	})
	const n = 100
	for i := 0; i < n; i++ {
		q.Enqueue(0, &bucket.Node{}, uint64(i))
	}
	st := q.Stats()
	if st.RingFull == 0 {
		t.Fatalf("expected ring-full fallbacks, stats: %v", st)
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	out := make([]*bucket.Node, n)
	if k := q.DequeueBatch(^uint64(0), out); k != n {
		t.Fatalf("drained %d, want %d", k, n)
	}
	for i, nd := range out {
		if nd.Rank() != uint64(i) {
			t.Fatalf("position %d: rank %d", i, nd.Rank())
		}
	}
}

// TestDirectDueReservesForQueueBacklog is the regression test for
// direct-due starvation: with the bucketed queues backlogged, a batch
// that could fill entirely from ring traffic must still hand part of
// itself to the queues, or fallback-spilled elements wait forever behind
// newer ring arrivals.
func TestDirectDueReservesForQueueBacklog(t *testing.T) {
	q := New(Options{
		NumShards: 1,
		RingBits:  3, // 8 slots
		Kind:      queue.KindCFFS,
		Queue:     queue.Config{NumBuckets: 1 << 10, Granularity: 1},
		DirectDue: true,
	})
	// Pre-stamp each node's rank: DirectDue delivers nodes straight off
	// the ring, where the rank travels in the ring entry and is never
	// written back to the node.
	enq := func(rank uint64) {
		n := &bucket.Node{}
		n.SetRank(rank)
		q.Enqueue(0, n, rank)
	}
	// Nine enqueues: the ninth finds the ring full and spills everything
	// (ranks 0..8) into the bucketed queue via the producer fallback,
	// leaving the ring empty...
	for i := 0; i < 9; i++ {
		enq(uint64(i))
	}
	if st := q.Stats(); st.RingFull != 1 {
		t.Fatalf("setup: RingFull = %d, want exactly 1", st.RingFull)
	}
	// ...then exactly refill the ring with strictly newer elements, so a
	// ring-sized batch could be satisfied from the ring alone.
	for i := 100; i < 108; i++ {
		enq(uint64(i))
	}
	out := make([]*bucket.Node, 8)
	k := q.DequeueBatch(^uint64(0), out)
	if k != 8 {
		t.Fatalf("DequeueBatch = %d, want a full batch", k)
	}
	minRank := out[0].Rank()
	for _, n := range out[:k] {
		if n.Rank() < minRank {
			minRank = n.Rank()
		}
	}
	if minRank >= 100 {
		t.Fatalf("batch served only ring arrivals (min rank %d); queue backlog starved", minRank)
	}
}

// TestConcurrentProducersDrain is the sharded counterpart of the qdisc
// regression test: many producers, one consumer, nothing lost.
func TestConcurrentProducersDrain(t *testing.T) {
	const producers = 8
	const perProducer = 4000
	q := newTestQ(8)

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(uint64(w*perProducer+i), &bucket.Node{}, uint64(i))
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	out := make([]*bucket.Node, 256)
	consumed := 0
	producersDone := false
	for consumed < producers*perProducer {
		k := q.DequeueBatch(^uint64(0), out)
		consumed += k
		if k > 0 {
			continue
		}
		if producersDone {
			// All publications completed before this empty drain, and
			// DequeueBatch flushes every ring — nothing can be in flight.
			t.Fatalf("consumed %d of %d with producers done", consumed, producers*perProducer)
		}
		select {
		case <-done:
			producersDone = true
		default:
		}
		runtime.Gosched()
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
	st := q.Stats()
	if st.Batched != producers*perProducer {
		t.Fatalf("Batched = %d, want %d", st.Batched, producers*perProducer)
	}
	if st.RingPushes+st.RingFull != producers*perProducer {
		t.Fatalf("pushes %d + ringfull %d != %d", st.RingPushes, st.RingFull, producers*perProducer)
	}
}

// TestCrossShardOrderUnderFallback is the randomized cross-shard ordering
// property test: the consumer drains window after window in exact mode
// while producers — squeezed through deliberately tiny rings so their
// fallback flushes constantly land mid-batch, bumping the fallback
// generation the consumer's head cache keys on — publish the NEXT window
// concurrently. Every window is fully published before the consumer
// drains it and the drain bound caps each batch at the window edge, so
// the merged output must be globally non-inverting to bucket granularity;
// an element missed because a stale cached head hid a fallback flush
// would surface as a count mismatch or an inversion in a later window.
func TestCrossShardOrderUnderFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized multi-round concurrency property test")
	}
	const (
		producers = 2
		rounds    = 60
		perRound  = 400
		window    = uint64(1 << 12)
		gran      = uint64(4)
	)
	q := New(Options{
		NumShards: 4,
		RingBits:  3, // 8 slots: almost every burst overflows into fallback
		Kind:      queue.KindCFFS,
		Queue:     queue.Config{NumBuckets: 1 << 12, Granularity: gran},
	})

	rng := rand.New(rand.NewSource(42))
	// Pre-generate each round's (flow, rank) pairs so producer goroutines
	// need no locked rng.
	type item struct {
		flow, rank uint64
	}
	work := make([][][]item, producers)
	for w := range work {
		work[w] = make([][]item, rounds)
		for r := range work[w] {
			items := make([]item, perRound/producers)
			for i := range items {
				items[i] = item{
					flow: rng.Uint64(),
					rank: uint64(r)*window + uint64(rng.Intn(int(window))),
				}
			}
			work[w][r] = items
		}
	}

	var published [producers]atomic.Int64 // highest round fully published, per producer
	var consumed atomic.Int64             // highest round fully drained
	for w := 0; w < producers; w++ {
		published[w].Store(-1)
	}
	consumed.Store(-1)

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stay at most two rounds ahead of the consumer so the
				// publishing of round r+1 overlaps the draining of round r.
				for int64(r) > consumed.Load()+2 {
					runtime.Gosched()
				}
				for _, it := range work[w][r] {
					q.Enqueue(it.flow, &bucket.Node{}, it.rank)
				}
				published[w].Store(int64(r))
			}
		}(w)
	}

	out := make([]*bucket.Node, 97) // odd batch size: batches straddle windows
	var got []uint64
	for r := 0; r < rounds; r++ {
		for {
			ready := true
			for w := range published {
				if published[w].Load() < int64(r) {
					ready = false
				}
			}
			if ready {
				break
			}
			runtime.Gosched()
		}
		bound := uint64(r+1)*window - 1
		drained := 0
		for drained < perRound {
			k := q.DequeueBatch(bound, out)
			if k == 0 {
				t.Fatalf("round %d: drained %d of %d with the round fully published", r, drained, perRound)
			}
			for _, n := range out[:k] {
				got = append(got, n.Rank())
			}
			drained += k
		}
		if drained != perRound {
			t.Fatalf("round %d: drained %d, want %d", r, drained, perRound)
		}
		consumed.Store(int64(r))
	}
	wg.Wait()
	if len(got) != rounds*perRound {
		t.Fatalf("total drained %d, want %d", len(got), rounds*perRound)
	}
	for i := 1; i < len(got); i++ {
		if got[i]/gran < got[i-1]/gran {
			t.Fatalf("position %d: rank %d after %d — inversion beyond bucket granularity", i, got[i], got[i-1])
		}
	}
	if st := q.Stats(); st.RingFull == 0 {
		t.Fatal("rings never overflowed: the test did not exercise mid-batch fallback flushes")
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{RingPushes: 10, Batches: 2, Batched: 8}
	if got := s.String(); got == "" {
		t.Fatal("empty snapshot string")
	}
}
