package shardq

import (
	"eiffel/internal/bucket"
	"eiffel/internal/queue"
)

// Scheduler is the per-shard queue backend contract: everything the
// runtime's drain and merge machinery needs from the structure behind a
// shard's ring, and nothing more. The runtime only ever moves elements in
// runs — flushes hand the backend whole EnqueueBatch runs, merged drains
// pop whole DequeueBatch runs bounded by the runner-up shard's Min — so
// the contract is batch-first; the single-element Enqueue exists for the
// producer ring-full fallback and spill paths.
//
// Semantics every backend must honor:
//
//   - Ranks are uint64 priorities, smaller first. Bucketed backends may
//     quantize: Min and the DequeueBatch bound then operate on quantized
//     ranks, and FIFO order holds within a bucket.
//   - DequeueBatch pops up to len(out) elements whose (quantized) rank is
//     at most maxRank, in nondecreasing (quantized) rank order, and
//     returns how many it wrote. A call that returns 0 MUST leave Min
//     either empty or above maxRank — the cross-shard merge's progress
//     argument (mergeRuns) depends on it.
//   - Calls are externally synchronized by the shard lock; backends need
//     no internal locking and are free to keep per-call scratch.
//
// Backends that re-rank elements internally between calls (the extended-
// PIFO policy backend: per-flow ranking, on-dequeue transactions) are
// fully supported: the runtime re-reads Min after every run it serves, so
// a backend may report a different head each time.
type Scheduler interface {
	// Enqueue inserts one element with the given rank.
	Enqueue(n *bucket.Node, rank uint64)
	// EnqueueBatch inserts ns[i] with ranks[i] for every i — equivalent to
	// that sequence of Enqueue calls.
	EnqueueBatch(ns []*bucket.Node, ranks []uint64)
	// DequeueBatch pops up to len(out) elements with (quantized) rank at
	// most maxRank and returns how many it wrote.
	DequeueBatch(maxRank uint64, out []*bucket.Node) int
	// Min returns the (quantized) minimum rank, or ok=false when empty.
	Min() (uint64, bool)
	// Len returns the number of queued elements.
	Len() int
}

// batchPopper is the optional queue.PQ fast path the adapter sniffs for:
// pop a whole run of elements at or below a rank bound in one call
// (ffsq.CFFS implements it).
type batchPopper interface {
	DequeueBatch(maxRank uint64, out []*bucket.Node) int
}

// batchPusher is the enqueue-side twin: insert a whole run of elements in
// one call, so locked flushes move ring→queue without a per-element
// interface dispatch.
type batchPusher interface {
	EnqueueBatch(ns []*bucket.Node, ranks []uint64)
}

// AuxScheduler is the optional two-key backend extension: the publication
// ring carries a (rank, aux) pair per element (the same wire format the
// shaped runtime uses for (sendAt, rank)), and a backend that implements
// AuxScheduler receives both words. This is how a policy backend gets the
// producer-resolved keys — e.g. (rank annotation, flow id) — without ever
// loading packet memory on the consumer: the producer reads the packet
// once, when it is cache-hot, and the keys ride the ring. Elements
// published without an aux (plain Enqueue/EnqueueBatch surfaces) deliver
// aux = 0.
type AuxScheduler interface {
	Scheduler
	// EnqueueAux inserts one element with the full ring payload.
	EnqueueAux(n *bucket.Node, rank, aux uint64)
	// EnqueueBatchAux inserts ns[i] with (ranks[i], auxes[i]) for every i.
	EnqueueBatchAux(ns []*bucket.Node, ranks, auxes []uint64)
}

// ClockedScheduler is the optional virtual-time extension for backends
// whose eligibility depends on a consumer clock (the hierarchical QoS
// backend: limit clocks park tenants until a future time, reservation
// clocks come due at a time). The runtime itself never calls these — the
// OWNER of the backend (the qdisc front) propagates each consumer
// group's clock into the group's backends before draining, mirroring how
// the policy front propagates `now` into its shard trees:
//
//   - SetNow advances the backend's clock and wakes a backend that had
//     reported itself empty because nothing was eligible at the old
//     clock (the stall contract: a backend with backlog but no eligible
//     element must answer Min() with ok=false so the cross-shard merge's
//     progress argument holds, and must start answering again once the
//     clock moves). SetNow is safe WITHOUT the shard lock — it must be
//     implemented with atomics, because producers whose rings filled
//     read the clock under the lock on their fallback flush paths.
//   - NextEvent reports the earliest time an ineligible element becomes
//     eligible (ok=false when empty or when work is ready now), for the
//     front's NextTimer. Callers hold the shard lock.
type ClockedScheduler interface {
	Scheduler
	// SetNow advances the consumer clock; see above for the contract.
	SetNow(now int64)
	// NextEvent returns the earliest pending eligibility time.
	NextEvent() (int64, bool)
}

// pqSched adapts a queue.PQ to the Scheduler contract, using the PQ's
// batch fast paths when it has them and per-element loops otherwise.
type pqSched struct {
	q   queue.PQ
	bp  batchPopper
	bpu batchPusher
}

// wrapPQ returns q itself when it already satisfies Scheduler (cFFS,
// vecSched), else a pqSched adapter.
func wrapPQ(q queue.PQ) Scheduler {
	if s, ok := q.(Scheduler); ok {
		return s
	}
	s := &pqSched{q: q}
	s.bp, _ = q.(batchPopper)
	s.bpu, _ = q.(batchPusher)
	return s
}

func (s *pqSched) Enqueue(n *bucket.Node, rank uint64) { s.q.Enqueue(n, rank) }

func (s *pqSched) EnqueueBatch(ns []*bucket.Node, ranks []uint64) {
	if s.bpu != nil {
		s.bpu.EnqueueBatch(ns, ranks)
		return
	}
	for i, n := range ns {
		s.q.Enqueue(n, ranks[i])
	}
}

func (s *pqSched) DequeueBatch(maxRank uint64, out []*bucket.Node) int {
	if s.bp != nil {
		return s.bp.DequeueBatch(maxRank, out)
	}
	popped := 0
	for popped < len(out) {
		r, ok := s.q.PeekMin()
		if !ok || r > maxRank {
			break
		}
		out[popped] = s.q.DequeueMin()
		popped++
	}
	return popped
}

func (s *pqSched) Min() (uint64, bool) { return s.q.PeekMin() }

func (s *pqSched) Len() int { return s.q.Len() }
