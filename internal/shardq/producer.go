package shardq

// This file is the producer side of the batched enqueue pipeline: a
// per-goroutine staging handle that amortizes the per-element costs of
// Enqueue — the flow hash, the ring CAS, and the publication barrier —
// over whole runs. Elements stage into per-shard buffers; a flush routes
// each shard's run as ONE multi-slot ring claim (ring.pushN), so k
// same-shard elements cost one CAS and one atomic store instead of k of
// each. When a ring fills mid-flush the remainder of the run moves
// straight into the bucketed queue under the shard lock through one
// backend EnqueueBatch call — the batched form of Enqueue's ring-full
// fallback, with the same backpressure semantics.

// stage is the flat per-shard staging store shared by Producer and
// ShapedProducer: shard i's pending run occupies pubs[i*per : i*per+cnt[i]].
// Like the ring, consumed segments retain their node pointers until
// overwritten — a bounded retention of elements that are live in the
// runtime anyway.
type stage struct {
	per    int
	staged int
	cnt    []int32
	pubs   []pub
}

func newStage(shards, per int) stage {
	if per <= 0 {
		per = 64
	}
	return stage{
		per:  per,
		cnt:  make([]int32, shards),
		pubs: make([]pub, shards*per),
	}
}

// Producer is a per-goroutine batched enqueue handle for Q. Enqueue stages
// an element on its shard's buffer and flushes that shard automatically
// when the buffer fills; Flush publishes every pending element. A staged
// element is NOT yet published: it is invisible to Len and the consumer
// until its shard flushes. Each Producer must be driven by a single
// goroutine at a time; any number of Producers (and plain Enqueue callers)
// may feed one Q concurrently.
type Producer struct {
	q  *Q
	st stage
	ad admitState
}

// NewProducer returns a staging handle whose per-shard buffers hold batch
// elements each (default 64). Larger batches amortize the ring claim
// further but delay publication until Flush.
func (q *Q) NewProducer(batch int) *Producer {
	return &Producer{q: q, st: newStage(len(q.shards), batch)}
}

// Staged returns how many elements are staged but not yet published.
func (p *Producer) Staged() int { return p.st.staged }

// Enqueue stages n with the given rank on flow's shard, flushing the shard
// if its staging buffer is full. The hot path is a hash and a handful of
// plain stores — no shared-memory traffic at all until the flush.
//
//eiffel:hotpath
func (p *Producer) Enqueue(flow uint64, n *Node, rank uint64) {
	p.EnqueueAux(flow, n, rank, 0)
}

// EnqueueAux is Enqueue carrying the ring's second payload word for
// AuxScheduler backends (see Q.EnqueueAux).
//
//eiffel:hotpath
func (p *Producer) EnqueueAux(flow uint64, n *Node, rank, aux uint64) {
	i := p.q.ShardFor(flow)
	c := p.st.cnt[i]
	p.st.pubs[i*p.st.per+int(c)] = pub{n: n, rank: rank, aux: aux}
	p.st.cnt[i] = c + 1
	p.st.staged++
	if int(c)+1 == p.st.per {
		p.flushShard(i)
	}
}

// Flush publishes every staged element. Call it when the producer's burst
// ends — after it, everything previously enqueued is visible to the
// consumer, exactly as if published through Q.Enqueue. Under a shard
// bound (Options.ShardBound), elements a full shard refuses are counted
// in Snapshot.Rejected and dropped; callers that want them back use
// FlushAdmit.
//
//eiffel:hotpath
func (p *Producer) Flush() {
	if p.st.staged == 0 && p.ad.adm == 0 {
		return
	}
	p.FlushAdmit()
}

// FlushAdmit publishes every staged element under the configured shard
// bound and reports the outcome: how many elements were admitted since
// the last FlushAdmit (automatic shard flushes included) and, in order,
// the ones whose shard was at its occupancy cap. Admit.Rejected aliases
// the producer's reusable refusal buffer — consume it before the next
// operation on this handle. With no bound configured nothing is ever
// refused and this is Flush with accounting.
//
//eiffel:hotpath
func (p *Producer) FlushAdmit() Admit {
	for i, c := range p.st.cnt {
		if c > 0 {
			p.flushShard(i)
		}
	}
	return p.ad.take()
}

// flushShard publishes shard i's staged run: multi-slot ring claims while
// the ring has room, then the locked queue fallback for any remainder —
// bounded by the shard occupancy cap when one is configured.
//
//eiffel:hotpath
func (p *Producer) flushShard(i int) {
	c := int(p.st.cnt[i])
	pubs := p.st.pubs[i*p.st.per : i*p.st.per+c]
	s := &p.q.shards[i]
	p.q.admitting.Add(1) // before the closed load; see Q.TryEnqueueAux
	if p.q.closed.Load() {
		// Closed runtime: the whole staged run refuses, independent of the
		// occupancy bound — admission is quiesced for the drain.
		p.q.admitting.Add(-1)
		p.ad.refuse(pubs, PushClosed)
		p.q.rejected.Add(uint64(c))
		p.st.cnt[i] = 0
		p.st.staged -= c
		return
	}
	done, refused := 0, 0
	for done < c {
		lim := c
		if p.q.bound > 0 {
			// Budget against published occupancy; refused elements are
			// recorded for FlushAdmit and counted runtime-wide.
			budget := p.q.bound - (s.qlen.Load() + s.ring.occupancy())
			if budget <= 0 {
				p.ad.refuse(pubs[done:], PushShardFull)
				p.q.rejected.Add(uint64(c - done))
				refused += c - done
				done = c
				break
			}
			if int64(c-done) > budget {
				lim = done + int(budget)
			}
		}
		k := s.ring.pushN(pubs[done:lim])
		if k > 0 {
			p.q.bulkClaims.Inc()
			p.q.bulkClaimed.Add(uint64(k))
			done += k
			continue
		}
		// Ring full: drain it and move the rest of the run straight into
		// the bucketed queue, all under one lock acquisition. Under a
		// bound, admit only up to the remaining budget (re-checked under
		// the lock, after the drain settled qlen).
		s.mu.Lock()
		drained := s.flushLocked()
		take := c - done
		if p.q.bound > 0 {
			budget := p.q.bound - (s.qlen.Load() + s.ring.occupancy())
			if budget < int64(take) {
				take = int(max(budget, 0))
			}
		}
		if take > 0 {
			s.enqueuePubsLocked(pubs[done : done+take])
			s.qlen.Add(int64(take))
		}
		s.fallbackGen.Add(1) // tell the consumer its cached head is stale
		s.mu.Unlock()
		p.q.ringFull.Inc()
		if drained > 0 {
			p.q.flushes.Inc()
			p.q.flushed.Add(uint64(drained))
		}
		done += take
		if done < c {
			p.ad.refuse(pubs[done:], PushShardFull)
			p.q.rejected.Add(uint64(c - done))
			refused += c - done
			done = c
		}
	}
	p.q.admitting.Add(-1)
	p.ad.adm += c - refused
	p.st.cnt[i] = 0
	p.st.staged -= c
}

// ShapedProducer is the Producer analogue for the shaped runtime: each
// staged element carries a release time and a priority, and a shard flush
// publishes (node, sendAt, rank) triples as one multi-slot ring claim.
// Same contract: one goroutine per handle, any number of handles per
// Shaped, staged elements invisible until flushed.
type ShapedProducer struct {
	q  *Shaped
	st stage
	ad admitState
}

// NewProducer returns a staging handle for the shaped runtime whose
// per-shard buffers hold batch elements each (default 64).
func (q *Shaped) NewProducer(batch int) *ShapedProducer {
	return &ShapedProducer{q: q, st: newStage(len(q.shards), batch)}
}

// Staged returns how many elements are staged but not yet published.
func (p *ShapedProducer) Staged() int { return p.st.staged }

// Enqueue stages n (the element's shaper handle) with the given release
// time and priority on flow's shard, flushing the shard if its staging
// buffer is full.
//
//eiffel:hotpath
func (p *ShapedProducer) Enqueue(flow uint64, n *Node, sendAt, rank uint64) {
	i := p.q.ShardFor(flow)
	c := p.st.cnt[i]
	p.st.pubs[i*p.st.per+int(c)] = pub{n: n, rank: sendAt, aux: rank}
	p.st.cnt[i] = c + 1
	p.st.staged++
	if int(c)+1 == p.st.per {
		p.flushShard(i)
	}
}

// Flush publishes every staged element. Under a shard bound, refused
// elements are counted and dropped; use FlushAdmit to get them back.
//
//eiffel:hotpath
func (p *ShapedProducer) Flush() {
	if p.st.staged == 0 && p.ad.adm == 0 {
		return
	}
	p.FlushAdmit()
}

// FlushAdmit publishes every staged element under the configured shard
// bound and reports the outcome; see Producer.FlushAdmit for the buffer-
// reuse contract.
//
//eiffel:hotpath
func (p *ShapedProducer) FlushAdmit() Admit {
	for i, c := range p.st.cnt {
		if c > 0 {
			p.flushShard(i)
		}
	}
	return p.ad.take()
}

//eiffel:hotpath
func (p *ShapedProducer) flushShard(i int) {
	c := int(p.st.cnt[i])
	pubs := p.st.pubs[i*p.st.per : i*p.st.per+c]
	s := &p.q.shards[i]
	p.q.admitting.Add(1) // before the closed load; see Q.TryEnqueueAux
	if p.q.closed.Load() {
		// Closed runtime: the whole staged run refuses (see
		// Producer.flushShard).
		p.q.admitting.Add(-1)
		p.ad.refuse(pubs, PushClosed)
		p.q.rejected.Add(uint64(c))
		p.st.cnt[i] = 0
		p.st.staged -= c
		return
	}
	done, refused := 0, 0
	for done < c {
		lim := c
		if p.q.bound > 0 {
			budget := p.q.bound - (s.qlen.Load() + s.ring.occupancy())
			if budget <= 0 {
				p.ad.refuse(pubs[done:], PushShardFull)
				p.q.rejected.Add(uint64(c - done))
				refused += c - done
				done = c
				break
			}
			if int64(c-done) > budget {
				lim = done + int(budget)
			}
		}
		k := s.ring.pushN(pubs[done:lim])
		if k > 0 {
			p.q.bulkClaims.Inc()
			p.q.bulkClaimed.Add(uint64(k))
			done += k
			continue
		}
		// Ring full: park the rest of the run in the shaper directly,
		// stashing each element's priority on its scheduler handle as the
		// per-element fallback does — bounded by the remaining budget when
		// a cap is configured.
		s.mu.Lock()
		drained := s.flushLocked(p.q.pair)
		take := c - done
		if p.q.bound > 0 {
			budget := p.q.bound - (s.qlen.Load() + s.ring.occupancy())
			if budget < int64(take) {
				take = int(max(budget, 0))
			}
		}
		if take > 0 {
			s.enqueuePubsLocked(p.q.pair, pubs[done:done+take])
			s.qlen.Add(int64(take))
		}
		s.fallbackGen.Add(1)
		s.mu.Unlock()
		p.q.ringFull.Inc()
		if drained > 0 {
			p.q.flushes.Inc()
			p.q.flushed.Add(uint64(drained))
		}
		done += take
		if done < c {
			p.ad.refuse(pubs[done:], PushShardFull)
			p.q.rejected.Add(uint64(c - done))
			refused += c - done
			done = c
		}
	}
	p.q.admitting.Add(-1)
	p.ad.adm += c - refused
	p.st.cnt[i] = 0
	p.st.staged -= c
}
