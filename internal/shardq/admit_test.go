package shardq

import (
	"math/rand"
	"testing"

	"eiffel/internal/bucket"
	"eiffel/internal/queue"
)

func newBoundedQ(shards int, ringBits uint, bound int) *Q {
	return New(Options{
		NumShards:  shards,
		RingBits:   ringBits,
		ShardBound: bound,
		Queue:      queue.Config{NumBuckets: 1 << 12, Granularity: 1},
	})
}

// TestTryEnqueueBound checks the single-element bounded path: admits up to
// the bound, refuses past it, counts refusals, and resumes after a drain.
func TestTryEnqueueBound(t *testing.T) {
	const bound = 8
	q := newBoundedQ(1, 10, bound)
	nodes := make([]bucket.Node, 2*bound)
	for i := 0; i < bound; i++ {
		if !q.TryEnqueue(0, &nodes[i], uint64(i)) {
			t.Fatalf("TryEnqueue %d refused below the bound", i)
		}
	}
	for i := bound; i < 2*bound; i++ {
		if q.TryEnqueue(0, &nodes[i], uint64(i)) {
			t.Fatalf("TryEnqueue %d admitted past the bound", i)
		}
	}
	if got := q.Stats().Rejected; got != bound {
		t.Fatalf("Snapshot.Rejected = %d, want %d", got, bound)
	}
	if got := q.Len(); got != bound {
		t.Fatalf("Len = %d, want %d", got, bound)
	}
	out := make([]*bucket.Node, bound)
	if got := q.DequeueBatch(^uint64(0), out); got != bound {
		t.Fatalf("DequeueBatch = %d, want %d", got, bound)
	}
	if !q.TryEnqueue(0, &nodes[bound], 0) {
		t.Fatal("TryEnqueue refused after the shard drained")
	}
}

// TestTryEnqueueUnbounded checks that without a bound TryEnqueue never
// refuses, even far past any ring capacity.
func TestTryEnqueueUnbounded(t *testing.T) {
	q := newBoundedQ(1, 4, 0) // 16-slot ring, no bound: spills via fallback
	nodes := make([]bucket.Node, 256)
	for i := range nodes {
		if !q.TryEnqueue(0, &nodes[i], uint64(i)) {
			t.Fatalf("unbounded TryEnqueue refused element %d", i)
		}
	}
	if got := q.Stats().Rejected; got != 0 {
		t.Fatalf("Snapshot.Rejected = %d without a bound, want 0", got)
	}
}

// TestFlushAdmitAccounting drives randomized skewed bursts through a
// bounded producer and checks, per flush cycle: admitted + rejected ==
// offered, no duplicate nodes among the rejects, and every reject staged
// in THIS cycle — the regression case being a refusal-free cycle handing
// back the previous cycle's refusal buffer.
func TestFlushAdmitAccounting(t *testing.T) {
	const bound = 48
	q := newBoundedQ(8, 4, bound)
	p := q.NewProducer(0)
	rng := rand.New(rand.NewSource(7))
	out := make([]*bucket.Node, 64)
	var totalAdm, totalRej uint64
	for round := 0; round < 300; round++ {
		batch := 1 + rng.Intn(256)
		staged := make(map[*Node]bool, batch)
		for i := 0; i < batch; i++ {
			n := &bucket.Node{}
			staged[n] = true
			// Heavy skew: a few hot flows so single shards hit their bound.
			p.Enqueue(uint64(rng.Intn(5)), n, uint64(i))
		}
		res := p.FlushAdmit()
		if res.Admitted+len(res.Rejected) != batch {
			t.Fatalf("round %d: admitted %d + rejected %d != offered %d",
				round, res.Admitted, len(res.Rejected), batch)
		}
		if (len(res.Rejected) > 0) != (res.Reason == PushShardFull) {
			t.Fatalf("round %d: %d rejects with reason %v", round, len(res.Rejected), res.Reason)
		}
		seen := make(map[*Node]bool, len(res.Rejected))
		for _, n := range res.Rejected {
			if seen[n] {
				t.Fatalf("round %d: node rejected twice", round)
			}
			seen[n] = true
			if !staged[n] {
				t.Fatalf("round %d: rejected node was not staged this cycle", round)
			}
		}
		totalAdm += uint64(res.Admitted)
		totalRej += uint64(len(res.Rejected))
		// Partial drain so later rounds admit again.
		for j := 0; j < 2; j++ {
			q.DequeueBatch(^uint64(0), out)
		}
	}
	if totalRej == 0 {
		t.Fatal("bound never triggered; test exercised nothing")
	}
	if got := q.Stats().Rejected; got != totalRej {
		t.Fatalf("Snapshot.Rejected = %d, want %d", got, totalRej)
	}
}

// TestFlushAdmitStaleBufferRegression pins the exact bug class: a flush
// cycle with refusals followed by one without must return an EMPTY
// Rejected slice the second time, not the previous cycle's buffer.
func TestFlushAdmitStaleBufferRegression(t *testing.T) {
	const bound = 4
	q := newBoundedQ(1, 10, bound)
	p := q.NewProducer(0)
	nodes := make([]bucket.Node, 2*bound)
	for i := range nodes {
		p.Enqueue(0, &nodes[i], uint64(i))
	}
	res := p.FlushAdmit()
	if res.Admitted != bound || len(res.Rejected) != bound {
		t.Fatalf("first flush: admitted %d rejected %d, want %d/%d",
			res.Admitted, len(res.Rejected), bound, bound)
	}
	// Drain fully, then a refusal-free cycle.
	out := make([]*bucket.Node, 2*bound)
	q.DequeueBatch(^uint64(0), out)
	var more [2]bucket.Node
	p.Enqueue(0, &more[0], 0)
	p.Enqueue(0, &more[1], 1)
	res = p.FlushAdmit()
	if res.Admitted != 2 || len(res.Rejected) != 0 || res.Reason != PushNone {
		t.Fatalf("refusal-free flush returned admitted %d rejected %d reason %v, want 2/0/none (stale buffer?)",
			res.Admitted, len(res.Rejected), res.Reason)
	}
}

// TestShapedBoundedAdmission runs the bound contract on the shaped
// runtime: TryEnqueue refuses at the cap and the shaped producer's
// FlushAdmit accounting stays exact.
func TestShapedBoundedAdmission(t *testing.T) {
	const bound = 8
	q := NewShaped(ShapedOptions{
		NumShards:  1,
		RingBits:   10,
		ShardBound: bound,
		Shaper:     queue.Config{NumBuckets: 1 << 12, Granularity: 1},
		Sched:      queue.Config{NumBuckets: 1 << 12, Granularity: 1},
		Pair:       pairElem,
	})
	elems := make([]*elem, 2*bound+1)
	for i := range elems {
		elems[i] = newElem(0, uint64(i))
	}
	for i := 0; i < bound; i++ {
		if !q.TryEnqueue(0, &elems[i].timer, 0, uint64(i)) {
			t.Fatalf("shaped TryEnqueue %d refused below the bound", i)
		}
	}
	if q.TryEnqueue(0, &elems[2*bound].timer, 0, 0) {
		t.Fatal("shaped TryEnqueue admitted past the bound")
	}
	p := q.NewProducer(0)
	for i := 0; i < bound; i++ {
		p.Enqueue(0, &elems[bound+i].timer, 0, uint64(i))
	}
	res := p.FlushAdmit()
	if res.Admitted != 0 || len(res.Rejected) != bound {
		t.Fatalf("shaped FlushAdmit at cap: admitted %d rejected %d, want 0/%d",
			res.Admitted, len(res.Rejected), bound)
	}
	if got := q.Stats().Rejected; got != uint64(bound)+1 {
		t.Fatalf("shaped Snapshot.Rejected = %d, want %d", got, bound+1)
	}
}
