package gradq

import (
	"math"

	"eiffel/internal/bucket"
	"eiffel/internal/ffsq"
)

// ApproxOptions configures an approximate gradient queue.
type ApproxOptions struct {
	// NumBuckets is the bucket count. Required.
	NumBuckets int
	// Granularity is the rank width of one bucket. Required.
	Granularity uint64
	// Base is the rank of the first bucket.
	Base uint64
	// Alpha is the weight-decay parameter: bucket i weighs 2^(i/Alpha).
	// Larger alpha lets one flat curvature cover more buckets at the cost
	// of more estimation ambiguity. Zero selects a default that keeps
	// 2^(NumBuckets/Alpha) comfortably inside float64 range.
	Alpha float64
	// Instrument additionally maintains an exact hierarchical index so the
	// queue can report true selection error (Figure 18). It roughly
	// doubles index-maintenance cost and is meant for experiments only.
	Instrument bool
}

func (o *ApproxOptions) defaults() {
	if o.Alpha == 0 {
		o.Alpha = 16
		if lim := float64(o.NumBuckets) / 900; lim > o.Alpha {
			o.Alpha = math.Ceil(lim)
		}
	}
}

// Approx is the approximate gradient queue of §3.1.2, exposed as a
// min-priority queue (ranks are deadlines/timestamps; internally bucket
// indices are mirrored so the algebraic max-estimate finds the minimum
// rank). The curvature coefficients use the improper weight 2^(i/alpha), so
// a single (a, b) pair covers thousands of buckets and the minimum is
// estimated in one step:
//
//	est = floor(b/a - u(alpha)),  u(alpha) = 1/(1 - 2^(1/alpha))
//
// The estimate is exact when occupied buckets are dense (the uniform-rank
// workloads the paper highlights); under sparse occupancy the queue falls
// back to a linear scan from the estimate and may return a near-minimum
// rather than the minimum. Stats() exposes both costs.
type Approx struct {
	arr  *bucket.Array
	grad *Grad // curvature index over physical buckets
	base uint64
	gran uint64
	n    int

	exact *ffsq.Hier // only when instrumented

	lookups     uint64
	searchSteps uint64
	selErrSum   uint64
	selErrMax   int
	estErrSum   uint64
}

// NewApprox returns an approximate gradient min-queue.
func NewApprox(opt ApproxOptions) *Approx {
	if opt.NumBuckets <= 0 {
		panic("gradq: NewApprox needs a positive bucket count")
	}
	if opt.Granularity == 0 {
		panic("gradq: NewApprox needs a positive granularity")
	}
	opt.defaults()
	q := &Approx{
		arr:  bucket.NewArray(opt.NumBuckets),
		base: opt.Base,
		gran: opt.Granularity,
		n:    opt.NumBuckets,
	}
	q.grad = NewGrad(NewGradWeights(opt.NumBuckets, opt.Alpha), func(p int) bool {
		return !q.arr.BucketEmpty(p)
	})
	if opt.Instrument {
		q.exact = ffsq.NewHier(opt.NumBuckets)
	}
	return q
}

// indexOrigin returns I0, the first usable weight index for a given alpha
// (§3.1.2: "indices start from I0 where g(alpha, M0) ~ 0"). It is chosen so
// the residual estimate error M*g(alpha,M)/(1-g) stays below half a bucket
// for every M >= I0, making the estimate exact under dense occupancy. For
// alpha=16 this lands near the paper's I0=124.
func indexOrigin(alpha float64) int {
	for i0 := int(2 * alpha); ; i0++ {
		g := math.Pow(2, -float64(i0+1)/alpha)
		if float64(i0)*g/(1-g) < 0.45 {
			return i0
		}
	}
}

func weightTable(n int, alpha float64, i0 int) []float64 {
	pow := make([]float64, n)
	for i := range pow {
		pow[i] = math.Pow(2, float64(i+i0)/alpha)
		if math.IsInf(pow[i], 1) {
			panic("gradq: alpha too small for bucket count (weight overflows float64)")
		}
	}
	return pow
}

// Len returns the number of queued elements.
func (q *Approx) Len() int { return q.arr.Len() }

// NumBuckets returns the configured bucket count.
func (q *Approx) NumBuckets() int { return q.n }

// ApproxStats reports the cost and accuracy counters of an approximate
// queue. SelectionError compares the bucket actually returned against the
// true minimum bucket; EstimateError compares the raw curvature estimate
// before the linear-search correction. Both require Instrument.
type ApproxStats struct {
	Lookups           uint64
	SearchSteps       uint64
	AvgSelectionError float64
	MaxSelectionError int
	AvgEstimateError  float64
}

// Stats returns accumulated lookup statistics.
func (q *Approx) Stats() ApproxStats {
	s := ApproxStats{
		Lookups:           q.lookups,
		SearchSteps:       q.searchSteps,
		MaxSelectionError: q.selErrMax,
	}
	if q.lookups > 0 {
		s.AvgSelectionError = float64(q.selErrSum) / float64(q.lookups)
		s.AvgEstimateError = float64(q.estErrSum) / float64(q.lookups)
	}
	return s
}

// phys mirrors a logical bucket (0 = lowest rank) into the physical index
// space where the gradient estimate finds the maximum.
func (q *Approx) phys(logical int) int { return q.n - 1 - logical }

func (q *Approx) logicalFor(rank uint64) int {
	if rank < q.base {
		return 0
	}
	b := (rank - q.base) / q.gran
	if b >= uint64(q.n) {
		return q.n - 1
	}
	return int(b)
}

// renormRatio triggers coefficient renormalization once the live weight
// mass has decayed this far below its peak: beyond that, cancellation error
// left behind by the departed mass (~2^-52 of the peak) becomes comparable
// to the remaining sum and would corrupt the estimate.
const renormRatio = 1 << 24

func (q *Approx) addWeight(p int) {
	q.grad.Mark(p)
	if q.exact != nil {
		q.exact.Set(p)
	}
}

func (q *Approx) subWeight(p int) {
	q.grad.Unmark(p)
	if q.exact != nil {
		q.exact.Clear(p)
	}
}

// Enqueue inserts n with the given rank.
func (q *Approx) Enqueue(n *bucket.Node, rank uint64) {
	p := q.phys(q.logicalFor(rank))
	if q.arr.Push(p, n, rank) {
		q.addWeight(p)
	}
}

// findMaxPhys locates a (near-)maximal non-empty physical bucket: curvature
// estimate first, then linear search downward (and upward as a last
// resort). The queue must be non-empty.
func (q *Approx) findMaxPhys() int {
	q.lookups++
	est := q.grad.Estimate()
	found := -1
	if !q.arr.BucketEmpty(est) {
		found = est
	} else {
		for i := est - 1; i >= 0; i-- {
			q.searchSteps++
			if !q.arr.BucketEmpty(i) {
				found = i
				break
			}
		}
		if found < 0 {
			for i := est + 1; i < q.n; i++ {
				q.searchSteps++
				if !q.arr.BucketEmpty(i) {
					found = i
					break
				}
			}
		}
	}
	if q.exact != nil {
		truth := q.exact.Max()
		if d := abs(found - truth); d > 0 {
			q.selErrSum += uint64(d)
			if d > q.selErrMax {
				q.selErrMax = d
			}
		}
		q.estErrSum += uint64(abs(est - truth))
	}
	return found
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// DequeueMin removes and returns the FIFO head of an approximately minimal
// bucket, or nil if empty.
func (q *Approx) DequeueMin() *bucket.Node {
	if q.arr.Len() == 0 {
		return nil
	}
	p := q.findMaxPhys()
	n, empty := q.arr.PopFront(p)
	if empty {
		q.subWeight(p)
	}
	return n
}

// PeekMin returns the start rank of an approximately minimal non-empty
// bucket.
func (q *Approx) PeekMin() (rank uint64, ok bool) {
	if q.arr.Len() == 0 {
		return 0, false
	}
	p := q.findMaxPhys()
	logical := uint64(q.n - 1 - p)
	return q.base + logical*q.gran, true
}

// PeekMaxLinear returns the start rank of the highest non-empty bucket by
// linear scan from the top. The gradient index accelerates only the
// minimum side; pFabric-style switches use this slower path for their
// drop-largest-remaining decision, which only runs at overload when the
// top of the queue is densely occupied.
func (q *Approx) PeekMaxLinear() (rank uint64, ok bool) {
	p := q.minPhysLinear()
	if p < 0 {
		return 0, false
	}
	logical := uint64(q.n - 1 - p)
	return q.base + logical*q.gran, true
}

// DequeueMaxLinear removes the FIFO head of the highest non-empty bucket
// (linear scan; see PeekMaxLinear), or nil.
func (q *Approx) DequeueMaxLinear() *bucket.Node {
	p := q.minPhysLinear()
	if p < 0 {
		return nil
	}
	n, empty := q.arr.PopFront(p)
	if empty {
		q.subWeight(p)
	}
	return n
}

// minPhysLinear finds the lowest non-empty physical bucket (= highest
// logical rank), or -1.
func (q *Approx) minPhysLinear() int {
	if q.arr.Len() == 0 {
		return -1
	}
	for p := 0; p < q.n; p++ {
		if !q.arr.BucketEmpty(p) {
			return p
		}
	}
	return -1
}

// Remove detaches n in O(1).
func (q *Approx) Remove(n *bucket.Node) {
	p := n.BucketIndex()
	if q.arr.Remove(n) {
		q.subWeight(p)
	}
}

// Contains reports whether n is currently queued here.
func (q *Approx) Contains(n *bucket.Node) bool { return n.InArray(q.arr) }
