package gradq

import (
	"math/bits"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"eiffel/internal/bucket"
)

func node(v uint64) *bucket.Node { return &bucket.Node{Data: v} }

// --- Appendix A: Theorem 1 ---

func TestTheorem1AllSingleBits(t *testing.T) {
	for i := 0; i < exactWidth; i++ {
		if got := Theorem1(1 << uint(i)); got != i {
			t.Fatalf("Theorem1(1<<%d) = %d, want %d", i, got, i)
		}
	}
}

func TestTheorem1AllOnesPrefixes(t *testing.T) {
	for n := 1; n <= exactWidth; n++ {
		word := uint64(1)<<uint(n) - 1
		if got, want := Theorem1(word), n-1; got != want {
			t.Fatalf("Theorem1(ones(%d)) = %d, want %d", n, got, want)
		}
	}
}

func TestTheorem1Exhaustive16(t *testing.T) {
	// Exhaustive over all 16-bit occupancies.
	for w := uint64(1); w < 1<<16; w++ {
		if got, want := Theorem1(w), bits.Len64(w)-1; got != want {
			t.Fatalf("Theorem1(%#x) = %d, want %d", w, got, want)
		}
	}
}

func TestQuickTheorem1Random32(t *testing.T) {
	f := func(raw uint32) bool {
		w := uint64(raw)
		if w == 0 {
			w = 1
		}
		return Theorem1(w) == bits.Len64(w)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// --- Exact gradient queue ---

func TestExactMaxOrdering(t *testing.T) {
	q := NewExact(1000, 1, 0)
	ranks := []uint64{5, 900, 3, 999, 0, 512, 512}
	for _, r := range ranks {
		q.Enqueue(node(r), r)
	}
	sorted := append([]uint64{}, ranks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	for i, want := range sorted {
		n := q.DequeueMax()
		if n == nil || n.Rank() != want {
			t.Fatalf("dequeue %d: got %v, want %d", i, n, want)
		}
	}
	if q.DequeueMax() != nil {
		t.Fatal("queue should be empty")
	}
}

func TestExactAgainstHeapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	q := NewExact(5000, 1, 0)
	var model []uint64
	for op := 0; op < 5000; op++ {
		if rng.Intn(2) == 0 || len(model) == 0 {
			r := uint64(rng.Intn(5000))
			q.Enqueue(node(r), r)
			model = append(model, r)
		} else {
			sort.Slice(model, func(i, j int) bool { return model[i] > model[j] })
			n := q.DequeueMax()
			if n.Rank() != model[0] {
				t.Fatalf("op %d: got %d, want %d", op, n.Rank(), model[0])
			}
			model = model[1:]
		}
	}
}

func TestExactRemove(t *testing.T) {
	q := NewExact(100, 1, 0)
	n1, n2 := node(50), node(60)
	q.Enqueue(n1, 50)
	q.Enqueue(n2, 60)
	q.Remove(n2)
	if got := q.DequeueMax(); got != n1 {
		t.Fatal("expected n1 after removing n2")
	}
	if q.Len() != 0 {
		t.Fatal("queue should be empty")
	}
}

func TestExactMinOrdering(t *testing.T) {
	q := NewExactMin(256, 4, 1000)
	ranks := []uint64{1500, 1004, 1999, 1000, 1500}
	for _, r := range ranks {
		q.Enqueue(node(r), r)
	}
	sorted := append([]uint64{}, ranks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, want := range sorted {
		n := q.DequeueMin()
		if n == nil || n.Rank() != want {
			t.Fatalf("dequeue %d: got %v, want %d", i, n, want)
		}
	}
}

func TestExactMinPeek(t *testing.T) {
	q := NewExactMin(100, 10, 0)
	q.Enqueue(node(557), 557)
	r, ok := q.PeekMin()
	if !ok || r != 550 {
		t.Fatalf("PeekMin = (%d,%v), want bucket start 550", r, ok)
	}
}

// --- Approximate gradient queue ---

func TestApproxDenseIsExact(t *testing.T) {
	// Every bucket occupied: dequeues come out in exact rank order. The
	// estimate only ever overshoots under suffix-dense occupancy, so the
	// downward search always lands on the true minimum (zero selection
	// error); the residual overshoot costs a bounded number of search
	// steps as the occupied span shrinks below ~8*alpha — the cost curve
	// Figure 17 measures.
	const n = 523
	q := NewApprox(ApproxOptions{NumBuckets: n, Granularity: 1, Alpha: 16, Instrument: true})
	for i := 0; i < n; i++ {
		q.Enqueue(node(uint64(i)), uint64(i))
	}
	for i := 0; i < n; i++ {
		got := q.DequeueMin()
		if got == nil || got.Rank() != uint64(i) {
			t.Fatalf("dequeue %d: got %v", i, got)
		}
	}
	s := q.Stats()
	if s.AvgSelectionError != 0 {
		t.Fatalf("dense occupancy should have zero selection error, got %v", s.AvgSelectionError)
	}
	if avg := float64(s.SearchSteps) / float64(s.Lookups); avg > 3 {
		t.Fatalf("dense drain should need only small corrections, got %.2f steps/lookup", avg)
	}
}

func TestApproxFullOccupancyFirstLookupsExact(t *testing.T) {
	// While the occupied span stays large the estimate needs no search at
	// all — the "zero error, one step" scenario of §3.1.2.
	const n = 2000
	q := NewApprox(ApproxOptions{NumBuckets: n, Granularity: 1, Alpha: 16, Instrument: true})
	for i := 0; i < n; i++ {
		q.Enqueue(node(uint64(i)), uint64(i))
	}
	for i := 0; i < n/2; i++ {
		if got := q.DequeueMin(); got.Rank() != uint64(i) {
			t.Fatalf("dequeue %d: rank %d", i, got.Rank())
		}
	}
	if s := q.Stats(); s.SearchSteps != 0 {
		t.Fatalf("large-span dense lookups should be single-step, got %d search steps", s.SearchSteps)
	}
}

func TestApproxNoElementLost(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 2000
	q := NewApprox(ApproxOptions{NumBuckets: n, Granularity: 1})
	const k = 5000
	for i := 0; i < k; i++ {
		r := uint64(rng.Intn(n))
		q.Enqueue(node(r), r)
	}
	got := 0
	for q.DequeueMin() != nil {
		got++
	}
	if got != k {
		t.Fatalf("drained %d elements, want %d", got, k)
	}
}

func TestApproxSparseFallsBackToSearch(t *testing.T) {
	const n = 1000
	q := NewApprox(ApproxOptions{NumBuckets: n, Granularity: 1, Instrument: true})
	// A single occupied bucket: estimate overshoots by ~|u| and the linear
	// search must still land on the right bucket.
	q.Enqueue(node(400), 400)
	got := q.DequeueMin()
	if got == nil || got.Rank() != 400 {
		t.Fatalf("got %v, want rank 400", got)
	}
	s := q.Stats()
	if s.SearchSteps == 0 {
		t.Fatal("single sparse bucket should have required linear search")
	}
	if s.AvgSelectionError != 0 {
		t.Fatalf("downward search should find the true bucket, selErr=%v", s.AvgSelectionError)
	}
}

func TestApproxRemoveAndDrift(t *testing.T) {
	const n = 100
	q := NewApprox(ApproxOptions{NumBuckets: n, Granularity: 1})
	nodes := make([]*bucket.Node, n)
	for i := range nodes {
		nodes[i] = node(uint64(i))
		q.Enqueue(nodes[i], uint64(i))
	}
	for _, x := range nodes {
		q.Remove(x)
	}
	if q.Len() != 0 {
		t.Fatal("queue should be empty")
	}
	if a, b := q.grad.Coeffs(); a != 0 || b != 0 {
		t.Fatalf("coefficients not reset on empty: a=%v b=%v", a, b)
	}
}

// --- Appendix B occupancy patterns ---

// appendixBPhysFill occupies the given *physical* buckets of an
// instrumented approximate queue. Physical p corresponds to logical
// n-1-p, i.e. rank n-1-p at granularity 1.
func appendixBPhysFill(n int, phys []int) *Approx {
	q := NewApprox(ApproxOptions{NumBuckets: n, Granularity: 1, Alpha: 16, Instrument: true})
	for _, p := range phys {
		r := uint64(n - 1 - p)
		q.Enqueue(node(r), r)
	}
	return q
}

func TestAppendixBEvenlySpacedLowError(t *testing.T) {
	// Case 1: elements evenly distributed with frequency 1/alpha behave
	// like an exact gradient queue with N/alpha elements.
	const n = 1024
	var phys []int
	for p := 0; p < n; p += 16 {
		phys = append(phys, p)
	}
	q := appendixBPhysFill(n, phys)
	got := q.DequeueMin()
	want := uint64(n - 1 - phys[len(phys)-1])
	if got.Rank() != want {
		// Even spacing may still be off by a small constant; the element
		// must come from within a few buckets of the true maximum.
		if d := int64(got.Rank()) - int64(want); d < -64 || d > 64 {
			t.Fatalf("evenly spaced: got rank %d, want near %d", got.Rank(), want)
		}
	}
}

func TestAppendixBLowConcentrationUndershoots(t *testing.T) {
	// Case 2: N/2 elements at the bottom plus one element above them. The
	// concentration pulls the estimate below the true maximum (epsilon<0),
	// and the error grows with the concentration size and shrinks with
	// distance — once the single element is far enough (its exponential
	// weight dominating the concentration sum), the error vanishes.
	const n = 1024
	mk := func(single int) *Approx {
		var phys []int
		for p := 0; p < n/2; p++ {
			phys = append(phys, p)
		}
		phys = append(phys, single)
		return appendixBPhysFill(n, phys)
	}

	near := mk(540) // ~1.5*alpha beyond the concentration: ambiguous
	near.DequeueMin()
	if s := near.Stats(); s.AvgSelectionError == 0 {
		t.Fatal("nearby concentration should cause a selection error (epsilon < 0)")
	}

	far := mk(768) // 3N/4 as in the appendix: single element dominates
	got := far.DequeueMin()
	if want := uint64(n - 1 - 768); got.Rank() != want {
		t.Fatalf("distant single element: got rank %d, want %d", got.Rank(), want)
	}
	if s := far.Stats(); s.AvgSelectionError != 0 {
		t.Fatalf("distant single element should dominate, selErr=%v", s.AvgSelectionError)
	}

	nearErr, farErr := mk(530), mk(600)
	nearErr.DequeueMin()
	farErr.DequeueMin()
	if nearErr.Stats().AvgSelectionError >= farErr.Stats().AvgSelectionError {
		// |epsilon| grows with the gap while still inside the ambiguous
		// zone (the estimate stays pinned at the concentration edge).
		t.Fatalf("error should grow with gap inside the ambiguous zone: near=%v far=%v",
			nearErr.Stats().AvgSelectionError, farErr.Stats().AvgSelectionError)
	}
}

func TestAppendixBFullOccupancyExact(t *testing.T) {
	// Case 3: all buckets occupied — exactly where the estimate is exact.
	const n = 523
	phys := make([]int, n)
	for p := range phys {
		phys[p] = p
	}
	q := appendixBPhysFill(n, phys)
	got := q.DequeueMin()
	if got.Rank() != 0 {
		t.Fatalf("full occupancy: got rank %d, want 0", got.Rank())
	}
	if s := q.Stats(); s.AvgSelectionError != 0 {
		t.Fatalf("full occupancy selection error = %v, want 0", s.AvgSelectionError)
	}
}

// --- Circular approximate queue ---

func TestCApproxDenseOrdering(t *testing.T) {
	q := NewCApprox(CApproxOptions{NumBuckets: 64, Granularity: 1})
	for r := uint64(0); r < 128; r++ {
		q.Enqueue(node(r), r)
	}
	for r := uint64(0); r < 128; r++ {
		n := q.DequeueMin()
		if n == nil || n.Rank() != r {
			t.Fatalf("dequeue %d: got %v", r, n)
		}
	}
}

func TestCApproxFarJumpAndOverflow(t *testing.T) {
	q := NewCApprox(CApproxOptions{NumBuckets: 16, Granularity: 1})
	q.Enqueue(node(3), 3)
	q.Enqueue(node(100000), 100000)
	q.Enqueue(node(100004), 100004)
	if n := q.DequeueMin(); n.Rank() != 3 {
		t.Fatalf("first = %d", n.Rank())
	}
	if n := q.DequeueMin(); n.Rank() != 100000 {
		t.Fatalf("second = %d", n.Rank())
	}
	if n := q.DequeueMin(); n.Rank() != 100004 {
		t.Fatalf("third = %d", n.Rank())
	}
	_, _, ff, _ := q.Stats()
	if ff == 0 {
		t.Fatal("expected a fast-forward")
	}
}

func TestCApproxProgressionDrainsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := NewCApprox(CApproxOptions{NumBuckets: 32, Granularity: 4})
	queued := 0
	base := uint64(0)
	for op := 0; op < 3000; op++ {
		if rng.Intn(2) == 0 || queued == 0 {
			r := base + uint64(rng.Intn(512))
			q.Enqueue(node(r), r)
			queued++
			if rng.Intn(10) == 0 {
				base += uint64(rng.Intn(256))
			}
		} else {
			if q.DequeueMin() == nil {
				t.Fatal("unexpected empty dequeue")
			}
			queued--
		}
	}
	for q.DequeueMin() != nil {
		queued--
	}
	if queued != 0 {
		t.Fatalf("element accounting off by %d", queued)
	}
}

func TestCApproxRemove(t *testing.T) {
	q := NewCApprox(CApproxOptions{NumBuckets: 16, Granularity: 1})
	n1, n2 := node(5), node(20)
	q.Enqueue(n1, 5)
	q.Enqueue(n2, 20) // secondary half
	q.Remove(n2)
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	if got := q.DequeueMin(); got != n1 {
		t.Fatal("expected n1")
	}
}

func BenchmarkApproxDense(b *testing.B) {
	const n = 5000
	q := NewApprox(ApproxOptions{NumBuckets: n, Granularity: 1})
	nodes := make([]*bucket.Node, n)
	for i := range nodes {
		nodes[i] = &bucket.Node{}
		q.Enqueue(nodes[i], uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := q.DequeueMin()
		q.Enqueue(x, x.Rank())
	}
}

func BenchmarkExactMax(b *testing.B) {
	const n = 5000
	q := NewExact(n, 1, 0)
	nodes := make([]*bucket.Node, n)
	for i := range nodes {
		nodes[i] = &bucket.Node{}
		q.Enqueue(nodes[i], uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := q.DequeueMax()
		q.Enqueue(x, x.Rank())
	}
}
