// Package gradq implements the gradient queues of §3.1.2 of the Eiffel
// paper: an exact gradient queue that computes Find-First-Set algebraically
// (Theorem 1, Appendix A), and the approximate gradient queue that trades
// bounded selection error for a single-step lookup over a large bucket
// range, including its circular variant for moving rank ranges.
package gradq

import "eiffel/internal/bucket"

// exactWidth is the branching factor of the exact gradient hierarchy. With
// width w the per-node coefficient b = sum(i * 2^i) for i < w must fit in a
// uint64; 32 keeps b below 2^37 with ample margin.
const exactWidth = 32

// gnode carries the curvature coefficients of one hierarchy node. For the
// proper weight function 2^i*(x-i)^2, a = sum(2^i) over non-empty children —
// which is literally the occupancy bitmap read as an integer — and
// b = sum(i*2^i). Theorem 1: the maximum non-empty child is ceil(b/a).
type gnode struct {
	a, b uint64
}

//eiffel:hotpath
func (g *gnode) set(i int) (wasEmpty bool) {
	m := uint64(1) << uint(i)
	if g.a&m != 0 {
		return false
	}
	wasEmpty = g.a == 0
	g.a |= m
	g.b += uint64(i) << uint(i)
	return wasEmpty
}

//eiffel:hotpath
func (g *gnode) clear(i int) (nowEmpty bool) {
	m := uint64(1) << uint(i)
	if g.a&m == 0 {
		return false
	}
	g.a &^= m
	g.b -= uint64(i) << uint(i)
	return g.a == 0
}

// maxIdx returns the maximum set child index via Theorem 1. The node must
// be non-empty.
//
//eiffel:hotpath
func (g *gnode) maxIdx() int {
	return int((g.b + g.a - 1) / g.a)
}

// Theorem1 computes the index of the most significant set bit of a word
// algebraically, exactly as Appendix A proves: ceil(b/a) with a the word
// itself and b the index-weighted bit sum. The word must be non-zero and
// use at most exactWidth bits. Exported for the Appendix A property tests.
func Theorem1(word uint64) int {
	var g gnode
	for i := 0; i < exactWidth; i++ {
		if word&(1<<uint(i)) != 0 {
			g.set(i)
		}
	}
	if g.a == 0 {
		panic("gradq: Theorem1 of zero word")
	}
	return g.maxIdx()
}

// Exact is the exact hierarchical gradient queue: a bucketed max-priority
// queue over the fixed rank range [base, base+n*gran) whose occupancy index
// is navigated with divisions instead of FFS instructions. It is
// functionally equivalent to a hierarchical FFS queue (the paper introduces
// it as the stepping stone to the approximate queue, which is where the
// algebraic form pays off).
type Exact struct {
	idx  *ExactIndex
	arr  *bucket.Array
	base uint64
	gran uint64
	n    int
}

// NewExact returns an exact gradient max-queue with numBuckets buckets of
// width gran starting at rank base.
func NewExact(numBuckets int, gran, base uint64) *Exact {
	if numBuckets <= 0 {
		panic("gradq: NewExact needs a positive bucket count")
	}
	if gran == 0 {
		panic("gradq: NewExact needs a positive granularity")
	}
	return &Exact{
		idx:  NewExactIndex(numBuckets),
		arr:  bucket.NewArray(numBuckets),
		base: base,
		gran: gran,
		n:    numBuckets,
	}
}

// Len returns the number of queued elements.
func (e *Exact) Len() int { return e.arr.Len() }

// NumBuckets returns the configured bucket count.
func (e *Exact) NumBuckets() int { return e.n }

func (e *Exact) bucketFor(rank uint64) int {
	if rank < e.base {
		return 0
	}
	b := (rank - e.base) / e.gran
	if b >= uint64(e.n) {
		return e.n - 1
	}
	return int(b)
}

func (e *Exact) setIndex(i int) { e.idx.Set(i) }

func (e *Exact) clearIndex(i int) { e.idx.Clear(i) }

// maxBucket returns the highest non-empty bucket, or -1 (see
// ExactIndex.Max).
func (e *Exact) maxBucket() int { return e.idx.Max() }

// Enqueue inserts n with the given rank.
func (e *Exact) Enqueue(n *bucket.Node, rank uint64) {
	i := e.bucketFor(rank)
	if e.arr.Push(i, n, rank) {
		e.setIndex(i)
	}
}

// DequeueMax removes and returns the FIFO head of the highest non-empty
// bucket, or nil.
func (e *Exact) DequeueMax() *bucket.Node {
	i := e.maxBucket()
	if i < 0 {
		return nil
	}
	n, empty := e.arr.PopFront(i)
	if empty {
		e.clearIndex(i)
	}
	return n
}

// PeekMax returns the start rank of the highest non-empty bucket.
func (e *Exact) PeekMax() (rank uint64, ok bool) {
	i := e.maxBucket()
	if i < 0 {
		return 0, false
	}
	return e.base + uint64(i)*e.gran, true
}

// Remove detaches n in O(1).
func (e *Exact) Remove(n *bucket.Node) {
	i := n.BucketIndex()
	if e.arr.Remove(n) {
		e.clearIndex(i)
	}
}

// ExactMin adapts Exact into a min-queue by mirroring bucket indices, so
// deadline-style policies can use the gradient structure directly.
type ExactMin struct {
	e    *Exact
	base uint64
	gran uint64
	n    int
}

// NewExactMin returns an exact gradient min-queue over [base, base+n*gran).
func NewExactMin(numBuckets int, gran, base uint64) *ExactMin {
	return &ExactMin{
		e:    NewExact(numBuckets, 1, 0),
		base: base,
		gran: gran,
		n:    numBuckets,
	}
}

func (m *ExactMin) mirror(rank uint64) uint64 {
	var b uint64
	if rank > m.base {
		b = (rank - m.base) / m.gran
	}
	if b >= uint64(m.n) {
		b = uint64(m.n) - 1
	}
	return uint64(m.n) - 1 - b
}

// Len returns the number of queued elements.
func (m *ExactMin) Len() int { return m.e.Len() }

// Enqueue inserts n with the given rank. The true rank is preserved on the
// node; only the internal bucket index is mirrored.
func (m *ExactMin) Enqueue(n *bucket.Node, rank uint64) {
	i := m.mirror(rank)
	if m.e.arr.Push(int(i), n, rank) {
		m.e.setIndex(int(i))
	}
}

// DequeueMin removes and returns an element of the lowest non-empty bucket.
func (m *ExactMin) DequeueMin() *bucket.Node { return m.e.DequeueMax() }

// PeekMin returns the start rank of the lowest non-empty bucket.
func (m *ExactMin) PeekMin() (rank uint64, ok bool) {
	i := m.e.maxBucket()
	if i < 0 {
		return 0, false
	}
	logical := uint64(m.n) - 1 - uint64(i)
	return m.base + logical*m.gran, true
}

// Remove detaches n in O(1).
func (m *ExactMin) Remove(n *bucket.Node) { m.e.Remove(n) }
