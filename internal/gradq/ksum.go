package gradq

// ksum is a Kahan-compensated floating-point accumulator. The curvature
// coefficients a and b sum weights spanning an enormous dynamic range
// (2^(i0/alpha) .. 2^((i0+n)/alpha)); naive += / -= maintenance accumulates
// rounding error proportional to the number of operations at peak
// magnitude, which is enough to perturb floor(b/a) by whole buckets.
// Compensated summation keeps the error within a few ulps of the current
// value.
type ksum struct {
	s, c float64
}

//eiffel:hotpath
func (k *ksum) add(x float64) {
	y := x - k.c
	t := k.s + y
	k.c = (t - k.s) - y
	k.s = t
}

//eiffel:hotpath
func (k *ksum) sub(x float64) { k.add(-x) }

//eiffel:hotpath
func (k *ksum) reset() { k.s, k.c = 0, 0 }

//eiffel:hotpath
func (k *ksum) value() float64 { return k.s }
