package gradq

import "eiffel/internal/bucket"

// CApprox is the circular variant of the approximate gradient queue (§3.1.2
// closes with "for cases of a moving range, a circular approximate queue
// can be implemented as with cFFS"). Structure and window movement mirror
// ffsq.CFFS — two halves, h_index, pointer-swap rotation, overflow bucket
// with redistribution, far-jump fast-forward — while bucket selection
// inside a half uses the curvature estimate.
//
// Control-flow decisions (is the primary empty? is only the overflow bucket
// occupied?) use exact element counts, so only *which* bucket is served
// next is approximate; no element is ever lost or served before its half.
type CApprox struct {
	prim, sec *approxHalf
	hIndex    uint64
	nb        uint64
	gran      uint64
	count     int

	scratch []*bucket.Node

	rotations    uint64
	overflows    uint64
	fastForwards uint64
	clampedLow   uint64
	searchSteps  uint64
	lookups      uint64
}

type approxHalf struct {
	arr *bucket.Array
	g   *Grad // curvature accumulator; both halves share one GradWeights
}

func newApproxHalf(w *GradWeights, n int) *approxHalf {
	h := &approxHalf{arr: bucket.NewArray(n)}
	h.g = NewGrad(w, func(p int) bool { return !h.arr.BucketEmpty(p) })
	return h
}

// CApproxOptions configures a circular approximate gradient queue.
type CApproxOptions struct {
	// NumBuckets is the bucket count per half. Required.
	NumBuckets int
	// Granularity is the rank width of one bucket. Required.
	Granularity uint64
	// Start positions the initial window.
	Start uint64
	// Alpha is the weight-decay parameter (see ApproxOptions.Alpha).
	Alpha float64
}

// NewCApprox returns a circular approximate gradient min-queue.
func NewCApprox(opt CApproxOptions) *CApprox {
	if opt.NumBuckets <= 0 {
		panic("gradq: NewCApprox needs a positive bucket count")
	}
	if opt.Granularity == 0 {
		panic("gradq: NewCApprox needs a positive granularity")
	}
	w := NewGradWeights(opt.NumBuckets, opt.Alpha)
	return &CApprox{
		prim:   newApproxHalf(w, opt.NumBuckets),
		sec:    newApproxHalf(w, opt.NumBuckets),
		hIndex: opt.Start / opt.Granularity,
		nb:     uint64(opt.NumBuckets),
		gran:   opt.Granularity,
	}
}

// Len returns the number of queued elements.
func (c *CApprox) Len() int { return c.count }

// Granularity returns the rank width of one bucket.
func (c *CApprox) Granularity() uint64 { return c.gran }

// Stats returns operational counters.
func (c *CApprox) Stats() (rotations, overflows, fastForwards, searchSteps uint64) {
	return c.rotations, c.overflows, c.fastForwards, c.searchSteps
}

func (c *CApprox) addWeight(h *approxHalf, p int) { h.g.Mark(p) }

func (c *CApprox) subWeight(h *approxHalf, p int) { h.g.Unmark(p) }

// Enqueue inserts n with the given rank.
func (c *CApprox) Enqueue(n *bucket.Node, rank uint64) {
	b := rank / c.gran
	if c.count == 0 && b < c.hIndex {
		c.hIndex = b
	}
	c.place(n, rank, b)
	c.count++
}

func (c *CApprox) place(n *bucket.Node, rank, b uint64) {
	var h *approxHalf
	var p int
	// Offset arithmetic stays overflow-safe for ranks near MaxUint64.
	switch {
	case b < c.hIndex:
		c.clampedLow++
		h, p = c.prim, int(c.nb-1) // logical front = physical last
	default:
		switch off := b - c.hIndex; {
		case off < c.nb:
			h, p = c.prim, int(c.nb-1-off)
		case off < 2*c.nb:
			h, p = c.sec, int(c.nb-1-(off-c.nb))
		default:
			c.overflows++
			h, p = c.sec, 0 // logical last = physical 0: the overflow bucket
		}
	}
	if h.arr.Push(p, n, rank) {
		c.addWeight(h, p)
	}
}

// findMaxPhys locates a (near-)maximal non-empty physical bucket of h,
// which must be non-empty.
func (c *CApprox) findMaxPhys(h *approxHalf) int {
	c.lookups++
	est := h.g.Estimate()
	if !h.arr.BucketEmpty(est) {
		return est
	}
	for i := est - 1; i >= 0; i-- {
		c.searchSteps++
		if !h.arr.BucketEmpty(i) {
			return i
		}
	}
	for i := est + 1; i < int(c.nb); i++ {
		c.searchSteps++
		if !h.arr.BucketEmpty(i) {
			return i
		}
	}
	panic("gradq: findMaxPhys on an empty half")
}

// DequeueMin removes and returns the FIFO head of an approximately minimal
// bucket, rotating the window as needed, or nil if empty.
func (c *CApprox) DequeueMin() *bucket.Node {
	if c.count == 0 {
		return nil
	}
	c.advance()
	p := c.findMaxPhys(c.prim)
	n, empty := c.prim.arr.PopFront(p)
	if empty {
		c.subWeight(c.prim, p)
	}
	c.count--
	return n
}

// PeekMin returns the start rank of an approximately minimal non-empty
// bucket.
func (c *CApprox) PeekMin() (rank uint64, ok bool) {
	if c.count == 0 {
		return 0, false
	}
	c.advance()
	p := c.findMaxPhys(c.prim)
	logical := c.nb - 1 - uint64(p)
	return (c.hIndex + logical) * c.gran, true
}

// Remove detaches n, which must be queued here, in O(1).
func (c *CApprox) Remove(n *bucket.Node) {
	var h *approxHalf
	switch {
	case n.InArray(c.prim.arr):
		h = c.prim
	case n.InArray(c.sec.arr):
		h = c.sec
	default:
		panic("gradq: Remove of a node not queued in this CApprox")
	}
	p := n.BucketIndex()
	if h.arr.Remove(n) {
		c.subWeight(h, p)
	}
	c.count--
}

func (c *CApprox) advance() {
	for c.prim.arr.Len() == 0 {
		if c.sec.arr.Len() == 0 {
			panic("gradq: CApprox invariant violated: elements queued but both halves empty")
		}
		if c.sec.arr.Len() == c.sec.arr.BucketLen(0) {
			// Only the overflow bucket (physical 0) holds elements.
			c.fastForward()
			continue
		}
		c.rotate()
	}
}

func (c *CApprox) rotate() {
	c.prim, c.sec = c.sec, c.prim
	c.hIndex += c.nb
	c.rotations++
	// The old overflow bucket is physical 0 of the new primary.
	c.replaceBucket(c.prim, 0)
}

func (c *CApprox) fastForward() {
	c.drainInto(c.sec, 0)
	minB := ^uint64(0)
	for _, n := range c.scratch {
		if b := n.Rank() / c.gran; b < minB {
			minB = b
		}
	}
	c.hIndex = minB
	c.fastForwards++
	c.flushScratch()
}

func (c *CApprox) replaceBucket(h *approxHalf, p int) {
	if h.arr.BucketEmpty(p) {
		return
	}
	c.drainInto(h, p)
	c.flushScratch()
}

func (c *CApprox) drainInto(h *approxHalf, p int) {
	for {
		n, empty := h.arr.PopFront(p)
		if n == nil {
			break
		}
		c.scratch = append(c.scratch, n)
		if empty {
			c.subWeight(h, p)
			break
		}
	}
}

func (c *CApprox) flushScratch() {
	for _, n := range c.scratch {
		c.place(n, n.Rank(), n.Rank()/c.gran)
	}
	c.scratch = c.scratch[:0]
}
