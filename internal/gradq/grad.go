package gradq

import "math"

// GradWeights is the immutable weight geometry of a gradient curvature
// index: the per-bucket improper weights 2^((p+i0)/alpha), the estimator
// offset u(alpha), and the index origin I0 (§3.1.2). One table can back any
// number of Grad accumulators over the same bucket count — the circular
// queue shares one table between its two halves, and a sharded runtime can
// share one between all of a group's shards.
type GradWeights struct {
	pow   []float64 // pow[p] = 2^((p+i0)/alpha)
	u     float64   // 1/(1 - 2^(1/alpha)), negative
	i0    int
	alpha float64
	n     int
}

// NewGradWeights builds the weight table for n buckets. A zero alpha
// selects the ApproxOptions default (16, raised so 2^(n/alpha) stays
// comfortably inside float64 range).
func NewGradWeights(n int, alpha float64) *GradWeights {
	if n <= 0 {
		panic("gradq: NewGradWeights needs a positive bucket count")
	}
	o := ApproxOptions{NumBuckets: n, Alpha: alpha}
	o.defaults()
	i0 := indexOrigin(o.Alpha)
	return &GradWeights{
		pow:   weightTable(n, o.Alpha, i0),
		u:     1 / (1 - math.Pow(2, 1/o.Alpha)),
		i0:    i0,
		alpha: o.Alpha,
		n:     n,
	}
}

// NumBuckets returns the bucket count the table covers.
func (w *GradWeights) NumBuckets() int { return w.n }

// Alpha returns the resolved weight-decay parameter.
func (w *GradWeights) Alpha() float64 { return w.alpha }

// Window returns the rigorous containment window of the curvature
// estimate: with at least one bucket marked, the true maximum marked
// physical index m always satisfies
//
//	est-down <= m <= est+up
//
// for the unclamped estimate est (clamping only tightens the side it
// clamps). Derivation, with r = 2^(-1/alpha) and |u| = r/(1-r):
//
//	mean := b/a is a weight-average of (p+i0) over the marked set, so
//	mean <= m+i0, and mean >= m+i0-D where the drag D is maximised by
//	dense occupancy below m: D <= sum_{j>=0} j*r^j / r^0 = r/(1-r)^2
//	= |u|*(1+|u|).
//
//	est = floor(mean + |u| + 0.5) - i0, hence
//	est - m <= floor(|u|+0.5)         (mean at its maximum), and
//	m - est <= ceil(D - |u| - 0.5) <= ceil(|u|^2)  (mean at its minimum).
//
// Both sides carry a +2 pad for floating-point slop: the Kahan-compensated
// accumulators plus decay-triggered renormalisation keep the coefficients
// within a few ulps of their true values, far below half a bucket.
func (w *GradWeights) Window() (down, up int) {
	abs := -w.u // u is negative
	down = int(math.Floor(abs+0.5)) + 2
	up = int(math.Ceil(abs*abs)) + 2
	if down > w.n-1 {
		down = w.n - 1
	}
	if up > w.n-1 {
		up = w.n - 1
	}
	return down, up
}

// Grad is the reusable curvature accumulator of the approximate gradient
// queue: the (a, b) coefficient pair over a marked-bucket set, maintained
// with Kahan-compensated summation and decay-triggered renormalisation.
// Approx, CApprox (one per half), and the sharded runtime's gradient
// scheduler backend all delegate their index maintenance here; the owner
// keeps the buckets themselves and reports transitions — Mark when a
// bucket goes empty→non-empty, Unmark for the reverse — and asks Estimate
// for the (near-)maximal marked physical index.
//
// occupied reports whether bucket p currently holds elements; it is only
// consulted on the amortized renormalisation slow path.
type Grad struct {
	w        *GradWeights
	a, b     ksum
	marked   int
	peakA    float64
	renorms  uint64
	occupied func(p int) bool
}

// NewGrad returns a curvature accumulator over w's buckets.
func NewGrad(w *GradWeights, occupied func(p int) bool) *Grad {
	if occupied == nil {
		panic("gradq: NewGrad needs an occupancy probe")
	}
	return &Grad{w: w, occupied: occupied}
}

// Weights returns the shared weight table.
func (g *Grad) Weights() *GradWeights { return g.w }

// Marked returns the number of marked buckets.
//
//eiffel:hotpath
func (g *Grad) Marked() int { return g.marked }

// Coeffs returns the current curvature coefficient values (a, b).
func (g *Grad) Coeffs() (a, b float64) { return g.a.value(), g.b.value() }

// Renorms returns how many renormalisations have run.
func (g *Grad) Renorms() uint64 { return g.renorms }

// Mark records bucket p's empty→non-empty transition.
//
//eiffel:hotpath
func (g *Grad) Mark(p int) {
	g.a.add(g.w.pow[p])
	g.b.add(float64(p+g.w.i0) * g.w.pow[p])
	g.marked++
	if v := g.a.value(); v > g.peakA {
		g.peakA = v
	}
}

// Unmark records bucket p's non-empty→empty transition, resetting the
// accumulated floating-point drift when the last bucket empties and
// renormalising once the live mass has decayed renormRatio below its peak
// (see Approx for the amortization argument).
//
//eiffel:hotpath
func (g *Grad) Unmark(p int) {
	g.a.sub(g.w.pow[p])
	g.b.sub(float64(p+g.w.i0) * g.w.pow[p])
	g.marked--
	if g.marked == 0 {
		g.a.reset()
		g.b.reset()
		g.peakA = 0
	} else if v := g.a.value(); v <= 0 || v*renormRatio < g.peakA {
		g.renormalize()
	}
}

// renormalize recomputes the coefficients from true occupancy, discarding
// accumulated cancellation error. Amortized O(1) per operation: it can
// only fire again after the mass decays by another renormRatio, which
// takes Omega(alpha * log2(renormRatio)) unmarks.
//
//eiffel:hotpath
func (g *Grad) renormalize() {
	g.renorms++
	g.a.reset()
	g.b.reset()
	g.marked = 0
	for p := 0; p < g.w.n; p++ {
		if g.occupied(p) {
			g.a.add(g.w.pow[p])
			g.b.add(float64(p+g.w.i0) * g.w.pow[p])
			g.marked++
		}
	}
	g.peakA = g.a.value()
}

// Estimate returns the curvature estimate of the maximal marked physical
// index, clamped into [0, n). At least one bucket must be marked. The true
// maximum lies within Window() of the returned value.
//
//eiffel:hotpath
func (g *Grad) Estimate() int {
	// The true value is maxIndex + eps with eps >= 0 (suffix-dense
	// residual), so rounding toward +0.5 absorbs negative floating-point
	// noise without disturbing the intended bucket.
	est := int(math.Floor(g.b.value()/g.a.value()-g.w.u+0.5)) - g.w.i0
	if est < 0 {
		est = 0
	} else if est >= g.w.n {
		est = g.w.n - 1
	}
	return est
}

// ExactIndex is the standalone Theorem-1 occupancy index: the exact
// gradient hierarchy of §3.1.2 (gnode curvature coefficients per
// exactWidth-child node, maximum located algebraically as ceil(b/a) per
// level) decoupled from any element store, so it can index external bucket
// storage the same way ffsq.Hier does — Exact composes it with a
// bucket.Array, and the sharded runtime's gradient backend composes it
// with slice buckets for its zero-width (exact) degeneracy.
type ExactIndex struct {
	levels [][]gnode
}

// NewExactIndex returns a Theorem-1 index over n buckets.
func NewExactIndex(n int) *ExactIndex {
	if n <= 0 {
		panic("gradq: NewExactIndex needs a positive bucket count")
	}
	x := &ExactIndex{}
	for nodes := n; ; {
		words := (nodes + exactWidth - 1) / exactWidth
		x.levels = append(x.levels, make([]gnode, words))
		if words == 1 {
			break
		}
		nodes = words
	}
	return x
}

// Set marks bucket i non-empty. Idempotent.
//
//eiffel:hotpath
func (x *ExactIndex) Set(i int) {
	for lvl := range x.levels {
		w, c := i/exactWidth, i%exactWidth
		if !x.levels[lvl][w].set(c) {
			return
		}
		i = w
	}
}

// Clear marks bucket i empty. Idempotent.
//
//eiffel:hotpath
func (x *ExactIndex) Clear(i int) {
	for lvl := range x.levels {
		w, c := i/exactWidth, i%exactWidth
		if !x.levels[lvl][w].clear(c) {
			return
		}
		i = w
	}
}

// Max returns the maximum marked bucket, or -1, descending the hierarchy
// with one Theorem 1 division per level.
//
//eiffel:hotpath
func (x *ExactIndex) Max() int {
	top := len(x.levels) - 1
	if x.levels[top][0].a == 0 {
		return -1
	}
	j := x.levels[top][0].maxIdx()
	for lvl := top - 1; lvl >= 0; lvl-- {
		j = j*exactWidth + x.levels[lvl][j].maxIdx()
	}
	return j
}
