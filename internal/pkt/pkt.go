// Package pkt defines the packet representation shared by every scheduler,
// substrate, and simulator in this repository, plus a free-list pool that
// keeps the hot enqueue/dequeue paths allocation-free (Go's GC would
// otherwise dominate exactly the latency microbenchmarks the paper cares
// about).
package pkt

import (
	"unsafe"

	"eiffel/internal/bucket"
)

// Packet is one schedulable unit. Scheduling state lives in the embedded
// intrusive handles; metadata fields are annotations set by packet
// annotators (§3, Figure 1) and read by ranking transactions.
type Packet struct {
	// SchedNode is the packet's handle in scheduling priority queues.
	SchedNode bucket.Node
	// TimerNode is the packet's handle in time-indexed structures (the
	// shaper, timing wheels); separate so a packet can be ordered and
	// time-gated simultaneously (Figure 8).
	TimerNode bucket.Node

	// ID is a monotonically assigned identifier.
	ID uint64
	// Flow identifies the flow the packet belongs to.
	Flow uint64
	// Size is the packet length in bytes.
	Size uint32
	// Class is the traffic class assigned by the annotator.
	Class int32
	// Rank is a policy-specific rank annotation (e.g. remaining flow size
	// for pFabric).
	Rank uint64
	// Deadline is an absolute deadline in ns (EDF/LSTF policies).
	Deadline int64
	// Arrival is the enqueue timestamp in ns.
	Arrival int64
	// SendAt is the shaping release timestamp in ns.
	SendAt int64
	// Seq is the transport sequence number (network simulator).
	Seq uint32
	// Flags carries simulator flag bits (see FlagECN, FlagACK).
	Flags uint32
}

// Packet flag bits.
const (
	// FlagECN marks congestion experienced (DCTCP marking).
	FlagECN uint32 = 1 << iota
	// FlagACK identifies acknowledgment packets.
	FlagACK
	// FlagECNEcho carries the receiver's congestion echo on an ACK.
	FlagECNEcho
)

// FromSchedNode recovers the packet owning a scheduling node. Pure pointer
// arithmetic on the embedded handle's offset (the kernel's container_of):
// the conversion itself never loads the node's memory, which matters on
// the batch release path where the handle pointer is hot (it just came off
// a ring or bucket) but the packet's cache lines were last touched by the
// producer.
//
//eiffel:hotpath
func FromSchedNode(n *bucket.Node) *Packet {
	return (*Packet)(unsafe.Pointer(uintptr(unsafe.Pointer(n)) - unsafe.Offsetof(Packet{}.SchedNode)))
}

// FromTimerNode recovers the packet owning a timer node (container_of, as
// FromSchedNode).
//
//eiffel:hotpath
func FromTimerNode(n *bucket.Node) *Packet {
	return (*Packet)(unsafe.Pointer(uintptr(unsafe.Pointer(n)) - unsafe.Offsetof(Packet{}.TimerNode)))
}

// FromNode recovers the packet owning either of its handles — for callers
// like the shaped sharded runtime, whose consumer may hand back whichever
// handle a packet last traveled on. Only this variant must consult the
// node's Data backpointer, since the handle's identity is unknown.
//
//eiffel:hotpath
func FromNode(n *bucket.Node) *Packet { return n.Data.(*Packet) }

// Pool is a non-concurrent free list of packets. Get returns a zeroed
// packet whose intrusive handles point back at it.
type Pool struct {
	free   []*Packet
	nextID uint64
	allocs uint64
}

// NewPool returns a pool pre-populated with capacity packets.
func NewPool(capacity int) *Pool {
	p := &Pool{free: make([]*Packet, 0, capacity)}
	for i := 0; i < capacity; i++ {
		p.free = append(p.free, p.fresh())
	}
	return p
}

func (pl *Pool) fresh() *Packet {
	pl.allocs++
	p := &Packet{}
	p.SchedNode.Data = p
	p.TimerNode.Data = p
	return p
}

// Get returns a packet with a fresh ID and zeroed metadata.
//
//eiffel:hotpath
func (pl *Pool) Get() *Packet {
	var p *Packet
	if n := len(pl.free); n > 0 {
		p = pl.free[n-1]
		pl.free = pl.free[:n-1]
	} else {
		//eiffel:allow(hotpath) pool miss; NewPool pre-populates so steady state stays on the free list
		p = pl.fresh()
	}
	pl.nextID++
	p.ID = pl.nextID
	return p
}

// Put recycles a packet. The packet must be detached from all queues.
//
//eiffel:hotpath
func (pl *Pool) Put(p *Packet) {
	if p.SchedNode.Queued() || p.TimerNode.Queued() {
		panic("pkt: Put of a packet still queued")
	}
	p.Flow, p.Size, p.Class, p.Rank = 0, 0, 0, 0
	p.Deadline, p.Arrival, p.SendAt = 0, 0, 0
	p.Seq, p.Flags = 0, 0
	pl.free = append(pl.free, p)
}

// Allocs reports how many packets were ever allocated (pool misses plus
// pre-population); benchmarks assert this stays flat in steady state.
func (pl *Pool) Allocs() uint64 { return pl.allocs }
