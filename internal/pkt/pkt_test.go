package pkt

import (
	"testing"

	"eiffel/internal/bucket"
)

func TestPoolRecycle(t *testing.T) {
	pool := NewPool(2)
	a := pool.Get()
	b := pool.Get()
	if a.ID == b.ID {
		t.Fatal("IDs must be unique")
	}
	a.Flow, a.Size, a.Rank, a.Seq, a.Flags = 7, 1500, 42, 9, FlagECN
	pool.Put(a)
	c := pool.Get()
	if c != a {
		t.Fatal("expected recycled packet")
	}
	if c.Flow != 0 || c.Size != 0 || c.Rank != 0 || c.Seq != 0 || c.Flags != 0 {
		t.Fatal("recycled packet not zeroed")
	}
	if c.ID == 0 || c.ID == b.ID {
		t.Fatal("recycled packet needs a fresh ID")
	}
}

func TestPoolGrowsBeyondCapacity(t *testing.T) {
	pool := NewPool(1)
	a, b := pool.Get(), pool.Get()
	if a == nil || b == nil {
		t.Fatal("pool must grow on demand")
	}
	if pool.Allocs() != 2 {
		t.Fatalf("Allocs = %d, want 2", pool.Allocs())
	}
}

func TestNodeBackPointers(t *testing.T) {
	pool := NewPool(1)
	p := pool.Get()
	if FromSchedNode(&p.SchedNode) != p {
		t.Fatal("SchedNode.Data must point at its packet")
	}
	if FromTimerNode(&p.TimerNode) != p {
		t.Fatal("TimerNode.Data must point at its packet")
	}
}

func TestPutQueuedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when putting a queued packet")
		}
	}()
	pool := NewPool(1)
	p := pool.Get()
	arr := bucket.NewArray(1)
	arr.Push(0, &p.SchedNode, 0)
	pool.Put(p)
}

func TestFlagBitsDistinct(t *testing.T) {
	if FlagECN&FlagACK != 0 || FlagACK&FlagECNEcho != 0 || FlagECN&FlagECNEcho != 0 {
		t.Fatal("flag bits overlap")
	}
}
