// Package cmpq implements the comparison-based priority queues the paper
// measures Eiffel against (§2): a binary min-heap (the C++ std::
// priority_queue stand-in used by the hClock and pFabric baselines), a
// red-black tree (the kernel qdisc substrate under FQ/pacing), and a pairing
// heap (an extra ablation point). All cost O(log n) per operation in the
// number of queued elements — the bound bucketed integer queues break.
package cmpq

import "eiffel/internal/bucket"

// Heap is a binary min-heap over intrusive nodes. Node.Pos holds the heap
// index, enabling O(log n) removal and re-ranking of arbitrary elements
// (what heap-based hClock needs on every tag update).
type Heap struct {
	items []*bucket.Node
}

// NewHeap returns an empty binary min-heap.
func NewHeap() *Heap { return &Heap{} }

// Len returns the number of queued elements.
func (h *Heap) Len() int { return len(h.items) }

// Enqueue inserts n with the given rank.
func (h *Heap) Enqueue(n *bucket.Node, rank uint64) {
	n.SetRank(rank)
	n.Pos = int32(len(h.items))
	h.items = append(h.items, n)
	h.up(int(n.Pos))
}

// DequeueMin removes and returns the minimum-rank element, or nil. Ties
// break arbitrarily (binary heaps are not stable), matching the baseline
// the paper compares against.
func (h *Heap) DequeueMin() *bucket.Node {
	if len(h.items) == 0 {
		return nil
	}
	top := h.items[0]
	h.removeAt(0)
	return top
}

// PeekMin returns the minimum rank without removing.
func (h *Heap) PeekMin() (uint64, bool) {
	if len(h.items) == 0 {
		return 0, false
	}
	return h.items[0].Rank(), true
}

// Min returns the minimum element without removing, or nil.
func (h *Heap) Min() *bucket.Node {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

// Remove detaches n, which must be queued here, in O(log n).
func (h *Heap) Remove(n *bucket.Node) {
	i := int(n.Pos)
	if i < 0 || i >= len(h.items) || h.items[i] != n {
		panic("cmpq: Remove of a node not in this heap")
	}
	h.removeAt(i)
}

// Update re-ranks n in place in O(log n).
func (h *Heap) Update(n *bucket.Node, rank uint64) {
	i := int(n.Pos)
	if i < 0 || i >= len(h.items) || h.items[i] != n {
		panic("cmpq: Update of a node not in this heap")
	}
	n.SetRank(rank)
	h.down(i)
	h.up(int(n.Pos))
}

func (h *Heap) removeAt(i int) {
	last := len(h.items) - 1
	h.swap(i, last)
	h.items[last].Pos = -1
	h.items = h.items[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
}

func (h *Heap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].Pos = int32(i)
	h.items[j].Pos = int32(j)
}

func (h *Heap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].Rank() <= h.items[i].Rank() {
			break
		}
		h.swap(p, i)
		i = p
	}
}

func (h *Heap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h.items[l].Rank() < h.items[s].Rank() {
			s = l
		}
		if r < n && h.items[r].Rank() < h.items[s].Rank() {
			s = r
		}
		if s == i {
			return
		}
		h.swap(i, s)
		i = s
	}
}
