package cmpq

import "eiffel/internal/bucket"

// PairingHeap is a two-pass pairing heap, included as an additional
// comparison-based ablation point: better amortized constants than a binary
// heap for meld-heavy use, still Omega(log n) amortized for delete-min.
type PairingHeap struct {
	root    *pairNode
	size    int
	free    *pairNode // recycled wrappers
	handles map[*bucket.Node]*pairNode
}

type pairNode struct {
	n                    *bucket.Node
	child, sibling, prev *pairNode
}

// NewPairingHeap returns an empty pairing heap.
func NewPairingHeap() *PairingHeap {
	return &PairingHeap{handles: make(map[*bucket.Node]*pairNode)}
}

// Len returns the number of queued elements.
func (h *PairingHeap) Len() int { return h.size }

// Enqueue inserts n with the given rank.
func (h *PairingHeap) Enqueue(n *bucket.Node, rank uint64) {
	n.SetRank(rank)
	pn := h.alloc(n)
	h.handles[n] = pn
	h.root = h.meld(h.root, pn)
	h.size++
}

// PeekMin returns the minimum rank without removing.
func (h *PairingHeap) PeekMin() (uint64, bool) {
	if h.root == nil {
		return 0, false
	}
	return h.root.n.Rank(), true
}

// DequeueMin removes and returns the minimum-rank element, or nil.
func (h *PairingHeap) DequeueMin() *bucket.Node {
	if h.root == nil {
		return nil
	}
	top := h.root
	h.root = h.mergePairs(top.child)
	if h.root != nil {
		h.root.prev = nil
		h.root.sibling = nil
	}
	h.size--
	n := top.n
	delete(h.handles, n)
	h.recycle(top)
	return n
}

// Remove detaches n, which must be queued here: the node is cut from its
// parent and its children are merged back into the root.
func (h *PairingHeap) Remove(n *bucket.Node) {
	pn, ok := h.handles[n]
	if !ok {
		panic("cmpq: Remove of a node not in this pairing heap")
	}
	delete(h.handles, n)
	if pn == h.root {
		h.root = h.mergePairs(pn.child)
		if h.root != nil {
			h.root.prev, h.root.sibling = nil, nil
		}
	} else {
		// Detach pn from its parent's child list.
		if pn.prev.child == pn {
			pn.prev.child = pn.sibling
		} else {
			pn.prev.sibling = pn.sibling
		}
		if pn.sibling != nil {
			pn.sibling.prev = pn.prev
		}
		if sub := h.mergePairs(pn.child); sub != nil {
			sub.prev, sub.sibling = nil, nil
			h.root = h.meld(h.root, sub)
		}
	}
	h.size--
	h.recycle(pn)
}

func (h *PairingHeap) alloc(n *bucket.Node) *pairNode {
	pn := h.free
	if pn == nil {
		pn = &pairNode{}
	} else {
		h.free = pn.sibling
		pn.sibling = nil
	}
	pn.n = n
	return pn
}

func (h *PairingHeap) recycle(pn *pairNode) {
	pn.n, pn.child, pn.prev = nil, nil, nil
	pn.sibling = h.free
	h.free = pn
}

func (h *PairingHeap) meld(a, b *pairNode) *pairNode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if b.n.Rank() < a.n.Rank() {
		a, b = b, a
	}
	// b becomes a's first child.
	b.prev = a
	b.sibling = a.child
	if a.child != nil {
		a.child.prev = b
	}
	a.child = b
	return a
}

func (h *PairingHeap) mergePairs(first *pairNode) *pairNode {
	if first == nil {
		return nil
	}
	// Pass 1: meld siblings pairwise left to right; pass 2: meld results
	// right to left. Iterative to avoid deep recursion.
	var stack []*pairNode
	for first != nil {
		a := first
		b := a.sibling
		var next *pairNode
		if b != nil {
			next = b.sibling
			a.sibling, a.prev = nil, nil
			b.sibling, b.prev = nil, nil
			stack = append(stack, h.meld(a, b))
		} else {
			a.sibling, a.prev = nil, nil
			stack = append(stack, a)
		}
		first = next
	}
	res := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		res = h.meld(stack[i], res)
	}
	return res
}
