package cmpq

// RBTree is a red-black tree keyed by uint64 rank, the data structure
// behind the kernel's FQ/pacing qdisc that the paper identifies as a main
// source of shaping overhead (§5.1.1). Duplicate keys are allowed; equal
// keys are ordered by insertion (new duplicates go right), giving FIFO
// semantics among ties.
type RBTree struct {
	root *RBNode
	nil_ *RBNode // sentinel
	size int
}

// RBNode is one tree node. Value carries the caller's payload.
type RBNode struct {
	Key   uint64
	Value any

	left, right, parent *RBNode
	red                 bool
}

// NewRBTree returns an empty red-black tree.
func NewRBTree() *RBTree {
	s := &RBNode{}
	s.left, s.right, s.parent = s, s, s
	return &RBTree{root: s, nil_: s}
}

// Len returns the number of nodes.
func (t *RBTree) Len() int { return t.size }

// Insert adds a node with the given key and value, returning the node
// handle for later Delete.
func (t *RBTree) Insert(key uint64, value any) *RBNode {
	z := &RBNode{Key: key, Value: value, left: t.nil_, right: t.nil_, red: true}
	y := t.nil_
	x := t.root
	for x != t.nil_ {
		y = x
		if z.Key < x.Key {
			x = x.left
		} else {
			x = x.right
		}
	}
	z.parent = y
	switch {
	case y == t.nil_:
		t.root = z
	case z.Key < y.Key:
		y.left = z
	default:
		y.right = z
	}
	t.size++
	t.insertFixup(z)
	return z
}

// Min returns the node with the smallest key, or nil if empty.
func (t *RBTree) Min() *RBNode {
	if t.root == t.nil_ {
		return nil
	}
	x := t.root
	for x.left != t.nil_ {
		x = x.left
	}
	return x
}

// DeleteMin removes and returns the node with the smallest key, or nil.
func (t *RBTree) DeleteMin() *RBNode {
	m := t.Min()
	if m != nil {
		t.Delete(m)
	}
	return m
}

// Next returns the in-order successor of x, or nil.
func (t *RBTree) Next(x *RBNode) *RBNode {
	if x.right != t.nil_ {
		x = x.right
		for x.left != t.nil_ {
			x = x.left
		}
		return x
	}
	y := x.parent
	for y != t.nil_ && x == y.right {
		x = y
		y = y.parent
	}
	if y == t.nil_ {
		return nil
	}
	return y
}

func (t *RBTree) rotateLeft(x *RBNode) {
	y := x.right
	x.right = y.left
	if y.left != t.nil_ {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *RBTree) rotateRight(x *RBNode) {
	y := x.left
	x.left = y.right
	if y.right != t.nil_ {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *RBTree) insertFixup(z *RBNode) {
	for z.parent.red {
		if z.parent == z.parent.parent.left {
			y := z.parent.parent.right
			if y.red {
				z.parent.red = false
				y.red = false
				z.parent.parent.red = true
				z = z.parent.parent
			} else {
				if z == z.parent.right {
					z = z.parent
					t.rotateLeft(z)
				}
				z.parent.red = false
				z.parent.parent.red = true
				t.rotateRight(z.parent.parent)
			}
		} else {
			y := z.parent.parent.left
			if y.red {
				z.parent.red = false
				y.red = false
				z.parent.parent.red = true
				z = z.parent.parent
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rotateRight(z)
				}
				z.parent.red = false
				z.parent.parent.red = true
				t.rotateLeft(z.parent.parent)
			}
		}
	}
	t.root.red = false
}

func (t *RBTree) transplant(u, v *RBNode) {
	switch {
	case u.parent == t.nil_:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	v.parent = u.parent
}

// Delete removes z from the tree. z must be in the tree.
func (t *RBTree) Delete(z *RBNode) {
	y := z
	yWasRed := y.red
	var x *RBNode
	switch {
	case z.left == t.nil_:
		x = z.right
		t.transplant(z, z.right)
	case z.right == t.nil_:
		x = z.left
		t.transplant(z, z.left)
	default:
		y = z.right
		for y.left != t.nil_ {
			y = y.left
		}
		yWasRed = y.red
		x = y.right
		if y.parent == z {
			x.parent = y
		} else {
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.red = z.red
	}
	t.size--
	if !yWasRed {
		t.deleteFixup(x)
	}
	z.left, z.right, z.parent = nil, nil, nil
}

func (t *RBTree) deleteFixup(x *RBNode) {
	for x != t.root && !x.red {
		if x == x.parent.left {
			w := x.parent.right
			if w.red {
				w.red = false
				x.parent.red = true
				t.rotateLeft(x.parent)
				w = x.parent.right
			}
			if !w.left.red && !w.right.red {
				w.red = true
				x = x.parent
			} else {
				if !w.right.red {
					w.left.red = false
					w.red = true
					t.rotateRight(w)
					w = x.parent.right
				}
				w.red = x.parent.red
				x.parent.red = false
				w.right.red = false
				t.rotateLeft(x.parent)
				x = t.root
			}
		} else {
			w := x.parent.left
			if w.red {
				w.red = false
				x.parent.red = true
				t.rotateRight(x.parent)
				w = x.parent.left
			}
			if !w.right.red && !w.left.red {
				w.red = true
				x = x.parent
			} else {
				if !w.left.red {
					w.right.red = false
					w.red = true
					t.rotateLeft(w)
					w = x.parent.left
				}
				w.red = x.parent.red
				x.parent.red = false
				w.left.red = false
				t.rotateRight(x.parent)
				x = t.root
			}
		}
	}
	x.red = false
}
