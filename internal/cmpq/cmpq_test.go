package cmpq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"eiffel/internal/bucket"
)

func node() *bucket.Node { return &bucket.Node{} }

// --- Heap ---

func TestHeapOrdering(t *testing.T) {
	h := NewHeap()
	ranks := []uint64{9, 1, 5, 5, 0, 1 << 40}
	for _, r := range ranks {
		h.Enqueue(node(), r)
	}
	sorted := append([]uint64{}, ranks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, want := range sorted {
		n := h.DequeueMin()
		if n == nil || n.Rank() != want {
			t.Fatalf("dequeue %d: got %v, want %d", i, n, want)
		}
	}
}

func TestHeapRemoveAndUpdate(t *testing.T) {
	h := NewHeap()
	nodes := make([]*bucket.Node, 10)
	for i := range nodes {
		nodes[i] = node()
		h.Enqueue(nodes[i], uint64(i))
	}
	h.Remove(nodes[0])
	h.Update(nodes[9], 0)
	if got := h.DequeueMin(); got != nodes[9] {
		t.Fatal("updated node should be min")
	}
	if got := h.DequeueMin(); got != nodes[1] {
		t.Fatal("want nodes[1] after removing nodes[0]")
	}
	if h.Len() != 7 {
		t.Fatalf("Len = %d, want 7", h.Len())
	}
}

func TestQuickHeapAgainstSort(t *testing.T) {
	f := func(raw []uint32) bool {
		h := NewHeap()
		for _, v := range raw {
			h.Enqueue(node(), uint64(v))
		}
		sorted := make([]uint64, len(raw))
		for i, v := range raw {
			sorted[i] = uint64(v)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, want := range sorted {
			if got := h.DequeueMin(); got.Rank() != want {
				return false
			}
		}
		return h.DequeueMin() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHeapRandomRemovals(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHeap()
		live := []*bucket.Node{}
		model := map[*bucket.Node]uint64{}
		for op := 0; op < 400; op++ {
			switch {
			case rng.Intn(3) != 0 || len(live) == 0:
				n := node()
				r := uint64(rng.Intn(1000))
				h.Enqueue(n, r)
				live = append(live, n)
				model[n] = r
			case rng.Intn(2) == 0:
				i := rng.Intn(len(live))
				h.Remove(live[i])
				delete(model, live[i])
				live = append(live[:i], live[i+1:]...)
			default:
				n := h.DequeueMin()
				if n == nil {
					return false
				}
				min := uint64(1 << 62)
				for _, r := range model {
					if r < min {
						min = r
					}
				}
				if n.Rank() != min {
					return false
				}
				delete(model, n)
				for i, x := range live {
					if x == n {
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
			}
			if h.Len() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- RBTree ---

func TestRBTreeInsertMinDelete(t *testing.T) {
	tr := NewRBTree()
	keys := []uint64{50, 10, 90, 10, 70, 30}
	for _, k := range keys {
		tr.Insert(k, k)
	}
	sorted := append([]uint64{}, keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, want := range sorted {
		m := tr.DeleteMin()
		if m == nil || m.Key != want {
			t.Fatalf("DeleteMin %d: got %v, want %d", i, m, want)
		}
	}
	if tr.Len() != 0 || tr.Min() != nil {
		t.Fatal("tree should be empty")
	}
}

func TestRBTreeDeleteArbitrary(t *testing.T) {
	tr := NewRBTree()
	handles := map[uint64]*RBNode{}
	for _, k := range []uint64{5, 3, 8, 1, 4, 7, 9, 2, 6} {
		handles[k] = tr.Insert(k, nil)
	}
	tr.Delete(handles[5])
	tr.Delete(handles[1])
	tr.Delete(handles[9])
	want := []uint64{2, 3, 4, 6, 7, 8}
	for i, w := range want {
		m := tr.DeleteMin()
		if m.Key != w {
			t.Fatalf("step %d: got %d, want %d", i, m.Key, w)
		}
	}
}

func TestRBTreeIteration(t *testing.T) {
	tr := NewRBTree()
	for _, k := range []uint64{4, 2, 6, 1, 3, 5, 7} {
		tr.Insert(k, nil)
	}
	var got []uint64
	for x := tr.Min(); x != nil; x = tr.Next(x) {
		got = append(got, x.Key)
	}
	for i := uint64(1); i <= 7; i++ {
		if got[i-1] != i {
			t.Fatalf("in-order = %v", got)
		}
	}
}

// checkRB validates red-black invariants: root black, no red-red edges,
// equal black heights.
func checkRB(t *testing.T, tr *RBTree) {
	t.Helper()
	if tr.root.red {
		t.Fatal("root is red")
	}
	var walk func(x *RBNode) int
	walk = func(x *RBNode) int {
		if x == tr.nil_ {
			return 1
		}
		if x.red && (x.left.red || x.right.red) {
			t.Fatal("red node with red child")
		}
		if x.left != tr.nil_ && x.left.Key > x.Key {
			t.Fatal("BST order violated (left)")
		}
		if x.right != tr.nil_ && x.right.Key < x.Key {
			t.Fatal("BST order violated (right)")
		}
		lh := walk(x.left)
		rh := walk(x.right)
		if lh != rh {
			t.Fatalf("black height mismatch: %d vs %d", lh, rh)
		}
		if x.red {
			return lh
		}
		return lh + 1
	}
	walk(tr.root)
}

func TestRBTreeInvariantsUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := NewRBTree()
	var live []*RBNode
	for op := 0; op < 3000; op++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			live = append(live, tr.Insert(uint64(rng.Intn(500)), nil))
		} else {
			i := rng.Intn(len(live))
			tr.Delete(live[i])
			live = append(live[:i], live[i+1:]...)
		}
		if op%100 == 0 {
			checkRB(t, tr)
			if tr.Len() != len(live) {
				t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
			}
		}
	}
	checkRB(t, tr)
}

func TestQuickRBTreeSortedDrain(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := NewRBTree()
		for _, v := range raw {
			tr.Insert(uint64(v), nil)
		}
		last := uint64(0)
		count := 0
		for {
			m := tr.DeleteMin()
			if m == nil {
				break
			}
			if m.Key < last {
				return false
			}
			last = m.Key
			count++
		}
		return count == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- PairingHeap ---

func TestPairingHeapOrdering(t *testing.T) {
	h := NewPairingHeap()
	ranks := []uint64{3, 3, 1, 8, 0, 2}
	for _, r := range ranks {
		h.Enqueue(node(), r)
	}
	sorted := append([]uint64{}, ranks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, want := range sorted {
		n := h.DequeueMin()
		if n == nil || n.Rank() != want {
			t.Fatalf("dequeue %d: got %v, want %d", i, n, want)
		}
	}
	if h.Len() != 0 {
		t.Fatal("should be empty")
	}
}

func TestQuickPairingAgainstSort(t *testing.T) {
	f := func(raw []uint32) bool {
		h := NewPairingHeap()
		for _, v := range raw {
			h.Enqueue(node(), uint64(v))
		}
		sorted := make([]uint64, len(raw))
		for i, v := range raw {
			sorted[i] = uint64(v)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, want := range sorted {
			if got := h.DequeueMin(); got.Rank() != want {
				return false
			}
		}
		return h.DequeueMin() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHeapChurn(b *testing.B) {
	h := NewHeap()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		h.Enqueue(node(), uint64(rng.Intn(1<<20)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := h.DequeueMin()
		h.Enqueue(n, n.Rank()+uint64(rng.Intn(1024)))
	}
}

func BenchmarkRBTreeChurn(b *testing.B) {
	tr := NewRBTree()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		tr.Insert(uint64(rng.Intn(1<<20)), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := tr.DeleteMin()
		tr.Insert(m.Key+uint64(rng.Intn(1024)), nil)
	}
}
