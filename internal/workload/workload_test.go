package workload

import (
	"math/rand"
	"testing"
)

func TestWebSearchDistShape(t *testing.T) {
	d := NewSizeDist(WebSearchCDF)
	// Median around 70 KB, heavy tail: mean well above median.
	med := d.Quantile(0.5)
	if med < 30_000 || med > 150_000 {
		t.Fatalf("median = %d, want ~70KB", med)
	}
	if d.Mean() < float64(med)*3 {
		t.Fatalf("mean %v should be far above median %d (heavy tail)", d.Mean(), med)
	}
	if d.Quantile(0.95) < 5_000_000 {
		t.Fatalf("Q95 = %d, want multi-MB tail", d.Quantile(0.95))
	}
}

func TestSizeDistSamplingMatchesQuantiles(t *testing.T) {
	d := NewSizeDist(WebSearchCDF)
	rng := rand.New(rand.NewSource(1))
	small := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if d.Sample(rng) <= 100_000 {
			small++
		}
	}
	frac := float64(small) / n
	// CDF says ~55% of flows are <= 100 KB.
	if frac < 0.45 || frac < 0.3 || frac > 0.7 {
		t.Fatalf("fraction <=100KB = %v", frac)
	}
}

func TestSizeDistMonotone(t *testing.T) {
	d := NewSizeDist(WebSearchCDF)
	last := uint64(0)
	for q := 0.01; q < 1.0; q += 0.01 {
		s := d.Quantile(q)
		if s < last {
			t.Fatalf("quantile not monotone at %v", q)
		}
		last = s
	}
}

func TestPoissonArrivalRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// load 0.5 of 10G with 1MB mean flows -> ~625 flows/s -> 1.6ms gaps.
	pa := NewPoissonArrivals(rng, 0.5, 10_000_000_000, 1_000_000)
	var total int64
	const n = 50000
	for i := 0; i < n; i++ {
		total += pa.NextGap()
	}
	meanGap := float64(total) / n
	want := 1.6e6 // ns
	if meanGap < want*0.9 || meanGap > want*1.1 {
		t.Fatalf("mean gap = %v ns, want ~%v", meanGap, want)
	}
}

func TestRateLimitedFlows(t *testing.T) {
	r := NewRateLimitedFlows(2000, 2_400_000_000, 1500)
	if r.PerFlowBps != 1_200_000 {
		t.Fatalf("per-flow = %d", r.PerFlowBps)
	}
	// 1500B at 1.2 Mbps = 10ms between packets.
	if g := r.PacketGapNs(); g < 9_000_000 || g > 11_000_000 {
		t.Fatalf("gap = %d ns", g)
	}
}

func TestRankGenDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const rangeSize = 10000
	for _, dist := range []RankDist{RankUniform, RankSkewed, RankBursty} {
		g := NewRankGen(dist, rangeSize, rng)
		lowQuarter := 0
		const n = 20000
		for i := 0; i < n; i++ {
			r := g.Next()
			if r >= rangeSize {
				t.Fatalf("rank %d out of range", r)
			}
			if r < rangeSize/4 {
				lowQuarter++
			}
		}
		frac := float64(lowQuarter) / n
		switch dist {
		case RankUniform:
			if frac < 0.2 || frac > 0.3 {
				t.Fatalf("uniform low-quarter frac = %v", frac)
			}
		case RankSkewed:
			if frac < 0.6 {
				t.Fatalf("skewed low-quarter frac = %v, want >0.6", frac)
			}
		}
	}
}

func TestDataMiningDistShape(t *testing.T) {
	d := NewSizeDist(DataMiningCDF)
	// Median ~1KB, extreme tail: mean orders of magnitude above median.
	med := d.Quantile(0.5)
	if med > 5_000 {
		t.Fatalf("median = %d, want ~1KB", med)
	}
	if d.Mean() < float64(med)*100 {
		t.Fatalf("mean %v vs median %d: tail not heavy enough", d.Mean(), med)
	}
	if d.Quantile(0.99) < 50_000_000 {
		t.Fatalf("Q99 = %d, want >=50MB", d.Quantile(0.99))
	}
}
