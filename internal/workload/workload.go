// Package workload generates the traffic the paper's experiments run on:
// the web-search flow-size distribution (from the DCTCP measurement study,
// used by pFabric and by Figure 19), Poisson flow arrivals at a target
// load, the neper-style many-flow rate-limited TCP load of the kernel
// shaping experiment (Figure 9), and synthetic rank distributions for the
// microbenchmarks (Figures 16-18).
package workload

import (
	"math"
	"math/rand"
)

// WebSearchCDF approximates the DCTCP paper's web-search flow-size
// distribution: heavy-tailed, with ~50% of flows under 100 KB while the
// bulk of bytes comes from multi-megabyte flows. Sizes are in bytes. The
// exact measurement points are not public; this piecewise log-linear
// approximation preserves the published shape (median ~70 KB, mean ~1.6 MB,
// ~95th percentile ~10 MB) — DESIGN.md records the substitution.
var WebSearchCDF = []SizePoint{
	{1_000, 0.00},
	{5_000, 0.10},
	{10_000, 0.18},
	{30_000, 0.35},
	{70_000, 0.50},
	{150_000, 0.62},
	{400_000, 0.73},
	{1_000_000, 0.82},
	{3_000_000, 0.90},
	{10_000_000, 0.95},
	{30_000_000, 1.00},
}

// DataMiningCDF approximates the data-mining flow-size distribution of the
// same measurement studies (used alongside web-search by pFabric): even
// heavier-tailed — most flows are a few KB while almost all bytes come
// from 100 MB-scale flows.
var DataMiningCDF = []SizePoint{
	{300, 0.00},
	{1_000, 0.50},
	{2_000, 0.63},
	{10_000, 0.78},
	{100_000, 0.85},
	{1_000_000, 0.91},
	{10_000_000, 0.95},
	{100_000_000, 0.98},
	{1_000_000_000, 1.00},
}

// SizePoint is one point of a flow-size CDF.
type SizePoint struct {
	Bytes uint64
	P     float64
}

// SizeDist samples flow sizes from a piecewise log-linear CDF.
type SizeDist struct {
	points []SizePoint
	mean   float64
}

// NewSizeDist builds a sampler from CDF points (monotone in both fields,
// ending at P=1).
func NewSizeDist(points []SizePoint) *SizeDist {
	if len(points) < 2 || points[len(points)-1].P != 1 {
		panic("workload: size CDF must have >=2 points and end at P=1")
	}
	d := &SizeDist{points: points}
	// Numerical mean via fine quantile integration.
	const steps = 10000
	sum := 0.0
	for i := 0; i < steps; i++ {
		q := (float64(i) + 0.5) / steps
		sum += float64(d.Quantile(q))
	}
	d.mean = sum / steps
	return d
}

// Mean returns the distribution mean in bytes.
func (d *SizeDist) Mean() float64 { return d.mean }

// Quantile inverts the CDF with log-linear interpolation.
func (d *SizeDist) Quantile(q float64) uint64 {
	pts := d.points
	if q <= pts[0].P {
		return pts[0].Bytes
	}
	for i := 1; i < len(pts); i++ {
		if q <= pts[i].P {
			lo, hi := pts[i-1], pts[i]
			frac := (q - lo.P) / (hi.P - lo.P)
			logSize := math.Log(float64(lo.Bytes)) + frac*(math.Log(float64(hi.Bytes))-math.Log(float64(lo.Bytes)))
			return uint64(math.Exp(logSize))
		}
	}
	return pts[len(pts)-1].Bytes
}

// Sample draws a flow size.
func (d *SizeDist) Sample(rng *rand.Rand) uint64 { return d.Quantile(rng.Float64()) }

// PoissonArrivals generates exponential inter-arrival gaps for a target
// load: load fraction rho of linkBps, with flows of meanFlowBytes.
type PoissonArrivals struct {
	rng    *rand.Rand
	meanNs float64
}

// NewPoissonArrivals returns an arrival process whose average offered load
// is rho*linkBps given the flow-size mean.
func NewPoissonArrivals(rng *rand.Rand, rho float64, linkBps uint64, meanFlowBytes float64) *PoissonArrivals {
	if rho <= 0 || linkBps == 0 || meanFlowBytes <= 0 {
		panic("workload: invalid Poisson arrival parameters")
	}
	flowsPerSec := rho * float64(linkBps) / 8 / meanFlowBytes
	return &PoissonArrivals{rng: rng, meanNs: 1e9 / flowsPerSec}
}

// NextGap returns the ns until the next flow arrival.
func (p *PoissonArrivals) NextGap() int64 {
	g := p.rng.ExpFloat64() * p.meanNs
	if g < 1 {
		g = 1
	}
	return int64(g)
}

// RateLimitedFlows models the neper workload of the kernel shaping use
// case (§5.1.1): many TCP flows each capped with SO_MAX_PACING_RATE so the
// aggregate hits a target. Each flow keeps a TSQ-style cap on in-flight
// packets, which is what bounds queue occupancy in the kernel experiment.
type RateLimitedFlows struct {
	// PerFlowBps is the pacing rate of each flow.
	PerFlowBps uint64
	// Flows is the number of concurrent flows.
	Flows int
	// PacketSize is the MTU-sized segment length.
	PacketSize uint32
	// TSQLimit caps in-flight packets per flow (TCP Small Queues).
	TSQLimit int
}

// NewRateLimitedFlows splits aggregateBps across n flows.
func NewRateLimitedFlows(n int, aggregateBps uint64, packetSize uint32) *RateLimitedFlows {
	if n <= 0 {
		panic("workload: need at least one flow")
	}
	return &RateLimitedFlows{
		PerFlowBps: aggregateBps / uint64(n),
		Flows:      n,
		PacketSize: packetSize,
		TSQLimit:   2, // kernel TSQ default: ~2 segments in the qdisc
	}
}

// PacketGapNs returns the pacing gap between two packets of one flow.
func (r *RateLimitedFlows) PacketGapNs() int64 {
	return int64(uint64(r.PacketSize) * 8 * 1e9 / r.PerFlowBps)
}

// ChurnGen drives the flow-churn experiments: an open world of short-
// lived flows, the regime the paper indicts kernel FQ's flow garbage
// collection for (§5.1, past ~40k flows). A window of live flow slots is
// concurrently active; each packet draw picks a slot by Zipf popularity
// (a few hot slots, a long tail — datacenter fan-out), and a flow expires
// once its drawn packet budget is spent, its slot re-seeded with a fresh,
// never-reused id. Globally unique ids keep per-flow order checks valid
// across expiry, and the cumulative-flow counter is the experiment's
// x-axis.
type ChurnGen struct {
	rng     *rand.Rand
	zipf    *rand.Zipf
	slots   []churnSlot
	base    uint64
	nextID  uint64
	cum     uint64
	maxPkts int
}

// churnSlot is one live flow: its id, its remaining packet budget, and
// the per-flow sequence stamp of its next packet.
type churnSlot struct {
	id   uint64
	left int
	seq  uint32
}

// NewChurnGen returns a churn generator with live concurrent flow slots.
// Each flow's packet budget is uniform in [1, maxPkts]; slot popularity is
// Zipf with skew s (must be > 1; ~1.2 is a typical fan-out skew). idBase
// tags this generator's id space so several generators (one per producer
// stream) never collide: ids are idBase<<40 | counter.
func NewChurnGen(rng *rand.Rand, live, maxPkts int, s float64, idBase uint64) *ChurnGen {
	if live <= 0 || maxPkts <= 0 {
		panic("workload: churn needs live flow slots and a packet budget")
	}
	g := &ChurnGen{
		rng:     rng,
		zipf:    rand.NewZipf(rng, s, 1, uint64(live-1)),
		slots:   make([]churnSlot, live),
		base:    idBase << 40,
		maxPkts: maxPkts,
	}
	for i := range g.slots {
		g.reseed(&g.slots[i])
	}
	return g
}

// Next draws one packet: the flow it belongs to, its 0-based position in
// that flow, and the flow's remaining packet budget after it (0 = this
// packet expires the flow; the slot has already been re-seeded on return).
func (g *ChurnGen) Next() (flow uint64, seq uint32, remaining int) {
	sl := &g.slots[g.zipf.Uint64()]
	flow, seq = sl.id, sl.seq
	sl.seq++
	sl.left--
	remaining = sl.left
	if remaining == 0 {
		g.reseed(sl)
	}
	return flow, seq, remaining
}

func (g *ChurnGen) reseed(sl *churnSlot) {
	g.cum++
	g.nextID++
	*sl = churnSlot{id: g.base | g.nextID, left: 1 + g.rng.Intn(g.maxPkts)}
}

// CumulativeFlows returns how many flows were ever started (live slots
// included).
func (g *ChurnGen) CumulativeFlows() uint64 { return g.cum }

// LiveFlows returns the concurrent flow-window size.
func (g *ChurnGen) LiveFlows() int { return len(g.slots) }

// RankDist names a synthetic rank distribution for queue microbenchmarks.
type RankDist int

// Rank distributions.
const (
	// RankUniform spreads ranks uniformly over the bucket range — the
	// paper's "all priority levels equally likely" case where the
	// approximate queue shines.
	RankUniform RankDist = iota
	// RankSkewed concentrates most ranks in the lower quarter of the
	// range (strict-priority-like occupancy).
	RankSkewed
	// RankBursty clusters ranks around a slowly advancing front
	// (timestamp-like occupancy).
	RankBursty
)

// RankGen draws ranks in [0, rangeSize) under the given distribution.
type RankGen struct {
	Dist  RankDist
	Range uint64
	rng   *rand.Rand
	front uint64
}

// NewRankGen returns a rank generator.
func NewRankGen(dist RankDist, rangeSize uint64, rng *rand.Rand) *RankGen {
	if rangeSize == 0 {
		panic("workload: rank range must be positive")
	}
	return &RankGen{Dist: dist, Range: rangeSize, rng: rng}
}

// Next draws one rank.
func (g *RankGen) Next() uint64 {
	switch g.Dist {
	case RankSkewed:
		// ~75% of ranks in the bottom quarter.
		if g.rng.Float64() < 0.75 {
			return uint64(g.rng.Int63n(int64(g.Range/4 + 1)))
		}
		return uint64(g.rng.Int63n(int64(g.Range)))
	case RankBursty:
		g.front = (g.front + 1 + uint64(g.rng.Int63n(3))) % g.Range
		span := g.Range / 16
		if span == 0 {
			span = 1
		}
		return (g.front + uint64(g.rng.Int63n(int64(span)))) % g.Range
	default:
		return uint64(g.rng.Int63n(int64(g.Range)))
	}
}
