// Package fault is the chaos-injection harness for the egress path: a
// deterministic, seed-driven sink that misbehaves on a schedule —
// transient errors, partial accepts, stalls, slowdowns, and panics —
// while keeping an exact ledger of every packet it accepted, so the
// chaos experiment can assert zero lost and zero duplicated packets no
// matter which faults fired.
//
// The package deliberately imports only pkt (and stdlib): it satisfies
// qdisc.FallibleSink structurally, so qdisc's own tests can use it
// without an import cycle.
package fault

import (
	"errors"
	"time"

	"eiffel/internal/pkt"
)

// ErrTransient is the error a faulting TryTx returns: the refusal is
// retryable by contract.
var ErrTransient = errors.New("fault: transient tx error")

// Profile is one fault schedule. Rates are per-TryTx-call probabilities
// in [0, 1], drawn from a deterministic splitmix64 stream seeded by
// Seed: the same profile over the same call sequence misbehaves
// identically. At most one fault fires per call, checked in the order
// panic, stall, error, partial, slow.
type Profile struct {
	// Name labels the profile in tables.
	Name string
	// Seed drives the fault schedule (same seed, same schedule).
	Seed uint64
	// PanicRate is the probability a call panics BEFORE accepting
	// anything — the recoverable worst case (no packet is in limbo, so
	// supervision can re-offer the whole batch).
	PanicRate float64
	// StallRate is the probability a call sleeps StallFor before
	// accepting — the wedged-TX-queue case the watchdog exists for.
	StallRate float64
	// ErrRate is the probability a call accepts nothing and returns
	// ErrTransient.
	ErrRate float64
	// PartialRate is the probability a call accepts a strict non-zero
	// prefix (a uniform 1..len-1 cut) of the batch.
	PartialRate float64
	// SlowRate is the probability a call sleeps SlowFor and then accepts
	// everything — degraded but not refusing.
	SlowRate float64
	// StallFor and SlowFor size the two sleeps.
	StallFor time.Duration
	SlowFor  time.Duration
}

// Counts reports how often each fault fired.
type Counts struct {
	Calls    uint64
	Panics   uint64
	Stalls   uint64
	Errors   uint64
	Partials uint64
	Slows    uint64
}

// Sink is the fault-injecting egress sink. It implements TryTx (and so
// satisfies qdisc.FallibleSink); like every sink it is driven by one
// worker goroutine at a time, and its ledger is read after the workers
// are joined.
type Sink struct {
	prof Profile
	rng  uint64

	seen   map[uint64]uint32 // packet ID → accept count
	acc    uint64            // total accepts (sum of seen)
	dups   uint64            // accepts beyond the first per ID
	counts Counts
}

// NewSink returns a sink misbehaving per prof.
func NewSink(prof Profile) *Sink {
	return &Sink{prof: prof, rng: prof.Seed, seen: make(map[uint64]uint32)}
}

// next is splitmix64: deterministic, seed-driven, stdlib-free.
func (s *Sink) next() uint64 {
	s.rng += 0x9E3779B97F4A7C15
	z := s.rng
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// chance draws one uniform [0,1) variate against p.
func (s *Sink) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(s.next()>>11)/(1<<53) < p
}

// accept records n accepted packets in the ledger.
func (s *Sink) accept(ps []*pkt.Packet) {
	for _, p := range ps {
		s.seen[p.ID]++
		if s.seen[p.ID] > 1 {
			s.dups++
		}
	}
	s.acc += uint64(len(ps))
}

// TryTx implements the fallible egress contract, injecting at most one
// fault per call on the profile's schedule. A panicking call accepts
// nothing first, so a supervised worker that recovers re-offers the
// exact batch and the ledger never sees a limbo packet.
func (s *Sink) TryTx(ps []*pkt.Packet) (int, error) {
	s.counts.Calls++
	if s.chance(s.prof.PanicRate) {
		s.counts.Panics++
		panic("fault: injected sink panic")
	}
	if s.chance(s.prof.StallRate) {
		s.counts.Stalls++
		time.Sleep(s.prof.StallFor)
		s.accept(ps)
		return len(ps), nil
	}
	if s.chance(s.prof.ErrRate) {
		s.counts.Errors++
		return 0, ErrTransient
	}
	if len(ps) > 1 && s.chance(s.prof.PartialRate) {
		s.counts.Partials++
		n := 1 + int(s.next()%uint64(len(ps)-1)) // strict non-zero prefix
		s.accept(ps[:n])
		return n, nil
	}
	if s.chance(s.prof.SlowRate) {
		s.counts.Slows++
		time.Sleep(s.prof.SlowFor)
	}
	s.accept(ps)
	return len(ps), nil
}

// Tx is the infallible surface: accept everything (no faults) — present
// so a Sink can also stand in where a plain EgressSink is expected.
func (s *Sink) Tx(ps []*pkt.Packet) { s.accept(ps) }

// Accepted returns how many packets the sink accepted in total
// (duplicates included).
func (s *Sink) Accepted() uint64 { return s.acc }

// Unique returns how many distinct packet IDs the sink accepted.
func (s *Sink) Unique() uint64 { return uint64(len(s.seen)) }

// Dups returns how many accepts were duplicates (same packet ID accepted
// more than once) — must be zero under exactly-once egress.
func (s *Sink) Dups() uint64 { return s.dups }

// Counts returns the fault-fire tallies.
func (s *Sink) Counts() Counts { return s.counts }

// SawID reports whether the sink ever accepted packet id.
func (s *Sink) SawID(id uint64) bool { return s.seen[id] > 0 }
