package fault

import (
	"testing"

	"eiffel/internal/pkt"
)

func batch(pool *pkt.Pool, n int) []*pkt.Packet {
	ps := make([]*pkt.Packet, n)
	for i := range ps {
		ps[i] = pool.Get()
	}
	return ps
}

// TestSinkDeterministic pins the seed contract: two sinks with the same
// profile fed the same call sequence misbehave identically.
func TestSinkDeterministic(t *testing.T) {
	prof := Profile{Name: "t", Seed: 42, ErrRate: 0.3, PartialRate: 0.3}
	a, b := NewSink(prof), NewSink(prof)
	pool := pkt.NewPool(64)
	ps := batch(pool, 8)
	for i := 0; i < 200; i++ {
		an, aerr := a.TryTx(ps)
		bn, berr := b.TryTx(ps)
		if an != bn || (aerr == nil) != (berr == nil) {
			t.Fatalf("call %d diverged: (%d,%v) vs (%d,%v)", i, an, aerr, bn, berr)
		}
	}
	if a.Counts() != b.Counts() {
		t.Fatalf("fault tallies diverged: %+v vs %+v", a.Counts(), b.Counts())
	}
	if a.Counts().Errors == 0 || a.Counts().Partials == 0 {
		t.Fatalf("profile never fired: %+v", a.Counts())
	}
}

// TestSinkLedger covers the exactly-once bookkeeping: unique vs
// duplicate accepts, and the prefix contract of partial accepts.
func TestSinkLedger(t *testing.T) {
	s := NewSink(Profile{Name: "clean"})
	pool := pkt.NewPool(8)
	ps := batch(pool, 4)
	if n, err := s.TryTx(ps); n != 4 || err != nil {
		t.Fatalf("clean TryTx = (%d, %v), want full accept", n, err)
	}
	if s.Accepted() != 4 || s.Unique() != 4 || s.Dups() != 0 {
		t.Fatalf("ledger %d/%d/%d after one accept, want 4/4/0", s.Accepted(), s.Unique(), s.Dups())
	}
	if !s.SawID(ps[0].ID) {
		t.Fatal("SawID false for an accepted packet")
	}
	s.Tx(ps[:2]) // re-offer: the ledger must count the duplicates
	if s.Accepted() != 6 || s.Unique() != 4 || s.Dups() != 2 {
		t.Fatalf("ledger %d/%d/%d after re-offer, want 6/4/2", s.Accepted(), s.Unique(), s.Dups())
	}
}

// TestSinkPartialIsStrictPrefix: a partial accept takes a non-empty,
// non-total prefix, so retry progress is always possible.
func TestSinkPartialIsStrictPrefix(t *testing.T) {
	s := NewSink(Profile{Name: "p", Seed: 7, PartialRate: 1})
	pool := pkt.NewPool(64)
	for i := 0; i < 100; i++ {
		ps := batch(pool, 6)
		n, err := s.TryTx(ps)
		if err != nil {
			t.Fatalf("partial profile returned error %v", err)
		}
		if n < 1 || n >= len(ps) {
			t.Fatalf("partial accept n=%d of %d, want a strict non-zero prefix", n, len(ps))
		}
	}
	if s.Counts().Partials != 100 {
		t.Fatalf("partials = %d, want every call", s.Counts().Partials)
	}
}
