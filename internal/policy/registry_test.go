package policy_test

import (
	"strings"
	"testing"

	"eiffel/internal/policy"
)

// TestRegistryCaseInsensitive is the regression test for the lookup fix:
// transaction names resolve regardless of case, so a policy file written
// "PFabric" or "WFQ" compiles instead of failing on an exact-match miss.
func TestRegistryCaseInsensitive(t *testing.T) {
	reg := policy.Registry{}
	for _, name := range []string{"pfabric", "PFabric", "PFABRIC", "Lqf", "SQF", "fifo", "FIFO"} {
		p, err := reg.FlowPolicy(name)
		if err != nil || p == nil {
			t.Fatalf("FlowPolicy(%q) = (%v, %v), want a policy", name, p, err)
		}
	}
	for _, name := range []string{"wfq", "WFQ", "Strict", "RR"} {
		r, err := reg.ChildRanker(name)
		if err != nil || r == nil {
			t.Fatalf("ChildRanker(%q) = (%v, %v), want a ranker", name, r, err)
		}
	}
	for _, name := range []string{"edf", "EDF", "LSTF", "Rank", "strict"} {
		r, err := reg.PacketRanker(name)
		if err != nil || r == nil {
			t.Fatalf("PacketRanker(%q) = (%v, %v), want a ranker", name, r, err)
		}
	}
}

// TestRegistryUnknownNamesListed asserts a miss returns a non-nil error
// (never a silent nil ranker) that names both the failed lookup and every
// known transaction of that kind.
func TestRegistryUnknownNamesListed(t *testing.T) {
	reg := policy.Registry{}

	r1, err := reg.ChildRanker("nope")
	if r1 != nil || err == nil {
		t.Fatalf("ChildRanker miss = (%v, %v), want (nil, error)", r1, err)
	}
	for _, want := range []string{`"nope"`, "wfq", "strict", "rr"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("child ranker error %q does not mention %s", err, want)
		}
	}

	r2, err := reg.PacketRanker("nope")
	if r2 != nil || err == nil {
		t.Fatalf("PacketRanker miss = (%v, %v), want (nil, error)", r2, err)
	}
	for _, want := range []string{`"nope"`, "fifo", "edf", "strict", "lstf", "rank"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("packet ranker error %q does not mention %s", err, want)
		}
	}

	r3, err := reg.FlowPolicy("nope")
	if r3 != nil || err == nil {
		t.Fatalf("FlowPolicy miss = (%v, %v), want (nil, error)", r3, err)
	}
	for _, want := range []string{`"nope"`, "fifo", "pfabric", "lqf", "sqf"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("flow policy error %q does not mention %s", err, want)
		}
	}
}

// TestRegistryKnownListsResolve keeps the advertised menus honest: every
// name an error would list must actually resolve.
func TestRegistryKnownListsResolve(t *testing.T) {
	reg := policy.Registry{}
	for _, name := range []string{"wfq", "strict", "rr"} {
		if _, err := reg.ChildRanker(name); err != nil {
			t.Fatalf("listed child ranker %q does not resolve: %v", name, err)
		}
	}
	for _, name := range []string{"fifo", "edf", "strict", "lstf", "rank"} {
		if _, err := reg.PacketRanker(name); err != nil {
			t.Fatalf("listed packet ranker %q does not resolve: %v", name, err)
		}
	}
	for _, name := range []string{"fifo", "pfabric", "lqf", "sqf"} {
		if _, err := reg.FlowPolicy(name); err != nil {
			t.Fatalf("listed flow policy %q does not resolve: %v", name, err)
		}
	}
}
