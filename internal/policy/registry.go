package policy

import (
	"fmt"

	"eiffel/internal/pifo"
)

// Registry resolves the paper's transaction names for the policy compiler
// (pifo.Compile). Fresh stateful rankers (FIFO, RR) are created per call
// so compiled trees never share counters.
type Registry struct{}

// ChildRanker implements pifo.CompileRegistry.
func (Registry) ChildRanker(name string) (pifo.ChildRanker, error) {
	switch name {
	case "", "wfq":
		return WFQ{}, nil
	case "strict":
		return StrictChild{}, nil
	case "rr":
		return &RRChild{}, nil
	default:
		return nil, fmt.Errorf("unknown child ranker %q", name)
	}
}

// PacketRanker implements pifo.CompileRegistry.
func (Registry) PacketRanker(name string) (pifo.PacketRanker, error) {
	switch name {
	case "", "fifo":
		return &FIFO{}, nil
	case "edf":
		return EDF{}, nil
	case "strict":
		return StrictPacket{}, nil
	case "lstf":
		return LSTF{}, nil
	case "rank":
		return RankAnnotation{}, nil
	default:
		return nil, fmt.Errorf("unknown packet ranker %q", name)
	}
}

// FlowPolicy implements pifo.CompileRegistry.
func (Registry) FlowPolicy(name string) (pifo.FlowPolicy, error) {
	switch name {
	case "", "fifo":
		return &FlowFIFO{}, nil
	case "pfabric":
		return PFabric{}, nil
	case "lqf":
		return LQF{}, nil
	case "sqf":
		return SQF{}, nil
	default:
		return nil, fmt.Errorf("unknown flow policy %q", name)
	}
}
