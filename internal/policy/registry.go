package policy

import (
	"fmt"
	"strings"

	"eiffel/internal/pifo"
)

// Registry resolves the paper's transaction names for the policy compiler
// (pifo.Compile). Lookups are case-insensitive, and a miss returns a
// descriptive error naming every known transaction — a policy file with a
// typo fails at compile time with the menu in hand, never with a nil
// ranker. Fresh stateful rankers (FIFO, RR) are created per call so
// compiled trees never share counters.
type Registry struct{}

// Known transaction names, one list per kind, in the order errors print
// them. Keep in sync with the switches below (registry_test.go asserts
// every listed name resolves).
var (
	knownChildRankers  = []string{"wfq", "strict", "rr"}
	knownPacketRankers = []string{"fifo", "edf", "strict", "lstf", "rank"}
	knownFlowPolicies  = []string{"fifo", "pfabric", "lqf", "sqf"}
)

func unknown(kind, name string, known []string) error {
	return fmt.Errorf("unknown %s %q (known: %s)", kind, name, strings.Join(known, ", "))
}

// ChildRanker implements pifo.CompileRegistry.
func (Registry) ChildRanker(name string) (pifo.ChildRanker, error) {
	switch strings.ToLower(name) {
	case "", "wfq":
		return WFQ{}, nil
	case "strict":
		return StrictChild{}, nil
	case "rr":
		return &RRChild{}, nil
	default:
		return nil, unknown("child ranker", name, knownChildRankers)
	}
}

// PacketRanker implements pifo.CompileRegistry.
func (Registry) PacketRanker(name string) (pifo.PacketRanker, error) {
	switch strings.ToLower(name) {
	case "", "fifo":
		return &FIFO{}, nil
	case "edf":
		return EDF{}, nil
	case "strict":
		return StrictPacket{}, nil
	case "lstf":
		return LSTF{}, nil
	case "rank":
		return RankAnnotation{}, nil
	default:
		return nil, unknown("packet ranker", name, knownPacketRankers)
	}
}

// FlowPolicy implements pifo.CompileRegistry.
func (Registry) FlowPolicy(name string) (pifo.FlowPolicy, error) {
	switch strings.ToLower(name) {
	case "", "fifo":
		return &FlowFIFO{}, nil
	case "pfabric":
		return PFabric{}, nil
	case "lqf":
		return LQF{}, nil
	case "sqf":
		return SQF{}, nil
	default:
		return nil, unknown("flow policy", name, knownFlowPolicies)
	}
}
