// Package policy provides concrete scheduling transactions for the
// extended PIFO model: child rankers for internal classes (weighted fair
// queueing, strict priority, round robin), packet rankers for leaves (EDF,
// strict priority, FIFO, least slack time), and the paper's flow policies —
// Longest Queue First (Figure 6) and pFabric/shortest-remaining-first
// (Figure 14) — built on the per-flow ranking and on-dequeue ranking
// primitives.
package policy

import (
	"eiffel/internal/pifo"
	"eiffel/internal/pkt"
)

// --- Child rankers (internal classes) ---

// WFQ ranks children by start-time fair queueing virtual times: a child
// (re)activates at the parent's current virtual time and advances by
// size/weight per dequeued packet, yielding weighted max-min shares. The
// scale constant keeps ranks integral at single-byte resolution for weights
// up to Scale.
type WFQ struct {
	// Scale is the rank units charged per byte at weight Scale (default
	// 1024). Larger values support finer weight ratios.
	Scale uint64
	// LagBytes bounds how far a rate-limited class may trail the parent's
	// virtual time while parked in the shaper (default 1 MiB). A small
	// bound keeps shaped classes entitled to their weighted share on
	// release without banking unlimited credit.
	LagBytes uint64
}

func (w WFQ) scale() uint64 {
	if w.Scale == 0 {
		return 1024
	}
	return w.Scale
}

// Rank implements pifo.ChildRanker.
func (w WFQ) Rank(c *pifo.Class, p *pkt.Packet, _ int64) uint64 {
	scale := w.scale()
	if p == nil {
		v := c.Parent().VTime()
		if c.Resuming() {
			// Returning from a shaper park: keep the virtual-time
			// position (bounded lag) so shaping does not erase the
			// weighted share.
			lagBytes := w.LagBytes
			if lagBytes == 0 {
				lagBytes = 1 << 20
			}
			if lag := lagBytes * scale / c.Weight; v > lag && c.Finish() < v-lag {
				c.SetFinish(v - lag)
			}
			return c.Finish()
		}
		// Fresh demand: join at the parent's virtual time, never behind
		// it (no banked credit), never ahead of accumulated usage.
		if v > c.Finish() {
			c.SetFinish(v)
		}
		return c.Finish()
	}
	c.SetFinish(c.Finish() + uint64(p.Size)*scale/c.Weight)
	return c.Finish()
}

// StrictChild ranks children by their static Priority field (lower wins).
type StrictChild struct{}

// Rank implements pifo.ChildRanker.
func (StrictChild) Rank(c *pifo.Class, _ *pkt.Packet, _ int64) uint64 { return c.Priority }

// RRChild ranks children round-robin: each (re)insertion goes behind every
// currently queued sibling.
type RRChild struct {
	turn uint64
}

// Rank implements pifo.ChildRanker.
func (r *RRChild) Rank(*pifo.Class, *pkt.Packet, int64) uint64 {
	r.turn++
	return r.turn
}

// --- Packet rankers (packet leaves) ---

// EDF ranks packets by absolute deadline: Earliest Deadline First.
type EDF struct{}

// Rank implements pifo.PacketRanker.
func (EDF) Rank(p *pkt.Packet, _ int64) uint64 { return uint64(p.Deadline) }

// StrictPacket ranks packets by their Class annotation (lower wins) — the
// eight-level IEEE 802.1Q style strict priority queue.
type StrictPacket struct{}

// Rank implements pifo.PacketRanker.
func (StrictPacket) Rank(p *pkt.Packet, _ int64) uint64 { return uint64(p.Class) }

// FIFO ranks packets by arrival sequence.
type FIFO struct {
	seq uint64
}

// Rank implements pifo.PacketRanker.
func (f *FIFO) Rank(*pkt.Packet, int64) uint64 {
	f.seq++
	return f.seq
}

// LSTF ranks packets by slack: deadline minus now minus remaining
// transmission time (Least Slack Time First, the universal packet scheduler
// of Mittal et al. that §5.1.3 cites). Remaining transmission time is
// approximated by size at LinkBps.
type LSTF struct {
	// LinkBps estimates transmission time (default 10 Gb/s).
	LinkBps uint64
}

// Rank implements pifo.PacketRanker.
func (l LSTF) Rank(p *pkt.Packet, now int64) uint64 {
	link := l.LinkBps
	if link == 0 {
		link = 10e9
	}
	tx := int64(uint64(p.Size) * 8 * 1e9 / link)
	slack := p.Deadline - now - tx
	if slack < 0 {
		return 0
	}
	return uint64(slack)
}

// RankAnnotation ranks packets by their precomputed Rank field.
type RankAnnotation struct{}

// Rank implements pifo.PacketRanker.
func (RankAnnotation) Rank(p *pkt.Packet, _ int64) uint64 { return p.Rank }

// --- Flow policies (per-flow ranking + on-dequeue ranking) ---

// LQF is Longest Queue First, the paper's motivating example for the two
// new primitives (Figure 6):
//
//	on enqueue of packet p of flow f: f.rank = f.len
//	on dequeue of packet p of flow f: f.rank = f.len
//
// The flow with the most queued packets is served first; both enqueue and
// dequeue change the rank of every queued packet of the flow at once.
// Ranks are MaxLen-len so the max-length policy maps onto min-queues with a
// bounded rank range (bucket-friendly).
type LQF struct {
	// MaxLen bounds the queue length the rank range resolves (default
	// 1<<20 packets); longer flows tie at rank 0.
	MaxLen uint64
}

func (l LQF) maxLen() uint64 {
	if l.MaxLen == 0 {
		return 1 << 20
	}
	return l.MaxLen
}

func (l LQF) rank(f *pifo.Flow) uint64 {
	if n := uint64(f.Len()); n < l.maxLen() {
		return l.maxLen() - n
	}
	return 0
}

// OnEnqueue implements pifo.FlowPolicy.
func (l LQF) OnEnqueue(f *pifo.Flow, _ *pkt.Packet, _ int64) uint64 { return l.rank(f) }

// OnDequeue implements pifo.FlowPolicy.
func (l LQF) OnDequeue(f *pifo.Flow, _ *pkt.Packet, _ int64) uint64 { return l.rank(f) }

// OnEnqueueRank implements pifo.RankFlowPolicy (LQF reads only f.Len).
func (l LQF) OnEnqueueRank(f *pifo.Flow, _ uint64, _ int64) uint64 { return l.rank(f) }

// OnDequeueRank implements pifo.RankFlowPolicy.
func (l LQF) OnDequeueRank(f *pifo.Flow, _, _ uint64, _ int64) uint64 { return l.rank(f) }

// SQF is Shortest Queue First (the dual of LQF), useful in tests.
type SQF struct{}

// OnEnqueue implements pifo.FlowPolicy.
func (SQF) OnEnqueue(f *pifo.Flow, _ *pkt.Packet, _ int64) uint64 { return uint64(f.Len()) }

// OnDequeue implements pifo.FlowPolicy.
func (SQF) OnDequeue(f *pifo.Flow, _ *pkt.Packet, _ int64) uint64 { return uint64(f.Len()) }

// OnEnqueueRank implements pifo.RankFlowPolicy.
func (SQF) OnEnqueueRank(f *pifo.Flow, _ uint64, _ int64) uint64 { return uint64(f.Len()) }

// OnDequeueRank implements pifo.RankFlowPolicy.
func (SQF) OnDequeueRank(f *pifo.Flow, _, _ uint64, _ int64) uint64 { return uint64(f.Len()) }

// PFabric implements the pFabric host/switch queue discipline exactly as
// Figure 14 expresses it in the extended PIFO model:
//
//	on enqueue of packet p of flow f: f.rank = min(p.rank, f.rank)
//	on dequeue of packet p of flow f: f.rank = min(p.rank, f.front().rank)
//
// Packet ranks carry the flow's remaining size (set by the sender), so the
// flow with the shortest remaining processing time is served first while
// packets within a flow stay in order.
type PFabric struct{}

// OnEnqueue implements pifo.FlowPolicy.
func (PFabric) OnEnqueue(f *pifo.Flow, p *pkt.Packet, _ int64) uint64 {
	if f.Len() == 1 {
		// First packet of a (re)started flow: previous rank is stale.
		f.Rank = p.Rank
		return f.Rank
	}
	if p.Rank < f.Rank {
		f.Rank = p.Rank
	}
	return f.Rank
}

// OnDequeue implements pifo.FlowPolicy.
func (PFabric) OnDequeue(f *pifo.Flow, p *pkt.Packet, _ int64) uint64 {
	if front := f.Front(); front != nil {
		r := p.Rank
		if front.Rank < r {
			r = front.Rank
		}
		f.Rank = r
	}
	return f.Rank
}

// OnEnqueueRank implements pifo.RankFlowPolicy — the same transaction as
// OnEnqueue with the rank annotation passed in, so the scheduler core
// never loads the packet.
func (PFabric) OnEnqueueRank(f *pifo.Flow, rank uint64, _ int64) uint64 {
	if f.Len() == 1 {
		f.Rank = rank
		return f.Rank
	}
	if rank < f.Rank {
		f.Rank = rank
	}
	return f.Rank
}

// OnDequeueRank implements pifo.RankFlowPolicy.
func (PFabric) OnDequeueRank(f *pifo.Flow, rank, frontRank uint64, _ int64) uint64 {
	if f.Len() > 0 {
		r := rank
		if frontRank < r {
			r = frontRank
		}
		f.Rank = r
	}
	return f.Rank
}

// FlowFIFO serves flows in order of first arrival (per-flow FIFO batching).
type FlowFIFO struct {
	seq uint64
}

// OnEnqueue implements pifo.FlowPolicy.
func (ff *FlowFIFO) OnEnqueue(f *pifo.Flow, _ *pkt.Packet, _ int64) uint64 {
	if f.Len() == 1 {
		ff.seq++
		f.U0 = ff.seq
	}
	return f.U0
}

// OnDequeue implements pifo.FlowPolicy.
func (*FlowFIFO) OnDequeue(f *pifo.Flow, _ *pkt.Packet, _ int64) uint64 { return f.U0 }

// OnEnqueueRank implements pifo.RankFlowPolicy.
func (ff *FlowFIFO) OnEnqueueRank(f *pifo.Flow, _ uint64, _ int64) uint64 {
	if f.Len() == 1 {
		ff.seq++
		f.U0 = ff.seq
	}
	return f.U0
}

// OnDequeueRank implements pifo.RankFlowPolicy.
func (*FlowFIFO) OnDequeueRank(f *pifo.Flow, _, _ uint64, _ int64) uint64 { return f.U0 }
