package policy_test

import (
	"testing"

	"eiffel/internal/pifo"
	"eiffel/internal/pkt"
	"eiffel/internal/policy"
	"eiffel/internal/queue"
)

func smallQ() queue.Config { return queue.Config{NumBuckets: 1 << 12, Granularity: 1} }

func tree(root pifo.ChildRanker) *pifo.Tree {
	return pifo.NewTree(pifo.TreeOptions{RootRanker: root, RootQueue: smallQ()})
}

func drainFlows(t *pifo.Tree) []uint64 {
	var got []uint64
	for {
		p := t.Dequeue(0)
		if p == nil {
			return got
		}
		got = append(got, p.Flow)
	}
}

func mk(pool *pkt.Pool, flow uint64, size uint32) *pkt.Packet {
	p := pool.Get()
	p.Flow = flow
	p.Size = size
	return p
}

func TestEDFRankIsDeadline(t *testing.T) {
	p := &pkt.Packet{Deadline: 12345}
	if got := (policy.EDF{}).Rank(p, 0); got != 12345 {
		t.Fatalf("EDF rank = %d", got)
	}
}

func TestStrictPacketRankIsClass(t *testing.T) {
	p := &pkt.Packet{Class: 5}
	if got := (policy.StrictPacket{}).Rank(p, 0); got != 5 {
		t.Fatalf("rank = %d", got)
	}
}

func TestFIFOMonotone(t *testing.T) {
	f := &policy.FIFO{}
	last := uint64(0)
	for i := 0; i < 100; i++ {
		r := f.Rank(nil, 0)
		if r <= last {
			t.Fatal("FIFO ranks must increase")
		}
		last = r
	}
}

func TestLSTFSlack(t *testing.T) {
	l := policy.LSTF{LinkBps: 1e9}
	p := &pkt.Packet{Size: 1250, Deadline: 100_000} // tx = 10us
	// slack at now=0: 100us - 0 - 10us = 90us.
	if got := l.Rank(p, 0); got != 90_000 {
		t.Fatalf("slack = %d, want 90000", got)
	}
	// Past-deadline packets clamp at zero (most urgent).
	if got := l.Rank(p, 200_000); got != 0 {
		t.Fatalf("negative slack should clamp, got %d", got)
	}
}

func TestRankAnnotation(t *testing.T) {
	p := &pkt.Packet{Rank: 999}
	if got := (policy.RankAnnotation{}).Rank(p, 0); got != 999 {
		t.Fatalf("rank = %d", got)
	}
}

func TestStrictChildPreemption(t *testing.T) {
	tr := tree(policy.StrictChild{})
	hi := tr.NewPacketLeaf(nil, &policy.FIFO{}, pifo.ClassOptions{Name: "hi", Priority: 0, Queue: smallQ()})
	lo := tr.NewPacketLeaf(nil, &policy.FIFO{}, pifo.ClassOptions{Name: "lo", Priority: 9, Queue: smallQ()})
	pool := pkt.NewPool(16)
	tr.Enqueue(lo, mk(pool, 2, 100), 0)
	tr.Enqueue(hi, mk(pool, 1, 100), 0)
	tr.Enqueue(lo, mk(pool, 2, 100), 0)
	got := drainFlows(tr)
	if got[0] != 1 {
		t.Fatalf("order %v: high priority must come first", got)
	}
}

func TestRRChildAlternates(t *testing.T) {
	tr := tree(&policy.RRChild{})
	a := tr.NewPacketLeaf(nil, &policy.FIFO{}, pifo.ClassOptions{Name: "a", Queue: smallQ()})
	b := tr.NewPacketLeaf(nil, &policy.FIFO{}, pifo.ClassOptions{Name: "b", Queue: smallQ()})
	pool := pkt.NewPool(32)
	for i := 0; i < 4; i++ {
		tr.Enqueue(a, mk(pool, 1, 100), 0)
		tr.Enqueue(b, mk(pool, 2, 100), 0)
	}
	got := drainFlows(tr)
	// Strict alternation after the first service.
	for i := 2; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatalf("round robin broke: %v", got)
		}
	}
}

func TestSQFServesShortest(t *testing.T) {
	tr := tree(policy.WFQ{})
	leaf := tr.NewFlowLeaf(nil, policy.SQF{}, pifo.ClassOptions{Name: "sqf", Queue: smallQ()})
	pool := pkt.NewPool(32)
	for i := 0; i < 5; i++ {
		tr.Enqueue(leaf, mk(pool, 1, 100), 0)
	}
	tr.Enqueue(leaf, mk(pool, 2, 100), 0)
	got := drainFlows(tr)
	if got[0] != 2 {
		t.Fatalf("SQF should serve the shortest flow first: %v", got)
	}
}

func TestFlowFIFOOrdersByFirstArrival(t *testing.T) {
	tr := tree(policy.WFQ{})
	leaf := tr.NewFlowLeaf(nil, &policy.FlowFIFO{}, pifo.ClassOptions{Name: "ff", Queue: smallQ()})
	pool := pkt.NewPool(32)
	tr.Enqueue(leaf, mk(pool, 1, 100), 0)
	tr.Enqueue(leaf, mk(pool, 2, 100), 0)
	tr.Enqueue(leaf, mk(pool, 1, 100), 0) // more of flow 1: still behind flow 1's slot
	got := drainFlows(tr)
	want := []uint64{1, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestPFabricRankFollowsRemaining(t *testing.T) {
	tr := tree(policy.WFQ{})
	leaf := tr.NewFlowLeaf(nil, policy.PFabric{}, pifo.ClassOptions{Name: "pf", Queue: queue.Config{NumBuckets: 1 << 14, Granularity: 1}})
	pool := pkt.NewPool(32)
	// Flow 1 shrinking remaining: 5000, 4000, 3000.
	for _, r := range []uint64{5000, 4000, 3000} {
		p := mk(pool, 1, 1000)
		p.Rank = r
		tr.Enqueue(leaf, p, 0)
	}
	// Flow 2 with remaining 3500. Figure 14 on-dequeue semantics: after
	// flow 1's rank-3000 head departs, its rank becomes
	// min(p.rank=5000, front.rank=4000) = 4000 — so flow 2 (3500) takes
	// the next slot, then flow 1 drains.
	p := mk(pool, 2, 1000)
	p.Rank = 3500
	tr.Enqueue(leaf, p, 0)
	got := drainFlows(tr)
	want := []uint64{1, 2, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestLQFMaxLenClamp(t *testing.T) {
	l := policy.LQF{MaxLen: 4}
	tr := tree(policy.WFQ{})
	leaf := tr.NewFlowLeaf(nil, l, pifo.ClassOptions{Name: "lqf", Queue: smallQ()})
	pool := pkt.NewPool(32)
	for i := 0; i < 8; i++ { // longer than MaxLen: rank clamps at 0
		tr.Enqueue(leaf, mk(pool, 1, 100), 0)
	}
	tr.Enqueue(leaf, mk(pool, 2, 100), 0)
	got := drainFlows(tr)
	if got[0] != 1 {
		t.Fatalf("longest flow must still win: %v", got)
	}
	if len(got) != 9 {
		t.Fatalf("drained %d packets", len(got))
	}
}

func TestWFQZeroWeightDefaultsSafely(t *testing.T) {
	tr := tree(policy.WFQ{})
	// Weight 0 in options defaults to 1 inside the tree; the ranker must
	// not divide by zero.
	leaf := tr.NewPacketLeaf(nil, &policy.FIFO{}, pifo.ClassOptions{Name: "w0", Queue: smallQ()})
	pool := pkt.NewPool(8)
	tr.Enqueue(leaf, mk(pool, 1, 1500), 0)
	if p := tr.Dequeue(0); p == nil {
		t.Fatal("packet lost")
	}
}
