package qdisc

import (
	"math/rand"
	"testing"

	"eiffel/internal/pkt"
)

func mk(pool *pkt.Pool, flow uint64, sendAt int64) *pkt.Packet {
	p := pool.Get()
	p.Flow = flow
	p.Size = 1500
	p.SendAt = sendAt
	return p
}

func qdiscs() []Qdisc {
	return []Qdisc{
		NewEiffel(2048, 2e9, 0),
		NewCarousel(2048, 2e9, 0),
		NewFQ(),
	}
}

func TestNoEarlyRelease(t *testing.T) {
	for _, q := range qdiscs() {
		t.Run(q.Name(), func(t *testing.T) {
			pool := pkt.NewPool(64)
			rng := rand.New(rand.NewSource(1))
			// Tolerance: one slot/bucket width. The wheel (2e9/2048 ~ 976us
			// slots) may release anywhere inside the current slot; the
			// bucketed queues only after the bucket start.
			gran := int64(2_000_000_000) / 2048
			for i := 0; i < 50; i++ {
				ts := int64(rng.Intn(100_000_000))
				q.Enqueue(mk(pool, uint64(i%7+1), ts), 0)
			}
			released := 0
			now := int64(0)
			for released < 50 && now < 2e9 {
				next, ok := q.NextTimer(now)
				if !ok {
					break
				}
				if next < now {
					next = now
				}
				now = next
				for {
					p := q.Dequeue(now)
					if p == nil {
						break
					}
					if p.SendAt > now+gran {
						t.Fatalf("released %d ns early", p.SendAt-now)
					}
					released++
				}
				now++
			}
			if released != 50 {
				t.Fatalf("released %d of 50", released)
			}
		})
	}
}

func TestReleaseOrderWithinFlow(t *testing.T) {
	for _, q := range qdiscs() {
		t.Run(q.Name(), func(t *testing.T) {
			pool := pkt.NewPool(16)
			// One flow, increasing timestamps 1ms apart.
			var ids []uint64
			for i := 1; i <= 5; i++ {
				p := mk(pool, 1, int64(i)*1_000_000)
				ids = append(ids, p.ID)
				q.Enqueue(p, 0)
			}
			var got []uint64
			now := int64(0)
			for len(got) < 5 {
				next, ok := q.NextTimer(now)
				if !ok {
					break
				}
				if next < now {
					next = now
				}
				now = next
				for {
					p := q.Dequeue(now)
					if p == nil {
						break
					}
					got = append(got, p.ID)
				}
				now++
			}
			for i := range ids {
				if got[i] != ids[i] {
					t.Fatalf("%s: order %v, want %v", q.Name(), got, ids)
				}
			}
		})
	}
}

func TestFQGarbageCollection(t *testing.T) {
	q := NewFQ()
	pool := pkt.NewPool(256)
	// 100 flows send one packet each, then go idle.
	for i := uint64(1); i <= 100; i++ {
		q.Enqueue(mk(pool, i, 0), 0)
	}
	now := int64(0)
	for q.Len() > 0 {
		next, _ := q.NextTimer(now)
		if next < now {
			next = now
		}
		now = next
		for q.Dequeue(now) != nil {
		}
		now++
	}
	if q.Flows() != 100 {
		t.Fatalf("flows tracked = %d before GC age", q.Flows())
	}
	// A new flow enqueues long after the idle threshold: the incremental
	// GC probes reclaim old flows as traffic continues.
	for i := 0; i < 300; i++ {
		p := mk(pool, 999, 4e9+int64(i))
		q.Enqueue(p, 4e9)
		q.Dequeue(5e9)
		pool.Put(p)
	}
	if q.Flows() > 10 {
		t.Fatalf("GC left %d flows tracked", q.Flows())
	}
}

func TestCarouselTimerFiresEveryTick(t *testing.T) {
	c := NewCarousel(1000, 1e9, 0) // 1ms granularity
	pool := pkt.NewPool(4)
	c.Enqueue(mk(pool, 1, 500_000_000), 0)
	next, ok := c.NextTimer(0)
	if !ok || next != 1_000_000 {
		t.Fatalf("NextTimer = (%d,%v), want one granularity tick", next, ok)
	}
	// Even when the only packet is 500ms away, the wheel demands polling
	// every tick — the overhead Figure 10 quantifies.
	e := NewEiffel(1000, 1e9, 0)
	e.Enqueue(mk(pool, 2, 500_000_000), 0)
	eNext, ok := e.NextTimer(0)
	if !ok {
		t.Fatal("eiffel NextTimer")
	}
	if eNext < 400_000_000 {
		t.Fatalf("Eiffel timer at %d, want near the actual deadline", eNext)
	}
}

// TestCarouselServicesOverdueBacklog is the regression test for the
// NextTimer overdue bug: with a due backlog in the wheel, NextTimer used
// to answer now+granularity, idling the host runner a full granularity
// before releasing packets that were already due — and padding the
// softirq idle time the Figure 9/10 decomposition meters. The fire count
// is pinned: the whole overdue backlog must be serviced by exactly one
// immediate timer fire.
func TestCarouselServicesOverdueBacklog(t *testing.T) {
	c := NewCarousel(100, 1000, 0) // granularity 10 ns
	pool := pkt.NewPool(4)
	c.Enqueue(mk(pool, 1, 5), 0)  // slot 0
	c.Enqueue(mk(pool, 2, 15), 0) // slot 1
	now := int64(25)              // both packets are overdue
	fires, released := 0, 0
	for c.Len() > 0 {
		next, ok := c.NextTimer(now)
		if !ok {
			t.Fatal("NextTimer not ok with queued packets")
		}
		if next > now {
			t.Fatalf("NextTimer(%d) = %d with an overdue backlog; the runner would idle %d ns",
				now, next, next-now)
		}
		fires++
		for c.Dequeue(now) != nil {
			released++
		}
	}
	if fires != 1 || released != 2 {
		t.Fatalf("fires = %d, released = %d; want the backlog serviced in exactly 1 fire", fires, released)
	}
	// With nothing due, the wheel still demands its periodic tick.
	c.Enqueue(mk(pool, 3, 900), int64(25))
	if next, ok := c.NextTimer(25); !ok || next != 25+c.gran {
		t.Fatalf("NextTimer with only future packets = (%d,%v), want one granularity tick", next, ok)
	}
}

func TestRunHostSmall(t *testing.T) {
	cfg := HostConfig{Flows: 200, AggregateBps: 200_000_000, SimSeconds: 2}
	for _, q := range []Qdisc{NewEiffel(2048, 2e9, 0), NewCarousel(2048, 2e9, 0), NewFQ()} {
		res := RunHost(q, cfg)
		// 200 Mbps at 1500B = ~16.6 kpps for 2s ~= 33k packets.
		if res.Packets < 20000 {
			t.Fatalf("%s: only %d packets released", res.Qdisc, res.Packets)
		}
		if res.OnTimeFrac < 0.95 {
			t.Fatalf("%s: on-time fraction %.3f", res.Qdisc, res.OnTimeFrac)
		}
		if len(res.CoresSamples) < 2 {
			t.Fatalf("%s: %d samples", res.Qdisc, len(res.CoresSamples))
		}
	}
}

func TestEiffelFiresFarFewerTimersThanCarousel(t *testing.T) {
	cfg := HostConfig{Flows: 100, AggregateBps: 50_000_000, SimSeconds: 1}
	e := RunHost(NewEiffel(20000, 2e9, 0), cfg)
	c := RunHost(NewCarousel(20000, 2e9, 0), cfg)
	// Carousel must poll every granularity (2e9/20000 = 100 us -> 10k
	// fires per second); Eiffel fires only when a bucket is due.
	if c.TimerFires < e.TimerFires {
		t.Fatalf("carousel fired %d, eiffel %d — expected carousel >= eiffel",
			c.TimerFires, e.TimerFires)
	}
	if float64(c.TimerFires) < 1.5*float64(e.TimerFires) {
		t.Fatalf("timer-fire contrast too small: carousel %d vs eiffel %d",
			c.TimerFires, e.TimerFires)
	}
}

func BenchmarkQdiscEnqueueDequeue(b *testing.B) {
	for _, q := range qdiscs() {
		b.Run(q.Name(), func(b *testing.B) {
			pool := pkt.NewPool(4096)
			rng := rand.New(rand.NewSource(1))
			now := int64(0)
			// Steady state: 1024 packets in flight.
			for i := 0; i < 1024; i++ {
				q.Enqueue(mk(pool, uint64(i%64+1), now+int64(rng.Intn(1_000_000))), now)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next, _ := q.NextTimer(now)
				if next < now {
					next = now
				}
				now = next
				p := q.Dequeue(now)
				if p == nil {
					now++
					continue
				}
				p.SendAt = now + int64(rng.Intn(1_000_000))
				q.Enqueue(p, now)
			}
		})
	}
}
