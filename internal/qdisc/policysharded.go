package qdisc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"eiffel/internal/pifo"
	"eiffel/internal/pkt"
	"eiffel/internal/policy"
	"eiffel/internal/shardq"
)

// This file marries the two halves of the paper: the extended-PIFO
// programming model (per-flow ranking, on-dequeue transactions, class
// hierarchies — §3.2) and the sharded multi-producer runtime
// (internal/shardq). Each shard owns a PRIVATE pifo.Tree compiled from the
// same policy program; flow-hash sharding guarantees a flow's whole
// backlog is confined to one shard, so per-flow re-ranking (LQF, pFabric)
// and on-dequeue ranking transactions run lock-free inside that shard's
// tree, and the cross-shard drain merges by each tree's reported head rank
// exactly as the flat-rank runtimes merge. Per-flow dequeue order is
// therefore EXACT (identical to one global locked tree); cross-shard
// order is approximate at head-rank granularity — the shard-local
// approximation Figure 19 and Alcoz et al. show preserves policy outcomes.

// Canonical policy programs, in the Compile grammar — the paper's three
// flexibility showcases. One definition feeds the policysched experiment,
// the runnable examples, and the equivalence tests, so the program text
// and the replay rows can never drift apart.
const (
	// PolicySpecPFabric is shortest-remaining-first per-flow ranking
	// (Figure 14): packet Rank annotations carry remaining flow size.
	PolicySpecPFabric = `
root ranker=strict
leaf pf parent=root kind=flow policy=pfabric buckets=4096 gran=64
`
	// PolicySpecLQF is Longest Queue First (Figure 6): both primitives —
	// per-flow ranking and on-dequeue re-ranking — on one leaf.
	PolicySpecLQF = `
root ranker=strict
leaf lqf parent=root kind=flow policy=lqf buckets=4096 gran=256
`
	// PolicySpecHWFQ is a two-class weighted hierarchy (3:1) with flow-
	// FIFO leaves; packets route to a leaf by their Class annotation.
	PolicySpecHWFQ = `
root ranker=wfq buckets=4096 gran=16384
class gold parent=root ranker=wfq weight=3 buckets=4096 gran=16384
class silver parent=root ranker=wfq weight=1 buckets=4096 gran=16384
leaf gold0 parent=gold kind=flow policy=fifo buckets=4096 gran=64
leaf silver0 parent=silver kind=flow policy=fifo buckets=4096 gran=64
`
)

// treeSched adapts one shard-private extended-PIFO tree to the
// shardq.Scheduler backend contract. The published ring rank carries the
// enqueue timestamp (now), which the backend feeds to the tree's
// scheduling transactions; the merge rank reported by Min is the head
// class's queue minimum — the policy-rank domain when the program is a
// single leaf under the root, the root ranker's domain otherwise.
type treeSched struct {
	tree   *pifo.Tree
	leaves []*pifo.Class // program leaves in declaration order
	fixed  *pifo.Class   // non-nil: every packet enqueues here
	head   *pifo.Class   // merge-rank class (sole leaf, or the root)

	// now is the consumer-set clock for dequeue-side transactions.
	// Atomic because the consumer advances it (advanceClock) while a
	// producer whose ring filled may be reading it under the shard lock
	// on the fallback flush path — and atomics keep the clock
	// propagation off the shard mutexes entirely (no per-drain lock
	// round-trips when now moves every batch).
	now atomic.Int64

	// direct selects the shard-confined fast path (pifo direct ranked
	// service): the program is a single unshaped flow leaf whose policy
	// is packet-free, so the backend drives the leaf itself — no
	// hierarchy walk, no packet loads on dequeue. Semantically identical
	// per flow; ties at bucket granularity may rotate differently (see
	// pifo/direct.go).
	direct bool

	// stalled marks a backend whose tree refused to serve its own head
	// (a shaper gate inside the program): Min then reports empty so the
	// cross-shard merge's progress contract holds. Cleared by any enqueue
	// or by the consumer advancing the clock; atomic for the same
	// consumer-vs-fallback concurrency as now.
	stalled atomic.Bool
}

//eiffel:hotpath
func (b *treeSched) leafFor(p *pkt.Packet) *pifo.Class {
	if b.fixed != nil {
		return b.fixed
	}
	// Multi-leaf programs route by the packet's Class annotation, modulo
	// the leaf count, in program declaration order.
	return b.leaves[int(uint32(p.Class))%len(b.leaves)]
}

// advanceEpoch bumps the direct leaf's eviction epoch clock. Callers hold
// the shard lock (the synchronization every Direct call runs under).
//
//eiffel:locked(shard)
func (b *treeSched) advanceEpoch() {
	if b.direct {
		b.fixed.DirectAdvanceEpoch()
	}
}

// flowStats reports this shard's flow-table occupancy. On the direct path
// idle flows are retained until evicted, so live and retained diverge; on
// the tree path the flow maps recycle drained flows immediately, so both
// equal the backlogged-flow count. Callers hold the shard lock.
//
//eiffel:locked(shard)
func (b *treeSched) flowStats() (live, retained int, evicted uint64) {
	if b.direct {
		return b.fixed.DirectFlowStats()
	}
	for _, leaf := range b.leaves {
		n := leaf.NumFlows()
		live += n
		retained += n
	}
	return live, retained, 0
}

// Enqueue implements shardq.Scheduler: rank is the enqueue timestamp —
// except in direct mode, where PolicySharded publishes the packet's rank
// annotation instead (the keys are re-derived from the packet here, the
// slow-but-correct form of the aux path below).
//
//eiffel:hotpath
func (b *treeSched) Enqueue(n *shardq.Node, rank uint64) {
	p := pkt.FromSchedNode(n)
	if b.direct {
		b.fixed.DirectEnqueue(p, p.Flow, p.Rank, b.now.Load())
		return
	}
	b.stalled.Store(false)
	b.tree.Enqueue(b.leafFor(p), p, int64(rank))
}

// EnqueueBatch implements shardq.Scheduler.
//
//eiffel:hotpath
func (b *treeSched) EnqueueBatch(ns []*shardq.Node, ranks []uint64) {
	if b.direct {
		leaf, now := b.fixed, b.now.Load()
		for _, n := range ns {
			p := pkt.FromSchedNode(n)
			leaf.DirectEnqueue(p, p.Flow, p.Rank, now)
		}
		return
	}
	b.stalled.Store(false)
	for i, n := range ns {
		p := pkt.FromSchedNode(n)
		b.tree.Enqueue(b.leafFor(p), p, int64(ranks[i]))
	}
}

// EnqueueAux implements shardq.AuxScheduler: in direct mode PolicySharded
// publishes (rank annotation, flow id) over the ring, so the insert runs
// packet-free — the producer resolved both keys while the packet was
// cache-hot, and this side never loads it.
//
//eiffel:hotpath
func (b *treeSched) EnqueueAux(n *shardq.Node, rank, aux uint64) {
	if !b.direct {
		b.Enqueue(n, rank)
		return
	}
	b.fixed.DirectEnqueue(pkt.FromSchedNode(n), aux, rank, b.now.Load())
}

// EnqueueBatchAux implements shardq.AuxScheduler.
//
//eiffel:hotpath
func (b *treeSched) EnqueueBatchAux(ns []*shardq.Node, ranks, auxes []uint64) {
	if !b.direct {
		b.EnqueueBatch(ns, ranks)
		return
	}
	leaf, now := b.fixed, b.now.Load()
	for i, n := range ns {
		leaf.DirectEnqueue(pkt.FromSchedNode(n), auxes[i], ranks[i], now)
	}
}

// DequeueBatch implements shardq.Scheduler: serve the program while its
// head rank stays within maxRank. Each pop runs the program's on-dequeue
// transactions, so the head is re-read every iteration.
//
//eiffel:hotpath
func (b *treeSched) DequeueBatch(maxRank uint64, out []*shardq.Node) int {
	popped := 0
	now := b.now.Load()
	if b.direct {
		leaf := b.fixed
		for popped < len(out) {
			r, ok := leaf.HeadRank()
			if !ok || r > maxRank {
				break
			}
			p := leaf.DirectDequeue(now)
			if p == nil {
				break
			}
			out[popped] = &p.SchedNode
			popped++
		}
		return popped
	}
	for popped < len(out) {
		r, ok := b.head.HeadRank()
		if !ok || r > maxRank {
			break
		}
		p := b.tree.Dequeue(now)
		if p == nil {
			// The head shows demand the tree will not serve at now (a
			// shaper gate). Report empty from Min until new work or a
			// later clock arrives — mergeRuns' progress argument.
			b.stalled.Store(true)
			break
		}
		out[popped] = &p.SchedNode
		popped++
	}
	return popped
}

// Min implements shardq.Scheduler.
//
//eiffel:hotpath
func (b *treeSched) Min() (uint64, bool) {
	if b.stalled.Load() {
		return 0, false
	}
	return b.head.HeadRank()
}

// Len implements shardq.Scheduler.
//
//eiffel:hotpath
func (b *treeSched) Len() int {
	if b.direct {
		return b.fixed.Backlog()
	}
	return b.tree.Len()
}

// setNow advances the backend's dequeue-side clock, waking a stalled
// tree. Safe from the consumer without the shard lock (atomics).
//
//eiffel:hotpath
func (b *treeSched) setNow(now int64) {
	if now != b.now.Load() {
		b.now.Store(now)
		b.stalled.Store(false)
	}
}

// nextEvent returns the tree's earliest pending shaper release.
//
//eiffel:locked(shard)
func (b *treeSched) nextEvent() (int64, bool) { return b.tree.NextEvent() }

// compiledProgram is one compiled instance of a policy program plus the
// leaf-routing and merge-head resolution PolicySharded needs per shard.
type compiledProgram struct {
	tree   *pifo.Tree
	leaves []*pifo.Class
	fixed  *pifo.Class
	head   *pifo.Class
	direct bool
}

// compileProgram compiles spec through the policy registry and resolves
// leaf routing: leafName pins every packet to one named leaf; otherwise a
// single-leaf program routes everything to its leaf and a multi-leaf
// program routes by the packet Class annotation. The merge head is the
// leaf itself when the program is exactly one leaf directly under the root
// (the merge then compares policy ranks across shards); any deeper
// hierarchy merges by the root ranker's domain.
func compileProgram(spec, leafName string) (*compiledProgram, error) {
	tree, classes, err := pifo.Compile(spec, policy.Registry{})
	if err != nil {
		return nil, err
	}
	cp := &compiledProgram{tree: tree}
	rootChildren := 0
	for _, c := range tree.Classes() {
		if c.IsLeaf() {
			cp.leaves = append(cp.leaves, c)
		}
		if c.Parent() == tree.Root() {
			rootChildren++
		}
	}
	if len(cp.leaves) == 0 {
		return nil, fmt.Errorf("qdisc: policy program has no leaf class")
	}
	if leafName != "" {
		c := classes[leafName]
		if c == nil {
			return nil, fmt.Errorf("qdisc: policy program has no class %q", leafName)
		}
		if !c.IsLeaf() {
			return nil, fmt.Errorf("qdisc: class %q is not a leaf", leafName)
		}
		cp.fixed = c
	} else if len(cp.leaves) == 1 {
		cp.fixed = cp.leaves[0]
	}
	cp.head = tree.Root()
	if len(cp.leaves) == 1 && rootChildren == 1 && cp.leaves[0].Parent() == tree.Root() {
		cp.head = cp.leaves[0]
		// Shard-confined fast path: a single unshaped packet-free flow
		// leaf under the root can be driven directly (pifo direct ranked
		// service), skipping the hierarchy walk per packet.
		cp.direct = cp.leaves[0].DirectRanked() && !tree.Root().Limited() && !cp.leaves[0].Limited()
	}
	return cp, nil
}

// policyGroup is one consumer group's qdisc-side drain state: the group's
// last-propagated clock and its node→packet conversion scratch. Padded so
// concurrent group workers never false-share.
type policyGroup struct {
	lastNow int64
	scratch []*shardq.Node
	_       [64]byte
}

// PolicySharded runs an extended-PIFO policy program on the sharded
// multi-producer runtime: flows hash to one of N shards, each owning a
// private compiled pifo.Tree behind a lock-free MPSC ring, so pFabric,
// LQF, and hierarchical WFQ programs scale past the global qdisc lock
// while keeping per-flow dequeue order exactly as the locked tree would
// produce it (flows never span shards). Cross-shard order is merged by
// each tree's head rank and is approximate at that granularity; the
// policysched experiment measures the residual fairness error.
//
// Concurrency contract matches Sharded: Enqueue/EnqueueBatch from any
// number of goroutines. The single-consumer surface (Dequeue,
// DequeueBatch, NextTimer) must be driven by one goroutine with exclusive
// access to every consumer group; with Options.Groups > 1 the
// group-worker surface (GroupDequeueBatch) may instead be driven by one
// goroutine per group, distinct groups concurrently — do not mix the two
// surfaces while group workers run.
//
// Rate limits inside the program apply PER SHARD (each shard runs its own
// copy of the tree, shaper included), so a limited class's aggregate rate
// is its configured rate times the number of shards its flows land on.
// Work-conserving programs — the policies above — are unaffected.
type PolicySharded struct {
	rt       *shardq.Q
	backends []*treeSched
	name     string

	// groups holds per-consumer-group drain state; the single-consumer
	// surface serves every group from the calling goroutine, the
	// group-worker surface (GroupDequeueBatch) one group per goroutine.
	groups []policyGroup

	// direct mirrors the backends' fast-path selection and switches the
	// publication format: (rank annotation, flow id) over the ring's
	// (rank, aux) pair instead of the enqueue timestamp, so the consumer
	// side runs packet-free.
	direct bool

	// Release buffer, exactly as in Sharded: Dequeue hands out packets
	// popped in cross-shard batches.
	buf     []*shardq.Node
	bufHead int
	bufLen  int
	bufN    atomic.Int64

	scratch []*shardq.Node // DequeueBatch conversion space

	// prodPool recycles runtime staging handles for EnqueueBatch, as in
	// Sharded.
	prodPool sync.Pool

	admitState

	// Lifecycle and conservation accounting; see lifecycle.go.
	egressState
}

// PolicyShardedOptions configures a PolicySharded qdisc.
type PolicyShardedOptions struct {
	// Policy is the program source, in the pifo.Compile grammar; names
	// resolve through the policy registry (wfq/strict/rr, edf/fifo/
	// strict/lstf/rank, pfabric/lqf/sqf/fifo). Required.
	Policy string
	// Leaf names the class every packet enqueues at. Default: the
	// program's single leaf; multi-leaf programs route each packet by its
	// Class annotation (modulo the leaf count, in declaration order).
	Leaf string
	// Shards is the shard count, rounded up to a power of two (default 8).
	Shards int
	// Groups is the consumer-group count (default 1), as in
	// MultiShardedOptions: each group's GroupDequeueBatch may be driven by
	// its own worker goroutine. Flow-hash confinement keeps every flow's
	// backlog — and so its policy state — on one shard inside one group,
	// so per-flow policy order stays EXACT under parallel egress.
	Groups int
	// RingBits sizes each shard's MPSC ring at 1<<RingBits slots
	// (default 10).
	RingBits uint
	// Batch is the consumer-side batch size (default 64).
	Batch int
	// ShardBound caps each shard's occupancy for EnqueueBatchAdmit; 0
	// keeps the legacy unbounded spill (see shardq.Options.ShardBound).
	ShardBound int
	// Admit selects what EnqueueBatchAdmit does with refused packets
	// (default AdmitDropTail).
	Admit AdmitPolicy
	// Tenants sizes the per-tenant drop buckets (default 1).
	Tenants int
	// EvictAfter arms idle-flow eviction on the direct service path: a
	// drained flow untouched for EvictAfter AdvanceFlowEpoch calls
	// becomes reclaimable (see pifo.Class.SetDirectEviction). 0 keeps
	// the retain-forever default; ignored by non-direct programs, whose
	// flow maps already recycle drained flows.
	EvictAfter int
}

// NewPolicySharded compiles opt.Policy once per shard and returns the
// sharded policy qdisc, or an error when the program does not compile or
// the leaf selection is ambiguous.
func NewPolicySharded(opt PolicyShardedOptions) (*PolicySharded, error) {
	if opt.Batch <= 0 {
		opt.Batch = 64
	}
	// Validate the program (and the leaf resolution) once up front, so the
	// per-shard factory below cannot fail.
	probe, err := compileProgram(opt.Policy, opt.Leaf)
	if err != nil {
		return nil, err
	}
	s := &PolicySharded{
		name:       "Eiffel+policy-shards",
		direct:     probe.direct,
		buf:        make([]*shardq.Node, opt.Batch),
		admitState: newAdmitState(opt.Admit, opt.Tenants),
	}
	s.rt = shardq.New(shardq.Options{
		NumShards:  opt.Shards,
		NumGroups:  opt.Groups,
		RingBits:   opt.RingBits,
		ShardBound: opt.ShardBound,
		Backend: func(int) shardq.Scheduler {
			cp, err := compileProgram(opt.Policy, opt.Leaf)
			if err != nil {
				panic("qdisc: policy program compiled at validation but not per shard: " + err.Error())
			}
			b := &treeSched{tree: cp.tree, leaves: cp.leaves, fixed: cp.fixed, head: cp.head, direct: cp.direct}
			if b.direct && opt.EvictAfter > 0 {
				b.fixed.SetDirectEviction(opt.EvictAfter)
			}
			s.backends = append(s.backends, b)
			return b
		},
	})
	s.groups = make([]policyGroup, s.rt.NumGroups())
	s.prodPool.New = func() any { return s.rt.NewProducer(0) }
	return s, nil
}

// Name implements Qdisc.
func (s *PolicySharded) Name() string { return s.name }

// Len implements Qdisc: packets published but not yet handed out,
// including the consumer's release buffer. Same transient-overcount
// contract as Sharded.Len.
//
//eiffel:hotpath
func (s *PolicySharded) Len() int { return s.rt.Len() + int(s.bufN.Load()) }

// AdmitIdle reports no refusable admission in flight (see
// shardq.Q.AdmitIdle); the lifecycle drains gate quiescence on it.
func (s *PolicySharded) AdmitIdle() bool { return s.rt.AdmitIdle() }

// Stats returns the runtime's shard/batch counters.
func (s *PolicySharded) Stats() shardq.Snapshot { return s.rt.Stats() }

// NumShards returns the shard count.
func (s *PolicySharded) NumShards() int { return s.rt.NumShards() }

// NumGroups returns the consumer-group count.
func (s *PolicySharded) NumGroups() int { return s.rt.NumGroups() }

// GroupFor returns the consumer group that drains flow's shard — the only
// group whose worker ever releases that flow's packets.
func (s *PolicySharded) GroupFor(flow uint64) int { return s.rt.GroupFor(flow) }

// GroupLen returns consumer group g's queued-but-undrained packet count
// (excluding the single-consumer release buffer, which group workers
// never touch). Safe from any goroutine, same transient-overcount
// contract as Len.
func (s *PolicySharded) GroupLen(g int) int { return s.rt.GroupLen(g) }

// GroupDequeueBatch pops up to len(out) packets from consumer group g's
// shards in the group's merged policy order and returns how many it
// wrote. Group-worker-side: distinct groups may be driven concurrently,
// each worker passing its own clock; per-flow policy order (pFabric
// remaining-size, LQF re-ranking, flow FIFO) is EXACT — identical to the
// single-consumer qdisc — because a flow's whole backlog lives in one
// shard of one group. Do not mix with the single-consumer surface
// (Dequeue/DequeueBatch/NextTimer) while group workers run: that surface
// assumes exclusive access to every group.
//
//eiffel:hotpath
func (s *PolicySharded) GroupDequeueBatch(g int, now int64, out []*pkt.Packet) int {
	s.advanceGroupClock(g, now)
	gs := &s.groups[g]
	if cap(gs.scratch) < len(out) {
		//eiffel:allow(hotpath) scratch sized to the widest out seen, then reused
		gs.scratch = make([]*shardq.Node, len(out))
	}
	nodes := gs.scratch[:len(out)]
	k := s.rt.GroupDequeueBatch(g, ^uint64(0), nodes)
	for i := 0; i < k; i++ {
		out[i] = pkt.FromSchedNode(nodes[i])
	}
	clear(nodes[:k]) // drop the handles: scratch must not pin released packets
	return k
}

// Enqueue implements Qdisc: the packet publishes on its flow's shard; the
// shard's program runs the enqueue transactions when the element is
// flushed ring→backend (by the consumer, or by a producer whose ring
// filled). In direct mode the ring carries (rank annotation, flow id) —
// both read here, while the packet is the producer's hot cache line — so
// the consumer side never loads the packet; otherwise it carries the
// enqueue timestamp for the tree's transactions. Safe for concurrent
// producers. now must be non-negative.
//
//eiffel:hotpath
func (s *PolicySharded) Enqueue(p *pkt.Packet, now int64) {
	if s.direct {
		s.rt.EnqueueAux(p.Flow, &p.SchedNode, p.Rank, p.Flow)
		s.admit(1)
		return
	}
	s.rt.Enqueue(p.Flow, &p.SchedNode, uint64(now))
	s.admit(1)
}

// TryEnqueue admits one packet unless the front is closed (or its shard
// is at a configured occupancy bound) and reports the outcome. Safe for
// concurrent producers.
//
//eiffel:hotpath
func (s *PolicySharded) TryEnqueue(p *pkt.Packet, now int64) bool {
	ok := false
	if s.direct {
		ok = s.rt.TryEnqueueAux(p.Flow, &p.SchedNode, p.Rank, p.Flow)
	} else {
		ok = s.rt.TryEnqueue(p.Flow, &p.SchedNode, uint64(now))
	}
	if ok {
		s.admit(1)
	}
	return ok
}

// EnqueueBatch admits a whole run of packets at once, staging per shard
// and publishing each shard's run as one multi-slot ring claim. Safe for
// concurrent producers; everything is published on return.
//
//eiffel:hotpath
func (s *PolicySharded) EnqueueBatch(ps []*pkt.Packet, now int64) {
	b := s.prodPool.Get().(*shardq.Producer)
	if s.direct {
		for _, p := range ps {
			b.EnqueueAux(p.Flow, &p.SchedNode, p.Rank, p.Flow)
		}
	} else {
		for _, p := range ps {
			b.Enqueue(p.Flow, &p.SchedNode, uint64(now))
		}
	}
	s.admit(b.FlushAdmit().Admitted)
	s.prodPool.Put(b)
}

// EnqueueBatchAdmit implements AdmitQdisc: EnqueueBatch under the
// configured shard bound, reporting refused packets instead of spilling.
//
//eiffel:hotpath
func (s *PolicySharded) EnqueueBatchAdmit(ps []*pkt.Packet, now int64, rej []*pkt.Packet) (int, []*pkt.Packet) {
	b := s.prodPool.Get().(*shardq.Producer)
	if s.direct {
		for _, p := range ps {
			b.EnqueueAux(p.Flow, &p.SchedNode, p.Rank, p.Flow)
		}
	} else {
		for _, p := range ps {
			b.Enqueue(p.Flow, &p.SchedNode, uint64(now))
		}
	}
	res := b.FlushAdmit()
	admitted, rej := s.settle(res, len(ps), pkt.FromSchedNode, rej)
	s.admit(admitted)
	s.prodPool.Put(b)
	return admitted, rej
}

// AdvanceFlowEpoch advances every shard's direct-leaf eviction epoch (a
// no-op for non-direct programs or with EvictAfter unset). Cadence is the
// caller's idleness definition: a drained flow untouched for EvictAfter
// advances becomes reclaimable. Takes each shard's lock; call it off the
// per-packet path — every N batches, or on a timer.
func (s *PolicySharded) AdvanceFlowEpoch() {
	for i, b := range s.backends {
		s.rt.WithShardLocked(i, func(shardq.Scheduler) { b.advanceEpoch() })
	}
}

// FlowStats sums per-shard flow-table occupancy: live backlogged flows,
// retained flow objects (live plus idle-not-yet-reclaimed on the direct
// path), and slots reclaimed by eviction. Takes each shard's lock.
func (s *PolicySharded) FlowStats() (live, retained int, evicted uint64) {
	for i, b := range s.backends {
		s.rt.WithShardLocked(i, func(shardq.Scheduler) {
			l, r, e := b.flowStats()
			live += l
			retained += r
			evicted += e
		})
	}
	return live, retained, evicted
}

// advanceGroupClock propagates group g's worker clock into that group's
// shard backends so dequeue-side transactions see it, waking trees
// stalled on shaper gates. The clock and stall flags are atomics, so this
// costs one load-compare (and, when the clock moved, a store pair) per
// shard — no shard locks, even though producers whose rings filled read
// the same fields on their fallback flush paths. Group-worker-side: each
// group's clock advances independently, and a backend only ever belongs
// to one group.
//
//eiffel:hotpath
func (s *PolicySharded) advanceGroupClock(g int, now int64) {
	gs := &s.groups[g]
	if now == gs.lastNow {
		return
	}
	gs.lastNow = now
	lo, hi := s.rt.GroupShards(g)
	stalled := false
	for _, b := range s.backends[lo:hi] {
		stalled = stalled || b.stalled.Load()
		b.setNow(now)
	}
	if stalled {
		// A stalled backend reported itself empty to the merge's head
		// cache; force a re-peek now that the clock moved.
		s.rt.GroupFlush(g)
	}
}

// advanceClock propagates the consumer's clock into every group's
// backends — the single-consumer surface's clock rule.
//
//eiffel:hotpath
func (s *PolicySharded) advanceClock(now int64) {
	for g := range s.groups {
		s.advanceGroupClock(g, now)
	}
}

// Dequeue implements Qdisc: the packet the policy program serves next, or
// nil when every shard is empty (or gated). Refills the release buffer
// with a cross-shard batch when empty.
//
//eiffel:hotpath
func (s *PolicySharded) Dequeue(now int64) *pkt.Packet {
	if s.bufHead == s.bufLen {
		s.advanceClock(now)
		s.bufHead = 0
		s.bufLen = s.rt.DequeueBatch(^uint64(0), s.buf)
		s.bufN.Store(int64(s.bufLen))
		if s.bufLen == 0 {
			return nil
		}
	}
	n := s.buf[s.bufHead]
	s.buf[s.bufHead] = nil
	s.bufHead++
	s.bufN.Add(-1)
	return pkt.FromSchedNode(n)
}

// DequeueBatch pops up to len(out) packets in merged cross-shard policy
// order, draining the internal buffer first. It returns how many packets
// it wrote.
//
//eiffel:hotpath
func (s *PolicySharded) DequeueBatch(now int64, out []*pkt.Packet) int {
	k := 0
	for s.bufHead < s.bufLen && k < len(out) {
		out[k] = pkt.FromSchedNode(s.buf[s.bufHead])
		s.buf[s.bufHead] = nil
		s.bufHead++
		s.bufN.Add(-1)
		k++
	}
	if k == len(out) {
		return k
	}
	s.advanceClock(now)
	if cap(s.scratch) < len(out)-k {
		//eiffel:allow(hotpath) scratch sized to the widest out seen, then reused
		s.scratch = make([]*shardq.Node, len(out)-k)
	}
	nodes := s.scratch[:len(out)-k]
	m := s.rt.DequeueBatch(^uint64(0), nodes)
	for i := 0; i < m; i++ {
		out[k] = pkt.FromSchedNode(nodes[i])
		k++
	}
	clear(nodes[:m]) // drop the handles: scratch must not pin released packets
	return k
}

// NextTimer implements Qdisc: "now" while any packet is servable, the
// soonest per-shard shaper release when every backlogged tree is gated,
// ok=false when empty.
func (s *PolicySharded) NextTimer(now int64) (int64, bool) {
	if s.bufHead < s.bufLen {
		return now, true
	}
	s.advanceClock(now)
	if _, ok := s.rt.MinRank(); ok {
		return now, true
	}
	if s.Len() == 0 {
		return 0, false
	}
	// Backlogged but nothing servable: every tree is shaper-gated. Peek
	// each tree's shaper under its shard lock — a producer fallback may
	// be enqueueing into the same tree concurrently.
	min, ok := int64(0), false
	for i, b := range s.backends {
		s.rt.WithShardLocked(i, func(shardq.Scheduler) {
			if t, tok := b.nextEvent(); tok && (!ok || t < min) {
				min, ok = t, true
			}
		})
	}
	if !ok {
		return 0, false
	}
	if min < now {
		min = now
	}
	return min, true
}

// Serve starts one supervised drain worker per consumer group; identical
// contract to MultiSharded.Serve. Do not mix with the single-consumer
// surface while the fleet runs.
func (s *PolicySharded) Serve(clock func() int64, sinks []EgressSink, batch int) (stop func()) {
	srv := s.ServeWith(clock, sinks, ServeOptions{Batch: batch})
	return func() { srv.Stop() }
}

// ServeWith is Serve with the full supervision surface; see
// MultiSharded.ServeWith.
func (s *PolicySharded) ServeWith(clock func() int64, sinks []EgressSink, opt ServeOptions) *Server {
	return startServer(s, &s.egressState, s.rt.Close, clock, sinks, opt)
}

// Close quiesces admission; see MultiSharded.Close. The infallible
// Enqueue/EnqueueBatch paths are not gated; EnqueueBatchAdmit and
// TryEnqueue refuse (PushClosed, accounted under the admission policy).
func (s *PolicySharded) Close() { lifecycleClose(&s.egressState, s.rt.Close) }

// Drain closes the front and runs the remaining backlog to the sinks —
// shaper gates inside the program open for the drain. Packets sitting in
// the single-consumer release buffer (if that surface was in use) are
// disposed first, through sinks[0]. See MultiSharded.Drain for the
// contract.
func (s *PolicySharded) Drain(sinks []EgressSink, opt ServeOptions) DrainReport {
	if len(sinks) == s.NumGroups() {
		o := opt.withDefaults()
		s.drainBuf(func(ps []*pkt.Packet) {
			fs, _ := sinks[0].(FallibleSink)
			idx, panics := 0, 0
			for idx < len(ps) {
				if txStep(sinks[0], fs, ps, &idx, &o.Retry, &s.eg, o.OnDrop) {
					if panics++; o.MaxRestarts >= 0 && panics > o.MaxRestarts {
						disposeFailed(ps[idx:], &s.eg, o.OnDrop)
						idx = len(ps)
					}
				}
			}
		})
	}
	return lifecycleDrain(s, &s.egressState, s.rt.Close, sinks, opt)
}

// CloseForce closes the front and releases the remaining backlog —
// release buffer included — to the caller; see MultiSharded.CloseForce.
func (s *PolicySharded) CloseForce(release func(*pkt.Packet)) DrainReport {
	s.drainBuf(func(ps []*pkt.Packet) {
		if release != nil {
			for _, p := range ps {
				release(p)
			}
		}
		s.released.Add(uint64(len(ps)))
	})
	return lifecycleCloseForce(s, &s.egressState, s.rt.Close, release)
}

// drainBuf empties the single-consumer release buffer through dispose.
// Exclusive access required (the Drain/CloseForce contract).
func (s *PolicySharded) drainBuf(dispose func([]*pkt.Packet)) {
	if s.bufHead >= s.bufLen {
		return
	}
	ps := make([]*pkt.Packet, 0, s.bufLen-s.bufHead)
	for i := s.bufHead; i < s.bufLen; i++ {
		ps = append(ps, pkt.FromSchedNode(s.buf[i]))
		s.buf[i] = nil
	}
	s.bufN.Add(-int64(len(ps)))
	s.bufHead = s.bufLen
	dispose(ps)
}

// --- Single-threaded baseline: one locked tree, same program ---

// PolicyTree runs the same compiled program as one global pifo.Tree — the
// single-threaded reference PolicySharded is measured against (wrap it in
// Locked for the kernel-style global-lock deployment).
type PolicyTree struct {
	cp   *compiledProgram
	name string
}

// NewPolicyTree compiles spec (leafName as in PolicyShardedOptions.Leaf)
// into a single-tree qdisc.
func NewPolicyTree(spec, leafName string) (*PolicyTree, error) {
	cp, err := compileProgram(spec, leafName)
	if err != nil {
		return nil, err
	}
	return &PolicyTree{cp: cp, name: "Eiffel tree(policy)"}, nil
}

// Name implements Qdisc.
func (q *PolicyTree) Name() string { return q.name }

// Len implements Qdisc.
func (q *PolicyTree) Len() int { return q.cp.tree.Len() }

// Enqueue implements Qdisc.
func (q *PolicyTree) Enqueue(p *pkt.Packet, now int64) {
	leaf := q.cp.fixed
	if leaf == nil {
		leaf = q.cp.leaves[int(uint32(p.Class))%len(q.cp.leaves)]
	}
	q.cp.tree.Enqueue(leaf, p, now)
}

// Dequeue implements Qdisc.
func (q *PolicyTree) Dequeue(now int64) *pkt.Packet { return q.cp.tree.Dequeue(now) }

// NextTimer implements Qdisc: "now" while backlogged (the programs this
// baseline replays are work-conserving; a shaper-gated tree would answer
// through NextEvent-driven hosts instead).
func (q *PolicyTree) NextTimer(now int64) (int64, bool) {
	if q.cp.tree.Len() == 0 {
		return 0, false
	}
	return now, true
}
