package qdisc

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"eiffel/internal/pkt"
	"eiffel/internal/shardq"
)

// This file puts hClock's hierarchical QoS (Use Case 2, §5.1.2) on the
// sharded multi-producer runtime. Each shard owns a PRIVATE hclock.Hier
// engine compiled from the same tenant spec (shardq.NewHierSched), with
// per-tenant reservation and limit rates renormalized by the shard count:
// flow-hash sharding spreads a tenant's flows uniformly across shards, so
// the per-shard slices aggregate back to the configured rates. The
// cross-shard drain merges by each engine's share virtual time — and a
// shard holding a due reservation reports merge rank 0, which lifts
// hClock's reservation-first preference across shards. Per-tenant share
// and reservation accuracy is therefore approximate at shard granularity;
// the hiersched experiment measures the residual error the way the
// policysched experiment bounds the WFQ gold share (±0.10).
//
// Packets route to a tenant by their Class annotation (modulo the tenant
// count), and the ring carries (rank annotation, tenant id) resolved on
// the producer — the consumer never loads packet memory on the enqueue
// side, the same publication trick as the policy front's direct path.

// hierGroup is one consumer group's qdisc-side drain state: the group's
// last-propagated clock and its node→packet conversion scratch. Padded so
// concurrent group workers never false-share.
type hierGroup struct {
	lastNow int64
	scratch []*shardq.Node
	_       [64]byte
}

// HierSharded runs per-tenant hierarchical QoS (reservations, limits,
// proportional shares; hClock's three-tag rule) on the sharded
// multi-producer runtime.
//
// Concurrency contract matches PolicySharded: Enqueue/EnqueueBatch from
// any number of goroutines; the single-consumer surface (Dequeue,
// DequeueBatch, NextTimer) from one goroutine with exclusive access to
// every consumer group, or — with Options.Groups > 1 — one goroutine per
// group on GroupDequeueBatch, never both at once.
//
// Per-flow dequeue order is EXACT (identical to one locked whole-tree
// hClock over the same spec): a flow's backlog is confined to one
// shard's engine, and the in-tenant queue discipline (arrival FIFO, or
// ascending rank with FIFO ties) is position-independent — a flow's
// packets leave in the same relative order no matter which other flows
// interleave. Cross-tenant interleaving is approximate at share-tag
// bucket granularity.
type HierSharded struct {
	rt       *shardq.Q
	backends []*shardq.HierSched
	tenants  int
	name     string

	groups []hierGroup

	// Release buffer, exactly as in PolicySharded.
	buf     []*shardq.Node
	bufHead int
	bufLen  int
	bufN    atomic.Int64

	scratch []*shardq.Node // DequeueBatch conversion space

	prodPool sync.Pool

	admitState
	egressState
}

// HierShardedOptions configures a HierSharded qdisc.
type HierShardedOptions struct {
	// Spec is the tenant table plus engine sizing. Required. Spec.RateDiv
	// is overwritten with the effective shard count — the per-shard rate
	// renormalization is this front's job.
	Spec shardq.HierSpec
	// Shards is the shard count, rounded up to a power of two (default 8).
	Shards int
	// Groups is the consumer-group count (default 1); see
	// PolicyShardedOptions.Groups.
	Groups int
	// RingBits sizes each shard's MPSC ring at 1<<RingBits slots
	// (default 10).
	RingBits uint
	// Batch is the consumer-side batch size (default 64).
	Batch int
	// ShardBound caps each shard's occupancy for EnqueueBatchAdmit; 0
	// keeps the unbounded spill.
	ShardBound int
	// Admit selects what EnqueueBatchAdmit does with refused packets
	// (default AdmitDropTail).
	Admit AdmitPolicy
	// Tenants sizes the per-tenant drop buckets (default: the spec's
	// tenant count).
	Tenants int
}

// NewHierSharded compiles opt.Spec once per shard and returns the sharded
// hierarchical qdisc, or the spec's validation error.
func NewHierSharded(opt HierShardedOptions) (*HierSharded, error) {
	if err := opt.Spec.Validate(); err != nil {
		return nil, err
	}
	if opt.Batch <= 0 {
		opt.Batch = 64
	}
	if opt.Tenants <= 0 {
		opt.Tenants = len(opt.Spec.Tenants)
	}
	// The factory below runs inside shardq.New, before s.rt exists, so the
	// effective shard count (the rate renormalization divisor) is computed
	// the way the runtime's own defaults do: default 8, rounded up to a
	// power of two.
	shards := opt.Shards
	if shards <= 0 {
		shards = 8
	}
	if shards&(shards-1) != 0 {
		shards = 1 << bits.Len(uint(shards))
	}
	s := &HierSharded{
		name:       "Eiffel+hier-shards",
		tenants:    len(opt.Spec.Tenants),
		buf:        make([]*shardq.Node, opt.Batch),
		admitState: newAdmitState(opt.Admit, opt.Tenants),
	}
	s.rt = shardq.New(shardq.Options{
		NumShards:  shards,
		NumGroups:  opt.Groups,
		RingBits:   opt.RingBits,
		ShardBound: opt.ShardBound,
		Backend: func(int) shardq.Scheduler {
			spec := opt.Spec
			spec.RateDiv = uint64(shards)
			b, err := shardq.NewHierSched(spec)
			if err != nil {
				panic("qdisc: hier spec validated but did not compile per shard: " + err.Error())
			}
			s.backends = append(s.backends, b)
			return b
		},
	})
	s.groups = make([]hierGroup, s.rt.NumGroups())
	s.prodPool.New = func() any { return s.rt.NewProducer(0) }
	return s, nil
}

// tenantFor resolves a packet's tenant id from its Class annotation.
//
//eiffel:hotpath
func (s *HierSharded) tenantFor(p *pkt.Packet) uint64 {
	return uint64(int(uint32(p.Class)) % s.tenants)
}

// Name implements Qdisc.
func (s *HierSharded) Name() string { return s.name }

// Len implements Qdisc: packets published but not yet handed out,
// including the consumer's release buffer. Same transient-overcount
// contract as Sharded.Len.
//
//eiffel:hotpath
func (s *HierSharded) Len() int { return s.rt.Len() + int(s.bufN.Load()) }

// AdmitIdle reports no refusable admission in flight; the lifecycle
// drains gate quiescence on it.
func (s *HierSharded) AdmitIdle() bool { return s.rt.AdmitIdle() }

// Stats returns the runtime's shard/batch counters.
func (s *HierSharded) Stats() shardq.Snapshot { return s.rt.Stats() }

// NumShards returns the shard count.
func (s *HierSharded) NumShards() int { return s.rt.NumShards() }

// NumGroups returns the consumer-group count.
func (s *HierSharded) NumGroups() int { return s.rt.NumGroups() }

// NumTenants returns the tenant-table size.
func (s *HierSharded) NumTenants() int { return s.tenants }

// GroupFor returns the consumer group that drains flow's shard.
func (s *HierSharded) GroupFor(flow uint64) int { return s.rt.GroupFor(flow) }

// GroupLen returns consumer group g's queued-but-undrained packet count.
func (s *HierSharded) GroupLen(g int) int { return s.rt.GroupLen(g) }

// TenantBacklog sums tenant id's queued elements across every shard
// engine. Takes each shard's lock; a diagnostic, not a hot path.
func (s *HierSharded) TenantBacklog(id int) int {
	total := 0
	for i, b := range s.backends {
		s.rt.WithShardLocked(i, func(shardq.Scheduler) { total += b.TenantLen(id) })
	}
	return total
}

// GroupDequeueBatch pops up to len(out) packets from consumer group g's
// shards in the group's merged hClock order and returns how many it
// wrote. Group-worker-side; see PolicySharded.GroupDequeueBatch for the
// surface contract.
//
//eiffel:hotpath
func (s *HierSharded) GroupDequeueBatch(g int, now int64, out []*pkt.Packet) int {
	s.advanceGroupClock(g, now)
	gs := &s.groups[g]
	if cap(gs.scratch) < len(out) {
		//eiffel:allow(hotpath) scratch sized to the widest out seen, then reused
		gs.scratch = make([]*shardq.Node, len(out))
	}
	nodes := gs.scratch[:len(out)]
	k := s.rt.GroupDequeueBatch(g, ^uint64(0), nodes)
	for i := 0; i < k; i++ {
		out[i] = pkt.FromSchedNode(nodes[i])
	}
	clear(nodes[:k]) // drop the handles: scratch must not pin released packets
	return k
}

// Enqueue implements Qdisc: the packet publishes on its flow's shard with
// (rank annotation, tenant id) resolved here, while the packet is the
// producer's hot cache line. Safe for concurrent producers.
//
//eiffel:hotpath
func (s *HierSharded) Enqueue(p *pkt.Packet, now int64) {
	s.rt.EnqueueAux(p.Flow, &p.SchedNode, p.Rank, s.tenantFor(p))
	s.admit(1)
}

// TryEnqueue admits one packet unless the front is closed (or its shard
// is at a configured occupancy bound) and reports the outcome.
//
//eiffel:hotpath
func (s *HierSharded) TryEnqueue(p *pkt.Packet, now int64) bool {
	if !s.rt.TryEnqueueAux(p.Flow, &p.SchedNode, p.Rank, s.tenantFor(p)) {
		return false
	}
	s.admit(1)
	return true
}

// EnqueueBatch admits a whole run of packets at once, staging per shard
// and publishing each shard's run as one multi-slot ring claim.
//
//eiffel:hotpath
func (s *HierSharded) EnqueueBatch(ps []*pkt.Packet, now int64) {
	b := s.prodPool.Get().(*shardq.Producer)
	for _, p := range ps {
		b.EnqueueAux(p.Flow, &p.SchedNode, p.Rank, s.tenantFor(p))
	}
	s.admit(b.FlushAdmit().Admitted)
	s.prodPool.Put(b)
}

// EnqueueBatchAdmit implements AdmitQdisc: EnqueueBatch under the
// configured shard bound, reporting refused packets instead of spilling.
//
//eiffel:hotpath
func (s *HierSharded) EnqueueBatchAdmit(ps []*pkt.Packet, now int64, rej []*pkt.Packet) (int, []*pkt.Packet) {
	b := s.prodPool.Get().(*shardq.Producer)
	for _, p := range ps {
		b.EnqueueAux(p.Flow, &p.SchedNode, p.Rank, s.tenantFor(p))
	}
	res := b.FlushAdmit()
	admitted, rej := s.settle(res, len(ps), pkt.FromSchedNode, rej)
	s.admit(admitted)
	s.prodPool.Put(b)
	return admitted, rej
}

// advanceGroupClock propagates group g's worker clock into that group's
// shard engines so limit parking and reservation eligibility see it,
// waking engines stalled with every tenant over its cap. Atomics only —
// no shard locks on the clock path (see ClockedScheduler).
//
//eiffel:hotpath
func (s *HierSharded) advanceGroupClock(g int, now int64) {
	gs := &s.groups[g]
	if now == gs.lastNow {
		return
	}
	prev := gs.lastNow
	gs.lastNow = now
	lo, hi := s.rt.GroupShards(g)
	repeek := false
	for _, b := range s.backends[lo:hi] {
		// Two events invalidate a shard's cached merge rank when the
		// clock moves: a stalled engine (reported itself empty with
		// backlog parked over limits), and a reservation-due crossing (the
		// cached rank is a share tag computed before the reservation came
		// due; left stale, a weight-poor reservation holder starves
		// behind heavy share tenants until their tags pass its own).
		repeek = repeek || b.Stalled()
		if d := b.ResDue(); d > 0 && prev < d && d <= now {
			repeek = true
		}
		b.SetNow(now)
	}
	if repeek {
		// The engines reported pre-advance heads to the merge's cache;
		// force a re-peek now that the clock moved.
		s.rt.GroupFlush(g)
	}
}

// advanceClock propagates the consumer's clock into every group's
// engines — the single-consumer surface's clock rule.
//
//eiffel:hotpath
func (s *HierSharded) advanceClock(now int64) {
	for g := range s.groups {
		s.advanceGroupClock(g, now)
	}
}

// Dequeue implements Qdisc: the packet hClock serves next across every
// shard, or nil when nothing is eligible at now. Refills the release
// buffer with a cross-shard batch when empty.
//
//eiffel:hotpath
func (s *HierSharded) Dequeue(now int64) *pkt.Packet {
	if s.bufHead == s.bufLen {
		s.advanceClock(now)
		s.bufHead = 0
		s.bufLen = s.rt.DequeueBatch(^uint64(0), s.buf)
		s.bufN.Store(int64(s.bufLen))
		if s.bufLen == 0 {
			return nil
		}
	}
	n := s.buf[s.bufHead]
	s.buf[s.bufHead] = nil
	s.bufHead++
	s.bufN.Add(-1)
	return pkt.FromSchedNode(n)
}

// DequeueBatch pops up to len(out) packets in merged cross-shard hClock
// order, draining the internal buffer first.
//
//eiffel:hotpath
func (s *HierSharded) DequeueBatch(now int64, out []*pkt.Packet) int {
	k := 0
	for s.bufHead < s.bufLen && k < len(out) {
		out[k] = pkt.FromSchedNode(s.buf[s.bufHead])
		s.buf[s.bufHead] = nil
		s.bufHead++
		s.bufN.Add(-1)
		k++
	}
	if k == len(out) {
		return k
	}
	s.advanceClock(now)
	if cap(s.scratch) < len(out)-k {
		//eiffel:allow(hotpath) scratch sized to the widest out seen, then reused
		s.scratch = make([]*shardq.Node, len(out)-k)
	}
	nodes := s.scratch[:len(out)-k]
	m := s.rt.DequeueBatch(^uint64(0), nodes)
	for i := 0; i < m; i++ {
		out[k] = pkt.FromSchedNode(nodes[i])
		k++
	}
	clear(nodes[:m]) // drop the handles: scratch must not pin released packets
	return k
}

// NextTimer implements Qdisc: "now" while any packet is eligible, the
// soonest per-shard limit-clock release when every backlogged engine is
// parked, ok=false when empty.
func (s *HierSharded) NextTimer(now int64) (int64, bool) {
	if s.bufHead < s.bufLen {
		return now, true
	}
	s.advanceClock(now)
	if _, ok := s.rt.MinRank(); ok {
		return now, true
	}
	if s.Len() == 0 {
		return 0, false
	}
	// Backlogged but nothing eligible: every engine parked its tenants.
	// Peek each engine's release clock under its shard lock — a producer
	// fallback may be enqueueing into the same engine concurrently.
	min, ok := int64(0), false
	for i, b := range s.backends {
		s.rt.WithShardLocked(i, func(shardq.Scheduler) {
			if t, tok := b.NextEvent(); tok && (!ok || t < min) {
				min, ok = t, true
			}
		})
	}
	if !ok {
		return 0, false
	}
	if min < now {
		min = now
	}
	return min, true
}

// Serve starts one supervised drain worker per consumer group; identical
// contract to MultiSharded.Serve.
func (s *HierSharded) Serve(clock func() int64, sinks []EgressSink, batch int) (stop func()) {
	srv := s.ServeWith(clock, sinks, ServeOptions{Batch: batch})
	return func() { srv.Stop() }
}

// ServeWith is Serve with the full supervision surface.
func (s *HierSharded) ServeWith(clock func() int64, sinks []EgressSink, opt ServeOptions) *Server {
	return startServer(s, &s.egressState, s.rt.Close, clock, sinks, opt)
}

// Close quiesces admission; see MultiSharded.Close.
func (s *HierSharded) Close() { lifecycleClose(&s.egressState, s.rt.Close) }

// Drain closes the front and runs the remaining backlog to the sinks —
// limit clocks open for the drain (the lifecycle drives the drain at the
// far horizon). See MultiSharded.Drain for the contract.
func (s *HierSharded) Drain(sinks []EgressSink, opt ServeOptions) DrainReport {
	if len(sinks) == s.NumGroups() {
		o := opt.withDefaults()
		s.drainBuf(func(ps []*pkt.Packet) {
			fs, _ := sinks[0].(FallibleSink)
			idx, panics := 0, 0
			for idx < len(ps) {
				if txStep(sinks[0], fs, ps, &idx, &o.Retry, &s.eg, o.OnDrop) {
					if panics++; o.MaxRestarts >= 0 && panics > o.MaxRestarts {
						disposeFailed(ps[idx:], &s.eg, o.OnDrop)
						idx = len(ps)
					}
				}
			}
		})
	}
	return lifecycleDrain(s, &s.egressState, s.rt.Close, sinks, opt)
}

// CloseForce closes the front and releases the remaining backlog —
// release buffer included — to the caller.
func (s *HierSharded) CloseForce(release func(*pkt.Packet)) DrainReport {
	s.drainBuf(func(ps []*pkt.Packet) {
		if release != nil {
			for _, p := range ps {
				release(p)
			}
		}
		s.released.Add(uint64(len(ps)))
	})
	return lifecycleCloseForce(s, &s.egressState, s.rt.Close, release)
}

// drainBuf empties the single-consumer release buffer through dispose.
// Exclusive access required (the Drain/CloseForce contract).
func (s *HierSharded) drainBuf(dispose func([]*pkt.Packet)) {
	if s.bufHead >= s.bufLen {
		return
	}
	ps := make([]*pkt.Packet, 0, s.bufLen-s.bufHead)
	for i := s.bufHead; i < s.bufLen; i++ {
		ps = append(ps, pkt.FromSchedNode(s.buf[i]))
		s.buf[i] = nil
	}
	s.bufN.Add(-int64(len(ps)))
	s.bufHead = s.bufLen
	dispose(ps)
}

// --- Single-threaded baseline: one locked whole-tree engine ---

// HierTree runs the same tenant spec as ONE engine — the whole-tree
// hClock deployment the sharded front is measured against (wrap it in
// Locked for the kernel-style global-lock deployment). It drives the
// exact same shardq.HierSched code as each shard does, with RateDiv 1, so
// the locked-vs-sharded comparison isolates the runtime, not the engine.
type HierTree struct {
	b       *shardq.HierSched
	tenants int
	name    string
}

// NewHierTree compiles spec (RateDiv forced to 1 — a single engine owns
// the full rates) into a single-engine qdisc.
func NewHierTree(spec shardq.HierSpec) (*HierTree, error) {
	spec.RateDiv = 1
	b, err := shardq.NewHierSched(spec)
	if err != nil {
		return nil, err
	}
	return &HierTree{b: b, tenants: len(spec.Tenants), name: "Eiffel tree(hclock)"}, nil
}

// Name implements Qdisc.
func (q *HierTree) Name() string { return q.name }

// Len implements Qdisc.
func (q *HierTree) Len() int { return q.b.Len() }

// Enqueue implements Qdisc.
func (q *HierTree) Enqueue(p *pkt.Packet, now int64) {
	q.b.SetNow(now)
	q.b.EnqueueAux(&p.SchedNode, p.Rank, uint64(int(uint32(p.Class))%q.tenants))
}

// Dequeue implements Qdisc.
func (q *HierTree) Dequeue(now int64) *pkt.Packet {
	q.b.SetNow(now)
	var one [1]*shardq.Node
	if q.b.DequeueBatch(^uint64(0), one[:]) == 0 {
		return nil
	}
	return pkt.FromSchedNode(one[0])
}

// NextTimer implements Qdisc: "now" while anything is eligible, else the
// earliest limit-clock release.
func (q *HierTree) NextTimer(now int64) (int64, bool) {
	if q.b.Len() == 0 {
		return 0, false
	}
	q.b.SetNow(now)
	if _, ok := q.b.Min(); ok {
		return now, true
	}
	//eiffel:allow(lockcheck) whole-tree baseline: HierTree has no shard lock — the Locked wrapper's mutex serializes every caller
	if t, ok := q.b.NextEvent(); ok {
		if t < now {
			t = now
		}
		return t, true
	}
	return 0, false
}
