package qdisc

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eiffel/internal/pkt"
)

// BatchDequeuer is implemented by qdiscs whose consumer can pop many
// release-eligible packets at once; the contention harness uses it to give
// batching qdiscs their intended drain path.
type BatchDequeuer interface {
	DequeueBatch(now int64, out []*pkt.Packet) int
}

// BatchEnqueuer is the producer-side twin: qdiscs that can admit a whole
// run of packets in one call (Sharded and ShapedSharded, which stage the
// run per shard and publish each shard's piece as one multi-slot ring
// claim). The harness's ProducerBatch knob routes enqueues through it.
type BatchEnqueuer interface {
	EnqueueBatch(ps []*pkt.Packet, now int64)
}

// ContentionOptions tunes how a contention replay drives the qdisc.
type ContentionOptions struct {
	// ProducerBatch admits each producer's packets in runs of this size
	// through the qdisc's EnqueueBatch, when it has one. Zero or one (or
	// a qdisc without batch admission) means per-packet Enqueue — the
	// PR-2 behavior, kept as the comparison baseline.
	ProducerBatch int
}

// horizon is the shaping horizon the contention qdiscs are built for.
const horizon = int64(2e9)

// buriedPrime strides release times across the horizon so successive
// packets from one producer land in well-separated buckets.
const buriedPrime = int64(999983)

// ContentionResult reports one contention run.
type ContentionResult struct {
	// Packets is the total number of packets pushed through the qdisc.
	Packets int
	// Elapsed is the wall time from first enqueue to last dequeue.
	Elapsed time.Duration
}

// Mpps returns million packets per second through the qdisc.
func (r ContentionResult) Mpps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Packets) / r.Elapsed.Seconds() / 1e6
}

// ContentionPackets pre-builds the workload RunContention replays: one
// packet set per producer, annotated with distinct flows (so sharded
// qdiscs spread them) and release times in the recent past (so the
// consumer is never throttled and the run measures queue+lock overhead
// only). Benchmarks build this once and replay it every iteration —
// packet allocation must not pollute the measurement.
func ContentionPackets(producers, perProducer int) [][]*pkt.Packet {
	sets := make([][]*pkt.Packet, producers)
	for w := range sets {
		pool := pkt.NewPool(perProducer) // pools are not shared: one per set
		set := make([]*pkt.Packet, perProducer)
		for i := range set {
			p := pool.Get()
			p.Flow = uint64(w*perProducer + i)
			p.Size = 1500
			// Release times spread over the full 2 s shaping horizon, as
			// paced traffic spreads them in the paper's evaluation — the
			// workload must exercise the whole bucket structure, not one
			// hot bucket. The consumer drains at now = horizon, so every
			// packet is eligible and throughput measures queue+lock work.
			p.SendAt = (int64(i)*buriedPrime + int64(w)) % (horizon - 1)
			set[i] = p
		}
		sets[w] = set
	}
	return sets
}

// EgressPackets builds the egress workload: like ContentionPackets, but
// with flowsPer multi-packet flows per producer (flow ranges disjoint
// across producers, so each flow's enqueue order is well defined) and
// release times that spread over the shaping horizon while increasing
// STRICTLY along each flow. Per-flow dequeue order through an exact-merge
// sharded qdisc is then fully determined — nondecreasing SendAt, FIFO
// within a bucket — so the group-fidelity replay can assert it packet by
// packet.
func EgressPackets(producers, perProducer, flowsPer int) [][]*pkt.Packet {
	sets := make([][]*pkt.Packet, producers)
	step := (horizon - 1) / int64(perProducer)
	if step <= 0 {
		step = 1
	}
	for w := range sets {
		pool := pkt.NewPool(perProducer) // pools are not shared: one per set
		set := make([]*pkt.Packet, perProducer)
		for i := range set {
			p := pool.Get()
			f := i % flowsPer
			p.Flow = uint64(w*flowsPer + f)
			p.Size = 1500
			// Strictly increasing in i, so also strictly increasing along
			// every flow (a flow's packets are the i ≡ f mod flowsPer
			// subsequence); the +w skew keeps producers out of lockstep
			// without reordering any flow. i*step stays below the horizon
			// by construction and w (≤ producers) is far below one step,
			// so every SendAt is in [0, horizon).
			p.SendAt = int64(i)*step + int64(w)
			set[i] = p
		}
		sets[w] = set
	}
	return sets
}

// ShapedPackets builds the shapedsched workload: the contention packet
// sets plus a deterministic per-packet priority annotation spread over
// [0, rankSpan) — uncorrelated with the release times, so shaping and
// scheduling exercise different orders.
func ShapedPackets(producers, perProducer int, rankSpan uint64) [][]*pkt.Packet {
	sets := ContentionPackets(producers, perProducer)
	const rankPrime = 1000003
	for w, set := range sets {
		for i, p := range set {
			p.Rank = (uint64(i)*rankPrime + uint64(w)*31) % rankSpan
		}
	}
	return sets
}

// BestOfReplays replays packets against q reps times on ONE instance and
// returns the best throughput in Mpps — the steady-state methodology
// every scaling-experiment row and example uses: a qdisc is empty after a
// full replay, so reuse measures warm rings and buckets with no per-rep
// construction garbage, and the max filters the scheduler/GC hiccups that
// dominate single runs on small machines.
func BestOfReplays(q Qdisc, packets [][]*pkt.Packet, reps int, opt ContentionOptions) float64 {
	best := 0.0
	for r := 0; r < reps; r++ {
		if m := ReplayContentionOpts(q, packets, opt).Mpps(); m > best {
			best = m
		}
	}
	return best
}

// PolicyPackets builds the policysched workload: one packet set per
// producer over disjoint flow ranges (so concurrent producers cannot race
// a flow's internal order), round-robin across flowsPer flows within each
// set. Every flow's packets carry pFabric-style decreasing remaining-size
// ranks, and Class alternates 0/1 so two-leaf programs (the hierarchical
// WFQ example) split the load across their classes.
func PolicyPackets(producers, perProducer, flowsPer int) [][]*pkt.Packet {
	sets := make([][]*pkt.Packet, producers)
	for w := range sets {
		pool := pkt.NewPool(perProducer) // pools are not shared: one per set
		set := make([]*pkt.Packet, perProducer)
		perFlow := (perProducer + flowsPer - 1) / flowsPer
		for i := range set {
			p := pool.Get()
			f := i % flowsPer
			p.Flow = uint64(w*flowsPer + f)
			p.Size = 1500
			p.Class = int32(f % 2)
			p.Rank = uint64(perFlow-i/flowsPer) * 1500 // remaining bytes
			set[i] = p
		}
		sets[w] = set
	}
	return sets
}

// ReplayFlowFidelity checks flow-local exactness for policy qdiscs: every
// set enqueues from its own goroutine (PolicyPackets keeps flows disjoint
// per set, so each flow's enqueue order is well defined), then one
// consumer drains everything. It returns how many packets came out and
// how many left their flow's enqueue order — a correct per-flow-ranking
// qdisc returns misorders == 0 no matter how shards interleave flows.
func ReplayFlowFidelity(q Qdisc, packets [][]*pkt.Packet, opt ContentionOptions) (released, misorders int) {
	expected := map[uint64][]uint64{}
	for _, set := range packets {
		for _, p := range set {
			expected[p.Flow] = append(expected[p.Flow], p.ID)
		}
	}
	var wg sync.WaitGroup
	for w := range packets {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			produce(q, packets[w], opt)
		}(w)
	}
	wg.Wait()

	pos := map[uint64]int{}
	count := func(p *pkt.Packet) {
		ids := expected[p.Flow]
		if i := pos[p.Flow]; i >= len(ids) || ids[i] != p.ID {
			misorders++
		}
		pos[p.Flow]++
		released++
	}
	now := horizon
	if bd, ok := q.(BatchDequeuer); ok {
		out := make([]*pkt.Packet, 1024)
		for {
			k := bd.DequeueBatch(now, out)
			if k == 0 {
				break
			}
			for _, p := range out[:k] {
				count(p)
			}
		}
	} else {
		for {
			p := q.Dequeue(now)
			if p == nil {
				break
			}
			count(p)
		}
	}
	return released, misorders
}

// ReplayPriorityFidelity checks the ordering half of the shapedsched
// acceptance: every set is enqueued from its own goroutine, and only after
// all producers finish does the consumer drain at now = horizon (so every
// packet is release-eligible and the global output order is fully
// determined by priorities). It returns how many packets came out and how
// many adjacent pairs inverted beyond the given priority granularity — a
// correct decoupled qdisc returns inversions == 0.
func ReplayPriorityFidelity(q Qdisc, packets [][]*pkt.Packet, gran uint64) (released, inversions int) {
	return ReplayPriorityFidelityOpts(q, packets, gran, ContentionOptions{})
}

// ReplayPriorityFidelityOpts is ReplayPriorityFidelity with the harness
// knobs applied — the fidelity guarantee must hold through the batched
// admission path exactly as through the per-packet one.
func ReplayPriorityFidelityOpts(q Qdisc, packets [][]*pkt.Packet, gran uint64, opt ContentionOptions) (released, inversions int) {
	var wg sync.WaitGroup
	for w := range packets {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			produce(q, packets[w], opt)
		}(w)
	}
	wg.Wait()

	now := horizon
	var last uint64
	count := func(p *pkt.Packet) {
		qr := p.Rank / gran
		if released > 0 && qr < last {
			inversions++
		}
		last = qr
		released++
	}
	if bd, ok := q.(BatchDequeuer); ok {
		out := make([]*pkt.Packet, 1024)
		for {
			k := bd.DequeueBatch(now, out)
			if k == 0 {
				break
			}
			for _, p := range out[:k] {
				count(p)
			}
		}
	} else {
		for {
			p := q.Dequeue(now)
			if p == nil {
				break
			}
			count(p)
		}
	}
	return released, inversions
}

// InversionStats is the approximation column of the experiment tables:
// rank-inversion accounting for one fully-eligible drain, measured against
// the exact oracle order. With every packet release-eligible the oracle
// replay is simply nondecreasing raw rank, so a running maximum over the
// drain sequence finds every inversion without materialising the oracle:
// a packet emerging with rank r below the running maximum M was overtaken
// by at least one higher-rank packet, an inversion of magnitude M-r rank
// units.
type InversionStats struct {
	// Released counts packets drained.
	Released int
	// Inversions counts packets that emerged below the running maximum.
	Inversions int
	// MaxMagnitude is the largest single inversion, in raw rank units —
	// the number an approximate backend's analytic bound caps.
	MaxMagnitude uint64
	// SumMagnitude accumulates every inversion's magnitude.
	SumMagnitude uint64
}

// AvgMagnitude returns the mean inversion magnitude, 0 when none.
func (s InversionStats) AvgMagnitude() float64 {
	if s.Inversions == 0 {
		return 0
	}
	return float64(s.SumMagnitude) / float64(s.Inversions)
}

// Note folds one drained rank into the accounting. runMax carries the
// running maximum between calls; feed ranks in drain order. Exported so
// the experiment harness can run the same accounting over raw scheduler
// backends, where there is no Qdisc to replay through.
func (s *InversionStats) Note(runMax *uint64, rank uint64) {
	if s.Released > 0 && rank < *runMax {
		s.Inversions++
		mag := *runMax - rank
		s.SumMagnitude += mag
		if mag > s.MaxMagnitude {
			s.MaxMagnitude = mag
		}
	} else {
		*runMax = rank
	}
	s.Released++
}

// ReplayInversions loads q from concurrent producers exactly as
// ReplayPriorityFidelityOpts does, then drains it fully eligible and
// returns the inversion accounting: count, maximum magnitude, and total
// magnitude against the exact oracle replay. Exact backends stay within
// bucket quantization; approximate backends must stay within their
// analytic bound (shardq.GradSchedBound, shardq.RIFOSchedBound) — the
// property tests assert both.
func ReplayInversions(q Qdisc, packets [][]*pkt.Packet, opt ContentionOptions) InversionStats {
	var wg sync.WaitGroup
	for w := range packets {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			produce(q, packets[w], opt)
		}(w)
	}
	wg.Wait()

	now := horizon
	var st InversionStats
	var runMax uint64
	if bd, ok := q.(BatchDequeuer); ok {
		out := make([]*pkt.Packet, 1024)
		for {
			k := bd.DequeueBatch(now, out)
			if k == 0 {
				break
			}
			for _, p := range out[:k] {
				st.Note(&runMax, p.Rank)
			}
		}
	} else {
		for {
			p := q.Dequeue(now)
			if p == nil {
				break
			}
			st.Note(&runMax, p.Rank)
		}
	}
	return st
}

// RunContention builds a fresh workload and replays it; see
// ReplayContention.
func RunContention(q Qdisc, producers, perProducer int) ContentionResult {
	return ReplayContention(q, ContentionPackets(producers, perProducer))
}

// enqueuer is the producer-side surface produce needs — satisfied by every
// Qdisc and by the multi-consumer egress fronts, which expose no
// single-consumer Dequeue.
type enqueuer interface {
	Enqueue(p *pkt.Packet, now int64)
}

// produce pushes one packet set through the qdisc, in set order, honoring
// the ProducerBatch knob.
func produce(q enqueuer, set []*pkt.Packet, opt ContentionOptions) {
	if be, ok := q.(BatchEnqueuer); ok && opt.ProducerBatch > 1 {
		for i := 0; i < len(set); i += opt.ProducerBatch {
			j := i + opt.ProducerBatch
			if j > len(set) {
				j = len(set)
			}
			be.EnqueueBatch(set[i:j], 0)
		}
		return
	}
	for _, p := range set {
		q.Enqueue(p, 0)
	}
}

// ReplayContention replays the §4 many-senders scenario against q with
// per-packet admission; see ReplayContentionOpts.
func ReplayContention(q Qdisc, packets [][]*pkt.Packet) ContentionResult {
	return ReplayContentionOpts(q, packets, ContentionOptions{})
}

// ReplayContentionOpts replays the §4 many-senders scenario against q: one
// goroutine per packet set enqueues its packets in order (per packet, or
// in ProducerBatch-sized runs through the qdisc's batch admission) while
// one consumer concurrently drains until every packet has come back out.
// The workload is identical for every qdisc, so Locked vs Sharded numbers
// are directly comparable — this is the repo's locked-vs-sharded
// experiment substrate. Packets must be detached (as they are after a full
// prior replay), so a benchmark can replay one workload repeatedly.
func ReplayContentionOpts(q Qdisc, packets [][]*pkt.Packet, opt ContentionOptions) ContentionResult {
	producers := len(packets)
	total := 0
	for _, set := range packets {
		total += len(set)
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			produce(q, packets[w], opt)
		}(w)
	}

	var producersDone atomic.Bool
	go func() { wg.Wait(); producersDone.Store(true) }()

	now := horizon // beyond every SendAt: everything is always eligible
	consumed := 0
	if bd, ok := q.(BatchDequeuer); ok {
		out := make([]*pkt.Packet, 1024)
		for consumed < total {
			k := bd.DequeueBatch(now, out)
			consumed += k
			if k == 0 {
				if producersDone.Load() && q.Len() == 0 && consumed < total {
					// Defensive: a correct qdisc can't get here.
					panic("qdisc: contention run lost packets")
				}
				runtime.Gosched()
			}
		}
	} else {
		for consumed < total {
			if p := q.Dequeue(now); p != nil {
				consumed++
				continue
			}
			if producersDone.Load() && q.Len() == 0 && consumed < total {
				panic("qdisc: contention run lost packets")
			}
			runtime.Gosched()
		}
	}
	elapsed := time.Since(start)
	wg.Wait()
	return ContentionResult{Packets: total, Elapsed: elapsed}
}
