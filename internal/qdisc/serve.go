package qdisc

import (
	"sync"
	"sync/atomic"
	"time"

	"eiffel/internal/pkt"
)

// This file is the supervised egress host: the Serve worker fleet with
// panic recovery, bounded restart, and a stall watchdog, plus the
// graceful stop that routes through the lifecycle drain. One worker per
// consumer group polls GroupDequeueBatch and disposes every popped
// batch through its group's sink — resiliently when the sink is
// fallible (TryTx), trusting it when it is not. A sink panic is
// recovered per step: the un-disposed remainder of the batch is
// re-offered, the group's restart budget burns down, and a group whose
// budget is exhausted is marked FAILED — its worker exits, its backlog
// stays queued for Stop's drain, and Health reports it so operators see
// the dead TX queue instead of silently losing 1/G of all flows.

// ServeOptions tunes a supervised Serve fleet; the zero value selects
// the defaults noted per field. The same options drive the lifecycle
// drain (Stop, front Drain), so a stop behaves exactly like the workers
// it replaces.
type ServeOptions struct {
	// Batch sizes each worker's drain scratch (default 64).
	Batch int
	// Retry bounds the fight against a refusing FallibleSink; see
	// RetryPolicy. Ignored for sinks that only implement Tx.
	Retry RetryPolicy
	// OnDrop, when non-nil, observes every packet the retry policy or a
	// failed sink gives up on (the packet is the callee's to recycle).
	// Called from worker goroutines; must be safe for the caller's
	// concurrency.
	OnDrop func(*pkt.Packet, DropReason)
	// MaxRestarts is each group's sink-panic budget: recoveries beyond it
	// mark the group failed and retire its worker. Default 8; negative
	// means unlimited.
	MaxRestarts int
	// StallWindow is the watchdog's sampling period: a group with backlog
	// but zero drain progress across a full window is flagged Stalled in
	// Health. Default 10ms; negative disables the watchdog.
	StallWindow time.Duration
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.Batch <= 0 {
		o.Batch = 64
	}
	if o.MaxRestarts == 0 {
		o.MaxRestarts = 8
	}
	if o.StallWindow == 0 {
		o.StallWindow = 10 * time.Millisecond
	}
	o.Retry = o.Retry.withDefaults()
	return o
}

// serverGroup is one group's supervision state. Padded so the workers'
// progress counters never false-share.
type serverGroup struct {
	progress atomic.Uint64 // packets disposed (tx'd + dropped)
	restarts atomic.Uint64 // panic recoveries consumed
	panics   atomic.Uint64 // sink panics observed (recovered or not)
	stalled  atomic.Bool   // watchdog: backlog with no progress for a window
	failed   atomic.Bool   // restart budget exhausted; worker retired

	lastSeen uint64 // watchdog-private progress sample
	_        [64]byte
}

// GroupHealth is one consumer group's supervision snapshot.
type GroupHealth struct {
	// Group is the consumer-group index.
	Group int
	// Backlog is the group's queued-but-undrained packet count.
	Backlog int
	// Progress is how many packets the group's worker has disposed.
	Progress uint64
	// Restarts is how many sink panics the worker recovered from.
	Restarts uint64
	// Panics is how many sink panics were observed in total.
	Panics uint64
	// Stalled: the watchdog saw backlog but no progress for a full
	// StallWindow. Clears itself when the group moves again.
	Stalled bool
	// Failed: the restart budget is exhausted and the worker has retired;
	// the group's backlog waits for Stop's drain.
	Failed bool
}

// Server is a running supervised egress fleet (see the fronts' Serve and
// ServeWith). Stop and StopForce are idempotent and safe from any
// goroutine; everything else is read-only.
type Server struct {
	d       groupDrainer
	es      *egressState
	rtClose func()
	clock   func() int64
	sinks   []EgressSink
	opt     ServeOptions

	halt     atomic.Bool
	wg       sync.WaitGroup
	groups   []serverGroup
	stopOnce sync.Once
	rep      DrainReport
}

// startServer spins up one supervised worker per consumer group plus the
// stall watchdog.
func startServer(d groupDrainer, es *egressState, rtClose func(),
	clock func() int64, sinks []EgressSink, opt ServeOptions) *Server {
	if len(sinks) != d.NumGroups() {
		panic("qdisc: Serve needs one sink per consumer group")
	}
	s := &Server{
		d: d, es: es, rtClose: rtClose, clock: clock,
		sinks: append([]EgressSink(nil), sinks...), opt: opt.withDefaults(),
		groups: make([]serverGroup, d.NumGroups()),
	}
	for g := 0; g < d.NumGroups(); g++ {
		s.wg.Add(1)
		go s.worker(g, s.sinks[g])
	}
	if s.opt.StallWindow > 0 {
		s.wg.Add(1)
		go s.watchdog()
	}
	return s
}

// worker is group g's drain loop: poll, dispose, recover. On halt it
// still disposes the batch it already popped — a popped packet is
// invisible to the lifecycle drain, so abandoning it would break
// conservation.
func (s *Server) worker(g int, sink EgressSink) {
	defer s.wg.Done()
	fs, _ := sink.(FallibleSink)
	gr := &s.groups[g]
	out := make([]*pkt.Packet, s.opt.Batch)
	k, idx := 0, 0
	for {
		if idx >= k {
			clear(out[:k]) // drop the handles: scratch must not pin disposed packets
			k, idx = 0, 0
			if s.halt.Load() {
				return
			}
			if k = s.d.GroupDequeueBatch(g, s.clock(), out); k == 0 {
				time.Sleep(serveIdleNap)
				continue
			}
		}
		before := idx
		panicked := txStep(sink, fs, out[:k], &idx, &s.opt.Retry, &s.es.eg, s.opt.OnDrop)
		if d := idx - before; d > 0 {
			gr.progress.Add(uint64(d))
		}
		if panicked {
			gr.panics.Add(1)
			if s.opt.MaxRestarts >= 0 && gr.restarts.Load() >= uint64(s.opt.MaxRestarts) {
				// Budget exhausted: dispose the remainder as failed drops so
				// nothing in scratch is lost, mark the group, retire.
				disposeFailed(out[idx:k], &s.es.eg, s.opt.OnDrop)
				gr.progress.Add(uint64(k - idx))
				clear(out[:k])
				gr.failed.Store(true)
				return
			}
			gr.restarts.Add(1)
		}
	}
}

// watchdog samples every group's progress counter every StallWindow and flags
// groups that hold backlog without draining any of it across a full
// window. It naps in short slices so Stop never waits a whole window.
func (s *Server) watchdog() {
	defer s.wg.Done()
	const nap = time.Millisecond
	for !s.halt.Load() {
		for slept := time.Duration(0); slept < s.opt.StallWindow && !s.halt.Load(); slept += nap {
			time.Sleep(nap)
		}
		if s.halt.Load() {
			return
		}
		for g := range s.groups {
			gr := &s.groups[g]
			cur := gr.progress.Load()
			stuck := cur == gr.lastSeen && s.d.GroupLen(g) > 0 && !gr.failed.Load()
			gr.stalled.Store(stuck)
			gr.lastSeen = cur
		}
	}
}

// Health snapshots every group's supervision state. Safe from any
// goroutine while the fleet runs.
func (s *Server) Health() []GroupHealth {
	out := make([]GroupHealth, len(s.groups))
	for g := range s.groups {
		gr := &s.groups[g]
		out[g] = GroupHealth{
			Group:    g,
			Backlog:  s.d.GroupLen(g),
			Progress: gr.progress.Load(),
			Restarts: gr.restarts.Load(),
			Panics:   gr.panics.Load(),
			Stalled:  gr.stalled.Load(),
			Failed:   gr.failed.Load(),
		}
	}
	return out
}

// Stop halts the fleet gracefully: workers finish their in-flight
// batches and exit, then the front closes and its remaining backlog
// drains to the same sinks under the same options (failed groups
// included, with a fresh panic budget). Idempotent; returns the
// conservation report at quiescence.
func (s *Server) Stop() DrainReport {
	s.stopOnce.Do(func() {
		s.halt.Store(true)
		s.wg.Wait()
		s.rep = lifecycleDrain(s.d, s.es, s.rtClose, s.sinks, s.opt)
	})
	return s.rep
}

// StopForce halts the fleet and releases the remaining backlog to the
// caller instead of the sinks — the fast shutdown for when the sinks
// themselves are gone. release (when non-nil) sees every packet, e.g.
// pool.Put; it runs on the calling goroutine only, so a non-concurrent
// pool is safe. Idempotent with Stop (whichever runs first wins).
func (s *Server) StopForce(release func(*pkt.Packet)) DrainReport {
	s.stopOnce.Do(func() {
		s.halt.Store(true)
		s.wg.Wait()
		s.rep = lifecycleCloseForce(s.d, s.es, s.rtClose, release)
	})
	return s.rep
}
