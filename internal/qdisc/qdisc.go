// Package qdisc recreates the kernel deployment of §4/§5.1.1: three
// queuing disciplines that shape per-flow paced traffic — FQ/pacing over a
// red-black tree with flow garbage collection (the Linux fq qdisc Eiffel is
// compared against), a Carousel-style timing wheel polled by a
// fixed-interval timer, and the Eiffel qdisc over a cFFS whose timer is
// armed exactly at the soonest deadline — plus a host runner that replays a
// neper-like many-flow workload over a virtual clock while metering the
// real CPU nanoseconds each qdisc burns, split into enqueue-side ("system")
// and timer/dequeue-side ("softirq") work, which is precisely the
// decomposition of Figures 9 and 10.
package qdisc

import (
	"eiffel/internal/cmpq"
	"eiffel/internal/pkt"
	"eiffel/internal/queue"
	"eiffel/internal/wheel"
)

// Qdisc is the kernel queuing-discipline contract. Packets arrive with
// SendAt already stamped (the socket's pacing timestamp, per
// SO_MAX_PACING_RATE); the qdisc must not release a packet before it.
type Qdisc interface {
	// Enqueue admits one packet.
	Enqueue(p *pkt.Packet, now int64)
	// Dequeue returns one packet whose release time has arrived, or nil.
	Dequeue(now int64) *pkt.Packet
	// NextTimer returns when the qdisc next needs service. ok=false means
	// it is empty. Carousel answers now when the wheel already holds an
	// overdue backlog and now+granularity otherwise — it cannot know its
	// soonest FUTURE deadline (§2: no ExtractMin on a timing wheel) —
	// whereas Eiffel answers the exact deadline.
	NextTimer(now int64) (int64, bool)
	// Len returns queued packets.
	Len() int
	// Name labels the qdisc in result tables.
	Name() string
}

// --- Eiffel qdisc ---

// Eiffel is the paper's qdisc: a time-indexed shaper over a bucketed
// integer priority queue (the evaluation runs a cFFS with 20k buckets over
// a 2 s horizon; only the shaper is used). The backend is pluggable so the
// ablation benches can swap in the circular approximate gradient queue.
type Eiffel struct {
	q    queue.PQ
	name string
}

// NewEiffel returns an Eiffel qdisc on a cFFS with the given bucket count
// and horizon. Granularity = horizon / (2*buckets).
func NewEiffel(buckets int, horizonNs int64, start int64) *Eiffel {
	return &Eiffel{q: queue.New(queue.KindCFFS, eiffelCfg(buckets, horizonNs, start)), name: "Eiffel"}
}

// NewEiffelApprox returns an Eiffel qdisc whose shaper is a circular
// approximate gradient queue — the moving-range/uniform-occupancy corner
// of the Figure 20 guide.
func NewEiffelApprox(buckets int, horizonNs int64, start int64) *Eiffel {
	return &Eiffel{q: queue.New(queue.KindCApprox, eiffelCfg(buckets, horizonNs, start)), name: "Eiffel(approx)"}
}

func eiffelCfg(buckets int, horizonNs, start int64) queue.Config {
	gran := uint64(horizonNs) / (2 * uint64(buckets))
	if gran == 0 {
		gran = 1
	}
	return queue.Config{NumBuckets: buckets, Granularity: gran, Start: uint64(start)}
}

// Name implements Qdisc.
func (e *Eiffel) Name() string { return e.name }

// Len implements Qdisc.
func (e *Eiffel) Len() int { return e.q.Len() }

// Enqueue implements Qdisc.
func (e *Eiffel) Enqueue(p *pkt.Packet, _ int64) {
	e.q.Enqueue(&p.TimerNode, uint64(p.SendAt))
}

// Dequeue implements Qdisc.
func (e *Eiffel) Dequeue(now int64) *pkt.Packet {
	r, ok := e.q.PeekMin()
	if !ok || int64(r) > now {
		return nil
	}
	return pkt.FromTimerNode(e.q.DequeueMin())
}

// NextTimer implements Qdisc: SoonestDeadline() straight off the cFFS
// index — the exact-timer half of the Figure 10 comparison.
func (e *Eiffel) NextTimer(now int64) (int64, bool) {
	r, ok := e.q.PeekMin()
	if !ok {
		return 0, false
	}
	t := int64(r)
	if t < now {
		t = now
	}
	return t, true
}

// --- Carousel qdisc ---

// Carousel wraps a timing wheel, per the authors' recommendation the paper
// follows: "all packets are queued in a timing wheel; a timer fires every
// time instant (according to the granularity of the timing wheel) and
// checks whether it has packets that should be sent".
type Carousel struct {
	w    *wheel.Wheel
	gran int64
}

// NewCarousel returns a Carousel qdisc with the given slot count and
// horizon. Granularity = horizon / slots.
func NewCarousel(slots int, horizonNs int64, start int64) *Carousel {
	gran := horizonNs / int64(slots)
	if gran <= 0 {
		gran = 1
	}
	return &Carousel{
		w:    wheel.New(slots, uint64(gran), uint64(start)),
		gran: gran,
	}
}

// Name implements Qdisc.
func (c *Carousel) Name() string { return "Carousel" }

// Len implements Qdisc.
func (c *Carousel) Len() int { return c.w.Len() }

// Enqueue implements Qdisc.
func (c *Carousel) Enqueue(p *pkt.Packet, _ int64) {
	c.w.Schedule(&p.TimerNode, uint64(p.SendAt))
}

// Dequeue implements Qdisc.
func (c *Carousel) Dequeue(now int64) *pkt.Packet {
	n := c.w.PopExpired(uint64(now))
	if n == nil {
		return nil
	}
	return pkt.FromTimerNode(n)
}

// NextTimer implements Qdisc: one tick per wheel granularity while the
// wheel only holds future slots — the fixed-interval firing that shows up
// as softirq overhead in Fig 10 — but "now" when the wheel already holds
// an overdue backlog (late arrivals clamped into the current slot, or a
// host that fell behind). Without the overdue check the runner would idle
// a full granularity before servicing packets that are already due, which
// both delays release and mis-attributes idle time in the Figure 9/10
// decomposition.
func (c *Carousel) NextTimer(now int64) (int64, bool) {
	if c.w.Len() == 0 {
		return 0, false
	}
	if c.w.HasExpired(uint64(now)) {
		return now, true
	}
	return now + c.gran, true
}

// --- FQ/pacing qdisc ---

// fqFlow mirrors the Linux fq qdisc's per-flow state: a FIFO of packets,
// the time the next packet may leave, and idle tracking for the garbage
// collector.
type fqFlow struct {
	id         uint64
	ring       []*pkt.Packet
	head, n    int
	nextTx     int64
	lastActive int64
	node       *cmpq.RBNode // position in the throttled tree
}

func (f *fqFlow) push(p *pkt.Packet) {
	if f.n == len(f.ring) {
		size := len(f.ring) * 2
		if size == 0 {
			size = 4
		}
		ring := make([]*pkt.Packet, size)
		for i := 0; i < f.n; i++ {
			ring[i] = f.ring[(f.head+i)%len(f.ring)]
		}
		f.ring, f.head = ring, 0
	}
	f.ring[(f.head+f.n)%len(f.ring)] = p
	f.n++
}

func (f *fqFlow) pop() *pkt.Packet {
	p := f.ring[f.head]
	f.ring[f.head] = nil
	f.head = (f.head + 1) % len(f.ring)
	f.n--
	return p
}

// FQ models the Linux fq/pacing qdisc: flows hang off a hash map, paced
// flows are ordered in a red-black tree by their next transmission time,
// and a garbage collector continuously reclaims idle flows — the
// "complicated data structure ... continuous garbage collection ...
// RB-trees" overhead §5.1.1 attributes FQ's cost to.
type FQ struct {
	flows   map[uint64]*fqFlow
	tree    *cmpq.RBTree
	gcRing  []*fqFlow
	gcPos   int
	backlog int

	// GCIdleNs is the idle age after which a flow is reclaimed (Linux
	// default ~3 s).
	GCIdleNs int64

	gcReclaimed uint64
}

// NewFQ returns an FQ/pacing qdisc.
func NewFQ() *FQ {
	return &FQ{
		flows:    make(map[uint64]*fqFlow),
		tree:     cmpq.NewRBTree(),
		GCIdleNs: 3e9,
	}
}

// Name implements Qdisc.
func (q *FQ) Name() string { return "FQ" }

// Len implements Qdisc.
func (q *FQ) Len() int { return q.backlog }

// Flows returns the number of tracked flows (live + idle awaiting GC).
func (q *FQ) Flows() int { return len(q.flows) }

// Enqueue implements Qdisc.
func (q *FQ) Enqueue(p *pkt.Packet, now int64) {
	f := q.flows[p.Flow]
	if f == nil {
		f = &fqFlow{id: p.Flow}
		q.flows[p.Flow] = f
		q.gcRing = append(q.gcRing, f)
	}
	f.lastActive = now
	f.push(p)
	q.backlog++
	if f.n == 1 {
		// Flow becomes schedulable: insert by its head's release time.
		f.nextTx = p.SendAt
		f.node = q.tree.Insert(uint64(f.nextTx), f)
	}
	q.gcScan(now)
}

// gcScan models fq's incremental garbage collector: every enqueue probes a
// few flows for idleness. With thousands of live flows this is pure
// overhead — exactly the cost the paper measures.
func (q *FQ) gcScan(now int64) {
	for i := 0; i < 3 && len(q.gcRing) > 0; i++ {
		q.gcPos++
		if q.gcPos >= len(q.gcRing) {
			q.gcPos = 0
		}
		f := q.gcRing[q.gcPos]
		if f.n == 0 && now-f.lastActive > q.GCIdleNs {
			delete(q.flows, f.id)
			last := len(q.gcRing) - 1
			q.gcRing[q.gcPos] = q.gcRing[last]
			q.gcRing = q.gcRing[:last]
			q.gcReclaimed++
		}
	}
}

// Dequeue implements Qdisc.
func (q *FQ) Dequeue(now int64) *pkt.Packet {
	m := q.tree.Min()
	if m == nil || int64(m.Key) > now {
		return nil
	}
	f := m.Value.(*fqFlow)
	q.tree.Delete(m)
	f.node = nil
	p := f.pop()
	q.backlog--
	f.lastActive = now
	if f.n > 0 {
		// Re-key the flow at its next head's release time: the per-packet
		// O(log n) tree churn of kernel pacing.
		f.nextTx = f.ring[f.head].SendAt
		f.node = q.tree.Insert(uint64(f.nextTx), f)
	}
	return p
}

// NextTimer implements Qdisc: the throttled tree's minimum key.
func (q *FQ) NextTimer(now int64) (int64, bool) {
	m := q.tree.Min()
	if m == nil {
		return 0, false
	}
	t := int64(m.Key)
	if t < now {
		t = now
	}
	return t, true
}
