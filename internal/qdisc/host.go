package qdisc

import (
	"time"

	"eiffel/internal/pkt"
)

// HostConfig describes the Figure 9/10 workload: many TCP flows, each
// paced to aggregate/flows bps (SO_MAX_PACING_RATE), TSQ-limited to a
// couple of segments inside the qdisc, replayed over a virtual clock.
type HostConfig struct {
	// Flows is the number of concurrent paced flows (paper: 20k).
	Flows int
	// AggregateBps is the total target rate (paper: 24 Gbps).
	AggregateBps uint64
	// PacketSize is the segment size (default 1500).
	PacketSize uint32
	// SimSeconds is the simulated duration (paper: 100 s).
	SimSeconds int
	// TSQLimit caps in-qdisc packets per flow (default 2, like TCP Small
	// Queues).
	TSQLimit int
	// TimerDispatchNs models the fixed kernel cost of taking one hrtimer
	// interrupt (context switch into softirq). Default 1500 ns, in line
	// with measured hrtimer overhead on server-class x86; the *relative*
	// Fig 10 result only needs this to be identical across qdiscs.
	TimerDispatchNs int64
	// LatenessToleranceNs is the release lateness still counted as
	// on-time (default 150 us, one ~100 us shaping bucket plus slack).
	LatenessToleranceNs int64
}

func (c *HostConfig) defaults() {
	if c.PacketSize == 0 {
		c.PacketSize = 1500
	}
	if c.TSQLimit == 0 {
		c.TSQLimit = 2
	}
	if c.TimerDispatchNs == 0 {
		c.TimerDispatchNs = 1500
	}
	if c.SimSeconds == 0 {
		c.SimSeconds = 10
	}
	if c.LatenessToleranceNs == 0 {
		c.LatenessToleranceNs = 150_000
	}
}

// HostResult reports metered CPU cost per simulated second.
type HostResult struct {
	// Qdisc names the discipline.
	Qdisc string
	// CoresSamples holds one "cores used for networking" sample per
	// simulated second: real CPU ns consumed / 1e9.
	CoresSamples []float64
	// SysSamples and IRQSamples split each sample into enqueue-side
	// (syscall path) and timer/dequeue-side (softirq path) cores.
	SysSamples []float64
	IRQSamples []float64
	// Packets actually released.
	Packets uint64
	// TimerFires counts timer interrupts taken.
	TimerFires uint64
	// OnTimeFrac is the fraction of packets released within one wheel/
	// bucket granularity of their pacing timestamp (shaping fidelity).
	OnTimeFrac float64
	// MaxLateNs is the worst release lateness observed.
	MaxLateNs int64
}

// hostFlow is one paced, TSQ-limited flow.
type hostFlow struct {
	id       uint64
	nextFree int64 // pacing clock
	inFlight int
	gapNs    int64
}

// RunHost replays the workload against q and meters real CPU time. The
// virtual clock advances from timer fire to timer fire (exactly how an
// event-driven kernel host behaves); the wall-clock nanoseconds spent
// inside qdisc code are accumulated into per-simulated-second samples.
func RunHost(q Qdisc, cfg HostConfig) HostResult {
	cfg.defaults()
	res := HostResult{Qdisc: q.Name()}

	perFlow := cfg.AggregateBps / uint64(cfg.Flows)
	gap := int64(uint64(cfg.PacketSize) * 8 * 1e9 / perFlow)
	flows := make([]hostFlow, cfg.Flows)
	for i := range flows {
		flows[i] = hostFlow{id: uint64(i + 1), gapNs: gap}
	}
	pool := pkt.NewPool(cfg.Flows * cfg.TSQLimit)

	var sysNs, irqNs int64 // metered wall time this sample
	var now int64

	// stamp computes the pacing timestamp, as the socket layer does.
	enqueueOne := func(f *hostFlow) {
		p := pool.Get()
		p.Flow = f.id
		p.Size = cfg.PacketSize
		start := f.nextFree
		if start < now {
			start = now
		}
		p.SendAt = start
		f.nextFree = start + f.gapNs
		f.inFlight++
		t0 := time.Now()
		q.Enqueue(p, now)
		sysNs += time.Since(t0).Nanoseconds()
	}

	// Prime: every flow pushes its TSQ allowance.
	for i := range flows {
		for j := 0; j < cfg.TSQLimit; j++ {
			enqueueOne(&flows[i])
		}
	}

	horizon := int64(cfg.SimSeconds) * 1e9
	sampleEnd := int64(1e9)
	onTime := uint64(0)
	var maxLate int64
	released := make([]*pkt.Packet, 0, 1024)

	for now < horizon {
		next, ok := q.NextTimer(now)
		if !ok {
			break
		}
		if next < now {
			next = now
		}
		// Cross sample boundaries with zero-cost idle time.
		for next >= sampleEnd {
			res.CoresSamples = append(res.CoresSamples, float64(sysNs+irqNs)/1e9)
			res.SysSamples = append(res.SysSamples, float64(sysNs)/1e9)
			res.IRQSamples = append(res.IRQSamples, float64(irqNs)/1e9)
			sysNs, irqNs = 0, 0
			sampleEnd += 1e9
			if sampleEnd > horizon+1e9 {
				break
			}
		}
		now = next
		res.TimerFires++
		irqNs += cfg.TimerDispatchNs

		// Softirq: drain everything due, then let TSQ refill (the
		// skb-freed callback re-admitting the next segment).
		t0 := time.Now()
		released = released[:0]
		for {
			p := q.Dequeue(now)
			if p == nil {
				break
			}
			released = append(released, p)
		}
		irqNs += time.Since(t0).Nanoseconds()

		for _, p := range released {
			res.Packets++
			late := now - p.SendAt
			if late <= cfg.LatenessToleranceNs {
				onTime++
			}
			if late > maxLate {
				maxLate = late
			}
			f := &flows[p.Flow-1]
			f.inFlight--
			pool.Put(p)
			if now < horizon {
				enqueueOne(f)
			}
		}
	}
	if res.Packets > 0 {
		res.OnTimeFrac = float64(onTime) / float64(res.Packets)
	}
	res.MaxLateNs = maxLate
	return res
}
