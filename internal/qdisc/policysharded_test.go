package qdisc_test

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"eiffel/internal/pkt"
	"eiffel/internal/qdisc"
)

// The equivalence suites run the canonical programs the experiment and
// examples replay, so what ships is what is proven order-exact.
const (
	pfabricSpec = qdisc.PolicySpecPFabric
	lqfSpec     = qdisc.PolicySpecLQF
	hwfqSpec    = qdisc.PolicySpecHWFQ
)

// policyWorkload builds a deterministic random replay: packets of nFlows
// flows in a shuffled global order, each flow's packets carrying pFabric-
// style decreasing remaining-size ranks and FIFO-consistent IDs.
func policyWorkload(t testing.TB, rng *rand.Rand, nFlows, perFlow int) []*pkt.Packet {
	t.Helper()
	pool := pkt.NewPool(nFlows * perFlow)
	order := make([]uint64, 0, nFlows*perFlow)
	for f := 0; f < nFlows; f++ {
		for j := 0; j < perFlow; j++ {
			order = append(order, uint64(f))
		}
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	sent := make([]int, nFlows)
	ps := make([]*pkt.Packet, len(order))
	for i, f := range order {
		p := pool.Get()
		p.Flow = f
		p.Size = 1500
		p.Class = int32(f % 2)
		p.Rank = uint64(perFlow-sent[f]) * 1500 // remaining bytes, decreasing
		sent[f]++
		ps[i] = p
	}
	return ps
}

// drainIDsByFlow replays ps into q sequentially, drains it fully, and
// returns each flow's dequeue sequence of packet IDs.
func drainIDsByFlow(t *testing.T, q qdisc.Qdisc, ps []*pkt.Packet) map[uint64][]uint64 {
	t.Helper()
	for _, p := range ps {
		q.Enqueue(p, 0)
	}
	got := map[uint64][]uint64{}
	released := 0
	for {
		p := q.Dequeue(0)
		if p == nil {
			break
		}
		got[p.Flow] = append(got[p.Flow], p.ID)
		released++
	}
	if released != len(ps) {
		t.Fatalf("%s released %d of %d packets", q.Name(), released, len(ps))
	}
	return got
}

// TestPolicyShardedFlowOrderMatchesLockedTree is the flow-local exactness
// property: under the same replay, PolicySharded's per-flow dequeue order
// is identical to the single locked pifo.Tree's, for every policy —
// per-flow ranking and on-dequeue transactions run shard-confined, and a
// flow never spans shards, so sharding cannot reorder a flow.
func TestPolicyShardedFlowOrderMatchesLockedTree(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec string
	}{
		{"pfabric", pfabricSpec},
		{"lqf", lqfSpec},
		{"hwfq", hwfqSpec},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 5; trial++ {
				nFlows := 2 + rng.Intn(40)
				perFlow := 1 + rng.Intn(30)
				ps := policyWorkload(t, rng, nFlows, perFlow)

				tree, err := qdisc.NewPolicyTree(tc.spec, "")
				if err != nil {
					t.Fatalf("NewPolicyTree: %v", err)
				}
				want := drainIDsByFlow(t, tree, ps)

				sh, err := qdisc.NewPolicySharded(qdisc.PolicyShardedOptions{
					Policy: tc.spec, Shards: 8,
				})
				if err != nil {
					t.Fatalf("NewPolicySharded: %v", err)
				}
				got := drainIDsByFlow(t, sh, ps)

				if len(got) != len(want) {
					t.Fatalf("trial %d: flow sets differ: %d vs %d", trial, len(got), len(want))
				}
				for f, ids := range want {
					g := got[f]
					if len(g) != len(ids) {
						t.Fatalf("trial %d: flow %d released %d packets, want %d", trial, f, len(g), len(ids))
					}
					for i := range ids {
						if g[i] != ids[i] {
							t.Fatalf("trial %d: flow %d position %d: packet %d, want %d",
								trial, f, i, g[i], ids[i])
						}
					}
				}
			}
		})
	}
}

// TestPolicyShardedWFQShareError bounds the cross-shard fairness error of
// the hierarchical WFQ program: with both classes continuously backlogged,
// serving half the backlog must split 3:1 within a small tolerance — on
// the locked tree (near-exact) and on the sharded runtime, whose per-shard
// virtual-time domains merge approximately.
func TestPolicyShardedWFQShareError(t *testing.T) {
	const (
		flowsPerClass = 64
		perFlow       = 50
		wantGold      = 0.75 // weight 3 of 4
	)
	rng := rand.New(rand.NewSource(11))
	ps := policyWorkload(t, rng, 2*flowsPerClass, perFlow) // Class = flow%2

	shareError := func(q qdisc.Qdisc) float64 {
		for _, p := range ps {
			q.Enqueue(p, 0)
		}
		var gold, total int
		for total < len(ps)/2 {
			p := q.Dequeue(0)
			if p == nil {
				t.Fatalf("%s stalled after %d packets", q.Name(), total)
			}
			if p.Class == 0 {
				gold++
			}
			total++
		}
		// Drain the rest so the packets detach for the next run.
		for q.Dequeue(0) != nil {
		}
		err := float64(gold)/float64(total) - wantGold
		if err < 0 {
			err = -err
		}
		return err
	}

	tree, err := qdisc.NewPolicyTree(hwfqSpec, "")
	if err != nil {
		t.Fatalf("NewPolicyTree: %v", err)
	}
	if e := shareError(tree); e > 0.05 {
		t.Fatalf("locked tree WFQ share error %.3f > 0.05", e)
	}

	sh, err := qdisc.NewPolicySharded(qdisc.PolicyShardedOptions{Policy: hwfqSpec, Shards: 8})
	if err != nil {
		t.Fatalf("NewPolicySharded: %v", err)
	}
	if e := shareError(sh); e > 0.10 {
		t.Fatalf("sharded WFQ share error %.3f > 0.10", e)
	}
}

// TestPolicyShardedConcurrentProducers drives the lock-free admission path
// from many goroutines (disjoint flow sets, so per-flow order stays
// deterministic) against a concurrently draining consumer, and asserts
// nothing is lost, nothing duplicates, and every flow still releases in
// its producer's enqueue order.
func TestPolicyShardedConcurrentProducers(t *testing.T) {
	const (
		producers = 4
		flowsEach = 16
		perFlow   = 64
	)
	sh, err := qdisc.NewPolicySharded(qdisc.PolicyShardedOptions{
		Policy: pfabricSpec, Shards: 4, RingBits: 6, // small rings: exercise fallback
	})
	if err != nil {
		t.Fatalf("NewPolicySharded: %v", err)
	}

	sets := make([][]*pkt.Packet, producers)
	want := map[uint64][]uint64{}
	for w := range sets {
		rng := rand.New(rand.NewSource(int64(100 + w)))
		ps := policyWorkload(t, rng, flowsEach, perFlow)
		for _, p := range ps {
			p.Flow += uint64(w * flowsEach) // disjoint flow ranges per producer
			want[p.Flow] = append(want[p.Flow], p.ID)
		}
		sets[w] = ps
	}
	total := producers * flowsEach * perFlow

	var wg sync.WaitGroup
	for w := range sets {
		wg.Add(1)
		go func(set []*pkt.Packet) {
			defer wg.Done()
			for i, p := range set {
				if i%3 == 0 {
					sh.EnqueueBatch(set[i:i+1], 0)
					continue
				}
				sh.Enqueue(p, 0)
			}
		}(sets[w])
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	got := map[uint64][]uint64{}
	released := 0
	out := make([]*pkt.Packet, 256)
	for released < total {
		k := sh.DequeueBatch(0, out)
		if k == 0 {
			select {
			case <-done:
				if sh.Len() == 0 && released < total {
					t.Fatalf("lost packets: released %d of %d", released, total)
				}
			default:
			}
			continue
		}
		for _, p := range out[:k] {
			got[p.Flow] = append(got[p.Flow], p.ID)
			released++
		}
	}
	for f, ids := range want {
		g := got[f]
		if len(g) != len(ids) {
			t.Fatalf("flow %d: released %d packets, want %d", f, len(g), len(ids))
		}
		for i := range ids {
			if g[i] != ids[i] {
				t.Fatalf("flow %d position %d: packet %d, want %d", f, i, g[i], ids[i])
			}
		}
	}
}

// TestNewPolicyShardedErrors covers the construction error surface: bad
// programs and bad leaf selections must fail loudly, not at first packet.
func TestNewPolicyShardedErrors(t *testing.T) {
	cases := []struct {
		name string
		opt  qdisc.PolicyShardedOptions
		want string
	}{
		{"empty program", qdisc.PolicyShardedOptions{Policy: ""}, "no root"},
		{"bad grammar", qdisc.PolicyShardedOptions{Policy: "root ranker=nope"}, "unknown child ranker"},
		{"no leaf", qdisc.PolicyShardedOptions{Policy: "root ranker=wfq"}, "no leaf"},
		{"unknown leaf name", qdisc.PolicyShardedOptions{Policy: pfabricSpec, Leaf: "missing"}, "no class"},
		{"leaf is internal", qdisc.PolicyShardedOptions{Policy: hwfqSpec, Leaf: "gold"}, "not a leaf"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := qdisc.NewPolicySharded(tc.opt)
			if err == nil {
				t.Fatalf("NewPolicySharded succeeded (%v), want error containing %q", q, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// And the happy path with an explicit leaf still works.
	if _, err := qdisc.NewPolicySharded(qdisc.PolicyShardedOptions{Policy: hwfqSpec, Leaf: "gold0"}); err != nil {
		t.Fatalf("explicit leaf: %v", err)
	}
}

// TestPolicyShardedClockAdvanceConcurrent is the regression test for a
// data race: the consumer's clock propagation (advanceClock -> setNow)
// used to write backend state lock-free while producers whose rings
// filled were flushing into the same backend under the shard mutex. Tiny
// rings force the fallback path, and the consumer advances now on every
// drain so setNow always fires; the race detector (CI's -race job runs
// this package) fails on any unsynchronized touch.
func TestPolicyShardedClockAdvanceConcurrent(t *testing.T) {
	const (
		producers = 4
		perProd   = 2000
	)
	sh, err := qdisc.NewPolicySharded(qdisc.PolicyShardedOptions{
		Policy: pfabricSpec, Shards: 2, RingBits: 4,
	})
	if err != nil {
		t.Fatalf("NewPolicySharded: %v", err)
	}
	pool := pkt.NewPool(producers * perProd)
	sets := make([][]*pkt.Packet, producers)
	for w := range sets {
		set := make([]*pkt.Packet, perProd)
		for i := range set {
			p := pool.Get()
			p.Flow = uint64(w*64 + i%64)
			p.Rank = uint64((perProd - i) * 100)
			set[i] = p
		}
		sets[w] = set
	}

	var wg sync.WaitGroup
	for w := range sets {
		wg.Add(1)
		go func(set []*pkt.Packet) {
			defer wg.Done()
			for _, p := range set {
				sh.Enqueue(p, 0)
			}
		}(sets[w])
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	released, now := 0, int64(0)
	out := make([]*pkt.Packet, 64)
	for released < producers*perProd {
		now++ // every drain advances the clock: setNow fires each batch
		released += sh.DequeueBatch(now, out)
		if _, ok := sh.NextTimer(now); !ok {
			select {
			case <-done:
				if sh.Len() == 0 && released < producers*perProd {
					t.Fatalf("lost packets: %d of %d", released, producers*perProd)
				}
			default:
			}
		}
	}
}
