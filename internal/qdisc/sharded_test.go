package qdisc

import (
	"runtime"
	"sync"
	"testing"

	"eiffel/internal/pkt"
)

func TestShardedName(t *testing.T) {
	q := NewSharded(ShardedOptions{Shards: 4, Buckets: 1024, HorizonNs: 2e9})
	if q.Name() != "Eiffel+shards" {
		t.Fatalf("Name = %q", q.Name())
	}
	if q.NumShards() != 4 {
		t.Fatalf("NumShards = %d", q.NumShards())
	}
}

// TestShardedShaping checks Qdisc shaping semantics: packets do not come
// out before their release bucket, empty means (0, false) timers, and
// NextTimer reports the soonest deadline across shards.
func TestShardedShaping(t *testing.T) {
	q := NewSharded(ShardedOptions{Shards: 4, Buckets: 1000, HorizonNs: 2000, Start: 0})
	// Granularity = 2000/(2*1000) = 1 ns per bucket: exact ranks.
	if _, ok := q.NextTimer(0); ok {
		t.Fatal("NextTimer ok on empty qdisc")
	}
	pool := pkt.NewPool(8)
	sendAts := []int64{900, 300, 600}
	for i, at := range sendAts {
		p := pool.Get()
		p.Flow = uint64(i * 97)
		p.SendAt = at
		q.Enqueue(p, 0)
	}
	if got := q.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if next, ok := q.NextTimer(0); !ok || next != 300 {
		t.Fatalf("NextTimer = (%d, %v), want (300, true)", next, ok)
	}
	if p := q.Dequeue(299); p != nil {
		t.Fatalf("Dequeue(299) released SendAt=%d early", p.SendAt)
	}
	for _, want := range []int64{300, 600, 900} {
		p := q.Dequeue(1000)
		if p == nil || p.SendAt != want {
			t.Fatalf("Dequeue = %v, want SendAt %d", p, want)
		}
	}
	if p := q.Dequeue(1000); p != nil {
		t.Fatal("Dequeue non-nil on empty qdisc")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

// TestShardedBufferedTimer checks that packets sitting in the release
// buffer keep NextTimer and Len honest.
func TestShardedBufferedTimer(t *testing.T) {
	q := NewSharded(ShardedOptions{Shards: 2, Buckets: 1000, HorizonNs: 2000, Batch: 8})
	pool := pkt.NewPool(8)
	for i := 0; i < 4; i++ {
		p := pool.Get()
		p.Flow = uint64(i)
		p.SendAt = 10
		q.Enqueue(p, 0)
	}
	// First Dequeue batches all four eligible packets; three stay buffered.
	if p := q.Dequeue(100); p == nil {
		t.Fatal("Dequeue(100) = nil")
	}
	if got := q.Len(); got != 3 {
		t.Fatalf("Len = %d with 3 buffered, want 3", got)
	}
	if next, ok := q.NextTimer(100); !ok || next != 100 {
		t.Fatalf("NextTimer with buffered packets = (%d, %v), want (100, true)", next, ok)
	}
}

func TestShardedDequeueBatch(t *testing.T) {
	q := NewSharded(ShardedOptions{Shards: 4, Buckets: 1000, HorizonNs: 2000, Batch: 4})
	pool := pkt.NewPool(32)
	for i := 0; i < 20; i++ {
		p := pool.Get()
		p.Flow = uint64(i)
		p.SendAt = int64(i)
		q.Enqueue(p, 0)
	}
	// Prime the internal buffer through Dequeue, then drain the rest in
	// one batch call: order must stay globally ascending across both
	// paths.
	first := q.Dequeue(1000)
	if first == nil || first.SendAt != 0 {
		t.Fatalf("first = %v", first)
	}
	out := make([]*pkt.Packet, 32)
	k := q.DequeueBatch(1000, out)
	if k != 19 {
		t.Fatalf("DequeueBatch = %d, want 19", k)
	}
	for i, p := range out[:k] {
		if p.SendAt != int64(i+1) {
			t.Fatalf("position %d: SendAt %d, want %d", i, p.SendAt, i+1)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

// TestShardedDequeueBatchReleasesScratch is the regression test for the
// scratch GC pin: DequeueBatch used to leave the popped *shardq.Node
// pointers behind in s.scratch after converting them to packets, keeping
// every released packet reachable from the qdisc and defeating pool
// reuse/GC until the slots happened to be overwritten.
func TestShardedDequeueBatchReleasesScratch(t *testing.T) {
	q := NewSharded(ShardedOptions{Shards: 2, Buckets: 1000, HorizonNs: 2000})
	pool := pkt.NewPool(16)
	for i := 0; i < 10; i++ {
		p := pool.Get()
		p.Flow = uint64(i)
		p.SendAt = int64(i)
		q.Enqueue(p, 0)
	}
	out := make([]*pkt.Packet, 16)
	if k := q.DequeueBatch(1000, out); k != 10 {
		t.Fatalf("DequeueBatch = %d, want 10", k)
	}
	for i, n := range q.scratch {
		if n != nil {
			t.Fatalf("scratch[%d] still pins a released packet's node", i)
		}
	}
}

// TestShardedConcurrentProducers is the sharded twin of the Locked
// regression test: 8 producers, one consumer, all packets accounted for.
func TestShardedConcurrentProducers(t *testing.T) {
	q := NewSharded(ShardedOptions{Shards: 8, Buckets: 4096, HorizonNs: 2e9})
	const producers = 8
	const perProducer = 2000

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := pkt.NewPool(perProducer)
			for i := 0; i < perProducer; i++ {
				p := pool.Get()
				p.Flow = uint64(w*perProducer + i)
				p.Size = 1500
				p.SendAt = int64(i) * 1000
				q.Enqueue(p, 0)
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	out := make([]*pkt.Packet, 128)
	consumed := 0
	producersDone := false
	for consumed < producers*perProducer {
		k := q.DequeueBatch(int64(2e9), out)
		consumed += k
		if k > 0 {
			continue
		}
		if producersDone {
			t.Fatalf("consumed %d of %d with producers done", consumed, producers*perProducer)
		}
		select {
		case <-done:
			producersDone = true
		default:
		}
		runtime.Gosched()
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

// TestRunContention smoke-tests the shared harness on both qdiscs.
func TestRunContention(t *testing.T) {
	for _, mk := range []func() Qdisc{
		func() Qdisc { return NewLocked(NewEiffel(4096, 2e9, 0)) },
		func() Qdisc { return NewSharded(ShardedOptions{Shards: 4, Buckets: 4096, HorizonNs: 2e9}) },
	} {
		q := mk()
		res := RunContention(q, 4, 500)
		if res.Packets != 2000 {
			t.Fatalf("%s: Packets = %d", q.Name(), res.Packets)
		}
		if q.Len() != 0 {
			t.Fatalf("%s: Len = %d after run", q.Name(), q.Len())
		}
		if res.Mpps() <= 0 {
			t.Fatalf("%s: Mpps = %v", q.Name(), res.Mpps())
		}
	}
}

// TestShardedEnqueueBatchEquivalent is the qdisc half of the batching
// property: the same packet workload admitted per packet and via
// EnqueueBatch must drain in exactly the same order from exact-mode
// sharded qdiscs (batch admission is a transport optimization, never a
// reordering).
func TestShardedEnqueueBatchEquivalent(t *testing.T) {
	opts := ShardedOptions{Shards: 4, Buckets: 2048, HorizonNs: 2e9, RingBits: 12}
	sets := ContentionPackets(1, 5000)

	drainIDs := func(q *Sharded) []uint64 {
		out := make([]*pkt.Packet, 97)
		var ids []uint64
		for {
			k := q.DequeueBatch(horizon, out)
			if k == 0 {
				return ids
			}
			for _, p := range out[:k] {
				ids = append(ids, p.ID)
			}
		}
	}

	ref := NewSharded(opts)
	for _, p := range sets[0] {
		ref.Enqueue(p, 0)
	}
	want := drainIDs(ref)
	if len(want) != 5000 {
		t.Fatalf("reference drained %d of 5000", len(want))
	}

	bq := NewSharded(opts)
	for i := 0; i < len(sets[0]); i += 192 {
		j := i + 192
		if j > len(sets[0]) {
			j = len(sets[0])
		}
		bq.EnqueueBatch(sets[0][i:j], 0)
	}
	if st := bq.Stats(); st.BulkClaims == 0 {
		t.Fatal("EnqueueBatch performed no bulk claims")
	}
	got := drainIDs(bq)
	if len(got) != len(want) {
		t.Fatalf("batched drained %d, reference %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: batched released packet %d, reference %d", i, got[i], want[i])
		}
	}
}

// TestShardedEnqueueBatchConcurrent hammers batch admission from many
// goroutines at once — each call borrows a pooled staging handle, so
// concurrent batches must neither lose nor duplicate packets.
func TestShardedEnqueueBatchConcurrent(t *testing.T) {
	q := NewSharded(ShardedOptions{Shards: 4, Buckets: 2048, HorizonNs: 2e9, RingBits: 8, DirectDue: true})
	const producers = 8
	const perProducer = 3000
	sets := ContentionPackets(producers, perProducer)
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perProducer; i += 64 {
				j := i + 64
				if j > perProducer {
					j = perProducer
				}
				q.EnqueueBatch(sets[w][i:j], 0)
			}
		}(w)
	}
	wg.Wait()
	if got := q.Len(); got != producers*perProducer {
		t.Fatalf("Len = %d after concurrent batch admission, want %d", got, producers*perProducer)
	}
	seen := make(map[uint64]bool, producers*perProducer)
	out := make([]*pkt.Packet, 256)
	for {
		k := q.DequeueBatch(horizon, out)
		if k == 0 {
			break
		}
		for _, p := range out[:k] {
			key := p.Flow<<32 | p.ID
			if seen[key] {
				t.Fatalf("packet flow=%d id=%d released twice", p.Flow, p.ID)
			}
			seen[key] = true
		}
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("released %d distinct packets, want %d", len(seen), producers*perProducer)
	}
}
