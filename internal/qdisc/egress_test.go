package qdisc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eiffel/internal/pkt"
	"eiffel/internal/stats"
)

// ---- deterministic retry/backoff/deadline machinery ----------------------

var errRefuse = errors.New("sink refused")

// scriptSink replays a fixed per-call script of (n, err) TryTx outcomes,
// then accepts everything; it records the packets it accepted.
type scriptSink struct {
	steps []func(ps []*pkt.Packet) (int, error)
	calls int
	got   []*pkt.Packet
}

func (s *scriptSink) TryTx(ps []*pkt.Packet) (int, error) {
	i := s.calls
	s.calls++
	if i >= len(s.steps) {
		s.got = append(s.got, ps...)
		return len(ps), nil
	}
	n, err := s.steps[i](ps)
	if n > 0 && n <= len(ps) {
		s.got = append(s.got, ps[:n]...)
	}
	return n, err
}

func refuse(_ []*pkt.Packet) (int, error)    { return 0, errRefuse }
func acceptOne(_ []*pkt.Packet) (int, error) { return 1, nil }

// fakeClock is the injected RetryPolicy clock: Sleep advances Now and
// records every backoff, so retry schedules are asserted exactly.
type fakeClock struct {
	now    int64
	sleeps []time.Duration
}

func (c *fakeClock) Sleep(d time.Duration) {
	c.sleeps = append(c.sleeps, d)
	c.now += int64(d)
}
func (c *fakeClock) Now() int64 { return c.now }

func mkBatch(n int) []*pkt.Packet {
	pool := pkt.NewPool(n)
	ps := make([]*pkt.Packet, n)
	for i := range ps {
		ps[i] = pool.Get()
		ps[i].Flow = uint64(i)
	}
	return ps
}

// TestRetryBackoffDeterministic pins the exact backoff schedule: each
// consecutive refusal doubles the sleep from BaseBackoff up to the
// MaxBackoff cap, and any progress resets it.
func TestRetryBackoffDeterministic(t *testing.T) {
	clk := &fakeClock{}
	sink := &scriptSink{steps: []func([]*pkt.Packet) (int, error){
		refuse, refuse, refuse, refuse, refuse,
	}}
	pol := RetryPolicy{
		MaxAttempts: -1, BaseBackoff: 10 * time.Nanosecond, MaxBackoff: 80 * time.Nanosecond,
		Sleep: clk.Sleep, Now: clk.Now,
	}.withDefaults()
	var eg stats.Egress
	ps := mkBatch(3)
	idx := 0
	txResilient(sink, ps, &idx, &pol, &eg, nil)

	want := []time.Duration{10, 20, 40, 80, 80}
	if len(clk.sleeps) != len(want) {
		t.Fatalf("slept %d times (%v), want %v", len(clk.sleeps), clk.sleeps, want)
	}
	for i, d := range want {
		if clk.sleeps[i] != d {
			t.Fatalf("sleep %d = %v, want %v (schedule %v)", i, clk.sleeps[i], d, clk.sleeps)
		}
	}
	if idx != 3 || len(sink.got) != 3 {
		t.Fatalf("disposed %d, sink accepted %d, want 3/3", idx, len(sink.got))
	}
	if eg.Txd() != 3 || eg.Errors() != 5 || eg.Retries() != 5 || eg.Dropped() != 0 {
		t.Fatalf("accounting txd=%d errors=%d retries=%d dropped=%d, want 3/5/5/0",
			eg.Txd(), eg.Errors(), eg.Retries(), eg.Dropped())
	}
	if eg.BackoffNs() != 10+20+40+80+80 {
		t.Fatalf("backoffNs = %d, want 230", eg.BackoffNs())
	}
}

// TestRetryBudgetDrops pins DropRetryBudget: against a sink that never
// accepts, every head packet is dropped after exactly MaxAttempts
// consecutive refusals, in order, with exact attribution.
func TestRetryBudgetDrops(t *testing.T) {
	clk := &fakeClock{}
	alwaysRefuse := &scriptSink{}
	for i := 0; i < 64; i++ {
		alwaysRefuse.steps = append(alwaysRefuse.steps, refuse)
	}
	pol := RetryPolicy{
		MaxAttempts: 3, BaseBackoff: time.Nanosecond, MaxBackoff: time.Nanosecond,
		Sleep: clk.Sleep, Now: clk.Now,
	}.withDefaults()
	var eg stats.Egress
	ps := mkBatch(4)
	var drops []*pkt.Packet
	var reasons []DropReason
	idx := 0
	txResilient(alwaysRefuse, ps, &idx, &pol, &eg, func(p *pkt.Packet, r DropReason) {
		drops = append(drops, p)
		reasons = append(reasons, r)
	})

	if idx != 4 || len(drops) != 4 {
		t.Fatalf("disposed %d, dropped %d, want 4/4", idx, len(drops))
	}
	for i, p := range drops {
		if p != ps[i] {
			t.Fatalf("drop %d is packet %d, want head order", i, p.Flow)
		}
		if reasons[i] != DropRetryBudget {
			t.Fatalf("drop %d reason %v, want retry-budget", i, reasons[i])
		}
	}
	// 3 refusals per packet, the third converting to a drop without a
	// sleep: 2 backoffs per packet.
	if alwaysRefuse.calls != 12 || len(clk.sleeps) != 8 {
		t.Fatalf("calls %d sleeps %d, want 12/8", alwaysRefuse.calls, len(clk.sleeps))
	}
	if eg.RetryDrops() != 4 || eg.Dropped() != 4 || eg.Txd() != 0 {
		t.Fatalf("accounting retryDrops=%d dropped=%d txd=%d, want 4/4/0",
			eg.RetryDrops(), eg.Dropped(), eg.Txd())
	}
}

// TestRetryDeadlineDrops pins DropDeadline on the injected clock: the
// deadline is measured from each head packet's FIRST refusal, and the
// head is dropped on the first refusal observed past it.
func TestRetryDeadlineDrops(t *testing.T) {
	clk := &fakeClock{}
	alwaysRefuse := &scriptSink{}
	for i := 0; i < 64; i++ {
		alwaysRefuse.steps = append(alwaysRefuse.steps, refuse)
	}
	pol := RetryPolicy{
		MaxAttempts: -1, Deadline: 100 * time.Nanosecond,
		BaseBackoff: 40 * time.Nanosecond, MaxBackoff: 40 * time.Nanosecond,
		Sleep: clk.Sleep, Now: clk.Now,
	}.withDefaults()
	var eg stats.Egress
	ps := mkBatch(2)
	var reasons []DropReason
	idx := 0
	txResilient(alwaysRefuse, ps, &idx, &pol, &eg, func(_ *pkt.Packet, r DropReason) {
		reasons = append(reasons, r)
	})

	// Per head: refusals at t, t+40, t+80 stay inside the 100ns budget
	// (each sleeping 40), and the refusal at t+120 converts to the drop —
	// 4 calls and 3 sleeps per packet.
	if idx != 2 || alwaysRefuse.calls != 8 || len(clk.sleeps) != 6 {
		t.Fatalf("disposed %d calls %d sleeps %d, want 2/8/6", idx, alwaysRefuse.calls, len(clk.sleeps))
	}
	for i, r := range reasons {
		if r != DropDeadline {
			t.Fatalf("drop %d reason %v, want deadline", i, r)
		}
	}
	if eg.DeadlineDrops() != 2 || eg.Dropped() != 2 {
		t.Fatalf("deadlineDrops=%d dropped=%d, want 2/2", eg.DeadlineDrops(), eg.Dropped())
	}
}

// TestRetryPartialAccepts pins prefix acceptance: a sink accepting one
// packet per call makes steady progress — partials are counted, the
// refusal streak resets on every accept, and nothing is dropped.
func TestRetryPartialAccepts(t *testing.T) {
	clk := &fakeClock{}
	sink := &scriptSink{steps: []func([]*pkt.Packet) (int, error){
		acceptOne, acceptOne, acceptOne, acceptOne,
	}}
	pol := RetryPolicy{
		MaxAttempts: 2, BaseBackoff: time.Nanosecond, MaxBackoff: time.Nanosecond,
		Sleep: clk.Sleep, Now: clk.Now,
	}.withDefaults()
	var eg stats.Egress
	ps := mkBatch(5)
	idx := 0
	txResilient(sink, ps, &idx, &pol, &eg, nil)

	if idx != 5 || len(sink.got) != 5 {
		t.Fatalf("disposed %d accepted %d, want 5/5", idx, len(sink.got))
	}
	for i, p := range sink.got {
		if p != ps[i] {
			t.Fatal("partial accepts reordered the batch")
		}
	}
	if eg.Partials() != 4 || eg.Dropped() != 0 || eg.Txd() != 5 {
		t.Fatalf("partials=%d dropped=%d txd=%d, want 4/0/5", eg.Partials(), eg.Dropped(), eg.Txd())
	}
}

// TestTxResilientClampsSinkReturns guards the contract edge: a buggy
// sink returning n out of range must not corrupt the progress cursor.
func TestTxResilientClampsSinkReturns(t *testing.T) {
	sink := &scriptSink{steps: []func([]*pkt.Packet) (int, error){
		func(ps []*pkt.Packet) (int, error) { return len(ps) + 5, nil },
	}}
	pol := RetryPolicy{}.withDefaults()
	var eg stats.Egress
	ps := mkBatch(3)
	idx := 0
	txResilient(sink, ps, &idx, &pol, &eg, nil)
	if idx != 3 || eg.Txd() != 3 {
		t.Fatalf("overshoot: idx=%d txd=%d, want 3/3", idx, eg.Txd())
	}

	sink2 := &scriptSink{steps: []func([]*pkt.Packet) (int, error){
		func(_ []*pkt.Packet) (int, error) { return -3, errRefuse },
	}}
	clk := &fakeClock{}
	pol2 := RetryPolicy{MaxAttempts: -1, BaseBackoff: time.Nanosecond,
		MaxBackoff: time.Nanosecond, Sleep: clk.Sleep, Now: clk.Now}.withDefaults()
	idx = 0
	txResilient(sink2, mkBatch(2), &idx, &pol2, &eg, nil)
	if idx != 2 {
		t.Fatalf("negative return: idx=%d, want 2", idx)
	}
}

// TestResilientSinkDisposesEverything covers the EgressSink adapter: Tx
// returns only when every packet is disposed, with the drops observable.
func TestResilientSinkDisposesEverything(t *testing.T) {
	clk := &fakeClock{}
	inner := &scriptSink{steps: []func([]*pkt.Packet) (int, error){
		refuse, acceptOne, refuse, refuse, // head 2 dropped on budget after the accept
	}}
	var dropped int
	rs := NewResilientSink(inner, RetryPolicy{
		MaxAttempts: 2, BaseBackoff: time.Nanosecond, MaxBackoff: time.Nanosecond,
		Sleep: clk.Sleep, Now: clk.Now,
	}, func(*pkt.Packet, DropReason) { dropped++ })
	ps := mkBatch(3)
	rs.Tx(ps)
	eg := rs.Egress()
	if eg.Txd()+eg.Dropped() != 3 {
		t.Fatalf("disposed %d+%d, want all 3", eg.Txd(), eg.Dropped())
	}
	if dropped != int(eg.Dropped()) || dropped != 1 {
		t.Fatalf("onDrop saw %d, egress counted %d, want 1", dropped, eg.Dropped())
	}
}

// ---- worker supervision ---------------------------------------------------

// panicSink panics on the calls its schedule marks, accepting all
// otherwise; panics fire before anything is accepted, matching the
// at-most-once contract the supervisor relies on.
type panicSink struct {
	CountingSink
	every int // panic on every Nth call (1 = always)
	calls int
}

func (s *panicSink) Tx(ps []*pkt.Packet) {
	s.calls++
	if s.every > 0 && s.calls%s.every == 0 {
		panic("panicSink: scheduled panic")
	}
	s.CountingSink.Tx(ps)
}

func mkServeFront(groups int) *MultiSharded {
	return NewMultiSharded(MultiShardedOptions{
		ShardedOptions: ShardedOptions{Shards: 8, Buckets: 2048, HorizonNs: horizon, RingBits: 10},
		Groups:         groups,
	})
}

// TestServeSupervisionPanicRecovery: a sink that panics periodically
// must cost restarts, never packets — the un-disposed remainder of each
// panicking batch is re-offered after recovery.
func TestServeSupervisionPanicRecovery(t *testing.T) {
	m := mkServeFront(1)
	sink := &panicSink{every: 3}
	srv := m.ServeWith(func() int64 { return horizon }, []EgressSink{sink},
		ServeOptions{MaxRestarts: -1, StallWindow: -1})
	packets := EgressPackets(1, 2000, 100)
	for _, p := range packets[0] {
		if !m.TryEnqueue(p, 0) {
			t.Fatal("TryEnqueue refused while open")
		}
	}
	waitUntil(t, 20*time.Second, func() bool {
		return sink.Count() >= int64(len(packets[0]))
	}, func() string { return m.Egress().Snapshot().String() })
	rep := srv.Stop()
	if !rep.Conserved() || rep.Dropped != 0 || rep.Txd != uint64(len(packets[0])) {
		t.Fatalf("panic recovery lost packets: %s", rep)
	}
	h := srv.Health()[0]
	if h.Restarts == 0 || h.Panics != h.Restarts {
		t.Fatalf("health restarts=%d panics=%d, want equal and > 0", h.Restarts, h.Panics)
	}
}

// TestServeSupervisionFailedGroup: a sink that always panics exhausts
// the restart budget; the group is marked failed, its worker retires,
// and Stop's drain disposes the whole backlog as DropSinkFailed —
// conservation holds with zero tx'd.
func TestServeSupervisionFailedGroup(t *testing.T) {
	m := mkServeFront(1)
	sink := &panicSink{every: 1}
	var drops atomic.Int64
	srv := m.ServeWith(func() int64 { return horizon }, []EgressSink{sink},
		ServeOptions{MaxRestarts: 1, StallWindow: -1,
			OnDrop: func(*pkt.Packet, DropReason) { drops.Add(1) }})
	packets := EgressPackets(1, 500, 50)
	for _, p := range packets[0] {
		if !m.TryEnqueue(p, 0) {
			t.Fatal("TryEnqueue refused while open")
		}
	}
	waitUntil(t, 20*time.Second, func() bool {
		return srv.Health()[0].Failed
	}, func() string { return m.Egress().Snapshot().String() })
	rep := srv.Stop()
	if !rep.Conserved() {
		t.Fatalf("failed-group stop broke conservation: %s", rep)
	}
	if rep.Txd != 0 || rep.Dropped != uint64(len(packets[0])) {
		t.Fatalf("always-panicking sink: txd=%d dropped=%d, want 0/%d", rep.Txd, rep.Dropped, len(packets[0]))
	}
	eg := m.Egress().Snapshot()
	if eg.FailedDrops != rep.Dropped {
		t.Fatalf("attribution: %d failed-drops of %d dropped", eg.FailedDrops, rep.Dropped)
	}
	if got := drops.Load(); got != int64(rep.Dropped) {
		t.Fatalf("onDrop saw %d of %d drops", got, rep.Dropped)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d at quiescence", m.Len())
	}
}

// gateSink blocks every Tx until the gate opens — the wedged TX queue
// the stall watchdog exists to surface.
type gateSink struct {
	CountingSink
	gate chan struct{}
}

func (g *gateSink) Tx(ps []*pkt.Packet) {
	<-g.gate
	g.CountingSink.Tx(ps)
}

// TestServeWatchdogStall: a group with backlog and a wedged sink must be
// flagged Stalled within a watchdog window, and the flag must clear once
// the sink moves again.
func TestServeWatchdogStall(t *testing.T) {
	m := mkServeFront(1)
	sink := &gateSink{gate: make(chan struct{})}
	srv := m.ServeWith(func() int64 { return horizon }, []EgressSink{sink},
		ServeOptions{StallWindow: 2 * time.Millisecond})
	packets := EgressPackets(1, 2000, 100)
	for _, p := range packets[0] {
		m.TryEnqueue(p, 0)
	}
	waitUntil(t, 20*time.Second, func() bool {
		return srv.Health()[0].Stalled
	}, func() string {
		h := srv.Health()[0]
		return fmt.Sprintf("%s backlog=%d progress=%d", m.Egress().Snapshot(), h.Backlog, h.Progress)
	})
	close(sink.gate) // un-wedge: traffic flows, the flag must clear
	waitUntil(t, 20*time.Second, func() bool {
		h := srv.Health()[0]
		return sink.Count() >= int64(len(packets[0])) && !h.Stalled
	}, func() string { return m.Egress().Snapshot().String() })
	rep := srv.Stop()
	if !rep.Conserved() || rep.Dropped != 0 {
		t.Fatalf("stall run broke conservation: %s", rep)
	}
}

// ---- lifecycle ------------------------------------------------------------

// TestDrainDirect covers Drain without a Serve fleet: close, run the
// backlog to the sinks inline, and refuse post-close admission.
func TestDrainDirect(t *testing.T) {
	m := mkServeFront(2)
	packets := EgressPackets(1, 3000, 100)
	for _, p := range packets[0] {
		if !m.TryEnqueue(p, 0) {
			t.Fatal("TryEnqueue refused while open")
		}
	}
	if m.State() != StateRunning {
		t.Fatalf("state = %v before close", m.State())
	}
	sinks := []*CountingSink{{}, {}}
	rep := m.Drain([]EgressSink{sinks[0], sinks[1]}, ServeOptions{})
	if !rep.Conserved() || rep.Txd != uint64(len(packets[0])) || rep.Drained != len(packets[0]) {
		t.Fatalf("drain: %s", rep)
	}
	if m.State() != StateClosed || m.Len() != 0 {
		t.Fatalf("state=%v len=%d after drain", m.State(), m.Len())
	}
	if got := sinks[0].Count() + sinks[1].Count(); got != int64(len(packets[0])) {
		t.Fatalf("sinks saw %d of %d", got, len(packets[0]))
	}
	// Post-close admission refuses and does not disturb the accounting.
	extra := EgressPackets(1, 4, 2)
	for _, p := range extra[0] {
		if m.TryEnqueue(p, 0) {
			t.Fatal("TryEnqueue admitted after close")
		}
	}
	if m.Admitted() != rep.Admitted {
		t.Fatalf("post-close refusals moved admitted: %d vs %d", m.Admitted(), rep.Admitted)
	}
}

// TestCloseForceReleasesBacklog covers the forced path: the backlog goes
// back to the caller, counted as released, and conservation holds with
// zero tx'd.
func TestCloseForceReleasesBacklog(t *testing.T) {
	m := mkServeFront(2)
	packets := EgressPackets(1, 1000, 50)
	for _, p := range packets[0] {
		m.TryEnqueue(p, 0)
	}
	seen := map[uint64]bool{}
	rep := m.CloseForce(func(p *pkt.Packet) {
		if seen[p.ID] {
			t.Fatalf("packet %d released twice", p.ID)
		}
		seen[p.ID] = true
	})
	if !rep.Conserved() || rep.Released != uint64(len(packets[0])) || rep.Txd != 0 {
		t.Fatalf("force close: %s", rep)
	}
	if len(seen) != len(packets[0]) {
		t.Fatalf("release saw %d of %d packets", len(seen), len(packets[0]))
	}
	if m.State() != StateClosed || m.Len() != 0 {
		t.Fatalf("state=%v len=%d after force close", m.State(), m.Len())
	}
}

// TestPolicyShardedCloseForceDrainsReleaseBuffer pins the policy front's
// extra backlog stage: packets sitting in the single-consumer release
// buffer (popped by Dequeue's batching but not yet returned) must be
// released by CloseForce, not stranded.
func TestPolicyShardedCloseForceDrainsReleaseBuffer(t *testing.T) {
	q, err := NewPolicySharded(PolicyShardedOptions{Policy: PolicySpecPFabric, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	packets := PolicyPackets(1, 200, 10)
	for _, p := range packets[0] {
		if !q.TryEnqueue(p, 0) {
			t.Fatal("TryEnqueue refused while open")
		}
	}
	// One Dequeue pulls a batch into the release buffer and hands back a
	// single packet — that one is the caller's; the buffered remainder
	// must come back through release.
	taken := q.Dequeue(0)
	if taken == nil {
		t.Fatal("Dequeue returned nil with backlog")
	}
	released := 0
	rep := q.CloseForce(func(p *pkt.Packet) {
		if p == taken {
			t.Fatal("release handed back the packet Dequeue already returned")
		}
		released++
	})
	if released != len(packets[0])-1 || rep.Released != uint64(released) {
		t.Fatalf("released %d (report %d), want %d", released, rep.Released, len(packets[0])-1)
	}
	if q.Len() != 0 || q.State() != StateClosed {
		t.Fatalf("len=%d state=%v after force close", q.Len(), q.State())
	}
}

// ---- exactly-once conservation property ----------------------------------

// egressFront is the lifecycle surface the property test drives,
// satisfied by all three parallel-egress fronts.
type egressFront interface {
	TryEnqueue(p *pkt.Packet, now int64) bool
	ServeWith(clock func() int64, sinks []EgressSink, opt ServeOptions) *Server
	Close()
	State() LifecycleState
	Admitted() uint64
	NumGroups() int
	Len() int
}

// TestEgressConservationProperty is the randomized exactly-once property
// test: for each front (plain, shaped, policy) and G ∈ {1,2,4},
// concurrent producers race a supervised Serve fleet, the front is
// closed MID-REPLAY at a random point, and at quiescence the identity
// admitted == tx'd + dropped + released must hold exactly — with the
// producers' own success count agreeing with the front's admitted
// counter and the sinks' count agreeing with tx'd.
func TestEgressConservationProperty(t *testing.T) {
	const producers, perProducer = 4, 3000
	rng := rand.New(rand.NewSource(0xE1FFE1))

	fronts := []struct {
		name    string
		mk      func(groups int) egressFront
		packets func() [][]*pkt.Packet
	}{
		{"multi-sharded",
			func(g int) egressFront { return mkServeFront(g) },
			func() [][]*pkt.Packet { return EgressPackets(producers, perProducer, 300) }},
		{"multi-shaped",
			func(g int) egressFront {
				return NewMultiShaped(MultiShapedOptions{
					ShapedShardedOptions: ShapedShardedOptions{
						Shards: 8, ShaperBuckets: 2048, HorizonNs: horizon,
						SchedBuckets: 256, RankSpan: 1 << 20, RingBits: 10,
					},
					Groups: g,
				})
			},
			func() [][]*pkt.Packet { return ShapedPackets(producers, perProducer, 1<<20) }},
		{"policy-sharded",
			func(g int) egressFront {
				q, err := NewPolicySharded(PolicyShardedOptions{
					Policy: PolicySpecPFabric, Shards: 8, Groups: g,
				})
				if err != nil {
					t.Fatal(err)
				}
				return q
			},
			func() [][]*pkt.Packet { return PolicyPackets(producers, perProducer, 64) }},
	}

	for _, front := range fronts {
		for _, G := range []int{1, 2, 4} {
			m := front.mk(G)
			packets := front.packets()
			sinks := make([]EgressSink, m.NumGroups())
			counts := make([]*CountingSink, m.NumGroups())
			for g := range sinks {
				counts[g] = &CountingSink{}
				sinks[g] = counts[g]
			}
			srv := m.ServeWith(func() int64 { return horizon }, sinks, ServeOptions{})

			var admitted atomic.Uint64
			var wg sync.WaitGroup
			for w := range packets {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for _, p := range packets[w] {
						if m.TryEnqueue(p, 0) {
							admitted.Add(1)
						}
					}
				}(w)
			}
			// Close mid-replay at a random point: some producers are
			// mid-flight, so part of the workload is refused — the property
			// must hold for ANY cut.
			time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
			m.Close()
			wg.Wait()
			rep := srv.Stop()

			if !rep.Conserved() {
				t.Fatalf("%s G=%d: conservation broken: %s", front.name, G, rep)
			}
			if rep.Admitted != admitted.Load() || rep.Admitted != m.Admitted() {
				t.Fatalf("%s G=%d: admitted %d, producers counted %d", front.name, G, rep.Admitted, admitted.Load())
			}
			var txd int64
			for _, c := range counts {
				txd += c.Count()
			}
			if uint64(txd) != rep.Txd {
				t.Fatalf("%s G=%d: sinks saw %d, report txd=%d", front.name, G, txd, rep.Txd)
			}
			if rep.Dropped != 0 || rep.Released != 0 {
				t.Fatalf("%s G=%d: infallible sinks must not drop: %s", front.name, G, rep)
			}
			if m.Len() != 0 || m.State() != StateClosed {
				t.Fatalf("%s G=%d: len=%d state=%v at quiescence", front.name, G, m.Len(), m.State())
			}
			if admitted.Load() == uint64(producers*perProducer) {
				t.Logf("%s G=%d: close raced after all admissions (weak run)", front.name, G)
			}
		}
	}
}
