package qdisc

import (
	"math/rand"
	"runtime"
	"time"

	"eiffel/internal/pkt"
	"eiffel/internal/workload"
)

// This file is the open-world churn harness: where the contention harness
// replays closed, pre-built packet sets, ReplayChurn generates millions of
// SHORT-LIVED flows on the fly (workload.ChurnGen) and drives them through
// a bounded-admission qdisc — arrive, drain, expire, repeat — while
// tracking the three things the flow-lifecycle layer must deliver under
// that regime: exact drop accounting (offered == admitted + dropped),
// exact per-flow order among admitted packets, and a heap that does not
// grow with cumulative flows. It is the experiment the paper's kernel-FQ
// indictment implies but closed replays cannot run.

// FlowEvicter is the optional eviction surface of a qdisc: the churn
// harness advances the epoch clock through it and reads flow-table
// occupancy for its report. PolicySharded implements it.
type FlowEvicter interface {
	AdvanceFlowEpoch()
	FlowStats() (live, retained int, evicted uint64)
}

// ChurnOptions tunes a churn replay.
type ChurnOptions struct {
	// Streams is the number of logical producer streams, each with its own
	// churn generator and disjoint flow-id space (default 4). Streams are
	// interleaved round-robin from the driving goroutine, so the replay is
	// deterministic and the order oracle is exact.
	Streams int
	// LiveFlows is the concurrent flow-window size per stream (default 1024).
	LiveFlows int
	// MaxFlowPkts is the per-flow packet budget upper bound (default 8;
	// budgets draw uniformly from [1, MaxFlowPkts]).
	MaxFlowPkts int
	// ZipfS is the slot-popularity Zipf skew (default 1.2; must be > 1).
	ZipfS float64
	// Flows is the cumulative flow target across all streams: the replay
	// runs until this many flows have been started (default 100_000).
	Flows uint64
	// Batch is the per-stream admit batch size (default 256).
	Batch int
	// DrainTo is the backlog the inter-cycle drain reduces the qdisc to
	// (default Streams*Batch): big enough to keep the consumer batched,
	// small enough that the backlog never masks a leak.
	DrainTo int
	// EpochEvery advances the qdisc's flow-eviction epoch every EpochEvery
	// produce cycles, when the qdisc is a FlowEvicter (0 = never).
	EpochEvery int
	// PacketSize is the simulated packet size driving pFabric-style
	// remaining-size ranks (default 1500).
	PacketSize uint32
	// Seed seeds the generators; equal seeds replay identical traffic.
	Seed int64
	// IDBase offsets every stream's flow-id space, so repeated replays
	// against one qdisc instance can use fresh ids (default 0).
	IDBase uint64
	// VerifyOrder tracks per-flow sequence order and packet loss among
	// admitted packets (a map of in-flight flows; modest overhead, exact
	// verdicts). Off, the replay measures pure throughput.
	VerifyOrder bool
	// HeapCeiling, when non-zero, is the harness's memory assertion: the
	// replay fails (CeilingExceeded) if sampled heap use ever exceeds the
	// pre-replay baseline by more than this many bytes.
	HeapCeiling uint64
}

func (o ChurnOptions) withDefaults() ChurnOptions {
	if o.Streams <= 0 {
		o.Streams = 4
	}
	if o.LiveFlows <= 0 {
		o.LiveFlows = 1024
	}
	if o.MaxFlowPkts <= 0 {
		o.MaxFlowPkts = 8
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.2
	}
	if o.Flows == 0 {
		o.Flows = 100_000
	}
	if o.Batch <= 0 {
		o.Batch = 256
	}
	if o.DrainTo <= 0 {
		o.DrainTo = o.Streams * o.Batch
	}
	if o.PacketSize == 0 {
		o.PacketSize = 1500
	}
	return o
}

// ChurnResult is what a churn replay observed.
type ChurnResult struct {
	// Offered/Admitted/Dropped/Released are exact packet counts as seen by
	// the driving goroutine; Offered == Admitted + Dropped always, and
	// Released == Admitted once the final drain empties the qdisc.
	Offered, Admitted, Dropped, Released uint64
	// Misorders counts released packets whose per-flow sequence ran
	// backwards; Lost counts admitted packets never released. Both are
	// only tracked with VerifyOrder.
	Misorders, Lost uint64
	// CumulativeFlows is how many distinct flows the replay started.
	CumulativeFlows uint64
	// Elapsed is the wall-clock replay duration.
	Elapsed time.Duration
	// BaseHeap/PeakHeap are runtime.ReadMemStats HeapAlloc at the start
	// and the maximum sampled during the replay.
	BaseHeap, PeakHeap uint64
	// CeilingExceeded reports the HeapCeiling assertion tripping.
	CeilingExceeded bool
	// LiveEnd/RetainedEnd/Evicted are the qdisc's final FlowStats (zero
	// for qdiscs without the surface).
	LiveEnd, RetainedEnd int
	Evicted              uint64
	// LenEnd is the qdisc's Len after the final drain (0 at quiescence).
	LenEnd int
}

// Mpps returns million packets per second offered through the qdisc.
func (r ChurnResult) Mpps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Offered) / r.Elapsed.Seconds() / 1e6
}

// DropRatio returns dropped/offered.
func (r ChurnResult) DropRatio() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(r.Offered)
}

// churnRejFlag marks a packet refused by the current admit call while the
// oracle splits the burst; pkt.Pool.Put zeroes Flags, so the bit never
// survives the packet's return to the pool.
const churnRejFlag uint32 = 1 << 31

// churnTrack is the per-flow order/loss oracle entry: the sequence stamp
// the next release must not precede, the admitted/released packet counts,
// and whether the generator has expired the flow. Entries are deleted as
// soon as a flow is expired and fully released, so the map is sized by
// in-flight flows, not cumulative ones.
type churnTrack struct {
	relFloor uint32 // next released seq must be >= this
	admitted uint32
	released uint32
	done     bool
}

// ReplayChurn drives q with open-world churn traffic from a single
// goroutine: each cycle offers one admit batch per stream (drop-tail on
// refusal — refused packets return to the pool), then drains the qdisc
// back to the low-water backlog, with the eviction epoch advanced on its
// own cadence; a final drain runs the qdisc to empty. Deterministic for a
// given options value.
func ReplayChurn(q AdmitQdisc, opt ChurnOptions) ChurnResult {
	opt = opt.withDefaults()
	gens := make([]*workload.ChurnGen, opt.Streams)
	for w := range gens {
		rng := rand.New(rand.NewSource(opt.Seed + int64(w)*7919))
		gens[w] = workload.NewChurnGen(rng, opt.LiveFlows, opt.MaxFlowPkts, opt.ZipfS, opt.IDBase+uint64(w)+1)
	}
	pool := pkt.NewPool(opt.DrainTo + 2*opt.Streams*opt.Batch)
	burst := make([]*pkt.Packet, opt.Batch)
	rej := make([]*pkt.Packet, 0, opt.Batch)
	out := make([]*pkt.Packet, 256)
	var tracks map[uint64]churnTrack
	if opt.VerifyOrder {
		tracks = make(map[uint64]churnTrack, 4*opt.Streams*opt.LiveFlows)
	}
	var res ChurnResult
	evicter, _ := q.(FlowEvicter)

	// Two GC cycles: sync.Pool contents (a prior qdisc's pooled producers,
	// and through them its whole flow table) survive one collection in the
	// victim cache, and a baseline taken over that garbage would forgive a
	// real leak of the same size.
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	res.BaseHeap, res.PeakHeap = ms.HeapAlloc, ms.HeapAlloc

	// finish marks a flow expired and drops its oracle entry once fully
	// released (admitted == released already holds when the expiring
	// packet itself was refused).
	finish := func(flow uint64) {
		t, ok := tracks[flow]
		if !ok {
			return // every packet of the flow was refused
		}
		if t.released == t.admitted {
			delete(tracks, flow)
			return
		}
		t.done = true
		tracks[flow] = t
	}

	drain := func(to int) {
		for q.Len() > to {
			k := q.DequeueBatch(0, out)
			if k == 0 {
				break
			}
			res.Released += uint64(k)
			for i := 0; i < k; i++ {
				p := out[i]
				if opt.VerifyOrder {
					t := tracks[p.Flow]
					if p.Seq < t.relFloor {
						res.Misorders++
					}
					t.relFloor = p.Seq + 1
					t.released++
					if t.done && t.released == t.admitted {
						delete(tracks, p.Flow)
					} else {
						tracks[p.Flow] = t
					}
				}
				out[i] = nil
				pool.Put(p)
			}
		}
	}

	target := opt.Flows
	cycle := 0
	expiring := make([]uint64, 0, opt.Batch)
	start := time.Now()
	for {
		var cum uint64
		for _, g := range gens {
			cum += g.CumulativeFlows()
		}
		if cum >= target {
			break
		}
		for w, g := range gens {
			expiring = expiring[:0]
			for i := range burst {
				flow, seq, remaining := g.Next()
				p := pool.Get()
				p.Flow, p.Seq, p.Size = flow, seq, opt.PacketSize
				p.Class = int32(w) // stream as tenant, for per-tenant drop buckets
				// pFabric-style rank: remaining flow bytes, this packet
				// included.
				p.Rank = uint64(remaining+1) * uint64(opt.PacketSize)
				p.SendAt = 0 // due immediately for time-indexed qdiscs
				burst[i] = p
				if remaining == 0 && opt.VerifyOrder {
					expiring = append(expiring, flow)
				}
			}
			var admitted int
			admitted, rej = q.EnqueueBatchAdmit(burst, 0, rej[:0])
			res.Offered += uint64(len(burst))
			res.Admitted += uint64(admitted)
			res.Dropped += uint64(len(rej))
			if opt.VerifyOrder {
				// Refusals come back in per-shard flush order, not offer
				// order, so split the burst by flag-marking the rejects (the
				// pool zeroes Flags on Put, so the bit cannot leak).
				for _, p := range rej {
					p.Flags |= churnRejFlag
				}
				for _, p := range burst {
					if p.Flags&churnRejFlag != 0 {
						continue
					}
					t := tracks[p.Flow]
					t.admitted++
					tracks[p.Flow] = t
				}
			}
			for i, p := range rej {
				rej[i] = nil
				pool.Put(p)
			}
			if opt.VerifyOrder {
				for _, flow := range expiring {
					finish(flow)
				}
			}
		}
		drain(opt.DrainTo)
		cycle++
		if opt.EpochEvery > 0 && evicter != nil && cycle%opt.EpochEvery == 0 {
			evicter.AdvanceFlowEpoch()
		}
		if cycle%32 == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > res.PeakHeap {
				res.PeakHeap = ms.HeapAlloc
			}
			if opt.HeapCeiling > 0 && ms.HeapAlloc > res.BaseHeap+opt.HeapCeiling {
				res.CeilingExceeded = true
			}
		}
	}
	drain(0)
	res.Elapsed = time.Since(start)
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > res.PeakHeap {
		res.PeakHeap = ms.HeapAlloc
	}
	if opt.HeapCeiling > 0 && res.PeakHeap > res.BaseHeap+opt.HeapCeiling {
		res.CeilingExceeded = true
	}
	res.LenEnd = q.Len()
	if opt.VerifyOrder {
		for _, t := range tracks {
			res.Lost += uint64(t.admitted - t.released)
		}
	}
	for _, g := range gens {
		res.CumulativeFlows += g.CumulativeFlows()
	}
	if evicter != nil {
		res.LiveEnd, res.RetainedEnd, res.Evicted = evicter.FlowStats()
	}
	return res
}
