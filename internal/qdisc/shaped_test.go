package qdisc

import (
	"testing"

	"eiffel/internal/pkt"
)

func mkShaped(pool *pkt.Pool, flow uint64, sendAt int64, rank uint64) *pkt.Packet {
	p := pool.Get()
	p.Flow = flow
	p.Size = 1500
	p.SendAt = sendAt
	p.Rank = rank
	return p
}

// shapedPair returns a small ShapedSharded and its single-threaded
// ShapedTree reference with identical queue geometry.
func shapedPair() (*ShapedSharded, *ShapedTree) {
	opt := ShapedShardedOptions{
		Shards:        4,
		ShaperBuckets: 1000,
		HorizonNs:     2000, // shaper granularity 1 ns: exact release times
		SchedBuckets:  512,
		RankSpan:      1024, // sched granularity 1: exact priorities
	}
	return NewShapedSharded(opt), NewShapedTree(opt)
}

// TestShapedShardedDecoupling is the qdisc-level Figure 8 contract: no
// packet leaves before SendAt, and among eligible packets the release
// order follows Rank, not SendAt.
func TestShapedShardedDecoupling(t *testing.T) {
	sharded, tree := shapedPair()
	for _, q := range []Qdisc{sharded, tree} {
		t.Run(q.Name(), func(t *testing.T) {
			pool := pkt.NewPool(8)
			if _, ok := q.NextTimer(0); ok {
				t.Fatal("NextTimer ok on empty qdisc")
			}
			// (sendAt, rank): the earliest-due packet has the WORST priority.
			q.Enqueue(mkShaped(pool, 1, 100, 30), 0)
			q.Enqueue(mkShaped(pool, 2, 200, 10), 0)
			q.Enqueue(mkShaped(pool, 3, 300, 20), 0)
			if got := q.Len(); got != 3 {
				t.Fatalf("Len = %d, want 3", got)
			}
			if next, ok := q.NextTimer(0); !ok || next != 100 {
				t.Fatalf("NextTimer(0) = (%d,%v), want (100,true)", next, ok)
			}
			if p := q.Dequeue(99); p != nil {
				t.Fatalf("Dequeue(99) released SendAt=%d early", p.SendAt)
			}
			// Only the rank-30 packet is due at 150.
			if p := q.Dequeue(150); p == nil || p.Rank != 30 {
				t.Fatalf("Dequeue(150) = %+v, want the eligible rank-30 packet", p)
			}
			// Both remaining packets due at 350: priority order.
			if p := q.Dequeue(350); p == nil || p.Rank != 10 {
				t.Fatalf("Dequeue(350) = %+v, want rank 10 first", p)
			}
			if next, ok := q.NextTimer(350); !ok || next != 350 {
				t.Fatalf("NextTimer with eligible backlog = (%d,%v), want now", next, ok)
			}
			if p := q.Dequeue(350); p == nil || p.Rank != 20 {
				t.Fatalf("final Dequeue = %+v, want rank 20", p)
			}
			if q.Len() != 0 {
				t.Fatalf("Len = %d after drain", q.Len())
			}
		})
	}
}

// TestShapedShardedNextTimerAfterMigration is the regression test for the
// migration blind spot: NextTimer's NextRelease pass migrates already-due
// packets into the schedulers as a side effect, and used to report the
// next still-shaped deadline anyway — idling the host runner while
// eligible packets sat in the schedulers (the same overdue-idling class
// of bug as Carousel's NextTimer).
func TestShapedShardedNextTimerAfterMigration(t *testing.T) {
	q := NewShapedSharded(ShapedShardedOptions{
		Shards: 2, ShaperBuckets: 1000, HorizonNs: 2000,
		SchedBuckets: 512, RankSpan: 1024,
	})
	pool := pkt.NewPool(4)
	q.Enqueue(mkShaped(pool, 1, 100, 5), 0)
	q.Enqueue(mkShaped(pool, 2, 500, 7), 0)
	// At t=150 the SendAt=100 packet is due: the NextRelease pass inside
	// NextTimer migrates it, so the answer must be "now", not 500.
	if next, ok := q.NextTimer(150); !ok || next != 150 {
		t.Fatalf("NextTimer(150) = (%d,%v) with an eligible packet, want (150,true)", next, ok)
	}
	if p := q.Dequeue(150); p == nil || p.Rank != 5 {
		t.Fatalf("Dequeue(150) = %+v, want the migrated rank-5 packet", p)
	}
	if next, ok := q.NextTimer(150); !ok || next != 500 {
		t.Fatalf("NextTimer(150) after drain = (%d,%v), want (500,true)", next, ok)
	}
}

// TestShapedShardedBatchAndBuffer mirrors the Sharded buffer tests on the
// shaped variant: buffered packets keep Len/NextTimer honest and
// DequeueBatch drains buffer-then-runtime in priority order.
func TestShapedShardedBatchAndBuffer(t *testing.T) {
	q := NewShapedSharded(ShapedShardedOptions{
		Shards: 2, ShaperBuckets: 1000, HorizonNs: 2000,
		SchedBuckets: 512, RankSpan: 1024, Batch: 8,
	})
	pool := pkt.NewPool(32)
	for i := 0; i < 20; i++ {
		q.Enqueue(mkShaped(pool, uint64(i), 10, uint64(i)), 0)
	}
	first := q.Dequeue(100)
	if first == nil || first.Rank != 0 {
		t.Fatalf("first = %+v, want rank 0", first)
	}
	if got := q.Len(); got != 19 {
		t.Fatalf("Len = %d with buffered packets, want 19", got)
	}
	if next, ok := q.NextTimer(100); !ok || next != 100 {
		t.Fatalf("NextTimer = (%d,%v), want (100,true) with buffered packets", next, ok)
	}
	out := make([]*pkt.Packet, 32)
	k := q.DequeueBatch(100, out)
	if k != 19 {
		t.Fatalf("DequeueBatch = %d, want 19", k)
	}
	for i, p := range out[:k] {
		if p.Rank != uint64(i+1) {
			t.Fatalf("position %d: rank %d, want %d", i, p.Rank, i+1)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
	// The conversion scratch must not pin released packets (same contract
	// as Sharded.DequeueBatch).
	for i, n := range q.scratch {
		if n != nil {
			t.Fatalf("scratch[%d] still pins a node after DequeueBatch", i)
		}
	}
}

// TestShapedShardedPriorityFidelity is the acceptance assertion: 8
// concurrent producers publish packets with horizon-spread release times
// and uncorrelated priorities; the post-publication drain must show ZERO
// priority inversions beyond the scheduler bucket granularity.
func TestShapedShardedPriorityFidelity(t *testing.T) {
	q := NewShapedSharded(ShapedShardedOptions{
		Shards: 8, ShaperBuckets: 2500, HorizonNs: 2e9,
		SchedBuckets: 2048, RankSpan: 1 << 20, RingBits: 10,
	})
	packets := ShapedPackets(8, 2000, 1<<20)
	released, inversions := ReplayPriorityFidelity(q, packets, q.RankGranularity())
	if released != 16000 {
		t.Fatalf("released %d of 16000", released)
	}
	if inversions != 0 {
		t.Fatalf("%d priority inversions beyond bucket granularity", inversions)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

// TestShapedTreeFidelity runs the same fidelity check on the Locked tree
// baseline, so the experiment's two columns verify the same contract.
func TestShapedTreeFidelity(t *testing.T) {
	q := NewLocked(NewShapedTree(ShapedShardedOptions{
		ShaperBuckets: 2500, HorizonNs: 2e9,
		SchedBuckets: 2048, RankSpan: 1 << 20,
	}))
	packets := ShapedPackets(4, 1000, 1<<20)
	gran := uint64(1<<20) / (2 * 2048)
	released, inversions := ReplayPriorityFidelity(q, packets, gran)
	if released != 4000 {
		t.Fatalf("released %d of 4000", released)
	}
	if inversions != 0 {
		t.Fatalf("%d priority inversions beyond bucket granularity", inversions)
	}
}

// TestShapedShardedContention smoke-tests the throughput harness path the
// shapedsched experiment uses.
func TestShapedShardedContention(t *testing.T) {
	q := NewShapedSharded(ShapedShardedOptions{
		Shards: 4, ShaperBuckets: 1000, HorizonNs: 2e9, SchedBuckets: 1024,
	})
	res := ReplayContention(q, ShapedPackets(4, 500, 1<<20))
	if res.Packets != 2000 {
		t.Fatalf("Packets = %d", res.Packets)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after run", q.Len())
	}
	if q.Stats().Migrated == 0 {
		t.Fatal("no packets migrated shaper→scheduler")
	}
}

// TestShapedShardedPriorityFidelityBatched re-runs the acceptance
// assertion through the batched admission path: staging and multi-slot
// ring claims must not cost a single inversion beyond bucket granularity.
func TestShapedShardedPriorityFidelityBatched(t *testing.T) {
	q := NewShapedSharded(ShapedShardedOptions{
		Shards: 8, ShaperBuckets: 2500, HorizonNs: 2e9,
		SchedBuckets: 2048, RankSpan: 1 << 20, RingBits: 10,
	})
	packets := ShapedPackets(8, 2000, 1<<20)
	released, inversions := ReplayPriorityFidelityOpts(q, packets, q.RankGranularity(),
		ContentionOptions{ProducerBatch: 128})
	if released != 16000 {
		t.Fatalf("released %d of 16000", released)
	}
	if inversions != 0 {
		t.Fatalf("%d priority inversions beyond bucket granularity", inversions)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
	if st := q.Stats(); st.BulkClaims == 0 {
		t.Fatal("batched admission performed no bulk claims")
	}
}
