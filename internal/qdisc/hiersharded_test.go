package qdisc

import (
	"math/rand"
	"sync"
	"testing"

	"eiffel/internal/pkt"
	"eiffel/internal/shardq"
)

// hierTestSpec is the 4-tenant spec the hiersharded tests share: two
// plain weighted tenants, one reservation holder, one rank-policy tenant
// — every engine feature on one table.
func hierTestSpec() shardq.HierSpec {
	return shardq.HierSpec{
		Tenants: []shardq.HierTenant{
			{Weight: 3},
			{Weight: 1},
			{ResBps: 200e6, Weight: 1},
			{Weight: 2, Policy: "rank", Buckets: 4096, RankGran: 64},
		},
	}
}

// hierRandomSets builds a randomized workload: producers sets over
// disjoint flow ranges (so concurrent enqueues keep each flow's arrival
// order well defined), random sizes, random tenants, random in-tenant
// ranks, sequential per-flow IDs.
func hierRandomSets(rng *rand.Rand, producers, perProducer, flowsPer, tenants int) [][]*pkt.Packet {
	sets := make([][]*pkt.Packet, producers)
	for w := range sets {
		pool := pkt.NewPool(perProducer)
		set := make([]*pkt.Packet, perProducer)
		seq := make(map[uint64]uint64)
		for i := range set {
			p := pool.Get()
			f := uint64(w*flowsPer + rng.Intn(flowsPer))
			p.Flow = f
			p.Size = uint32(64 + rng.Intn(1437))
			p.Class = int32(f % uint64(tenants)) // tenant is a flow property
			p.Rank = uint64(rng.Intn(1 << 18))
			p.ID = seq[f]
			seq[f]++
			set[i] = p
		}
		sets[w] = set
	}
	return sets
}

// drainOrders drains q at a steadily advancing clock and returns each
// flow's release sequence as (ID, Rank) pairs.
func drainOrders(t *testing.T, q Qdisc, total int) map[uint64][]uint64 {
	t.Helper()
	orders := make(map[uint64][]uint64)
	now, got, stalls := int64(0), 0, 0
	for got < total {
		p := q.Dequeue(now)
		if p == nil {
			// Nothing eligible (a reservation-only phase boundary at tag
			// granularity): advance the clock and retry.
			now += 1 << 20
			if stalls++; stalls > 1<<20 {
				t.Fatalf("drain stalled at %d of %d", got, total)
			}
			continue
		}
		orders[p.Flow] = append(orders[p.Flow], p.ID)
		got++
		now += int64(p.Size) * 8 // ~1 Gbps pacing
	}
	return orders
}

// TestHierShardedPerFlowOrderMatchesLocked is the randomized equivalence
// property: for every flow, the sharded hierarchical path releases the
// flow's packets in EXACTLY the order the locked whole-tree hClock does —
// across fifo and rank in-tenant policies, random sizes, and concurrent
// producers.
func TestHierShardedPerFlowOrderMatchesLocked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const producers, perProducer, flowsPer = 4, 3000, 64
	spec := hierTestSpec()
	sets := hierRandomSets(rng, producers, perProducer, flowsPer, len(spec.Tenants))
	total := producers * perProducer

	tree, err := NewHierTree(spec)
	if err != nil {
		t.Fatal(err)
	}
	locked := NewLocked(tree)
	for _, set := range sets {
		for _, p := range set {
			locked.Enqueue(p, 0)
		}
	}
	want := drainOrders(t, locked, total)

	sharded, err := NewHierSharded(HierShardedOptions{Spec: spec, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := range sets {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, p := range sets[w] {
				sharded.Enqueue(p, 0)
			}
		}(w)
	}
	wg.Wait()
	got := drainOrders(t, sharded, total)

	if len(got) != len(want) {
		t.Fatalf("sharded released %d flows, locked %d", len(got), len(want))
	}
	for f, w := range want {
		g := got[f]
		if len(g) != len(w) {
			t.Fatalf("flow %d: sharded released %d packets, locked %d", f, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("flow %d position %d: sharded ID %d, locked ID %d", f, i, g[i], w[i])
			}
		}
	}
}

// TestHierShardedReservationConservation: under overload, every tenant
// with a due reservation is served within a bounded window — the
// reservation-first preference survives the cross-shard merge — and the
// reservation holders' aggregate service meets their configured rates
// within the shard-granularity error bound.
func TestHierShardedReservationConservation(t *testing.T) {
	// Two reservation holders against two heavyweight share tenants. At
	// the 1 Gbps paced drain below, tenant 2 is owed 20% of service and
	// tenant 3 is owed 10%; on weights alone they would split ~2/34 of it.
	spec := shardq.HierSpec{
		Tenants: []shardq.HierTenant{
			{Weight: 16},
			{Weight: 16},
			{ResBps: 200e6, Weight: 1},
			{ResBps: 100e6, Weight: 1},
		},
	}
	q, err := NewHierSharded(HierShardedOptions{Spec: spec, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	const flows, per = 64, 500 // 32k packets, every tenant saturated
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := pkt.NewPool(flows * per / 4) // pools are single-producer
			for i := 0; i < flows*per/4; i++ {
				p := pool.Get()
				f := uint64(w*(flows/4) + i%(flows/4))
				p.Flow = f
				p.Size = 1500
				p.Class = int32(f % 4)
				q.Enqueue(p, 0)
			}
		}(w)
	}
	wg.Wait()

	const total = flows * per
	// Measure shares over the first half of the schedule: every tenant is
	// still backlogged there (each holds exactly 25% of the offered load,
	// so nobody can drain before the halfway mark), which makes the window
	// a genuine contention measurement rather than a tail artifact.
	const window = total / 2
	windowServed := [4]int{}
	lastServed := [4]int{2: 0, 3: 0}
	maxGap := [4]int{}
	now := int64(0)
	for i := 0; i < total; i++ {
		p := q.Dequeue(now)
		if p == nil {
			t.Fatalf("work-conserving drain stalled at %d of %d", i, total)
		}
		tn := int(p.Class)
		if i < window {
			windowServed[tn]++
		}
		if tn >= 2 {
			if gap := i - lastServed[tn]; gap > maxGap[tn] {
				maxGap[tn] = gap
			}
			lastServed[tn] = i
		}
		now += 12_000 // 1500B at 1 Gbps
	}
	res2 := float64(windowServed[2]) / float64(window)
	res3 := float64(windowServed[3]) / float64(window)
	if res2 < 0.20*0.9 {
		t.Fatalf("tenant 2 served %.3f of the link under contention, reservation needs >= 0.20 (-10%% bound)", res2)
	}
	if res3 < 0.10*0.9 {
		t.Fatalf("tenant 3 served %.3f of the link under contention, reservation needs >= 0.10 (-10%% bound)", res3)
	}
	// Bounded window: a due reservation is never starved for more than a
	// few merge batches (release buffer 64 + per-shard runs).
	if maxGap[2] > 256 || maxGap[3] > 256 {
		t.Fatalf("reservation service gaps %d/%d packets, want <= 256", maxGap[2], maxGap[3])
	}
}

// TestHierShardedShareError: the weight-3 tenant's service share after
// serving half a two-tenant backlog stays within ±0.10 of the ideal 0.75
// — the cross-shard share-error bound the experiment reports.
func TestHierShardedShareError(t *testing.T) {
	spec := shardq.HierSpec{Tenants: []shardq.HierTenant{{Weight: 3}, {Weight: 1}}}
	q, err := NewHierSharded(HierShardedOptions{Spec: spec, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	packets := PolicyPackets(8, 5000, 64)
	share := 0.0
	{
		total := 0
		for _, set := range packets {
			for _, p := range set {
				q.Enqueue(p, 0)
			}
			total += len(set)
		}
		gold, servedN := 0, 0
		for servedN < total/2 {
			p := q.Dequeue(int64(2e9))
			if p == nil {
				t.Fatal("drain stalled with backlog")
			}
			if p.Class == 0 {
				gold++
			}
			servedN++
		}
		for q.Dequeue(int64(2e9)) != nil {
		}
		share = float64(gold) / float64(total/2)
	}
	if share < 0.65 || share > 0.85 {
		t.Fatalf("weight-3 share %.3f, want 0.75 +/- 0.10", share)
	}
}

// TestHierShardedGroupDrain: parallel group workers release everything
// with per-flow order intact.
func TestHierShardedGroupDrain(t *testing.T) {
	spec := hierTestSpec()
	q, err := NewHierSharded(HierShardedOptions{Spec: spec, Shards: 8, Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	sets := hierRandomSets(rng, 4, 2000, 32, len(spec.Tenants))
	var wg sync.WaitGroup
	for w := range sets {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, p := range sets[w] {
				q.Enqueue(p, 0)
			}
		}(w)
	}
	wg.Wait()

	var mu sync.Mutex
	orders := make(map[uint64][]uint64)
	var dw sync.WaitGroup
	for g := 0; g < q.NumGroups(); g++ {
		dw.Add(1)
		go func(g int) {
			defer dw.Done()
			out := make([]*pkt.Packet, 128)
			local := make(map[uint64][]uint64)
			for q.GroupLen(g) > 0 {
				k := q.GroupDequeueBatch(g, int64(2e9), out)
				for _, p := range out[:k] {
					local[p.Flow] = append(local[p.Flow], p.ID)
				}
			}
			mu.Lock()
			for f, ids := range local {
				orders[f] = append(orders[f], ids...)
			}
			mu.Unlock()
		}(g)
	}
	dw.Wait()

	released := 0
	for f, ids := range orders {
		for i, id := range ids {
			if id != uint64(i) && int(f%4) != 3 {
				// fifo tenants: IDs must come out sequentially. (The rank
				// tenant's order is rank-major, checked by the locked
				// equivalence test above.)
				t.Fatalf("flow %d: ID %d at position %d", f, id, i)
			}
		}
		released += len(ids)
	}
	if released != 4*2000 {
		t.Fatalf("group workers released %d of %d", released, 4*2000)
	}
}

// TestHierShardedAdmitAndLifecycle: the bounded-admission path conserves
// (admitted + rejected == offered), and Drain runs every admitted packet
// to the sinks with exact conservation.
func TestHierShardedAdmitAndLifecycle(t *testing.T) {
	spec := hierTestSpec()
	q, err := NewHierSharded(HierShardedOptions{
		Spec: spec, Shards: 4, ShardBound: 64, Admit: AdmitDropTail,
	})
	if err != nil {
		t.Fatal(err)
	}
	const offered = 2048
	pool := pkt.NewPool(offered)
	ps := make([]*pkt.Packet, offered)
	for i := range ps {
		p := pool.Get()
		p.Flow = uint64(i % 16)
		p.Size = 1500
		p.Class = int32(i % 4)
		ps[i] = p
	}
	admitted, rej := q.EnqueueBatchAdmit(ps, 0, nil)
	if admitted+len(rej) != offered {
		t.Fatalf("admitted %d + rejected %d != offered %d", admitted, len(rej), offered)
	}
	if len(rej) == 0 {
		t.Fatal("shard bound 64 never refused: the bounded path is untested")
	}
	sink := &CountingSink{}
	rep := q.Drain([]EgressSink{sink}, ServeOptions{})
	if !rep.Conserved() {
		t.Fatalf("drain not conserved: %+v", rep)
	}
	if int(sink.Count()) != admitted {
		t.Fatalf("sink saw %d packets, admitted %d", sink.Count(), admitted)
	}
}

// TestHierShardedNextTimer: with every tenant parked over its limit, the
// front reports the earliest release instead of claiming readiness, and
// serving resumes at that time.
func TestHierShardedNextTimer(t *testing.T) {
	spec := shardq.HierSpec{Tenants: []shardq.HierTenant{
		{LimitBps: 800e6, Weight: 1}, // 8 shards: 100 Mbps per shard slice
	}}
	q, err := NewHierSharded(HierShardedOptions{Spec: spec, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	pool := pkt.NewPool(8)
	for i := 0; i < 4; i++ {
		p := pool.Get()
		p.Flow = 1 // one flow -> one shard -> one engine's limit clock
		p.Size = 1500
		q.Enqueue(p, 0)
	}
	if p := q.Dequeue(0); p == nil {
		t.Fatal("first packet not served")
	}
	if p := q.Dequeue(1); p != nil {
		t.Fatal("over-limit packet served")
	}
	ev, ok := q.NextTimer(1)
	if !ok || ev <= 1 {
		t.Fatalf("NextTimer = %d,%v, want a future release", ev, ok)
	}
	if p := q.Dequeue(ev + 2048); p == nil {
		t.Fatal("parked tenant not served at its release time")
	}
}
