package qdisc

import (
	"math/rand"
	"runtime"
	"testing"

	"eiffel/internal/pkt"
	"eiffel/internal/workload"
)

func newChurnQdisc(t testing.TB, bound, evict int) *PolicySharded {
	t.Helper()
	q, err := NewPolicySharded(PolicyShardedOptions{
		Policy:     PolicySpecPFabric,
		Shards:     8,
		ShardBound: bound,
		Admit:      AdmitDropTail,
		Tenants:    4,
		EvictAfter: evict,
	})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestChurnReplayQuiescence runs the churn harness once with the bound and
// eviction armed and checks every invariant the harness reports: exact
// accounting, exact per-flow order among admitted packets, no lost packets,
// and an empty qdisc at quiescence — with both the bound and the evictor
// actually exercised.
func TestChurnReplayQuiescence(t *testing.T) {
	q := newChurnQdisc(t, 384, 2)
	r := ReplayChurn(q, ChurnOptions{
		Flows: 30_000, EpochEvery: 4, Seed: 3, VerifyOrder: true, HeapCeiling: 64 << 20,
	})
	if r.Offered != r.Admitted+r.Dropped {
		t.Fatalf("accounting: offered %d != admitted %d + dropped %d", r.Offered, r.Admitted, r.Dropped)
	}
	if r.Released != r.Admitted {
		t.Fatalf("released %d != admitted %d", r.Released, r.Admitted)
	}
	if r.Misorders != 0 || r.Lost != 0 {
		t.Fatalf("misorders %d lost %d, want 0/0", r.Misorders, r.Lost)
	}
	if r.LenEnd != 0 {
		t.Fatalf("LenEnd = %d at quiescence, want 0", r.LenEnd)
	}
	if r.Dropped == 0 {
		t.Fatal("bound never triggered; the test exercised nothing")
	}
	if r.Evicted == 0 {
		t.Fatal("eviction never fired; the test exercised nothing")
	}
	if r.CeilingExceeded {
		t.Fatalf("heap ceiling exceeded: peak %d base %d", r.PeakHeap, r.BaseHeap)
	}
	adm := q.Admission()
	if adm.Offered() != r.Offered || adm.Admitted() != r.Admitted || adm.Dropped() != r.Dropped {
		t.Fatalf("qdisc admission block %d/%d/%d disagrees with harness %d/%d/%d",
			adm.Offered(), adm.Admitted(), adm.Dropped(), r.Offered, r.Admitted, r.Dropped)
	}
	var tenantDrops uint64
	for w := int32(0); w < 4; w++ {
		tenantDrops += adm.TenantDrops(w)
	}
	if tenantDrops != r.Dropped {
		t.Fatalf("per-tenant drop buckets sum to %d, want %d", tenantDrops, r.Dropped)
	}
}

// TestChurnStressMillionFlows is the survival satellite: one qdisc
// instance survives over a million cumulative short-lived flows, replayed
// in cycles with fresh id spaces, with the quiescent heap flat across
// cycles (the paper's kernel-FQ indictment is exactly that it is not),
// per-flow order exact throughout, and Len == 0 after every cycle.
func TestChurnStressMillionFlows(t *testing.T) {
	if testing.Short() {
		t.Skip("million-flow churn stress skipped in -short mode")
	}
	q := newChurnQdisc(t, 384, 2)
	const cycles = 5
	const perCycle = 220_000 // 5 cycles x 220k = 1.1M cumulative flows
	var cum uint64
	var ms runtime.MemStats
	heaps := make([]uint64, 0, cycles)
	for c := 0; c < cycles; c++ {
		r := ReplayChurn(q, ChurnOptions{
			Flows:       perCycle,
			EpochEvery:  4,
			Seed:        int64(100 + c),
			IDBase:      uint64(c * 16), // fresh flow-id space per cycle
			VerifyOrder: true,
			HeapCeiling: 64 << 20,
		})
		if r.Offered != r.Admitted+r.Dropped || r.Released != r.Admitted {
			t.Fatalf("cycle %d: accounting %d/%d/%d released %d", c, r.Offered, r.Admitted, r.Dropped, r.Released)
		}
		if r.Misorders != 0 || r.Lost != 0 {
			t.Fatalf("cycle %d: misorders %d lost %d", c, r.Misorders, r.Lost)
		}
		if r.LenEnd != 0 || q.Len() != 0 {
			t.Fatalf("cycle %d: qdisc not empty at quiescence (LenEnd %d, Len %d)", c, r.LenEnd, q.Len())
		}
		if r.CeilingExceeded {
			t.Fatalf("cycle %d: heap ceiling exceeded (peak %d base %d)", c, r.PeakHeap, r.BaseHeap)
		}
		cum += r.CumulativeFlows
		runtime.GC()
		runtime.GC() // second pass flushes sync.Pool victim caches
		runtime.ReadMemStats(&ms)
		heaps = append(heaps, ms.HeapAlloc)
	}
	if cum < 1_000_000 {
		t.Fatalf("cumulative flows = %d, want >= 1M", cum)
	}
	// Flat heap across cycles: the quiescent heap after the last cycle may
	// not exceed the first cycle's by more than a small slack — if retained
	// flow state grew with cumulative flows, it would show up here.
	const slack = 8 << 20
	if heaps[len(heaps)-1] > heaps[0]+slack {
		t.Fatalf("quiescent heap grew across cycles: %d -> %d (slack %d); flow state is leaking",
			heaps[0], heaps[len(heaps)-1], uint64(slack))
	}
}

// release is one observed dequeue for the lockstep oracles below.
type release struct {
	flow uint64
	seq  uint32
}

// churnReleases drives deterministic single-goroutine churn bursts through
// q via the bounded-admission surface and returns the complete release
// sequence. refused reports how many packets came back; epochEvery > 0
// advances the flow epoch on that burst cadence when q supports it.
func churnReleases(t *testing.T, q AdmitQdisc, seed int64, bursts, batch, epochEvery int,
	stamp func(p *pkt.Packet, i int)) (rels []release, refused int) {
	t.Helper()
	g := workload.NewChurnGen(rand.New(rand.NewSource(seed)), 256, 8, 1.2, 1)
	pool := pkt.NewPool(4 * batch)
	burst := make([]*pkt.Packet, batch)
	rej := make([]*pkt.Packet, 0, batch)
	out := make([]*pkt.Packet, 64)
	evicter, _ := q.(FlowEvicter)
	drain := func(to int) {
		for q.Len() > to {
			k := q.DequeueBatch(1<<40, out)
			if k == 0 {
				break
			}
			for i := 0; i < k; i++ {
				rels = append(rels, release{out[i].Flow, out[i].Seq})
				pool.Put(out[i])
				out[i] = nil
			}
		}
	}
	for b := 0; b < bursts; b++ {
		for i := range burst {
			flow, seq, remaining := g.Next()
			p := pool.Get()
			p.Flow, p.Seq, p.Size = flow, seq, 1500
			p.Rank = uint64(remaining+1) * 1500
			if stamp != nil {
				stamp(p, b*batch+i)
			}
			burst[i] = p
		}
		var r []*pkt.Packet
		_, r = q.EnqueueBatchAdmit(burst, 0, rej[:0])
		refused += len(r)
		for i, p := range r {
			r[i] = nil
			pool.Put(p)
		}
		drain(batch) // keep a standing backlog so ordering is non-trivial
		if epochEvery > 0 && evicter != nil && b%epochEvery == 0 {
			evicter.AdvanceFlowEpoch()
		}
	}
	drain(0)
	return rels, refused
}

// TestChurnEvictionOrderOracle is the eviction property test: aggressive
// idle-flow eviction with readmission must be invisible to dequeue order —
// the COMPLETE release sequence (cross-shard merge included) must be
// byte-identical to a no-eviction oracle fed the same traffic, which also
// proves no admitted packet is ever lost to a reclaimed slot.
func TestChurnEvictionOrderOracle(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		oracle := newChurnQdisc(t, 0, 0) // retain-forever reference
		evict := newChurnQdisc(t, 0, 1)  // reclaim after a single idle epoch
		want, wrefused := churnReleases(t, oracle, seed, 200, 256, 1, nil)
		got, grefused := churnReleases(t, evict, seed, 200, 256, 1, nil)
		if wrefused != 0 || grefused != 0 {
			t.Fatalf("seed %d: unbounded runs refused %d/%d packets", seed, wrefused, grefused)
		}
		_, _, evicted := evict.FlowStats()
		if evicted == 0 {
			t.Fatalf("seed %d: eviction never fired; oracle proves nothing", seed)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: released %d packets with eviction, oracle released %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: release %d diverges: evicting %+v, oracle %+v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestChurnAdmitPushbackEquivalence is the admission property test: a
// bound so large it never triggers must be indistinguishable from bound 0
// (the legacy unbounded spill) — byte-identical release sequences on
// deterministic single-threaded runs — across all three bounded-admission
// runtimes.
func TestChurnAdmitPushbackEquivalence(t *testing.T) {
	const hugeBound = 1 << 30
	cases := []struct {
		name  string
		mk    func(bound int) AdmitQdisc
		stamp func(p *pkt.Packet, i int)
	}{
		{
			name: "sharded",
			mk: func(bound int) AdmitQdisc {
				return NewSharded(ShardedOptions{
					Shards: 8, HorizonNs: 1 << 30, RingBits: 10, ShardBound: bound,
				})
			},
			// Timer runtime: release times inside the horizon, all due by
			// the drain clock.
			stamp: func(p *pkt.Packet, i int) { p.SendAt = int64(i % 4096) },
		},
		{
			name: "shaped-sharded",
			mk: func(bound int) AdmitQdisc {
				return NewShapedSharded(ShapedShardedOptions{
					Shards: 8, HorizonNs: 1 << 30, RingBits: 10, ShardBound: bound,
				})
			},
			stamp: func(p *pkt.Packet, i int) { p.SendAt = int64(i % 4096) },
		},
		{
			name: "policy-sharded",
			mk: func(bound int) AdmitQdisc {
				q, err := NewPolicySharded(PolicyShardedOptions{
					Policy: PolicySpecPFabric, Shards: 8, ShardBound: bound, EvictAfter: 2,
				})
				if err != nil {
					t.Fatal(err)
				}
				return q
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want, wrefused := churnReleases(t, c.mk(0), 9, 120, 256, 4, c.stamp)
			got, grefused := churnReleases(t, c.mk(hugeBound), 9, 120, 256, 4, c.stamp)
			if wrefused != 0 || grefused != 0 {
				t.Fatalf("refused %d/%d packets on never-triggering bounds", wrefused, grefused)
			}
			if len(got) != len(want) {
				t.Fatalf("bounded released %d packets, unbounded %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("release %d diverges: bounded %+v, unbounded %+v", i, got[i], want[i])
				}
			}
		})
	}
}
