package qdisc

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eiffel/internal/pkt"
	"eiffel/internal/queue"
	"eiffel/internal/shardq"
)

// This file is the parallel-egress front over the sharded runtimes:
// consumer GROUPS. PRs 1–4 scaled the producer side (lock-free rings,
// multi-slot claims, batched admission) while every dequeue still funneled
// through one consumer goroutine — the serial-egress bottleneck. A
// multi-queue NIC has no such funnel: each TX queue is drained by its own
// core. MultiSharded and MultiShaped model exactly that topology — the
// runtime's shards partition into G consumer groups (shardq
// Options.NumGroups), each drained by a dedicated worker into its own
// EgressSink (one NIC TX queue). Flow-hash confinement means a flow's
// shard — and therefore the flow itself — belongs to exactly one group, so
// per-flow dequeue order is identical to the single-consumer qdisc with
// ZERO new cross-worker synchronization on the hot path; only the
// interleaving across groups (across TX queues, where ordering never held
// on the wire anyway) is relaxed.

// EgressSink models one egress transmit queue — a NIC TX ring, a DPDK
// port queue, a per-core pacer. Each consumer-group worker owns one sink
// and hands it every batch it drains. Tx is called only from that group's
// worker goroutine; ps is the worker's reusable scratch, valid only for
// the duration of the call (copy what must outlive it).
type EgressSink interface {
	Tx(ps []*pkt.Packet)
}

// CountingSink is the trivial EgressSink: an atomic packet counter, the
// "TX queue" of benchmarks and experiments where transmission is free.
type CountingSink struct{ n atomic.Int64 }

// Tx implements EgressSink.
func (c *CountingSink) Tx(ps []*pkt.Packet) { c.n.Add(int64(len(ps))) }

// Count returns how many packets have been handed to the sink. Safe from
// any goroutine.
func (c *CountingSink) Count() int64 { return c.n.Load() }

// multiGroup is one group worker's qdisc-side scratch: the node→packet
// conversion buffer. Padded so concurrent workers never false-share.
type multiGroup struct {
	scratch []*shardq.Node
	_       [64]byte
}

// MultiShardedOptions sizes a MultiSharded qdisc.
type MultiShardedOptions struct {
	ShardedOptions
	// Groups is the consumer-group count, rounded up to a power of two and
	// clamped to the shard count (default 1 — the single-consumer
	// topology, behaviorally identical to Sharded).
	Groups int
}

// MultiSharded is Sharded with parallel egress: the same flow-hashed,
// ring-fronted shard array, drained by one worker per consumer group
// instead of one worker total. Enqueue/EnqueueBatch are safe from any
// number of producer goroutines, exactly as in Sharded; the consuming
// side is GroupDequeueBatch/GroupNextTimer, safe concurrently across
// DISTINCT groups with each group driven by one goroutine at a time.
// There is no single-consumer Dequeue — a serial drain of a parallel
// front would only reintroduce the bottleneck this type removes (use
// Sharded for that deployment), and skipping it also means no release
// buffer: every popped packet goes straight to the group's sink.
type MultiSharded struct {
	rt     *shardq.Q
	name   string
	groups []multiGroup

	// prodPool recycles runtime staging handles for EnqueueBatch, as in
	// Sharded.
	prodPool sync.Pool

	// Lifecycle and conservation accounting (State/Egress/Admitted/
	// Released promote from here); see lifecycle.go.
	egressState
}

// NewMultiSharded returns a MultiSharded qdisc whose shards each run an
// Eiffel cFFS with the given geometry, partitioned into opt.Groups
// consumer groups.
func NewMultiSharded(opt MultiShardedOptions) *MultiSharded {
	if opt.Batch <= 0 {
		opt.Batch = 64
	}
	if opt.Buckets <= 0 {
		opt.Buckets = 4096
	}
	m := &MultiSharded{
		rt: shardq.New(shardq.Options{
			NumShards: opt.Shards,
			NumGroups: opt.Groups,
			RingBits:  opt.RingBits,
			Kind:      queue.KindCFFS,
			Queue:     eiffelCfg(opt.Buckets, opt.HorizonNs, opt.Start),
			DirectDue: opt.DirectDue,
		}),
		name: "Eiffel+egress-groups",
	}
	m.groups = make([]multiGroup, m.rt.NumGroups())
	m.prodPool.New = func() any { return m.rt.NewProducer(0) }
	return m
}

// Name labels the qdisc in result tables.
func (m *MultiSharded) Name() string { return m.name }

// Len returns packets published but not yet drained, same transient-
// overcount contract as Sharded.Len. Safe from any goroutine.
func (m *MultiSharded) Len() int { return m.rt.Len() }

// AdmitIdle reports no refusable admission in flight (see
// shardq.Q.AdmitIdle); the lifecycle drains gate quiescence on it.
func (m *MultiSharded) AdmitIdle() bool { return m.rt.AdmitIdle() }

// Stats returns the runtime's shard/batch counters.
func (m *MultiSharded) Stats() shardq.Snapshot { return m.rt.Stats() }

// NumShards returns the shard count.
func (m *MultiSharded) NumShards() int { return m.rt.NumShards() }

// NumGroups returns the consumer-group count.
func (m *MultiSharded) NumGroups() int { return m.rt.NumGroups() }

// GroupFor returns the consumer group that will drain p's flow — the only
// group whose worker ever releases it.
func (m *MultiSharded) GroupFor(flow uint64) int { return m.rt.GroupFor(flow) }

// GroupLen returns consumer group g's queued-but-undrained packet count
// (the watchdog's backlog signal). Safe from any goroutine, same
// transient-overcount contract as Len.
func (m *MultiSharded) GroupLen(g int) int { return m.rt.GroupLen(g) }

// Enqueue admits one packet. Safe for concurrent producers. Infallible —
// it cannot refuse, so it must not be called after Close (use TryEnqueue
// for producers that race the lifecycle).
func (m *MultiSharded) Enqueue(p *pkt.Packet, _ int64) {
	m.rt.Enqueue(p.Flow, &p.TimerNode, uint64(p.SendAt))
	m.admit(1)
}

// TryEnqueue admits one packet unless the front is closed (or its shard
// is at a configured occupancy bound) and reports the outcome. Safe for
// concurrent producers; the refusal path is how producers observe Close.
func (m *MultiSharded) TryEnqueue(p *pkt.Packet, _ int64) bool {
	if !m.rt.TryEnqueue(p.Flow, &p.TimerNode, uint64(p.SendAt)) {
		return false
	}
	m.admit(1)
	return true
}

// EnqueueBatch admits a whole run of packets at once, staging per shard
// and publishing each shard's run as one multi-slot ring claim. Safe for
// concurrent producers; everything is published on return. Infallible,
// like Enqueue: not for use after Close.
func (m *MultiSharded) EnqueueBatch(ps []*pkt.Packet, _ int64) {
	b := m.prodPool.Get().(*shardq.Producer)
	for _, p := range ps {
		b.Enqueue(p.Flow, &p.TimerNode, uint64(p.SendAt))
	}
	// FlushAdmit instead of Flush for the admitted count alone: with no
	// bound and the front open nothing is ever refused, and a post-Close
	// misuse at least keeps the conservation identity honest.
	m.admit(b.FlushAdmit().Admitted)
	m.prodPool.Put(b)
}

// GroupDequeueBatch pops up to len(out) release-eligible packets from
// consumer group g in the group's merged priority order and returns how
// many it wrote. Group-worker-side: distinct groups concurrently, one
// goroutine per group at a time.
func (m *MultiSharded) GroupDequeueBatch(g int, now int64, out []*pkt.Packet) int {
	mg := &m.groups[g]
	if cap(mg.scratch) < len(out) {
		mg.scratch = make([]*shardq.Node, len(out))
	}
	nodes := mg.scratch[:len(out)]
	k := m.rt.GroupDequeueBatch(g, uint64(now), nodes)
	for i := 0; i < k; i++ {
		out[i] = pkt.FromTimerNode(nodes[i])
	}
	clear(nodes[:k]) // drop the handles: scratch must not pin released packets
	return k
}

// GroupNextTimer returns when consumer group g next needs service: the
// soonest deadline across the group's shards, clamped to now when it has
// already passed. ok=false means the group holds nothing.
// Group-worker-side.
func (m *MultiSharded) GroupNextTimer(g int, now int64) (int64, bool) {
	r, ok := m.rt.GroupMinRank(g)
	if !ok {
		return 0, false
	}
	t := int64(r)
	if t < now {
		t = now
	}
	return t, true
}

// serveIdleNap is how long a Serve worker sleeps when its group has
// nothing to drain: long enough that an idle group costs ~zero CPU (the
// poll itself settles to a few atomic loads once the head cache is
// warm), short enough that a fresh burst waits at most tens of
// microseconds.
const serveIdleNap = 50 * time.Microsecond

// Serve starts one supervised drain worker per consumer group: worker g
// loops GroupDequeueBatch at clock()'s current value and disposes every
// non-empty batch through sinks[g] (len(sinks) must equal NumGroups;
// batch sizes each worker's scratch, default 64). Sinks that implement
// FallibleSink get the full retry/backoff/deadline treatment under the
// default RetryPolicy; use ServeWith to tune it. It returns a stop
// function that halts the workers, waits for them to exit, and then
// DRAINS the remaining backlog to the same sinks through the graceful
// lifecycle (Close + Drain) — a stopped Serve leaves the front closed
// and exactly conserved, never with abandoned packets (the historical
// behavior, which stranded whatever was still queued with no
// accounting). Use ServeWith and Server.StopForce for the fast shutdown
// that releases the backlog instead of transmitting it.
//
// Serve is a POLLING front, the BESS/DPDK deployment style: an idle
// worker naps serveIdleNap between polls rather than arming a timer, so
// a drained group costs one wakeup per nap instead of a spinning core,
// and clock stays a pure value source (it is never asked how a virtual
// duration maps to wall time). Deployments that want timer-driven
// wakeups should drive GroupDequeueBatch themselves, arming real timers
// from GroupNextTimer — which is exactly what that method exists for.
func (m *MultiSharded) Serve(clock func() int64, sinks []EgressSink, batch int) (stop func()) {
	srv := m.ServeWith(clock, sinks, ServeOptions{Batch: batch})
	return func() { srv.Stop() }
}

// ServeWith is Serve with the full supervision surface exposed: the
// returned Server reports per-group health (panic restarts, stall
// flags, backlog) and owns the stop protocol (Stop drains gracefully,
// StopForce releases). See ServeOptions for the retry, restart, and
// watchdog knobs.
func (m *MultiSharded) ServeWith(clock func() int64, sinks []EgressSink, opt ServeOptions) *Server {
	return startServer(m, &m.egressState, m.rt.Close, clock, sinks, opt)
}

// Close quiesces admission: every subsequent TryEnqueue (and runtime-
// level FlushAdmit) refuses with shardq.PushClosed, so producers drain
// to a stop while the queued backlog stays intact for Drain or
// CloseForce. Idempotent; safe from any goroutine.
func (m *MultiSharded) Close() { lifecycleClose(&m.egressState, m.rt.Close) }

// Drain closes the front and runs the entire remaining backlog to the
// sinks (one per group, same contract as Serve), retrying fallible
// sinks under opt.Retry and degrading by counted drops, then marks the
// front closed and reports the conservation terms at quiescence.
// Requires exclusive access to every group — stop Serve workers first
// (Server.Stop does exactly this, in order).
func (m *MultiSharded) Drain(sinks []EgressSink, opt ServeOptions) DrainReport {
	return lifecycleDrain(m, &m.egressState, m.rt.Close, sinks, opt)
}

// CloseForce closes the front and releases the remaining backlog to the
// caller instead of the sinks: release (when non-nil) sees every queued
// packet, e.g. pool.Put. It runs on the calling goroutine only, so a
// non-concurrent pkt.Pool is safe. Same exclusivity contract as Drain.
func (m *MultiSharded) CloseForce(release func(*pkt.Packet)) DrainReport {
	return lifecycleCloseForce(m, &m.egressState, m.rt.Close, release)
}

// MultiShapedOptions sizes a MultiShaped qdisc.
type MultiShapedOptions struct {
	ShapedShardedOptions
	// Groups is the consumer-group count (default 1), as in
	// MultiShardedOptions.
	Groups int
}

// MultiShaped is ShapedSharded with parallel egress: per-shard decoupled
// shaper→scheduler pipelines drained by one worker per consumer group.
// Each group's worker migrates and drains on its own clock; flows never
// span groups, so per-flow release gating ("never before SendAt") and
// priority order are exactly the single-consumer qdisc's no matter how
// the workers' clocks skew. Same concurrency contract as MultiSharded.
type MultiShaped struct {
	rt       *shardq.Shaped
	name     string
	rankGran uint64
	groups   []multiGroup

	prodPool sync.Pool

	// Lifecycle and conservation accounting; see lifecycle.go.
	egressState
}

// NewMultiShaped returns a MultiShaped qdisc with the given geometry,
// partitioned into opt.Groups consumer groups.
func NewMultiShaped(opt MultiShapedOptions) *MultiShaped {
	base := opt.ShapedShardedOptions.withDefaults()
	schedGran := base.schedGran()
	m := &MultiShaped{
		rt: shardq.NewShaped(shardq.ShapedOptions{
			NumShards: base.Shards,
			NumGroups: opt.Groups,
			RingBits:  base.RingBits,
			Shaper:    eiffelCfg(base.ShaperBuckets, base.HorizonNs, base.Start),
			Sched:     queue.Config{NumBuckets: base.SchedBuckets, Granularity: schedGran},
			Pair: func(n *shardq.Node) *shardq.Node {
				return &pkt.FromTimerNode(n).SchedNode
			},
		}),
		name:     "Eiffel+shaped-egress-groups",
		rankGran: schedGran,
	}
	m.groups = make([]multiGroup, m.rt.NumGroups())
	m.prodPool.New = func() any { return m.rt.NewProducer(0) }
	return m
}

// Name labels the qdisc in result tables.
func (m *MultiShaped) Name() string { return m.name }

// Len returns packets published but not yet drained, wherever they sit —
// ring, shaper, or scheduler. Same transient-overcount contract as
// ShapedSharded.Len.
func (m *MultiShaped) Len() int { return m.rt.Len() }

// AdmitIdle reports no refusable admission in flight (see
// shardq.Shaped.AdmitIdle); the lifecycle drains gate quiescence on it.
func (m *MultiShaped) AdmitIdle() bool { return m.rt.AdmitIdle() }

// Stats returns the runtime's shard/migration/batch counters.
func (m *MultiShaped) Stats() shardq.Snapshot { return m.rt.Stats() }

// NumGroups returns the consumer-group count.
func (m *MultiShaped) NumGroups() int { return m.rt.NumGroups() }

// GroupFor returns the consumer group that will drain p's flow.
func (m *MultiShaped) GroupFor(flow uint64) int { return m.rt.GroupFor(flow) }

// RankGranularity returns the scheduler bucket width (see
// ShapedSharded.RankGranularity).
func (m *MultiShaped) RankGranularity() uint64 { return m.rankGran }

// GroupLen returns consumer group g's queued-but-undrained packet count
// wherever it sits — ring, shaper, or scheduler. Safe from any
// goroutine, same transient-overcount contract as Len.
func (m *MultiShaped) GroupLen(g int) int { return m.rt.GroupLen(g) }

// Enqueue admits one packet carrying both keys. Safe for concurrent
// producers. Infallible: not for use after Close (see
// MultiSharded.Enqueue).
func (m *MultiShaped) Enqueue(p *pkt.Packet, _ int64) {
	m.rt.Enqueue(p.Flow, &p.TimerNode, uint64(p.SendAt), p.Rank)
	m.admit(1)
}

// TryEnqueue admits one packet unless the front is closed (or its shard
// is at a configured occupancy bound) and reports the outcome. Safe for
// concurrent producers.
func (m *MultiShaped) TryEnqueue(p *pkt.Packet, _ int64) bool {
	if !m.rt.TryEnqueue(p.Flow, &p.TimerNode, uint64(p.SendAt), p.Rank) {
		return false
	}
	m.admit(1)
	return true
}

// EnqueueBatch admits a whole run of packets at once. Safe for concurrent
// producers; everything is published on return. Infallible: not for use
// after Close.
func (m *MultiShaped) EnqueueBatch(ps []*pkt.Packet, _ int64) {
	b := m.prodPool.Get().(*shardq.ShapedProducer)
	for _, p := range ps {
		b.Enqueue(p.Flow, &p.TimerNode, uint64(p.SendAt), p.Rank)
	}
	m.admit(b.FlushAdmit().Admitted)
	m.prodPool.Put(b)
}

// GroupDequeueBatch migrates group g's due packets shaper→scheduler at
// now, then pops up to len(out) release-eligible packets in the group's
// merged priority order. Group-worker-side.
func (m *MultiShaped) GroupDequeueBatch(g int, now int64, out []*pkt.Packet) int {
	mg := &m.groups[g]
	// Chunked like ShapedSharded.DequeueBatch, so the node→packet
	// conversion stays cache-resident behind the runtime's drain.
	const chunk = 256
	if cap(mg.scratch) < chunk {
		mg.scratch = make([]*shardq.Node, chunk)
	}
	k := 0
	for k < len(out) {
		want := len(out) - k
		if want > chunk {
			want = chunk
		}
		nodes := mg.scratch[:want]
		n := m.rt.GroupDequeueBatch(g, uint64(now), ^uint64(0), nodes)
		for i := 0; i < n; i++ {
			out[k] = pkt.FromSchedNode(nodes[i])
			k++
		}
		clear(nodes[:n]) // release the popped nodes: scratch must not pin packets
		if n < want {
			break
		}
	}
	return k
}

// GroupNextTimer returns when consumer group g next needs service: "now"
// whenever a release-eligible packet already sits in one of the group's
// schedulers — INCLUDING packets this very call's migration pass just
// made eligible (the delivery-window edge the single-consumer NextTimer
// fix of PR 2 covers: a due packet parked in the shaper, or still in a
// ring, must not wait behind a far-future "next release" answer) —
// otherwise the group's soonest shaper deadline. Group-worker-side.
func (m *MultiShaped) GroupNextTimer(g int, now int64) (int64, bool) {
	if m.rt.GroupSchedLen(g) > 0 {
		return now, true
	}
	r, ok := m.rt.GroupNextRelease(g, uint64(now))
	if m.rt.GroupSchedLen(g) > 0 {
		// The migration pass inside GroupNextRelease moved due packets
		// into the group's schedulers: they are eligible NOW.
		return now, true
	}
	if !ok {
		return 0, false
	}
	t := int64(r)
	if t < now {
		t = now
	}
	return t, true
}

// Serve starts one supervised drain worker per consumer group; identical
// contract to MultiSharded.Serve (each worker passes its own clock value
// to the migration pass, so shaping precision follows the poll cadence).
func (m *MultiShaped) Serve(clock func() int64, sinks []EgressSink, batch int) (stop func()) {
	srv := m.ServeWith(clock, sinks, ServeOptions{Batch: batch})
	return func() { srv.Stop() }
}

// ServeWith is Serve with the full supervision surface; see
// MultiSharded.ServeWith.
func (m *MultiShaped) ServeWith(clock func() int64, sinks []EgressSink, opt ServeOptions) *Server {
	return startServer(m, &m.egressState, m.rt.Close, clock, sinks, opt)
}

// Close quiesces admission; see MultiSharded.Close.
func (m *MultiShaped) Close() { lifecycleClose(&m.egressState, m.rt.Close) }

// Drain closes the front and runs the remaining backlog to the sinks —
// shaper gates open for the drain (everything still queued transmits
// immediately, release times notwithstanding: a closing front prefers
// delivery over pacing). See MultiSharded.Drain for the contract.
func (m *MultiShaped) Drain(sinks []EgressSink, opt ServeOptions) DrainReport {
	return lifecycleDrain(m, &m.egressState, m.rt.Close, sinks, opt)
}

// CloseForce closes the front and releases the remaining backlog to the
// caller; see MultiSharded.CloseForce.
func (m *MultiShaped) CloseForce(release func(*pkt.Packet)) DrainReport {
	return lifecycleCloseForce(m, &m.egressState, m.rt.Close, release)
}

// --- Parallel-egress contention replays (the egress experiment substrate) ---

// EgressResult reports one parallel-egress contention replay.
type EgressResult struct {
	// Packets is the total number of packets pushed through the qdisc.
	Packets int
	// Elapsed is the wall time from first enqueue to last dequeue.
	Elapsed time.Duration
	// PerGroup is how many packets each group's worker drained.
	PerGroup []int64
}

// Mpps returns aggregate million packets per second through the qdisc.
func (r EgressResult) Mpps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Packets) / r.Elapsed.Seconds() / 1e6
}

// ReplayEgress replays the many-senders scenario against a parallel-
// egress front: one goroutine per packet set enqueues (per packet or in
// ProducerBatch runs) while one drain worker PER CONSUMER GROUP
// concurrently pops its group until every packet has come back out. The
// workload contract matches ReplayContentionOpts — detached packets,
// replayable — so locked, single-consumer, and multi-consumer rows are
// directly comparable.
func ReplayEgress(m *MultiSharded, packets [][]*pkt.Packet, opt ContentionOptions) EgressResult {
	total := 0
	for _, set := range packets {
		total += len(set)
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := range packets {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			produce(m, packets[w], opt)
		}(w)
	}
	var producersDone atomic.Bool
	go func() { wg.Wait(); producersDone.Store(true) }()

	now := horizon // beyond every SendAt: everything is always eligible
	G := m.NumGroups()
	perGroup := make([]int64, G)
	var consumed atomic.Int64
	var cwg sync.WaitGroup
	for g := 0; g < G; g++ {
		cwg.Add(1)
		go func(g int) {
			defer cwg.Done()
			out := make([]*pkt.Packet, 1024)
			var suspectSince time.Time
			for {
				k := m.GroupDequeueBatch(g, now, out)
				if k > 0 {
					perGroup[g] += int64(k) // worker-private slot; read after join
					consumed.Add(int64(k))
					suspectSince = time.Time{}
					continue
				}
				if consumed.Load() >= int64(total) {
					return
				}
				if producersDone.Load() && m.Len() == 0 && consumed.Load() < int64(total) {
					// Looks like lost packets — but unlike the single-consumer
					// replay, this observation RACES the other workers: a peer
					// may have popped the final batch (Len is already 0) and
					// not yet added it to consumed. That window closes as soon
					// as the peer runs again, so only a condition that
					// PERSISTS is a real loss. Defensive: a correct front
					// can't get here durably.
					if suspectSince.IsZero() {
						suspectSince = time.Now()
					} else if time.Since(suspectSince) > 2*time.Second {
						panic("qdisc: egress replay lost packets")
					}
				} else {
					suspectSince = time.Time{}
				}
				runtime.Gosched()
			}
		}(g)
	}
	cwg.Wait()
	elapsed := time.Since(start)
	wg.Wait()
	return EgressResult{Packets: total, Elapsed: elapsed, PerGroup: perGroup}
}

// ReplayEgressFidelity checks the parallel-egress ordering contract: every
// packet set enqueues from its own goroutine; once everything is
// published, one worker per group drains concurrently, each recording
// which packets it released and in what order. It returns how many
// packets came out, how many left their flow's publish order
// (orderViolations — per-flow order must survive parallel egress exactly,
// EgressPackets having made each flow's eligible order well defined), and
// how many flows were released by a group other than the one that owns
// them (groupViolations — the partition invariant: a flow has exactly one
// egress worker).
func ReplayEgressFidelity(m *MultiSharded, packets [][]*pkt.Packet, opt ContentionOptions) (released, orderViolations, groupViolations int) {
	expected := map[uint64][]uint64{}
	for _, set := range packets {
		for _, p := range set {
			expected[p.Flow] = append(expected[p.Flow], p.ID)
		}
	}
	var wg sync.WaitGroup
	for w := range packets {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			produce(m, packets[w], opt)
		}(w)
	}
	wg.Wait()

	type rec struct {
		flow, id uint64
	}
	G := m.NumGroups()
	seqs := make([][]rec, G) // worker-private; merged after the join
	var cwg sync.WaitGroup
	for g := 0; g < G; g++ {
		cwg.Add(1)
		go func(g int) {
			defer cwg.Done()
			out := make([]*pkt.Packet, 1024)
			for {
				k := m.GroupDequeueBatch(g, horizon, out)
				if k == 0 {
					return // quiescent publish: an empty pop means the group is drained
				}
				for _, p := range out[:k] {
					seqs[g] = append(seqs[g], rec{p.Flow, p.ID})
				}
			}
		}(g)
	}
	cwg.Wait()

	flowGroup := map[uint64]int{}
	pos := map[uint64]int{}
	for g, seq := range seqs {
		for _, r := range seq {
			if owner, seen := flowGroup[r.flow]; !seen {
				flowGroup[r.flow] = g
				if m.GroupFor(r.flow) != g {
					groupViolations++
				}
			} else if owner != g {
				groupViolations++
			}
			ids := expected[r.flow]
			if i := pos[r.flow]; i >= len(ids) || ids[i] != r.id {
				orderViolations++
			}
			pos[r.flow]++
			released++
		}
	}
	return released, orderViolations, groupViolations
}
