package qdisc

import (
	"eiffel/internal/pkt"
	"eiffel/internal/shardq"
	"eiffel/internal/stats"
)

// This file is the qdisc-level admission policy hook over the runtime's
// bounded-admission surface (shardq.Options.ShardBound): what to DO with
// a packet the bound refuses. Two policies, the classic pair:
//
//   - drop-tail: the qdisc discards the refused packet and accounts it —
//     aggregate and per-tenant — in a stats.Admission block. The caller
//     gets the refusals back too (it owns the packet memory), but they
//     are already counted as dropped and must not be re-offered.
//   - backpressure: the refusals come back to the caller uncounted; the
//     caller owns the retry (or the drop, which it then accounts itself).
//
// Either way EnqueueBatchAdmit never blocks and never spills past the
// bound, and the invariant offered == admitted + dropped + backpressured
// holds exactly per call.

// AdmitPolicy selects the qdisc-level overload behavior for packets a
// shard occupancy bound refuses.
type AdmitPolicy uint8

const (
	// AdmitDropTail discards refused packets, counting them dropped
	// (aggregate and per-tenant) in the qdisc's Admission block.
	AdmitDropTail AdmitPolicy = iota
	// AdmitBackpressure hands refused packets back to the caller without
	// counting them dropped; the caller owns the retry.
	AdmitBackpressure
)

// String names the policy.
func (p AdmitPolicy) String() string {
	if p == AdmitBackpressure {
		return "backpressure"
	}
	return "drop-tail"
}

// AdmitQdisc is the bounded-admission qdisc surface: a batch-draining
// Qdisc whose batch enqueue reports refused packets instead of admitting
// unboundedly. The three sharded qdiscs implement it.
type AdmitQdisc interface {
	Qdisc
	BatchDequeuer
	// EnqueueBatchAdmit admits ps under the configured shard bound. It
	// returns how many packets were admitted and appends the refused
	// packets, in offer order, to rej (pass a reusable buffer to keep the
	// path allocation-free). With no bound configured it is EnqueueBatch
	// with accounting: everything is admitted.
	EnqueueBatchAdmit(ps []*pkt.Packet, now int64, rej []*pkt.Packet) (int, []*pkt.Packet)
	// Admission returns the qdisc's admission accounting block.
	Admission() *stats.Admission
}

// admitState is the per-qdisc admission configuration and accounting the
// three sharded qdiscs embed.
type admitState struct {
	pol AdmitPolicy
	adm *stats.Admission
}

func newAdmitState(pol AdmitPolicy, tenants int) admitState {
	return admitState{pol: pol, adm: stats.NewAdmission(tenants)}
}

// Admission returns the admission accounting block.
func (a *admitState) Admission() *stats.Admission { return a.adm }

// AdmitPolicy returns the configured overload policy.
func (a *admitState) AdmitPolicy() AdmitPolicy { return a.pol }

// settle converts a runtime admission outcome into the qdisc contract:
// refused nodes become packets appended to rej (via fromNode — SchedNode
// or TimerNode depending on which handle the qdisc publishes), and the
// batch is accounted under the configured policy.
//
//eiffel:hotpath
func (a *admitState) settle(res shardq.Admit, offered int,
	fromNode func(*shardq.Node) *pkt.Packet, rej []*pkt.Packet) (int, []*pkt.Packet) {
	nrej := len(res.Rejected)
	if nrej == 0 {
		a.adm.Account(uint64(offered), uint64(res.Admitted), 0)
		return res.Admitted, rej
	}
	if a.pol == AdmitDropTail {
		a.adm.Account(uint64(offered), uint64(res.Admitted), uint64(nrej))
		for _, n := range res.Rejected {
			p := fromNode(n)
			a.adm.DropTenant(p.Class)
			rej = append(rej, p)
		}
	} else {
		a.adm.Account(uint64(offered), uint64(res.Admitted), 0)
		for _, n := range res.Rejected {
			rej = append(rej, fromNode(n))
		}
	}
	return res.Admitted, rej
}
