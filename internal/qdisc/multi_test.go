package qdisc

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eiffel/internal/pkt"
)

// TestMultiShardedGroupFidelity is the group-fidelity property test at
// the qdisc level: concurrent batched producers, then one worker per
// group draining concurrently. Every flow must be released by exactly its
// owning group and in exactly its publish order — the acceptance
// invariant of the egress experiment, asserted here deterministically.
func TestMultiShardedGroupFidelity(t *testing.T) {
	packets := EgressPackets(4, 4000, 400)
	for _, groups := range []int{1, 2, 4} {
		for _, batch := range []int{0, 256} {
			m := NewMultiSharded(MultiShardedOptions{
				ShardedOptions: ShardedOptions{Shards: 8, Buckets: 2048, HorizonNs: horizon, RingBits: 10},
				Groups:         groups,
			})
			released, orderViol, groupViol := ReplayEgressFidelity(m, packets, ContentionOptions{ProducerBatch: batch})
			if released != 4*4000 {
				t.Fatalf("G=%d batch=%d: released %d of %d", groups, batch, released, 4*4000)
			}
			if orderViol != 0 {
				t.Fatalf("G=%d batch=%d: %d per-flow order violations, want 0", groups, batch, orderViol)
			}
			if groupViol != 0 {
				t.Fatalf("G=%d batch=%d: %d flow-group violations, want 0", groups, batch, groupViol)
			}
			if m.Len() != 0 {
				t.Fatalf("G=%d batch=%d: Len = %d after full drain", groups, batch, m.Len())
			}
		}
	}
}

// TestMultiShardedMatchesShardedPerFlow publishes one packet stream into
// the single-consumer Sharded qdisc and then into a four-group
// MultiSharded, drains the latter with four concurrent workers, and
// requires every flow's release order to be identical — parallel egress
// relaxes only the cross-flow interleaving between groups.
func TestMultiShardedMatchesSharedPerFlow(t *testing.T) {
	packets := EgressPackets(1, 8000, 250)

	single := NewSharded(ShardedOptions{Shards: 8, Buckets: 2048, HorizonNs: horizon, RingBits: 10})
	for _, p := range packets[0] {
		single.Enqueue(p, 0)
	}
	want := map[uint64][]uint64{}
	for {
		p := single.Dequeue(horizon)
		if p == nil {
			break
		}
		want[p.Flow] = append(want[p.Flow], p.ID)
	}

	m := NewMultiSharded(MultiShardedOptions{
		ShardedOptions: ShardedOptions{Shards: 8, Buckets: 2048, HorizonNs: horizon, RingBits: 10},
		Groups:         4,
	})
	for _, p := range packets[0] {
		m.Enqueue(p, 0)
	}
	got := map[uint64][]uint64{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < m.NumGroups(); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]*pkt.Packet, 128)
			local := map[uint64][]uint64{}
			for {
				k := m.GroupDequeueBatch(g, horizon, out)
				if k == 0 {
					break
				}
				for _, p := range out[:k] {
					local[p.Flow] = append(local[p.Flow], p.ID)
				}
			}
			mu.Lock()
			for f, ids := range local {
				got[f] = append(got[f], ids...)
			}
			mu.Unlock()
		}(g)
	}
	wg.Wait()

	if len(got) != len(want) {
		t.Fatalf("flow sets differ: %d vs %d", len(got), len(want))
	}
	for f, ids := range want {
		g := got[f]
		if len(g) != len(ids) {
			t.Fatalf("flow %d: %d packets under groups, %d under single consumer", f, len(g), len(ids))
		}
		for i := range ids {
			if g[i] != ids[i] {
				t.Fatalf("flow %d position %d: packet %d under groups, %d under single consumer",
					f, i, g[i], ids[i])
			}
		}
	}
}

// TestPolicyShardedGroupsMatchSingleConsumer is the policy half of the
// group partition invariant: for pFabric, LQF, and flow-FIFO programs,
// per-flow dequeue order under four concurrent group workers must be
// IDENTICAL to the single-consumer qdisc — shard-confined policy
// execution composes with consumer groups because a flow's whole policy
// state lives in one shard of one group.
func TestPolicyShardedGroupsMatchSingleConsumer(t *testing.T) {
	const policyFIFO = `
root ranker=strict
leaf ff parent=root kind=flow policy=fifo buckets=4096 gran=64
`
	specs := map[string]string{
		"pfabric": PolicySpecPFabric,
		"lqf":     PolicySpecLQF,
		"fifo":    policyFIFO,
	}
	for name, spec := range specs {
		packets := PolicyPackets(4, 3000, 64)
		mk := func(groups int) *PolicySharded {
			q, err := NewPolicySharded(PolicyShardedOptions{Policy: spec, Shards: 8, Groups: groups})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return q
		}

		drain := func(q *PolicySharded, groups int) map[uint64][]uint64 {
			for _, set := range packets {
				for _, p := range set {
					q.Enqueue(p, 0)
				}
			}
			seq := map[uint64][]uint64{}
			var mu sync.Mutex
			var wg sync.WaitGroup
			for g := 0; g < groups; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					out := make([]*pkt.Packet, 64)
					local := map[uint64][]uint64{}
					for {
						k := q.GroupDequeueBatch(g, 0, out)
						if k == 0 {
							break
						}
						for _, p := range out[:k] {
							if q.GroupFor(p.Flow) != g {
								panic("packet released by a group that does not own its flow")
							}
							local[p.Flow] = append(local[p.Flow], p.ID)
						}
					}
					mu.Lock()
					for f, ids := range local {
						if len(seq[f]) > 0 {
							mu.Unlock()
							panic("flow drained by two groups")
						}
						seq[f] = ids
					}
					mu.Unlock()
				}(g)
			}
			wg.Wait()
			return seq
		}

		want := drain(mk(1), 1)
		got := drain(mk(4), 4)
		if len(got) != len(want) {
			t.Fatalf("%s: flow sets differ: %d vs %d", name, len(got), len(want))
		}
		for f, ids := range want {
			g := got[f]
			if len(g) != len(ids) {
				t.Fatalf("%s flow %d: %d packets under groups, %d under single consumer", name, f, len(g), len(ids))
			}
			for i := range ids {
				if g[i] != ids[i] {
					t.Fatalf("%s flow %d position %d: packet %d under groups, %d under single consumer",
						name, f, i, g[i], ids[i])
				}
			}
		}
	}
}

// waitUntil polls cond until it holds, yielding between polls and
// bounding the wait by wall clock — never by iteration count, which a
// single-CPU machine can exhaust inside one scheduler quantum. On
// timeout it fails the test with diag's dump, so a wedged drain reports
// its sink and group counters instead of a bare deadline.
func waitUntil(t *testing.T, timeout time.Duration, cond func() bool, diag func() string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v\n%s", timeout, diag())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// serveDiag renders the drain-side state waitUntil dumps on timeout.
func serveDiag(m *MultiSharded, sinks []*CountingSink) func() string {
	return func() string {
		var b strings.Builder
		fmt.Fprintf(&b, "front: len=%d admitted=%d egress=[%s]",
			m.Len(), m.Admitted(), m.Egress().Snapshot())
		for g := 0; g < m.NumGroups(); g++ {
			fmt.Fprintf(&b, "\ngroup %d: backlog=%d sink=%d", g, m.GroupLen(g), sinks[g].Count())
		}
		return b.String()
	}
}

// TestMultiShardedServe exercises the worker-spawning front: Serve drains
// every group into its sink until stopped.
func TestMultiShardedServe(t *testing.T) {
	m := NewMultiSharded(MultiShardedOptions{
		ShardedOptions: ShardedOptions{Shards: 8, Buckets: 2048, HorizonNs: horizon, RingBits: 10},
		Groups:         2,
	})
	packets := EgressPackets(1, 6000, 100)
	sinks := []*CountingSink{{}, {}}
	stop := m.Serve(func() int64 { return horizon }, []EgressSink{sinks[0], sinks[1]}, 64)
	m.EnqueueBatch(packets[0], 0)
	waitUntil(t, 20*time.Second, func() bool {
		return sinks[0].Count()+sinks[1].Count() >= int64(len(packets[0]))
	}, serveDiag(m, sinks))
	stop()
	if m.Len() != 0 {
		t.Fatalf("Len = %d after serving everything", m.Len())
	}
	if sinks[0].Count() == 0 || sinks[1].Count() == 0 {
		t.Fatalf("a group's sink saw no traffic: %d/%d", sinks[0].Count(), sinks[1].Count())
	}
}

// TestMultiShardedServeStopMidTraffic is the stop-semantics regression
// test: stopping a Serve fleet in the middle of a replay must not
// abandon the backlog (the pre-lifecycle Serve simply killed its
// workers, leaving queued packets stranded). stop() now routes through
// the graceful drain, so at quiescence every admitted packet is
// accounted: admitted == tx'd + dropped + released, with nothing
// dropped on the infallible sinks used here.
func TestMultiShardedServeStopMidTraffic(t *testing.T) {
	m := NewMultiSharded(MultiShardedOptions{
		ShardedOptions: ShardedOptions{Shards: 8, Buckets: 2048, HorizonNs: horizon, RingBits: 10},
		Groups:         2,
	})
	packets := EgressPackets(2, 8000, 200)
	sinks := []*CountingSink{{}, {}}
	srv := m.ServeWith(func() int64 { return horizon }, []EgressSink{sinks[0], sinks[1]}, ServeOptions{})

	var admitted atomic.Int64
	var wg sync.WaitGroup
	for w := range packets {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, p := range packets[w] {
				if m.TryEnqueue(p, 0) {
					admitted.Add(1)
				}
			}
		}(w)
	}
	// Stop mid-traffic: the producers are still pushing. Their remaining
	// TryEnqueues must refuse (the front is closed), and everything
	// admitted before the close must still reach the sinks.
	waitUntil(t, 20*time.Second, func() bool {
		return sinks[0].Count()+sinks[1].Count() >= 100
	}, serveDiag(m, sinks))
	rep := srv.Stop()
	wg.Wait()

	if m.State() != StateClosed {
		t.Fatalf("state = %v after Stop", m.State())
	}
	if !rep.Conserved() {
		t.Fatalf("mid-traffic stop broke conservation: %s", rep)
	}
	if rep.Admitted != uint64(admitted.Load()) {
		t.Fatalf("front admitted %d, producers counted %d", rep.Admitted, admitted.Load())
	}
	if rep.Dropped != 0 || rep.Released != 0 {
		t.Fatalf("infallible stop must not drop or release: %s", rep)
	}
	// The sinks' own ledgers close the loop: tx'd per the report is what
	// the sinks actually saw, and post-close producers were refused, so a
	// late retry of one refused packet must also refuse.
	if got := uint64(sinks[0].Count() + sinks[1].Count()); got != rep.Txd {
		t.Fatalf("sinks saw %d, report says txd=%d", got, rep.Txd)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d at quiescence", m.Len())
	}
	if rep2 := srv.Stop(); rep2 != rep {
		t.Fatalf("Stop not idempotent: %s vs %s", rep2, rep)
	}
}

// TestShardedDirectDueNextTimerAfterDirectWindow is the satellite
// regression test for the DirectDue delivery-window edge: a batch that
// fills straight off the rings leaves due packets parked in the bucketed
// queue (the fallback spill) AND in the rings, and NextTimer must still
// answer "now" once the release buffer empties — not the far-future
// answer a stale head cache would give.
func TestShardedDirectDueNextTimerAfterDirectWindow(t *testing.T) {
	q := NewSharded(ShardedOptions{
		Shards: 1, Buckets: 1024, HorizonNs: 1 << 20,
		RingBits: 3, Batch: 4, DirectDue: true,
	})
	pool := pkt.NewPool(32)
	now := int64(1 << 16)
	enq := func(sendAt int64) {
		p := pool.Get()
		p.Flow = 1
		p.SendAt = sendAt
		q.Enqueue(p, 0)
	}
	// Nine due packets: the ninth finds the 8-slot ring full and spills
	// everything into the cFFS via the producer fallback...
	for i := 0; i < 9; i++ {
		enq(int64(i))
	}
	// ...then refill the ring with eight more due packets, so the next
	// batch's direct window can fill from ring traffic.
	for i := 100; i < 108; i++ {
		enq(int64(i))
	}
	// Drain exactly one release-buffer fill (Batch=4) packet by packet.
	for i := 0; i < 4; i++ {
		if p := q.Dequeue(now); p == nil {
			t.Fatalf("Dequeue %d returned nil with a due backlog", i)
		}
	}
	// 13 due packets remain, split between ring and bucketed queue; the
	// buffer is empty. The very next service moment is NOW.
	if next, ok := q.NextTimer(now); !ok || next != now {
		t.Fatalf("NextTimer = (%d,%v) with %d due packets queued, want (%d,true)",
			next, ok, q.Len(), now)
	}
	// And the remaining backlog must drain completely at now.
	got := 0
	for q.Dequeue(now) != nil {
		got++
	}
	if got != 13 {
		t.Fatalf("drained %d after the direct window, want 13", got)
	}
}

// TestShapedShardedNextTimerAfterDueDelivery pins the shaped analogue of
// the DirectDue delivery-window edge (the class of bug PR 2's NextRelease
// fix covered): packets that were still in the RINGS when they became due
// are routed straight into the schedulers by the delivery pass
// (flushDueLocked), and NextTimer must answer "now" while any of them
// remain undelivered — including right after a batch filled the release
// buffer and was handed out.
func TestShapedShardedNextTimerAfterDueDelivery(t *testing.T) {
	q := NewShapedSharded(ShapedShardedOptions{
		Shards: 2, ShaperBuckets: 1000, HorizonNs: 2000,
		SchedBuckets: 512, RankSpan: 1024, Batch: 4,
	})
	pool := pkt.NewPool(32)
	now := int64(500)
	for i := 0; i < 20; i++ {
		q.Enqueue(mkShaped(pool, uint64(i), int64(i%100), uint64(i)), 0)
	}
	// Everything is due at now but still sitting in rings: the first
	// NextTimer's migration pass delivers ring packets straight into the
	// schedulers, and the answer must be "now".
	if next, ok := q.NextTimer(now); !ok || next != now {
		t.Fatalf("NextTimer(%d) = (%d,%v) with 20 due ring packets, want now", now, next, ok)
	}
	// Drain one full release-buffer fill; scheduler backlog remains, so
	// the next service moment is still NOW.
	for i := 0; i < 4; i++ {
		if p := q.Dequeue(now); p == nil {
			t.Fatalf("Dequeue %d returned nil with a due backlog", i)
		}
	}
	if next, ok := q.NextTimer(now); !ok || next != now {
		t.Fatalf("NextTimer after the delivery window = (%d,%v), want now", next, ok)
	}
	got := 4
	for q.Dequeue(now) != nil {
		got++
	}
	if got != 20 {
		t.Fatalf("drained %d, want 20", got)
	}
	if _, ok := q.NextTimer(now); ok {
		t.Fatal("NextTimer ok on a fully drained qdisc")
	}
}

// TestMultiShapedGroupNextTimer pins the same delivery-window contract on
// the parallel front: each group's GroupNextTimer must answer "now"
// whenever ITS migration pass just made packets eligible, and groups must
// answer independently (a due backlog in one group must not surface in
// another's timer).
func TestMultiShapedGroupNextTimer(t *testing.T) {
	m := NewMultiShaped(MultiShapedOptions{
		ShapedShardedOptions: ShapedShardedOptions{
			Shards: 4, ShaperBuckets: 1000, HorizonNs: 2000,
			SchedBuckets: 512, RankSpan: 1024,
		},
		Groups: 2,
	})
	pool := pkt.NewPool(64)
	// Find one flow per group.
	flowIn := func(g int) uint64 {
		for f := uint64(0); ; f++ {
			if m.GroupFor(f) == g {
				return f
			}
		}
	}
	f0, f1 := flowIn(0), flowIn(1)

	// Group 0: a due packet still in its ring. Group 1: a future packet.
	m.Enqueue(mkShaped(pool, f0, 100, 3), 0)
	m.Enqueue(mkShaped(pool, f1, 900, 5), 0)
	now := int64(200)
	if next, ok := m.GroupNextTimer(0, now); !ok || next != now {
		t.Fatalf("group 0 NextTimer = (%d,%v) with a due ring packet, want now", next, ok)
	}
	if next, ok := m.GroupNextTimer(1, now); !ok || next != 900 {
		t.Fatalf("group 1 NextTimer = (%d,%v), want its own shaper deadline 900", next, ok)
	}

	out := make([]*pkt.Packet, 8)
	if k := m.GroupDequeueBatch(0, now, out); k != 1 {
		t.Fatalf("group 0 drained %d, want its 1 due packet", k)
	}
	if _, ok := m.GroupNextTimer(0, now); ok {
		t.Fatal("group 0 NextTimer ok after draining its only packet")
	}
	if k := m.GroupDequeueBatch(1, 900, out); k != 1 {
		t.Fatalf("group 1 drained %d at its deadline, want 1", k)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after both groups drained", m.Len())
	}
}

// TestMultiShapedGroupFidelity drains a shaped workload with concurrent
// group workers and checks the parallel contract: the flow→group
// partition holds and priority order within each group's output is exact
// to scheduler-bucket granularity.
func TestMultiShapedGroupFidelity(t *testing.T) {
	const rankSpan = uint64(1) << 20
	m := NewMultiShaped(MultiShapedOptions{
		ShapedShardedOptions: ShapedShardedOptions{
			Shards: 8, ShaperBuckets: 2048, HorizonNs: horizon,
			SchedBuckets: 256, RankSpan: rankSpan, RingBits: 10,
		},
		Groups: 4,
	})
	packets := ShapedPackets(4, 3000, rankSpan)
	var wg sync.WaitGroup
	for w := range packets {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			produce(m, packets[w], ContentionOptions{ProducerBatch: 128})
		}(w)
	}
	wg.Wait()

	gran := m.RankGranularity()
	G := m.NumGroups()
	released := make([]int, G)
	var cwg sync.WaitGroup
	for g := 0; g < G; g++ {
		cwg.Add(1)
		go func(g int) {
			defer cwg.Done()
			out := make([]*pkt.Packet, 256)
			var last uint64
			for {
				k := m.GroupDequeueBatch(g, horizon, out)
				if k == 0 {
					return
				}
				for _, p := range out[:k] {
					if m.GroupFor(p.Flow) != g {
						panic("packet released by a group that does not own its flow")
					}
					qr := p.Rank / gran
					if released[g] > 0 && qr < last {
						panic("priority inversion beyond bucket granularity inside a group")
					}
					last = qr
					released[g]++
				}
			}
		}(g)
	}
	cwg.Wait()
	total := 0
	for _, n := range released {
		total += n
	}
	if total != 4*3000 {
		t.Fatalf("released %d of %d", total, 4*3000)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after full drain", m.Len())
	}
}
