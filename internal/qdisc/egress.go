package qdisc

import (
	"time"

	"eiffel/internal/pkt"
	"eiffel/internal/stats"
)

// This file is the fallible half of the egress contract. EgressSink.Tx
// (multi.go) models a transmit queue that never pushes back — fine for
// benchmarks, wrong for a real NIC ring that fills, a pacer that
// throttles, or a driver that hiccups. FallibleSink is the honest
// contract: a sink may accept a prefix of the batch, or none of it, and
// say why. The retry machinery here (txResilient, driven by RetryPolicy)
// turns that into the degradation the runtime wants: bounded retries
// with capped exponential backoff, and a per-packet deadline after which
// the head packet is DROPPED with a counted reason instead of wedging
// the group's worker forever. Every disposal is accounted in a
// stats.Egress block, so conservation (admitted == tx'd + dropped +
// released) stays checkable at quiescence.

// FallibleSink is an egress transmit queue that can refuse work. TryTx
// offers ps and returns how many packets from the FRONT of ps the sink
// accepted (0 <= n <= len(ps)) and, when it accepted fewer than all of
// them, optionally why. Acceptance is prefix-only — a sink must never
// skip packets — so per-flow order survives retries. Like Tx, TryTx is
// called from one worker goroutine at a time and ps is worker scratch,
// valid only for the duration of the call.
//
// A sink implementing both Tx and TryTx should make Tx equivalent to
// retrying TryTx forever; the runtime always prefers TryTx when it is
// present.
type FallibleSink interface {
	TryTx(ps []*pkt.Packet) (n int, err error)
}

// DropReason classifies why the resilient egress path dropped a packet.
type DropReason uint8

const (
	// DropDeadline: the packet's retry deadline (RetryPolicy.Deadline,
	// measured from its first refusal) expired.
	DropDeadline DropReason = iota
	// DropRetryBudget: the packet was refused RetryPolicy.MaxAttempts
	// consecutive times.
	DropRetryBudget
	// DropSinkFailed: the group's sink was declared failed (its panic
	// budget exhausted) and the backlog was disposed at drain.
	DropSinkFailed
)

// String names the reason.
func (r DropReason) String() string {
	switch r {
	case DropDeadline:
		return "deadline"
	case DropRetryBudget:
		return "retry-budget"
	case DropSinkFailed:
		return "sink-failed"
	}
	return "unknown"
}

// RetryPolicy bounds how hard the egress path fights a refusing sink
// before degrading. The zero value selects the defaults noted per field.
type RetryPolicy struct {
	// MaxAttempts is how many consecutive refusals (errors or zero-
	// progress partial accepts) the HEAD packet of a batch survives
	// before it is dropped with DropRetryBudget. Any accepted packet
	// resets the count. Default 8; negative means unlimited (the
	// deadline, if set, still bounds the wait).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each further
	// consecutive refusal doubles it up to MaxBackoff. Default 10µs.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Default 1ms.
	MaxBackoff time.Duration
	// Deadline is the wall budget a head packet may spend being retried,
	// measured from its first refusal; once exceeded it is dropped with
	// DropDeadline. 0 disables the deadline (the attempt budget still
	// applies). The fault-free path never reads the clock.
	Deadline time.Duration
	// Sleep and Now inject the blocking sleep and the monotonic
	// nanosecond clock, so tests drive retry schedules deterministically.
	// Defaults: time.Sleep and a monotonic wall reading.
	Sleep func(time.Duration)
	Now   func() int64
}

// withDefaults resolves the zero-value defaults.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 8
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 10 * time.Microsecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	if p.Now == nil {
		p.Now = monoNow
	}
	return p
}

// monoNow is the default RetryPolicy clock: monotonic nanoseconds.
func monoNow() int64 { return int64(time.Since(monoBase)) }

var monoBase = time.Now()

// backoff returns the capped exponential backoff for the given
// consecutive-refusal count (1-based).
//
//eiffel:hotpath
func (p *RetryPolicy) backoff(refusals int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < refusals; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// txResilient drives sink.TryTx over ps[*idx:] until every packet is
// disposed — accepted by the sink, or dropped under pol's budgets — and
// accounts each disposal in eg as it happens. *idx is the progress
// cursor: it always equals the count of DISPOSED packets, advanced after
// every TryTx return and every drop, so a caller that recovers from a
// sink panic can re-offer exactly the un-disposed remainder (packets a
// panicking TryTx had already consumed are the sink's problem — the
// contract is at-most-once across a panic, exactly-once otherwise).
// onDrop, when non-nil, observes every dropped packet; the packet is the
// callee's to keep or recycle.
//
// The fault-free path — full acceptance on the first call — is two
// atomic adds and no clock reads, and stays allocation-free.
//
//eiffel:hotpath
func txResilient(sink FallibleSink, ps []*pkt.Packet, idx *int, pol *RetryPolicy,
	eg *stats.Egress, onDrop func(*pkt.Packet, DropReason)) {
	refusals := 0
	var firstRefusalNs int64
	haveFirst := false
	for *idx < len(ps) {
		rem := ps[*idx:]
		n, err := sink.TryTx(rem)
		if n < 0 {
			n = 0
		}
		if n > len(rem) {
			n = len(rem)
		}
		if n > 0 {
			eg.TxBatch(n)
			*idx += n
			refusals, haveFirst = 0, false
			if n == len(rem) {
				return
			}
		}
		// The sink refused the (new) head packet: error, or a partial
		// accept that stopped short.
		if err != nil {
			eg.Error()
		} else {
			eg.Partial()
		}
		refusals++
		drop := DropReason(0)
		dropped := false
		if pol.Deadline > 0 {
			now := pol.Now()
			if !haveFirst {
				firstRefusalNs, haveFirst = now, true
			} else if now-firstRefusalNs >= int64(pol.Deadline) {
				drop, dropped = DropDeadline, true
			}
		}
		if !dropped && pol.MaxAttempts > 0 && refusals >= pol.MaxAttempts {
			drop, dropped = DropRetryBudget, true
		}
		if dropped {
			p := ps[*idx]
			*idx++
			if drop == DropDeadline {
				eg.DropDeadline()
			} else {
				eg.DropRetry()
			}
			if onDrop != nil {
				onDrop(p, drop)
			}
			refusals, haveFirst = 0, false
			continue
		}
		d := pol.backoff(refusals)
		eg.Retry(int64(d))
		pol.Sleep(d)
	}
}

// ResilientSink adapts a FallibleSink to the infallible EgressSink
// contract by retrying under a RetryPolicy: Tx returns only when every
// packet is disposed — accepted, or dropped under the policy's budgets
// (so "infallible" is honest: the sink degrades by counted drops, never
// by blocking forever or losing packets silently). Deployments that
// drive GroupDequeueBatch by hand wrap their sink in one of these; the
// Serve workers instead use the retry path directly, accounting into
// the front's own Egress block, so prefer handing Serve the raw
// FallibleSink.
//
// Same concurrency contract as EgressSink: one goroutine at a time. A
// panic out of the underlying TryTx propagates; packets the panicking
// call had consumed are at-most-once.
type ResilientSink struct {
	sink   FallibleSink
	pol    RetryPolicy
	eg     stats.Egress
	onDrop func(*pkt.Packet, DropReason)
}

// NewResilientSink wraps sink with retry/backoff/deadline handling under
// pol (zero fields take the documented defaults). onDrop, when non-nil,
// observes every packet the policy gives up on.
func NewResilientSink(sink FallibleSink, pol RetryPolicy, onDrop func(*pkt.Packet, DropReason)) *ResilientSink {
	return &ResilientSink{sink: sink, pol: pol.withDefaults(), onDrop: onDrop}
}

// Tx implements EgressSink; every packet in ps is disposed on return.
//
//eiffel:hotpath
func (r *ResilientSink) Tx(ps []*pkt.Packet) {
	idx := 0
	txResilient(r.sink, ps, &idx, &r.pol, &r.eg, r.onDrop)
}

// Egress returns the sink's disposal accounting.
func (r *ResilientSink) Egress() *stats.Egress { return &r.eg }
