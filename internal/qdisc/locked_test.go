package qdisc

import (
	"sync"
	"sync/atomic"
	"testing"

	"eiffel/internal/pkt"
)

func TestLockedConcurrentProducers(t *testing.T) {
	q := NewLocked(NewEiffel(4096, 2e9, 0))
	const producers = 8
	const perProducer = 2000

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := pkt.NewPool(perProducer) // pools are not shared: one per goroutine
			for i := 0; i < perProducer; i++ {
				p := pool.Get()
				p.Flow = uint64(w + 1)
				p.Size = 1500
				p.SendAt = int64(i) * 1000
				q.Enqueue(p, 0)
			}
		}(w)
	}

	var consumed atomic.Int64
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		now := int64(0)
		idle := 0
		for consumed.Load() < producers*perProducer && idle < 1_000_000 {
			p := q.Dequeue(now)
			if p == nil {
				now += 1000
				idle++
				continue
			}
			idle = 0
			consumed.Add(1)
		}
	}()
	wg.Wait()
	cwg.Wait()
	if got := consumed.Load(); got != producers*perProducer {
		t.Fatalf("consumed %d of %d", got, producers*perProducer)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func TestLockedName(t *testing.T) {
	q := NewLocked(NewFQ())
	if q.Name() != "FQ+lock" {
		t.Fatalf("Name = %q", q.Name())
	}
}

func BenchmarkLockedContention(b *testing.B) {
	q := NewLocked(NewEiffel(20000, 2e9, 0))
	b.RunParallel(func(pb *testing.PB) {
		pool := pkt.NewPool(64)
		now := int64(0)
		for pb.Next() {
			p := pool.Get()
			p.Size = 1500
			p.SendAt = now
			q.Enqueue(p, now)
			if d := q.Dequeue(now + 1); d != nil {
				pool.Put(d)
			}
			now += 1000
		}
	})
}
