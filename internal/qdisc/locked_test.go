package qdisc

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eiffel/internal/pkt"
)

func TestLockedConcurrentProducers(t *testing.T) {
	q := NewLocked(NewEiffel(4096, 2e9, 0))
	const producers = 8
	const perProducer = 2000

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := pkt.NewPool(perProducer) // pools are not shared: one per goroutine
			for i := 0; i < perProducer; i++ {
				p := pool.Get()
				p.Flow = uint64(w + 1)
				p.Size = 1500
				p.SendAt = int64(i) * 1000
				q.Enqueue(p, 0)
			}
		}(w)
	}

	var consumed atomic.Int64
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		// The consumer must not give up while producers may still be
		// waiting to run: on a single-CPU machine a spin loop with a fixed
		// iteration budget can exhaust itself inside one scheduler quantum,
		// before the first producer has enqueued anything (the seed bug:
		// "consumed 0 of 16000"). Yield when idle, advance the virtual
		// clock off the qdisc's own timer, and bound the wait by wall time
		// so a genuine packet-loss regression still fails instead of
		// hanging.
		deadline := time.Now().Add(30 * time.Second)
		now := int64(0)
		for consumed.Load() < producers*perProducer {
			p := q.Dequeue(now)
			if p == nil {
				if next, ok := q.NextTimer(now); ok && next > now {
					now = next
				} else {
					now += 1000
				}
				if time.Now().After(deadline) {
					return
				}
				runtime.Gosched()
				continue
			}
			consumed.Add(1)
		}
	}()
	wg.Wait()
	cwg.Wait()
	if got := consumed.Load(); got != producers*perProducer {
		t.Fatalf("consumed %d of %d", got, producers*perProducer)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func TestLockedName(t *testing.T) {
	q := NewLocked(NewFQ())
	if q.Name() != "FQ+lock" {
		t.Fatalf("Name = %q", q.Name())
	}
}

// benchContention runs the shared locked-vs-sharded workload (8 producers,
// one consumer) and reports throughput; ns/op covers one full run, and the
// Mpps metric is the figure README quotes.
func benchContention(b *testing.B, mk func() Qdisc, opt ContentionOptions) {
	const producers = 8
	const perProducer = 20000
	workload := ContentionPackets(producers, perProducer)
	q := mk()
	var packets int
	var elapsed time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ReplayContentionOpts(q, workload, opt)
		packets += res.Packets
		elapsed += res.Elapsed
	}
	b.StopTimer()
	if elapsed > 0 {
		b.ReportMetric(float64(packets)/elapsed.Seconds()/1e6, "Mpps")
	}
}

func BenchmarkLockedContention(b *testing.B) {
	benchContention(b, func() Qdisc { return NewLocked(NewEiffel(20000, 2e9, 0)) }, ContentionOptions{})
}

// shardedContentionOpts is the throughput configuration README documents:
// 8 shards x 2500 buckets (the same total bucket memory as the Locked
// baseline's single 20000-bucket cFFS), rings sized to absorb the offered
// burst — as Carousel sizes its wheel to the horizon — and DirectDue
// coalescing already-due packets into one FIFO bucket.
var shardedContentionOpts = ShardedOptions{
	Shards: 8, Buckets: 2500, HorizonNs: 2e9, RingBits: 15, DirectDue: true,
}

// contentionProducerBatch is the producer-side run length the batched
// benchmarks admit through EnqueueBatch (the README's "batched" column).
const contentionProducerBatch = 256

// BenchmarkShardedContention drives the batched producer pipeline —
// staging, multi-slot ring claims, bulk flushes — the configuration the
// runtime is built for and the number README tracks.
func BenchmarkShardedContention(b *testing.B) {
	benchContention(b, func() Qdisc { return NewSharded(shardedContentionOpts) },
		ContentionOptions{ProducerBatch: contentionProducerBatch})
}

// BenchmarkShardedContentionPerElement is the PR-2 admission path — one
// Enqueue (one ring CAS) per packet — kept as the batching ablation.
func BenchmarkShardedContentionPerElement(b *testing.B) {
	benchContention(b, func() Qdisc { return NewSharded(shardedContentionOpts) }, ContentionOptions{})
}

func BenchmarkShardedContentionExact(b *testing.B) {
	// Same geometry with exact cross-shard merge order preserved: every
	// packet cycles through its shard's cFFS.
	opts := shardedContentionOpts
	opts.DirectDue = false
	benchContention(b, func() Qdisc { return NewSharded(opts) },
		ContentionOptions{ProducerBatch: contentionProducerBatch})
}

func BenchmarkShardedContentionExactPerElement(b *testing.B) {
	opts := shardedContentionOpts
	opts.DirectDue = false
	benchContention(b, func() Qdisc { return NewSharded(opts) }, ContentionOptions{})
}
