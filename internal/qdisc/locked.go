package qdisc

import (
	"sync"

	"eiffel/internal/pkt"
)

// Locked wraps a Qdisc behind one mutex — the global qdisc lock that
// serializes all access in the kernel (§4: "Access to qdiscs is serialized
// through a global qdisc lock"). Senders on many cores contend on this
// lock, which is why per-packet work inside the qdisc matters so much: the
// critical section is the whole enqueue/dequeue.
type Locked struct {
	mu sync.Mutex
	q  Qdisc
}

// NewLocked wraps q.
func NewLocked(q Qdisc) *Locked { return &Locked{q: q} }

// Name implements Qdisc.
func (l *Locked) Name() string { return l.q.Name() + "+lock" }

// Len implements Qdisc.
func (l *Locked) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.q.Len()
}

// Enqueue implements Qdisc.
func (l *Locked) Enqueue(p *pkt.Packet, now int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.q.Enqueue(p, now)
}

// Dequeue implements Qdisc.
func (l *Locked) Dequeue(now int64) *pkt.Packet {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.q.Dequeue(now)
}

// NextTimer implements Qdisc.
func (l *Locked) NextTimer(now int64) (int64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.q.NextTimer(now)
}
