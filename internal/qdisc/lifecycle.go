package qdisc

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"eiffel/internal/pkt"
	"eiffel/internal/stats"
)

// This file is the graceful-lifecycle layer of the parallel-egress
// fronts: the state machine running → draining → closed, and the exact
// conservation accounting that makes "closed" checkable. Closing a front
// quiesces producers (the runtime's refusable admission paths refuse
// with shardq.PushClosed), then the backlog — rings, bucketed queues,
// shapers, schedulers — drains to the sinks (Drain) or back to the
// caller (CloseForce), and at quiescence the identity
//
//	admitted == tx'd + dropped + released
//
// holds exactly: every admitted packet is disposed exactly once.
// Admitted is counted on the front's enqueue surfaces; tx'd and dropped
// in the front's stats.Egress by the Serve/Drain egress path; released
// by CloseForce. Callers that drive GroupDequeueBatch or the
// single-consumer Dequeue surface by hand own the disposal of the
// packets they pop — the identity is the contract of worker-driven
// (Serve/Drain) egress.

// LifecycleState is a front's position in the close protocol.
type LifecycleState int32

const (
	// StateRunning: admission open, workers (if any) draining.
	StateRunning LifecycleState = iota
	// StateDraining: Close was called — refusable admission refuses with
	// shardq.PushClosed; the backlog is being run down.
	StateDraining
	// StateClosed: the backlog reached exact quiescence (or was force-
	// released); the conservation identity holds.
	StateClosed
)

// String names the state.
func (s LifecycleState) String() string {
	switch s {
	case StateDraining:
		return "draining"
	case StateClosed:
		return "closed"
	}
	return "running"
}

// drainHorizon is the drain clock: far beyond every release time and
// shaper gate, so a draining front treats everything as eligible, with
// headroom below MaxInt64 against downstream arithmetic.
const drainHorizon = int64(1) << 62

// egressState is the lifecycle and conservation block the parallel-
// egress fronts embed: the close state machine plus the three counters
// the egress side of the conservation identity needs (the fourth, tx'd
// and dropped, live in the stats.Egress block).
type egressState struct {
	state    atomic.Int32
	admitted stats.Counter
	released stats.Counter
	eg       stats.Egress
}

// State returns the front's lifecycle state.
func (e *egressState) State() LifecycleState { return LifecycleState(e.state.Load()) }

// Egress returns the front's egress disposal accounting (tx'd, retries,
// backoff, per-reason drops), live; snapshot it for a consistent read at
// quiescence.
func (e *egressState) Egress() *stats.Egress { return &e.eg }

// Admitted returns how many packets the front's enqueue surfaces have
// admitted since construction.
func (e *egressState) Admitted() uint64 { return e.admitted.Load() }

// Released returns how many packets a forced close handed back.
func (e *egressState) Released() uint64 { return e.released.Load() }

//eiffel:hotpath
func (e *egressState) admit(n int) {
	if n > 0 {
		e.admitted.Add(uint64(n))
	}
}

// admitLagging reports that a producer's admitted add is still in
// flight: the enqueue surfaces count admission AFTER the runtime
// publishes the packet, so a drain can pop and dispose a packet before
// its producer's counter add lands — disposals transiently exceed
// admitted. The drains treat that like any other racing-admitter
// transient and re-pass until it settles. Only this direction spins:
// admitted exceeding disposals at backlog quiescence is the legitimate
// hand-popping caller (who owns disposal of what they popped), reported
// honestly as non-conserved rather than waited on forever.
func (e *egressState) admitLagging() bool {
	s := e.eg.Snapshot()
	return e.admitted.Load() < s.Txd+s.Dropped()+e.released.Load()
}

func (e *egressState) report(start time.Time, drained int) DrainReport {
	s := e.eg.Snapshot()
	return DrainReport{
		Admitted: e.admitted.Load(),
		Txd:      s.Txd,
		Dropped:  s.Dropped(),
		Released: e.released.Load(),
		Drained:  drained,
		Elapsed:  time.Since(start),
	}
}

// DrainReport is the outcome of a Drain/CloseForce: the conservation
// identity's four terms at quiescence, plus what this drain itself moved
// and how long it took.
type DrainReport struct {
	// Admitted is every packet the front's enqueue surfaces accepted over
	// its lifetime.
	Admitted uint64
	// Txd is every packet a sink accepted (workers and drain together).
	Txd uint64
	// Dropped is every packet the egress path gave up on, all reasons
	// (deadline, retry budget, failed sink).
	Dropped uint64
	// Released is every packet a forced close handed back to the caller.
	Released uint64
	// Drained counts packets disposed by this call itself.
	Drained int
	// Elapsed is this call's wall time — the recovery-time bound the
	// chaos harness asserts on.
	Elapsed time.Duration
}

// Conserved reports the exact conservation identity:
// admitted == tx'd + dropped + released.
func (r DrainReport) Conserved() bool {
	return r.Admitted == r.Txd+r.Dropped+r.Released
}

// String renders the report for logs and tables.
func (r DrainReport) String() string {
	return fmt.Sprintf("admitted=%d txd=%d dropped=%d released=%d drained=%d elapsed=%s conserved=%v",
		r.Admitted, r.Txd, r.Dropped, r.Released, r.Drained, r.Elapsed, r.Conserved())
}

// groupDrainer is the drain surface the lifecycle and serve machinery
// runs over — satisfied by MultiSharded, MultiShaped, and PolicySharded.
type groupDrainer interface {
	NumGroups() int
	Len() int
	GroupLen(g int) int
	GroupDequeueBatch(g int, now int64, out []*pkt.Packet) int
	// AdmitIdle reports no refusable admission in flight between its
	// closed check and its publication. The drains must check it BEFORE
	// Len: once it holds post-close no straggler can still publish, so a
	// subsequent empty Len is final — the other order lets a straggler
	// publish between the two loads and strand a packet.
	AdmitIdle() bool
}

// txStep offers ps[*idx:] to the sink once, recovering from a sink
// panic: on the fallible path it runs the full retry loop (which
// advances *idx incrementally, so the un-disposed remainder survives the
// recover); on the infallible path it counts the whole remainder tx'd.
// Returns whether the sink panicked.
func txStep(sink EgressSink, fs FallibleSink, ps []*pkt.Packet, idx *int,
	pol *RetryPolicy, eg *stats.Egress, onDrop func(*pkt.Packet, DropReason)) (panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
		}
	}()
	if fs != nil {
		txResilient(fs, ps, idx, pol, eg, onDrop)
		return false
	}
	n := len(ps) - *idx
	sink.Tx(ps[*idx:])
	eg.TxBatch(n)
	*idx = len(ps)
	return false
}

// disposeFailed drops ps with DropSinkFailed accounting — the terminal
// disposal when a sink's panic budget is exhausted and its packets must
// not be lost from the conservation identity.
func disposeFailed(ps []*pkt.Packet, eg *stats.Egress, onDrop func(*pkt.Packet, DropReason)) {
	eg.DropFailed(len(ps))
	if onDrop != nil {
		for _, p := range ps {
			onDrop(p, DropSinkFailed)
		}
	}
}

// drainGroup runs group g's backlog down to empty through sink, with the
// same retry/backoff/deadline handling as a Serve worker and a fresh
// panic budget; once that budget is exhausted the group's remaining
// backlog is disposed as failed drops so the drain terminates and
// conservation holds. Returns how many packets it disposed. Exclusive
// access to group g required.
func drainGroup(d groupDrainer, g int, sink EgressSink, opt *ServeOptions,
	eg *stats.Egress, out []*pkt.Packet) (disposed int) {
	fs, _ := sink.(FallibleSink)
	panics := 0
	failed := false
	for {
		k := d.GroupDequeueBatch(g, drainHorizon, out)
		if k == 0 {
			if d.GroupLen(g) == 0 {
				return disposed
			}
			// Published-but-not-yet-poppable is a transient (an admitter
			// that raced Close is completing its claim); yield and re-pop.
			runtime.Gosched()
			continue
		}
		idx := 0
		for idx < k {
			if failed {
				disposeFailed(out[idx:k], eg, opt.OnDrop)
				idx = k
				break
			}
			if txStep(sink, fs, out[:k], &idx, &opt.Retry, eg, opt.OnDrop) {
				panics++
				if opt.MaxRestarts >= 0 && panics > opt.MaxRestarts {
					failed = true
				}
			}
		}
		disposed += k
		clear(out[:k])
	}
}

// lifecycleClose moves running → draining and quiesces the runtime's
// refusable admission paths. Idempotent.
func lifecycleClose(es *egressState, rtClose func()) {
	// The runtime closes regardless of the CAS outcome: Close must quiesce
	// admission even when a concurrent closer won the transition.
	es.state.CompareAndSwap(int32(StateRunning), int32(StateDraining))
	rtClose()
}

// lifecycleDrain is the shared body of the fronts' Drain: close, run
// every group's backlog to the sinks, loop to exact quiescence (a racing
// admitter's final claim is absorbed by re-passing), then mark closed
// and report the conservation terms.
func lifecycleDrain(d groupDrainer, es *egressState, rtClose func(),
	sinks []EgressSink, opt ServeOptions) DrainReport {
	if len(sinks) != d.NumGroups() {
		panic("qdisc: Drain needs one sink per consumer group")
	}
	opt = opt.withDefaults()
	lifecycleClose(es, rtClose)
	start := time.Now()
	out := make([]*pkt.Packet, opt.Batch)
	disposed := 0
	for {
		pass := 0
		for g := 0; g < d.NumGroups(); g++ {
			pass += drainGroup(d, g, sinks[g], &opt, &es.eg, out)
		}
		disposed += pass
		if pass == 0 && d.AdmitIdle() && d.Len() == 0 && !es.admitLagging() {
			break
		}
		if pass == 0 {
			runtime.Gosched()
		}
	}
	es.state.Store(int32(StateClosed))
	return es.report(start, disposed)
}

// lifecycleCloseForce is the shared body of the fronts' CloseForce:
// close, pop everything, and hand each packet to release (e.g. back to
// its pool) instead of a sink, counting it Released.
func lifecycleCloseForce(d groupDrainer, es *egressState, rtClose func(),
	release func(*pkt.Packet)) DrainReport {
	lifecycleClose(es, rtClose)
	start := time.Now()
	out := make([]*pkt.Packet, 256)
	disposed := 0
	for {
		pass := 0
		for g := 0; g < d.NumGroups(); g++ {
			for {
				k := d.GroupDequeueBatch(g, drainHorizon, out)
				if k == 0 {
					break
				}
				if release != nil {
					for i := 0; i < k; i++ {
						release(out[i])
					}
				}
				es.released.Add(uint64(k))
				clear(out[:k])
				pass += k
			}
		}
		disposed += pass
		if pass == 0 && d.AdmitIdle() && d.Len() == 0 && !es.admitLagging() {
			break
		}
		if pass == 0 {
			runtime.Gosched()
		}
	}
	es.state.Store(int32(StateClosed))
	return es.report(start, disposed)
}
