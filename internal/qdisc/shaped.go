package qdisc

import (
	"sync"
	"sync/atomic"

	"eiffel/internal/pifo"
	"eiffel/internal/pkt"
	"eiffel/internal/policy"
	"eiffel/internal/queue"
	"eiffel/internal/shardq"
)

// ShapedSharded is the shaped-and-scheduled sharded qdisc: the multi-
// producer form of the paper's decoupled shaping (§3.2.2, Figure 8). Each
// packet carries two keys — SendAt (when it may leave) and Rank (where it
// goes once it may) — through the two intrusive handles pkt.Packet was
// built with: TimerNode rides the per-shard time-indexed shaper cFFS,
// SchedNode the per-shard priority-indexed scheduler (FFS-indexed vector
// buckets over the fixed RankSpan; see shardq.ShapedOptions). Producers
// publish (TimerNode, SendAt, Rank) triples over lock-free rings; the
// single consumer migrates due packets shaper→scheduler and drains the
// schedulers in merged cross-shard priority order.
//
// Concurrency contract matches Sharded: Enqueue from any number of
// goroutines; Dequeue, DequeueBatch and NextTimer from one consumer
// goroutine (the softirq role).
type ShapedSharded struct {
	rt       *shardq.Shaped
	name     string
	rankGran uint64

	// Release buffer, exactly as in Sharded: everything buffered was
	// already release-eligible when popped.
	buf     []*shardq.Node
	bufHead int
	bufLen  int
	bufN    atomic.Int64

	scratch []*shardq.Node // DequeueBatch conversion space

	// prodPool recycles runtime staging handles for EnqueueBatch, as in
	// Sharded.
	prodPool sync.Pool

	admitState
}

// ShapedShardedOptions sizes a ShapedSharded qdisc.
type ShapedShardedOptions struct {
	// Shards is the shard count, rounded up to a power of two (default 8).
	Shards int
	// ShaperBuckets is the per-shard time-indexed cFFS bucket count
	// (default 4096); shaping granularity = HorizonNs/(2*ShaperBuckets).
	ShaperBuckets int
	// HorizonNs is the shaping horizon covered without overflow.
	HorizonNs int64
	// Start anchors the initial shaper window.
	Start int64
	// SchedBuckets is the per-shard priority-indexed cFFS bucket count
	// (default 4096); priority granularity = RankSpan/(2*SchedBuckets).
	SchedBuckets int
	// RankSpan is the priority range covered without overflow
	// (default 1<<20).
	RankSpan uint64
	// Batch is the consumer-side batch size (default 64).
	Batch int
	// RingBits sizes each shard's MPSC ring at 1<<RingBits slots
	// (default 10).
	RingBits uint
	// ShardBound caps each shard's occupancy for EnqueueBatchAdmit; 0
	// keeps the legacy unbounded spill (see shardq.Options.ShardBound).
	ShardBound int
	// Admit selects what EnqueueBatchAdmit does with refused packets
	// (default AdmitDropTail).
	Admit AdmitPolicy
	// Tenants sizes the per-tenant drop buckets (default 1).
	Tenants int
	// SchedBackend selects the scheduler-side backend family (default
	// SchedVec, the exact FFS vector store). The approximate kinds trade
	// bounded rank inversions for cheaper index maintenance; see
	// SchedInversionBound for what each kind guarantees.
	SchedBackend SchedBackendKind
	// GradAlpha is the gradient backend's weight-decay parameter for
	// SchedGrad (0 selects the gradq default).
	GradAlpha float64
	// RIFOSlots is the fixed window width for SchedRIFO, rounded up to a
	// power of two (0 selects 64).
	RIFOSlots int
}

// SchedBackendKind names a scheduler-side backend family for the shaped
// sharded qdisc: the PR-4 shardq backend hook surfaced as qdisc
// configuration, so a deployment picks its throughput-versus-fidelity
// point with one option.
type SchedBackendKind int

const (
	// SchedVec is the exact FFS-indexed vector-bucket store — the
	// default: priority order exact to the scheduler bucket width.
	SchedVec SchedBackendKind = iota
	// SchedGrad is the approximate gradient backend (shardq.NewGradSched):
	// curvature-estimate min lookup, inversions bounded by the estimate's
	// containment window.
	SchedGrad
	// SchedGradExact is the gradient backend with gradq's Theorem-1 exact
	// index (the zero-width degeneracy): vecSched's exact order through
	// the gradient structure.
	SchedGradExact
	// SchedRIFO is the fixed-rank-window backend (shardq.NewRIFOSched):
	// O(1) enqueue into a small slot window, inversions bounded by one
	// slot's width.
	SchedRIFO
)

// String returns the short name used in experiment tables.
func (k SchedBackendKind) String() string {
	switch k {
	case SchedGrad:
		return "grad"
	case SchedGradExact:
		return "grad-exact"
	case SchedRIFO:
		return "rifo"
	default:
		return "vec"
	}
}

// schedCfg is the scheduler-side queue geometry the options imply.
func (o ShapedShardedOptions) schedCfg() queue.Config {
	return queue.Config{NumBuckets: o.SchedBuckets, Granularity: o.schedGran()}
}

// schedFactory returns the shardq.SchedBackend factory for the configured
// kind, or nil for the default vecSched selection.
func (o ShapedShardedOptions) schedFactory() func(int) shardq.Scheduler {
	cfg := o.schedCfg()
	switch o.SchedBackend {
	case SchedGrad:
		return func(int) shardq.Scheduler {
			return shardq.NewGradSched(cfg, shardq.GradSchedOptions{Alpha: o.GradAlpha})
		}
	case SchedGradExact:
		return func(int) shardq.Scheduler {
			return shardq.NewGradSched(cfg, shardq.GradSchedOptions{Alpha: o.GradAlpha, Exact: true})
		}
	case SchedRIFO:
		return func(int) shardq.Scheduler { return shardq.NewRIFOSched(cfg, o.RIFOSlots) }
	default:
		return nil
	}
}

// SchedInversionBound returns the analytic worst-case rank-inversion
// magnitude of the configured scheduler backend, in rank units, for ranks
// within RankSpan: the bound the approx experiment prints beside each
// measured magnitude and the property tests assert. Options must already
// carry their defaults (withDefaults is applied).
func (o ShapedShardedOptions) SchedInversionBound() uint64 {
	o = o.withDefaults()
	switch o.SchedBackend {
	case SchedGrad:
		return shardq.GradSchedBound(o.schedCfg(), shardq.GradSchedOptions{Alpha: o.GradAlpha})
	case SchedRIFO:
		return shardq.RIFOSchedBound(o.schedCfg(), o.RIFOSlots)
	default:
		return shardq.VecSchedBound(o.schedCfg())
	}
}

// withDefaults fills the queue-geometry defaults shared by the sharded
// qdisc and its single-threaded tree baseline.
func (o ShapedShardedOptions) withDefaults() ShapedShardedOptions {
	if o.Batch <= 0 {
		o.Batch = 64
	}
	if o.ShaperBuckets <= 0 {
		o.ShaperBuckets = 4096
	}
	if o.SchedBuckets <= 0 {
		o.SchedBuckets = 4096
	}
	if o.RankSpan == 0 {
		o.RankSpan = 1 << 20
	}
	return o
}

// schedGran returns the scheduler bucket width the options imply.
func (o ShapedShardedOptions) schedGran() uint64 {
	if g := o.RankSpan / (2 * uint64(o.SchedBuckets)); g > 0 {
		return g
	}
	return 1
}

// NewShapedSharded returns a ShapedSharded qdisc with the given geometry.
func NewShapedSharded(opt ShapedShardedOptions) *ShapedSharded {
	opt = opt.withDefaults()
	schedGran := opt.schedGran()
	s := &ShapedSharded{
		rt: shardq.NewShaped(shardq.ShapedOptions{
			NumShards: opt.Shards,
			RingBits:  opt.RingBits,
			Shaper:    eiffelCfg(opt.ShaperBuckets, opt.HorizonNs, opt.Start),
			Sched:     opt.schedCfg(),
			Pair: func(n *shardq.Node) *shardq.Node {
				return &pkt.FromTimerNode(n).SchedNode
			},
			ShardBound:   opt.ShardBound,
			SchedBackend: opt.schedFactory(),
		}),
		name:       "Eiffel+shaped-shards",
		rankGran:   schedGran,
		buf:        make([]*shardq.Node, opt.Batch),
		admitState: newAdmitState(opt.Admit, opt.Tenants),
	}
	if opt.SchedBackend != SchedVec {
		s.name += "/" + opt.SchedBackend.String()
	}
	s.prodPool.New = func() any { return s.rt.NewProducer(0) }
	return s
}

// Name implements Qdisc.
func (s *ShapedSharded) Name() string { return s.name }

// Len implements Qdisc: packets published but not yet handed out —
// whether still in a ring, waiting in a shaper, migrated into a
// scheduler, or sitting in the consumer's release buffer. Like
// Sharded.Len it may transiently overcount by up to one in-flight batch
// while producers and the consumer run concurrently; it is exact at
// quiescence.
func (s *ShapedSharded) Len() int { return s.rt.Len() + int(s.bufN.Load()) }

// Stats returns the runtime's shard/migration/batch counters.
func (s *ShapedSharded) Stats() shardq.Snapshot { return s.rt.Stats() }

// NumShards returns the shard count.
func (s *ShapedSharded) NumShards() int { return s.rt.NumShards() }

// RankGranularity returns the scheduler bucket width: priority order among
// released packets is exact to this granularity (ranks within one bucket
// release FIFO).
func (s *ShapedSharded) RankGranularity() uint64 { return s.rankGran }

// Enqueue implements Qdisc. Safe for concurrent producers.
func (s *ShapedSharded) Enqueue(p *pkt.Packet, _ int64) {
	s.rt.Enqueue(p.Flow, &p.TimerNode, uint64(p.SendAt), p.Rank)
}

// EnqueueBatch admits a whole run of packets at once, staging per shard
// and publishing each shard's run as one multi-slot ring claim carrying
// both scheduling dimensions. Safe for concurrent producers; equivalent to
// enqueueing the packets one by one — everything is published on return.
func (s *ShapedSharded) EnqueueBatch(ps []*pkt.Packet, _ int64) {
	b := s.prodPool.Get().(*shardq.ShapedProducer)
	for _, p := range ps {
		b.Enqueue(p.Flow, &p.TimerNode, uint64(p.SendAt), p.Rank)
	}
	b.Flush()
	s.prodPool.Put(b)
}

// EnqueueBatchAdmit implements AdmitQdisc: EnqueueBatch under the
// configured shard bound, reporting refused packets instead of spilling.
func (s *ShapedSharded) EnqueueBatchAdmit(ps []*pkt.Packet, _ int64, rej []*pkt.Packet) (int, []*pkt.Packet) {
	b := s.prodPool.Get().(*shardq.ShapedProducer)
	for _, p := range ps {
		b.Enqueue(p.Flow, &p.TimerNode, uint64(p.SendAt), p.Rank)
	}
	res := b.FlushAdmit()
	admitted, rej := s.settle(res, len(ps), pkt.FromTimerNode, rej)
	s.prodPool.Put(b)
	return admitted, rej
}

// Dequeue implements Qdisc: the highest-priority packet whose release time
// has arrived, or nil. Refills the release buffer with a cross-shard batch
// when empty.
func (s *ShapedSharded) Dequeue(now int64) *pkt.Packet {
	if s.bufHead == s.bufLen {
		s.bufHead = 0
		s.bufLen = s.rt.DequeueBatch(uint64(now), ^uint64(0), s.buf)
		s.bufN.Store(int64(s.bufLen))
		if s.bufLen == 0 {
			return nil
		}
	}
	n := s.buf[s.bufHead]
	s.buf[s.bufHead] = nil
	s.bufHead++
	s.bufN.Add(-1)
	return pkt.FromSchedNode(n)
}

// DequeueBatch pops up to len(out) release-eligible packets in merged
// priority order, draining the internal buffer first. It returns how many
// packets it wrote.
func (s *ShapedSharded) DequeueBatch(now int64, out []*pkt.Packet) int {
	k := 0
	for s.bufHead < s.bufLen && k < len(out) {
		out[k] = pkt.FromSchedNode(s.buf[s.bufHead])
		s.buf[s.bufHead] = nil
		s.bufHead++
		s.bufN.Add(-1)
		k++
	}
	if k == len(out) {
		return k
	}
	// Drain in chunks sized to stay cache-resident: the conversion reads
	// each node's line right after the runtime's drain touched it, instead
	// of revisiting a large batch after its head has been evicted.
	const chunk = 256
	if cap(s.scratch) < chunk {
		s.scratch = make([]*shardq.Node, chunk)
	}
	for k < len(out) {
		want := len(out) - k
		if want > chunk {
			want = chunk
		}
		nodes := s.scratch[:want]
		m := s.rt.DequeueBatch(uint64(now), ^uint64(0), nodes)
		for i := 0; i < m; i++ {
			out[k] = pkt.FromSchedNode(nodes[i])
			k++
		}
		clear(nodes[:m]) // release the popped nodes: scratch must not pin packets
		if m < want {
			break
		}
	}
	return k
}

// NextTimer implements Qdisc: "now" whenever a release-eligible packet is
// already buffered or migrated into a scheduler, otherwise the soonest
// shaper deadline across every shard.
func (s *ShapedSharded) NextTimer(now int64) (int64, bool) {
	if s.bufHead < s.bufLen || s.rt.SchedLen() > 0 {
		return now, true
	}
	r, ok := s.rt.NextRelease(uint64(now))
	if s.rt.SchedLen() > 0 {
		// NextRelease's migration pass just moved due packets into the
		// schedulers: they are eligible NOW, regardless of how far off the
		// next still-shaped deadline is.
		return now, true
	}
	if !ok {
		return 0, false
	}
	t := int64(r)
	if t < now {
		t = now
	}
	return t, true
}

// --- Single-threaded baseline: pifo.Tree behind the decoupled shaper ---

// ShapedTree is the single-threaded reference for the same semantics: the
// paper's Figure 8 pipeline built from a pifo.Tree. Packets whose SendAt
// is in the future park in a single time-indexed shaper cFFS (TimerNode);
// once due they migrate into the tree, whose leaf ranks them by the Rank
// annotation (SchedNode). Wrapped in Locked, this is the kernel-style
// global-lock deployment the shapedsched experiment measures
// ShapedSharded against.
type ShapedTree struct {
	tree   *pifo.Tree
	leaf   *pifo.Class
	shaper queue.PQ
}

// NewShapedTree returns a ShapedTree whose shaper and scheduler use the
// same geometry as a ShapedSharded shard, so the comparison isolates the
// runtime, not the queues.
func NewShapedTree(opt ShapedShardedOptions) *ShapedTree {
	opt = opt.withDefaults()
	schedGran := opt.schedGran()
	t := pifo.NewTree(pifo.TreeOptions{
		RootRanker:        policy.StrictChild{},
		RootQueue:         queue.Config{NumBuckets: 64, Granularity: 1},
		ShaperBuckets:     64, // class shaper: unused, packets shape outside
		ShaperGranularity: 1 << 16,
	})
	leaf := t.NewPacketLeaf(nil, policy.RankAnnotation{}, pifo.ClassOptions{
		Name:  "prio",
		Queue: queue.Config{NumBuckets: opt.SchedBuckets, Granularity: schedGran},
	})
	return &ShapedTree{
		tree:   t,
		leaf:   leaf,
		shaper: queue.New(queue.KindCFFS, eiffelCfg(opt.ShaperBuckets, opt.HorizonNs, opt.Start)),
	}
}

// Name implements Qdisc.
func (q *ShapedTree) Name() string { return "Eiffel tree" }

// Len implements Qdisc.
func (q *ShapedTree) Len() int { return q.shaper.Len() + q.tree.Len() }

// Enqueue implements Qdisc: future packets park in the shaper; due packets
// go straight into the tree.
func (q *ShapedTree) Enqueue(p *pkt.Packet, now int64) {
	if p.SendAt > now {
		q.shaper.Enqueue(&p.TimerNode, uint64(p.SendAt))
		return
	}
	q.tree.Enqueue(q.leaf, p, now)
}

// admitDue migrates every shaper packet whose release bucket has arrived
// into the scheduling tree.
func (q *ShapedTree) admitDue(now int64) {
	for {
		r, ok := q.shaper.PeekMin()
		if !ok || int64(r) > now {
			return
		}
		p := pkt.FromTimerNode(q.shaper.DequeueMin())
		q.tree.Enqueue(q.leaf, p, now)
	}
}

// Dequeue implements Qdisc.
func (q *ShapedTree) Dequeue(now int64) *pkt.Packet {
	q.admitDue(now)
	return q.tree.Dequeue(now)
}

// NextTimer implements Qdisc.
func (q *ShapedTree) NextTimer(now int64) (int64, bool) {
	if q.tree.Len() > 0 {
		return now, true
	}
	r, ok := q.shaper.PeekMin()
	if !ok {
		return 0, false
	}
	t := int64(r)
	if t < now {
		t = now
	}
	return t, true
}
