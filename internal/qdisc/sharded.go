package qdisc

import (
	"sync"
	"sync/atomic"

	"eiffel/internal/pkt"
	"eiffel/internal/queue"
	"eiffel/internal/shardq"
)

// Sharded replaces the global qdisc lock with the shardq runtime: flows
// hash to one of N shards, each owning its own Eiffel cFFS shaper behind a
// lock-free MPSC ring. Enqueue is safe from any number of producer
// goroutines and is lock-free in the common case; Dequeue, DequeueBatch
// and NextTimer must be driven by a single consumer goroutine (the softirq
// role), which drains shards in batches picking the minimum-head shard.
//
// This is the scaling answer to Locked: same Qdisc surface, same cFFS per
// shard, no serialization of senders behind one mutex.
type Sharded struct {
	rt   *shardq.Q
	name string

	// Release buffer: DequeueBatch pops ready packets in bulk; Dequeue
	// hands them out one at a time. Everything buffered was already
	// release-eligible when popped, so buffering never releases early.
	buf     []*shardq.Node
	bufHead int
	bufLen  int
	bufN    atomic.Int64 // buffered count, readable from any goroutine for Len

	scratch []*shardq.Node // DequeueBatch conversion space

	// prodPool recycles runtime staging handles for EnqueueBatch, so
	// batch admission is concurrent-producer-safe and allocation-free in
	// steady state without threading per-goroutine handles through the
	// Qdisc surface.
	prodPool sync.Pool

	admitState
}

// ShardedOptions sizes a Sharded qdisc.
type ShardedOptions struct {
	// Shards is the shard count, rounded up to a power of two (default 8).
	Shards int
	// Buckets is the per-shard cFFS bucket count (as NewEiffel's;
	// default 4096).
	Buckets int
	// HorizonNs is the shaping horizon covered without overflow.
	HorizonNs int64
	// Start anchors the initial window.
	Start int64
	// Batch is the consumer-side batch size (default 64).
	Batch int
	// RingBits sizes each shard's MPSC ring at 1<<RingBits slots
	// (default 10).
	RingBits uint
	// DirectDue releases already-due packets in arrival order straight
	// off the producer rings instead of cycling them through the cFFS —
	// the coalesced-bucket fast path; see shardq.Options.DirectDue.
	// Either way a packet is never released before its release bucket:
	// DirectDue gates on the exact SendAt, while the cFFS path releases
	// at bucket-start granularity (up to one granule early), matching
	// the Locked Eiffel baseline's quantized behavior.
	DirectDue bool
	// ShardBound caps each shard's occupancy for the bounded-admission
	// surface (EnqueueBatchAdmit); 0 keeps the legacy unbounded spill.
	// See shardq.Options.ShardBound.
	ShardBound int
	// Admit selects what EnqueueBatchAdmit does with refused packets
	// (default AdmitDropTail); irrelevant with ShardBound 0.
	Admit AdmitPolicy
	// Tenants sizes the per-tenant drop buckets (packets map to buckets
	// by Class; default 1).
	Tenants int
}

// NewSharded returns a Sharded qdisc whose shards each run an Eiffel cFFS
// with the given geometry.
func NewSharded(opt ShardedOptions) *Sharded {
	if opt.Batch <= 0 {
		opt.Batch = 64
	}
	if opt.Buckets <= 0 {
		opt.Buckets = 4096
	}
	s := &Sharded{
		rt: shardq.New(shardq.Options{
			NumShards:  opt.Shards,
			RingBits:   opt.RingBits,
			Kind:       queue.KindCFFS,
			Queue:      eiffelCfg(opt.Buckets, opt.HorizonNs, opt.Start),
			DirectDue:  opt.DirectDue,
			ShardBound: opt.ShardBound,
		}),
		name:       "Eiffel+shards",
		buf:        make([]*shardq.Node, opt.Batch),
		admitState: newAdmitState(opt.Admit, opt.Tenants),
	}
	s.prodPool.New = func() any { return s.rt.NewProducer(0) }
	return s
}

// Name implements Qdisc.
func (s *Sharded) Name() string { return s.name }

// Len implements Qdisc: packets published but not yet handed out,
// including any sitting in the consumer's release buffer. While producers
// and the consumer run concurrently Len may transiently overcount by up
// to one in-flight batch (ring occupancy is published per drain, not per
// element); it is exact whenever the qdisc is quiescent. Callers that
// need an exact count must therefore read it with producers and the
// consumer stopped — the contract the contention harness and the
// concurrent tests rely on.
func (s *Sharded) Len() int { return s.rt.Len() + int(s.bufN.Load()) }

// Stats returns the runtime's shard/batch counters.
func (s *Sharded) Stats() shardq.Snapshot { return s.rt.Stats() }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return s.rt.NumShards() }

// Enqueue implements Qdisc. Safe for concurrent producers.
func (s *Sharded) Enqueue(p *pkt.Packet, _ int64) {
	s.rt.Enqueue(p.Flow, &p.TimerNode, uint64(p.SendAt))
}

// EnqueueBatch admits a whole run of packets at once: packets stage into
// per-shard buffers and each shard's run is published as one multi-slot
// ring claim, amortizing the CAS, the publication barrier, and the flow
// hash dispatch over the run. Safe for concurrent producers (each call
// borrows its own staging handle from an internal pool) and equivalent to
// enqueueing the packets one by one — everything is published on return.
func (s *Sharded) EnqueueBatch(ps []*pkt.Packet, _ int64) {
	b := s.prodPool.Get().(*shardq.Producer)
	for _, p := range ps {
		b.Enqueue(p.Flow, &p.TimerNode, uint64(p.SendAt))
	}
	b.Flush()
	s.prodPool.Put(b)
}

// EnqueueBatchAdmit implements AdmitQdisc: EnqueueBatch under the
// configured shard bound, reporting refused packets instead of spilling.
func (s *Sharded) EnqueueBatchAdmit(ps []*pkt.Packet, _ int64, rej []*pkt.Packet) (int, []*pkt.Packet) {
	b := s.prodPool.Get().(*shardq.Producer)
	for _, p := range ps {
		b.Enqueue(p.Flow, &p.TimerNode, uint64(p.SendAt))
	}
	res := b.FlushAdmit()
	admitted, rej := s.settle(res, len(ps), pkt.FromTimerNode, rej)
	s.prodPool.Put(b)
	return admitted, rej
}

// Dequeue implements Qdisc: one packet whose release time has arrived, or
// nil. Refills the release buffer with a cross-shard batch when empty.
func (s *Sharded) Dequeue(now int64) *pkt.Packet {
	if s.bufHead == s.bufLen {
		s.bufHead = 0
		s.bufLen = s.rt.DequeueBatch(uint64(now), s.buf)
		s.bufN.Store(int64(s.bufLen))
		if s.bufLen == 0 {
			return nil
		}
	}
	n := s.buf[s.bufHead]
	s.buf[s.bufHead] = nil
	s.bufHead++
	s.bufN.Add(-1)
	return pkt.FromTimerNode(n)
}

// DequeueBatch pops up to len(out) release-eligible packets in merged
// priority order, draining the internal buffer first. It returns how many
// packets it wrote.
func (s *Sharded) DequeueBatch(now int64, out []*pkt.Packet) int {
	k := 0
	for s.bufHead < s.bufLen && k < len(out) {
		out[k] = pkt.FromTimerNode(s.buf[s.bufHead])
		s.buf[s.bufHead] = nil
		s.bufHead++
		s.bufN.Add(-1)
		k++
	}
	if k == len(out) {
		return k
	}
	if cap(s.scratch) < len(out)-k {
		s.scratch = make([]*shardq.Node, len(out)-k)
	}
	nodes := s.scratch[:len(out)-k]
	m := s.rt.DequeueBatch(uint64(now), nodes)
	for i := 0; i < m; i++ {
		out[k] = pkt.FromTimerNode(nodes[i])
		k++
	}
	clear(nodes[:m]) // drop the handles: scratch must not pin released packets
	return k
}

// NextTimer implements Qdisc: the soonest deadline across every shard
// (buffered packets are already due, so a non-empty buffer means "now").
func (s *Sharded) NextTimer(now int64) (int64, bool) {
	if s.bufHead < s.bufLen {
		return now, true
	}
	r, ok := s.rt.MinRank()
	if !ok {
		return 0, false
	}
	t := int64(r)
	if t < now {
		t = now
	}
	return t, true
}
