package stats

import (
	"strings"
	"sync"
	"testing"
)

// TestEgressAccounting covers the counter semantics: per-reason drop
// attribution, the Dropped sum, zero-filtered TxBatch, and snapshot
// equality with the live block.
func TestEgressAccounting(t *testing.T) {
	var e Egress
	e.TxBatch(3)
	e.TxBatch(0) // empty disposals must not count a batch
	e.TxBatch(2)
	e.Error()
	e.Partial()
	e.Retry(100)
	e.Retry(0) // zero backoff still counts the retry
	e.DropDeadline()
	e.DropRetry()
	e.DropRetry()
	e.DropFailed(4)
	e.DropFailed(0)

	if e.Txd() != 5 || e.TxBatches() != 2 {
		t.Fatalf("txd=%d batches=%d, want 5/2", e.Txd(), e.TxBatches())
	}
	if e.Errors() != 1 || e.Partials() != 1 || e.Retries() != 2 || e.BackoffNs() != 100 {
		t.Fatalf("errors=%d partials=%d retries=%d backoff=%d, want 1/1/2/100",
			e.Errors(), e.Partials(), e.Retries(), e.BackoffNs())
	}
	if e.DeadlineDrops() != 1 || e.RetryDrops() != 2 || e.FailedDrops() != 4 {
		t.Fatalf("drop attribution %d/%d/%d, want 1/2/4",
			e.DeadlineDrops(), e.RetryDrops(), e.FailedDrops())
	}
	if e.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want the per-reason sum 7", e.Dropped())
	}

	s := e.Snapshot()
	if s.Txd != 5 || s.Dropped() != 7 || s.DeadlineDrops != 1 || s.RetryDrops != 2 || s.FailedDrops != 4 {
		t.Fatalf("snapshot diverged from live block: %+v", s)
	}
	str := s.String()
	for _, want := range []string{"txd=5", "retries=2", "dropped=7", "deadline=1", "retry=2", "failed=4"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
	if clean := (EgressSnapshot{Txd: 9, TxBatches: 1}).String(); strings.Contains(clean, "dropped") || strings.Contains(clean, "errors") {
		t.Fatalf("fault-free String() renders failure fields: %q", clean)
	}
}

// TestEgressConcurrent bangs the block from many goroutines — the
// counters are independent atomics, so totals must be exact.
func TestEgressConcurrent(t *testing.T) {
	var e Egress
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e.TxBatch(2)
				e.Retry(1)
				e.DropDeadline()
			}
		}()
	}
	wg.Wait()
	if e.Txd() != 2*workers*per || e.Retries() != workers*per || e.Dropped() != workers*per {
		t.Fatalf("lost updates: txd=%d retries=%d dropped=%d", e.Txd(), e.Retries(), e.Dropped())
	}
}
