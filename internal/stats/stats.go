// Package stats provides the small statistical toolkit the experiment
// harness uses: online mean/variance, percentiles, CDFs (Figures 9 and 10
// are CDF plots), and fixed-bucket histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Online accumulates count, mean and variance in one pass (Welford).
type Online struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// Count returns the number of samples.
func (o *Online) Count() uint64 { return o.n }

// Mean returns the running mean (0 with no samples).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the sample variance.
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Stddev returns the sample standard deviation.
func (o *Online) Stddev() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest sample.
func (o *Online) Min() float64 { return o.min }

// Max returns the largest sample.
func (o *Online) Max() float64 { return o.max }

// Percentile returns the p-th percentile (0..100) of xs by linear
// interpolation. xs need not be sorted; it is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Mean returns the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// CDF is an empirical cumulative distribution over recorded samples.
type CDF struct {
	samples []float64
	sorted  bool
}

// Add records a sample.
func (c *CDF) Add(x float64) {
	c.samples = append(c.samples, x)
	c.sorted = false
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.samples) }

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	i := sort.SearchFloat64s(c.samples, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.samples))
}

// Quantile returns the q-th quantile (0..1).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	return Percentile(c.samples, q*100)
}

// Points returns n evenly spaced (x, P(X<=x)) pairs spanning the sample
// range, the series the harness prints for CDF figures.
func (c *CDF) Points(n int) (xs, ps []float64) {
	if len(c.samples) == 0 || n < 2 {
		return nil, nil
	}
	c.sort()
	lo, hi := c.samples[0], c.samples[len(c.samples)-1]
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs = append(xs, x)
		ps = append(ps, c.At(x))
	}
	return xs, ps
}

// Median returns the 50th percentile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Table is a simple aligned text table used by the experiment harness to
// print paper-style rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowF appends a row formatting each value with %v (floats as %.4g).
func (t *Table) AddRowF(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}
