package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestAdmissionAccounting(t *testing.T) {
	a := NewAdmission(4)
	a.Account(100, 90, 10)
	a.Account(50, 50, 0)
	if a.Offered() != 150 || a.Admitted() != 140 || a.Dropped() != 10 {
		t.Fatalf("got %d/%d/%d, want 150/140/10", a.Offered(), a.Admitted(), a.Dropped())
	}
	if a.Offered() != a.Admitted()+a.Dropped() {
		t.Fatal("conservation broken: offered != admitted + dropped")
	}
	if got, want := a.DropRatio(), 10.0/150.0; got != want {
		t.Fatalf("DropRatio = %v, want %v", got, want)
	}
}

func TestAdmissionDropRatioEmpty(t *testing.T) {
	if got := NewAdmission(1).DropRatio(); got != 0 {
		t.Fatalf("DropRatio on empty block = %v, want 0", got)
	}
}

func TestAdmissionTenantBuckets(t *testing.T) {
	a := NewAdmission(3) // rounds up to 4
	for i := 0; i < 5; i++ {
		a.DropTenant(1)
	}
	a.DropTenant(2)
	// Tenants hash by low bits: 5 lands in 1's bucket with 4 buckets.
	a.DropTenant(5)
	if got := a.TenantDrops(1); got != 6 {
		t.Fatalf("TenantDrops(1) = %d, want 6 (5 direct + 1 aliased from tenant 5)", got)
	}
	if got := a.TenantDrops(2); got != 1 {
		t.Fatalf("TenantDrops(2) = %d, want 1", got)
	}
	// Negative tenants must index safely, not panic.
	a.DropTenant(-1)
	if got := a.TenantDrops(-1); got != 1 {
		t.Fatalf("TenantDrops(-1) = %d, want 1", got)
	}
}

func TestAdmissionString(t *testing.T) {
	a := NewAdmission(2)
	a.Account(10, 8, 2)
	a.DropTenant(0)
	a.DropTenant(0)
	s := a.String()
	for _, want := range []string{"offered=10", "admitted=8", "dropped=2", "t0=2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

// TestAdmissionConcurrent checks the counters under concurrent batch
// accounting — the qdisc contract is per-call atomicity of each counter,
// with exact totals once all writers are done.
func TestAdmissionConcurrent(t *testing.T) {
	a := NewAdmission(8)
	const workers, rounds = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				a.Account(10, 9, 1)
				a.DropTenant(int32(w))
			}
		}(w)
	}
	wg.Wait()
	if a.Offered() != workers*rounds*10 || a.Admitted() != workers*rounds*9 || a.Dropped() != workers*rounds {
		t.Fatalf("totals %d/%d/%d, want %d/%d/%d", a.Offered(), a.Admitted(), a.Dropped(),
			workers*rounds*10, workers*rounds*9, workers*rounds)
	}
	for w := int32(0); w < workers; w++ {
		if got := a.TenantDrops(w); got != rounds {
			t.Fatalf("TenantDrops(%d) = %d, want %d", w, got, rounds)
		}
	}
}
