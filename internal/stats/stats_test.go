package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOnlineMeanVar(t *testing.T) {
	var o Online
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		o.Add(x)
	}
	if o.Count() != 8 {
		t.Fatalf("Count = %d", o.Count())
	}
	if math.Abs(o.Mean()-5) > 1e-9 {
		t.Fatalf("Mean = %v, want 5", o.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(o.Var()-32.0/7) > 1e-9 {
		t.Fatalf("Var = %v, want %v", o.Var(), 32.0/7)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", o.Min(), o.Max())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {90, 9.1},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestQuickOnlineMatchesBatch(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		var o Online
		sum := 0.0
		for _, x := range raw {
			o.Add(float64(x))
			sum += float64(x)
		}
		want := sum / float64(len(raw))
		scale := math.Max(1, math.Abs(want))
		return math.Abs(o.Mean()-want)/scale < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if got := c.At(50); math.Abs(got-0.5) > 0.02 {
		t.Fatalf("At(50) = %v", got)
	}
	if got := c.Median(); math.Abs(got-50.5) > 1 {
		t.Fatalf("Median = %v", got)
	}
	if got := c.Quantile(0.99); got < 98 || got > 100 {
		t.Fatalf("Q99 = %v", got)
	}
	xs, ps := c.Points(5)
	if len(xs) != 5 || ps[0] > ps[4] {
		t.Fatalf("Points: xs=%v ps=%v", xs, ps)
	}
	if ps[4] != 1 {
		t.Fatalf("last CDF point = %v, want 1", ps[4])
	}
}

func TestCDFRandomMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var c CDF
	for i := 0; i < 1000; i++ {
		c.Add(rng.NormFloat64())
	}
	_, ps := c.Points(20)
	for i := 1; i < len(ps); i++ {
		if ps[i] < ps[i-1] {
			t.Fatal("CDF must be monotone")
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "demo", Headers: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRowF(3.14159, "x")
	s := tab.String()
	if s == "" || len(tab.Rows) != 2 {
		t.Fatal("table rendering broken")
	}
}
