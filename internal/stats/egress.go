package stats

import (
	"fmt"
	"strings"
)

// Egress aggregates fault-tolerant egress accounting for a qdisc front:
// what happened to every packet a drain worker handed its sink. The hot
// (fault-free) path touches exactly two counters per batch — TxBatches
// and Txd — so resilient egress costs two atomic adds over the legacy
// infallible sink. Everything else (retries, backoff, drops) is bumped
// on the failure path only, which is off the fast path by construction.
//
// The drop counters split by reason so attribution is exact:
//
//	DeadlineDrops — the head packet's retry deadline expired
//	RetryDrops    — the head packet's retry budget was exhausted
//	FailedDrops   — the group's sink was declared failed (panic budget
//	                exhausted) and its backlog was disposed at drain
//
// Conservation at quiescence: admitted == Txd + Dropped() + released,
// where admitted and released are tracked by the owning front's
// lifecycle state (see qdisc).
type Egress struct {
	txBatches Counter // TryTx/Tx calls that disposed at least one packet
	txd       Counter // packets accepted by the sink
	errors    Counter // TryTx calls that returned an error
	partials  Counter // TryTx calls that accepted a strict, non-zero prefix
	retries   Counter // re-offers after an error or partial accept
	backoffNs Counter // total nanoseconds slept backing off
	deadline  Counter // packets dropped: per-packet retry deadline expired
	retryDrop Counter // packets dropped: retry budget exhausted
	failed    Counter // packets dropped: sink declared failed
}

// TxBatch records one sink call that accepted n packets.
//
//eiffel:hotpath
func (e *Egress) TxBatch(n int) {
	if n > 0 {
		e.txBatches.Inc()
		e.txd.Add(uint64(n))
	}
}

// Error records one sink call that returned an error.
//
//eiffel:hotpath
func (e *Egress) Error() { e.errors.Inc() }

// Partial records one sink call that accepted a strict non-zero prefix.
//
//eiffel:hotpath
func (e *Egress) Partial() { e.partials.Inc() }

// Retry records one re-offer after a refusal, with the backoff slept
// before it.
//
//eiffel:hotpath
func (e *Egress) Retry(backoffNs int64) {
	e.retries.Inc()
	if backoffNs > 0 {
		e.backoffNs.Add(uint64(backoffNs))
	}
}

// DropDeadline records one packet dropped because its retry deadline
// expired.
//
//eiffel:hotpath
func (e *Egress) DropDeadline() { e.deadline.Inc() }

// DropRetry records one packet dropped because its retry budget was
// exhausted.
//
//eiffel:hotpath
func (e *Egress) DropRetry() { e.retryDrop.Inc() }

// DropFailed records n packets dropped because their group's sink was
// declared failed.
func (e *Egress) DropFailed(n int) {
	if n > 0 {
		e.failed.Add(uint64(n))
	}
}

// Txd returns the total packets accepted by sinks.
func (e *Egress) Txd() uint64 { return e.txd.Load() }

// TxBatches returns the number of sink calls that disposed packets.
func (e *Egress) TxBatches() uint64 { return e.txBatches.Load() }

// Errors returns the number of sink calls that returned an error.
func (e *Egress) Errors() uint64 { return e.errors.Load() }

// Partials returns the number of partial accepts.
func (e *Egress) Partials() uint64 { return e.partials.Load() }

// Retries returns the number of re-offers.
func (e *Egress) Retries() uint64 { return e.retries.Load() }

// BackoffNs returns total nanoseconds slept backing off.
func (e *Egress) BackoffNs() uint64 { return e.backoffNs.Load() }

// DeadlineDrops returns packets dropped on retry-deadline expiry.
func (e *Egress) DeadlineDrops() uint64 { return e.deadline.Load() }

// RetryDrops returns packets dropped on retry-budget exhaustion.
func (e *Egress) RetryDrops() uint64 { return e.retryDrop.Load() }

// FailedDrops returns packets dropped because their sink failed.
func (e *Egress) FailedDrops() uint64 { return e.failed.Load() }

// Dropped returns total packets dropped by the egress path, all reasons.
func (e *Egress) Dropped() uint64 {
	return e.deadline.Load() + e.retryDrop.Load() + e.failed.Load()
}

// EgressSnapshot is a point-in-time copy of an Egress block.
type EgressSnapshot struct {
	TxBatches     uint64
	Txd           uint64
	Errors        uint64
	Partials      uint64
	Retries       uint64
	BackoffNs     uint64
	DeadlineDrops uint64
	RetryDrops    uint64
	FailedDrops   uint64
}

// Dropped returns the snapshot's total drops, all reasons.
func (s EgressSnapshot) Dropped() uint64 {
	return s.DeadlineDrops + s.RetryDrops + s.FailedDrops
}

// Snapshot copies the counters. Each counter is read atomically; the set
// is not a consistent cut while workers run, and is exact at quiescence.
func (e *Egress) Snapshot() EgressSnapshot {
	return EgressSnapshot{
		TxBatches:     e.txBatches.Load(),
		Txd:           e.txd.Load(),
		Errors:        e.errors.Load(),
		Partials:      e.partials.Load(),
		Retries:       e.retries.Load(),
		BackoffNs:     e.backoffNs.Load(),
		DeadlineDrops: e.deadline.Load(),
		RetryDrops:    e.retryDrop.Load(),
		FailedDrops:   e.failed.Load(),
	}
}

// String renders the counters for experiment tables.
func (s EgressSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "txd=%d batches=%d", s.Txd, s.TxBatches)
	if s.Errors > 0 || s.Partials > 0 || s.Retries > 0 {
		fmt.Fprintf(&b, " errors=%d partials=%d retries=%d backoff=%dns",
			s.Errors, s.Partials, s.Retries, s.BackoffNs)
	}
	if d := s.Dropped(); d > 0 {
		fmt.Fprintf(&b, " dropped=%d(deadline=%d retry=%d failed=%d)",
			d, s.DeadlineDrops, s.RetryDrops, s.FailedDrops)
	}
	return b.String()
}
