package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Admission aggregates bounded-admission accounting for a qdisc: how many
// packets were offered, admitted, and dropped, with drops attributed to
// fixed per-tenant buckets. The aggregate counters are bumped once per
// batch (two atomic adds on the hot path, not three per packet); the
// per-tenant buckets are bumped per dropped packet on the refusal path,
// which is off the fast path by construction. The accounting invariant
// the churn harness asserts — offered == admitted + dropped — holds
// exactly under drop-tail, because every refused packet is either counted
// dropped here or handed back to the caller (backpressure), never both.
type Admission struct {
	offered  Counter
	admitted Counter
	dropped  Counter
	tenants  []Counter // drop counters indexed by tenant & (len-1)
}

// NewAdmission returns an accounting block with the given number of
// per-tenant drop buckets (rounded up to a power of two, minimum 1);
// tenants hash into buckets by low bits.
func NewAdmission(tenants int) *Admission {
	if tenants < 1 {
		tenants = 1
	}
	if tenants&(tenants-1) != 0 {
		tenants = 1 << bits.Len(uint(tenants))
	}
	return &Admission{tenants: make([]Counter, tenants)}
}

// Account records one admission batch: offered packets of which admitted
// were published and dropped were refused and discarded. Backpressured
// refusals (returned to the caller for retry) are accounted as neither
// admitted nor dropped — the caller re-offers them.
//
//eiffel:hotpath
func (a *Admission) Account(offered, admitted, dropped uint64) {
	if offered > 0 {
		a.offered.Add(offered)
	}
	if admitted > 0 {
		a.admitted.Add(admitted)
	}
	if dropped > 0 {
		a.dropped.Add(dropped)
	}
}

// DropTenant attributes one dropped packet to tenant's bucket. The
// aggregate drop count is maintained by Account; this only classifies.
//
//eiffel:hotpath
func (a *Admission) DropTenant(tenant int32) {
	a.tenants[int(uint32(tenant))&(len(a.tenants)-1)].Inc()
}

// Offered returns the total packets offered.
func (a *Admission) Offered() uint64 { return a.offered.Load() }

// Admitted returns the total packets admitted.
func (a *Admission) Admitted() uint64 { return a.admitted.Load() }

// Dropped returns the total packets dropped.
func (a *Admission) Dropped() uint64 { return a.dropped.Load() }

// TenantDrops returns tenant's drop-bucket count.
func (a *Admission) TenantDrops(tenant int32) uint64 {
	return a.tenants[int(uint32(tenant))&(len(a.tenants)-1)].Load()
}

// DropRatio returns dropped/offered (0 when nothing was offered).
func (a *Admission) DropRatio() float64 {
	off := a.offered.Load()
	if off == 0 {
		return 0
	}
	return float64(a.dropped.Load()) / float64(off)
}

// String renders the counters for experiment tables.
func (a *Admission) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "offered=%d admitted=%d dropped=%d drop-ratio=%.4f",
		a.offered.Load(), a.admitted.Load(), a.dropped.Load(), a.DropRatio())
	for i := range a.tenants {
		if n := a.tenants[i].Load(); n > 0 {
			fmt.Fprintf(&b, " t%d=%d", i, n)
		}
	}
	return b.String()
}
