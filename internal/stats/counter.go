package stats

import "sync/atomic"

// Counter is a concurrency-safe monotonically increasing event counter.
// The zero value is ready to use. The sharded runtime bumps these from
// many producer goroutines at once, so the experiment harness can report
// ring/batch behaviour without perturbing the hot path with locks.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
//
//eiffel:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//eiffel:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
//
//eiffel:hotpath
func (c *Counter) Load() uint64 { return c.v.Load() }
