// Package wheel implements the timing wheel (Varghese & Lauck) that
// Carousel builds on — the baseline Eiffel's shaping use case is measured
// against (§2, §5.1.1). A timing wheel indexes buckets by time and serves
// elements when their slot's time arrives; it supports only
// non-work-conserving, time-based release: there is deliberately no
// ExtractMin, which is exactly the limitation the paper contrasts with
// Eiffel's queues (a Carousel-style user must poll the wheel on a fixed-
// granularity timer rather than arming a timer for the soonest deadline).
package wheel

import "eiffel/internal/bucket"

// Wheel is a timing wheel over absolute timestamps.
type Wheel struct {
	arr   *bucket.Array
	gran  uint64
	slots uint64
	cur   uint64 // current absolute slot number (time/gran)

	horizonClamps uint64
	lateClamps    uint64
}

// New returns a timing wheel with the given slot count and granularity,
// positioned at start. The horizon is slots*gran: timestamps beyond it
// clamp to the furthest slot (Carousel's documented behaviour).
func New(slots int, gran, start uint64) *Wheel {
	if slots <= 0 {
		panic("wheel: New needs a positive slot count")
	}
	if gran == 0 {
		panic("wheel: New needs a positive granularity")
	}
	return &Wheel{
		arr:   bucket.NewArray(slots),
		gran:  gran,
		slots: uint64(slots),
		cur:   start / gran,
	}
}

// Len returns the number of scheduled elements.
func (w *Wheel) Len() int { return w.arr.Len() }

// Granularity returns the slot width.
func (w *Wheel) Granularity() uint64 { return w.gran }

// Horizon returns the schedulable time span.
func (w *Wheel) Horizon() uint64 { return w.slots * w.gran }

// Clamps returns how many timestamps were clamped to the horizon and how
// many were already in the past.
func (w *Wheel) Clamps() (horizon, late uint64) { return w.horizonClamps, w.lateClamps }

// Schedule inserts n to be released at timestamp ts. Timestamps in the past
// go into the current slot; timestamps beyond the horizon clamp to the last
// future slot.
func (w *Wheel) Schedule(n *bucket.Node, ts uint64) {
	slot := ts / w.gran
	if slot < w.cur {
		w.lateClamps++
		slot = w.cur
	} else if slot >= w.cur+w.slots {
		w.horizonClamps++
		slot = w.cur + w.slots - 1
	}
	w.arr.Push(int(slot%w.slots), n, ts)
}

// HasExpired reports whether some element's slot time is <= now, i.e.
// whether a PopExpired(now) would return a node. It advances the wheel
// cursor over empty elapsed slots (exactly as PopExpired would), so the
// scan cost amortizes instead of repeating.
func (w *Wheel) HasExpired(now uint64) bool {
	if w.arr.Len() == 0 {
		return false
	}
	nowSlot := now / w.gran
	for w.cur <= nowSlot {
		if !w.arr.BucketEmpty(int(w.cur % w.slots)) {
			return true
		}
		w.cur++
	}
	return false
}

// PopExpired returns one element whose slot time is <= now, advancing the
// wheel over empty slots, or nil if nothing is due. Callers drain with a
// loop; a Carousel-style shaper calls this from a periodic timer.
func (w *Wheel) PopExpired(now uint64) *bucket.Node {
	if w.arr.Len() == 0 {
		// Jump directly to the current time so an idle wheel does not
		// crawl slot by slot when traffic resumes.
		if slot := now / w.gran; slot > w.cur {
			w.cur = slot
		}
		return nil
	}
	nowSlot := now / w.gran
	for w.cur <= nowSlot {
		i := int(w.cur % w.slots)
		if !w.arr.BucketEmpty(i) {
			n, _ := w.arr.PopFront(i)
			return n
		}
		w.cur++
	}
	return nil
}

// Remove detaches a scheduled element in O(1).
func (w *Wheel) Remove(n *bucket.Node) { w.arr.Remove(n) }
