package wheel

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"eiffel/internal/bucket"
)

func node() *bucket.Node { return &bucket.Node{} }

func TestHasExpired(t *testing.T) {
	w := New(100, 10, 0)
	if w.HasExpired(500) {
		t.Fatal("HasExpired on empty wheel")
	}
	w.Schedule(node(), 250)
	if w.HasExpired(0) {
		t.Fatal("HasExpired(0) with only a slot-25 element")
	}
	if w.HasExpired(249) { // 249 is slot 24; the element sits in slot 25
		t.Fatal("HasExpired(249) before the element's slot")
	}
	if !w.HasExpired(250) {
		t.Fatal("!HasExpired(250) at the element's slot start")
	}
	if !w.HasExpired(900) {
		t.Fatal("!HasExpired(900) with an overdue element")
	}
	// HasExpired must not consume: the pop still returns the element.
	if n := w.PopExpired(900); n == nil || n.Rank() != 250 {
		t.Fatalf("PopExpired after HasExpired = %v", n)
	}
	if w.HasExpired(900) {
		t.Fatal("HasExpired after the only element was popped")
	}
}

func TestReleaseOrder(t *testing.T) {
	w := New(100, 10, 0)
	ts := []uint64{250, 30, 990, 30, 500}
	for _, x := range ts {
		w.Schedule(node(), x)
	}
	sorted := append([]uint64{}, ts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var got []uint64
	for now := uint64(0); now <= 1000; now += 10 {
		for {
			n := w.PopExpired(now)
			if n == nil {
				break
			}
			if n.Rank() > now+10 {
				t.Fatalf("released rank %d at now=%d", n.Rank(), now)
			}
			got = append(got, n.Rank())
		}
	}
	if len(got) != len(sorted) {
		t.Fatalf("released %d, want %d", len(got), len(sorted))
	}
	for i := range sorted {
		if got[i] != sorted[i] {
			t.Fatalf("order %v, want %v", got, sorted)
		}
	}
}

func TestNothingReleasedEarly(t *testing.T) {
	w := New(10, 100, 0)
	w.Schedule(node(), 550)
	for now := uint64(0); now < 500; now += 100 {
		if w.PopExpired(now) != nil {
			t.Fatalf("released early at now=%d", now)
		}
	}
	if w.PopExpired(599) == nil {
		t.Fatal("due element not released")
	}
}

func TestHorizonClamp(t *testing.T) {
	w := New(4, 10, 0) // horizon 40
	w.Schedule(node(), 1000)
	h, _ := w.Clamps()
	if h != 1 {
		t.Fatalf("horizonClamps = %d, want 1", h)
	}
	// Released at the last slot (time 30..39) despite ts=1000: the wheel
	// cannot wait longer than its horizon.
	if w.PopExpired(39) == nil {
		t.Fatal("clamped element should release at horizon edge")
	}
}

func TestLateClamp(t *testing.T) {
	w := New(8, 10, 0)
	// Advance the wheel, then schedule into the past.
	w.Schedule(node(), 50)
	if w.PopExpired(59) == nil {
		t.Fatal("setup")
	}
	w.PopExpired(59) // drains and advances cur
	w.Schedule(node(), 10)
	_, late := w.Clamps()
	if late != 1 {
		t.Fatalf("lateClamps = %d, want 1", late)
	}
	if w.PopExpired(60) == nil {
		t.Fatal("late element should release immediately")
	}
}

func TestIdleJump(t *testing.T) {
	w := New(16, 1, 0)
	w.PopExpired(1 << 40) // idle: must jump, not crawl
	w.Schedule(node(), 1<<40+5)
	if w.PopExpired(1<<40+5) == nil {
		t.Fatal("element after idle jump not released")
	}
}

func TestRemove(t *testing.T) {
	w := New(8, 1, 0)
	n := node()
	w.Schedule(n, 3)
	w.Remove(n)
	if w.Len() != 0 {
		t.Fatal("Len after Remove")
	}
	if w.PopExpired(10) != nil {
		t.Fatal("removed element released")
	}
}

func TestQuickWheelNeverEarlyNeverLost(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := New(64, 5, 0)
		scheduled := 0
		released := 0
		now := uint64(0)
		idx := 0
		for step := 0; step < 400; step++ {
			if idx < len(raw) && rng.Intn(2) == 0 {
				// Within the horizon of "now" to avoid clamps.
				ts := now + uint64(raw[idx])%(64*5-5)
				w.Schedule(node(), ts)
				scheduled++
				idx++
			}
			now += uint64(rng.Intn(12))
			for {
				n := w.PopExpired(now)
				if n == nil {
					break
				}
				// Never released before its slot started.
				if n.Rank()/5 > now/5 {
					return false
				}
				released++
			}
		}
		now += 64 * 5 * 2
		for w.PopExpired(now) != nil {
			released++
		}
		return released == scheduled && w.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
