// Package hclock reimplements the hClock hierarchical QoS packet scheduler
// (Billaud & Gulati, EuroSys'13 — the NetIOC scheduler in VMware vSphere)
// that §5.1.2 uses as Use Case 2. Every flow carries three tags, exactly as
// Figure 11 expresses it in the extended PIFO model:
//
//	r_rank += size/reservation   (minimum guaranteed rate)
//	l_rank += size/limit         (maximum rate)
//	s_rank += size/share         (proportional weight)
//
// Dequeue serves, in order of preference: the smallest r_rank among flows
// whose reservation clock is due, else the smallest s_rank among flows that
// have not exceeded their limit. Flows over their limit park until l_rank.
//
// The scheduler is generic over its three priority-queue indexes: the
// baseline uses binary min-heaps (O(log n) per tag update, the original
// hClock design), the Eiffel version uses circular FFS queues (O(1)) —
// which is the entire difference Figure 12 measures.
//
// The tag-arbitration core lives in the reusable Hier engine (hier.go);
// Scheduler packages it with a per-flow packet FIFO and a flow registry —
// the single-threaded deployment. The sharded deployment runs one engine
// per shard instead (shardq.NewHierSched).
package hclock

import (
	"fmt"

	"eiffel/internal/pkt"
)

// Backend selects the priority-queue implementation for the three indexes.
type Backend int

// Backends.
const (
	// BackendEiffel uses circular hierarchical FFS queues.
	BackendEiffel Backend = iota
	// BackendHeap uses binary min-heaps (the original hClock).
	BackendHeap
	// BackendApprox uses circular approximate gradient queues, the
	// "hierarchical-based schedules" case of the Figure 20 guide.
	BackendApprox
)

// String names the backend for tables.
func (b Backend) String() string {
	switch b {
	case BackendEiffel:
		return "Eiffel"
	case BackendHeap:
		return "hClock(heap)"
	case BackendApprox:
		return "Eiffel(approx)"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// sChargeScale converts bytes/weight into share-tag units; large enough to
// resolve weight ratios of 1:4096 at byte granularity.
const sChargeScale = 1 << 16

// ShareScale is sChargeScale for callers sizing share-tag indexes: a
// tenant's share tag advances size*ShareScale/weight per service, so a
// share-index granularity of ShareScale*k quantizes at k weighted bytes.
const ShareScale uint64 = sChargeScale

// Flow is one hClock traffic class: a Tenant (the three tags) plus the
// packet FIFO the single-threaded scheduler owns.
type Flow struct {
	// ID is the flow identifier.
	ID uint64

	Tenant

	ring []*pkt.Packet
	head int
	n    int
}

// Len returns the number of queued packets.
func (f *Flow) Len() int { return f.n }

func (f *Flow) push(p *pkt.Packet) {
	if f.n == len(f.ring) {
		size := len(f.ring) * 2
		if size == 0 {
			size = 8
		}
		ring := make([]*pkt.Packet, size)
		for i := 0; i < f.n; i++ {
			ring[i] = f.ring[(f.head+i)%len(f.ring)]
		}
		f.ring, f.head = ring, 0
	}
	f.ring[(f.head+f.n)%len(f.ring)] = p
	f.n++
}

func (f *Flow) pop() *pkt.Packet {
	if f.n == 0 {
		return nil
	}
	p := f.ring[f.head]
	f.ring[f.head] = nil
	f.head = (f.head + 1) % len(f.ring)
	f.n--
	return p
}

// Config sizes a scheduler (or a bare Hier engine).
type Config struct {
	// Backend picks the index implementation.
	Backend Backend
	// AggregateLimitBps caps the scheduler's total output (0 = none);
	// Figure 12 (bottom) runs with a 5 Gbps aggregate limit.
	AggregateLimitBps uint64
	// TagGranularityNs is the bucket width of the time-tag queues
	// (default 2048 ns).
	TagGranularityNs uint64
	// ShareGranularity is the bucket width of the share-tag index. Share
	// tags live in a different domain than the time tags — they advance
	// size*ShareScale/weight per service, ~100M units per full packet at
	// weight 1 — so a bucketed backend wants a granularity proportional
	// to ShareScale or every operation walks hundreds of buckets.
	// 0 means TagGranularityNs*64, the historical flow-scheduler default.
	ShareGranularity uint64
	// Buckets is the bucket count per queue half (default 1<<14).
	Buckets int
	// RateDiv divides every tenant's reservation and limit rate at Init —
	// the per-shard renormalization hook: a sharded deployment runs one
	// engine per shard with RateDiv = shard count, so a tenant whose
	// flows spread across every shard still aggregates to the configured
	// rates. A nonzero configured rate never renormalizes to zero. 0 or 1
	// means no renormalization (the single-engine deployment).
	RateDiv uint64
}

// Scheduler is an hClock instance: a Hier engine plus per-flow FIFOs.
type Scheduler struct {
	h       *Hier
	flows   map[uint64]*Flow
	backlog int
}

// New returns an empty scheduler.
func New(cfg Config) *Scheduler {
	return &Scheduler{
		h:     NewHier(cfg),
		flows: make(map[uint64]*Flow),
	}
}

// AddFlow registers a traffic class. Reservation must not exceed limit
// when both are set.
func (s *Scheduler) AddFlow(id, resBps, limitBps, weight uint64) *Flow {
	f := &Flow{ID: id}
	s.h.Init(&f.Tenant, resBps, limitBps, weight)
	f.Self = f
	s.flows[id] = f
	return f
}

// Flow returns a registered flow, or nil.
func (s *Scheduler) Flow(id uint64) *Flow { return s.flows[id] }

// Len returns the number of queued packets.
func (s *Scheduler) Len() int { return s.backlog }

// Enqueue adds p to its flow's FIFO; the flow must have been registered.
func (s *Scheduler) Enqueue(p *pkt.Packet, now int64) {
	f := s.flows[p.Flow]
	if f == nil {
		panic(fmt.Sprintf("hclock: packet for unregistered flow %d", p.Flow))
	}
	f.push(p)
	s.backlog++
	if !f.Active() {
		s.h.Activate(&f.Tenant, now)
	}
}

// Dequeue returns the next packet under hClock's two-phase rule, or nil if
// nothing may be sent at the given time.
func (s *Scheduler) Dequeue(now int64) *pkt.Packet {
	if s.backlog == 0 {
		return nil
	}
	t, ok := s.h.Pick(now)
	if !ok {
		return nil
	}
	f := t.Self.(*Flow)
	p := f.pop()
	s.backlog--
	s.h.Charge(t, uint64(p.Size), now)
	if f.n > 0 {
		s.h.Requeue(t, now)
	} else {
		s.h.Idle(t)
	}
	return p
}

// NextEvent returns the earliest time a currently ineligible flow becomes
// eligible (the parked set's head or the aggregate gate), for timer-driven
// callers. ok is false when the scheduler is empty or work is ready now.
func (s *Scheduler) NextEvent(now int64) (int64, bool) {
	if s.backlog == 0 {
		return 0, false
	}
	return s.h.NextEvent(now)
}
