// Package hclock reimplements the hClock hierarchical QoS packet scheduler
// (Billaud & Gulati, EuroSys'13 — the NetIOC scheduler in VMware vSphere)
// that §5.1.2 uses as Use Case 2. Every flow carries three tags, exactly as
// Figure 11 expresses it in the extended PIFO model:
//
//	r_rank += size/reservation   (minimum guaranteed rate)
//	l_rank += size/limit         (maximum rate)
//	s_rank += size/share         (proportional weight)
//
// Dequeue serves, in order of preference: the smallest r_rank among flows
// whose reservation clock is due, else the smallest s_rank among flows that
// have not exceeded their limit. Flows over their limit park until l_rank.
//
// The scheduler is generic over its three priority-queue indexes: the
// baseline uses binary min-heaps (O(log n) per tag update, the original
// hClock design), the Eiffel version uses circular FFS queues (O(1)) —
// which is the entire difference Figure 12 measures.
package hclock

import (
	"fmt"

	"eiffel/internal/bucket"
	"eiffel/internal/pkt"
	"eiffel/internal/queue"
)

// Backend selects the priority-queue implementation for the three indexes.
type Backend int

// Backends.
const (
	// BackendEiffel uses circular hierarchical FFS queues.
	BackendEiffel Backend = iota
	// BackendHeap uses binary min-heaps (the original hClock).
	BackendHeap
	// BackendApprox uses circular approximate gradient queues, the
	// "hierarchical-based schedules" case of the Figure 20 guide.
	BackendApprox
)

// String names the backend for tables.
func (b Backend) String() string {
	switch b {
	case BackendEiffel:
		return "Eiffel"
	case BackendHeap:
		return "hClock(heap)"
	case BackendApprox:
		return "Eiffel(approx)"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// sChargeScale converts bytes/weight into share-tag units; large enough to
// resolve weight ratios of 1:4096 at byte granularity.
const sChargeScale = 1 << 16

// Flow is one hClock traffic class.
type Flow struct {
	// ID is the flow identifier.
	ID uint64
	// ResBps is the reserved minimum rate (0 = no reservation).
	ResBps uint64
	// LimitBps is the rate cap (0 = unlimited).
	LimitBps uint64
	// Weight is the proportional share weight (>= 1).
	Weight uint64

	rTag, lTag, sTag uint64
	rNode            bucket.Node
	sNode            bucket.Node
	lNode            bucket.Node

	ring []*pkt.Packet
	head int
	n    int

	active  bool
	limited bool
}

// Len returns the number of queued packets.
func (f *Flow) Len() int { return f.n }

func (f *Flow) push(p *pkt.Packet) {
	if f.n == len(f.ring) {
		size := len(f.ring) * 2
		if size == 0 {
			size = 8
		}
		ring := make([]*pkt.Packet, size)
		for i := 0; i < f.n; i++ {
			ring[i] = f.ring[(f.head+i)%len(f.ring)]
		}
		f.ring, f.head = ring, 0
	}
	f.ring[(f.head+f.n)%len(f.ring)] = p
	f.n++
}

func (f *Flow) pop() *pkt.Packet {
	if f.n == 0 {
		return nil
	}
	p := f.ring[f.head]
	f.ring[f.head] = nil
	f.head = (f.head + 1) % len(f.ring)
	f.n--
	return p
}

// Config sizes a scheduler.
type Config struct {
	// Backend picks the index implementation.
	Backend Backend
	// AggregateLimitBps caps the scheduler's total output (0 = none);
	// Figure 12 (bottom) runs with a 5 Gbps aggregate limit.
	AggregateLimitBps uint64
	// TagGranularityNs is the bucket width of the time-tag queues
	// (default 2048 ns).
	TagGranularityNs uint64
	// Buckets is the bucket count per queue half (default 1<<14).
	Buckets int
}

// Scheduler is an hClock instance.
type Scheduler struct {
	cfg   Config
	flows map[uint64]*Flow

	readyR  queue.PQ // reservation tags of ready flows with reservations
	readyS  queue.PQ // share tags of all ready flows
	parked  queue.PQ // limit tags of flows over their cap
	vnow    uint64   // share-tag virtual time
	backlog int

	aggNextFree uint64
}

// New returns an empty scheduler.
func New(cfg Config) *Scheduler {
	if cfg.TagGranularityNs == 0 {
		cfg.TagGranularityNs = 2048
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 1 << 14
	}
	mk := func(gran uint64) queue.PQ {
		qc := queue.Config{NumBuckets: cfg.Buckets, Granularity: gran}
		switch cfg.Backend {
		case BackendHeap:
			return queue.New(queue.KindBinaryHeap, qc)
		case BackendApprox:
			return queue.New(queue.KindCApprox, qc)
		default:
			return queue.New(queue.KindCFFS, qc)
		}
	}
	return &Scheduler{
		cfg:    cfg,
		flows:  make(map[uint64]*Flow),
		readyR: mk(cfg.TagGranularityNs),
		readyS: mk(cfg.TagGranularityNs * 64), // share tags grow faster
		parked: mk(cfg.TagGranularityNs),
	}
}

// AddFlow registers a traffic class. Reservation must not exceed limit
// when both are set.
func (s *Scheduler) AddFlow(id, resBps, limitBps, weight uint64) *Flow {
	if weight == 0 {
		weight = 1
	}
	if limitBps > 0 && resBps > limitBps {
		panic("hclock: reservation exceeds limit")
	}
	f := &Flow{ID: id, ResBps: resBps, LimitBps: limitBps, Weight: weight}
	f.rNode.Data = f
	f.sNode.Data = f
	f.lNode.Data = f
	s.flows[id] = f
	return f
}

// Flow returns a registered flow, or nil.
func (s *Scheduler) Flow(id uint64) *Flow { return s.flows[id] }

// Len returns the number of queued packets.
func (s *Scheduler) Len() int { return s.backlog }

// Enqueue adds p to its flow's FIFO; the flow must have been registered.
func (s *Scheduler) Enqueue(p *pkt.Packet, now int64) {
	f := s.flows[p.Flow]
	if f == nil {
		panic(fmt.Sprintf("hclock: packet for unregistered flow %d", p.Flow))
	}
	f.push(p)
	s.backlog++
	if !f.active {
		s.activate(f, now)
	}
}

func (s *Scheduler) activate(f *Flow, now int64) {
	t := uint64(now)
	// Idle flows join at the current clocks: no banked reservation or
	// share credit across idle periods.
	if f.rTag < t {
		f.rTag = t
	}
	if f.lTag < t {
		f.lTag = t
	}
	if f.sTag < s.vnow {
		f.sTag = s.vnow
	}
	f.active = true
	s.insert(f, now)
}

// insert places an active flow into the ready or parked indexes according
// to its limit tag.
func (s *Scheduler) insert(f *Flow, now int64) {
	if f.LimitBps > 0 && f.lTag > uint64(now) {
		f.limited = true
		s.parked.Enqueue(&f.lNode, f.lTag)
		return
	}
	f.limited = false
	s.readyS.Enqueue(&f.sNode, f.sTag)
	if f.ResBps > 0 {
		s.readyR.Enqueue(&f.rNode, f.rTag)
	}
}

// remove detaches an active flow from whichever indexes hold it.
func (s *Scheduler) remove(f *Flow) {
	if f.limited {
		s.parked.Remove(&f.lNode)
		return
	}
	if f.sNode.Queued() {
		s.readyS.Remove(&f.sNode)
	}
	if f.rNode.Queued() {
		s.readyR.Remove(&f.rNode)
	}
}

// migrate moves flows whose limit clock has arrived from parked to ready.
func (s *Scheduler) migrate(now int64) {
	for {
		r, ok := s.parked.PeekMin()
		if !ok || r > uint64(now) {
			return
		}
		n := s.parked.DequeueMin()
		f := n.Data.(*Flow)
		f.limited = false
		s.readyS.Enqueue(&f.sNode, f.sTag)
		if f.ResBps > 0 {
			s.readyR.Enqueue(&f.rNode, f.rTag)
		}
	}
}

// Dequeue returns the next packet under hClock's two-phase rule, or nil if
// nothing may be sent at the given time.
func (s *Scheduler) Dequeue(now int64) *pkt.Packet {
	if s.backlog == 0 {
		return nil
	}
	if s.cfg.AggregateLimitBps > 0 && s.aggNextFree > uint64(now) {
		return nil
	}
	s.migrate(now)

	var f *Flow
	if r, ok := s.readyR.PeekMin(); ok && r <= uint64(now) {
		// Reservation phase: a reservation clock is due.
		f = s.readyR.DequeueMin().Data.(*Flow)
		s.readyS.Remove(&f.sNode)
	} else if s.readyS.Len() > 0 {
		// Share phase: proportional fairness among ready flows.
		f = s.readyS.DequeueMin().Data.(*Flow)
		if f.rNode.Queued() {
			s.readyR.Remove(&f.rNode)
		}
	} else {
		return nil // every backlogged flow is over its limit
	}

	p := f.pop()
	s.backlog--
	if f.sTag > s.vnow {
		s.vnow = f.sTag
	}
	s.charge(f, p)
	if f.Len() > 0 {
		s.insert(f, now)
	} else {
		f.active = false
	}
	if s.cfg.AggregateLimitBps > 0 {
		// Bounded catch-up (64 KiB) so busy-poll jitter does not erode
		// the aggregate rate; the timestamp chain still caps the
		// long-run rate at the limit.
		start := s.aggNextFree
		burst := uint64(64<<10) * 8 * 1e9 / s.cfg.AggregateLimitBps
		if floor := uint64(now) - burst; uint64(now) > burst && start < floor {
			start = floor
		}
		s.aggNextFree = start + uint64(p.Size)*8*1e9/s.cfg.AggregateLimitBps
	}
	return p
}

func (s *Scheduler) charge(f *Flow, p *pkt.Packet) {
	bits := uint64(p.Size) * 8
	if f.ResBps > 0 {
		f.rTag += bits * 1e9 / f.ResBps
	}
	if f.LimitBps > 0 {
		f.lTag += bits * 1e9 / f.LimitBps
	}
	f.sTag += uint64(p.Size) * sChargeScale / f.Weight
}

// NextEvent returns the earliest time a currently ineligible flow becomes
// eligible (the parked set's head or the aggregate gate), for timer-driven
// callers. ok is false when the scheduler is empty or work is ready now.
func (s *Scheduler) NextEvent(now int64) (int64, bool) {
	if s.backlog == 0 {
		return 0, false
	}
	if s.readyS.Len() > 0 {
		if s.cfg.AggregateLimitBps > 0 && s.aggNextFree > uint64(now) {
			return int64(s.aggNextFree), true
		}
		return now, true
	}
	if r, ok := s.parked.PeekMin(); ok {
		return int64(r), true
	}
	return 0, false
}
