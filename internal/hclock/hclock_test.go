package hclock

import (
	"testing"

	"eiffel/internal/pkt"
)

var backends = []Backend{BackendEiffel, BackendHeap, BackendApprox}

func drive(s *Scheduler, pool *pkt.Pool, flows []uint64, pktSize uint32, perFlow int, horizon int64) map[uint64]int64 {
	for i := 0; i < perFlow; i++ {
		for _, id := range flows {
			p := pool.Get()
			p.Flow = id
			p.Size = pktSize
			s.Enqueue(p, 0)
		}
	}
	bytes := map[uint64]int64{}
	now := int64(0)
	for now < horizon {
		p := s.Dequeue(now)
		if p == nil {
			next, ok := s.NextEvent(now)
			if !ok {
				break
			}
			if next <= now {
				next = now + 1000
			}
			now = next
			continue
		}
		bytes[p.Flow] += int64(p.Size)
	}
	return bytes
}

func TestProportionalShares(t *testing.T) {
	for _, b := range backends {
		t.Run(b.String(), func(t *testing.T) {
			s := New(Config{Backend: b, AggregateLimitBps: 100_000_000})
			s.AddFlow(1, 0, 0, 3)
			s.AddFlow(2, 0, 0, 1)
			pool := pkt.NewPool(4096)
			bytes := drive(s, pool, []uint64{1, 2}, 1250, 2000, 100_000_000) // 100 ms
			total := bytes[1] + bytes[2]
			if total == 0 {
				t.Fatal("no throughput")
			}
			share := float64(bytes[1]) / float64(total)
			if share < 0.68 || share > 0.82 {
				t.Fatalf("weight-3 flow got %.2f of bytes, want ~0.75", share)
			}
		})
	}
}

func TestLimitEnforced(t *testing.T) {
	for _, b := range backends {
		t.Run(b.String(), func(t *testing.T) {
			s := New(Config{Backend: b})
			s.AddFlow(1, 0, 10_000_000, 1) // 10 Mbps cap
			s.AddFlow(2, 0, 0, 1)
			pool := pkt.NewPool(8192)
			const horizon = int64(200_000_000) // 200 ms
			bytes := drive(s, pool, []uint64{1, 2}, 1250, 3000, horizon)
			rate1 := float64(bytes[1]) * 8 / (float64(horizon) / 1e9)
			if rate1 > 10_000_000*1.10 {
				t.Fatalf("limited flow exceeded cap: %.2f Mbps", rate1/1e6)
			}
		})
	}
}

func TestReservationMet(t *testing.T) {
	for _, b := range backends {
		t.Run(b.String(), func(t *testing.T) {
			// Flow 1 reserves 40 Mbps of a 50 Mbps aggregate but has tiny
			// weight; without the reservation phase it would get ~1/101 of
			// the bandwidth.
			s := New(Config{Backend: b, AggregateLimitBps: 50_000_000})
			s.AddFlow(1, 40_000_000, 0, 1)
			s.AddFlow(2, 0, 0, 100)
			pool := pkt.NewPool(16384)
			const horizon = int64(100_000_000) // 100 ms
			bytes := drive(s, pool, []uint64{1, 2}, 1250, 4000, horizon)
			rate1 := float64(bytes[1]) * 8 / (float64(horizon) / 1e9)
			if rate1 < 40_000_000*0.85 {
				t.Fatalf("reservation not met: %.2f Mbps, want ~40", rate1/1e6)
			}
		})
	}
}

func TestWorkConservingUnderLimits(t *testing.T) {
	for _, b := range backends {
		t.Run(b.String(), func(t *testing.T) {
			// One flow capped at 5 Mbps, one unlimited: the unlimited flow
			// must soak up everything the cap releases.
			s := New(Config{Backend: b, AggregateLimitBps: 100_000_000})
			s.AddFlow(1, 0, 5_000_000, 1)
			s.AddFlow(2, 0, 0, 1)
			pool := pkt.NewPool(32768)
			const horizon = int64(100_000_000)
			bytes := drive(s, pool, []uint64{1, 2}, 1250, 6000, horizon)
			total := float64(bytes[1]+bytes[2]) * 8 / (float64(horizon) / 1e9)
			if total < 100_000_000*0.85 {
				t.Fatalf("aggregate underutilized: %.2f Mbps of 100", total/1e6)
			}
		})
	}
}

func TestFlowFIFOOrder(t *testing.T) {
	s := New(Config{Backend: BackendEiffel})
	s.AddFlow(1, 0, 0, 1)
	pool := pkt.NewPool(16)
	var ids []uint64
	for i := 0; i < 5; i++ {
		p := pool.Get()
		p.Flow = 1
		p.Size = 100
		ids = append(ids, p.ID)
		s.Enqueue(p, 0)
	}
	for i := 0; i < 5; i++ {
		p := s.Dequeue(0)
		if p == nil || p.ID != ids[i] {
			t.Fatalf("packet %d out of order", i)
		}
	}
}

func TestEmptyAndIdle(t *testing.T) {
	s := New(Config{Backend: BackendEiffel})
	s.AddFlow(1, 0, 1_000_000, 1)
	if s.Dequeue(0) != nil {
		t.Fatal("empty scheduler must return nil")
	}
	if _, ok := s.NextEvent(0); ok {
		t.Fatal("NextEvent on empty scheduler")
	}
	pool := pkt.NewPool(4)
	p := pool.Get()
	p.Flow = 1
	p.Size = 1250
	s.Enqueue(p, 1e9)
	got := s.Dequeue(1e9)
	if got == nil {
		t.Fatal("packet lost after idle start")
	}
	// Flow is now over its limit; a second packet must wait.
	p2 := pool.Get()
	p2.Flow = 1
	p2.Size = 1250
	s.Enqueue(p2, 1e9)
	if s.Dequeue(1e9) != nil {
		t.Fatal("limit not enforced immediately after first packet")
	}
	next, ok := s.NextEvent(1e9)
	if !ok || next <= 1e9 {
		t.Fatalf("NextEvent = (%d,%v), want future time", next, ok)
	}
	if s.Dequeue(next+10000) == nil {
		t.Fatal("packet not released at limit clock")
	}
}

func BenchmarkDequeueEiffel(b *testing.B) { benchBackend(b, BackendEiffel) }
func BenchmarkDequeueHeap(b *testing.B)   { benchBackend(b, BackendHeap) }

func benchBackend(b *testing.B, be Backend) {
	s := New(Config{Backend: be})
	const flows = 1000
	for i := uint64(1); i <= flows; i++ {
		s.AddFlow(i, 0, 0, 1+i%7)
	}
	pool := pkt.NewPool(flows * 4)
	now := int64(0)
	for i := uint64(1); i <= flows; i++ {
		for j := 0; j < 3; j++ {
			p := pool.Get()
			p.Flow = i
			p.Size = 1500
			s.Enqueue(p, now)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 1200
		p := s.Dequeue(now)
		if p == nil {
			b.Fatal("unexpected nil")
		}
		s.Enqueue(p, now)
	}
}
