package hclock

import (
	"eiffel/internal/bucket"
	"eiffel/internal/queue"
)

// This file is the reusable three-tag core of hClock, extracted from the
// single-threaded Scheduler so the sharded runtime can run one engine per
// shard. The engine arbitrates between TENANTS — tag-bearing scheduling
// entities — and owns nothing else: callers keep the packet storage (a
// flow FIFO, an in-tenant rank queue) and drive the engine through the
// pick/charge/requeue cycle:
//
//	t, ok := h.Pick(now)        // two-phase hClock selection, detaches t
//	...pop one packet from t's queue...
//	h.Charge(t, size, now)      // advance r/l/s tags (and the aggregate gate)
//	if backlogged { h.Requeue(t, now) } else { h.Idle(t) }
//
// Between Pick and Requeue/Idle the tenant is attached to no index; the
// caller must complete the cycle before the next Pick. All methods are
// allocation-free after construction (the tag queues size their bucket
// arrays up front), which is what lets the sharded backend ride the
// //eiffel:hotpath contract.

// Tenant is one scheduling entity under a Hier engine: a traffic class
// with a reservation (minimum rate), a limit (maximum rate), and a
// proportional-share weight. Callers embed it (or point to it) next to
// their own queue state and recover that state from Self after Pick.
type Tenant struct {
	// ResBps is the effective reserved minimum rate (0 = no reservation),
	// after Init applied the engine's RateDiv renormalization.
	ResBps uint64
	// LimitBps is the effective rate cap (0 = unlimited), renormalized
	// like ResBps.
	LimitBps uint64
	// Weight is the proportional share weight (>= 1). Weights are
	// relative, so they are never renormalized.
	Weight uint64
	// Self is the caller's backpointer: Pick returns the Tenant, and the
	// caller finds its own per-tenant state here (a pointer, so storing
	// it never allocates).
	Self any

	rTag, lTag, sTag uint64
	rNode            bucket.Node
	sNode            bucket.Node
	lNode            bucket.Node

	active  bool
	limited bool
}

// Active reports whether the tenant is registered in the engine's indexes
// (or mid pick/requeue cycle).
//
//eiffel:hotpath
func (t *Tenant) Active() bool { return t.active }

// Hier is the reusable hClock engine: three priority-queue indexes over
// tenant tags (reservation clocks of ready tenants, share tags of ready
// tenants, limit clocks of parked tenants), the share-tag virtual time,
// and the optional aggregate output gate. The Backend selection picks the
// index implementation exactly as for Scheduler — binary heaps (the
// original hClock), circular FFS queues (the Eiffel configuration), or
// approximate gradient queues.
type Hier struct {
	cfg Config

	readyR  queue.PQ // reservation tags of ready tenants with reservations
	readyS  queue.PQ // share tags of all ready tenants
	parked  queue.PQ // limit tags of tenants over their cap
	vnow    uint64   // share-tag virtual time
	nActive int

	// pickedRes records whether the in-flight pick came from the
	// reservation phase. Service rendered under a reservation must not
	// count against the proportional share (mClock's decoupling: without
	// it a reservation holder's share tag inflates at its reservation
	// rate, and once contention ends the scheduler starves it until the
	// competitors' tags catch up), so Charge skips the share tag for a
	// reservation-phase pick.
	pickedRes bool

	aggNextFree uint64
}

// NewHier returns an empty engine. Config defaults apply as for New.
func NewHier(cfg Config) *Hier {
	if cfg.TagGranularityNs == 0 {
		cfg.TagGranularityNs = 2048
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 1 << 14
	}
	if cfg.RateDiv == 0 {
		cfg.RateDiv = 1
	}
	if cfg.ShareGranularity == 0 {
		cfg.ShareGranularity = cfg.TagGranularityNs * 64
	}
	mk := func(gran uint64) queue.PQ {
		qc := queue.Config{NumBuckets: cfg.Buckets, Granularity: gran}
		switch cfg.Backend {
		case BackendHeap:
			return queue.New(queue.KindBinaryHeap, qc)
		case BackendApprox:
			return queue.New(queue.KindCApprox, qc)
		default:
			return queue.New(queue.KindCFFS, qc)
		}
	}
	return &Hier{
		cfg:    cfg,
		readyR: mk(cfg.TagGranularityNs),
		readyS: mk(cfg.ShareGranularity),
		parked: mk(cfg.TagGranularityNs),
	}
}

// Init prepares a tenant for this engine: rates are renormalized by the
// engine's RateDiv (a nonzero configured rate never renormalizes to zero
// — that would silently drop the reservation or open the cap), weight 0
// becomes 1, and the index nodes get their backpointers. Reservation must
// not exceed limit when both are set. Init must run before the tenant's
// first Activate and never again.
func (h *Hier) Init(t *Tenant, resBps, limitBps, weight uint64) {
	if weight == 0 {
		weight = 1
	}
	if limitBps > 0 && resBps > limitBps {
		panic("hclock: reservation exceeds limit")
	}
	if div := h.cfg.RateDiv; div > 1 {
		if resBps > 0 {
			if resBps /= div; resBps == 0 {
				resBps = 1
			}
		}
		if limitBps > 0 {
			if limitBps /= div; limitBps == 0 {
				limitBps = 1
			}
		}
	}
	t.ResBps, t.LimitBps, t.Weight = resBps, limitBps, weight
	t.rNode.Data = t
	t.sNode.Data = t
	t.lNode.Data = t
}

// Activate registers an idle tenant at the current clocks: no banked
// reservation or share credit across idle periods. The caller activates a
// tenant when its queue goes non-empty.
//
//eiffel:hotpath
func (h *Hier) Activate(t *Tenant, now int64) {
	tm := uint64(now)
	if t.rTag < tm {
		t.rTag = tm
	}
	if t.lTag < tm {
		t.lTag = tm
	}
	if t.sTag < h.vnow {
		t.sTag = h.vnow
	}
	t.active = true
	h.nActive++
	h.insert(t, now)
}

// insert places an active tenant into the ready or parked indexes
// according to its limit tag.
//
//eiffel:hotpath
func (h *Hier) insert(t *Tenant, now int64) {
	if t.LimitBps > 0 && t.lTag > uint64(now) {
		t.limited = true
		h.parked.Enqueue(&t.lNode, t.lTag)
		return
	}
	t.limited = false
	h.readyS.Enqueue(&t.sNode, t.sTag)
	if t.ResBps > 0 {
		h.readyR.Enqueue(&t.rNode, t.rTag)
	}
}

// Deactivate detaches an active tenant from whichever indexes hold it and
// marks it idle — the removal path for callers that evict tenants.
func (h *Hier) Deactivate(t *Tenant) {
	if !t.active {
		return
	}
	if t.limited {
		h.parked.Remove(&t.lNode)
	} else {
		// Membership is static, not queried: insert and Migrate put a
		// non-parked tenant's sNode in readyS always, and its rNode in
		// readyR exactly when it holds a reservation. (Node.Queued() only
		// works for bucketed backends — the comparison heaps track
		// membership through Pos and never set the bucket owner, so a
		// Queued() guard here silently skips the removal under
		// BackendHeap and leaves a stale node in the index.)
		h.readyS.Remove(&t.sNode)
		if t.ResBps > 0 {
			h.readyR.Remove(&t.rNode)
		}
	}
	t.active = false
	t.limited = false
	h.nActive--
}

// Migrate moves tenants whose limit clock has arrived from parked to
// ready. Pick migrates on its own; the method is exported for callers
// that need a fresh MinShare without picking.
//
//eiffel:hotpath
func (h *Hier) Migrate(now int64) {
	for {
		r, ok := h.parked.PeekMin()
		if !ok || r > uint64(now) {
			return
		}
		n := h.parked.DequeueMin()
		t := n.Data.(*Tenant)
		t.limited = false
		h.readyS.Enqueue(&t.sNode, t.sTag)
		if t.ResBps > 0 {
			h.readyR.Enqueue(&t.rNode, t.rTag)
		}
	}
}

// Pick detaches and returns the tenant hClock serves next — the smallest
// reservation clock among due reservations, else the smallest share tag
// among tenants under their limit — and advances the share virtual time
// to the winner's tag. ok is false when every active tenant is parked
// over its limit, the aggregate gate is closed, or nothing is active. The
// caller must finish the cycle with Requeue or Idle before picking again.
//
//eiffel:hotpath
func (h *Hier) Pick(now int64) (*Tenant, bool) {
	if h.nActive == 0 {
		return nil, false
	}
	if h.cfg.AggregateLimitBps > 0 && h.aggNextFree > uint64(now) {
		return nil, false
	}
	h.Migrate(now)

	var t *Tenant
	if r, ok := h.readyR.PeekMin(); ok && r <= uint64(now) {
		// Reservation phase: a reservation clock is due.
		t = h.readyR.DequeueMin().Data.(*Tenant)
		h.readyS.Remove(&t.sNode)
		h.pickedRes = true
	} else if h.readyS.Len() > 0 {
		// Share phase: proportional fairness among ready tenants. Only
		// this phase advances the share virtual time — a reservation
		// pick is outside the proportional schedule.
		t = h.readyS.DequeueMin().Data.(*Tenant)
		if t.ResBps > 0 {
			// Static membership, as in Deactivate: a ready reservation
			// holder is always indexed in readyR.
			h.readyR.Remove(&t.rNode)
		}
		h.pickedRes = false
		if t.sTag > h.vnow {
			h.vnow = t.sTag
		}
	} else {
		return nil, false // every active tenant is over its limit
	}
	return t, true
}

// Charge advances the picked tenant's three tags for size bytes of
// service and moves the aggregate gate.
//
//eiffel:hotpath
func (h *Hier) Charge(t *Tenant, size uint64, now int64) {
	bits := size * 8
	if t.ResBps > 0 {
		t.rTag += bits * 1e9 / t.ResBps
	}
	if t.LimitBps > 0 {
		t.lTag += bits * 1e9 / t.LimitBps
	}
	if !h.pickedRes {
		t.sTag += size * sChargeScale / t.Weight
	}
	if h.cfg.AggregateLimitBps > 0 {
		// Bounded catch-up (64 KiB) so busy-poll jitter does not erode
		// the aggregate rate; the timestamp chain still caps the
		// long-run rate at the limit.
		start := h.aggNextFree
		burst := uint64(64<<10) * 8 * 1e9 / h.cfg.AggregateLimitBps
		if floor := uint64(now) - burst; uint64(now) > burst && start < floor {
			start = floor
		}
		h.aggNextFree = start + bits*1e9/h.cfg.AggregateLimitBps
	}
}

// Requeue re-registers a picked tenant that still has backlog: back into
// the ready indexes, or parked when the charge pushed it over its limit.
//
//eiffel:hotpath
func (h *Hier) Requeue(t *Tenant, now int64) { h.insert(t, now) }

// Idle retires a picked tenant whose queue drained. The tenant rejoins at
// the then-current clocks on its next Activate.
//
//eiffel:hotpath
func (h *Hier) Idle(t *Tenant) {
	t.active = false
	t.limited = false
	h.nActive--
}

// NumActive returns how many tenants are registered (including one mid
// pick cycle).
func (h *Hier) NumActive() int { return h.nActive }

// MinShare returns the (quantized) smallest share tag among ready
// tenants, ok=false when none is ready. Callers that merge several
// engines by virtual time (the sharded backend) read this as the engine's
// head rank; run Migrate first for a fresh view.
//
//eiffel:hotpath
func (h *Hier) MinShare() (uint64, bool) { return h.readyS.PeekMin() }

// DueReservation reports whether some ready tenant's reservation clock is
// due at now — the condition under which Pick serves the reservation
// phase regardless of share tags.
//
//eiffel:hotpath
func (h *Hier) DueReservation(now int64) bool {
	r, ok := h.readyR.PeekMin()
	return ok && r <= uint64(now)
}

// NextReservation returns the (quantized) earliest reservation clock
// among ready tenants, ok=false when no ready tenant holds a
// reservation. Clock-propagating owners read this to learn when a future
// clock advance will flip DueReservation — the reservation-due crossing
// that must trigger a head re-peek in a merged deployment.
//
//eiffel:hotpath
func (h *Hier) NextReservation() (uint64, bool) { return h.readyR.PeekMin() }

// NextEvent returns the earliest time a currently ineligible tenant
// becomes eligible (the parked set's head or the aggregate gate), for
// timer-driven callers. ok is false when no tenant is active or work is
// ready now.
func (h *Hier) NextEvent(now int64) (int64, bool) {
	if h.nActive == 0 {
		return 0, false
	}
	if h.readyS.Len() > 0 {
		if h.cfg.AggregateLimitBps > 0 && h.aggNextFree > uint64(now) {
			return int64(h.aggNextFree), true
		}
		return now, true
	}
	if r, ok := h.parked.PeekMin(); ok {
		return int64(r), true
	}
	return 0, false
}
